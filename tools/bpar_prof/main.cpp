// bpar_prof — offline analysis of B-Par traces and run reports.
//
//   bpar_prof analyze <trace.json> [--json] [--out <path>]
//       Measured critical path, per-worker idle attribution, and the
//       scheduler scorecard from a unified trace (bench --trace output).
//
//   bpar_prof diff <old.json> <new.json> [more-new.json ...]
//       Noise-aware comparison of two reports/baselines/benchmark dumps.
//       Extra <new> files are min-of-N merged before comparing, so noisy
//       machines can diff against the best of several fresh runs.
//       Exit 0 = clean, 1 = performance regression, 2 = structural
//       mismatch (unreadable/incompatible documents).
//
//   bpar_prof baseline --out <baseline.json> <run.json> [...]
//       Seeds or (with --merge) updates a min-of-N baseline from run
//       reports / google-benchmark JSON. See EXPERIMENTS.md for the
//       refresh procedure.
//
//   bpar_prof request <id> <trace.json>
//       One request's stage-by-stage timeline (submit → queue → seal →
//       form → execute → respond, retries/bisections included) from the
//       per-request markers a serving trace carries (bpar_serve --trace,
//       EngineOptions::trace_requests).
//
//   bpar_prof flame <profile.folded> [--out <path>] [--min-percent P]
//   bpar_prof flame --host <h> --port <p> [--seconds N] [--out <path>]
//       Top-down hot-path tree from collapsed-flamegraph text — either a
//       .folded file (SpanProfiler output, a flight-dump profile) or a
//       live /profilez capture from a serving engine's stats endpoint.
//       --out re-emits the folded text for flamegraph.pl / speedscope.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/stats_server.hpp"

#include "obs/analysis.hpp"
#include "obs/diff.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

using bpar::obs::JsonValue;

JsonValue load_json(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) {
    BPAR_RAISE(bpar::util::Error, "cannot open ", path);
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  return bpar::obs::json_parse(ss.str());
}

int cmd_analyze(int argc, const char* const* argv) {
  bpar::util::ArgParser args("bpar_prof analyze",
                             "Analyze a unified trace JSON file");
  args.add_flag("json", "emit machine-readable JSON instead of tables");
  args.add_string("out", "", "write the (JSON) analysis to this path");
  args.add_int("model-critical-path-ns", 0,
               "TaskGraph::critical_path_cost for the same run, for "
               "measured-vs-model comparison");
  if (!args.parse(argc, argv)) return 2;
  if (args.positional().size() != 1) {
    std::cerr << "usage: bpar_prof analyze <trace.json> [--json] "
                 "[--out <path>]\n";
    return 2;
  }
  const bpar::obs::analysis::TraceModel model =
      bpar::obs::analysis::model_from_trace_json(
          load_json(args.positional()[0]));
  const bpar::obs::analysis::Analysis analysis = bpar::obs::analysis::analyze(
      model,
      static_cast<std::uint64_t>(args.get_int("model-critical-path-ns")));
  if (!args.get_string("out").empty()) {
    std::ofstream os = bpar::obs::open_output_file(args.get_string("out"));
    os << bpar::obs::analysis::to_json(analysis);
  }
  if (args.flag("json")) {
    std::cout << bpar::obs::analysis::to_json(analysis);
  } else {
    bpar::obs::analysis::print_human(analysis, std::cout);
  }
  return 0;
}

int cmd_diff(int argc, const char* const* argv) {
  bpar::util::ArgParser args("bpar_prof diff",
                             "Diff two reports with noise-aware thresholds");
  args.add_double("rel", 0.15, "relative change threshold (fraction)");
  args.add_double("abs", 0.5,
                  "absolute floor for lower-is-better metrics (ms-scale)");
  args.add_double("abs-hb", 0.05,
                  "absolute floor for higher-is-better metrics");
  if (!args.parse(argc, argv)) return 2;
  if (args.positional().size() < 2) {
    std::cerr << "usage: bpar_prof diff <old.json> <new.json> [...]\n";
    return 2;
  }
  bpar::obs::diff::DiffOptions options;
  options.rel_threshold = args.get_double("rel");
  options.abs_threshold = args.get_double("abs");
  options.abs_threshold_hb = args.get_double("abs-hb");

  bpar::obs::diff::DiffResult result;
  try {
    const bpar::obs::diff::MetricMap old_map =
        bpar::obs::diff::flatten(load_json(args.positional()[0]));
    // Min-of-N over the new side: merge every fresh run, keep the best
    // value per metric, and only then compare.
    bpar::obs::diff::Baseline fresh;
    for (std::size_t i = 1; i < args.positional().size(); ++i) {
      bpar::obs::diff::merge_baseline(
          fresh, bpar::obs::diff::flatten(load_json(args.positional()[i])));
    }
    result = bpar::obs::diff::diff_maps(
        old_map, bpar::obs::diff::baseline_metrics(fresh), options);
  } catch (const bpar::util::Error& e) {
    result.structural = true;
    result.structural_reason = e.what();
  }
  bpar::obs::diff::print_diff(result, std::cout);
  return result.exit_code();
}

int cmd_baseline(int argc, const char* const* argv) {
  bpar::util::ArgParser args("bpar_prof baseline",
                             "Seed/update a min-of-N perf baseline");
  args.add_string("out", "bench_results/baseline.json",
                  "baseline file to write");
  args.add_flag("merge", "start from the existing --out contents");
  if (!args.parse(argc, argv)) return 2;
  if (args.positional().empty()) {
    std::cerr << "usage: bpar_prof baseline --out <baseline.json> "
                 "<run.json> [...]\n";
    return 2;
  }
  bpar::obs::diff::Baseline baseline;
  if (args.flag("merge")) {
    baseline = bpar::obs::diff::load_baseline(load_json(args.get_string("out")));
  }
  for (const std::string& path : args.positional()) {
    bpar::obs::diff::merge_baseline(
        baseline, bpar::obs::diff::flatten(load_json(path)));
  }
  std::ofstream os = bpar::obs::open_output_file(args.get_string("out"));
  os << bpar::obs::diff::baseline_json(baseline);
  std::cout << "wrote " << baseline.size() << " metric(s) to "
            << args.get_string("out") << "\n";
  return 0;
}

/// One per-request stage marker recovered from a serving trace. Times are
/// chrome-trace microseconds (trace-relative).
struct RequestMark {
  double ts_us = 0.0;
  std::string stage;   // "submitted", "queued", ... (name minus "req.")
  double arg = 0.0;
  std::string status;  // only on "responded"
};

int cmd_request(int argc, const char* const* argv) {
  bpar::util::ArgParser args("bpar_prof request",
                             "Reconstruct one request's stage timeline");
  if (!args.parse(argc, argv)) return 2;
  if (args.positional().size() != 2) {
    std::cerr << "usage: bpar_prof request <id> <trace.json>\n";
    return 2;
  }
  const std::uint64_t want_id = std::stoull(args.positional()[0]);
  const JsonValue doc = load_json(args.positional()[1]);
  if (!doc.is_array()) {
    std::cerr << "bpar_prof request: " << args.positional()[1]
              << " is not a chrome-trace event array\n";
    return 2;
  }

  std::vector<RequestMark> marks;
  std::size_t total_request_events = 0;
  std::vector<std::uint64_t> seen_ids;
  for (const JsonValue& ev : doc.array) {
    if (!ev.is_object()) continue;
    const JsonValue* ph = ev.find("ph");
    const JsonValue* name = ev.find("name");
    if (ph == nullptr || name == nullptr || ph->str != "i" ||
        name->str.rfind("req.", 0) != 0) {
      continue;
    }
    const JsonValue* ev_args = ev.find("args");
    if (ev_args == nullptr || !ev_args->is_object()) continue;
    const JsonValue* req = ev_args->find("req");
    if (req == nullptr || !req->is_number()) continue;
    ++total_request_events;
    const auto id = static_cast<std::uint64_t>(req->number);
    if (std::find(seen_ids.begin(), seen_ids.end(), id) == seen_ids.end()) {
      seen_ids.push_back(id);
    }
    if (id != want_id) continue;
    RequestMark mark;
    const JsonValue* ts = ev.find("ts");
    mark.ts_us = ts != nullptr ? ts->number : 0.0;
    mark.stage = name->str.substr(4);
    if (const JsonValue* arg = ev_args->find("arg"); arg != nullptr) {
      mark.arg = arg->number;
    }
    if (const JsonValue* status = ev_args->find("status");
        status != nullptr) {
      mark.status = status->str;
    }
    marks.push_back(std::move(mark));
  }

  if (marks.empty()) {
    std::cerr << "bpar_prof request: no events for request " << want_id
              << " (trace holds " << total_request_events
              << " request event(s) across " << seen_ids.size()
              << " id(s)";
    if (!seen_ids.empty()) {
      std::sort(seen_ids.begin(), seen_ids.end());
      std::cerr << ", ids " << seen_ids.front() << ".." << seen_ids.back();
    }
    std::cerr << ")\n";
    return 1;
  }
  std::stable_sort(marks.begin(), marks.end(),
                   [](const RequestMark& a, const RequestMark& b) {
                     return a.ts_us < b.ts_us;
                   });

  // Named stage timestamps for the summary (first occurrence wins, except
  // exec_end / responded where the last one is the real finish).
  const auto first_ts = [&](const std::string& stage) -> const RequestMark* {
    for (const RequestMark& m : marks) {
      if (m.stage == stage) return &m;
    }
    return nullptr;
  };
  const auto last_ts = [&](const std::string& stage) -> const RequestMark* {
    const RequestMark* hit = nullptr;
    for (const RequestMark& m : marks) {
      if (m.stage == stage) hit = &m;
    }
    return hit;
  };

  std::printf("request %llu: %zu event(s)\n\n",
              static_cast<unsigned long long>(want_id), marks.size());
  std::printf("  %12s  %12s  %-10s  %s\n", "t (us)", "+delta (us)", "stage",
              "detail");
  double prev = marks.front().ts_us;
  for (const RequestMark& m : marks) {
    std::string detail;
    if (m.stage == "sealed") {
      detail = "batch size " + std::to_string(static_cast<int>(m.arg));
    } else if (m.stage == "formed") {
      detail = "padded rows " + std::to_string(static_cast<int>(m.arg));
    } else if (m.stage == "retry") {
      detail = "attempt " + std::to_string(static_cast<int>(m.arg));
    } else if (m.stage == "bisect") {
      detail = "depth " + std::to_string(static_cast<int>(m.arg));
    } else if (m.stage == "queued") {
      detail = "class " + std::to_string(static_cast<int>(m.arg));
    } else if (m.stage == "responded") {
      detail = "status " + m.status;
    } else if (m.stage == "exec_end") {
      detail = m.arg != 0.0 ? "failed" : "ok";
    }
    std::printf("  %12.1f  %12.1f  %-10s  %s\n", m.ts_us, m.ts_us - prev,
                m.stage.c_str(), detail.c_str());
    prev = m.ts_us;
  }

  const RequestMark* submitted = first_ts("submitted");
  const RequestMark* queued = first_ts("queued");
  const RequestMark* sealed = first_ts("sealed");
  const RequestMark* formed = first_ts("formed");
  const RequestMark* exec_begin = first_ts("exec_begin");
  const RequestMark* exec_end = last_ts("exec_end");
  const RequestMark* responded = last_ts("responded");
  std::printf("\nsummary:\n");
  if (queued != nullptr && sealed != nullptr) {
    std::printf("  queue wait   %10.1f us\n", sealed->ts_us - queued->ts_us);
  }
  if (sealed != nullptr && formed != nullptr) {
    std::printf("  batch form   %10.1f us\n", formed->ts_us - sealed->ts_us);
  }
  if (exec_begin != nullptr && exec_end != nullptr) {
    std::printf("  execute      %10.1f us\n",
                exec_end->ts_us - exec_begin->ts_us);
  }
  if (submitted != nullptr && responded != nullptr) {
    std::printf("  total        %10.1f us  (%s)\n",
                responded->ts_us - submitted->ts_us,
                responded->status.c_str());
  } else if (responded == nullptr) {
    std::printf("  (no responded marker — request still in flight when the "
                "trace was written?)\n");
  }
  return 0;
}

/// One node of the top-down flame tree built from folded stacks.
struct FlameNode {
  std::uint64_t total = 0;  // samples in this frame or below
  std::uint64_t self = 0;   // samples with this frame as the leaf
  std::map<std::string, std::unique_ptr<FlameNode>> children;
};

/// Parses collapsed-flamegraph text ("a;b;c count" lines) into (stack,
/// count) rows. Malformed lines are skipped.
std::vector<std::pair<std::vector<std::string>, std::uint64_t>> parse_folded(
    const std::string& text) {
  std::vector<std::pair<std::vector<std::string>, std::uint64_t>> rows;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) continue;
    const std::string count_str = line.substr(space + 1);
    char* end = nullptr;
    const std::uint64_t count = std::strtoull(count_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || count == 0) continue;
    std::vector<std::string> frames;
    std::size_t pos = 0;
    const std::string stack = line.substr(0, space);
    while (pos <= stack.size()) {
      std::size_t semi = stack.find(';', pos);
      if (semi == std::string::npos) semi = stack.size();
      if (semi > pos) frames.push_back(stack.substr(pos, semi - pos));
      pos = semi + 1;
    }
    if (!frames.empty()) rows.emplace_back(std::move(frames), count);
  }
  return rows;
}

void print_flame(const FlameNode& node, const std::string& name, int depth,
                 std::uint64_t root_total, double min_percent) {
  const double percent =
      root_total != 0
          ? 100.0 * static_cast<double>(node.total) / static_cast<double>(root_total)
          : 0.0;
  if (percent < min_percent) return;
  if (depth >= 0) {
    std::printf("  %6.2f%%  %10llu  %*s%s", percent,
                static_cast<unsigned long long>(node.total), 2 * depth, "",
                name.c_str());
    if (node.self != 0 && !node.children.empty()) {
      std::printf("  (self %llu)",
                  static_cast<unsigned long long>(node.self));
    }
    std::printf("\n");
  }
  // Hottest subtree first.
  std::vector<const std::pair<const std::string,
                              std::unique_ptr<FlameNode>>*> kids;
  for (const auto& kv : node.children) kids.push_back(&kv);
  std::stable_sort(kids.begin(), kids.end(), [](const auto* a, const auto* b) {
    return a->second->total > b->second->total;
  });
  for (const auto* kv : kids) {
    print_flame(*kv->second, kv->first, depth + 1, root_total, min_percent);
  }
}

int cmd_flame(int argc, const char* const* argv) {
  bpar::util::ArgParser args("bpar_prof flame",
                             "Render a top-down hot-path tree from folded "
                             "stacks (file or live /profilez)");
  args.add_string("host", "", "fetch live from this stats host");
  args.add_int("port", 0, "stats port for --host");
  args.add_int("seconds", 2, "live capture window (--host mode)");
  args.add_string("out", "", "re-emit the folded text to this path");
  args.add_double("min-percent", 0.0,
                  "hide tree rows below this share of samples");
  if (!args.parse(argc, argv)) return 2;

  std::string folded;
  std::string source;
  if (!args.get_string("host").empty()) {
    if (args.get_int("port") <= 0) {
      std::cerr << "bpar_prof flame: --host requires --port\n";
      return 2;
    }
    const std::string path =
        "/profilez?seconds=" + std::to_string(args.get_int("seconds"));
    const auto reply = bpar::obs::http_get(
        args.get_string("host"),
        static_cast<std::uint16_t>(args.get_int("port")), path);
    if (!reply.ok || reply.status != 200) {
      std::cerr << "bpar_prof flame: GET " << path << " failed: "
                << (reply.ok ? "HTTP " + std::to_string(reply.status)
                             : reply.error)
                << "\n";
      return 1;
    }
    folded = reply.body;
    source = args.get_string("host") + path;
  } else if (args.positional().size() == 1) {
    std::ifstream is(args.positional()[0]);
    if (!is.good()) {
      std::cerr << "bpar_prof flame: cannot open " << args.positional()[0]
                << "\n";
      return 1;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    folded = ss.str();
    source = args.positional()[0];
  } else {
    std::cerr << "usage: bpar_prof flame <profile.folded> [--out <path>]\n"
                 "       bpar_prof flame --host <h> --port <p> "
                 "[--seconds N] [--out <path>]\n";
    return 2;
  }

  const auto rows = parse_folded(folded);
  if (rows.empty()) {
    std::cerr << "bpar_prof flame: no folded stacks in " << source
              << " (profiler not running, or nothing instrumented ran in "
                 "the window)\n";
    return 1;
  }

  FlameNode root;
  for (const auto& [frames, count] : rows) {
    root.total += count;
    FlameNode* node = &root;
    for (const std::string& frame : frames) {
      auto& child = node->children[frame];
      if (child == nullptr) child = std::make_unique<FlameNode>();
      child->total += count;
      node = child.get();
    }
    node->self += count;
  }

  std::printf("%llu sample(s), %zu unique stack(s) from %s\n\n",
              static_cast<unsigned long long>(root.total), rows.size(),
              source.c_str());
  std::printf("  %7s  %10s  %s\n", "share", "samples", "span path");
  print_flame(root, "", -1, root.total, args.get_double("min-percent"));

  if (!args.get_string("out").empty()) {
    std::ofstream os = bpar::obs::open_output_file(args.get_string("out"));
    os << folded;
    std::cout << "\nwrote folded stacks to " << args.get_string("out")
              << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: bpar_prof <analyze|diff|baseline|request|flame> "
                 "[args...]\n"
                 "run 'bpar_prof <command> --help' for details\n";
    return 2;
  }
  const std::string command = argv[1];
  try {
    if (command == "analyze") return cmd_analyze(argc - 1, argv + 1);
    if (command == "diff") return cmd_diff(argc - 1, argv + 1);
    if (command == "baseline") return cmd_baseline(argc - 1, argv + 1);
    if (command == "request") return cmd_request(argc - 1, argv + 1);
    if (command == "flame") return cmd_flame(argc - 1, argv + 1);
  } catch (const std::exception& e) {
    std::cerr << "bpar_prof " << command << ": " << e.what() << "\n";
    return 2;
  }
  std::cerr << "bpar_prof: unknown command '" << command
            << "' (expected analyze, diff, baseline, request, or flame)\n";
  return 2;
}
