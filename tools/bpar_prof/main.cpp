// bpar_prof — offline analysis of B-Par traces and run reports.
//
//   bpar_prof analyze <trace.json> [--json] [--out <path>]
//       Measured critical path, per-worker idle attribution, and the
//       scheduler scorecard from a unified trace (bench --trace output).
//
//   bpar_prof diff <old.json> <new.json> [more-new.json ...]
//       Noise-aware comparison of two reports/baselines/benchmark dumps.
//       Extra <new> files are min-of-N merged before comparing, so noisy
//       machines can diff against the best of several fresh runs.
//       Exit 0 = clean, 1 = performance regression, 2 = structural
//       mismatch (unreadable/incompatible documents).
//
//   bpar_prof baseline --out <baseline.json> <run.json> [...]
//       Seeds or (with --merge) updates a min-of-N baseline from run
//       reports / google-benchmark JSON. See EXPERIMENTS.md for the
//       refresh procedure.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/diff.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

using bpar::obs::JsonValue;

JsonValue load_json(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) {
    BPAR_RAISE(bpar::util::Error, "cannot open ", path);
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  return bpar::obs::json_parse(ss.str());
}

int cmd_analyze(int argc, const char* const* argv) {
  bpar::util::ArgParser args("bpar_prof analyze",
                             "Analyze a unified trace JSON file");
  args.add_flag("json", "emit machine-readable JSON instead of tables");
  args.add_string("out", "", "write the (JSON) analysis to this path");
  args.add_int("model-critical-path-ns", 0,
               "TaskGraph::critical_path_cost for the same run, for "
               "measured-vs-model comparison");
  if (!args.parse(argc, argv)) return 2;
  if (args.positional().size() != 1) {
    std::cerr << "usage: bpar_prof analyze <trace.json> [--json] "
                 "[--out <path>]\n";
    return 2;
  }
  const bpar::obs::analysis::TraceModel model =
      bpar::obs::analysis::model_from_trace_json(
          load_json(args.positional()[0]));
  const bpar::obs::analysis::Analysis analysis = bpar::obs::analysis::analyze(
      model,
      static_cast<std::uint64_t>(args.get_int("model-critical-path-ns")));
  if (!args.get_string("out").empty()) {
    std::ofstream os = bpar::obs::open_output_file(args.get_string("out"));
    os << bpar::obs::analysis::to_json(analysis);
  }
  if (args.flag("json")) {
    std::cout << bpar::obs::analysis::to_json(analysis);
  } else {
    bpar::obs::analysis::print_human(analysis, std::cout);
  }
  return 0;
}

int cmd_diff(int argc, const char* const* argv) {
  bpar::util::ArgParser args("bpar_prof diff",
                             "Diff two reports with noise-aware thresholds");
  args.add_double("rel", 0.15, "relative change threshold (fraction)");
  args.add_double("abs", 0.5,
                  "absolute floor for lower-is-better metrics (ms-scale)");
  args.add_double("abs-hb", 0.05,
                  "absolute floor for higher-is-better metrics");
  if (!args.parse(argc, argv)) return 2;
  if (args.positional().size() < 2) {
    std::cerr << "usage: bpar_prof diff <old.json> <new.json> [...]\n";
    return 2;
  }
  bpar::obs::diff::DiffOptions options;
  options.rel_threshold = args.get_double("rel");
  options.abs_threshold = args.get_double("abs");
  options.abs_threshold_hb = args.get_double("abs-hb");

  bpar::obs::diff::DiffResult result;
  try {
    const bpar::obs::diff::MetricMap old_map =
        bpar::obs::diff::flatten(load_json(args.positional()[0]));
    // Min-of-N over the new side: merge every fresh run, keep the best
    // value per metric, and only then compare.
    bpar::obs::diff::Baseline fresh;
    for (std::size_t i = 1; i < args.positional().size(); ++i) {
      bpar::obs::diff::merge_baseline(
          fresh, bpar::obs::diff::flatten(load_json(args.positional()[i])));
    }
    result = bpar::obs::diff::diff_maps(
        old_map, bpar::obs::diff::baseline_metrics(fresh), options);
  } catch (const bpar::util::Error& e) {
    result.structural = true;
    result.structural_reason = e.what();
  }
  bpar::obs::diff::print_diff(result, std::cout);
  return result.exit_code();
}

int cmd_baseline(int argc, const char* const* argv) {
  bpar::util::ArgParser args("bpar_prof baseline",
                             "Seed/update a min-of-N perf baseline");
  args.add_string("out", "bench_results/baseline.json",
                  "baseline file to write");
  args.add_flag("merge", "start from the existing --out contents");
  if (!args.parse(argc, argv)) return 2;
  if (args.positional().empty()) {
    std::cerr << "usage: bpar_prof baseline --out <baseline.json> "
                 "<run.json> [...]\n";
    return 2;
  }
  bpar::obs::diff::Baseline baseline;
  if (args.flag("merge")) {
    baseline = bpar::obs::diff::load_baseline(load_json(args.get_string("out")));
  }
  for (const std::string& path : args.positional()) {
    bpar::obs::diff::merge_baseline(
        baseline, bpar::obs::diff::flatten(load_json(path)));
  }
  std::ofstream os = bpar::obs::open_output_file(args.get_string("out"));
  os << bpar::obs::diff::baseline_json(baseline);
  std::cout << "wrote " << baseline.size() << " metric(s) to "
            << args.get_string("out") << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: bpar_prof <analyze|diff|baseline> [args...]\n"
                 "run 'bpar_prof <command> --help' for details\n";
    return 2;
  }
  const std::string command = argv[1];
  try {
    if (command == "analyze") return cmd_analyze(argc - 1, argv + 1);
    if (command == "diff") return cmd_diff(argc - 1, argv + 1);
    if (command == "baseline") return cmd_baseline(argc - 1, argv + 1);
  } catch (const std::exception& e) {
    std::cerr << "bpar_prof " << command << ": " << e.what() << "\n";
    return 2;
  }
  std::cerr << "bpar_prof: unknown command '" << command
            << "' (expected analyze, diff, or baseline)\n";
  return 2;
}
