// bpar_serve — load generator for the inference serving engine (src/serve).
// Spins up an InferenceEngine, drives it with N client threads — closed
// loop by default, open loop (fixed-rate Poisson arrivals) with --rate —
// and reports client-observed latency percentiles, throughput, the
// per-Status outcome breakdown, and the engine's batching/resilience
// counters.
//
//   ./bpar_serve --clients 8 --requests 50 --max-batch 8 --max-delay-us 500
//   ./bpar_serve --compare            # cached program replay vs rebuild
//   ./bpar_serve --no-batching        # batch-1 latency mode
//   ./bpar_serve --rate 2000 --priorities high,normal,batch
//                --shed-wait-us 4000  # open-loop overload + shedding
//   ./bpar_serve --faults 'seed=7,throw=0.02,stall=0.002'
//                --watchdog-ms 200 --rate 500   # chaos serving
//
// With --trace/--metrics the run emits obs telemetry that `bpar_prof
// analyze` consumes unchanged (serve.queue_us / serve.batch_form_us /
// serve.exec_us histograms, shed/retry counters, dispatcher spans).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "graph/passes/registry.hpp"
#include "kernels/backend.hpp"
#include "obs/session.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"
#include "taskrt/fault.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace {

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string item = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<int> parse_seq_list(const std::string& text) {
  std::vector<int> out;
  for (const std::string& item : split_list(text)) {
    out.push_back(std::stoi(item));
  }
  return out;
}

struct RunOutcome {
  bpar::serve::LoadgenResult load;
  bpar::serve::EngineStats stats;
};

}  // namespace

int main(int argc, char** argv) {
  bpar::util::ArgParser args("bpar_serve", "serving load generator");
  bpar::obs::add_cli_flags(args);
  args.add_int("clients", 8, "concurrent client threads");
  args.add_int("requests", 50, "requests per client");
  args.add_int("workers", 4, "executor worker threads");
  args.add_int("replicas", 4, "executor replicas (clamped to batch rows)");
  args.add_int("max-batch", 8, "largest coalesced micro-batch");
  args.add_int("max-delay-us", 500, "micro-batch flush deadline");
  args.add_int("queue", 256, "bounded request queue capacity");
  args.add_int("hidden", 64, "hidden size");
  args.add_int("layers", 2, "BLSTM layers");
  args.add_int("classes", 10, "output classes");
  args.add_string("seq", "20", "comma-separated request sequence lengths");
  args.add_int("seed", 1, "request generator seed");
  args.add_flag("no-batching", "serve every request alone (batch-1 mode)");
  args.add_flag("no-labels",
                "send unlabeled requests (skips loss/logit extraction)");
  args.add_flag("rebuild",
                "rebuild task graphs per micro-batch (no program cache)");
  args.add_flag("compare",
                "run cached-replay and rebuild-per-call back to back");
  args.add_string("backend", "",
                  "kernel backend: scalar|avx2|avx512|neon|native "
                  "(default: auto-detect, or $BPAR_KERNEL_BACKEND)");
  args.add_flag("quantized",
                "serve with int8 quantized weights (DESIGN.md 5g)");
  args.add_string("passes", "default",
                  "graph-optimizer pass pipeline (DESIGN.md 5k): "
                  "comma-separated pass list, 'default', 'none', or 'list' "
                  "to print the registry (env: $BPAR_GRAPH_PASSES)");
  args.add_int("rate", 0,
               "open-loop offered load in requests/s, Poisson arrivals "
               "(0 = closed loop)");
  args.add_string("priorities", "normal",
                  "comma-separated priority cycle: high|normal|batch");
  args.add_int("deadline-us", 0, "per-request relative deadline (0 = none)");
  args.add_string("faults", "",
                  "deterministic fault injection spec for the executor "
                  "runtime, e.g. 'seed=7,throw=0.02,stall=0.002'");
  args.add_int("watchdog-ms", 0,
               "engine watchdog: release injected stalls after this long "
               "without dispatcher progress (0 = off)");
  args.add_int("shed-wait-us", 0,
               "load-shed queue-delay threshold (0 = 16 * max-delay-us)");
  args.add_int("max-retries", 2, "whole-batch retries before bisection");
  args.add_int("breaker", 3,
               "consecutive failed batches before a degradation step "
               "(0 = breaker off)");
  args.add_int("stats-port", -1,
               "live stats endpoint port: /metrics /statz /healthz "
               "(-1 = off, 0 = ephemeral)");
  args.add_int("sampler-period-ms", 1000,
               "metrics sampler tick period for windowed rollups");
  args.add_flag("no-request-trace",
                "disable per-request stage tracing (bpar_prof request)");
  args.add_int("slo-target-ms", 50,
               "latency SLO target for the built-in SLO tracker");
  args.add_string("dump-dir", "",
                  "arm the flight recorder: breaker trips, watchdog fires, "
                  "SLO alerts, and GET /debug/dump write trace+report "
                  "bundles here (empty = off)");
  args.add_int("dump-debounce-ms", 5000,
               "minimum spacing between flight-recorder dumps");
  args.add_flag("profile",
                "run the continuous span-stack profiler (GET /profilez "
                "windows; dump bundles carry a folded profile)");
  args.add_int("profiler-period-us", 2000, "profiler sampling period");
  if (!args.parse(argc, argv)) return 1;
  bpar::obs::ObsSession session("bpar_serve", args,
                                bpar::obs::ReportMode::kJson);

  if (args.get_string("passes") == "list") {
    std::printf("registered graph passes:\n");
    for (const std::string& name : bpar::graph::passes::known_passes()) {
      std::printf("  %s\n", name.c_str());
    }
    std::printf("default pipeline: %s\n",
                std::string(bpar::graph::passes::kDefaultPassSpec).c_str());
    return 0;
  }

  const std::string backend = args.get_string("backend");
  if (!backend.empty() && !bpar::kernels::set_backend(backend)) {
    std::fprintf(stderr,
                 "bpar_serve: unknown --backend '%s' (available:", backend.c_str());
    for (const auto* b : bpar::kernels::available_backends()) {
      std::fprintf(stderr, " %s", b->name);
    }
    std::fprintf(stderr, ")\n");
    return 1;
  }

  const std::vector<int> seq_lengths = parse_seq_list(args.get_string("seq"));
  if (seq_lengths.empty()) {
    std::fprintf(stderr, "bpar_serve: --seq must name at least one length\n");
    return 1;
  }

  bpar::rnn::NetworkConfig cfg;
  cfg.cell = bpar::rnn::CellType::kLstm;
  cfg.input_size = 16;
  cfg.hidden_size = static_cast<int>(args.get_int("hidden"));
  cfg.num_layers = static_cast<int>(args.get_int("layers"));
  cfg.seq_length = seq_lengths.front();
  cfg.batch_size = static_cast<int>(args.get_int("max-batch"));
  cfg.num_classes = static_cast<int>(args.get_int("classes"));

  bpar::serve::EngineOptions engine_options;
  engine_options.executor.num_workers =
      static_cast<int>(args.get_int("workers"));
  engine_options.executor.num_replicas =
      static_cast<int>(args.get_int("replicas"));
  engine_options.max_batch = static_cast<int>(args.get_int("max-batch"));
  engine_options.max_delay_us =
      static_cast<std::uint32_t>(args.get_int("max-delay-us"));
  engine_options.max_queue =
      static_cast<std::size_t>(args.get_int("queue"));
  engine_options.enable_batching = !args.flag("no-batching");
  engine_options.quantized = args.flag("quantized");
  engine_options.passes = args.get_string("passes");
  engine_options.shed_wait_us =
      static_cast<std::uint32_t>(args.get_int("shed-wait-us"));
  engine_options.max_batch_retries =
      static_cast<int>(args.get_int("max-retries"));
  engine_options.breaker_threshold =
      static_cast<int>(args.get_int("breaker"));
  engine_options.watchdog_ms =
      static_cast<std::uint32_t>(args.get_int("watchdog-ms"));
  engine_options.stats_port = static_cast<int>(args.get_int("stats-port"));
  engine_options.sampler_period_ms =
      static_cast<std::uint32_t>(args.get_int("sampler-period-ms"));
  engine_options.trace_requests = !args.flag("no-request-trace");
  engine_options.slo.latency_target_us =
      static_cast<double>(args.get_int("slo-target-ms")) * 1000.0;
  engine_options.dump_dir = args.get_string("dump-dir");
  engine_options.dump_debounce_ms =
      static_cast<std::uint32_t>(args.get_int("dump-debounce-ms"));
  engine_options.enable_profiler = args.flag("profile");
  engine_options.profiler_period_us =
      static_cast<std::uint32_t>(args.get_int("profiler-period-us"));
  try {
    engine_options.executor.faults =
        bpar::taskrt::FaultSpec::parse(args.get_string("faults"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bpar_serve: bad --faults: %s\n", e.what());
    return 1;
  }

  bpar::serve::LoadgenOptions load_options;
  load_options.clients = static_cast<int>(args.get_int("clients"));
  load_options.requests_per_client =
      static_cast<int>(args.get_int("requests"));
  load_options.seq_lengths = seq_lengths;
  load_options.with_labels = !args.flag("no-labels");
  load_options.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  load_options.rate_rps = static_cast<double>(args.get_int("rate"));
  load_options.deadline_us =
      static_cast<std::uint32_t>(args.get_int("deadline-us"));
  load_options.priorities.clear();
  try {
    for (const std::string& name : split_list(args.get_string("priorities"))) {
      load_options.priorities.push_back(bpar::serve::parse_priority(name));
    }
  } catch (const bpar::util::Error& e) {
    std::fprintf(stderr, "bpar_serve: bad --priorities: %s\n", e.what());
    return 1;
  }
  if (load_options.priorities.empty()) {
    load_options.priorities = {bpar::serve::Priority::kNormal};
  }

  // With --trace, the cached-mode engine records per-task timing and is
  // kept alive past session.finish() so its unified (task slices + obs
  // spans) trace replaces the spans-only one — `bpar_prof analyze` needs
  // the task slices.
  const std::string trace_path = args.get_string("trace");
  std::unique_ptr<bpar::serve::InferenceEngine> traced_engine;
  const auto run_one = [&](bool rebuild) -> RunOutcome {
    bpar::serve::EngineOptions options = engine_options;
    options.rebuild_per_call = rebuild;
    // An armed flight recorder also wants per-task timing: a dump whose
    // trace carries task slices is analyzable (`bpar_prof analyze`), one
    // without is just spans. Rebuild mode has no cached program to trace.
    options.record_trace =
        (!trace_path.empty() || !options.dump_dir.empty()) && !rebuild;
    auto engine =
        std::make_unique<bpar::serve::InferenceEngine>(cfg, options);
    if (engine->stats_port() >= 0) {
      std::printf("stats endpoint: http://127.0.0.1:%d  "
                  "(/metrics /statz /healthz /profilez /debug/dump)\n",
                  engine->stats_port());
      std::fflush(stdout);
    }
    engine->warmup(seq_lengths);
    RunOutcome outcome;
    outcome.load = bpar::serve::run_load(*engine, load_options);
    engine->shutdown();
    outcome.stats = engine->stats();
    if (const auto* flight = engine->flight_recorder()) {
      std::printf("flight recorder: %llu dump(s) in %s  (%llu suppressed)\n",
                  static_cast<unsigned long long>(flight->dumps()),
                  flight->options().dir.c_str(),
                  static_cast<unsigned long long>(flight->suppressed()));
      std::fflush(stdout);
    }
    if (options.record_trace && !trace_path.empty()) {
      traced_engine = std::move(engine);
    }
    return outcome;
  };

  std::vector<std::pair<std::string, bool>> modes;
  if (args.flag("compare")) {
    modes = {{"cached", false}, {"rebuild", true}};
  } else {
    const bool rebuild = args.flag("rebuild");
    modes = {{rebuild ? "rebuild" : "cached", rebuild}};
  }

  const std::string traffic =
      load_options.rate_rps > 0.0
          ? "open loop @ " + std::to_string(args.get_int("rate")) + " rps"
          : std::string("closed loop");
  std::printf("bpar_serve: %d clients x %d requests (%s), max_batch=%d, "
              "max_delay=%ldus, batching=%s, backend=%s, weights=%s, "
              "faults=%s\n\n",
              load_options.clients, load_options.requests_per_client,
              traffic.c_str(),
              engine_options.max_batch,
              static_cast<long>(engine_options.max_delay_us),
              engine_options.enable_batching ? "on" : "off",
              bpar::kernels::active_backend_name(),
              engine_options.quantized ? "int8" : "fp32",
              engine_options.executor.faults.enabled() ? "on" : "off");

  bpar::util::Table table({"mode", "offered rps", "throughput rps", "p50 ms",
                           "p95 ms", "p99 ms", "mean ms", "ok", "rejected",
                           "shed", "expired", "failed", "batches",
                           "padded rows"});
  bpar::util::Table status_table(
      {"mode", "status", "count", "p50 ms", "p95 ms", "p99 ms"});
  bpar::util::Table resilience_table(
      {"mode", "retries", "bisections", "internal errors", "degraded",
       "recovered", "degrade level", "watchdog fires", "rebuilds",
       "health"});
  for (const auto& [name, rebuild] : modes) {
    const RunOutcome outcome = run_one(rebuild);
    const auto& p = outcome.load.latency_ms;
    table.add_row({name, bpar::util::fmt(outcome.load.offered_rps, 1),
                   bpar::util::fmt(outcome.load.throughput_rps, 1),
                   bpar::util::fmt(p.p50, 3), bpar::util::fmt(p.p95, 3),
                   bpar::util::fmt(p.p99, 3), bpar::util::fmt(p.mean, 3),
                   std::to_string(outcome.load.ok),
                   std::to_string(outcome.load.rejected),
                   std::to_string(outcome.load.shed),
                   std::to_string(outcome.load.expired),
                   std::to_string(outcome.load.failed),
                   std::to_string(outcome.stats.batches),
                   std::to_string(outcome.stats.padded_rows)});
    for (int s = 0; s < bpar::serve::kNumStatuses; ++s) {
      const auto idx = static_cast<std::size_t>(s);
      if (outcome.load.by_status[idx] == 0) continue;
      const auto& sp = outcome.load.latency_by_status[idx];
      status_table.add_row(
          {name,
           bpar::serve::status_name(static_cast<bpar::serve::Status>(s)),
           std::to_string(outcome.load.by_status[idx]),
           bpar::util::fmt(sp.p50, 3), bpar::util::fmt(sp.p95, 3),
           bpar::util::fmt(sp.p99, 3)});
    }
    resilience_table.add_row(
        {name, std::to_string(outcome.stats.retries),
         std::to_string(outcome.stats.bisections),
         std::to_string(outcome.stats.internal_errors),
         std::to_string(outcome.stats.degraded_steps),
         std::to_string(outcome.stats.recovered_steps),
         std::to_string(outcome.stats.degrade_level),
         std::to_string(outcome.stats.watchdog_fires),
         std::to_string(outcome.stats.executor_rebuilds),
         bpar::serve::health_name(outcome.stats.health)});
  }
  table.print("serving load test");
  status_table.print("per-status outcomes");
  resilience_table.print("resilience counters");
  session.report().add_table("serving", table.header(), table.data());
  session.report().add_table("serving_status", status_table.header(),
                             status_table.data());
  session.report().add_table("serving_resilience", resilience_table.header(),
                             resilience_table.data());
  session.finish();
  if (traced_engine != nullptr) {
    traced_engine->write_unified_trace(trace_path);
    std::printf("\nwrote %s (analyze with: bpar_prof analyze %s)\n",
                trace_path.c_str(), trace_path.c_str());
  }
  return 0;
}
