// bpar_serve — multi-threaded closed-loop load generator for the inference
// serving engine (src/serve). Spins up an InferenceEngine, drives it with N
// client threads, and reports client-observed latency percentiles,
// throughput, and the engine's batching/backpressure counters.
//
//   ./bpar_serve --clients 8 --requests 50 --max-batch 8 --max-delay-us 500
//   ./bpar_serve --compare            # cached program replay vs rebuild
//   ./bpar_serve --no-batching        # batch-1 latency mode
//
// With --trace/--metrics the run emits obs telemetry that `bpar_prof
// analyze` consumes unchanged (serve.queue_us / serve.batch_form_us /
// serve.exec_us histograms, throughput gauges, dispatcher spans).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "kernels/backend.hpp"
#include "obs/session.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

std::vector<int> parse_seq_list(const std::string& text) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string item = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!item.empty()) out.push_back(std::stoi(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

struct RunOutcome {
  bpar::serve::LoadgenResult load;
  bpar::serve::InferenceEngine::Stats stats;
};

}  // namespace

int main(int argc, char** argv) {
  bpar::util::ArgParser args("bpar_serve",
                             "closed-loop serving load generator");
  bpar::obs::add_cli_flags(args);
  args.add_int("clients", 8, "concurrent closed-loop client threads");
  args.add_int("requests", 50, "requests per client");
  args.add_int("workers", 4, "executor worker threads");
  args.add_int("replicas", 4, "executor replicas (clamped to batch rows)");
  args.add_int("max-batch", 8, "largest coalesced micro-batch");
  args.add_int("max-delay-us", 500, "micro-batch flush deadline");
  args.add_int("queue", 256, "bounded request queue capacity");
  args.add_int("hidden", 64, "hidden size");
  args.add_int("layers", 2, "BLSTM layers");
  args.add_int("classes", 10, "output classes");
  args.add_string("seq", "20", "comma-separated request sequence lengths");
  args.add_int("seed", 1, "request generator seed");
  args.add_flag("no-batching", "serve every request alone (batch-1 mode)");
  args.add_flag("no-labels",
                "send unlabeled requests (skips loss/logit extraction)");
  args.add_flag("rebuild",
                "rebuild task graphs per micro-batch (no program cache)");
  args.add_flag("compare",
                "run cached-replay and rebuild-per-call back to back");
  args.add_string("backend", "",
                  "kernel backend: scalar|avx2|avx512|neon|native "
                  "(default: auto-detect, or $BPAR_KERNEL_BACKEND)");
  args.add_flag("quantized",
                "serve with int8 quantized weights (DESIGN.md 5g)");
  if (!args.parse(argc, argv)) return 1;
  bpar::obs::ObsSession session("bpar_serve", args,
                                bpar::obs::ReportMode::kJson);

  const std::string backend = args.get_string("backend");
  if (!backend.empty() && !bpar::kernels::set_backend(backend)) {
    std::fprintf(stderr,
                 "bpar_serve: unknown --backend '%s' (available:", backend.c_str());
    for (const auto* b : bpar::kernels::available_backends()) {
      std::fprintf(stderr, " %s", b->name);
    }
    std::fprintf(stderr, ")\n");
    return 1;
  }

  const std::vector<int> seq_lengths = parse_seq_list(args.get_string("seq"));
  if (seq_lengths.empty()) {
    std::fprintf(stderr, "bpar_serve: --seq must name at least one length\n");
    return 1;
  }

  bpar::rnn::NetworkConfig cfg;
  cfg.cell = bpar::rnn::CellType::kLstm;
  cfg.input_size = 16;
  cfg.hidden_size = static_cast<int>(args.get_int("hidden"));
  cfg.num_layers = static_cast<int>(args.get_int("layers"));
  cfg.seq_length = seq_lengths.front();
  cfg.batch_size = static_cast<int>(args.get_int("max-batch"));
  cfg.num_classes = static_cast<int>(args.get_int("classes"));

  bpar::serve::EngineOptions engine_options;
  engine_options.executor.num_workers =
      static_cast<int>(args.get_int("workers"));
  engine_options.executor.num_replicas =
      static_cast<int>(args.get_int("replicas"));
  engine_options.max_batch = static_cast<int>(args.get_int("max-batch"));
  engine_options.max_delay_us =
      static_cast<std::uint32_t>(args.get_int("max-delay-us"));
  engine_options.max_queue =
      static_cast<std::size_t>(args.get_int("queue"));
  engine_options.enable_batching = !args.flag("no-batching");
  engine_options.quantized = args.flag("quantized");

  bpar::serve::LoadgenOptions load_options;
  load_options.clients = static_cast<int>(args.get_int("clients"));
  load_options.requests_per_client =
      static_cast<int>(args.get_int("requests"));
  load_options.seq_lengths = seq_lengths;
  load_options.with_labels = !args.flag("no-labels");
  load_options.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  // With --trace, the cached-mode engine records per-task timing and is
  // kept alive past session.finish() so its unified (task slices + obs
  // spans) trace replaces the spans-only one — `bpar_prof analyze` needs
  // the task slices.
  const std::string trace_path = args.get_string("trace");
  std::unique_ptr<bpar::serve::InferenceEngine> traced_engine;
  const auto run_one = [&](bool rebuild) -> RunOutcome {
    bpar::serve::EngineOptions options = engine_options;
    options.rebuild_per_call = rebuild;
    options.record_trace = !trace_path.empty() && !rebuild;
    auto engine =
        std::make_unique<bpar::serve::InferenceEngine>(cfg, options);
    engine->warmup(seq_lengths);
    RunOutcome outcome;
    outcome.load = bpar::serve::run_load(*engine, load_options);
    engine->shutdown();
    outcome.stats = engine->stats();
    if (options.record_trace) traced_engine = std::move(engine);
    return outcome;
  };

  std::vector<std::pair<std::string, bool>> modes;
  if (args.flag("compare")) {
    modes = {{"cached", false}, {"rebuild", true}};
  } else {
    const bool rebuild = args.flag("rebuild");
    modes = {{rebuild ? "rebuild" : "cached", rebuild}};
  }

  std::printf("bpar_serve: %d clients x %d requests, max_batch=%d, "
              "max_delay=%ldus, batching=%s, backend=%s, weights=%s\n\n",
              load_options.clients, load_options.requests_per_client,
              engine_options.max_batch,
              static_cast<long>(engine_options.max_delay_us),
              engine_options.enable_batching ? "on" : "off",
              bpar::kernels::active_backend_name(),
              engine_options.quantized ? "int8" : "fp32");

  bpar::util::Table table({"mode", "throughput rps", "p50 ms", "p95 ms",
                           "p99 ms", "mean ms", "ok", "rejected", "expired",
                           "failed", "batches", "padded rows"});
  for (const auto& [name, rebuild] : modes) {
    const RunOutcome outcome = run_one(rebuild);
    const auto& p = outcome.load.latency_ms;
    table.add_row({name, bpar::util::fmt(outcome.load.throughput_rps, 1),
                   bpar::util::fmt(p.p50, 3), bpar::util::fmt(p.p95, 3),
                   bpar::util::fmt(p.p99, 3), bpar::util::fmt(p.mean, 3),
                   std::to_string(outcome.load.ok),
                   std::to_string(outcome.load.rejected),
                   std::to_string(outcome.load.expired),
                   std::to_string(outcome.load.failed),
                   std::to_string(outcome.stats.batches),
                   std::to_string(outcome.stats.padded_rows)});
  }
  table.print("serving load test");
  session.report().add_table("serving", table.header(), table.data());
  session.finish();
  if (traced_engine != nullptr) {
    traced_engine->write_unified_trace(trace_path);
    std::printf("\nwrote %s (analyze with: bpar_prof analyze %s)\n",
                trace_path.c_str(), trace_path.c_str());
  }
  return 0;
}
