// bpar_top — live terminal dashboard for a serving engine's stats
// endpoint (bpar_serve --stats-port N, or any InferenceEngine with
// EngineOptions::stats_port set).
//
//   ./bpar_top --port 18990                 # refresh every second
//   ./bpar_top --port 18990 --interval-ms 250
//   ./bpar_top --port 18990 --once          # one frame, no clear (CI)
//
// Polls /statz, renders health + degradation, windowed throughput,
// per-class queue depths, rolling latency percentiles, the SLO burn-rate
// panel, and a throughput sparkline from the sampler's serve.completed
// rate series. Exits 1 when the endpoint cannot be reached (--once) or
// vanishes mid-watch.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/stats_server.hpp"
#include "util/cli.hpp"

namespace {

using bpar::obs::JsonValue;

volatile std::sig_atomic_t g_stop = 0;
void handle_sigint(int) { g_stop = 1; }

double num(const JsonValue* v, double fallback = 0.0) {
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string str(const JsonValue* v, const std::string& fallback = "?") {
  return v != nullptr && v->is_string() ? v->str : fallback;
}

/// Unicode block-character sparkline of the last `width` values.
std::string sparkline(const std::vector<double>& values, std::size_t width) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) return "(no samples yet)";
  const std::size_t n = std::min(values.size(), width);
  const std::size_t start = values.size() - n;
  double hi = 0.0;
  for (std::size_t i = start; i < values.size(); ++i) {
    hi = std::max(hi, values[i]);
  }
  std::string out;
  for (std::size_t i = start; i < values.size(); ++i) {
    const double frac = hi > 0.0 ? values[i] / hi : 0.0;
    const int level =
        std::min(7, static_cast<int>(frac * 8.0));
    out += kBlocks[level];
  }
  return out;
}

/// "" when the payload looks like a /statz document this bpar_top can
/// render; otherwise a one-line description of what is wrong (exits 1).
/// Guards against pointing --port at some other HTTP server, or at a
/// bpar_serve from an incompatible schema generation.
std::string validate_statz(const JsonValue& statz) {
  if (!statz.is_object()) return "payload is not a JSON object";
  const JsonValue* type = statz.find("type");
  if (type == nullptr || !type->is_string() || type->str != "statz") {
    return "missing or wrong \"type\" (want \"statz\" — is this a "
           "bpar_serve stats endpoint?)";
  }
  const JsonValue* version = statz.find("schema_version");
  if (version == nullptr || !version->is_number()) {
    return "missing \"schema_version\"";
  }
  if (version->number != 1.0) {
    return "unsupported schema_version " +
           std::to_string(static_cast<int>(version->number)) + " (want 1)";
  }
  const JsonValue* engine = statz.find("engine");
  if (engine == nullptr || !engine->is_object()) {
    return "missing \"engine\" section";
  }
  return {};
}

/// The sampler publishes counter rates as registry ring series; /statz
/// carries them under metrics.series.
std::vector<double> rate_series(const JsonValue& statz,
                                const std::string& name) {
  std::vector<double> out;
  const JsonValue* metrics = statz.find("metrics");
  if (metrics == nullptr) return out;
  const JsonValue* series = metrics->find("series");
  if (series == nullptr) return out;
  const JsonValue* values = series->find(name);
  if (values == nullptr || !values->is_array()) return out;
  for (const JsonValue& v : values->array) {
    if (v.is_number()) out.push_back(v.number);
  }
  return out;
}

void print_frame(const JsonValue& statz, const std::string& endpoint) {
  const JsonValue* engine = statz.find("engine");
  const JsonValue* slo = statz.find("slo");
  const JsonValue* sampler = statz.find("sampler");

  std::printf("bpar_top — %s   uptime %.1fs\n", endpoint.c_str(),
              num(statz.find("uptime_s")));
  if (engine != nullptr) {
    const JsonValue* qd = engine->find("queue_depth");
    std::printf(
        "health %-9s degrade L%d   queue %d (high %d / normal %d / "
        "batch %d)\n",
        str(engine->find("health")).c_str(),
        static_cast<int>(num(engine->find("degrade_level"))),
        qd != nullptr ? static_cast<int>(num(qd->find("total"))) : 0,
        qd != nullptr ? static_cast<int>(num(qd->find("high"))) : 0,
        qd != nullptr ? static_cast<int>(num(qd->find("normal"))) : 0,
        qd != nullptr ? static_cast<int>(num(qd->find("batch"))) : 0);
    std::printf(
        "requests %llu   ok %llu   shed %llu   expired %llu   rejected "
        "%llu   internal %llu\n",
        static_cast<unsigned long long>(num(engine->find("submitted"))),
        static_cast<unsigned long long>(num(engine->find("completed"))),
        static_cast<unsigned long long>(num(engine->find("shed"))),
        static_cast<unsigned long long>(num(engine->find("expired"))),
        static_cast<unsigned long long>(num(engine->find("rejected"))),
        static_cast<unsigned long long>(
            num(engine->find("internal_errors"))));
    std::printf(
        "batches %llu   retries %llu   bisections %llu   rebuilds %llu   "
        "watchdog %llu\n",
        static_cast<unsigned long long>(num(engine->find("batches"))),
        static_cast<unsigned long long>(num(engine->find("retries"))),
        static_cast<unsigned long long>(num(engine->find("bisections"))),
        static_cast<unsigned long long>(
            num(engine->find("executor_rebuilds"))),
        static_cast<unsigned long long>(
            num(engine->find("watchdog_fires"))));
  }

  if (sampler != nullptr && sampler->is_object()) {
    const double window_s = num(sampler->find("window_s"), 10.0);
    const JsonValue* windows = sampler->find("windows");
    const JsonValue* counters =
        windows != nullptr ? windows->find("counters") : nullptr;
    const JsonValue* histos =
        windows != nullptr ? windows->find("histograms") : nullptr;
    if (counters != nullptr) {
      const JsonValue* completed = counters->find("serve.completed");
      const JsonValue* requests = counters->find("serve.requests");
      std::printf("last %.0fs: %.1f done/s (offered %.1f/s)\n", window_s,
                  completed != nullptr
                      ? num(completed->find("rate_per_s"))
                      : 0.0,
                  requests != nullptr ? num(requests->find("rate_per_s"))
                                      : 0.0);
    }
    if (histos != nullptr) {
      const JsonValue* request_us = histos->find("serve.request_us");
      const JsonValue* exec_us = histos->find("serve.exec_us");
      if (request_us != nullptr) {
        std::printf(
            "latency (last %.0fs): p50 %.2fms  p95 %.2fms  p99 %.2fms\n",
            window_s, num(request_us->find("p50")) / 1000.0,
            num(request_us->find("p95")) / 1000.0,
            num(request_us->find("p99")) / 1000.0);
      }
      if (exec_us != nullptr) {
        std::printf("exec    (last %.0fs): p50 %.2fms  p99 %.2fms\n",
                    window_s, num(exec_us->find("p50")) / 1000.0,
                    num(exec_us->find("p99")) / 1000.0);
      }
    }
  }

  if (slo != nullptr) {
    std::printf(
        "SLO: avail %.4f (obj %.4f)   latency attainment %.4f (target "
        "%.0fms)\n",
        num(slo->find("availability"), 1.0),
        num(slo->find("availability_objective"), 0.0),
        num(slo->find("latency_attainment"), 1.0),
        num(slo->find("latency_target_us")) / 1000.0);
    const bool alerting = [&] {
      const JsonValue* a = slo->find("alerting");
      return a != nullptr && a->boolean;
    }();
    std::printf(
        "     budget burn: short %.2fx  long %.2fx  consumed %.2f%%  %s\n",
        num(slo->find("burn_short")), num(slo->find("burn_long")),
        num(slo->find("budget_consumed")) * 100.0,
        alerting ? "** ALERTING **" : "");
  }

  // Memory panel (DESIGN.md §5j): subsystem trackers + /proc/self.
  const JsonValue* memory = statz.find("memory");
  if (memory != nullptr && memory->is_object()) {
    constexpr double kMiB = 1024.0 * 1024.0;
    const auto tracker_mb = [&](const char* sub, const char* field) {
      const JsonValue* t = memory->find(sub);
      return t != nullptr ? num(t->find(field)) / kMiB : 0.0;
    };
    std::printf(
        "mem: tensor %.1f MiB (peak %.1f)   programs %.2f MiB   queue "
        "%.2f MiB\n",
        tracker_mb("tensor", "bytes"), tracker_mb("tensor", "peak_bytes"),
        tracker_mb("program_cache", "bytes"),
        tracker_mb("serve_queue", "bytes"));
    const JsonValue* proc = memory->find("proc");
    if (proc != nullptr && proc->is_object()) {
      std::printf(
          "proc: rss %.1f MiB   threads %d   faults %llu minor / %llu "
          "major   ctx %llu vol / %llu invol\n",
          num(proc->find("rss_bytes")) / kMiB,
          static_cast<int>(num(proc->find("threads"))),
          static_cast<unsigned long long>(num(proc->find("minor_faults"))),
          static_cast<unsigned long long>(num(proc->find("major_faults"))),
          static_cast<unsigned long long>(num(proc->find("ctx_voluntary"))),
          static_cast<unsigned long long>(
              num(proc->find("ctx_involuntary"))));
    }
  }
  const JsonValue* flight = statz.find("flight");
  const JsonValue* profiler = statz.find("profiler");
  if ((flight != nullptr && flight->is_object()) ||
      (profiler != nullptr && profiler->is_object())) {
    std::printf("obs:");
    if (flight != nullptr && flight->is_object()) {
      std::printf(" dumps %llu (suppressed %llu) -> %s  ",
                  static_cast<unsigned long long>(num(flight->find("dumps"))),
                  static_cast<unsigned long long>(
                      num(flight->find("suppressed"))),
                  str(flight->find("dir"), "dumps").c_str());
    }
    if (profiler != nullptr && profiler->is_object()) {
      std::printf(" profiler %llu sample(s), %llu torn",
                  static_cast<unsigned long long>(
                      num(profiler->find("samples"))),
                  static_cast<unsigned long long>(num(profiler->find("torn"))));
    }
    std::printf("\n");
  }

  const std::vector<double> rates = rate_series(statz,
                                                "serve.completed.rate");
  std::printf("throughput %s\n", sparkline(rates, 60).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bpar::util::ArgParser args("bpar_top",
                             "live dashboard for a serving stats endpoint");
  args.add_string("host", "127.0.0.1", "stats endpoint host");
  args.add_int("port", 0, "stats endpoint port (bpar_serve --stats-port)");
  args.add_int("interval-ms", 1000, "refresh period");
  args.add_flag("once", "print one frame and exit (no screen clearing)");
  if (!args.parse(argc, argv)) return 2;
  const std::string host = args.get_string("host");
  const auto port = static_cast<std::uint16_t>(args.get_int("port"));
  const bool once = args.flag("once");
  if (port == 0) {
    std::fprintf(stderr, "bpar_top: --port is required\n");
    return 2;
  }
  std::signal(SIGINT, handle_sigint);

  const std::string endpoint =
      host + ":" + std::to_string(static_cast<int>(port));
  int consecutive_failures = 0;
  while (g_stop == 0) {
    const bpar::obs::HttpResult result =
        bpar::obs::http_get(host, port, "/statz");
    if (!result.ok || result.status != 200) {
      if (once || ++consecutive_failures >= 3) {
        std::fprintf(stderr, "bpar_top: %s/statz unreachable: %s\n",
                     endpoint.c_str(),
                     result.error.empty()
                         ? ("HTTP " + std::to_string(result.status)).c_str()
                         : result.error.c_str());
        return 1;
      }
    } else {
      consecutive_failures = 0;
      JsonValue statz;
      try {
        statz = bpar::obs::json_parse(result.body);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "bpar_top: bad /statz payload: %s\n", e.what());
        return 1;
      }
      if (const std::string problem = validate_statz(statz);
          !problem.empty()) {
        std::fprintf(stderr, "bpar_top: %s/statz: %s\n", endpoint.c_str(),
                     problem.c_str());
        return 1;
      }
      if (!once) std::printf("\x1b[2J\x1b[H");  // clear + home
      print_frame(statz, endpoint);
      std::fflush(stdout);
      if (once) return 0;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(args.get_int("interval-ms")));
  }
  return 0;
}
