// Utility tests: deterministic RNG, CLI parsing, table formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace bpar::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(9);
  std::array<int, 7> counts{};
  for (int i = 0; i < 7000; ++i) ++counts[rng.uniform_index(7)];
  for (const int c : counts) {
    EXPECT_GT(c, 700);   // roughly uniform
    EXPECT_LT(c, 1300);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.08);
}

TEST(Rng, SplitStreamsAreIndependentOfCallOrder) {
  Rng parent(5);
  Rng s1 = parent.split(1);
  Rng s2 = parent.split(2);
  Rng parent2(5);
  Rng s2_again = parent2.split(2);
  EXPECT_EQ(s2.next_u64(), s2_again.next_u64());
  EXPECT_NE(s1.next_u64(), s2.next_u64());
}

TEST(ArgParser, ParsesTypesAndDefaults) {
  ArgParser parser("prog", "test");
  parser.add_int("cores", 4, "core count");
  parser.add_double("rate", 0.5, "rate");
  parser.add_string("name", "x", "name");
  parser.add_flag("fast", "go fast");
  const char* argv[] = {"prog", "--cores", "8", "--rate=0.25", "--fast"};
  ASSERT_TRUE(parser.parse(5, argv));
  EXPECT_EQ(parser.get_int("cores"), 8);
  EXPECT_EQ(parser.get_double("rate"), 0.25);
  EXPECT_EQ(parser.get_string("name"), "x");
  EXPECT_TRUE(parser.flag("fast"));
}

TEST(ArgParser, RejectsUnknownOption) {
  ArgParser parser("prog", "test");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_FALSE(parser.parse(3, argv));
}

TEST(ArgParser, RejectsBadValue) {
  ArgParser parser("prog", "test");
  parser.add_int("n", 1, "n");
  const char* argv[] = {"prog", "--n", "abc"};
  EXPECT_FALSE(parser.parse(3, argv));
}

TEST(ArgParser, CollectsPositional) {
  ArgParser parser("prog", "test");
  const char* argv[] = {"prog", "hello", "world"};
  ASSERT_TRUE(parser.parse(3, argv));
  ASSERT_EQ(parser.positional().size(), 2U);
  EXPECT_EQ(parser.positional()[0], "hello");
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_ms(1770.757), "1,770.76");
  EXPECT_EQ(fmt_ms(12.3), "12.30");
  EXPECT_EQ(fmt_ms(1234567.89), "1,234,567.89");
  EXPECT_EQ(fmt_speedup(2.345), "2.35x");
  EXPECT_EQ(fmt_params(6.3e6), "6.3M");
  EXPECT_EQ(fmt_params(4500), "4.5K");
  EXPECT_EQ(fmt_params(12), "12");
}

TEST(Table, CsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({"1", "hello, world"});
  t.add_row({"2", "quote\"inside"});
  const std::string path = ::testing::TempDir() + "/bpar_table.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"hello, world\"");
  std::getline(in, line);
  EXPECT_EQ(line, "2,\"quote\"\"inside\"");
}

}  // namespace
}  // namespace bpar::util
