// Discrete-event simulator tests: makespan math on known DAG shapes,
// scheduler-policy effects, NUMA/cache modeling, and stat integrity.
#include <gtest/gtest.h>

#include "sim/cost_model.hpp"
#include "sim/machine.hpp"
#include "sim/simulator.hpp"
#include "taskrt/task_graph.hpp"

namespace bpar::sim {
namespace {

using taskrt::in;
using taskrt::inout;
using taskrt::out;
using taskrt::SchedulerPolicy;
using taskrt::TaskGraph;

MachineModel ideal_machine() {
  MachineModel m;
  m.dispatch_overhead_ns = 0.0;
  m.numa_remote_penalty = 1.0;
  m.cache_hot_discount = 1.0;
  return m;
}

std::vector<std::uint64_t> uniform_costs(std::size_t n, std::uint64_t c) {
  return std::vector<std::uint64_t>(n, c);
}

TEST(Simulator, ChainMakespanIsSumOfCosts) {
  TaskGraph g;
  int x = 0;
  for (int i = 0; i < 10; ++i) g.add({}, {inout(&x)});
  Simulator sim({.machine = ideal_machine(), .cores = 4});
  const auto result = sim.run(g, uniform_costs(10, 1000000));
  EXPECT_NEAR(result.makespan_ms, 10.0, 1e-6);
  EXPECT_EQ(result.max_concurrency, 1);
}

TEST(Simulator, IndependentTasksScaleWithCores) {
  TaskGraph g;
  std::vector<int> slots(16);
  for (auto& s : slots) g.add({}, {out(&s)});
  for (const int cores : {1, 2, 4, 8, 16}) {
    Simulator sim({.machine = ideal_machine(), .cores = cores});
    const auto result = sim.run(g, uniform_costs(16, 1000000));
    EXPECT_NEAR(result.makespan_ms, 16.0 / cores, 1e-6) << cores << " cores";
    EXPECT_EQ(result.max_concurrency, std::min(cores, 16));
  }
}

TEST(Simulator, ForkJoinRespectsDependencies) {
  TaskGraph g;
  int a = 0;
  std::vector<int> mid(4);
  int z = 0;
  g.add({}, {out(&a)});
  std::vector<taskrt::Access> join_ins;
  for (auto& m : mid) {
    g.add({}, {in(&a), out(&m)});
    join_ins.push_back(in(&m));
  }
  join_ins.push_back(out(&z));
  g.add({}, std::span<const taskrt::Access>(join_ins.data(), join_ins.size()));
  Simulator sim({.machine = ideal_machine(), .cores = 4});
  const auto result = sim.run(g, uniform_costs(6, 1000000));
  // 1 (root) + 1 (4 parallel on 4 cores) + 1 (join) = 3 ms.
  EXPECT_NEAR(result.makespan_ms, 3.0, 1e-6);
}

TEST(Simulator, ParallelEfficiencyAndConcurrencyStats) {
  TaskGraph g;
  std::vector<int> slots(8);
  for (auto& s : slots) g.add({}, {out(&s)});
  Simulator sim({.machine = ideal_machine(), .cores = 8});
  const auto result = sim.run(g, uniform_costs(8, 2000000));
  EXPECT_NEAR(result.parallel_efficiency, 1.0, 1e-9);
  EXPECT_NEAR(result.avg_concurrency, 8.0, 1e-9);
  EXPECT_NEAR(result.total_busy_ms, 16.0, 1e-9);
}

TEST(Simulator, DispatchOverheadExtendsTasks) {
  TaskGraph g;
  int x = 0;
  g.add({}, {out(&x)});
  MachineModel m = ideal_machine();
  m.dispatch_overhead_ns = 500000.0;  // 0.5 ms
  Simulator sim({.machine = m, .cores = 1});
  const auto result = sim.run(g, uniform_costs(1, 1000000));
  EXPECT_NEAR(result.makespan_ms, 1.5, 1e-6);
}

TEST(Simulator, LocalityPolicyKeepsChainsCacheHot) {
  // Many parallel chains with heterogeneous task costs on a dual-socket
  // machine: FIFO reassigns successors to whichever core frees first
  // (bouncing data across sockets), while the locality-aware policy pins
  // each chain to its producer's core — higher hit rate, better IPC,
  // lower MPKI, shorter makespan. This is the Fig. 7 mechanism.
  TaskGraph g;
  constexpr int kChains = 48;
  constexpr int kLinks = 20;
  std::vector<int> anchors(kChains);
  std::vector<std::uint64_t> costs;
  for (int link = 0; link < kLinks; ++link) {
    for (int chain = 0; chain < kChains; ++chain) {
      taskrt::TaskSpec spec;
      spec.working_set_bytes = 8U << 20;  // 8 MB — pressures the 33 MB L3
      g.add({}, {inout(&anchors[static_cast<std::size_t>(chain)])}, spec);
      costs.push_back(500000 + 350000 * ((chain * 7 + link * 13) % 5));
    }
  }

  MachineModel m;  // realistic defaults (discount + penalties on)
  Simulator fifo(
      {.machine = m, .policy = SchedulerPolicy::kFifo, .cores = 16});
  Simulator locality(
      {.machine = m, .policy = SchedulerPolicy::kLocalityAware, .cores = 16});
  const auto rf = fifo.run(g, costs);
  const auto rl = locality.run(g, costs);
  EXPECT_GT(rl.locality_hit_rate(), 0.9);
  EXPECT_GT(rl.locality_hit_rate(), rf.locality_hit_rate());
  EXPECT_LE(rl.makespan_ms, rf.makespan_ms * 1.001);
  EXPECT_GE(rl.avg_ipc, rf.avg_ipc);
  EXPECT_LE(rl.avg_mpki, rf.avg_mpki);
}

TEST(Simulator, WorkingSetPeakTracksConcurrentTasks) {
  TaskGraph g;
  std::vector<int> slots(4);
  taskrt::TaskSpec spec;
  spec.working_set_bytes = 1000;
  for (auto& s : slots) g.add({}, {out(&s)}, spec);
  Simulator wide({.machine = ideal_machine(), .cores = 4});
  Simulator narrow({.machine = ideal_machine(), .cores = 1});
  EXPECT_NEAR(wide.run(g, uniform_costs(4, 1000)).peak_working_set_bytes,
              4000.0, 1e-9);
  EXPECT_NEAR(narrow.run(g, uniform_costs(4, 1000)).peak_working_set_bytes,
              1000.0, 1e-9);
}

TEST(Simulator, DeterministicAcrossRuns) {
  TaskGraph g;
  std::vector<int> slots(32);
  int joint = 0;
  for (auto& s : slots) g.add({}, {out(&s)});
  for (auto& s : slots) g.add({}, {in(&s), inout(&joint)});
  Simulator sim({.cores = 6});
  std::vector<std::uint64_t> costs;
  for (std::size_t i = 0; i < g.size(); ++i) {
    costs.push_back(100000 + 13337 * (i % 7));
  }
  const auto r1 = sim.run(g, costs);
  const auto r2 = sim.run(g, costs);
  EXPECT_EQ(r1.makespan_ms, r2.makespan_ms);
  EXPECT_EQ(r1.locality_hits, r2.locality_hits);
}

TEST(Simulator, KindBreakdownSumsToAllTasks) {
  TaskGraph g;
  int x = 0;
  taskrt::TaskSpec cell;
  cell.kind = taskrt::TaskKind::kCellForward;
  taskrt::TaskSpec merge;
  merge.kind = taskrt::TaskKind::kMerge;
  g.add({}, {out(&x)}, cell);
  g.add({}, {inout(&x)}, cell);
  g.add({}, {inout(&x)}, merge);
  Simulator sim({.cores = 2});
  const auto result = sim.run(g, uniform_costs(3, 1000));
  std::size_t total = 0;
  for (const auto& kb : result.by_kind) total += kb.count;
  EXPECT_EQ(total, 3U);
  EXPECT_EQ(
      result.by_kind[static_cast<std::size_t>(taskrt::TaskKind::kCellForward)]
          .count,
      2U);
}

TEST(CostModel, RooflineTakesMaxOfComputeAndMemory) {
  Calibration cal{
      .gflops = 10.0, .mem_gbps = 5.0, .cache_gbps = 5.0, .fixed_ns = 100.0};
  // Compute-bound: 1e6 flops at 10 Gflop/s = 1e5 ns >> bytes term.
  EXPECT_EQ(roofline_cost_ns(1e6, 1000, cal), 100100U);
  // Memory-bound: 1e6 bytes at 5 GB/s (cache-resident rate) = 2e5 ns.
  EXPECT_EQ(roofline_cost_ns(1000, 1000000, cal), 200100U);
}

TEST(CostModel, CalibrationProducesSaneRates) {
  const Calibration cal = calibrate();
  EXPECT_GT(cal.gflops, 0.1);
  EXPECT_LT(cal.gflops, 1000.0);
  EXPECT_GT(cal.mem_gbps, 0.1);
}

TEST(CostModel, ModeledCostsUseSpecs) {
  TaskGraph g;
  int x = 0;
  taskrt::TaskSpec heavy;
  heavy.flops = 1e9;
  taskrt::TaskSpec hint_only;
  hint_only.cost_hint_ns = 12345;
  g.add({}, {out(&x)}, heavy);
  g.add({}, {inout(&x)}, hint_only);
  Calibration cal{.gflops = 1.0, .mem_gbps = 10.0, .fixed_ns = 0.0};
  const auto costs = modeled_costs(g, cal);
  EXPECT_EQ(costs[0], 1000000000U);
  EXPECT_EQ(costs[1], 12345U);
}

TEST(CostModel, MeasuredCostsFillZeroesFromModel) {
  TaskGraph g;
  int x = 0;
  taskrt::TaskSpec spec;
  spec.flops = 1e6;
  g.add({}, {out(&x)}, spec);
  g.add({}, {inout(&x)}, spec);
  const std::vector<std::uint64_t> durations = {555, 0};
  Calibration cal{.gflops = 1.0, .mem_gbps = 1.0, .fixed_ns = 0.0};
  const auto costs = measured_costs(g, durations, cal);
  EXPECT_EQ(costs[0], 555U);
  EXPECT_EQ(costs[1], 1000000U);
}

TEST(Machine, SocketMapping) {
  const MachineModel m = xeon8160_dual_socket();
  EXPECT_EQ(m.cores, 48);
  EXPECT_EQ(m.socket_of(0), 0);
  EXPECT_EQ(m.socket_of(23), 0);
  EXPECT_EQ(m.socket_of(24), 1);
  EXPECT_EQ(m.sockets_used(24), 1);
  EXPECT_EQ(m.sockets_used(25), 2);
}



TEST(Simulator, RecordedTraceIsConsistentSchedule) {
  TaskGraph g;
  int x = 0;
  taskrt::TaskSpec spec;
  for (int i = 0; i < 6; ++i) g.add({}, {inout(&x)}, spec);
  Simulator sim({.machine = ideal_machine(),
                 .cores = 2,
                 .record_trace = true});
  const auto result = sim.run(g, uniform_costs(6, 1000000));
  ASSERT_EQ(result.trace.size(), 6U);
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    // Chain: each task starts when the previous finished.
    EXPECT_EQ(result.trace[i].start_ns, result.trace[i - 1].end_ns);
    EXPECT_GT(result.trace[i].end_ns, result.trace[i].start_ns);
    EXPECT_GE(result.trace[i].worker, 0);
    EXPECT_LT(result.trace[i].worker, 2);
  }
}

TEST(Simulator, BandwidthContentionSlowsOversubscribedSockets) {
  // 24 independent tasks on one socket: with contention enabled beyond 8
  // concurrent tasks, the makespan grows versus the uncontended model.
  TaskGraph g;
  std::vector<int> slots(24);
  for (auto& s : slots) g.add({}, {out(&s)});
  const auto costs = uniform_costs(24, 1000000);

  MachineModel plain = ideal_machine();
  MachineModel contended = ideal_machine();
  contended.bw_contention_factor = 0.5;
  contended.bw_saturation_cores = 8;

  Simulator fast({.machine = plain, .cores = 24});
  Simulator slow({.machine = contended, .cores = 24});
  const double fast_ms = fast.run(g, costs).makespan_ms;
  const double slow_ms = slow.run(g, costs).makespan_ms;
  EXPECT_GT(slow_ms, fast_ms * 1.2);

  // Below the saturation point the model changes nothing.
  Simulator few({.machine = contended, .cores = 4});
  Simulator few_plain({.machine = plain, .cores = 4});
  EXPECT_EQ(few.run(g, costs).makespan_ms,
            few_plain.run(g, costs).makespan_ms);
}

}  // namespace
}  // namespace bpar::sim
