// Span-stack profiler suite (DESIGN.md §5j): golden folded stacks from a
// deterministic hand-driven workload, depth truncation accounting, the
// fold_delta window arithmetic behind /profilez, and an 8-writer
// sampler-vs-instrumented-threads race that doubles as the TSan target.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace bpar {
namespace {

using obs::SpanProfiler;

// period_us = 0: no background thread; the test drives sample_now() by
// hand so every count is exact.
SpanProfiler::Fold fold(std::string stack, std::uint64_t count) {
  SpanProfiler::Fold f;
  f.stack = std::move(stack);
  f.count = count;
  return f;
}

TEST(Profiler, GoldenFoldedStacksFromDeterministicWorkload) {
  SpanProfiler prof({.period_us = 0});
  prof.start();
  ASSERT_TRUE(prof.running());

  const std::uint16_t alpha = obs::intern_name("alpha");
  const std::uint16_t beta = obs::intern_name("beta");
  {
    obs::Span outer(alpha);
    {
      obs::Span inner(beta);
      prof.sample_now();  // alpha;beta
      prof.sample_now();  // alpha;beta
    }
    prof.sample_now();  // alpha
  }
  prof.stop();

  EXPECT_EQ(prof.sweeps(), 3U);
  EXPECT_EQ(prof.samples(), 3U);
  EXPECT_EQ(prof.torn(), 0U);

  const auto folds = prof.folded();
  ASSERT_EQ(folds.size(), 2U);
  EXPECT_EQ(folds[0].stack, "alpha;beta");  // heaviest first
  EXPECT_EQ(folds[0].count, 2U);
  EXPECT_EQ(folds[1].stack, "alpha");
  EXPECT_EQ(folds[1].count, 1U);
  EXPECT_EQ(prof.folded_text(), "alpha;beta 2\nalpha 1\n");

  prof.clear();
  EXPECT_TRUE(prof.folded().empty());
}

TEST(Profiler, SpansDoNotPushWhileNoProfilerRuns) {
  SpanProfiler prof({.period_us = 0});
  // Not started: profiling_active() is false, so this span never reaches
  // the per-thread stack and a later manual sweep sees nothing.
  const std::uint16_t id = obs::intern_name("profiler.idle_span");
  { obs::Span span(id); }
  prof.start();
  prof.sample_now();
  prof.stop();
  EXPECT_EQ(prof.samples(), 0U);
  EXPECT_TRUE(prof.folded().empty());
}

// Nesting past kMaxDepth must not corrupt anything: extra pushes are
// counted in span_stack_truncations() and the retained sample is clamped
// to exactly kMaxDepth frames.
TEST(Profiler, DeepNestingTruncatesAtMaxDepth) {
  constexpr std::size_t kOver = 8;
  const std::uint64_t truncations_before = obs::span_stack_truncations();

  SpanProfiler prof({.period_us = 0});
  prof.start();
  const std::uint16_t id = obs::intern_name("deep");
  std::vector<std::unique_ptr<obs::Span>> spans;
  for (std::size_t i = 0; i < SpanProfiler::kMaxDepth + kOver; ++i) {
    spans.push_back(std::make_unique<obs::Span>(id));
  }
  prof.sample_now();
  spans.clear();  // unwind (pops stay balanced with successful pushes)
  prof.stop();

  EXPECT_EQ(obs::span_stack_truncations() - truncations_before, kOver);
  const auto folds = prof.folded();
  ASSERT_EQ(folds.size(), 1U);
  std::size_t frames = 1;
  for (const char c : folds[0].stack) frames += c == ';' ? 1 : 0;
  EXPECT_EQ(frames, SpanProfiler::kMaxDepth);

  // The stack recovers after the deep excursion: a fresh shallow sample
  // folds at its true depth.
  prof.clear();
  prof.start();
  {
    obs::Span one(id);
    prof.sample_now();
  }
  prof.stop();
  ASSERT_EQ(prof.folded().size(), 1U);
  EXPECT_EQ(prof.folded()[0].stack, "deep");
}

TEST(Profiler, FoldDeltaSubtractsBaselineAndDropsDrainedRows) {
  const std::vector<SpanProfiler::Fold> before = {
      fold("a;b", 3), fold("a", 1), fold("gone", 5)};
  const std::vector<SpanProfiler::Fold> after = {
      fold("a;b", 5), fold("a", 2), fold("c", 4), fold("gone", 5)};

  const auto delta = obs::fold_delta(before, after);
  ASSERT_EQ(delta.size(), 3U);  // "gone" is unchanged -> dropped
  EXPECT_EQ(delta[0].stack, "c");
  EXPECT_EQ(delta[0].count, 4U);
  EXPECT_EQ(delta[1].stack, "a;b");
  EXPECT_EQ(delta[1].count, 2U);
  EXPECT_EQ(delta[2].stack, "a");
  EXPECT_EQ(delta[2].count, 1U);
  EXPECT_EQ(obs::folded_to_text(delta), "c 4\na;b 2\na 1\n");
  EXPECT_TRUE(obs::fold_delta(after, after).empty());
}

// TSan target: 8 threads churn nested spans while the background sampler
// sweeps their seqlock stacks at full tilt. Torn reads are legal (they are
// discarded and counted); data races are not.
TEST(Profiler, SamplerVsEightWritersIsRaceFree) {
  SpanProfiler prof({.period_us = 100});
  prof.start();

  const std::uint16_t outer_id = obs::intern_name("race.outer");
  const std::uint16_t inner_id = obs::intern_name("race.inner");
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(8);
  for (int t = 0; t < 8; ++t) {
    writers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < 4000; ++i) {
        obs::Span outer(outer_id);
        obs::Span inner(inner_id);
      }
    });
  }
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (auto& w : writers) w.join();
  prof.stop();

  EXPECT_GT(prof.sweeps(), 0U);
  EXPECT_GE(obs::span_stack_slots(), 1U);
  // Any sample the sweep kept must be a consistent stack: the inner frame
  // never appears without its parent.
  for (const auto& f : prof.folded()) {
    if (f.stack.find("race.inner") != std::string::npos) {
      EXPECT_EQ(f.stack, "race.outer;race.inner");
    }
  }
}

}  // namespace
}  // namespace bpar
