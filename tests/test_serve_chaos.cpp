// Chaos serving soak (DESIGN.md §5h): 8 client threads blast a burst of
// mixed-priority requests — roughly 2× what the engine can absorb — at an
// engine whose runtime is injected with randomized throws, delays, and
// stalls, with the RUNTIME watchdog off so only the ENGINE watchdog stands
// between an injected stall and a dispatcher hang. The soak asserts the
// three resilience invariants end to end:
//
//   1. Exactly-once: every submitted request receives exactly one terminal
//      status, and the per-status counts conserve (promise semantics make
//      duplicates throw, so conservation is the whole story).
//   2. No hang: the run completes — injected stalls are converted into
//      watchdog releases instead of wedging the dispatcher forever.
//   3. Bit-parity: every kOk response is bit-identical to the fault-free
//      reference for the same request — retries and bisection may re-run
//      and re-shape micro-batches, but they must never change an answer.
//      (The circuit breaker is disabled here: a mid-run backend downgrade
//      would legitimately change float reassociation; the breaker has its
//      own deterministic test in test_serve.cpp.)
//
// This file is part of the TSan CI target (the -R filter matches
// 'test_serve*'), so the soak also proves the resilience layer adds no
// data races under real contention.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "serve/engine.hpp"
#include "serve/loadgen.hpp"
#include "taskrt/fault.hpp"

namespace bpar {
namespace {

using serve::EngineOptions;
using serve::InferenceEngine;
using serve::Priority;
using serve::Request;
using serve::Response;
using serve::Status;

constexpr int kClients = 8;
constexpr int kRequestsPerClient = 25;

rnn::NetworkConfig chaos_config() {
  rnn::NetworkConfig cfg;
  cfg.cell = rnn::CellType::kLstm;
  cfg.input_size = 5;
  cfg.hidden_size = 8;
  cfg.num_layers = 2;
  cfg.seq_length = 6;
  cfg.batch_size = 4;
  cfg.num_classes = 4;
  return cfg;
}

std::uint64_t request_seed(int client, int index) {
  return 1000ULL * static_cast<std::uint64_t>(client) +
         static_cast<std::uint64_t>(index);
}

Request chaos_request(const rnn::NetworkConfig& cfg, int client, int index) {
  Request request =
      serve::make_request(cfg, cfg.seq_length, request_seed(client, index),
                          /*with_labels=*/true);
  request.want_logits = true;
  static constexpr Priority kCycle[] = {Priority::kHigh, Priority::kNormal,
                                        Priority::kBatch};
  request.priority = kCycle[index % 3];
  return request;
}

TEST(ServeChaos, FaultedOverloadSoakIsExactlyOnceAndBitExact) {
  const auto cfg = chaos_config();

  // Fault-free reference engine: serves every distinct request solo and
  // records its bit-exact answer.
  EngineOptions clean;
  clean.executor.num_workers = 2;
  clean.executor.num_replicas = 2;
  clean.max_batch = 4;
  InferenceEngine reference(cfg, clean);
  std::map<std::uint64_t, Response> expected;
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kRequestsPerClient; ++i) {
      const Response r = reference.infer(chaos_request(cfg, c, i));
      ASSERT_EQ(r.status, Status::kOk);
      expected.emplace(request_seed(c, i), r);
    }
  }

  // Chaos engine with the reference's exact weights. Probabilistic faults
  // re-roll every runtime session, so retries can clear them; stalls have
  // no runtime watchdog to catch them — only the engine watchdog.
  EngineOptions chaos = clean;
  chaos.executor.faults = taskrt::FaultSpec::parse(
      "seed=9,throw=0.01,delay=0.02,delay_us=100,stall=0.003");
  chaos.watchdog_ms = 100;
  chaos.max_delay_us = 200;
  chaos.max_queue = 32;
  chaos.max_batch_retries = 2;
  chaos.breaker_threshold = 0;  // keep the kernel backend fixed (bit-parity)
  InferenceEngine engine(cfg, chaos);
  {
    std::stringstream weights;
    reference.network().save(weights);
    engine.network().load(weights);
  }
  reference.shutdown();

  // 8 clients submit their full quota as fast as they can — a burst far
  // over the engine's capacity — then collect every future exactly once.
  std::array<std::atomic<std::uint64_t>, serve::kNumStatuses> counts{};
  std::atomic<std::uint64_t> shed_high{0};
  std::atomic<std::uint64_t> parity_failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<Response>> futures;
      std::vector<int> indices;
      futures.reserve(kRequestsPerClient);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        futures.push_back(engine.submit(chaos_request(cfg, c, i)));
        indices.push_back(i);
      }
      for (std::size_t k = 0; k < futures.size(); ++k) {
        const Response r = futures[k].get();
        counts[static_cast<std::size_t>(r.status)].fetch_add(1);
        const Priority priority =
            chaos_request(cfg, c, indices[k]).priority;
        if (r.status == Status::kShed && priority == Priority::kHigh) {
          shed_high.fetch_add(1);
        }
        if (r.status == Status::kOk) {
          const Response& want = expected.at(request_seed(c, indices[k]));
          if (r.predictions != want.predictions || r.logits != want.logits ||
              r.loss != want.loss) {
            parity_failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  engine.shutdown();

  // 1. Exactly-once conservation, client-side and engine-side.
  const auto stats = engine.stats();
  const std::uint64_t total =
      static_cast<std::uint64_t>(kClients) *
      static_cast<std::uint64_t>(kRequestsPerClient);
  std::uint64_t answered = 0;
  for (const auto& count : counts) answered += count.load();
  EXPECT_EQ(answered, total);
  EXPECT_EQ(stats.submitted, total);
  EXPECT_EQ(stats.completed + stats.rejected + stats.shed + stats.expired +
                stats.failed + stats.internal_errors,
            total);
  EXPECT_EQ(counts[static_cast<std::size_t>(Status::kOk)].load(),
            stats.completed);
  EXPECT_EQ(counts[static_cast<std::size_t>(Status::kFailed)].load(), 0U);
  EXPECT_EQ(counts[static_cast<std::size_t>(Status::kShutdown)].load(), 0U);
  EXPECT_GT(stats.completed, 0U);

  // 2. No hang: reaching this line at all means no dispatcher wedge; the
  // queue drained and shedding never touched the high-priority class.
  EXPECT_EQ(engine.queue_depth(), 0U);
  EXPECT_EQ(shed_high.load(), 0U);

  // 3. Bit-parity of every kOk answer against the fault-free reference.
  EXPECT_EQ(parity_failures.load(), 0U);

  // The fault schedule at these rates makes at least one retryable fault
  // statistically certain over ~50 batches (P[none] < 1e-9); its absence
  // means the recovery path silently stopped being exercised.
  EXPECT_GT(stats.retries, 0U);
}

}  // namespace
}  // namespace bpar
