// GEMM and elementwise kernel tests, including parameterized shape sweeps
// against a naive reference implementation and a backend parity suite that
// pins every SIMD backend to the scalar reference (DESIGN.md §5g).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <tuple>

#include "kernels/backend.hpp"
#include "kernels/elementwise.hpp"
#include "kernels/gemm.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace bpar {
namespace {

using kernels::gemm_nn;
using kernels::gemm_nt;
using kernels::gemm_tn;
using tensor::Matrix;

Matrix random_matrix(int rows, int cols, util::Rng& rng) {
  Matrix m(rows, cols);
  tensor::fill_uniform(m.view(), rng, -1.0F, 1.0F);
  return m;
}

// Naive reference: C = alpha * op(A) * op(B) + beta * C.
void naive_gemm(const Matrix& a, bool ta, const Matrix& b, bool tb, Matrix& c,
                float alpha, float beta) {
  const int m = c.rows();
  const int n = c.cols();
  const int k = ta ? a.rows() : a.cols();
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) {
        const float av = ta ? a.at(p, i) : a.at(i, p);
        const float bv = tb ? b.at(j, p) : b.at(p, j);
        acc += static_cast<double>(av) * bv;
      }
      c.at(i, j) = alpha * static_cast<float>(acc) + beta * c.at(i, j);
    }
  }
}

using GemmShape = std::tuple<int, int, int>;  // m, n, k

class GemmShapes : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmShapes, NnMatchesNaive) {
  const auto [m, n, k] = GetParam();
  util::Rng rng(1);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix c = random_matrix(m, n, rng);
  Matrix expected = c;
  gemm_nn(a.cview(), b.cview(), c.view(), 0.7F, 0.3F);
  naive_gemm(a, false, b, false, expected, 0.7F, 0.3F);
  EXPECT_TRUE(tensor::allclose(c.cview(), expected.cview(), 1e-4F, 1e-4F))
      << "max diff " << tensor::max_abs_diff(c.cview(), expected.cview());
}

TEST_P(GemmShapes, NtMatchesNaive) {
  const auto [m, n, k] = GetParam();
  util::Rng rng(2);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(n, k, rng);  // used transposed
  Matrix c = random_matrix(m, n, rng);
  Matrix expected = c;
  gemm_nt(a.cview(), b.cview(), c.view(), 1.3F, 0.5F);
  naive_gemm(a, false, b, true, expected, 1.3F, 0.5F);
  EXPECT_TRUE(tensor::allclose(c.cview(), expected.cview(), 1e-4F, 1e-4F));
}

TEST_P(GemmShapes, TnMatchesNaive) {
  const auto [m, n, k] = GetParam();
  util::Rng rng(3);
  Matrix a = random_matrix(k, m, rng);  // used transposed
  Matrix b = random_matrix(k, n, rng);
  Matrix c = random_matrix(m, n, rng);
  Matrix expected = c;
  gemm_tn(a.cview(), b.cview(), c.view(), 1.0F, 1.0F);
  naive_gemm(a, true, b, false, expected, 1.0F, 1.0F);
  EXPECT_TRUE(tensor::allclose(c.cview(), expected.cview(), 1e-4F, 1e-4F));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{2, 3, 4},
                      GemmShape{7, 5, 9}, GemmShape{16, 16, 16},
                      GemmShape{33, 65, 17}, GemmShape{64, 70, 300},
                      GemmShape{1, 128, 256}, GemmShape{128, 1, 300},
                      GemmShape{96, 257, 64}));

TEST(Gemm, BlockViewsComputeSubsets) {
  // Row-split computation must equal the full GEMM (basis of intra-op
  // parallelism in the barrier baseline).
  util::Rng rng(4);
  Matrix a = random_matrix(24, 32, rng);
  Matrix b = random_matrix(40, 32, rng);
  Matrix full(24, 40);
  gemm_nt(a.cview(), b.cview(), full.view());

  Matrix split(24, 40);
  for (int r0 = 0; r0 < 24; r0 += 7) {
    const int rows = std::min(7, 24 - r0);
    gemm_nt(a.cview().block(r0, 0, rows, 32), b.cview(),
            split.view().block(r0, 0, rows, 40));
  }
  EXPECT_EQ(tensor::max_abs_diff(full.cview(), split.cview()), 0.0F);
}

TEST(Gemm, GemvTransposed) {
  util::Rng rng(5);
  Matrix a = random_matrix(6, 4, rng);
  std::vector<float> x = {1.0F, -2.0F, 0.5F, 3.0F, -1.0F, 2.0F};
  std::vector<float> y(4, 1.0F);
  kernels::gemv_t(a.cview(), x, y, 2.0F, 0.5F);
  for (int j = 0; j < 4; ++j) {
    double expect = 0.5;
    for (int i = 0; i < 6; ++i) {
      expect += 2.0 * static_cast<double>(x[static_cast<std::size_t>(i)]) *
                a.at(i, j);
    }
    EXPECT_NEAR(y[static_cast<std::size_t>(j)], expect, 1e-4);
  }
}

TEST(Elementwise, SigmoidRangeAndDerivative) {
  EXPECT_NEAR(kernels::sigmoid(0.0F), 0.5F, 1e-6F);
  EXPECT_GT(kernels::sigmoid(10.0F), 0.9999F);
  EXPECT_LT(kernels::sigmoid(-10.0F), 1e-4F);
  const float y = kernels::sigmoid(0.3F);
  // Numeric derivative check.
  const float eps = 1e-3F;
  const float numeric =
      (kernels::sigmoid(0.3F + eps) - kernels::sigmoid(0.3F - eps)) /
      (2.0F * eps);
  EXPECT_NEAR(kernels::dsigmoid_from_y(y), numeric, 1e-4F);
}

TEST(Elementwise, TanhDerivative) {
  const float y = std::tanh(0.7F);
  const float eps = 1e-3F;
  const float numeric =
      (std::tanh(0.7F + eps) - std::tanh(0.7F - eps)) / (2.0F * eps);
  EXPECT_NEAR(kernels::dtanh_from_y(y), numeric, 1e-4F);
}

TEST(Elementwise, FusedVectorOps) {
  std::vector<float> a = {1, 2, 3};
  std::vector<float> b = {4, 5, 6};
  std::vector<float> d(3);
  kernels::hadamard(a, b, d);
  EXPECT_EQ(d, (std::vector<float>{4, 10, 18}));
  kernels::hadamard_acc(a, b, d);
  EXPECT_EQ(d, (std::vector<float>{8, 20, 36}));
  kernels::axpy(2.0F, a, d);
  EXPECT_EQ(d, (std::vector<float>{10, 24, 42}));
  kernels::scale_inplace(d, 0.5F);
  EXPECT_EQ(d, (std::vector<float>{5, 12, 21}));
}

TEST(Elementwise, SoftmaxRowsSumToOne) {
  util::Rng rng(6);
  Matrix logits = random_matrix(5, 9, rng);
  // Inject large magnitudes to verify numerical stability.
  logits.at(0, 0) = 500.0F;
  logits.at(1, 3) = -500.0F;
  Matrix probs(5, 9);
  kernels::softmax_rows(logits.cview(), probs.view());
  for (int r = 0; r < 5; ++r) {
    double sum = 0.0;
    for (int c = 0; c < 9; ++c) {
      EXPECT_GE(probs.at(r, c), 0.0F);
      sum += static_cast<double>(probs.at(r, c));
    }
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
  EXPECT_NEAR(probs.at(0, 0), 1.0F, 1e-5F);  // dominated row
}

TEST(Elementwise, CrossEntropyOfPerfectPrediction) {
  Matrix probs(2, 3);
  probs.at(0, 1) = 1.0F;
  probs.at(1, 2) = 1.0F;
  const std::vector<int> labels = {1, 2};
  EXPECT_NEAR(kernels::cross_entropy(probs.cview(), labels), 0.0, 1e-5);
}

TEST(Elementwise, SoftmaxCeGradSumsToZeroPerRow) {
  util::Rng rng(7);
  Matrix logits = random_matrix(4, 6, rng);
  Matrix probs(4, 6);
  kernels::softmax_rows(logits.cview(), probs.view());
  const std::vector<int> labels = {0, 5, 2, 3};
  Matrix grad(4, 6);
  kernels::softmax_ce_grad(probs.cview(), labels, grad.view());
  for (int r = 0; r < 4; ++r) {
    double sum = 0.0;
    for (int c = 0; c < 6; ++c) sum += static_cast<double>(grad.at(r, c));
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(Elementwise, SoftmaxCeGradMatchesNumericDerivative) {
  // d/dlogit of mean CE: perturb one logit, compare losses.
  util::Rng rng(8);
  Matrix logits = random_matrix(3, 5, rng);
  const std::vector<int> labels = {2, 0, 4};
  auto loss_of = [&](const Matrix& lg) {
    Matrix p(3, 5);
    kernels::softmax_rows(lg.cview(), p.view());
    return kernels::cross_entropy(p.cview(), labels);
  };
  Matrix probs(3, 5);
  kernels::softmax_rows(logits.cview(), probs.view());
  Matrix grad(3, 5);
  kernels::softmax_ce_grad(probs.cview(), labels, grad.view());

  const float eps = 1e-2F;
  for (const auto [r, c] : {std::pair{0, 2}, {1, 1}, {2, 4}}) {
    Matrix plus = logits;
    plus.at(r, c) += eps;
    Matrix minus = logits;
    minus.at(r, c) -= eps;
    const double numeric = (loss_of(plus) - loss_of(minus)) / (2.0 * eps);
    EXPECT_NEAR(grad.at(r, c), numeric, 2e-3) << "at (" << r << "," << c << ")";
  }
}

TEST(Elementwise, ArgmaxRows) {
  Matrix m(2, 4);
  m.at(0, 2) = 5.0F;
  m.at(1, 0) = 1.0F;
  std::vector<int> out(2);
  kernels::argmax_rows(m.cview(), out);
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[1], 0);
}

// ---------------------------------------------------------------------------
// Backend parity: every runtime-dispatchable backend must agree with the
// scalar reference (the numerical golden model) within SIMD-reassociation
// tolerance, across odd/tail shapes, empty dims, and alpha/beta corners.
// ---------------------------------------------------------------------------

const float kNaN = std::numeric_limits<float>::quiet_NaN();
const float kInf = std::numeric_limits<float>::infinity();

// Shapes chosen to exercise vector tails (non-multiples of 8/16), empty
// dims, single rows/cols, and k beyond one cache block (kBlockK = 256).
const GemmShape kParityShapes[] = {
    {0, 3, 4},   {3, 0, 4},    {3, 4, 0},   {1, 1, 1},
    {5, 7, 3},   {17, 31, 33}, {31, 33, 1}, {1, 16, 257},
    {8, 16, 32}, {64, 70, 300}};
const std::pair<float, float> kAlphaBeta[] = {
    {1.0F, 0.0F}, {0.7F, 0.3F}, {0.0F, 1.0F}, {1.3F, 1.0F}, {0.0F, 0.0F}};

TEST(BackendParity, GemmAllVariantsMatchScalar) {
  const kernels::Backend& ref = kernels::scalar_backend();
  for (const auto* backend : kernels::available_backends()) {
    for (const auto& [m, n, k] : kParityShapes) {
      for (const auto& [alpha, beta] : kAlphaBeta) {
        util::Rng rng(42);
        const Matrix a_nn = random_matrix(m, k, rng);
        const Matrix b_nn = random_matrix(k, n, rng);
        const Matrix b_nt = random_matrix(n, k, rng);
        const Matrix a_tn = random_matrix(k, m, rng);
        const Matrix c0 = random_matrix(m, n, rng);
        const auto check = [&](auto fn, const Matrix& a, const Matrix& b) {
          Matrix got = c0;
          Matrix want = c0;
          (backend->*fn)(a.cview(), b.cview(), got.view(), alpha, beta);
          (ref.*fn)(a.cview(), b.cview(), want.view(), alpha, beta);
          EXPECT_TRUE(
              tensor::allclose(got.cview(), want.cview(), 5e-4F, 5e-5F))
              << backend->name << " vs scalar, shape " << m << "x" << n << "x"
              << k << " alpha=" << alpha << " beta=" << beta << ", max diff "
              << tensor::max_abs_diff(got.cview(), want.cview());
        };
        check(&kernels::Backend::gemm_nn, a_nn, b_nn);
        check(&kernels::Backend::gemm_nt, a_nn, b_nt);
        check(&kernels::Backend::gemm_tn, a_tn, b_nn);
      }
    }
  }
}

TEST(BackendParity, GemvTMatchesScalar) {
  const kernels::Backend& ref = kernels::scalar_backend();
  for (const auto* backend : kernels::available_backends()) {
    for (const int m : {1, 7, 16, 33}) {
      for (const int n : {1, 5, 17, 64}) {
        util::Rng rng(9);
        const Matrix a = random_matrix(m, n, rng);
        Matrix x(1, m);
        tensor::fill_uniform(x.view(), rng, -1.0F, 1.0F);
        Matrix y0(1, n);
        tensor::fill_uniform(y0.view(), rng, -1.0F, 1.0F);
        Matrix got = y0;
        Matrix want = y0;
        backend->gemv_t(a.cview(), x.cview().row(0), got.view().row(0), 0.9F,
                        0.4F);
        ref.gemv_t(a.cview(), x.cview().row(0), want.view().row(0), 0.9F,
                   0.4F);
        EXPECT_TRUE(tensor::allclose(got.cview(), want.cview(), 1e-4F, 1e-5F))
            << backend->name << " gemv_t " << m << "x" << n;
      }
    }
  }
}

// Regression for the scalar gemm_tn `if (av == 0) continue;` shortcut: a
// zero in A must NOT suppress NaN/Inf coming from B — 0 * NaN and 0 * Inf
// are NaN, and the trainer's all_finite() divergence probes rely on
// non-finite values propagating into C.
TEST(BackendParity, GemmTnPropagatesNonFiniteThroughZeros) {
  for (const auto* backend : kernels::available_backends()) {
    Matrix a(3, 2);  // A(k=3, m=2), all zeros
    Matrix b(3, 2);  // B(k=3, n=2)
    b.at(0, 0) = kNaN;
    b.at(1, 1) = kInf;
    Matrix c(2, 2);
    backend->gemm_tn(a.cview(), b.cview(), c.view(), 1.0F, 0.0F);
    EXPECT_TRUE(std::isnan(c.at(0, 0)))
        << backend->name << ": 0 * NaN must stay NaN";
    EXPECT_TRUE(std::isnan(c.at(0, 1)))
        << backend->name << ": 0 * Inf must stay NaN";
    EXPECT_TRUE(std::isnan(c.at(1, 0))) << backend->name;
  }
}

TEST(BackendParity, GemmNtPropagatesNonFiniteThroughZeros) {
  for (const auto* backend : kernels::available_backends()) {
    Matrix a(2, 3);  // zeros
    Matrix b(2, 3);
    b.at(0, 0) = kNaN;
    b.at(1, 2) = kInf;
    Matrix c(2, 2);
    backend->gemm_nt(a.cview(), b.cview(), c.view(), 1.0F, 0.0F);
    EXPECT_TRUE(std::isnan(c.at(0, 0))) << backend->name;
    EXPECT_TRUE(std::isnan(c.at(1, 1))) << backend->name;
  }
}

// Shared BLAS beta semantics: beta == 0 must OVERWRITE C — existing NaNs
// (e.g. uninitialized or poisoned buffers) are discarded, in all three
// variants, in every backend.
TEST(BackendParity, BetaZeroOverwritesNaNInC) {
  for (const auto* backend : kernels::available_backends()) {
    util::Rng rng(11);
    const int m = 5, n = 9, k = 7;
    const Matrix a_nn = random_matrix(m, k, rng);
    const Matrix b_nn = random_matrix(k, n, rng);
    const Matrix b_nt = random_matrix(n, k, rng);
    const Matrix a_tn = random_matrix(k, m, rng);
    const auto check = [&](auto fn, const Matrix& a, const Matrix& b,
                           const char* variant) {
      Matrix poisoned(m, n);
      tensor::fill_constant(poisoned.view(), kNaN);
      Matrix clean(m, n);
      (backend->*fn)(a.cview(), b.cview(), poisoned.view(), 1.0F, 0.0F);
      (backend->*fn)(a.cview(), b.cview(), clean.view(), 1.0F, 0.0F);
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
          EXPECT_TRUE(std::isfinite(poisoned.at(i, j)))
              << backend->name << " " << variant << " left NaN at (" << i
              << "," << j << ")";
        }
      }
      EXPECT_EQ(tensor::max_abs_diff(poisoned.cview(), clean.cview()), 0.0F)
          << backend->name << " " << variant;
    };
    check(&kernels::Backend::gemm_nn, a_nn, b_nn, "nn");
    check(&kernels::Backend::gemm_nt, a_nn, b_nt, "nt");
    check(&kernels::Backend::gemm_tn, a_tn, b_nn, "tn");
  }
}

TEST(BackendParity, PointwiseMatchesScalar) {
  const kernels::Backend& ref = kernels::scalar_backend();
  for (const auto* backend : kernels::available_backends()) {
    for (const int n : {0, 1, 3, 8, 15, 16, 17, 64, 100}) {
      std::vector<float> base(static_cast<std::size_t>(n));
      util::Rng rng(13);
      for (auto& v : base) {
        v = static_cast<float>(rng.uniform(-12.0, 12.0));
      }
      if (n > 2) {  // exercise the exp clamp range
        base[0] = -95.0F;
        base[1] = 95.0F;
      }
      auto sig_got = base, sig_want = base;
      backend->sigmoid_inplace(sig_got);
      ref.sigmoid_inplace(sig_want);
      auto tanh_got = base, tanh_want = base;
      backend->tanh_inplace(tanh_got);
      ref.tanh_inplace(tanh_want);
      for (int i = 0; i < n; ++i) {
        const auto u = static_cast<std::size_t>(i);
        EXPECT_NEAR(sig_got[u], sig_want[u], 1e-5F)
            << backend->name << " sigmoid(" << base[u] << ")";
        EXPECT_NEAR(tanh_got[u], tanh_want[u], 1e-5F)
            << backend->name << " tanh(" << base[u] << ")";
      }

      std::vector<float> other(static_cast<std::size_t>(n));
      for (auto& v : other) {
        v = static_cast<float>(rng.uniform(-2.0, 2.0));
      }
      std::vector<float> had_got(static_cast<std::size_t>(n));
      std::vector<float> had_want(static_cast<std::size_t>(n));
      backend->hadamard(base, other, had_got);
      ref.hadamard(base, other, had_want);
      backend->hadamard_acc(base, other, had_got);
      ref.hadamard_acc(base, other, had_want);
      backend->axpy(1.5F, other, had_got);
      ref.axpy(1.5F, other, had_want);
      for (int i = 0; i < n; ++i) {
        const auto u = static_cast<std::size_t>(i);
        EXPECT_NEAR(had_got[u], had_want[u], 1e-4F)
            << backend->name << " fused pointwise chain at " << i;
      }
    }
  }
}

// int8 dot products accumulate exactly in int32 → bit-identical across
// backends, including every tail length.
TEST(BackendParity, DotI8ExactAcrossBackends) {
  const kernels::Backend& ref = kernels::scalar_backend();
  for (const auto* backend : kernels::available_backends()) {
    for (const int k : {0, 1, 15, 16, 17, 31, 32, 33, 64, 100}) {
      util::Rng rng(17);
      std::vector<std::int8_t> a(static_cast<std::size_t>(k));
      std::vector<std::int8_t> b(static_cast<std::size_t>(k));
      for (auto& v : a) {
        v = static_cast<std::int8_t>(rng.uniform(-127.0, 127.0));
      }
      for (auto& v : b) {
        v = static_cast<std::int8_t>(rng.uniform(-127.0, 127.0));
      }
      EXPECT_EQ(backend->dot_i8(a.data(), b.data(), k),
                ref.dot_i8(a.data(), b.data(), k))
          << backend->name << " k=" << k;
    }
  }
}

TEST(BackendParity, NameLookupAndOverride) {
  EXPECT_NE(kernels::backend_by_name("scalar"), nullptr);
  EXPECT_EQ(kernels::backend_by_name("no-such-isa"), nullptr);
  EXPECT_STREQ(kernels::scalar_backend().name, "scalar");
  // available_backends always contains scalar and the native choice.
  bool has_scalar = false;
  for (const auto* b : kernels::available_backends()) {
    if (std::string_view(b->name) == "scalar") has_scalar = true;
  }
  EXPECT_TRUE(has_scalar);
  EXPECT_NE(kernels::active_backend_name(), nullptr);
}

TEST(Elementwise, AddBiasAndRowSums) {
  Matrix m(3, 2);
  std::vector<float> bias = {1.0F, -1.0F};
  kernels::add_bias_rows(m.view(), bias);
  EXPECT_EQ(m.at(2, 0), 1.0F);
  EXPECT_EQ(m.at(2, 1), -1.0F);
  std::vector<float> sums(2, 0.0F);
  kernels::sum_rows_acc(m.cview(), sums);
  EXPECT_EQ(sums[0], 3.0F);
  EXPECT_EQ(sums[1], -3.0F);
}

}  // namespace
}  // namespace bpar
