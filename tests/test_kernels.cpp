// GEMM and elementwise kernel tests, including parameterized shape sweeps
// against a naive reference implementation.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "kernels/elementwise.hpp"
#include "kernels/gemm.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace bpar {
namespace {

using kernels::gemm_nn;
using kernels::gemm_nt;
using kernels::gemm_tn;
using tensor::Matrix;

Matrix random_matrix(int rows, int cols, util::Rng& rng) {
  Matrix m(rows, cols);
  tensor::fill_uniform(m.view(), rng, -1.0F, 1.0F);
  return m;
}

// Naive reference: C = alpha * op(A) * op(B) + beta * C.
void naive_gemm(const Matrix& a, bool ta, const Matrix& b, bool tb, Matrix& c,
                float alpha, float beta) {
  const int m = c.rows();
  const int n = c.cols();
  const int k = ta ? a.rows() : a.cols();
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) {
        const float av = ta ? a.at(p, i) : a.at(i, p);
        const float bv = tb ? b.at(j, p) : b.at(p, j);
        acc += static_cast<double>(av) * bv;
      }
      c.at(i, j) = alpha * static_cast<float>(acc) + beta * c.at(i, j);
    }
  }
}

using GemmShape = std::tuple<int, int, int>;  // m, n, k

class GemmShapes : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmShapes, NnMatchesNaive) {
  const auto [m, n, k] = GetParam();
  util::Rng rng(1);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix c = random_matrix(m, n, rng);
  Matrix expected = c;
  gemm_nn(a.cview(), b.cview(), c.view(), 0.7F, 0.3F);
  naive_gemm(a, false, b, false, expected, 0.7F, 0.3F);
  EXPECT_TRUE(tensor::allclose(c.cview(), expected.cview(), 1e-4F, 1e-4F))
      << "max diff " << tensor::max_abs_diff(c.cview(), expected.cview());
}

TEST_P(GemmShapes, NtMatchesNaive) {
  const auto [m, n, k] = GetParam();
  util::Rng rng(2);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(n, k, rng);  // used transposed
  Matrix c = random_matrix(m, n, rng);
  Matrix expected = c;
  gemm_nt(a.cview(), b.cview(), c.view(), 1.3F, 0.5F);
  naive_gemm(a, false, b, true, expected, 1.3F, 0.5F);
  EXPECT_TRUE(tensor::allclose(c.cview(), expected.cview(), 1e-4F, 1e-4F));
}

TEST_P(GemmShapes, TnMatchesNaive) {
  const auto [m, n, k] = GetParam();
  util::Rng rng(3);
  Matrix a = random_matrix(k, m, rng);  // used transposed
  Matrix b = random_matrix(k, n, rng);
  Matrix c = random_matrix(m, n, rng);
  Matrix expected = c;
  gemm_tn(a.cview(), b.cview(), c.view(), 1.0F, 1.0F);
  naive_gemm(a, true, b, false, expected, 1.0F, 1.0F);
  EXPECT_TRUE(tensor::allclose(c.cview(), expected.cview(), 1e-4F, 1e-4F));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{2, 3, 4},
                      GemmShape{7, 5, 9}, GemmShape{16, 16, 16},
                      GemmShape{33, 65, 17}, GemmShape{64, 70, 300},
                      GemmShape{1, 128, 256}, GemmShape{128, 1, 300},
                      GemmShape{96, 257, 64}));

TEST(Gemm, BlockViewsComputeSubsets) {
  // Row-split computation must equal the full GEMM (basis of intra-op
  // parallelism in the barrier baseline).
  util::Rng rng(4);
  Matrix a = random_matrix(24, 32, rng);
  Matrix b = random_matrix(40, 32, rng);
  Matrix full(24, 40);
  gemm_nt(a.cview(), b.cview(), full.view());

  Matrix split(24, 40);
  for (int r0 = 0; r0 < 24; r0 += 7) {
    const int rows = std::min(7, 24 - r0);
    gemm_nt(a.cview().block(r0, 0, rows, 32), b.cview(),
            split.view().block(r0, 0, rows, 40));
  }
  EXPECT_EQ(tensor::max_abs_diff(full.cview(), split.cview()), 0.0F);
}

TEST(Gemm, GemvTransposed) {
  util::Rng rng(5);
  Matrix a = random_matrix(6, 4, rng);
  std::vector<float> x = {1.0F, -2.0F, 0.5F, 3.0F, -1.0F, 2.0F};
  std::vector<float> y(4, 1.0F);
  kernels::gemv_t(a.cview(), x, y, 2.0F, 0.5F);
  for (int j = 0; j < 4; ++j) {
    double expect = 0.5;
    for (int i = 0; i < 6; ++i) {
      expect += 2.0 * static_cast<double>(x[static_cast<std::size_t>(i)]) *
                a.at(i, j);
    }
    EXPECT_NEAR(y[static_cast<std::size_t>(j)], expect, 1e-4);
  }
}

TEST(Elementwise, SigmoidRangeAndDerivative) {
  EXPECT_NEAR(kernels::sigmoid(0.0F), 0.5F, 1e-6F);
  EXPECT_GT(kernels::sigmoid(10.0F), 0.9999F);
  EXPECT_LT(kernels::sigmoid(-10.0F), 1e-4F);
  const float y = kernels::sigmoid(0.3F);
  // Numeric derivative check.
  const float eps = 1e-3F;
  const float numeric =
      (kernels::sigmoid(0.3F + eps) - kernels::sigmoid(0.3F - eps)) /
      (2.0F * eps);
  EXPECT_NEAR(kernels::dsigmoid_from_y(y), numeric, 1e-4F);
}

TEST(Elementwise, TanhDerivative) {
  const float y = std::tanh(0.7F);
  const float eps = 1e-3F;
  const float numeric =
      (std::tanh(0.7F + eps) - std::tanh(0.7F - eps)) / (2.0F * eps);
  EXPECT_NEAR(kernels::dtanh_from_y(y), numeric, 1e-4F);
}

TEST(Elementwise, FusedVectorOps) {
  std::vector<float> a = {1, 2, 3};
  std::vector<float> b = {4, 5, 6};
  std::vector<float> d(3);
  kernels::hadamard(a, b, d);
  EXPECT_EQ(d, (std::vector<float>{4, 10, 18}));
  kernels::hadamard_acc(a, b, d);
  EXPECT_EQ(d, (std::vector<float>{8, 20, 36}));
  kernels::axpy(2.0F, a, d);
  EXPECT_EQ(d, (std::vector<float>{10, 24, 42}));
  kernels::scale_inplace(d, 0.5F);
  EXPECT_EQ(d, (std::vector<float>{5, 12, 21}));
}

TEST(Elementwise, SoftmaxRowsSumToOne) {
  util::Rng rng(6);
  Matrix logits = random_matrix(5, 9, rng);
  // Inject large magnitudes to verify numerical stability.
  logits.at(0, 0) = 500.0F;
  logits.at(1, 3) = -500.0F;
  Matrix probs(5, 9);
  kernels::softmax_rows(logits.cview(), probs.view());
  for (int r = 0; r < 5; ++r) {
    double sum = 0.0;
    for (int c = 0; c < 9; ++c) {
      EXPECT_GE(probs.at(r, c), 0.0F);
      sum += static_cast<double>(probs.at(r, c));
    }
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
  EXPECT_NEAR(probs.at(0, 0), 1.0F, 1e-5F);  // dominated row
}

TEST(Elementwise, CrossEntropyOfPerfectPrediction) {
  Matrix probs(2, 3);
  probs.at(0, 1) = 1.0F;
  probs.at(1, 2) = 1.0F;
  const std::vector<int> labels = {1, 2};
  EXPECT_NEAR(kernels::cross_entropy(probs.cview(), labels), 0.0, 1e-5);
}

TEST(Elementwise, SoftmaxCeGradSumsToZeroPerRow) {
  util::Rng rng(7);
  Matrix logits = random_matrix(4, 6, rng);
  Matrix probs(4, 6);
  kernels::softmax_rows(logits.cview(), probs.view());
  const std::vector<int> labels = {0, 5, 2, 3};
  Matrix grad(4, 6);
  kernels::softmax_ce_grad(probs.cview(), labels, grad.view());
  for (int r = 0; r < 4; ++r) {
    double sum = 0.0;
    for (int c = 0; c < 6; ++c) sum += static_cast<double>(grad.at(r, c));
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(Elementwise, SoftmaxCeGradMatchesNumericDerivative) {
  // d/dlogit of mean CE: perturb one logit, compare losses.
  util::Rng rng(8);
  Matrix logits = random_matrix(3, 5, rng);
  const std::vector<int> labels = {2, 0, 4};
  auto loss_of = [&](const Matrix& lg) {
    Matrix p(3, 5);
    kernels::softmax_rows(lg.cview(), p.view());
    return kernels::cross_entropy(p.cview(), labels);
  };
  Matrix probs(3, 5);
  kernels::softmax_rows(logits.cview(), probs.view());
  Matrix grad(3, 5);
  kernels::softmax_ce_grad(probs.cview(), labels, grad.view());

  const float eps = 1e-2F;
  for (const auto [r, c] : {std::pair{0, 2}, {1, 1}, {2, 4}}) {
    Matrix plus = logits;
    plus.at(r, c) += eps;
    Matrix minus = logits;
    minus.at(r, c) -= eps;
    const double numeric = (loss_of(plus) - loss_of(minus)) / (2.0 * eps);
    EXPECT_NEAR(grad.at(r, c), numeric, 2e-3) << "at (" << r << "," << c << ")";
  }
}

TEST(Elementwise, ArgmaxRows) {
  Matrix m(2, 4);
  m.at(0, 2) = 5.0F;
  m.at(1, 0) = 1.0F;
  std::vector<int> out(2);
  kernels::argmax_rows(m.cview(), out);
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[1], 0);
}

TEST(Elementwise, AddBiasAndRowSums) {
  Matrix m(3, 2);
  std::vector<float> bias = {1.0F, -1.0F};
  kernels::add_bias_rows(m.view(), bias);
  EXPECT_EQ(m.at(2, 0), 1.0F);
  EXPECT_EQ(m.at(2, 1), -1.0F);
  std::vector<float> sums(2, 0.0F);
  kernels::sum_rows_acc(m.cview(), sums);
  EXPECT_EQ(sums[0], 3.0F);
  EXPECT_EQ(sums[1], -3.0F);
}

}  // namespace
}  // namespace bpar
