// perf subsystem tests: histograms, timers, perf_event wrapper fallback,
// and the analytic GPU model's calibrated shape.
#include <gtest/gtest.h>

#include <thread>

#include "perf/gpu_model.hpp"
#include "perf/histogram.hpp"
#include "perf/perf_events.hpp"
#include "perf/timer.hpp"

namespace bpar::perf {
namespace {

TEST(Histogram, BinningAndFractions) {
  Histogram h({1.0, 2.0, 3.0});
  h.add(0.5, 2.0);   // bin 0
  h.add(1.5, 1.0);   // bin 1
  h.add(2.0, 1.0);   // bin 2 (>= edge goes right)
  h.add(10.0, 4.0);  // bin 3
  EXPECT_EQ(h.bins(), 4U);
  EXPECT_EQ(h.bin_weight(0), 2.0);
  EXPECT_EQ(h.bin_weight(1), 1.0);
  EXPECT_EQ(h.bin_weight(2), 1.0);
  EXPECT_EQ(h.bin_weight(3), 4.0);
  EXPECT_NEAR(h.bin_fraction(3), 0.5, 1e-12);
  EXPECT_NEAR(h.mean(), (0.5 * 2 + 1.5 + 2.0 + 10.0 * 4) / 8.0, 1e-12);
}

TEST(Histogram, Labels) {
  Histogram h({1.5, 2.0});
  EXPECT_EQ(h.bin_label(0), "<1.5");
  EXPECT_EQ(h.bin_label(1), "1.5-2.0");
  EXPECT_EQ(h.bin_label(2), ">=2.0");
}

TEST(Histogram, EmptyHistogramSafe) {
  Histogram h({1.0});
  EXPECT_EQ(h.bin_fraction(0), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.elapsed_ms(), 15.0);
  EXPECT_LT(timer.elapsed_ms(), 5000.0);
  timer.reset();
  EXPECT_LT(timer.elapsed_ms(), 15.0);
}

TEST(PerfCounters, GracefulWhenUnavailable) {
  PerfCounters counters;
  counters.start();
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  const auto sample = counters.stop();
  if (counters.available()) {
    ASSERT_TRUE(sample.has_value());
    EXPECT_GT(sample->instructions, 0U);
    EXPECT_GT(sample->ipc(), 0.0);
  } else {
    EXPECT_FALSE(sample.has_value());
  }
}

TEST(GpuModel, ParamCountMatchesPaper) {
  GpuWorkload w{.gates = 4,
                .input_size = 256,
                .hidden_size = 256,
                .batch_size = 1,
                .seq_length = 2,
                .layers = 6};
  EXPECT_NEAR(brnn_param_count(w) / 1e6, 6.3, 0.15);
  w.gates = 3;
  EXPECT_NEAR(brnn_param_count(w) / 1e6, 4.7, 0.15);
}

TEST(GpuModel, SmallSequencesAreLatencyBound) {
  // Paper: for batch 1 / seq 2, GPU ≈ 24 ms regardless of compute — the
  // regime where B-Par on CPU wins (Table III row 256/256/1/2).
  const auto params = keras_v100();
  GpuWorkload tiny{.gates = 4,
                   .input_size = 256,
                   .hidden_size = 256,
                   .batch_size = 1,
                   .seq_length = 2,
                   .layers = 6};
  const auto t = gpu_batch_time_ms(params, tiny);
  ASSERT_TRUE(t.has_value());
  EXPECT_GT(*t, 20.0);
  EXPECT_LT(*t, 30.0);
}

TEST(GpuModel, LargeBatchesAreThroughputBound) {
  // Table III row 64/1024/256/100: K-GPU ≈ 1277 ms. The model should land
  // within ~2x.
  const auto params = keras_v100();
  GpuWorkload big{.gates = 4,
                  .input_size = 64,
                  .hidden_size = 1024,
                  .batch_size = 256,
                  .seq_length = 100,
                  .layers = 6};
  const auto t = gpu_batch_time_ms(params, big);
  ASSERT_TRUE(t.has_value());
  EXPECT_GT(*t, 600.0);
  EXPECT_LT(*t, 2600.0);
}

TEST(GpuModel, PytorchLaunchOverheadDominatesLongSequences) {
  // Table III row 256/256/1/100: P-GPU ≈ 516 ms vs K-GPU ≈ 81 ms.
  GpuWorkload w{.gates = 4,
                .input_size = 256,
                .hidden_size = 256,
                .batch_size = 1,
                .seq_length = 100,
                .layers = 6};
  const auto keras = gpu_batch_time_ms(keras_v100(), w);
  const auto pytorch = gpu_batch_time_ms(pytorch_v100(), w);
  ASSERT_TRUE(keras.has_value());
  ASSERT_TRUE(pytorch.has_value());
  EXPECT_GT(*pytorch, *keras * 3.0);
}

TEST(GpuModel, PytorchHangsOnHugeModels) {
  // Tables III/IV leave P-GPU blank above ~90M parameters.
  GpuWorkload huge{.gates = 4,
                   .input_size = 64,
                   .hidden_size = 1024,
                   .batch_size = 256,
                   .seq_length = 100,
                   .layers = 6};
  EXPECT_FALSE(gpu_batch_time_ms(pytorch_v100(), huge).has_value());
  EXPECT_TRUE(gpu_batch_time_ms(keras_v100(), huge).has_value());
}

TEST(GpuModel, MonotoneInWork) {
  const auto params = keras_v100();
  GpuWorkload w{.gates = 4,
                .input_size = 64,
                .hidden_size = 128,
                .batch_size = 32,
                .seq_length = 10,
                .layers = 2};
  const auto base = gpu_batch_time_ms(params, w);
  w.seq_length = 40;
  const auto longer = gpu_batch_time_ms(params, w);
  w.seq_length = 10;
  w.layers = 8;
  const auto deeper = gpu_batch_time_ms(params, w);
  ASSERT_TRUE(base && longer && deeper);
  EXPECT_GT(*longer, *base);
  EXPECT_GT(*deeper, *base);
}

}  // namespace
}  // namespace bpar::perf
