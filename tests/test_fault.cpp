// Fault-injection tests: deterministic fault plans, injected throws
// propagating cleanly out of graphs and parallel_for at several worker
// counts, and the watchdog turning a stalled graph into a diagnostic
// instead of a hang.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "taskrt/fault.hpp"
#include "taskrt/runtime.hpp"
#include "taskrt/task_graph.hpp"

namespace bpar::taskrt {
namespace {

TEST(FaultSpec, ParsesFullSpec) {
  const auto spec = FaultSpec::parse(
      "seed=42,throw=0.01,delay=0.005,delay_us=350,stall=0.001,"
      "stall_tasks=7:19,throw_tasks=3");
  EXPECT_EQ(spec.seed, 42U);
  EXPECT_DOUBLE_EQ(spec.throw_rate, 0.01);
  EXPECT_DOUBLE_EQ(spec.delay_rate, 0.005);
  EXPECT_DOUBLE_EQ(spec.stall_rate, 0.001);
  EXPECT_EQ(spec.delay_us, 350U);
  EXPECT_EQ(spec.stall_tasks, (std::vector<TaskId>{7, 19}));
  EXPECT_EQ(spec.throw_tasks, (std::vector<TaskId>{3}));
  EXPECT_TRUE(spec.enabled());
}

TEST(FaultSpec, EmptySpecIsDisabled) {
  const auto spec = FaultSpec::parse("");
  EXPECT_FALSE(spec.enabled());
}

TEST(FaultSpec, MalformedSpecThrows) {
  EXPECT_THROW((void)FaultSpec::parse("throw=abc"), util::Error);
  EXPECT_THROW((void)FaultSpec::parse("nonsense=1"), util::Error);
  EXPECT_THROW((void)FaultSpec::parse("throw"), util::Error);
}

TEST(FaultInjector, DisabledSpecCreatesNoInjector) {
  RuntimeOptions opts;
  opts.num_workers = 2;
  opts.read_fault_env = false;
  Runtime rt(opts);
  EXPECT_EQ(rt.fault_injector(), nullptr);
}

// Runs `tasks` no-op tasks through a fresh runtime and returns how many
// throws were injected.
std::uint64_t run_and_count_throws(const FaultSpec& spec, int tasks,
                                   int workers, int* completed = nullptr) {
  RuntimeOptions opts;
  opts.num_workers = workers;
  opts.faults = spec;
  opts.read_fault_env = false;
  Runtime rt(opts);
  TaskGraph g;
  std::atomic<int> ran{0};
  for (int i = 0; i < tasks; ++i) {
    g.add([&ran] { ran.fetch_add(1, std::memory_order_relaxed); }, {});
  }
  try {
    rt.run(g);
  } catch (const InjectedFault&) {
  }
  if (completed != nullptr) *completed = ran.load();
  return rt.fault_injector()->throws_injected();
}

TEST(FaultInjector, ScheduleIsDeterministicPerSeed) {
  FaultSpec spec;
  spec.seed = 7;
  spec.throw_rate = 0.05;
  const auto a = run_and_count_throws(spec, 400, 4);
  const auto b = run_and_count_throws(spec, 400, 4);
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0U);

  FaultSpec other = spec;
  other.seed = 8;
  // A different seed picks a different (deterministic) schedule. The
  // counts could coincide; the expectation documents the common case.
  const auto c = run_and_count_throws(other, 400, 4);
  const auto d = run_and_count_throws(other, 400, 4);
  EXPECT_EQ(c, d);
}

TEST(FaultInjector, SessionsDecorrelateSchedules) {
  // The same graph run twice in one runtime sees different sessions, so a
  // retried batch is not doomed to the identical fault forever.
  FaultSpec spec;
  spec.seed = 3;
  spec.throw_rate = 0.15;
  RuntimeOptions opts;
  opts.num_workers = 2;
  opts.faults = spec;
  opts.read_fault_env = false;
  Runtime rt(opts);
  TaskGraph g;
  for (int i = 0; i < 5; ++i) g.add([] {}, {});
  int failed_sessions = 0;
  for (int s = 0; s < 12; ++s) {
    try {
      rt.run(g);
    } catch (const InjectedFault&) {
      ++failed_sessions;
    }
  }
  // The schedule is a pure function of (seed, session, task id), so this
  // outcome is deterministic. With p=0.15 over 5 tasks a session fails
  // slightly more than half the time; all-fail or none-fail would mean
  // sessions reuse one schedule.
  EXPECT_GT(failed_sessions, 0);
  EXPECT_LT(failed_sessions, 12);
}

TEST(FaultMatrix, PinnedThrowPropagatesAcrossWorkerCounts) {
  for (const int workers : {2, 4, 8, 16}) {
    FaultSpec spec;
    spec.throw_tasks = {10};  // mid-graph, every session
    RuntimeOptions opts;
    opts.num_workers = workers;
    opts.faults = spec;
    opts.read_fault_env = false;
    Runtime rt(opts);
    TaskGraph g;
    std::atomic<int> ran{0};
    for (int i = 0; i < 40; ++i) {
      g.add([&ran] { ran.fetch_add(1, std::memory_order_relaxed); }, {});
    }
    EXPECT_THROW(rt.run(g), InjectedFault) << workers << " workers";
    EXPECT_EQ(rt.fault_injector()->throws_injected(), 1U);

    // The failed session drained; the runtime stays usable. A smaller
    // graph avoids the pinned id.
    TaskGraph g2;
    std::atomic<int> reran{0};
    for (int i = 0; i < 5; ++i) {
      g2.add([&reran] { reran.fetch_add(1, std::memory_order_relaxed); },
             {});
    }
    rt.run(g2);
    EXPECT_EQ(reran.load(), 5) << workers << " workers";
  }
}

TEST(FaultMatrix, ParallelForPropagatesInjectedFault) {
  for (const int workers : {2, 8}) {
    FaultSpec spec;
    spec.throw_rate = 1.0;  // every task throws
    RuntimeOptions opts;
    opts.num_workers = workers;
    opts.faults = spec;
    opts.read_fault_env = false;
    Runtime rt(opts);
    EXPECT_THROW(
        rt.parallel_for(0, 64, 8, [](std::int64_t, std::int64_t) {}),
        InjectedFault)
        << workers << " workers";
  }
}

TEST(Watchdog, StalledTaskYieldsDiagnosticNotHang) {
  FaultSpec spec;
  spec.stall_tasks = {2};
  RuntimeOptions opts;
  opts.num_workers = 4;
  opts.faults = spec;
  opts.watchdog_ms = 150;
  opts.read_fault_env = false;
  Runtime rt(opts);
  TaskGraph g;
  for (int i = 0; i < 8; ++i) g.add([] {}, {});
  try {
    rt.run(g);
    FAIL() << "expected WatchdogError";
  } catch (const WatchdogError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("watchdog"), std::string::npos) << what;
    EXPECT_NE(what.find("ready-fifo"), std::string::npos) << what;
    EXPECT_NE(what.find("deque"), std::string::npos) << what;
    EXPECT_NE(what.find("pending histogram"), std::string::npos) << what;
    EXPECT_NE(what.find("oldest unfinished"), std::string::npos) << what;
  }

  // The watchdog released the stall and the graph drained within the
  // grace period, so the runtime is reusable.
  TaskGraph g2;
  std::atomic<int> ran{0};
  g2.add([&ran] { ran.fetch_add(1, std::memory_order_relaxed); }, {});
  rt.run(g2);
  EXPECT_EQ(ran.load(), 1);
}

TEST(Watchdog, QuietGraphDoesNotTrip) {
  RuntimeOptions opts;
  opts.num_workers = 4;
  opts.watchdog_ms = 2000;
  opts.read_fault_env = false;
  Runtime rt(opts);
  TaskGraph g;
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    g.add([&ran] { ran.fetch_add(1, std::memory_order_relaxed); }, {});
  }
  rt.run(g);
  EXPECT_EQ(ran.load(), 64);
}

TEST(Watchdog, SchedulerDumpAvailableWhenIdle) {
  RuntimeOptions opts;
  opts.num_workers = 2;
  opts.read_fault_env = false;
  Runtime rt(opts);
  EXPECT_NE(rt.scheduler_state_dump().find("idle"), std::string::npos);
}

}  // namespace
}  // namespace bpar::taskrt
