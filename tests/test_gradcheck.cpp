// End-to-end finite-difference gradient verification through the public
// executors — validates BPTT math and the task-graph wiring together.
#include <gtest/gtest.h>

#include "exec/bpar_executor.hpp"
#include "exec/sequential.hpp"
#include "train/gradient_check.hpp"
#include "util/rng.hpp"

namespace bpar {
namespace {

using rnn::BatchData;
using rnn::CellType;
using rnn::MergeOp;
using rnn::NetworkConfig;

BatchData make_batch(const NetworkConfig& cfg, std::uint64_t seed) {
  util::Rng rng(seed);
  BatchData batch;
  batch.x.resize(static_cast<std::size_t>(cfg.seq_length));
  for (auto& m : batch.x) {
    m.resize(cfg.batch_size, cfg.input_size);
    tensor::fill_uniform(m.view(), rng, -1.0F, 1.0F);
  }
  const int label_count =
      cfg.many_to_many ? cfg.seq_length * cfg.batch_size : cfg.batch_size;
  batch.labels.resize(static_cast<std::size_t>(label_count));
  for (auto& l : batch.labels) {
    l = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(cfg.num_classes)));
  }
  return batch;
}

struct GcCase {
  std::string tag;
  CellType cell;
  MergeOp merge;
  bool m2m;
};

class GradCheck : public ::testing::TestWithParam<GcCase> {};

TEST_P(GradCheck, SequentialExecutorGradientsMatchFiniteDifferences) {
  const auto& p = GetParam();
  NetworkConfig cfg;
  cfg.cell = p.cell;
  cfg.merge = p.merge;
  cfg.many_to_many = p.m2m;
  cfg.input_size = 4;
  cfg.hidden_size = 6;
  cfg.num_layers = 2;
  cfg.seq_length = 3;
  cfg.batch_size = 3;
  cfg.num_classes = 5;
  cfg.seed = 11;
  rnn::Network net(cfg);
  exec::SequentialExecutor executor(net);
  const BatchData batch = make_batch(cfg, 44);
  const auto result =
      train::check_gradients(net, executor, batch, 60, 1e-2F);
  EXPECT_TRUE(result.ok(0.08)) << "max rel error " << result.max_rel_error
                               << " mean " << result.mean_rel_error;
}

TEST_P(GradCheck, BParExecutorGradientsMatchFiniteDifferences) {
  const auto& p = GetParam();
  NetworkConfig cfg;
  cfg.cell = p.cell;
  cfg.merge = p.merge;
  cfg.many_to_many = p.m2m;
  cfg.input_size = 4;
  cfg.hidden_size = 5;
  cfg.num_layers = 2;
  cfg.seq_length = 3;
  cfg.batch_size = 4;
  cfg.num_classes = 5;
  cfg.seed = 13;
  rnn::Network net(cfg);
  exec::BParExecutor executor(net, {.common = {.num_workers = 4,
                                               .num_replicas = 2}});
  const BatchData batch = make_batch(cfg, 55);
  const auto result =
      train::check_gradients(net, executor, batch, 40, 1e-2F);
  EXPECT_TRUE(result.ok(0.08)) << "max rel error " << result.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GradCheck,
    ::testing::Values(GcCase{"lstm_concat_m2o", CellType::kLstm,
                             MergeOp::kConcat, false},
                      GcCase{"gru_concat_m2o", CellType::kGru,
                             MergeOp::kConcat, false},
                      GcCase{"lstm_sum_m2m", CellType::kLstm, MergeOp::kSum,
                             true},
                      GcCase{"gru_concat_m2m", CellType::kGru,
                             MergeOp::kConcat, true},
                      GcCase{"lstm_mul_m2o", CellType::kLstm, MergeOp::kMul,
                             false},
                      GcCase{"gru_avg_m2o", CellType::kGru,
                             MergeOp::kAverage, false}),
    [](const auto& info) { return info.param.tag; });


TEST(InputGradients, MatchFiniteDifferencesAndSequential) {
  NetworkConfig cfg;
  cfg.cell = CellType::kLstm;
  cfg.input_size = 4;
  cfg.hidden_size = 5;
  cfg.num_layers = 2;
  cfg.seq_length = 3;
  cfg.batch_size = 4;
  cfg.num_classes = 3;
  cfg.seed = 21;
  rnn::Network net(cfg);
  exec::BParExecutor bpar(net, {.common = {.num_workers = 3,
                                           .num_replicas = 2},
                                .compute_input_grads = true});
  BatchData batch = make_batch(cfg, 66);
  bpar.train_batch(batch);

  // Reassemble full-batch input gradients from the replica workspaces.
  auto& program = bpar.train_program();
  tensor::Matrix full_dx(cfg.batch_size, cfg.input_size);
  const int check_t = 1;
  for (int rep = 0; rep < program.num_replicas(); ++rep) {
    auto& ws = program.replica(rep);
    ASSERT_TRUE(ws.has_input_grads());
    tensor::Matrix combined(ws.batch(), cfg.input_size);
    ws.input_grad(check_t, combined.view());
    tensor::copy(combined.cview(),
                 full_dx.view().block(program.replica_row_begin(rep), 0,
                                      ws.batch(), cfg.input_size));
  }

  // Finite differences on a few input entries.
  const float eps = 1e-2F;
  util::Rng rng(5);
  for (int i = 0; i < 8; ++i) {
    const int r = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(cfg.batch_size)));
    const int c = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(cfg.input_size)));
    float& slot = batch.x[check_t].at(r, c);
    const float saved = slot;
    slot = saved + eps;
    const double plus = bpar.infer(batch).loss;
    slot = saved - eps;
    const double minus = bpar.infer(batch).loss;
    slot = saved;
    const double numeric = (plus - minus) / (2.0 * static_cast<double>(eps));
    const double analytic = full_dx.at(r, c);
    const double denom =
        std::max({std::abs(numeric), std::abs(analytic), 1e-4});
    EXPECT_LT(std::abs(numeric - analytic) / denom, 0.08)
        << "(" << r << "," << c << ") numeric " << numeric << " analytic "
        << analytic;
  }
}

}  // namespace
}  // namespace bpar
