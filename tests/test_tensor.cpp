// Tensor container and view tests.
#include <gtest/gtest.h>

#include <cstdint>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace bpar::tensor {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(3, 4);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 4; ++c) EXPECT_EQ(m.at(r, c), 0.0F);
  }
}

TEST(Matrix, CacheLineAligned) {
  Matrix m(5, 7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) % kCacheLineBytes, 0U);
}

TEST(Matrix, CopySemanticsDeep) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0F;
  Matrix b = a;
  b.at(0, 0) = 2.0F;
  EXPECT_EQ(a.at(0, 0), 1.0F);
  EXPECT_NE(a.data(), b.data());
}

TEST(Matrix, MoveTransfersStorage) {
  Matrix a(2, 2);
  const float* data = a.data();
  Matrix b = std::move(a);
  EXPECT_EQ(b.data(), data);
}

TEST(Matrix, EmptyMatrixIsSafe) {
  Matrix m;
  EXPECT_EQ(m.count(), 0U);
  EXPECT_EQ(m.data(), nullptr);
  m.zero();  // no-op, no crash
}

TEST(Views, BlockAliasesParentStorage) {
  Matrix m(4, 6);
  auto block = m.view().block(1, 2, 2, 3);
  block.at(0, 0) = 42.0F;
  EXPECT_EQ(m.at(1, 2), 42.0F);
  EXPECT_EQ(block.ld, 6);
  EXPECT_FALSE(block.contiguous());
}

TEST(Views, RowSpan) {
  Matrix m(2, 3);
  m.at(1, 2) = 7.0F;
  const auto row = m.cview().row(1);
  EXPECT_EQ(row.size(), 3U);
  EXPECT_EQ(row[2], 7.0F);
}

TEST(Helpers, FillAndCompare) {
  util::Rng rng(3);
  Matrix a(5, 5);
  fill_uniform(a.view(), rng, 0.5F, 1.5F);
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 5; ++c) {
      EXPECT_GE(a.at(r, c), 0.5F);
      EXPECT_LT(a.at(r, c), 1.5F);
    }
  }
  Matrix b = a;
  EXPECT_TRUE(allclose(a.cview(), b.cview()));
  b.at(2, 2) += 0.1F;
  EXPECT_FALSE(allclose(a.cview(), b.cview(), 1e-3F, 1e-3F));
  EXPECT_NEAR(max_abs_diff(a.cview(), b.cview()), 0.1F, 1e-6F);
}

TEST(Helpers, CopyRespectsStridedViews) {
  Matrix src(4, 4);
  util::Rng rng(4);
  fill_uniform(src.view(), rng, -1.0F, 1.0F);
  Matrix dst(4, 4);
  copy(src.cview().block(0, 0, 2, 2), dst.view().block(2, 2, 2, 2));
  EXPECT_EQ(dst.at(2, 2), src.at(0, 0));
  EXPECT_EQ(dst.at(3, 3), src.at(1, 1));
  EXPECT_EQ(dst.at(0, 0), 0.0F);
}

TEST(Helpers, NormsAndSums) {
  Matrix m(1, 4);
  m.at(0, 0) = 3.0F;
  m.at(0, 1) = 4.0F;
  EXPECT_NEAR(l2_norm(m.cview()), 5.0, 1e-6);
  EXPECT_NEAR(sum(m.cview()), 7.0, 1e-6);
}

TEST(Helpers, AllFiniteDetectsNanAndInf) {
  Matrix m(2, 2);
  EXPECT_TRUE(all_finite(m.cview()));
  m.at(0, 1) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(all_finite(m.cview()));
  m.at(0, 1) = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(all_finite(m.cview()));
}

TEST(Helpers, FillConstantAndWeights) {
  Matrix m(3, 3);
  fill_constant(m.view(), 2.5F);
  EXPECT_EQ(sum(m.cview()), 22.5);
  util::Rng rng(5);
  fill_weights(m.view(), rng, 0.1F);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) EXPECT_LE(std::abs(m.at(r, c)), 0.1F);
  }
}

}  // namespace
}  // namespace bpar::tensor
