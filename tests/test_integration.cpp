// End-to-end integration tests: the two paper workloads (TIDIGITS-style
// many-to-one speech classification; Wikipedia-style many-to-many next-char
// prediction) trained with B-Par, plus cross-executor accuracy parity —
// the "no accuracy loss" claim of §III.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bpar.hpp"
#include "data/tidigits.hpp"
#include "data/wikipedia.hpp"
#include "train/trainer.hpp"

namespace bpar {
namespace {

TEST(Integration, SpeechDigitsTrainingImprovesAccuracyWithBPar) {
  data::TidigitsConfig dcfg;
  dcfg.feature_dim = 8;
  dcfg.seq_length = 16;
  dcfg.num_utterances = 192;
  dcfg.noise = 0.1;
  data::TidigitsCorpus corpus(dcfg);
  const auto batches = corpus.make_batches(32);

  rnn::NetworkConfig cfg;
  cfg.cell = rnn::CellType::kLstm;
  cfg.input_size = dcfg.feature_dim;
  cfg.hidden_size = 16;
  cfg.num_layers = 2;
  cfg.seq_length = dcfg.seq_length;
  cfg.batch_size = 32;
  cfg.num_classes = data::kTidigitsClasses;
  cfg.seed = 17;

  Model model(cfg);
  model.select_executor(ExecutorKind::kBPar,
                        {.num_workers = 4, .num_replicas = 4});
  model.set_optimizer(std::make_unique<train::Adam>(
      train::Adam::Config{.learning_rate = 5e-3F}));

  train::Trainer trainer(model.network(), model.executor(),
                         model.optimizer());
  const auto before = trainer.evaluate(batches);
  for (int epoch = 0; epoch < 15; ++epoch) trainer.train_epoch(batches);
  const auto after = trainer.evaluate(batches);
  EXPECT_LT(after.mean_loss, before.mean_loss * 0.8);
  EXPECT_GT(after.accuracy, before.accuracy);
  EXPECT_GT(after.accuracy, 0.3);  // far above the 1/11 chance level
}

TEST(Integration, NextCharTrainingReducesLoss) {
  data::WikipediaConfig wcfg;
  wcfg.input_size = 12;
  wcfg.seq_length = 12;
  wcfg.corpus_chars = 40000;
  data::WikipediaCorpus corpus(wcfg);
  const auto batches = corpus.make_batches(16, 4);

  rnn::NetworkConfig cfg;
  cfg.cell = rnn::CellType::kGru;
  cfg.input_size = wcfg.input_size;
  cfg.hidden_size = 24;
  cfg.num_layers = 2;
  cfg.seq_length = wcfg.seq_length;
  cfg.batch_size = 16;
  cfg.num_classes = corpus.vocab_size();
  cfg.many_to_many = true;
  cfg.seed = 29;

  Model model(cfg);
  model.select_executor(ExecutorKind::kBPar,
                        {.num_workers = 4, .num_replicas = 2});
  model.set_optimizer(std::make_unique<train::Adam>(
      train::Adam::Config{.learning_rate = 4e-3F}));

  double first = 0.0;
  double last = 0.0;
  for (int epoch = 0; epoch < 10; ++epoch) {
    double epoch_loss = 0.0;
    for (const auto& batch : batches) {
      epoch_loss += model.train_batch(batch).loss;
    }
    epoch_loss /= static_cast<double>(batches.size());
    if (epoch == 0) first = epoch_loss;
    last = epoch_loss;
  }
  EXPECT_LT(last, first * 0.9);
}

TEST(Integration, TrainedAccuracyIdenticalAcrossExecutors) {
  // Train with the sequential reference, then evaluate the same weights
  // with every executor: predictions (and hence accuracy) must agree.
  data::TidigitsConfig dcfg;
  dcfg.feature_dim = 6;
  dcfg.seq_length = 10;
  dcfg.num_utterances = 64;
  data::TidigitsCorpus corpus(dcfg);
  const auto batches = corpus.make_batches(16);

  rnn::NetworkConfig cfg;
  cfg.cell = rnn::CellType::kGru;
  cfg.input_size = dcfg.feature_dim;
  cfg.hidden_size = 10;
  cfg.num_layers = 2;
  cfg.seq_length = dcfg.seq_length;
  cfg.batch_size = 16;
  cfg.num_classes = data::kTidigitsClasses;
  cfg.seed = 31;

  Model model(cfg);
  model.set_optimizer(std::make_unique<train::Sgd>(
      train::Sgd::Config{.learning_rate = 0.1F}));
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (const auto& batch : batches) model.train_batch(batch);
  }

  std::vector<std::vector<int>> all_preds;
  for (const ExecutorKind kind :
       {ExecutorKind::kSequential, ExecutorKind::kBPar, ExecutorKind::kBSeq,
        ExecutorKind::kLayerBarrier}) {
    model.select_executor(kind, {.num_workers = 3, .num_replicas = 2});
    std::vector<int> preds;
    for (const auto& batch : batches) {
      const auto result = model.infer(batch);
      preds.insert(preds.end(), result.predictions.begin(),
                   result.predictions.end());
    }
    all_preds.push_back(std::move(preds));
  }
  for (std::size_t i = 1; i < all_preds.size(); ++i) {
    EXPECT_EQ(all_preds[i], all_preds[0]) << "executor " << i;
  }
}

TEST(Integration, LongRunningTrainingStaysFinite) {
  // Numerical-robustness soak: many steps with a large learning rate must
  // not produce NaNs thanks to gradient clipping.
  rnn::NetworkConfig cfg;
  cfg.cell = rnn::CellType::kLstm;
  cfg.input_size = 4;
  cfg.hidden_size = 8;
  cfg.num_layers = 3;
  cfg.seq_length = 8;
  cfg.batch_size = 4;
  cfg.num_classes = 3;
  Model model(cfg);
  model.select_executor(ExecutorKind::kBPar, {.num_workers = 2});
  model.set_optimizer(std::make_unique<train::Sgd>(train::Sgd::Config{
      .learning_rate = 0.5F, .momentum = 0.9F, .clip_norm = 1.0F}));

  util::Rng rng(2);
  rnn::BatchData batch;
  batch.x.resize(static_cast<std::size_t>(cfg.seq_length));
  for (auto& m : batch.x) {
    m.resize(cfg.batch_size, cfg.input_size);
    tensor::fill_uniform(m.view(), rng, -2.0F, 2.0F);
  }
  batch.labels = {0, 1, 2, 0};
  for (int i = 0; i < 60; ++i) {
    const double loss = model.train_batch(batch).loss;
    ASSERT_TRUE(std::isfinite(loss)) << "step " << i;
  }
  EXPECT_TRUE(tensor::all_finite(model.network().w_out.cview()));
}


TEST(Integration, VariableLengthSpeechTrainingWithBPar) {
  // Bucketed variable-length utterances: one B-Par executor trains across
  // batches of different sequence lengths (dynamic graph adjustment).
  data::TidigitsConfig dcfg;
  dcfg.feature_dim = 6;
  dcfg.seq_length = 14;
  dcfg.min_seq_length = 8;
  dcfg.num_utterances = 300;
  data::TidigitsCorpus corpus(dcfg);
  const auto batches = corpus.make_bucketed_batches(16);
  ASSERT_GT(batches.size(), 2U);

  rnn::NetworkConfig cfg;
  cfg.cell = rnn::CellType::kGru;
  cfg.input_size = dcfg.feature_dim;
  cfg.hidden_size = 12;
  cfg.num_layers = 2;
  cfg.seq_length = dcfg.seq_length;  // default; batches vary
  cfg.batch_size = 16;
  cfg.num_classes = data::kTidigitsClasses;

  Model model(cfg);
  model.select_executor(ExecutorKind::kBPar,
                        {.num_workers = 3, .num_replicas = 2});
  model.set_optimizer(std::make_unique<train::Adam>(
      train::Adam::Config{.learning_rate = 5e-3F, .weight_decay = 1e-4F}));

  double first = 0.0;
  double last = 0.0;
  for (int epoch = 0; epoch < 8; ++epoch) {
    double loss = 0.0;
    for (const auto& batch : batches) loss += model.train_batch(batch).loss;
    loss /= static_cast<double>(batches.size());
    if (epoch == 0) first = loss;
    last = loss;
    ASSERT_TRUE(std::isfinite(loss));
  }
  EXPECT_LT(last, first * 0.95);
}

}  // namespace
}  // namespace bpar
