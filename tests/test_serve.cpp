// Serving engine suite (DESIGN.md §5f): micro-batcher flush rules, padding
// masking (batched results must match a batch-1 sequential reference),
// cached-program determinism, FIFO fairness, backpressure, deadlines, and a
// many-client concurrency smoke that doubles as the TSan target.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "exec/sequential.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_server.hpp"
#include "rnn/network.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"
#include "taskrt/fault.hpp"
#include "util/rng.hpp"

namespace bpar {
namespace {

using serve::EngineOptions;
using serve::InferenceEngine;
using serve::LoadgenOptions;
using serve::Request;
using serve::Response;
using serve::Status;

rnn::NetworkConfig small_config(int seq = 6, int max_batch = 4) {
  rnn::NetworkConfig cfg;
  cfg.cell = rnn::CellType::kLstm;
  cfg.input_size = 5;
  cfg.hidden_size = 8;
  cfg.num_layers = 2;
  cfg.seq_length = seq;
  cfg.batch_size = max_batch;
  cfg.num_classes = 4;
  return cfg;
}

EngineOptions quiet_options(int max_batch = 4) {
  EngineOptions options;
  options.executor.num_workers = 2;
  options.executor.num_replicas = 2;
  options.max_batch = max_batch;
  // Sanitizer runs are 10-20x slower than real time; keep the queue-delay
  // shed valve out of play unless a test dials it in explicitly.
  options.shed_wait_us = 10'000'000;
  return options;
}

/// The request as a batch-1 BatchData for the reference executor.
rnn::BatchData unit_batch(const rnn::NetworkConfig& cfg,
                          const Request& request) {
  rnn::BatchData batch;
  batch.x.resize(static_cast<std::size_t>(request.steps));
  for (int t = 0; t < request.steps; ++t) {
    auto& m = batch.x[static_cast<std::size_t>(t)];
    m.resize(1, cfg.input_size);
    for (int f = 0; f < cfg.input_size; ++f) {
      m.view().at(0, f) =
          request.features[static_cast<std::size_t>(t) *
                               static_cast<std::size_t>(cfg.input_size) +
                           static_cast<std::size_t>(f)];
    }
  }
  batch.labels = request.labels;
  return batch;
}

TEST(ServeBucketRows, PowersOfTwoClampedToMaxBatch) {
  EXPECT_EQ(InferenceEngine::bucket_rows(1, 8), 1);
  EXPECT_EQ(InferenceEngine::bucket_rows(2, 8), 2);
  EXPECT_EQ(InferenceEngine::bucket_rows(3, 8), 4);
  EXPECT_EQ(InferenceEngine::bucket_rows(5, 8), 8);
  EXPECT_EQ(InferenceEngine::bucket_rows(8, 8), 8);
  EXPECT_EQ(InferenceEngine::bucket_rows(3, 6), 4);
  EXPECT_EQ(InferenceEngine::bucket_rows(5, 6), 6);   // clamped, not 8
  EXPECT_EQ(InferenceEngine::bucket_rows(6, 6), 6);
}

TEST(ServeEngine, RepeatedInferIsBitExact) {
  const auto cfg = small_config();
  InferenceEngine engine(cfg, quiet_options());
  Request request = serve::make_request(cfg, cfg.seq_length, 7,
                                        /*with_labels=*/true);
  request.want_logits = true;

  const Response first = engine.infer(request);
  ASSERT_EQ(first.status, Status::kOk);
  ASSERT_FALSE(first.logits.empty());
  // Cached-program replays must be deterministic down to the bit.
  for (int i = 0; i < 4; ++i) {
    const Response again = engine.infer(request);
    ASSERT_EQ(again.status, Status::kOk);
    EXPECT_EQ(again.predictions, first.predictions);
    EXPECT_EQ(again.logits, first.logits);  // float-exact
    EXPECT_EQ(again.loss, first.loss);
  }
  // All five identical requests hit ONE cached forward program.
  EXPECT_EQ(engine.executor().cached_programs(false), 1U);
  EXPECT_EQ(engine.stats().batches, 5U);
}

TEST(ServeEngine, PaddedBatchMatchesSequentialReference) {
  const auto cfg = small_config();
  EngineOptions options = quiet_options(/*max_batch=*/4);
  options.max_delay_us = 50000;  // long enough for 3 submits to coalesce
  InferenceEngine engine(cfg, options);

  // Reference network with the engine's exact weights.
  rnn::NetworkConfig ref_cfg = cfg;
  ref_cfg.batch_size = 1;
  rnn::Network ref_net(ref_cfg);
  {
    std::stringstream weights;
    engine.network().save(weights);
    ref_net.load(weights);
  }
  exec::SequentialExecutor ref(ref_net);

  std::vector<Request> requests;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Request r = serve::make_request(cfg, cfg.seq_length, seed, true);
    r.want_logits = true;
    requests.push_back(std::move(r));
  }
  std::vector<std::future<Response>> futures;
  futures.reserve(requests.size());
  for (const Request& r : requests) futures.push_back(engine.submit(r));

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Response response = futures[i].get();
    ASSERT_EQ(response.status, Status::kOk);
    // 3 real rows padded up to the 4-row bucket.
    EXPECT_EQ(response.real_rows, 3);
    EXPECT_EQ(response.batch_rows, 4);

    const auto expect =
        ref.infer(unit_batch(ref_cfg, requests[i]), {.want_logits = true});
    EXPECT_EQ(response.predictions, expect.predictions);
    EXPECT_NEAR(response.loss, expect.loss, 1e-5);
    ASSERT_EQ(response.logits.size(), expect.logits.size());
    for (std::size_t k = 0; k < expect.logits.size(); ++k) {
      EXPECT_NEAR(response.logits[k], expect.logits[k], 1e-4F) << "logit " << k;
    }
  }
  EXPECT_EQ(engine.stats().batches, 1U);
  EXPECT_EQ(engine.stats().padded_rows, 1U);
}

TEST(ServeBatcher, FlushesWhenFull) {
  const auto cfg = small_config();
  EngineOptions options = quiet_options(/*max_batch=*/4);
  options.max_delay_us = 10'000'000;  // would wait ten seconds if size
                                      // didn't trigger the flush
  InferenceEngine engine(cfg, options);

  std::vector<std::future<Response>> futures;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    futures.push_back(
        engine.submit(serve::make_request(cfg, cfg.seq_length, seed, true)));
  }
  for (auto& f : futures) {
    const Response response = f.get();
    EXPECT_EQ(response.status, Status::kOk);
    EXPECT_EQ(response.real_rows, 4);
  }
  EXPECT_EQ(engine.stats().batches, 1U);
  EXPECT_EQ(engine.stats().padded_rows, 0U);
}

TEST(ServeBatcher, FlushesOnDeadlineWhenUnderfull) {
  const auto cfg = small_config();
  EngineOptions options = quiet_options(/*max_batch=*/8);
  options.max_delay_us = 2000;
  InferenceEngine engine(cfg, options);

  auto f0 = engine.submit(serve::make_request(cfg, cfg.seq_length, 0, true));
  auto f1 = engine.submit(serve::make_request(cfg, cfg.seq_length, 1, true));
  const Response r0 = f0.get();
  const Response r1 = f1.get();
  EXPECT_EQ(r0.status, Status::kOk);
  EXPECT_EQ(r1.status, Status::kOk);
  // Both served without 6 more requests ever arriving.
  EXPECT_LE(r0.real_rows, 2);
  EXPECT_GE(engine.stats().batches, 1U);
  EXPECT_EQ(engine.stats().completed, 2U);
}

TEST(ServeBatcher, FifoOrderAcrossBatches) {
  const auto cfg = small_config();
  EngineOptions options = quiet_options(/*max_batch=*/2);
  InferenceEngine engine(cfg, options);

  std::vector<std::future<Response>> futures;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    futures.push_back(
        engine.submit(serve::make_request(cfg, cfg.seq_length, seed, true)));
  }
  // FIFO: by the time the LAST submission is answered, every earlier
  // same-shape request must already have its response.
  EXPECT_EQ(futures.back().get().status, Status::kOk);
  for (std::size_t i = 0; i + 1 < futures.size(); ++i) {
    EXPECT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "request " << i << " overtaken by a later one";
    EXPECT_EQ(futures[i].get().status, Status::kOk);
  }
}

TEST(ServeEngine, MixedLengthsOnlyCoalesceSameShape) {
  const auto cfg = small_config(/*seq=*/6);
  EngineOptions options = quiet_options(/*max_batch=*/4);
  options.max_delay_us = 20000;
  InferenceEngine engine(cfg, options);

  auto fa = engine.submit(serve::make_request(cfg, 6, 1, true));
  auto fb = engine.submit(serve::make_request(cfg, 9, 2, true));
  auto fc = engine.submit(serve::make_request(cfg, 6, 3, true));
  const Response ra = fa.get();
  const Response rb = fb.get();
  const Response rc = fc.get();
  ASSERT_EQ(ra.status, Status::kOk);
  ASSERT_EQ(rb.status, Status::kOk);
  ASSERT_EQ(rc.status, Status::kOk);
  // The length-9 request never rides in a length-6 batch.
  EXPECT_EQ(rb.real_rows, 1);
  EXPECT_EQ(rb.predictions.size(), 1U);
  // Two shape groups → at least two micro-batches, and exactly one cached
  // forward program per (length, row-bucket) pair actually served.
  EXPECT_GE(engine.stats().batches, 2U);
  EXPECT_EQ(engine.executor().cached_programs(false), 2U);
}

TEST(ServeEngine, RejectsWhenQueueFull) {
  const auto cfg = small_config();
  EngineOptions options = quiet_options(/*max_batch=*/64);
  options.max_delay_us = 10'000'000;  // dispatcher sits on the open batch
  options.max_queue = 4;
  InferenceEngine engine(cfg, options);

  std::vector<std::future<Response>> futures;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    futures.push_back(
        engine.submit(serve::make_request(cfg, cfg.seq_length, seed, true)));
  }
  // The 5th submission bounced off the bounded queue immediately.
  EXPECT_EQ(futures.back().get().status, Status::kRejected);
  engine.shutdown();  // drains the four queued requests
  int ok = 0;
  for (std::size_t i = 0; i + 1 < futures.size(); ++i) {
    ok += futures[i].get().status == Status::kOk ? 1 : 0;
  }
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(engine.stats().rejected, 1U);
  EXPECT_EQ(engine.stats().completed, 4U);
}

TEST(ServeEngine, ExpiredRequestsSkipExecution) {
  const auto cfg = small_config();
  EngineOptions options = quiet_options(/*max_batch=*/4);
  options.max_delay_us = 20000;
  InferenceEngine engine(cfg, options);

  Request late = serve::make_request(cfg, cfg.seq_length, 1, true);
  late.deadline = std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1);  // already expired
  auto f_late = engine.submit(std::move(late));
  std::vector<std::future<Response>> rest;
  for (std::uint64_t seed = 2; seed <= 4; ++seed) {
    rest.push_back(
        engine.submit(serve::make_request(cfg, cfg.seq_length, seed, true)));
  }
  EXPECT_EQ(f_late.get().status, Status::kDeadlineExceeded);
  for (auto& f : rest) EXPECT_EQ(f.get().status, Status::kOk);
  EXPECT_EQ(engine.stats().expired, 1U);
  EXPECT_EQ(engine.stats().completed, 3U);
}

TEST(ServeEngine, ValidatesRequests) {
  const auto cfg = small_config();
  InferenceEngine engine(cfg, quiet_options());

  Request bad_features = serve::make_request(cfg, cfg.seq_length, 1, true);
  bad_features.features.pop_back();
  const Response r1 = engine.infer(std::move(bad_features));
  EXPECT_EQ(r1.status, Status::kFailed);
  EXPECT_FALSE(r1.error.empty());

  Request bad_label = serve::make_request(cfg, cfg.seq_length, 1, true);
  bad_label.labels[0] = cfg.num_classes;
  EXPECT_EQ(engine.infer(std::move(bad_label)).status, Status::kFailed);

  EXPECT_EQ(engine.stats().failed, 2U);
  EXPECT_EQ(engine.stats().completed, 0U);
}

TEST(ServeEngine, ShutdownAnswersNewSubmitsWithShutdown) {
  const auto cfg = small_config();
  InferenceEngine engine(cfg, quiet_options());
  (void)engine.infer(serve::make_request(cfg, cfg.seq_length, 1, true));
  engine.shutdown();
  const Response after =
      engine.infer(serve::make_request(cfg, cfg.seq_length, 2, true));
  EXPECT_EQ(after.status, Status::kShutdown);
}

// ≥8 concurrent clients hammering the bounded queue; every submitted
// request must get exactly one response (promise semantics make duplicates
// impossible — a double set_value would throw — so conservation of counts
// is the whole story). This test is the serving TSan target.
TEST(ServeConcurrency, ManyClientsNoLostResponses) {
  const auto cfg = small_config();
  EngineOptions options = quiet_options(/*max_batch=*/4);
  options.max_delay_us = 200;
  options.max_queue = 16;  // small enough that backpressure can trigger
  InferenceEngine engine(cfg, options);

  LoadgenOptions load;
  load.clients = 8;
  load.requests_per_client = 25;
  load.seq_lengths = {cfg.seq_length, cfg.seq_length + 2};
  const auto result = serve::run_load(engine, load);
  engine.shutdown();

  const auto stats = engine.stats();
  const std::uint64_t total =
      static_cast<std::uint64_t>(load.clients) *
      static_cast<std::uint64_t>(load.requests_per_client);
  EXPECT_EQ(stats.submitted, total);
  EXPECT_EQ(result.ok + result.rejected + result.shed + result.expired +
                result.failed,
            total);
  EXPECT_EQ(stats.completed + stats.rejected + stats.shed + stats.expired +
                stats.failed + stats.internal_errors,
            total);
  EXPECT_EQ(result.ok, stats.completed);
  EXPECT_EQ(result.failed, 0U);
  EXPECT_GT(result.ok, 0U);
  EXPECT_EQ(engine.queue_depth(), 0U);
}

// ---- resilience layer (DESIGN.md §5h) ----

using serve::Priority;

// Satellite regression: an already-expired deadline must be answered at
// submit() — immediately, and WITHOUT occupying a bounded-queue slot.
TEST(ServeAdmission, ExpiredDeadlineAnsweredAtSubmitWithoutSlot) {
  const auto cfg = small_config();
  EngineOptions options = quiet_options(/*max_batch=*/4);
  options.max_delay_us = 50000;  // dispatcher sits on the open batch
  options.max_queue = 1;         // a single slot, taken by the live request
  InferenceEngine engine(cfg, options);

  Request expired = serve::make_request(cfg, cfg.seq_length, 2, true);
  expired.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  auto f = engine.submit(std::move(expired));
  // Answered synchronously — the dispatcher never sees it.
  ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f.get().status, Status::kDeadlineExceeded);
  // The single queue slot is still free: a live request submitted right
  // after is admitted instead of bouncing off a dead occupant.
  auto live = engine.submit(serve::make_request(cfg, cfg.seq_length, 1, true));
  engine.shutdown();  // seals the open batch
  EXPECT_EQ(live.get().status, Status::kOk);
  EXPECT_EQ(engine.stats().expired, 1U);
  EXPECT_EQ(engine.stats().rejected, 0U);
}

TEST(ServeAdmission, ClassQuotaRejectsWithoutFillingSharedQueue) {
  const auto cfg = small_config();
  EngineOptions options = quiet_options(/*max_batch=*/8);
  options.max_delay_us = 10'000'000;  // queued requests stay queued
  options.max_queue = 8;
  options.class_quota[static_cast<int>(Priority::kBatch)] = 1;
  InferenceEngine engine(cfg, options);

  Request b1 = serve::make_request(cfg, cfg.seq_length, 1, true);
  b1.priority = Priority::kBatch;
  Request b2 = serve::make_request(cfg, cfg.seq_length, 2, true);
  b2.priority = Priority::kBatch;
  auto f1 = engine.submit(std::move(b1));
  auto f2 = engine.submit(std::move(b2));
  // Second kBatch submission bounced off the class quota...
  ASSERT_EQ(f2.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f2.get().status, Status::kRejected);
  // ...while the shared queue still admits other classes.
  auto f3 = engine.submit(serve::make_request(cfg, cfg.seq_length, 3, true));
  engine.shutdown();  // drains the open batch
  EXPECT_EQ(f1.get().status, Status::kOk);
  EXPECT_EQ(f3.get().status, Status::kOk);
  EXPECT_EQ(engine.stats().rejected, 1U);
}

// Delay-inject every task so one in-flight batch reliably blocks the
// dispatcher long enough for later submissions to pile up in the queues.
EngineOptions slow_options(int max_batch) {
  EngineOptions options = quiet_options(max_batch);
  options.executor.faults =
      taskrt::FaultSpec::parse("seed=1,delay=1,delay_us=500");
  options.max_delay_us = 500;
  options.shed_wait_us = 10'000'000;  // tests that want shedding dial it in
  return options;
}

TEST(ServePriority, HighClassServedBeforeBatchClass) {
  const auto cfg = small_config();
  EngineOptions options = slow_options(/*max_batch=*/1);  // no coalescing
  InferenceEngine engine(cfg, options);

  // Blocker seals alone; kBatch then kHigh queue up behind it.
  auto blocker =
      engine.submit(serve::make_request(cfg, cfg.seq_length, 1, true));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  Request low = serve::make_request(cfg, cfg.seq_length, 2, true);
  low.priority = Priority::kBatch;
  Request high = serve::make_request(cfg, cfg.seq_length, 3, true);
  high.priority = Priority::kHigh;
  auto f_low = engine.submit(std::move(low));
  auto f_high = engine.submit(std::move(high));

  EXPECT_EQ(f_low.get().status, Status::kOk);
  // Strict priority: by the time the kBatch request is answered, the
  // LATER-submitted kHigh one must already have its response.
  ASSERT_EQ(f_high.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(f_high.get().status, Status::kOk);
  EXPECT_EQ(blocker.get().status, Status::kOk);
}

TEST(ServeShedding, OverdueLowClassesShedHighNever) {
  const auto cfg = small_config();
  EngineOptions options = slow_options(/*max_batch=*/2);
  options.shed_wait_us = 1000;  // 1ms — the blocker takes far longer
  InferenceEngine engine(cfg, options);

  auto blocker =
      engine.submit(serve::make_request(cfg, cfg.seq_length, 1, true));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  std::vector<std::future<Response>> lows;
  for (std::uint64_t seed = 2; seed <= 6; ++seed) {
    Request r = serve::make_request(cfg, cfg.seq_length, seed, true);
    r.priority = Priority::kBatch;
    lows.push_back(engine.submit(std::move(r)));
  }
  Request high = serve::make_request(cfg, cfg.seq_length, 7, true);
  high.priority = Priority::kHigh;
  auto f_high = engine.submit(std::move(high));

  // Backlog at the shed check: 6 > max_batch. Sheds kBatch (oldest first)
  // until the backlog fits one micro-batch again — 4 shed, and never kHigh.
  EXPECT_EQ(f_high.get().status, Status::kOk);
  int shed = 0;
  int ok = 0;
  for (auto& f : lows) {
    const Status s = f.get().status;
    shed += s == Status::kShed ? 1 : 0;
    ok += s == Status::kOk ? 1 : 0;
  }
  EXPECT_EQ(blocker.get().status, Status::kOk);
  EXPECT_EQ(shed, 4);
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(engine.stats().shed, 4U);
}

// A request whose features are NaN poisons its whole micro-batch (the
// batch-mean loss goes NaN → the finite() guard fails). Retries cannot
// clear it, so bisection must isolate it: the poisoned request alone is
// answered kInternalError, and every batchmate succeeds bit-exactly (rows
// are computed independently, so results do not depend on batch shape).
TEST(ServeRecovery, BisectionIsolatesPoisonedRequestBitExactly) {
  const auto cfg = small_config();
  EngineOptions options = quiet_options(/*max_batch=*/4);
  options.max_delay_us = 50000;  // let all four coalesce
  options.max_batch_retries = 1;
  options.breaker_threshold = 0;  // breaker tested separately
  InferenceEngine engine(cfg, options);

  std::vector<Request> good;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Request r = serve::make_request(cfg, cfg.seq_length, seed, true);
    r.want_logits = true;
    good.push_back(std::move(r));
  }
  Request poison = serve::make_request(cfg, cfg.seq_length, 9, true);
  poison.features[3] = std::numeric_limits<float>::quiet_NaN();

  std::vector<std::future<Response>> futures;
  for (const Request& r : good) futures.push_back(engine.submit(r));
  auto f_poison = engine.submit(std::move(poison));

  const Response bad = f_poison.get();
  EXPECT_EQ(bad.status, Status::kInternalError);
  EXPECT_FALSE(bad.error.empty());
  std::vector<Response> served;
  for (auto& f : futures) {
    served.push_back(f.get());
    ASSERT_EQ(served.back().status, Status::kOk);
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.internal_errors, 1U);
  // 4-row group fails, splits [2|2]; the poisoned pair splits again [1|1].
  EXPECT_EQ(stats.bisections, 2U);
  EXPECT_EQ(stats.retries, 3U);  // 1 retry per failing group
  EXPECT_EQ(engine.degrade_level(), 0);

  // Bit-parity: the survivors' results match a solo re-run exactly.
  for (std::size_t i = 0; i < good.size(); ++i) {
    const Response solo = engine.infer(good[i]);
    ASSERT_EQ(solo.status, Status::kOk);
    EXPECT_EQ(served[i].predictions, solo.predictions);
    EXPECT_EQ(served[i].logits, solo.logits);  // float-exact
    EXPECT_EQ(served[i].loss, solo.loss);
  }
}

TEST(ServeBreaker, DegradesAfterFailuresAndProbesBackUp) {
  const auto cfg = small_config();
  EngineOptions options = quiet_options(/*max_batch=*/4);
  options.max_batch_retries = 0;
  options.breaker_threshold = 2;
  options.breaker_recovery = 1;
  InferenceEngine engine(cfg, options);

  const auto poisoned_request = [&](std::uint64_t seed) {
    Request r = serve::make_request(cfg, cfg.seq_length, seed, true);
    r.features[0] = std::numeric_limits<float>::quiet_NaN();
    return r;
  };
  // Two consecutive failed singleton batches trip the breaker one rung
  // down the ladder (this fp32 engine's ladder always ends in batch-1, so
  // it has at least two rungs on every architecture).
  EXPECT_EQ(engine.infer(poisoned_request(1)).status, Status::kInternalError);
  EXPECT_EQ(engine.infer(poisoned_request(2)).status, Status::kInternalError);
  EXPECT_EQ(engine.degrade_level(), 1);
  EXPECT_EQ(engine.health(), serve::Health::kDegraded);
  EXPECT_EQ(engine.stats().degraded_steps, 1U);

  // One clean batch at the degraded level completes the half-open probe
  // and restores full service.
  EXPECT_EQ(engine.infer(serve::make_request(cfg, cfg.seq_length, 3, true))
                .status,
            Status::kOk);
  EXPECT_EQ(engine.degrade_level(), 0);
  EXPECT_EQ(engine.health(), serve::Health::kHealthy);
  EXPECT_EQ(engine.stats().recovered_steps, 1U);
}

// Engine watchdog: a pinned injected stall (fires every session) blocks the
// batch indefinitely with the RUNTIME watchdog off — the engine watchdog
// must detect the stuck dispatcher, release the stall, and let the request
// complete normally instead of hanging.
TEST(ServeWatchdog, ReleasesInjectedStallAndCompletes) {
  const auto cfg = small_config();
  EngineOptions options = quiet_options(/*max_batch=*/2);
  options.executor.faults = taskrt::FaultSpec::parse("stall_tasks=5");
  options.watchdog_ms = 100;
  InferenceEngine engine(cfg, options);

  const Response r =
      engine.infer(serve::make_request(cfg, cfg.seq_length, 1, true));
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_GE(engine.stats().watchdog_fires, 1U);
  EXPECT_EQ(engine.stats().internal_errors, 0U);
}

// Queue-depth gauges: while requests of each class sit in the queue
// (underfull batch, long flush deadline) the per-class gauges and the
// stats() per-class depths must agree with what was enqueued.
TEST(ServeObservability, PerClassQueueDepthGaugesPublished) {
  const auto cfg = small_config();
  EngineOptions options = quiet_options(/*max_batch=*/8);
  options.max_delay_us = 500'000;  // hold underfull batches half a second
  InferenceEngine engine(cfg, options);

  std::vector<std::future<Response>> futures;
  const auto submit_with = [&](serve::Priority priority, int n) {
    for (int i = 0; i < n; ++i) {
      Request r = serve::make_request(cfg, cfg.seq_length,
                                      static_cast<std::uint64_t>(i + 1),
                                      /*with_labels=*/false);
      r.priority = priority;
      futures.push_back(engine.submit(std::move(r)));
    }
  };
  submit_with(serve::Priority::kHigh, 1);
  submit_with(serve::Priority::kNormal, 2);
  submit_with(serve::Priority::kBatch, 3);

  // All six are queued (6 < max_batch) until the flush deadline; the
  // dispatcher may seal them at any time after that, so read immediately.
  const auto stats = engine.stats();
  const auto snap = obs::Registry::instance().snapshot(false);
  if (stats.queue_depth == 6) {  // not yet sealed: depths must match
    EXPECT_EQ(stats.queue_depths[0], 1U);
    EXPECT_EQ(stats.queue_depths[1], 2U);
    EXPECT_EQ(stats.queue_depths[2], 3U);
    EXPECT_EQ(snap.gauges.at("serve.queue_depth"), 6.0);
    EXPECT_EQ(snap.gauges.at("serve.queue_depth.high"), 1.0);
    EXPECT_EQ(snap.gauges.at("serve.queue_depth.normal"), 2.0);
    EXPECT_EQ(snap.gauges.at("serve.queue_depth.batch"), 3.0);
  }
  for (auto& f : futures) EXPECT_EQ(f.get().status, Status::kOk);
  engine.shutdown();
  // Everything drained: the gauges must have been republished to zero.
  const auto drained = obs::Registry::instance().snapshot(false);
  EXPECT_EQ(drained.gauges.at("serve.queue_depth"), 0.0);
  EXPECT_EQ(drained.gauges.at("serve.queue_depth.high"), 0.0);
  EXPECT_EQ(drained.gauges.at("serve.queue_depth.normal"), 0.0);
  EXPECT_EQ(drained.gauges.at("serve.queue_depth.batch"), 0.0);
}

// Request-scoped tracing through the ugliest path the engine has: a
// poisoned batch that retries, bisects twice, and answers one request
// kInternalError. Ids must be unique, every id must respond exactly once,
// and each id's event timestamps must be monotone.
TEST(ServeObservability, RequestIdsUniqueAndTracedThroughRetryBisect) {
  const auto cfg = small_config();
  EngineOptions options = quiet_options(/*max_batch=*/4);
  options.max_delay_us = 50'000;  // let all four coalesce
  options.max_batch_retries = 1;
  options.breaker_threshold = 0;
  InferenceEngine engine(cfg, options);

  std::vector<std::future<Response>> futures;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    futures.push_back(
        engine.submit(serve::make_request(cfg, cfg.seq_length, seed, true)));
  }
  Request poison = serve::make_request(cfg, cfg.seq_length, 9, true);
  poison.features[3] = std::numeric_limits<float>::quiet_NaN();
  futures.push_back(engine.submit(std::move(poison)));
  for (auto& f : futures) (void)f.get();

  std::map<std::uint64_t, std::vector<serve::RequestEvent>> by_id;
  for (const serve::RequestEvent& ev : engine.request_events()) {
    by_id[ev.id].push_back(ev);
  }
  EXPECT_EQ(engine.request_events_dropped(), 0U);
  ASSERT_EQ(by_id.size(), 4U);  // one unique id per submitted request

  int internal_errors = 0;
  int ok = 0;
  for (const auto& [id, events] : by_id) {
    int submitted = 0;
    int responded = 0;
    int retries = 0;
    int bisects = 0;
    std::int32_t final_status = -1;
    std::uint64_t prev_ts = 0;
    for (const serve::RequestEvent& ev : events) {
      EXPECT_GE(ev.ts_ns, prev_ts) << "id " << id << " went backwards";
      prev_ts = ev.ts_ns;
      switch (ev.stage) {
        case serve::RequestStage::kSubmitted: ++submitted; break;
        case serve::RequestStage::kResponded:
          ++responded;
          final_status = ev.arg;
          break;
        case serve::RequestStage::kRetry: ++retries; break;
        case serve::RequestStage::kBisect: ++bisects; break;
        default: break;
      }
    }
    EXPECT_EQ(submitted, 1) << "id " << id;
    EXPECT_EQ(responded, 1) << "id " << id;
    // Every member of the poisoned 4-row batch saw the retry and at least
    // the first bisection before the fault was isolated.
    EXPECT_GE(retries, 1) << "id " << id;
    EXPECT_GE(bisects, 1) << "id " << id;
    if (final_status == static_cast<std::int32_t>(Status::kInternalError)) {
      ++internal_errors;
    } else if (final_status == static_cast<std::int32_t>(Status::kOk)) {
      ++ok;
    }
  }
  EXPECT_EQ(internal_errors, 1);
  EXPECT_EQ(ok, 3);
}

// End-to-end stats endpoint on a live engine: /healthz, /statz (parse +
// schema spot-checks), and /metrics exposition.
TEST(ServeObservability, StatzJsonParsesWithSchema) {
  const auto cfg = small_config();
  EngineOptions options = quiet_options();
  options.stats_port = 0;  // ephemeral listener (also enables the sampler)
  InferenceEngine engine(cfg, options);
  const int port = engine.stats_port();
  ASSERT_GT(port, 0);

  ASSERT_EQ(engine.infer(serve::make_request(cfg, cfg.seq_length, 1, true))
                .status,
            Status::kOk);

  const auto health = obs::http_get(
      "127.0.0.1", static_cast<std::uint16_t>(port), "/healthz");
  ASSERT_TRUE(health.ok) << health.error;
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  const auto statz = obs::http_get(
      "127.0.0.1", static_cast<std::uint16_t>(port), "/statz");
  ASSERT_TRUE(statz.ok) << statz.error;
  ASSERT_EQ(statz.status, 200);
  const obs::JsonValue doc = obs::json_parse(statz.body);
  EXPECT_EQ(doc.at("type").str, "statz");
  EXPECT_EQ(doc.at("schema_version").number, 1.0);
  EXPECT_GE(doc.at("uptime_s").number, 0.0);
  EXPECT_EQ(doc.at("engine").at("completed").number, 1.0);
  EXPECT_EQ(doc.at("engine").at("queue_depth").at("total").number, 0.0);
  ASSERT_NE(doc.find("slo"), nullptr);
  EXPECT_GE(doc.at("slo").at("availability").number, 0.0);
  EXPECT_GT(doc.at("slo").at("latency_target_us").number, 0.0);
  ASSERT_NE(doc.find("sampler"), nullptr);
  EXPECT_GE(doc.at("sampler").at("ticks").number, 1.0);
  ASSERT_NE(doc.find("metrics"), nullptr);
  EXPECT_NE(doc.at("metrics").find("counters"), nullptr);

  const auto metrics = obs::http_get(
      "127.0.0.1", static_cast<std::uint16_t>(port), "/metrics");
  ASSERT_TRUE(metrics.ok) << metrics.error;
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("# TYPE bpar_serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("bpar_serve_request_us_bucket"),
            std::string::npos);

  engine.shutdown();
  // The listener dies with the engine.
  const auto after = obs::http_get(
      "127.0.0.1", static_cast<std::uint16_t>(port), "/healthz");
  EXPECT_FALSE(after.ok && after.status == 200);
}

}  // namespace
}  // namespace bpar
