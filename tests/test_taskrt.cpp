// Task runtime tests: OpenMP/OmpSs dependency semantics (RAW, WAR, WAW),
// graph introspection, threaded execution correctness under both scheduler
// policies, stress tests, and exception propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "taskrt/runtime.hpp"
#include "taskrt/task_graph.hpp"
#include "util/rng.hpp"

namespace bpar::taskrt {
namespace {

TEST(TaskGraph, RawDependency) {
  TaskGraph g;
  int x = 0;
  const TaskId writer = g.add([] {}, {out(&x)});
  const TaskId reader = g.add([] {}, {in(&x)});
  EXPECT_EQ(g.task(reader).num_deps, 1U);
  ASSERT_EQ(g.task(writer).successors.size(), 1U);
  EXPECT_EQ(g.task(writer).successors[0], reader);
}

TEST(TaskGraph, MultipleReadersShareOneWriter) {
  TaskGraph g;
  int x = 0;
  const TaskId writer = g.add([] {}, {out(&x)});
  for (int i = 0; i < 5; ++i) g.add([] {}, {in(&x)});
  EXPECT_EQ(g.task(writer).successors.size(), 5U);
  EXPECT_EQ(g.edge_count(), 5U);
}

TEST(TaskGraph, WarDependency) {
  // A writer after readers must wait for all of them.
  TaskGraph g;
  int x = 0;
  g.add([] {}, {out(&x)});
  const TaskId r1 = g.add([] {}, {in(&x)});
  const TaskId r2 = g.add([] {}, {in(&x)});
  const TaskId w2 = g.add([] {}, {out(&x)});
  EXPECT_EQ(g.task(w2).num_deps, 3U);  // writer + both readers (WAW + WAR)
  EXPECT_TRUE(g.reaches(r1, w2));
  EXPECT_TRUE(g.reaches(r2, w2));
}

TEST(TaskGraph, WawDependency) {
  TaskGraph g;
  int x = 0;
  const TaskId w1 = g.add([] {}, {out(&x)});
  const TaskId w2 = g.add([] {}, {out(&x)});
  EXPECT_TRUE(g.reaches(w1, w2));
}

TEST(TaskGraph, InoutChainsSerialize) {
  TaskGraph g;
  int x = 0;
  TaskId prev = g.add([] {}, {inout(&x)});
  for (int i = 0; i < 4; ++i) {
    const TaskId next = g.add([] {}, {inout(&x)});
    EXPECT_TRUE(g.reaches(prev, next));
    prev = next;
  }
  // A chain of 5 inout tasks has critical path 5.
  EXPECT_EQ(g.critical_path_length(), 5U);
}

TEST(TaskGraph, ReaderAfterInoutDependsOnlyOnLastWriter) {
  TaskGraph g;
  int x = 0;
  g.add([] {}, {inout(&x)});
  g.add([] {}, {inout(&x)});
  const TaskId reader = g.add([] {}, {in(&x)});
  EXPECT_EQ(g.task(reader).num_deps, 1U);  // transitively covers both
}

TEST(TaskGraph, IndependentAddressesCreateNoEdges) {
  TaskGraph g;
  int x = 0;
  int y = 0;
  g.add([] {}, {out(&x)});
  g.add([] {}, {out(&y)});
  EXPECT_EQ(g.edge_count(), 0U);
  EXPECT_EQ(g.roots().size(), 2U);
  EXPECT_EQ(g.critical_path_length(), 1U);
}

TEST(TaskGraph, DuplicatePredecessorsDeduplicated) {
  TaskGraph g;
  int x = 0;
  int y = 0;
  const TaskId producer = g.add([] {}, {out(&x), out(&y)});
  const TaskId consumer = g.add([] {}, {in(&x), in(&y)});
  EXPECT_EQ(g.task(consumer).num_deps, 1U);
  EXPECT_EQ(g.task(producer).successors.size(), 1U);
}

TEST(TaskGraph, AffinityPredIsFirstInputProducer) {
  TaskGraph g;
  int x = 0;
  int y = 0;
  const TaskId px = g.add([] {}, {out(&x)});
  g.add([] {}, {out(&y)});
  const TaskId c = g.add([] {}, {in(&x), in(&y)});
  EXPECT_EQ(g.task(c).affinity_pred, px);
}

TEST(TaskGraph, CriticalPathWithCosts) {
  TaskGraph g;
  int x = 0;
  int y = 0;
  g.add([] {}, {out(&x)});            // id 0
  g.add([] {}, {out(&y)});            // id 1
  g.add([] {}, {in(&x), in(&y)});     // id 2
  const std::vector<std::uint64_t> costs = {10, 100, 5};
  EXPECT_EQ(g.critical_path_cost(costs), 105U);
}

class RuntimePolicies
    : public ::testing::TestWithParam<std::tuple<SchedulerPolicy, int>> {};

TEST_P(RuntimePolicies, ChainExecutesInOrder) {
  const auto [policy, workers] = GetParam();
  Runtime rt({.num_workers = workers, .policy = policy});
  TaskGraph g;
  std::vector<int> order;
  int x = 0;
  for (int i = 0; i < 20; ++i) {
    g.add([&order, i] { order.push_back(i); }, {inout(&x)});
  }
  const RunStats stats = rt.run(g);
  EXPECT_EQ(stats.tasks_executed, 20U);
  std::vector<int> expected(20);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // chain is fully serialized → no race
}

TEST_P(RuntimePolicies, DiamondRespectsDependencies) {
  const auto [policy, workers] = GetParam();
  Runtime rt({.num_workers = workers, .policy = policy});
  TaskGraph g;
  int a = 0;
  int b = 0;
  int c = 0;
  std::atomic<int> top_done{0};
  std::atomic<bool> violated{false};
  g.add([&] { top_done.fetch_add(1); }, {out(&a)});
  g.add(
      [&] {
        if (top_done.load() < 1) violated = true;
      },
      {in(&a), out(&b)});
  g.add(
      [&] {
        if (top_done.load() < 1) violated = true;
      },
      {in(&a), out(&c)});
  std::atomic<bool> join_ok{false};
  g.add([&] { join_ok = !violated.load(); }, {in(&b), in(&c)});
  rt.run(g);
  EXPECT_TRUE(join_ok.load());
}

TEST_P(RuntimePolicies, StressManySmallTasks) {
  const auto [policy, workers] = GetParam();
  Runtime rt({.num_workers = workers, .policy = policy});
  TaskGraph g;
  // 40 independent accumulation chains of 25 tasks each.
  constexpr int kChains = 40;
  constexpr int kLinks = 25;
  std::vector<std::int64_t> sums(kChains, 0);
  for (int chain = 0; chain < kChains; ++chain) {
    for (int link = 0; link < kLinks; ++link) {
      g.add([&sums, chain, link] { sums[static_cast<std::size_t>(chain)] += link; },
            {inout(&sums[static_cast<std::size_t>(chain)])});
    }
  }
  const RunStats stats = rt.run(g);
  EXPECT_EQ(stats.tasks_executed, static_cast<std::size_t>(kChains * kLinks));
  for (const auto sum : sums) EXPECT_EQ(sum, kLinks * (kLinks - 1) / 2);
}

TEST_P(RuntimePolicies, RunIsRepeatable) {
  const auto [policy, workers] = GetParam();
  Runtime rt({.num_workers = workers, .policy = policy});
  TaskGraph g;
  int counter = 0;
  for (int i = 0; i < 10; ++i) {
    g.add([&counter] { ++counter; }, {inout(&counter)});
  }
  rt.run(g);
  rt.run(g);
  EXPECT_EQ(counter, 20);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, RuntimePolicies,
    ::testing::Combine(::testing::Values(SchedulerPolicy::kFifo,
                                         SchedulerPolicy::kLocalityAware),
                       ::testing::Values(1, 2, 4, 8)),
    [](const auto& info) {
      return std::string(scheduler_policy_name(std::get<0>(info.param))) +
             "_w" + std::to_string(std::get<1>(info.param));
    });

TEST(Runtime, ExceptionPropagates) {
  Runtime rt({.num_workers = 2});
  TaskGraph g;
  int x = 0;
  g.add([] { throw std::runtime_error("task failed"); }, {out(&x)});
  g.add([] {}, {in(&x)});
  EXPECT_THROW(rt.run(g), std::runtime_error);
}

TEST(Runtime, EmptyGraphIsNoop) {
  Runtime rt({.num_workers = 2});
  TaskGraph g;
  const RunStats stats = rt.run(g);
  EXPECT_EQ(stats.tasks_executed, 0U);
}

TEST(Runtime, ParallelForCoversRangeExactlyOnce) {
  Runtime rt({.num_workers = 4});
  std::vector<std::atomic<int>> hits(103);
  rt.parallel_for(0, 103, 7, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Runtime, ParallelForEmptyRange) {
  Runtime rt({.num_workers = 2});
  bool called = false;
  rt.parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Runtime, StatsTrackDurationsAndConcurrency) {
  Runtime rt({.num_workers = 4});
  TaskGraph g;
  std::vector<int> slots(8);
  for (auto& s : slots) {
    g.add(
        [] {
          volatile double x = 0;
          for (int i = 0; i < 50000; ++i) x += i;
        },
        {out(&s)});
  }
  const RunStats stats = rt.run(g);
  EXPECT_EQ(stats.task_duration_ns.size(), 8U);
  for (const auto d : stats.task_duration_ns) EXPECT_GT(d, 0U);
  EXPECT_GE(stats.max_concurrency, 1);
  EXPECT_GT(stats.wall_ns, 0U);
  EXPECT_GT(stats.total_busy_ns(), 0U);
}

TEST(Runtime, TraceRecordsWorkerAndTimes) {
  Runtime rt({.num_workers = 2, .record_trace = true});
  TaskGraph g;
  int x = 0;
  g.add([] {}, {out(&x)});
  g.add([] {}, {in(&x)});
  const RunStats stats = rt.run(g);
  ASSERT_EQ(stats.trace.size(), 2U);
  EXPECT_GE(stats.trace[0].worker, 0);
  EXPECT_LE(stats.trace[0].end_ns, stats.trace[1].end_ns);
  EXPECT_GE(stats.trace[1].start_ns, stats.trace[0].end_ns);
}

TEST(Runtime, LocalityPolicyReportsAffinityStats) {
  Runtime rt({.num_workers = 2, .policy = SchedulerPolicy::kLocalityAware});
  TaskGraph g;
  int x = 0;
  g.add([] {}, {out(&x)});
  for (int i = 0; i < 10; ++i) g.add([] {}, {inout(&x)});
  const RunStats stats = rt.run(g);
  EXPECT_EQ(stats.tasks_with_affinity, 10U);
  // A pure chain scheduled locality-aware should mostly stay on one worker.
  EXPECT_GE(stats.locality_hits, 5U);
}

TEST(TaskGraph, SealKeepsGraphExecutable) {
  Runtime rt({.num_workers = 2});
  TaskGraph g;
  int counter = 0;
  for (int i = 0; i < 5; ++i) g.add([&] { ++counter; }, {inout(&counter)});
  g.seal();
  rt.run(g);
  EXPECT_EQ(counter, 5);
}

TEST(TaskKindNames, AllDistinct) {
  EXPECT_STREQ(task_kind_name(TaskKind::kCellForward), "cell_fwd");
  EXPECT_STREQ(task_kind_name(TaskKind::kMerge), "merge");
  EXPECT_STREQ(task_kind_name(TaskKind::kBarrier), "barrier");
}

// ---- scheduler stress & regression tests -----------------------------------

class RuntimeStress : public ::testing::TestWithParam<int> {};

// Wide diamond DAG: fan-out of kWidth independent tiny tasks between two
// serialization points, stacked kLayers deep — >10k tasks total. Exercises
// the steal path, the parking lot, and the dependency counters under the
// worst task granularity. Each task bumps its own slot so any double or
// missed execution is caught exactly.
TEST_P(RuntimeStress, WideDiamondExecutesEveryTaskOnce) {
  const int workers = GetParam();
  Runtime rt({.num_workers = workers, .policy = SchedulerPolicy::kLocalityAware});
  constexpr int kLayers = 26;
  constexpr int kWidth = 400;
  constexpr int kTotal = kLayers * (kWidth + 1);  // 10426 tasks
  TaskGraph g;
  int gate = 0;
  std::vector<int> slots(kLayers * kWidth);
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(kTotal));
  std::size_t id = 0;
  for (int layer = 0; layer < kLayers; ++layer) {
    for (int i = 0; i < kWidth; ++i) {
      int* slot = &slots[static_cast<std::size_t>(layer * kWidth + i)];
      g.add([&hits, id] { hits[id].fetch_add(1, std::memory_order_relaxed); },
            {in(&gate), out(slot)});
      ++id;
    }
    // Join + re-fork point: writes the gate all next-layer tasks read.
    g.add([&hits, id] { hits[id].fetch_add(1, std::memory_order_relaxed); },
          {inout(&gate)});
    ++id;
  }
  // Repeated runs reuse the same runtime (and its parked workers).
  for (int rep = 0; rep < 2; ++rep) {
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    const RunStats stats = rt.run(g);
    EXPECT_EQ(stats.tasks_executed, static_cast<std::size_t>(kTotal));
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, RuntimeStress,
                         ::testing::Values(2, 4, 8, 16),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(Runtime, StressExceptionPropagatesOutOfEnd) {
  Runtime rt({.num_workers = 4});
  for (int rep = 0; rep < 3; ++rep) {
    TaskGraph g;
    rt.begin(g);
    std::atomic<int> ran{0};
    for (int i = 0; i < 2000; ++i) {
      if (i == 997) {
        rt.submit([] { throw std::runtime_error("boom"); });
      } else {
        rt.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    }
    EXPECT_THROW(rt.end(), std::runtime_error);
    EXPECT_EQ(ran.load(), 1999);  // independent tasks still all ran
  }
}

// Satellite regression: a thief stealing from a victim's deque must take the
// cold (oldest) end, so the victim's freshly-pushed chain successor — the
// cache-hot task — stays local. Two workers, one 120-link inout chain plus
// independent filler the second worker can chew on: the chain should stay on
// its producer's worker almost every hop even with an active thief around.
TEST(Runtime, LocalityHitsSurviveActiveThief) {
  Runtime rt({.num_workers = 2, .policy = SchedulerPolicy::kLocalityAware});
  TaskGraph g;
  int x = 0;
  g.add([] {}, {out(&x)});
  constexpr std::size_t kChain = 120;
  for (std::size_t i = 0; i < kChain; ++i) {
    g.add(
        [] {
          volatile int spin = 0;
          for (int j = 0; j < 400; ++j) spin = spin + j;
        },
        {inout(&x)});
  }
  std::vector<int> filler(256);
  for (auto& f : filler) {
    g.add(
        [] {
          volatile int spin = 0;
          for (int j = 0; j < 400; ++j) spin = spin + j;
        },
        {out(&f)});
  }
  const RunStats stats = rt.run(g);
  EXPECT_EQ(stats.tasks_with_affinity, kChain);
  // Steal-from-top plus the owner's min-keep reservation should keep nearly
  // the whole chain local; the old steal-from-front code collapses this.
  EXPECT_GE(stats.locality_hits, kChain * 9 / 10);
}

TEST(Runtime, IndependentSubmitCreatesNoEdgesOrAliases) {
  Runtime rt({.num_workers = 4});
  TaskGraph g;
  rt.begin(g);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    rt.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  // One real dependency pair sharing the session: must still link, and the
  // independent tasks must not have polluted the address table around it.
  int x = 0;
  rt.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); },
            {out(&x)});
  rt.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); },
            {in(&x)});
  rt.end();
  EXPECT_EQ(ran.load(), 66);
  EXPECT_EQ(g.edge_count(), 1U);
  for (TaskId id = 0; id < 64U; ++id) {
    EXPECT_EQ(g.task(id).num_deps, 0U);
    EXPECT_TRUE(g.task(id).successors.empty());
  }
}

TEST(Runtime, PinnedThreadsExecuteNormally) {
  // Pinning is best-effort: on any host this must not change semantics.
  Runtime rt({.num_workers = 4,
              .policy = SchedulerPolicy::kLocalityAware,
              .pin_threads = true});
  TaskGraph g;
  std::atomic<int> count{0};
  std::vector<int> slots(100);
  for (auto& s : slots) {
    g.add([&count] { count.fetch_add(1, std::memory_order_relaxed); },
          {out(&s)});
  }
  const RunStats stats = rt.run(g);
  EXPECT_EQ(stats.tasks_executed, 100U);
  EXPECT_EQ(count.load(), 100);
}

}  // namespace
}  // namespace bpar::taskrt
