// Synthetic dataset tests: determinism, shapes, label validity, and basic
// statistical sanity (class separability / n-gram plausibility).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "data/tidigits.hpp"
#include "data/wikipedia.hpp"
#include "util/error.hpp"

namespace bpar::data {
namespace {

TEST(Tidigits, DeterministicForSeed) {
  TidigitsConfig cfg;
  cfg.num_utterances = 8;
  cfg.seq_length = 20;
  cfg.feature_dim = 6;
  TidigitsCorpus a(cfg);
  TidigitsCorpus b(cfg);
  for (int u = 0; u < cfg.num_utterances; ++u) {
    EXPECT_EQ(a.label(u), b.label(u));
    EXPECT_TRUE(tensor::allclose(a.frames(u), b.frames(u), 0.0F, 0.0F));
  }
  cfg.seed = 777;
  TidigitsCorpus c(cfg);
  EXPECT_FALSE(tensor::allclose(a.frames(0), c.frames(0), 1e-6F, 0.0F));
}

TEST(Tidigits, LabelsInRangeAndAllClassesPresent) {
  TidigitsConfig cfg;
  cfg.num_utterances = 300;
  cfg.seq_length = 10;
  cfg.feature_dim = 4;
  TidigitsCorpus corpus(cfg);
  std::set<int> seen;
  for (int u = 0; u < corpus.size(); ++u) {
    const int label = corpus.label(u);
    ASSERT_GE(label, 0);
    ASSERT_LT(label, kTidigitsClasses);
    seen.insert(label);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kTidigitsClasses));
}

TEST(Tidigits, BatchShapesAndContent) {
  TidigitsConfig cfg;
  cfg.num_utterances = 50;
  cfg.seq_length = 12;
  cfg.feature_dim = 5;
  TidigitsCorpus corpus(cfg);
  const auto batches = corpus.make_batches(16);
  EXPECT_EQ(batches.size(), 3U);  // 50/16, tail dropped
  for (const auto& batch : batches) {
    EXPECT_EQ(batch.steps(), 12);
    EXPECT_EQ(batch.batch(), 16);
    EXPECT_EQ(batch.input_size(), 5);
    EXPECT_FALSE(batch.many_to_many());
  }
  // First batch row 0 equals utterance 0.
  EXPECT_EQ(batches[0].x[3].at(0, 2), corpus.frames(0).at(3, 2));
  EXPECT_EQ(batches[0].labels[0], corpus.label(0));
}

TEST(Tidigits, ClassesAreSeparableByTemplateCorrelation) {
  // Mean frames of utterances of the same digit should correlate more
  // than across digits — a weak but meaningful separability check.
  TidigitsConfig cfg;
  cfg.num_utterances = 200;
  cfg.seq_length = 30;
  cfg.feature_dim = 8;
  cfg.noise = 0.05;
  cfg.speaker_var = 0.05;
  TidigitsCorpus corpus(cfg);

  // Average per class over time and utterances.
  std::vector<std::vector<double>> mean(
      kTidigitsClasses, std::vector<double>(30U * 8U, 0.0));
  std::vector<int> counts(kTidigitsClasses, 0);
  for (int u = 0; u < corpus.size(); ++u) {
    const int label = corpus.label(u);
    ++counts[static_cast<std::size_t>(label)];
    const auto f = corpus.frames(u);
    for (int t = 0; t < 30; ++t) {
      for (int d = 0; d < 8; ++d) {
        mean[static_cast<std::size_t>(label)]
            [static_cast<std::size_t>(t * 8 + d)] += f.at(t, d);
      }
    }
  }
  auto cosine = [](const std::vector<double>& a, const std::vector<double>& b) {
    double dot = 0.0;
    double na = 0.0;
    double nb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      dot += a[i] * b[i];
      na += a[i] * a[i];
      nb += b[i] * b[i];
    }
    return dot / std::max(std::sqrt(na * nb), 1e-12);
  };
  // Distinct class templates should not be strongly aligned.
  int strongly_aligned = 0;
  for (int i = 0; i < kTidigitsClasses; ++i) {
    for (int j = i + 1; j < kTidigitsClasses; ++j) {
      if (counts[static_cast<std::size_t>(i)] == 0 ||
          counts[static_cast<std::size_t>(j)] == 0) {
        continue;
      }
      if (std::abs(cosine(mean[static_cast<std::size_t>(i)],
                          mean[static_cast<std::size_t>(j)])) > 0.8) {
        ++strongly_aligned;
      }
    }
  }
  EXPECT_LE(strongly_aligned, 5);
}

TEST(Tidigits, ClassNames) {
  EXPECT_STREQ(tidigits_class_name(0), "oh");
  EXPECT_STREQ(tidigits_class_name(1), "zero");
  EXPECT_STREQ(tidigits_class_name(10), "nine");
}

TEST(Wikipedia, CorpusLengthAndDeterminism) {
  WikipediaConfig cfg;
  cfg.corpus_chars = 5000;
  WikipediaCorpus a(cfg);
  WikipediaCorpus b(cfg);
  EXPECT_EQ(a.text().size(), 5000U);
  EXPECT_EQ(a.text(), b.text());
  cfg.seed = 9;
  WikipediaCorpus c(cfg);
  EXPECT_NE(a.text(), c.text());
}

TEST(Wikipedia, VocabularyIsConsistent) {
  WikipediaConfig cfg;
  cfg.corpus_chars = 4000;
  WikipediaCorpus corpus(cfg);
  EXPECT_GT(corpus.vocab_size(), 10);
  EXPECT_LE(corpus.vocab_size(), 40);  // lowercase text + punctuation
  for (int id = 0; id < corpus.vocab_size(); ++id) {
    EXPECT_EQ(corpus.char_id(corpus.id_char(id)), id);
  }
}

TEST(Wikipedia, GeneratedTextLooksLanguageLike) {
  WikipediaConfig cfg;
  cfg.corpus_chars = 20000;
  WikipediaCorpus corpus(cfg);
  // Spaces should appear with a natural frequency (10-25%).
  const auto spaces = static_cast<double>(
      std::count(corpus.text().begin(), corpus.text().end(), ' '));
  const double frac = spaces / static_cast<double>(corpus.text().size());
  EXPECT_GT(frac, 0.10);
  EXPECT_LT(frac, 0.30);
  // Every sampled trigram must have been possible under order-2 statistics
  // of English-like text: check there are no weird repeats of one char.
  EXPECT_EQ(corpus.text().find("zzzz"), std::string::npos);
}

TEST(Wikipedia, BatchesAreManyToManyWithNextCharLabels) {
  WikipediaConfig cfg;
  cfg.corpus_chars = 30000;
  cfg.seq_length = 6;
  cfg.input_size = 10;
  WikipediaCorpus corpus(cfg);
  const auto batches = corpus.make_batches(4, 3);
  ASSERT_EQ(batches.size(), 3U);
  const auto& batch = batches[0];
  EXPECT_EQ(batch.steps(), 6);
  EXPECT_EQ(batch.batch(), 4);
  EXPECT_TRUE(batch.many_to_many());
  // Labels are the next character: x[t+1]'s char id equals labels[t].
  // Verify via embeddings: the embedding of labels[t*B+b] must equal
  // x[t+1] row b.
  for (int t = 0; t + 1 < batch.steps(); ++t) {
    for (int b = 0; b < batch.batch(); ++b) {
      const int label = batch.labels[static_cast<std::size_t>(t) * 4 + b];
      const auto emb = corpus.embedding(label);
      const auto row = batch.x[static_cast<std::size_t>(t) + 1].cview().row(b);
      for (std::size_t i = 0; i < emb.size(); ++i) {
        ASSERT_EQ(row[i], emb[i]) << "t=" << t << " b=" << b;
      }
    }
  }
}

TEST(Wikipedia, EmbeddingsDistinctPerCharacter) {
  WikipediaConfig cfg;
  cfg.corpus_chars = 3000;
  WikipediaCorpus corpus(cfg);
  const auto a = corpus.embedding(0);
  const auto b = corpus.embedding(1);
  bool differ = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) differ = true;
  }
  EXPECT_TRUE(differ);
}


TEST(Tidigits, VariableLengthsAndBuckets) {
  TidigitsConfig cfg;
  cfg.num_utterances = 120;
  cfg.seq_length = 14;
  cfg.min_seq_length = 10;
  cfg.feature_dim = 4;
  TidigitsCorpus corpus(cfg);
  std::set<int> lengths;
  for (int u = 0; u < corpus.size(); ++u) {
    const int len = corpus.length(u);
    ASSERT_GE(len, 10);
    ASSERT_LE(len, 14);
    lengths.insert(len);
  }
  EXPECT_GT(lengths.size(), 1U);  // actually variable

  const auto batches = corpus.make_bucketed_batches(8);
  ASSERT_FALSE(batches.empty());
  std::set<int> batch_lengths;
  for (const auto& batch : batches) {
    EXPECT_EQ(batch.batch(), 8);
    batch_lengths.insert(batch.steps());
    // Every row matches an utterance of exactly that length.
    EXPECT_GE(batch.steps(), 10);
    EXPECT_LE(batch.steps(), 14);
  }
  EXPECT_GT(batch_lengths.size(), 1U);
}

TEST(Tidigits, FixedLengthCorpusRejectsBucketlessMisuse) {
  TidigitsConfig cfg;
  cfg.num_utterances = 20;
  cfg.seq_length = 8;
  cfg.min_seq_length = 5;
  cfg.feature_dim = 3;
  TidigitsCorpus corpus(cfg);
  EXPECT_DEATH((void)corpus.make_batches(4), "make_bucketed_batches");
}

// ---- on-disk loader error paths ------------------------------------------

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Writes a .utt file; features are the deterministic ramp 0.01 * index.
void write_utt(const std::string& path, std::int32_t label,
               std::int32_t frames, std::int32_t dim,
               const std::string& magic = "BPARUTT1",
               std::size_t truncate_to = std::string::npos) {
  std::string blob = magic;
  const auto put_i32 = [&blob](std::int32_t v) {
    blob.append(reinterpret_cast<const char*>(&v), sizeof v);
  };
  put_i32(label);
  put_i32(frames);
  put_i32(dim);
  for (std::int32_t i = 0; i < frames * dim; ++i) {
    const float f = 0.01F * static_cast<float>(i);
    blob.append(reinterpret_cast<const char*>(&f), sizeof f);
  }
  if (truncate_to < blob.size()) blob.resize(truncate_to);
  std::ofstream os(path, std::ios::binary);
  os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
}

std::string data_error_message(const TidigitsConfig& cfg) {
  try {
    TidigitsCorpus corpus(cfg);
  } catch (const util::DataError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected util::DataError";
  return {};
}

TEST(TidigitsLoader, MissingDirectoryNamesPathAndLayout) {
  TidigitsConfig cfg;
  cfg.feature_dim = 4;
  cfg.seq_length = 8;
  cfg.data_dir = ::testing::TempDir() + "/no-such-dir";
  const std::string what = data_error_message(cfg);
  EXPECT_NE(what.find(cfg.data_dir), std::string::npos) << what;
  EXPECT_NE(what.find(".utt"), std::string::npos) << what;
}

TEST(TidigitsLoader, DirectoryWithoutUtterancesRaises) {
  TidigitsConfig cfg;
  cfg.feature_dim = 4;
  cfg.seq_length = 8;
  cfg.data_dir = fresh_dir("utt-empty");
  const std::string what = data_error_message(cfg);
  EXPECT_NE(what.find("no .utt files"), std::string::npos) << what;
}

TEST(TidigitsLoader, BadMagicNamesFile) {
  TidigitsConfig cfg;
  cfg.feature_dim = 4;
  cfg.seq_length = 8;
  cfg.data_dir = fresh_dir("utt-magic");
  write_utt(cfg.data_dir + "/a.utt", 1, 8, 4, "WRONGMG!");
  const std::string what = data_error_message(cfg);
  EXPECT_NE(what.find("a.utt"), std::string::npos) << what;
  EXPECT_NE(what.find("not a TIDIGITS utterance"), std::string::npos) << what;
}

TEST(TidigitsLoader, FeatureDimMismatchNamesBothDims) {
  TidigitsConfig cfg;
  cfg.feature_dim = 7;
  cfg.seq_length = 8;
  cfg.data_dir = fresh_dir("utt-dim");
  write_utt(cfg.data_dir + "/a.utt", 1, 8, 5);
  const std::string what = data_error_message(cfg);
  EXPECT_NE(what.find("feature_dim is 5"), std::string::npos) << what;
  EXPECT_NE(what.find("7 in the config"), std::string::npos) << what;
}

TEST(TidigitsLoader, TruncatedFileReportsByteCounts) {
  TidigitsConfig cfg;
  cfg.feature_dim = 4;
  cfg.seq_length = 8;
  cfg.data_dir = fresh_dir("utt-trunc");
  // Header promises 8x4 floats; cut the payload in half.
  write_utt(cfg.data_dir + "/a.utt", 1, 8, 4, "BPARUTT1",
            8 + 12 + 8 * 4 * sizeof(float) / 2);
  const std::string what = data_error_message(cfg);
  EXPECT_NE(what.find("truncated"), std::string::npos) << what;
  EXPECT_NE(what.find("a.utt"), std::string::npos) << what;
}

TEST(TidigitsLoader, LoadsWellFormedUtterances) {
  TidigitsConfig cfg;
  cfg.feature_dim = 4;
  cfg.seq_length = 6;  // shorter than the files: trims to the window
  cfg.data_dir = fresh_dir("utt-good");
  write_utt(cfg.data_dir + "/a.utt", 3, 10, 4);
  write_utt(cfg.data_dir + "/b.utt", 9, 10, 4);
  TidigitsCorpus corpus(cfg);
  ASSERT_EQ(corpus.size(), 2);
  EXPECT_EQ(corpus.label(0), 3);
  EXPECT_EQ(corpus.label(1), 9);
  const auto f = corpus.frames(0);
  ASSERT_EQ(f.rows, 6);
  ASSERT_EQ(f.cols, 4);
  // Row-major ramp from write_utt: element (r, c) == 0.01 * (r*dim + c).
  EXPECT_FLOAT_EQ(f.row(2)[3], 0.01F * (2 * 4 + 3));
}

TEST(TidigitsLoader, FallbackKnobDegradesToSynthetic) {
  TidigitsConfig cfg;
  cfg.feature_dim = 4;
  cfg.seq_length = 8;
  cfg.num_utterances = 12;
  cfg.data_dir = ::testing::TempDir() + "/no-such-dir";
  cfg.fallback_to_synthetic = true;
  TidigitsCorpus loaded(cfg);
  TidigitsConfig pure = cfg;
  pure.data_dir.clear();
  TidigitsCorpus synthetic(pure);
  ASSERT_EQ(loaded.size(), synthetic.size());
  EXPECT_TRUE(
      tensor::allclose(loaded.frames(0), synthetic.frames(0), 0.0F, 0.0F));
}

TEST(WikipediaLoader, MissingCorpusFileNamesPath) {
  WikipediaConfig cfg;
  cfg.input_size = 8;
  cfg.seq_length = 8;
  cfg.corpus_chars = 1000;
  cfg.corpus_path = ::testing::TempDir() + "/no-such-corpus.txt";
  try {
    WikipediaCorpus corpus(cfg);
    FAIL() << "expected util::DataError";
  } catch (const util::DataError& e) {
    EXPECT_NE(std::string(e.what()).find(cfg.corpus_path),
              std::string::npos);
  }
}

TEST(WikipediaLoader, TinyCorpusFileRaises) {
  WikipediaConfig cfg;
  cfg.input_size = 8;
  cfg.seq_length = 8;
  cfg.corpus_chars = 1000;
  const std::string dir = fresh_dir("wiki-tiny");
  cfg.corpus_path = dir + "/corpus.txt";
  std::ofstream(cfg.corpus_path) << "too small";
  EXPECT_THROW(WikipediaCorpus corpus(cfg), util::DataError);
}

TEST(WikipediaLoader, LargeCorpusFileIsUsedVerbatim) {
  WikipediaConfig cfg;
  cfg.input_size = 8;
  cfg.seq_length = 8;
  cfg.corpus_chars = 64;
  const std::string dir = fresh_dir("wiki-verbatim");
  cfg.corpus_path = dir + "/corpus.txt";
  std::string body;
  while (body.size() < 200) body += "the quick brown fox jumps over it ";
  std::ofstream(cfg.corpus_path) << body;
  WikipediaCorpus corpus(cfg);
  EXPECT_EQ(corpus.text(), body.substr(0, 64));
}

TEST(WikipediaLoader, FallbackKnobMatchesPureSynthetic) {
  WikipediaConfig cfg;
  cfg.input_size = 8;
  cfg.seq_length = 8;
  cfg.corpus_chars = 2000;
  cfg.corpus_path = ::testing::TempDir() + "/no-such-corpus.txt";
  cfg.fallback_to_synthetic = true;
  WikipediaCorpus loaded(cfg);
  WikipediaConfig pure = cfg;
  pure.corpus_path.clear();
  WikipediaCorpus synthetic(pure);
  EXPECT_EQ(loaded.text(), synthetic.text());
}

}  // namespace
}  // namespace bpar::data
