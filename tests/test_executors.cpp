// Executor equivalence suite — the heart of the correctness story.
//
// The paper claims B-Par's barrier-free task scheduling causes no accuracy
// loss versus sequential execution. We verify it directly: for a sweep of
// model shapes, every executor (B-Par with various worker counts, replica
// counts, and scheduler policies; B-Seq; the per-layer-barrier baseline)
// must produce the same loss and the same gradients as the single-threaded
// reference.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <type_traits>

#include "core/bpar.hpp"
#include "exec/barrier_executor.hpp"
#include "exec/bpar_executor.hpp"
#include "exec/bseq_executor.hpp"
#include "exec/sequential.hpp"
#include "util/rng.hpp"

namespace bpar {
namespace {

using exec::BarrierExecutor;
using exec::BParExecutor;
using exec::BSeqExecutor;
using exec::SequentialExecutor;
using rnn::BatchData;
using rnn::CellType;
using rnn::MergeOp;
using rnn::NetworkConfig;

BatchData make_batch(const NetworkConfig& cfg, std::uint64_t seed) {
  util::Rng rng(seed);
  BatchData batch;
  batch.x.resize(static_cast<std::size_t>(cfg.seq_length));
  for (auto& m : batch.x) {
    m.resize(cfg.batch_size, cfg.input_size);
    tensor::fill_uniform(m.view(), rng, -1.0F, 1.0F);
  }
  const int label_count = cfg.many_to_many
                              ? cfg.seq_length * cfg.batch_size
                              : cfg.batch_size;
  batch.labels.resize(static_cast<std::size_t>(label_count));
  for (auto& l : batch.labels) {
    l = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(cfg.num_classes)));
  }
  return batch;
}

void expect_grads_close(rnn::NetworkGrads& a, rnn::NetworkGrads& b,
                        const NetworkConfig& cfg, float tol) {
  for (int dir = 0; dir < 2; ++dir) {
    for (int l = 0; l < cfg.num_layers; ++l) {
      const auto& ga = a.layers[dir][static_cast<std::size_t>(l)];
      const auto& gb = b.layers[dir][static_cast<std::size_t>(l)];
      EXPECT_TRUE(tensor::allclose(ga.dw.cview(), gb.dw.cview(), tol, tol))
          << "dW mismatch dir " << dir << " layer " << l << ": "
          << tensor::max_abs_diff(ga.dw.cview(), gb.dw.cview());
      EXPECT_TRUE(tensor::allclose(ga.db.cview(), gb.db.cview(), tol, tol))
          << "db mismatch dir " << dir << " layer " << l;
    }
  }
  EXPECT_TRUE(tensor::allclose(a.dw_out.cview(), b.dw_out.cview(), tol, tol))
      << "dw_out mismatch: "
      << tensor::max_abs_diff(a.dw_out.cview(), b.dw_out.cview());
  EXPECT_TRUE(tensor::allclose(a.db_out.cview(), b.db_out.cview(), tol, tol));
}

struct EquivCase {
  std::string tag;
  NetworkConfig cfg;
};

EquivCase make_case(CellType cell, MergeOp merge, bool m2m, int layers,
                    int seq, int batch) {
  NetworkConfig cfg;
  cfg.cell = cell;
  cfg.merge = merge;
  cfg.input_size = 5;
  cfg.hidden_size = 7;
  cfg.num_layers = layers;
  cfg.seq_length = seq;
  cfg.batch_size = batch;
  cfg.num_classes = 6;
  cfg.many_to_many = m2m;
  cfg.seed = 321;
  std::string tag = std::string(cell_name(cell)) + "_" + merge_name(merge) +
                    (m2m ? "_m2m" : "_m2o") + "_L" + std::to_string(layers) +
                    "_T" + std::to_string(seq) + "_B" + std::to_string(batch);
  return {tag, cfg};
}

class ExecutorEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(ExecutorEquivalence, AllExecutorsMatchSequential) {
  const NetworkConfig& cfg = GetParam().cfg;
  const BatchData batch = make_batch(cfg, 777);

  rnn::Network ref_net(cfg);
  SequentialExecutor ref(ref_net);
  const double ref_loss = ref.train_batch(batch).loss;
  EXPECT_GT(ref_loss, 0.0);

  struct Candidate {
    std::string name;
    std::unique_ptr<exec::Executor> executor;
    std::unique_ptr<rnn::Network> net;
  };
  std::vector<Candidate> candidates;
  auto add = [&](std::string name, auto make) {
    Candidate c;
    c.name = std::move(name);
    c.net = std::make_unique<rnn::Network>(cfg);  // same seed → same weights
    c.executor = make(*c.net);
    candidates.push_back(std::move(c));
  };

  add("bpar_w1", [](rnn::Network& n) {
    return std::make_unique<BParExecutor>(
        n, exec::BParOptions{.common = {.num_workers = 1}});
  });
  add("bpar_w4_fifo", [](rnn::Network& n) {
    return std::make_unique<BParExecutor>(
        n, exec::BParOptions{
               .common = {.num_workers = 4,
                          .policy = taskrt::SchedulerPolicy::kFifo}});
  });
  add("bpar_w4_locality", [](rnn::Network& n) {
    return std::make_unique<BParExecutor>(
        n, exec::BParOptions{
               .common = {.num_workers = 4,
                          .policy = taskrt::SchedulerPolicy::kLocalityAware}});
  });
  if (cfg.batch_size >= 4) {
    add("bpar_w4_mbs4", [](rnn::Network& n) {
      return std::make_unique<BParExecutor>(
          n, exec::BParOptions{.common = {.num_workers = 4,
                                          .num_replicas = 4}});
    });
    add("bseq_r4", [](rnn::Network& n) {
      return std::make_unique<BSeqExecutor>(
          n, exec::BSeqOptions{.common = {.num_workers = 4,
                                          .num_replicas = 4}});
    });
  }
  add("bpar_fused_merge", [](rnn::Network& n) {
    return std::make_unique<BParExecutor>(
        n, exec::BParOptions{.common = {.num_workers = 4},
                             .fuse_merge = true});
  });
  add("bpar_w4_pinned", [](rnn::Network& n) {
    return std::make_unique<BParExecutor>(
        n, exec::BParOptions{
               .common = {.num_workers = 4,
                          .policy = taskrt::SchedulerPolicy::kLocalityAware,
                          .pin_threads = true}});
  });
  add("barrier_w4", [](rnn::Network& n) {
    return std::make_unique<BarrierExecutor>(
        n, exec::BarrierOptions{.common = {.num_workers = 4},
                                .row_grain = 3});
  });

  for (auto& c : candidates) {
    const auto result = c.executor->train_batch(batch);
    EXPECT_NEAR(result.loss, ref_loss, 1e-4 * std::abs(ref_loss) + 1e-6)
        << c.name;
    expect_grads_close(c.executor->grads(), ref.grads(), cfg, 2e-4F);
  }
}

TEST_P(ExecutorEquivalence, InferencePredictionsMatch) {
  const NetworkConfig& cfg = GetParam().cfg;
  const BatchData batch = make_batch(cfg, 888);
  const int outputs = cfg.many_to_many ? cfg.seq_length : 1;
  const std::size_t pred_count =
      static_cast<std::size_t>(outputs) * cfg.batch_size;

  rnn::Network ref_net(cfg);
  SequentialExecutor ref(ref_net);
  const exec::InferResult ref_result = ref.infer(batch);
  ASSERT_EQ(ref_result.predictions.size(), pred_count);

  rnn::Network net2(cfg);
  BParExecutor bpar(
      net2, {.common = {.num_workers = 4,
                        .num_replicas = cfg.batch_size >= 2 ? 2 : 1}});
  const exec::InferResult result = bpar.infer(batch);
  EXPECT_NEAR(result.loss, ref_result.loss,
              1e-4 * std::abs(ref_result.loss) + 1e-6);
  EXPECT_EQ(result.predictions, ref_result.predictions);
}

TEST_P(ExecutorEquivalence, InferLogitsMatchSequential) {
  const NetworkConfig& cfg = GetParam().cfg;
  const BatchData batch = make_batch(cfg, 888);

  rnn::Network ref_net(cfg);
  SequentialExecutor ref(ref_net);
  const exec::InferResult ref_result =
      ref.infer(batch, {.want_logits = true});
  ASSERT_FALSE(ref_result.logits.empty());
  ASSERT_EQ(ref_result.logits.size(),
            ref_result.predictions.size() *
                static_cast<std::size_t>(cfg.num_classes));

  rnn::Network net2(cfg);
  BParExecutor bpar(
      net2, {.common = {.num_workers = 4,
                        .num_replicas = cfg.batch_size >= 2 ? 2 : 1}});
  const exec::InferResult result = bpar.infer(batch, {.want_logits = true});
  ASSERT_EQ(result.logits.size(), ref_result.logits.size());
  for (std::size_t i = 0; i < result.logits.size(); ++i) {
    EXPECT_NEAR(result.logits[i], ref_result.logits[i], 1e-4F) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ExecutorEquivalence,
    ::testing::Values(
        make_case(CellType::kLstm, MergeOp::kConcat, false, 3, 4, 6),
        make_case(CellType::kGru, MergeOp::kConcat, false, 3, 4, 6),
        make_case(CellType::kLstm, MergeOp::kSum, false, 2, 5, 4),
        make_case(CellType::kGru, MergeOp::kAverage, false, 2, 3, 4),
        make_case(CellType::kLstm, MergeOp::kMul, false, 2, 3, 4),
        make_case(CellType::kLstm, MergeOp::kConcat, true, 3, 4, 6),
        make_case(CellType::kGru, MergeOp::kConcat, true, 2, 5, 4),
        make_case(CellType::kLstm, MergeOp::kSum, true, 2, 3, 5),
        make_case(CellType::kLstm, MergeOp::kConcat, false, 1, 1, 1),
        make_case(CellType::kGru, MergeOp::kConcat, true, 1, 2, 3),
        make_case(CellType::kLstm, MergeOp::kConcat, false, 6, 2, 8),
        make_case(CellType::kGru, MergeOp::kSum, false, 4, 6, 5),
        make_case(CellType::kLstm, MergeOp::kAverage, true, 3, 3, 4),
        make_case(CellType::kGru, MergeOp::kMul, false, 2, 4, 6),
        make_case(CellType::kLstm, MergeOp::kConcat, true, 1, 6, 2),
        make_case(CellType::kGru, MergeOp::kConcat, false, 5, 1, 7),
        make_case(CellType::kLstm, MergeOp::kSum, false, 2, 8, 3),
        make_case(CellType::kGru, MergeOp::kAverage, true, 4, 2, 5)),
    [](const auto& info) { return info.param.tag; });

TEST(ExecutorDeterminism, RepeatedBParRunsAreBitwiseIdentical) {
  const NetworkConfig cfg = make_case(CellType::kLstm, MergeOp::kConcat,
                                      false, 3, 4, 6)
                                .cfg;
  const BatchData batch = make_batch(cfg, 12);
  rnn::Network net(cfg);
  BParExecutor bpar(net, {.common = {.num_workers = 4, .num_replicas = 2}});
  const double loss1 = bpar.train_batch(batch).loss;
  const double norm1 = bpar.grads().l2_norm();
  for (int i = 0; i < 3; ++i) {
    const double loss2 = bpar.train_batch(batch).loss;
    const double norm2 = bpar.grads().l2_norm();
    EXPECT_EQ(loss1, loss2);
    EXPECT_EQ(norm1, norm2);
  }
}

TEST(ExecutorStats, BParReportsTaskCounts) {
  const NetworkConfig cfg = make_case(CellType::kLstm, MergeOp::kConcat,
                                      false, 2, 3, 4)
                                .cfg;
  const BatchData batch = make_batch(cfg, 5);
  rnn::Network net(cfg);
  BParExecutor bpar(net, {.common = {.num_workers = 2}});
  const auto result = bpar.train_batch(batch);
  EXPECT_EQ(result.stats.tasks_executed, bpar.train_program().graph().size());
  EXPECT_GT(result.stats.tasks_executed, 0U);
}

TEST(ModelFacade, TrainReducesLossOverSteps) {
  NetworkConfig cfg = make_case(CellType::kGru, MergeOp::kConcat, false, 2,
                                4, 8)
                          .cfg;
  Model model(cfg);
  model.select_executor(ExecutorKind::kBPar,
                        {.num_workers = 2, .num_replicas = 2});
  model.set_optimizer(
      std::make_unique<train::Sgd>(train::Sgd::Config{.learning_rate = 0.2F}));
  const BatchData batch = make_batch(cfg, 33);
  const double first = model.train_batch(batch).loss;
  double last = first;
  for (int i = 0; i < 20; ++i) last = model.train_batch(batch).loss;
  EXPECT_LT(last, first * 0.9);
}

TEST(ModelFacade, SaveLoadRoundTrip) {
  NetworkConfig cfg = make_case(CellType::kLstm, MergeOp::kConcat, false, 2,
                                3, 4)
                          .cfg;
  Model a(cfg);
  const BatchData batch = make_batch(cfg, 77);
  a.train_batch(batch);  // move weights off their init values
  const std::string path = ::testing::TempDir() + "/bpar_model.bin";
  a.save(path);

  cfg.seed = 999;  // different init
  Model b(cfg);
  const double before = b.infer(batch).loss;
  b.load(path);
  const double after = b.infer(batch).loss;
  const double original = a.infer(batch).loss;
  EXPECT_NE(before, after);
  EXPECT_EQ(after, original);
}

// Satellite check for the options unification: all four executor paths pull
// their shared knobs from the ONE exec::CommonOptions definition, so a
// default cannot silently diverge between them.
TEST(ExecutorOptionsUnification, DefaultsShareOneDefinition) {
  static_assert(std::is_same_v<ExecutorOptions, exec::CommonOptions>,
                "bpar::ExecutorOptions must be exec::CommonOptions");
  const exec::CommonOptions defaults{};
  EXPECT_EQ(exec::BParOptions{}.common, defaults);
  EXPECT_EQ(exec::BSeqOptions{}.common, defaults);
  EXPECT_EQ(exec::BarrierOptions{}.common, defaults);
  EXPECT_EQ(ExecutorOptions{}, defaults);
}

}  // namespace
}  // namespace bpar
