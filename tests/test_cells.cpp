// LSTM/GRU cell kernel tests: forward invariants, single-cell
// finite-difference gradients, and row-sliced equivalence (the basis of
// intra-op-parallel baselines).
#include <gtest/gtest.h>

#include <cmath>

#include "rnn/cell_kernels.hpp"
#include "rnn/layer_params.hpp"
#include "rnn/merge.hpp"
#include "rnn/types.hpp"
#include "util/rng.hpp"

namespace bpar::rnn {
namespace {

using tensor::Matrix;

struct CellFixtureParams {
  CellType cell;
  int batch;
  int input;
  int hidden;
};

class CellKinds : public ::testing::TestWithParam<CellFixtureParams> {
 protected:
  void SetUp() override {
    const auto p = GetParam();
    util::Rng rng(42);
    params_.init(p.cell, p.input, p.hidden, rng);
    x_.resize(p.batch, p.input);
    h_prev_.resize(p.batch, p.hidden);
    c_prev_.resize(p.batch, p.hidden);
    tensor::fill_uniform(x_.view(), rng, -1.0F, 1.0F);
    tensor::fill_uniform(h_prev_.view(), rng, -0.8F, 0.8F);
    tensor::fill_uniform(c_prev_.view(), rng, -0.8F, 0.8F);
    tape_.init(p.cell, p.batch, p.hidden);
  }

  LayerParams params_;
  Matrix x_, h_prev_, c_prev_;
  CellTape tape_;
};

TEST_P(CellKinds, ForwardOutputsBounded) {
  const auto p = GetParam();
  cell_forward(params_, x_.cview(), h_prev_.cview(), c_prev_.cview(), tape_);
  // h is a convex/gated combination of tanh-like values → |h| <= ~1 for
  // GRU; for LSTM h = o * tanh(c) so |h| <= 1.
  for (int r = 0; r < p.batch; ++r) {
    for (int j = 0; j < p.hidden; ++j) {
      EXPECT_LE(std::abs(tape_.h.at(r, j)), 1.0F + 1e-5F);
    }
  }
  EXPECT_TRUE(tensor::all_finite(tape_.h.cview()));
}

TEST_P(CellKinds, GateActivationsInRange) {
  const auto p = GetParam();
  cell_forward(params_, x_.cview(), h_prev_.cview(), c_prev_.cview(), tape_);
  const int sigmoid_gates = p.cell == CellType::kLstm ? 2 : 2;
  // First two gate blocks are sigmoid in both cell types.
  for (int r = 0; r < p.batch; ++r) {
    for (int j = 0; j < sigmoid_gates * p.hidden; ++j) {
      const float v = tape_.gates.at(r, j);
      EXPECT_GE(v, 0.0F);
      EXPECT_LE(v, 1.0F);
    }
  }
}

TEST_P(CellKinds, ZeroStateZeroInputGivesBiasDrivenOutput) {
  const auto p = GetParam();
  Matrix zx(p.batch, p.input);
  Matrix zh(p.batch, p.hidden);
  Matrix zc(p.batch, p.hidden);
  cell_forward(params_, zx.cview(), zh.cview(), zc.cview(), tape_);
  // All batch rows identical (no input variation).
  for (int r = 1; r < p.batch; ++r) {
    for (int j = 0; j < p.hidden; ++j) {
      EXPECT_EQ(tape_.h.at(r, j), tape_.h.at(0, j));
    }
  }
}

TEST_P(CellKinds, RowSlicedForwardEqualsFull) {
  const auto p = GetParam();
  cell_forward(params_, x_.cview(), h_prev_.cview(), c_prev_.cview(), tape_);
  CellTape sliced;
  sliced.init(p.cell, p.batch, p.hidden);
  for (int r0 = 0; r0 < p.batch; r0 += 3) {
    const int rows = std::min(3, p.batch - r0);
    tensor::ConstMatrixView cpv;
    if (p.cell == CellType::kLstm) {
      cpv = c_prev_.cview().block(r0, 0, rows, p.hidden);
    }
    cell_forward(params_, x_.cview().block(r0, 0, rows, p.input),
                 h_prev_.cview().block(r0, 0, rows, p.hidden), cpv,
                 sliced.views_rows(r0, rows));
  }
  EXPECT_EQ(tensor::max_abs_diff(tape_.h.cview(), sliced.h.cview()), 0.0F);
  EXPECT_EQ(tensor::max_abs_diff(tape_.gates.cview(), sliced.gates.cview()),
            0.0F);
}

TEST_P(CellKinds, BackwardMatchesFiniteDifferences) {
  const auto p = GetParam();
  const bool lstm = p.cell == CellType::kLstm;

  // Scalar objective: L = sum(h) (so dL/dh = 1). Finite differences on a
  // few weights / inputs must match the analytic gradients.
  auto loss_of = [&]() -> double {
    CellTape t;
    t.init(p.cell, p.batch, p.hidden);
    cell_forward(params_, x_.cview(), h_prev_.cview(), c_prev_.cview(), t);
    return tensor::sum(t.h.cview());
  };

  cell_forward(params_, x_.cview(), h_prev_.cview(), c_prev_.cview(), tape_);
  Matrix dh(p.batch, p.hidden);
  tensor::fill_constant(dh.view(), 1.0F);
  Matrix dx(p.batch, p.input);
  Matrix dh_prev(p.batch, p.hidden);
  Matrix dc_prev(p.batch, p.hidden);
  LayerGrads grads;
  grads.init_like(params_);
  cell_backward(params_, x_.cview(), h_prev_.cview(), c_prev_.cview(), tape_,
                dh.cview(), {}, dx.view(), dh_prev.view(),
                lstm ? dc_prev.view() : tensor::MatrixView{}, grads);

  util::Rng rng(7);
  const float eps = 1e-2F;
  auto check = [&](float& slot, float analytic, const char* what) {
    const float saved = slot;
    slot = saved + eps;
    const double plus = loss_of();
    slot = saved - eps;
    const double minus = loss_of();
    slot = saved;
    const double numeric = (plus - minus) / (2.0 * static_cast<double>(eps));
    const double denom = std::max(
        {std::abs(numeric), std::abs(static_cast<double>(analytic)), 1e-3});
    EXPECT_LT(std::abs(numeric - static_cast<double>(analytic)) / denom, 0.08)
        << what << ": analytic " << analytic << " numeric " << numeric;
  };

  for (int i = 0; i < 12; ++i) {
    const int r = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(params_.w.rows())));
    const int c = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(params_.w.cols())));
    check(params_.w.at(r, c), grads.dw.at(r, c), "weight");
  }
  for (int i = 0; i < 4; ++i) {
    const int c = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(params_.b.cols())));
    check(params_.b.at(0, c), grads.db.at(0, c), "bias");
  }
  for (int i = 0; i < 4; ++i) {
    const int r = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(p.batch)));
    const int c = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(p.input)));
    check(x_.at(r, c), dx.at(r, c), "input");
  }
  for (int i = 0; i < 4; ++i) {
    const int r = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(p.batch)));
    const int c = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(p.hidden)));
    check(h_prev_.at(r, c), dh_prev.at(r, c), "h_prev");
    if (lstm) check(c_prev_.at(r, c), dc_prev.at(r, c), "c_prev");
  }
}

TEST_P(CellKinds, NullDxSkipsInputGradient) {
  const auto p = GetParam();
  const bool lstm = p.cell == CellType::kLstm;
  cell_forward(params_, x_.cview(), h_prev_.cview(), c_prev_.cview(), tape_);
  Matrix dh(p.batch, p.hidden);
  tensor::fill_constant(dh.view(), 1.0F);
  Matrix dh_prev(p.batch, p.hidden);
  Matrix dc_prev(p.batch, p.hidden);
  LayerGrads grads;
  grads.init_like(params_);
  // Must not crash; grads must still be produced.
  cell_backward(params_, x_.cview(), h_prev_.cview(), c_prev_.cview(), tape_,
                dh.cview(), {}, {}, dh_prev.view(),
                lstm ? dc_prev.view() : tensor::MatrixView{}, grads);
  EXPECT_GT(tensor::l2_norm(grads.dw.cview()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Cells, CellKinds,
    ::testing::Values(CellFixtureParams{CellType::kLstm, 4, 6, 8},
                      CellFixtureParams{CellType::kGru, 4, 6, 8},
                      CellFixtureParams{CellType::kLstm, 1, 3, 5},
                      CellFixtureParams{CellType::kGru, 1, 3, 5},
                      CellFixtureParams{CellType::kLstm, 7, 10, 12},
                      CellFixtureParams{CellType::kGru, 7, 10, 12}),
    [](const auto& info) {
      return std::string(cell_name(info.param.cell)) + "_b" +
             std::to_string(info.param.batch) + "_i" +
             std::to_string(info.param.input) + "_h" +
             std::to_string(info.param.hidden);
    });

class MergeOps : public ::testing::TestWithParam<MergeOp> {};

TEST_P(MergeOps, ForwardShapeAndValues) {
  const MergeOp op = GetParam();
  util::Rng rng(9);
  Matrix hf(3, 4);
  Matrix hr(3, 4);
  tensor::fill_uniform(hf.view(), rng, -1.0F, 1.0F);
  tensor::fill_uniform(hr.view(), rng, -1.0F, 1.0F);
  Matrix y(3, merge_output_size(op, 4));
  merge_forward(op, hf.cview(), hr.cview(), y.view());
  switch (op) {
    case MergeOp::kConcat:
      EXPECT_EQ(y.at(1, 0), hf.at(1, 0));
      EXPECT_EQ(y.at(1, 4), hr.at(1, 0));
      break;
    case MergeOp::kSum:
      EXPECT_NEAR(y.at(1, 2), hf.at(1, 2) + hr.at(1, 2), 1e-6F);
      break;
    case MergeOp::kAverage:
      EXPECT_NEAR(y.at(1, 2), 0.5F * (hf.at(1, 2) + hr.at(1, 2)), 1e-6F);
      break;
    case MergeOp::kMul:
      EXPECT_NEAR(y.at(1, 2), hf.at(1, 2) * hr.at(1, 2), 1e-6F);
      break;
  }
}

TEST_P(MergeOps, BackwardMatchesFiniteDifferences) {
  const MergeOp op = GetParam();
  util::Rng rng(10);
  Matrix hf(2, 3);
  Matrix hr(2, 3);
  tensor::fill_uniform(hf.view(), rng, -1.0F, 1.0F);
  tensor::fill_uniform(hr.view(), rng, -1.0F, 1.0F);
  const int out_w = merge_output_size(op, 3);
  auto loss_of = [&]() {
    Matrix y(2, out_w);
    merge_forward(op, hf.cview(), hr.cview(), y.view());
    return tensor::sum(y.cview());
  };
  Matrix dy(2, out_w);
  tensor::fill_constant(dy.view(), 1.0F);
  Matrix dhf(2, 3);
  Matrix dhr(2, 3);
  merge_backward(op, hf.cview(), hr.cview(), dy.cview(), dhf.view(),
                 dhr.view());
  const float eps = 1e-3F;
  for (const auto [r, c] : {std::pair{0, 0}, {1, 2}}) {
    float& slot = hf.at(r, c);
    const float saved = slot;
    slot = saved + eps;
    const double plus = loss_of();
    slot = saved - eps;
    const double minus = loss_of();
    slot = saved;
    EXPECT_NEAR(dhf.at(r, c), (plus - minus) / (2.0 * eps), 5e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Ops, MergeOps,
                         ::testing::Values(MergeOp::kConcat, MergeOp::kSum,
                                           MergeOp::kAverage, MergeOp::kMul),
                         [](const auto& info) {
                           return std::string(merge_name(info.param));
                         });

TEST(LayerParams, InitShapesAndForgetBias) {
  util::Rng rng(1);
  LayerParams p;
  p.init(CellType::kLstm, 10, 16, rng);
  EXPECT_EQ(p.w.rows(), 64);
  EXPECT_EQ(p.w.cols(), 26);
  EXPECT_EQ(p.b.cols(), 64);
  // Forget-gate bias initialized to 1.
  for (int j = 0; j < 16; ++j) EXPECT_EQ(p.b.at(0, j), 1.0F);
  for (int j = 16; j < 64; ++j) EXPECT_EQ(p.b.at(0, j), 0.0F);
  EXPECT_EQ(p.param_count(), 64U * 26U + 64U);
}

TEST(CellTape, BytesAccountsBuffers) {
  CellTape t;
  t.init(CellType::kLstm, 2, 4);
  // gates 2x16, h 2x4, c 2x4, tanh_c 2x4 → (32+8+8+8)*4 bytes.
  EXPECT_EQ(t.bytes(), (32U + 8U + 8U + 8U) * sizeof(float));
  CellTape g;
  g.init(CellType::kGru, 2, 4);
  // gates 2x12, h 2x4, rh 2x4.
  EXPECT_EQ(g.bytes(), (24U + 8U + 8U) * sizeof(float));
}

}  // namespace
}  // namespace bpar::rnn
