// Checkpointing tests: save/load of weights + optimizer state must make
// resumed training bit-exact with uninterrupted training.
#include <gtest/gtest.h>

#include "core/bpar.hpp"
#include "util/rng.hpp"

namespace bpar {
namespace {

using rnn::BatchData;
using rnn::NetworkConfig;

NetworkConfig small_config() {
  NetworkConfig cfg;
  cfg.cell = rnn::CellType::kLstm;
  cfg.input_size = 4;
  cfg.hidden_size = 6;
  cfg.num_layers = 2;
  cfg.seq_length = 4;
  cfg.batch_size = 6;
  cfg.num_classes = 3;
  cfg.seed = 55;
  return cfg;
}

BatchData make_batch(const NetworkConfig& cfg, std::uint64_t seed) {
  util::Rng rng(seed);
  BatchData batch;
  batch.x.resize(static_cast<std::size_t>(cfg.seq_length));
  for (auto& m : batch.x) {
    m.resize(cfg.batch_size, cfg.input_size);
    tensor::fill_uniform(m.view(), rng, -1.0F, 1.0F);
  }
  batch.labels.resize(static_cast<std::size_t>(cfg.batch_size));
  for (auto& l : batch.labels) {
    l = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(cfg.num_classes)));
  }
  return batch;
}

template <typename MakeOptimizer>
void expect_bit_exact_resume(MakeOptimizer make_optimizer) {
  const NetworkConfig cfg = small_config();
  const BatchData batch = make_batch(cfg, 3);
  const std::string path = ::testing::TempDir() + "/bpar_ckpt.bin";

  // Uninterrupted run: 10 steps; checkpoint after step 5.
  Model reference(cfg);
  reference.set_optimizer(make_optimizer());
  std::vector<double> reference_losses;
  for (int i = 0; i < 10; ++i) {
    reference_losses.push_back(reference.train_batch(batch).loss);
    if (i == 4) reference.save_checkpoint(path);
  }

  // Resumed run: fresh model, different seed, load checkpoint, 5 steps.
  NetworkConfig other = cfg;
  other.seed = 999;
  Model resumed(other);
  resumed.set_optimizer(make_optimizer());
  resumed.load_checkpoint(path);
  for (int i = 5; i < 10; ++i) {
    const double loss = resumed.train_batch(batch).loss;
    EXPECT_EQ(loss, reference_losses[static_cast<std::size_t>(i)])
        << "step " << i;
  }
}

TEST(Checkpoint, SgdMomentumResumesBitExactly) {
  expect_bit_exact_resume([] {
    return std::make_unique<train::Sgd>(
        train::Sgd::Config{.learning_rate = 0.1F, .momentum = 0.9F});
  });
}

TEST(Checkpoint, AdamResumesBitExactly) {
  expect_bit_exact_resume([] {
    return std::make_unique<train::Adam>(
        train::Adam::Config{.learning_rate = 3e-3F});
  });
}

TEST(Checkpoint, AdamWResumesBitExactly) {
  expect_bit_exact_resume([] {
    return std::make_unique<train::Adam>(train::Adam::Config{
        .learning_rate = 3e-3F, .weight_decay = 1e-3F});
  });
}

TEST(Checkpoint, RejectsOptimizerMismatch) {
  const NetworkConfig cfg = small_config();
  const std::string path = ::testing::TempDir() + "/bpar_ckpt_mismatch.bin";
  Model a(cfg);
  a.set_optimizer(std::make_unique<train::Adam>(train::Adam::Config{}));
  a.save_checkpoint(path);

  Model b(cfg);
  b.set_optimizer(std::make_unique<train::Sgd>(train::Sgd::Config{}));
  EXPECT_DEATH(b.load_checkpoint(path), "optimizer");
}

TEST(Checkpoint, RejectsPlainWeightFile) {
  const NetworkConfig cfg = small_config();
  const std::string path = ::testing::TempDir() + "/bpar_weights_only.bin";
  Model a(cfg);
  a.save(path);  // weight file, not a checkpoint
  Model b(cfg);
  EXPECT_DEATH(b.load_checkpoint(path), "checkpoint");
}

TEST(Checkpoint, FreshOptimizerStateRoundTrips) {
  // Checkpointing before any step (no moment buffers yet) must also work.
  const NetworkConfig cfg = small_config();
  const std::string path = ::testing::TempDir() + "/bpar_ckpt_fresh.bin";
  Model a(cfg);
  a.set_optimizer(std::make_unique<train::Adam>(train::Adam::Config{}));
  a.save_checkpoint(path);
  Model b(cfg);
  b.set_optimizer(std::make_unique<train::Adam>(train::Adam::Config{}));
  b.load_checkpoint(path);
  const BatchData batch = make_batch(cfg, 4);
  EXPECT_EQ(a.train_batch(batch).loss, b.train_batch(batch).loss);
}

}  // namespace
}  // namespace bpar
