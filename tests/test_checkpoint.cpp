// Checkpointing tests: save/load of weights + optimizer state must make
// resumed training bit-exact with uninterrupted training, and every way a
// crash can corrupt a checkpoint file must be diagnosed at load time with
// a clear util::CheckpointError instead of an abort or garbage weights.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/bpar.hpp"
#include "core/checkpoint.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bpar {
namespace {

using rnn::BatchData;
using rnn::NetworkConfig;

NetworkConfig small_config() {
  NetworkConfig cfg;
  cfg.cell = rnn::CellType::kLstm;
  cfg.input_size = 4;
  cfg.hidden_size = 6;
  cfg.num_layers = 2;
  cfg.seq_length = 4;
  cfg.batch_size = 6;
  cfg.num_classes = 3;
  cfg.seed = 55;
  return cfg;
}

BatchData make_batch(const NetworkConfig& cfg, std::uint64_t seed) {
  util::Rng rng(seed);
  BatchData batch;
  batch.x.resize(static_cast<std::size_t>(cfg.seq_length));
  for (auto& m : batch.x) {
    m.resize(cfg.batch_size, cfg.input_size);
    tensor::fill_uniform(m.view(), rng, -1.0F, 1.0F);
  }
  batch.labels.resize(static_cast<std::size_t>(cfg.batch_size));
  for (auto& l : batch.labels) {
    l = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(cfg.num_classes)));
  }
  return batch;
}

template <typename MakeOptimizer>
void expect_bit_exact_resume(MakeOptimizer make_optimizer) {
  const NetworkConfig cfg = small_config();
  const BatchData batch = make_batch(cfg, 3);
  const std::string path = ::testing::TempDir() + "/bpar_ckpt.bin";

  // Uninterrupted run: 10 steps; checkpoint after step 5.
  Model reference(cfg);
  reference.set_optimizer(make_optimizer());
  std::vector<double> reference_losses;
  for (int i = 0; i < 10; ++i) {
    reference_losses.push_back(reference.train_batch(batch).loss);
    if (i == 4) reference.save_checkpoint(path);
  }

  // Resumed run: fresh model, different seed, load checkpoint, 5 steps.
  NetworkConfig other = cfg;
  other.seed = 999;
  Model resumed(other);
  resumed.set_optimizer(make_optimizer());
  resumed.load_checkpoint(path);
  for (int i = 5; i < 10; ++i) {
    const double loss = resumed.train_batch(batch).loss;
    EXPECT_EQ(loss, reference_losses[static_cast<std::size_t>(i)])
        << "step " << i;
  }
}

TEST(Checkpoint, SgdMomentumResumesBitExactly) {
  expect_bit_exact_resume([] {
    return std::make_unique<train::Sgd>(
        train::Sgd::Config{.learning_rate = 0.1F, .momentum = 0.9F});
  });
}

TEST(Checkpoint, AdamResumesBitExactly) {
  expect_bit_exact_resume([] {
    return std::make_unique<train::Adam>(
        train::Adam::Config{.learning_rate = 3e-3F});
  });
}

TEST(Checkpoint, AdamWResumesBitExactly) {
  expect_bit_exact_resume([] {
    return std::make_unique<train::Adam>(train::Adam::Config{
        .learning_rate = 3e-3F, .weight_decay = 1e-3F});
  });
}

TEST(Checkpoint, RejectsOptimizerMismatch) {
  const NetworkConfig cfg = small_config();
  const std::string path = ::testing::TempDir() + "/bpar_ckpt_mismatch.bin";
  Model a(cfg);
  a.set_optimizer(std::make_unique<train::Adam>(train::Adam::Config{}));
  a.save_checkpoint(path);

  Model b(cfg);
  b.set_optimizer(std::make_unique<train::Sgd>(train::Sgd::Config{}));
  EXPECT_THROW(
      {
        try {
          b.load_checkpoint(path);
        } catch (const util::CheckpointError& e) {
          EXPECT_NE(std::string(e.what()).find("optimizer"),
                    std::string::npos)
              << e.what();
          throw;
        }
      },
      util::CheckpointError);
}

TEST(Checkpoint, RejectsPlainWeightFile) {
  const NetworkConfig cfg = small_config();
  const std::string path = ::testing::TempDir() + "/bpar_weights_only.bin";
  Model a(cfg);
  a.save(path);  // weight file, not a checkpoint
  Model b(cfg);
  EXPECT_THROW(b.load_checkpoint(path), util::CheckpointError);
}

TEST(Checkpoint, RejectsDimensionMismatchByName) {
  const NetworkConfig cfg = small_config();
  const std::string path = ::testing::TempDir() + "/bpar_ckpt_dims.bin";
  Model a(cfg);
  a.save_checkpoint(path);

  NetworkConfig bigger = cfg;
  bigger.hidden_size = cfg.hidden_size + 2;
  Model b(bigger);
  try {
    b.load_checkpoint(path);
    FAIL() << "expected CheckpointError";
  } catch (const util::CheckpointError& e) {
    // The error must name the mismatched field and both values.
    const std::string what = e.what();
    EXPECT_NE(what.find("hidden_size"), std::string::npos) << what;
    EXPECT_NE(what.find('6'), std::string::npos) << what;
    EXPECT_NE(what.find('8'), std::string::npos) << what;
  }
}

TEST(Checkpoint, RejectsTruncatedFile) {
  const NetworkConfig cfg = small_config();
  const std::string path = ::testing::TempDir() + "/bpar_ckpt_trunc.bin";
  Model a(cfg);
  a.save_checkpoint(path);

  // Chop the file at several points; every prefix must be diagnosed as
  // truncated/corrupt, never loaded or aborted on.
  std::ifstream in(path, std::ios::binary);
  std::string image((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  for (const double frac : {0.1, 0.5, 0.9}) {
    const auto cut = static_cast<std::size_t>(
        static_cast<double>(image.size()) * frac);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(image.data(), static_cast<std::streamsize>(cut));
    out.close();
    Model b(cfg);
    EXPECT_THROW(b.load_checkpoint(path), util::CheckpointError)
        << "prefix of " << cut << " bytes";
  }
}

TEST(Checkpoint, RejectsBitFlippedPayload) {
  const NetworkConfig cfg = small_config();
  const std::string path = ::testing::TempDir() + "/bpar_ckpt_flip.bin";
  Model a(cfg);
  a.save_checkpoint(path);

  // Flip one byte deep in the model payload: the section CRC must trip.
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(f.tellg());
  f.seekp(static_cast<std::streamoff>(size / 2));
  char byte = 0;
  f.seekg(static_cast<std::streamoff>(size / 2));
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(static_cast<std::streamoff>(size / 2));
  f.write(&byte, 1);
  f.close();

  Model b(cfg);
  EXPECT_THROW(b.load_checkpoint(path), util::CheckpointError);
}

TEST(Checkpoint, ManagerRotatesAndPrunes) {
  const NetworkConfig cfg = small_config();
  const std::string prefix = ::testing::TempDir() + "/rot/run";
  CheckpointManager manager(prefix, /*keep=*/2);
  Model model(cfg);
  for (std::uint64_t step : {10ULL, 20ULL, 30ULL, 40ULL}) {
    manager.save(model, step);
  }
  const auto entries = manager.list();
  ASSERT_EQ(entries.size(), 2U);
  EXPECT_EQ(entries[0].first, 40U);  // newest first
  EXPECT_EQ(entries[1].first, 30U);
}

TEST(Checkpoint, ManagerSkipsTornNewestCheckpoint) {
  const NetworkConfig cfg = small_config();
  const BatchData batch = make_batch(cfg, 9);
  const std::string prefix = ::testing::TempDir() + "/torn/run";
  CheckpointManager manager(prefix, /*keep=*/3);

  Model model(cfg);
  model.train_batch(batch);
  manager.save(model, 1);
  model.train_batch(batch);
  manager.save(model, 2);

  // Tear the newest file (simulated crash mid-write after rename — e.g.
  // torn sector): load_latest_good must fall back to step 1.
  const auto entries = manager.list();
  ASSERT_EQ(entries.size(), 2U);
  std::filesystem::resize_file(
      entries[0].second,
      std::filesystem::file_size(entries[0].second) / 2);

  Model restored(cfg);
  const auto step = manager.load_latest_good(restored);
  ASSERT_TRUE(step.has_value());
  EXPECT_EQ(*step, 1U);
}

TEST(Checkpoint, ManagerReturnsNulloptWhenNothingLoads) {
  const NetworkConfig cfg = small_config();
  CheckpointManager manager(::testing::TempDir() + "/empty/run", 3);
  Model model(cfg);
  EXPECT_FALSE(manager.load_latest_good(model).has_value());
}

TEST(Checkpoint, SaveIsAtomicNoPartialFileUnderFinalName) {
  // A .tmp from an interrupted save must not shadow the real checkpoint;
  // the loader only ever sees fully-written files under the final name.
  const NetworkConfig cfg = small_config();
  const std::string prefix = ::testing::TempDir() + "/atomic/run";
  CheckpointManager manager(prefix, 3);
  Model model(cfg);
  const std::string path = manager.save(model, 7);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  Model restored(cfg);
  EXPECT_EQ(manager.load_latest_good(restored), 7U);
}

TEST(Checkpoint, FreshOptimizerStateRoundTrips) {
  // Checkpointing before any step (no moment buffers yet) must also work.
  const NetworkConfig cfg = small_config();
  const std::string path = ::testing::TempDir() + "/bpar_ckpt_fresh.bin";
  Model a(cfg);
  a.set_optimizer(std::make_unique<train::Adam>(train::Adam::Config{}));
  a.save_checkpoint(path);
  Model b(cfg);
  b.set_optimizer(std::make_unique<train::Adam>(train::Adam::Config{}));
  b.load_checkpoint(path);
  const BatchData batch = make_batch(cfg, 4);
  EXPECT_EQ(a.train_batch(batch).loss, b.train_batch(batch).loss);
}

}  // namespace
}  // namespace bpar
