// Optimizer and trainer tests.
#include <gtest/gtest.h>

#include "exec/sequential.hpp"
#include "train/optimizer.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"

namespace bpar::train {
namespace {

using rnn::BatchData;
using rnn::NetworkConfig;

NetworkConfig tiny_config() {
  NetworkConfig cfg;
  cfg.cell = rnn::CellType::kGru;
  cfg.input_size = 4;
  cfg.hidden_size = 8;
  cfg.num_layers = 2;
  cfg.seq_length = 4;
  cfg.batch_size = 8;
  cfg.num_classes = 3;
  cfg.seed = 3;
  return cfg;
}

// A learnable toy problem: the label is determined by which input channel
// has the largest mean over time.
BatchData learnable_batch(const NetworkConfig& cfg, std::uint64_t seed) {
  util::Rng rng(seed);
  BatchData batch;
  batch.x.resize(static_cast<std::size_t>(cfg.seq_length));
  for (auto& m : batch.x) m.resize(cfg.batch_size, cfg.input_size);
  batch.labels.resize(static_cast<std::size_t>(cfg.batch_size));
  for (int b = 0; b < cfg.batch_size; ++b) {
    const int label =
        static_cast<int>(rng.uniform_index(
            static_cast<std::uint64_t>(cfg.num_classes)));
    batch.labels[static_cast<std::size_t>(b)] = label;
    for (int t = 0; t < cfg.seq_length; ++t) {
      for (int f = 0; f < cfg.input_size; ++f) {
        const double boost = f == label ? 1.0 : 0.0;
        batch.x[static_cast<std::size_t>(t)].at(b, f) =
            static_cast<float>(boost + rng.normal(0.0, 0.3));
      }
    }
  }
  return batch;
}

TEST(Sgd, ReducesLossOnFixedBatch) {
  const NetworkConfig cfg = tiny_config();
  rnn::Network net(cfg);
  exec::SequentialExecutor executor(net);
  Sgd sgd({.learning_rate = 0.3F});
  const BatchData batch = learnable_batch(cfg, 1);
  const double first = executor.train_batch(batch).loss;
  double last = first;
  for (int i = 0; i < 30; ++i) {
    sgd.step(net, executor.grads());
    last = executor.train_batch(batch).loss;
  }
  EXPECT_LT(last, first * 0.5);
}

TEST(Sgd, MomentumAcceleratesOverVanilla) {
  const NetworkConfig cfg = tiny_config();
  const BatchData batch = learnable_batch(cfg, 2);
  auto run = [&](float momentum) {
    rnn::Network net(cfg);
    exec::SequentialExecutor executor(net);
    Sgd sgd({.learning_rate = 0.05F, .momentum = momentum});
    double loss = 0.0;
    for (int i = 0; i < 25; ++i) {
      loss = executor.train_batch(batch).loss;
      sgd.step(net, executor.grads());
    }
    return loss;
  };
  EXPECT_LT(run(0.9F), run(0.0F));
}

TEST(Sgd, ClippingBoundsUpdateMagnitude) {
  const NetworkConfig cfg = tiny_config();
  rnn::Network net(cfg);
  exec::SequentialExecutor executor(net);
  const BatchData batch = learnable_batch(cfg, 3);
  executor.train_batch(batch);
  // Inflate gradients artificially, then clip hard.
  executor.grads().scale(100.0F);
  const double before = tensor::sum(net.w_out.cview());
  Sgd sgd({.learning_rate = 1.0F, .clip_norm = 1e-3F});
  sgd.step(net, executor.grads());
  const double after = tensor::sum(net.w_out.cview());
  EXPECT_LT(std::abs(after - before), 1e-2);
}

TEST(Adam, ReducesLossOnFixedBatch) {
  const NetworkConfig cfg = tiny_config();
  rnn::Network net(cfg);
  exec::SequentialExecutor executor(net);
  Adam adam({.learning_rate = 5e-3F});
  const BatchData batch = learnable_batch(cfg, 4);
  const double first = executor.train_batch(batch).loss;
  double last = first;
  for (int i = 0; i < 40; ++i) {
    adam.step(net, executor.grads());
    last = executor.train_batch(batch).loss;
  }
  EXPECT_LT(last, first * 0.6);
}

TEST(Accuracy, CountsMatches) {
  const std::vector<int> pred = {1, 2, 0, 1};
  const std::vector<int> gold = {1, 0, 0, 2};
  EXPECT_NEAR(accuracy(pred, gold), 0.5, 1e-9);
}

TEST(Trainer, EpochLoopImprovesAccuracy) {
  NetworkConfig cfg = tiny_config();
  cfg.hidden_size = 12;
  rnn::Network net(cfg);
  exec::SequentialExecutor executor(net);
  Sgd sgd({.learning_rate = 0.25F});
  Trainer trainer(net, executor, sgd);

  std::vector<rnn::BatchData> batches;
  for (std::uint64_t s = 0; s < 6; ++s) {
    batches.push_back(learnable_batch(cfg, 100 + s));
  }
  const auto before = trainer.evaluate(batches);
  for (int epoch = 0; epoch < 12; ++epoch) trainer.train_epoch(batches);
  const auto after = trainer.evaluate(batches);
  EXPECT_GT(after.accuracy, before.accuracy);
  EXPECT_LT(after.mean_loss, before.mean_loss);
  EXPECT_EQ(trainer.history().size(), 12U);
}



TEST(Trainer, ShuffleIsDeterministicAndChangesOrderAcrossEpochs) {
  NetworkConfig cfg = tiny_config();
  std::vector<rnn::BatchData> batches;
  for (std::uint64_t s = 0; s < 4; ++s) {
    batches.push_back(learnable_batch(cfg, 200 + s));
  }
  auto run = [&](bool shuffle) {
    rnn::Network net(cfg);
    exec::SequentialExecutor executor(net);
    Sgd sgd({.learning_rate = 0.1F});
    Trainer trainer(net, executor, sgd);
    trainer.set_shuffle(shuffle, 42);
    for (int epoch = 0; epoch < 3; ++epoch) trainer.train_epoch(batches);
    return tensor::l2_norm(net.w_out.cview());
  };
  // Deterministic: two shuffled runs agree exactly.
  EXPECT_EQ(run(true), run(true));
  // Order matters for SGD: shuffled differs from unshuffled.
  EXPECT_NE(run(true), run(false));
}

TEST(AdamW, WeightDecayShrinksWeightsVsAdam) {
  const NetworkConfig cfg = tiny_config();
  const BatchData batch = learnable_batch(cfg, 5);
  auto final_norm = [&](float decay) {
    rnn::Network net(cfg);
    exec::SequentialExecutor executor(net);
    Adam opt({.learning_rate = 2e-3F, .weight_decay = decay});
    for (int i = 0; i < 20; ++i) {
      executor.train_batch(batch);
      opt.step(net, executor.grads());
    }
    return tensor::l2_norm(net.w_out.cview()) +
           tensor::l2_norm(net.layer(0, 0).w.cview());
  };
  EXPECT_LT(final_norm(0.05F), final_norm(0.0F));
}

TEST(AdamW, NameReflectsDecay) {
  Adam plain({});
  Adam decayed({.weight_decay = 0.01F});
  EXPECT_STREQ(plain.name(), "adam");
  EXPECT_STREQ(decayed.name(), "adamw");
}

}  // namespace
}  // namespace bpar::train
