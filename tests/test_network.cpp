// Network/workspace tests, including parameter-count validation against the
// numbers the paper reports in Tables III and IV.
#include <gtest/gtest.h>

#include <sstream>

#include "rnn/flops.hpp"
#include "rnn/network.hpp"

namespace bpar::rnn {
namespace {

NetworkConfig table_config(CellType cell, int input, int hidden) {
  // Tables III/IV use 6-layer deep BRNNs. The paper's parameter counts
  // (e.g. 6.3M for input 256 / hidden 256 BLSTM) imply deeper layers see an
  // H-wide merged input, i.e. a sum/average-style merge.
  NetworkConfig cfg;
  cfg.cell = cell;
  cfg.merge = MergeOp::kSum;
  cfg.input_size = input;
  cfg.hidden_size = hidden;
  cfg.num_layers = 6;
  cfg.seq_length = 4;   // irrelevant for parameter count
  cfg.batch_size = 2;
  cfg.num_classes = 11;
  return cfg;
}

TEST(ParamCount, MatchesTableIIIBlstm) {
  // Paper Table III: 6-layer BLSTM parameter counts (in millions).
  struct Row {
    int input;
    int hidden;
    double expected_m;
  };
  for (const Row row : {Row{64, 256, 5.9}, Row{256, 256, 6.3},
                        Row{1024, 256, 7.8}, Row{64, 1024, 92.8},
                        Row{256, 1024, 94.4}, Row{1024, 1024, 100.7}}) {
    Network net(table_config(CellType::kLstm, row.input, row.hidden));
    const double millions =
        static_cast<double>(net.param_count()) / 1e6;
    EXPECT_NEAR(millions, row.expected_m, row.expected_m * 0.02)
        << "input " << row.input << " hidden " << row.hidden;
  }
}

TEST(ParamCount, MatchesTableIVBgru) {
  struct Row {
    int input;
    int hidden;
    double expected_m;
  };
  for (const Row row : {Row{64, 256, 4.4}, Row{256, 256, 4.7},
                        Row{1024, 256, 5.9}, Row{64, 1024, 69.6},
                        Row{256, 1024, 70.8}, Row{1024, 1024, 75.5}}) {
    Network net(table_config(CellType::kGru, row.input, row.hidden));
    const double millions =
        static_cast<double>(net.param_count()) / 1e6;
    EXPECT_NEAR(millions, row.expected_m, row.expected_m * 0.02)
        << "input " << row.input << " hidden " << row.hidden;
  }
}

TEST(Network, LayerInputWidths) {
  NetworkConfig cfg = table_config(CellType::kLstm, 64, 256);
  cfg.merge = MergeOp::kConcat;
  EXPECT_EQ(cfg.layer_input_size(0), 64);
  EXPECT_EQ(cfg.layer_input_size(1), 512);  // concat of two 256s
  cfg.merge = MergeOp::kSum;
  EXPECT_EQ(cfg.layer_input_size(1), 256);
}

TEST(Network, SameSeedSameWeights) {
  const NetworkConfig cfg = table_config(CellType::kGru, 8, 8);
  Network a(cfg);
  Network b(cfg);
  EXPECT_TRUE(tensor::allclose(a.layer(0, 0).w.cview(),
                               b.layer(0, 0).w.cview(), 0.0F, 0.0F));
  EXPECT_TRUE(tensor::allclose(a.layer(1, 3).w.cview(),
                               b.layer(1, 3).w.cview(), 0.0F, 0.0F));
}

TEST(Network, DirectionsGetDistinctWeights) {
  const NetworkConfig cfg = table_config(CellType::kLstm, 8, 8);
  Network net(cfg);
  EXPECT_FALSE(tensor::allclose(net.layer(0, 0).w.cview(),
                                net.layer(1, 0).w.cview(), 1e-6F, 0.0F));
}

TEST(Network, SaveLoadRoundTripExactly) {
  const NetworkConfig cfg = table_config(CellType::kLstm, 8, 8);
  Network a(cfg);
  std::stringstream buffer;
  a.save(buffer);
  NetworkConfig cfg2 = cfg;
  cfg2.seed = 4242;
  Network b(cfg2);
  EXPECT_FALSE(tensor::allclose(a.w_out.cview(), b.w_out.cview(), 1e-6F, 0.0F));
  b.load(buffer);
  EXPECT_TRUE(tensor::allclose(a.w_out.cview(), b.w_out.cview(), 0.0F, 0.0F));
  EXPECT_TRUE(tensor::allclose(a.layer(1, 5).w.cview(),
                               b.layer(1, 5).w.cview(), 0.0F, 0.0F));
}

TEST(Network, LoadRejectsGarbage) {
  const NetworkConfig cfg = table_config(CellType::kLstm, 8, 8);
  Network net(cfg);
  std::stringstream buffer("not a weight file at all");
  EXPECT_DEATH(net.load(buffer), "not a B-Par weight file");
}

TEST(Workspace, ShapesFollowConfig) {
  NetworkConfig cfg = table_config(CellType::kLstm, 16, 8);
  cfg.merge = MergeOp::kConcat;
  cfg.seq_length = 5;
  cfg.many_to_many = false;
  Workspace ws(cfg, 3);
  EXPECT_EQ(ws.batch(), 3);
  EXPECT_EQ(ws.tape(0, 0, 0).gates.cols(), 32);  // 4 * hidden
  EXPECT_EQ(ws.merged(0, 4).cols(), 16);         // concat = 2 * hidden
  EXPECT_EQ(ws.final_merged.rows(), 3);
  EXPECT_EQ(ws.num_outputs(), 1);
  EXPECT_EQ(ws.logits(0).cols(), cfg.num_classes);
}

TEST(Workspace, ManyToManyAllocatesPerStepOutputs) {
  NetworkConfig cfg = table_config(CellType::kGru, 16, 8);
  cfg.seq_length = 5;
  cfg.many_to_many = true;
  Workspace ws(cfg, 2);
  EXPECT_EQ(ws.num_outputs(), 5);
  EXPECT_EQ(ws.merged(cfg.num_layers - 1, 4).rows(), 2);
  EXPECT_EQ(ws.final_merged.count(), 0U);  // unused for many-to-many
}

TEST(Workspace, ZeroBackwardClearsAccumulators) {
  NetworkConfig cfg = table_config(CellType::kLstm, 8, 8);
  Workspace ws(cfg, 2);
  ws.dh(0, 0, 0).at(0, 0) = 5.0F;
  ws.dmerged(1, 0, 0).at(1, 1) = 3.0F;
  ws.dfinal.at(0, 0) = 2.0F;
  ws.zero_backward();
  EXPECT_EQ(ws.dh(0, 0, 0).at(0, 0), 0.0F);
  EXPECT_EQ(ws.dmerged(1, 0, 0).at(1, 1), 0.0F);
  EXPECT_EQ(ws.dfinal.at(0, 0), 0.0F);
}

TEST(NetworkGrads, AccumulateAndScale) {
  const NetworkConfig cfg = table_config(CellType::kGru, 8, 8);
  Network net(cfg);
  NetworkGrads a;
  NetworkGrads b;
  a.init_like(net);
  b.init_like(net);
  a.layers[0][0].dw.at(0, 0) = 2.0F;
  b.layers[0][0].dw.at(0, 0) = 3.0F;
  a.accumulate(b);
  EXPECT_EQ(a.layers[0][0].dw.at(0, 0), 5.0F);
  a.scale(0.5F);
  EXPECT_EQ(a.layers[0][0].dw.at(0, 0), 2.5F);
  EXPECT_NEAR(a.l2_norm(), 2.5, 1e-6);
}

TEST(Flops, FormulasScaleAsExpected) {
  // LSTM has 4 gates, GRU 3 → 4:3 flop ratio at the same shape.
  const double lstm = cell_forward_flops(CellType::kLstm, 8, 16, 32);
  const double gru = cell_forward_flops(CellType::kGru, 8, 16, 32);
  EXPECT_NEAR(lstm / gru, 4.0 / 3.0, 0.05);
  // Backward ≈ 2x forward.
  EXPECT_NEAR(cell_backward_flops(CellType::kLstm, 8, 16, 32) / lstm, 2.0,
              1e-9);
  // Training ≈ 3x inference.
  NetworkConfig cfg = table_config(CellType::kLstm, 64, 128);
  EXPECT_NEAR(network_training_flops(cfg) / network_inference_flops(cfg), 3.0,
              1e-9);
}

TEST(Flops, PaperTaskWorkingSetIsPlausible) {
  // §IV-B: an LSTM cell task at Seq=100, Batch=128, Input=64, Hidden=512
  // has a ~4.71 MB working set. Our accounting should be the same order.
  const std::size_t bytes =
      cell_working_set_bytes(CellType::kLstm, 128, 64, 512);
  EXPECT_GT(bytes, 3U << 20);
  EXPECT_LT(bytes, 8U << 20);
}

TEST(ConfigValidation, RejectsNonPositiveDimensions) {
  NetworkConfig cfg = table_config(CellType::kLstm, 8, 8);
  cfg.hidden_size = 0;
  EXPECT_DEATH(cfg.validate(), "hidden_size");
}

}  // namespace
}  // namespace bpar::rnn
