// Task-graph structure tests: task counts, the Fig. 2 dependency shape,
// barrier-free vs per-layer-barrier critical paths, and the fuse-merge
// ablation's extra coupling.
#include <gtest/gtest.h>

#include "graph/brnn_graph.hpp"
#include "rnn/network.hpp"

namespace bpar::graph {
namespace {

using rnn::CellType;
using rnn::MergeOp;
using rnn::NetworkConfig;
using taskrt::TaskKind;

NetworkConfig small_config(bool m2m, int layers = 3, int seq = 3) {
  NetworkConfig cfg;
  cfg.cell = CellType::kLstm;
  cfg.merge = MergeOp::kConcat;
  cfg.input_size = 4;
  cfg.hidden_size = 5;
  cfg.num_layers = layers;
  cfg.seq_length = seq;
  cfg.batch_size = 4;
  cfg.num_classes = 3;
  cfg.many_to_many = m2m;
  return cfg;
}

std::size_t count_kind(const taskrt::TaskGraph& g, TaskKind kind) {
  std::size_t n = 0;
  for (taskrt::TaskId id = 0; id < g.size(); ++id) {
    if (g.task(id).spec.kind == kind) ++n;
  }
  return n;
}

TEST(GraphStructure, ManyToOneTaskCounts) {
  const NetworkConfig cfg = small_config(false);  // L=3, T=3
  rnn::Network net(cfg);
  BuildOptions bo;
  TrainingProgram prog(net, cfg.batch_size, bo);
  const auto& g = prog.graph();

  // Forward cells: 2 dirs x 3 layers x 3 steps = 18.
  EXPECT_EQ(count_kind(g, TaskKind::kCellForward), 18U);
  // Merges: (L-1)*T interior + 1 final = 7.
  EXPECT_EQ(count_kind(g, TaskKind::kMerge), 7U);
  // Backward cells: 18 cell-bwd + 1 dense-bwd task.
  EXPECT_EQ(count_kind(g, TaskKind::kCellBackward), 19U);
  // Merge backward: interior 6 + final 1.
  EXPECT_EQ(count_kind(g, TaskKind::kMergeBackward), 7U);
  // Loss forward + loss grad + loss reduction.
  EXPECT_EQ(count_kind(g, TaskKind::kLoss), 3U);
  // Gradient reductions: 2*L layer + dense = 7.
  EXPECT_EQ(count_kind(g, TaskKind::kGradReduce), 7U);
  EXPECT_EQ(count_kind(g, TaskKind::kBarrier), 0U);  // B-Par: barrier-free
}

TEST(GraphStructure, ManyToManyHasMorePerStepWork) {
  const NetworkConfig cfg = small_config(true);
  rnn::Network net(cfg);
  TrainingProgram prog(net, cfg.batch_size, {});
  const auto& g = prog.graph();
  // Last layer also merges every step: L*T = 9 merges, no final merge.
  EXPECT_EQ(count_kind(g, TaskKind::kMerge), 9U);
  // 3 dense_fwd + 3 loss_grad + 1 loss reduction.
  EXPECT_EQ(count_kind(g, TaskKind::kLoss), 7U);
}

TEST(GraphStructure, InferenceGraphHasNoBackwardTasks) {
  const NetworkConfig cfg = small_config(false);
  rnn::Network net(cfg);
  BuildOptions bo;
  bo.training = false;
  TrainingProgram prog(net, cfg.batch_size, bo);
  const auto& g = prog.graph();
  EXPECT_EQ(count_kind(g, TaskKind::kCellBackward), 0U);
  EXPECT_EQ(count_kind(g, TaskKind::kMergeBackward), 0U);
  EXPECT_EQ(count_kind(g, TaskKind::kGradReduce), 0U);
}

TEST(GraphStructure, Fig2StyleDependencies) {
  // The paper's Fig. 2 (L=3, T=3 many-to-one): reverse cell 2r feeds the
  // merge 2f2r and reverse cell 3r; forward cell 1f feeds 2f and merge
  // 1f3r. We verify reachability of the equivalents.
  const NetworkConfig cfg = small_config(false);
  rnn::Network net(cfg);
  TrainingProgram prog(net, cfg.batch_size, {});
  const auto& g = prog.graph();

  auto find_task = [&](const std::string& name) {
    for (taskrt::TaskId id = 0; id < g.size(); ++id) {
      if (g.task(id).spec.name == name) return id;
    }
    ADD_FAILURE() << "task not found: " << name;
    return taskrt::kInvalidTask;
  };

  // Layer-0 cells; our naming: f0.t / r0.k; merge m0.t (t = input index).
  const auto f0_0 = find_task("f0.0");
  const auto f0_1 = find_task("f0.1");
  const auto r0_1 = find_task("r0.1");  // processes input index T-1-1 = 1
  const auto r0_2 = find_task("r0.2");
  const auto m0_1 = find_task("m0.1");  // merges f0.1 with r0.1
  const auto f1_1 = find_task("f1.1");
  const auto r1_1 = find_task("r1.1");

  EXPECT_TRUE(g.reaches(f0_0, f0_1));  // forward chain
  EXPECT_TRUE(g.reaches(r0_1, r0_2));  // reverse chain
  EXPECT_TRUE(g.reaches(f0_1, m0_1));  // cell → merge
  EXPECT_TRUE(g.reaches(r0_1, m0_1));
  EXPECT_TRUE(g.reaches(m0_1, f1_1));  // merge feeds next layer fwd cell
  EXPECT_TRUE(g.reaches(m0_1, r1_1));  // ... and the reverse cell
  // Crucially, no dependency between same-layer forward and reverse cells.
  EXPECT_FALSE(g.reaches(f0_0, r0_1));
  EXPECT_FALSE(g.reaches(r0_1, f0_1));
}

TEST(GraphStructure, BackwardMirrorsForward) {
  const NetworkConfig cfg = small_config(false);
  rnn::Network net(cfg);
  TrainingProgram prog(net, cfg.batch_size, {});
  const auto& g = prog.graph();
  auto find_task = [&](const std::string& name) {
    for (taskrt::TaskId id = 0; id < g.size(); ++id) {
      if (g.task(id).spec.name == name) return id;
    }
    return taskrt::kInvalidTask;
  };
  const auto final_merge_bwd = find_task("final_merge_bwd");
  const auto bf2_2 = find_task("bf2.2");  // last layer, last step backward
  const auto bf0_0 = find_task("bf0.0");  // first layer, first step backward
  ASSERT_NE(final_merge_bwd, taskrt::kInvalidTask);
  ASSERT_NE(bf2_2, taskrt::kInvalidTask);
  EXPECT_TRUE(g.reaches(final_merge_bwd, bf2_2));
  EXPECT_TRUE(g.reaches(bf2_2, bf0_0));
  // Forward of a cell precedes its own backward.
  EXPECT_TRUE(g.reaches(find_task("f2.2"), bf2_2));
}

TEST(GraphStructure, BarriersLengthenCriticalPath) {
  const NetworkConfig cfg = small_config(false, 4, 4);
  rnn::Network net(cfg);
  TrainingProgram free_prog(net, cfg.batch_size, {});
  BuildOptions barrier_opts;
  barrier_opts.schedule_profile = "framework";
  TrainingProgram barrier_prog(net, cfg.batch_size, barrier_opts);
  EXPECT_GT(barrier_prog.graph().critical_path_length(),
            free_prog.graph().critical_path_length());
}

TEST(GraphStructure, FuseMergeCouplesDirections) {
  const NetworkConfig cfg = small_config(false, 3, 4);
  rnn::Network net(cfg);
  TrainingProgram separate(net, cfg.batch_size, {});
  BuildOptions fused_opts;
  fused_opts.fuse_merge = true;  // deprecated shim — kept as coverage
  TrainingProgram fused(net, cfg.batch_size, fused_opts);
  // Fused merges serialize fwd cells behind the full reverse chain → a
  // strictly longer critical path (that's why B-Par keeps merges separate).
  EXPECT_GT(fused.graph().critical_path_length(),
            separate.graph().critical_path_length());
  // And fewer tasks (merge work absorbed into cells).
  EXPECT_LT(fused.graph().size(), separate.graph().size());
}

TEST(GraphStructure, ReplicasMultiplyTasksAndAddReductions) {
  const NetworkConfig cfg = small_config(false);
  rnn::Network net(cfg);
  TrainingProgram single(net, cfg.batch_size, {});
  BuildOptions four;
  four.num_replicas = 4;
  TrainingProgram quad(net, cfg.batch_size, four);
  EXPECT_EQ(count_kind(quad.graph(), TaskKind::kCellForward),
            4U * count_kind(single.graph(), TaskKind::kCellForward));
  // Same number of reduction tasks (they just read more inputs).
  EXPECT_EQ(count_kind(quad.graph(), TaskKind::kGradReduce),
            count_kind(single.graph(), TaskKind::kGradReduce));
}

TEST(GraphStructure, ShapeOnlyGraphMatchesExecutableStructure) {
  const NetworkConfig cfg = small_config(false);
  rnn::Network net(cfg);
  TrainingProgram executable(net, cfg.batch_size, {});
  BuildOptions shape;
  shape.executable = false;
  TrainingProgram shaped(net, cfg.batch_size, shape);
  EXPECT_EQ(executable.graph().size(), shaped.graph().size());
  EXPECT_EQ(executable.graph().edge_count(), shaped.graph().edge_count());
  EXPECT_EQ(executable.graph().critical_path_length(),
            shaped.graph().critical_path_length());
}

TEST(GraphStructure, IntraOpChunksExpandShapeGraphs) {
  const NetworkConfig cfg = small_config(false);
  rnn::Network net(cfg);
  BuildOptions shape;
  shape.executable = false;
  TrainingProgram plain(net, cfg.batch_size, shape);
  shape.intra_op_chunks = 4;
  TrainingProgram chunked(net, cfg.batch_size, shape);
  EXPECT_GT(chunked.graph().size(), plain.graph().size());
  EXPECT_GT(count_kind(chunked.graph(), TaskKind::kGemmChunk), 0U);
}

TEST(GraphStructure, SpecsCarryFlopsAndWorkingSets) {
  const NetworkConfig cfg = small_config(false);
  rnn::Network net(cfg);
  TrainingProgram prog(net, cfg.batch_size, {});
  const auto& g = prog.graph();
  for (taskrt::TaskId id = 0; id < g.size(); ++id) {
    const auto& spec = g.task(id).spec;
    if (spec.kind == TaskKind::kCellForward ||
        spec.kind == TaskKind::kCellBackward) {
      EXPECT_GT(spec.flops, 0.0) << spec.name;
      EXPECT_GT(spec.working_set_bytes, 0U) << spec.name;
    }
  }
}

TEST(GraphStructure, CriticalPathIndependentOfSeqLengthWithoutBarriers) {
  // B-Par's signature property: with enough cores, longer per-layer chains
  // overlap across layers/directions. The critical path grows linearly in
  // T + L (one diagonal sweep), NOT as L*T like the barrier version.
  rnn::Network net8(small_config(false, 2, 8));
  rnn::Network net4(small_config(false, 2, 4));
  TrainingProgram p8(net8, 4, {});
  TrainingProgram p4(net4, 4, {});
  const auto cp8 = p8.graph().critical_path_length();
  const auto cp4 = p4.graph().critical_path_length();
  // Doubling T should add roughly T extra tasks on the path, not 2x L*T.
  EXPECT_LT(cp8, cp4 * 2U);
  EXPECT_GT(cp8, cp4);
}

}  // namespace
}  // namespace bpar::graph
