// Trainer recovery tests: numeric-health guards, rollback-and-retry after
// injected failures (bit-exact with the fault-free trajectory), graceful
// degradation to a fallback executor, and a randomized soak combining
// throws, NaN injection, and torn checkpoint writes.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/bpar.hpp"
#include "core/checkpoint.hpp"
#include "taskrt/fault.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bpar {
namespace {

using rnn::BatchData;
using rnn::NetworkConfig;

NetworkConfig small_config() {
  NetworkConfig cfg;
  cfg.cell = rnn::CellType::kLstm;
  cfg.input_size = 4;
  cfg.hidden_size = 6;
  cfg.num_layers = 2;
  cfg.seq_length = 4;
  cfg.batch_size = 6;
  cfg.num_classes = 3;
  cfg.seed = 55;
  return cfg;
}

std::vector<BatchData> make_batches(const NetworkConfig& cfg, int count,
                                    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<BatchData> batches;
  for (int b = 0; b < count; ++b) {
    BatchData batch;
    batch.x.resize(static_cast<std::size_t>(cfg.seq_length));
    for (auto& m : batch.x) {
      m.resize(cfg.batch_size, cfg.input_size);
      tensor::fill_uniform(m.view(), rng, -1.0F, 1.0F);
    }
    batch.labels.resize(static_cast<std::size_t>(cfg.batch_size));
    for (auto& l : batch.labels) {
      l = static_cast<int>(
          rng.uniform_index(static_cast<std::uint64_t>(cfg.num_classes)));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

std::string weights_of(rnn::Network& net) {
  std::ostringstream os;
  net.save(os);
  return std::move(os).str();
}

/// Wraps the deterministic sequential executor and injects a fault chosen
/// by `plan` on each train_batch call: an exception before any work, a NaN
/// loss, or a NaN gradient element after the real pass.
class FaultyExecutor final : public exec::Executor {
 public:
  enum class Mode { kNone, kThrow, kNanLoss, kNanGrad };

  explicit FaultyExecutor(rnn::Network& net) : inner_(net) {}

  std::function<Mode()> plan;  // consulted once per train_batch call

  exec::StepResult train_batch(const BatchData& batch) override {
    const Mode mode = plan ? plan() : Mode::kNone;
    if (mode == Mode::kThrow) {
      throw taskrt::InjectedFault("injected executor failure");
    }
    auto result = inner_.train_batch(batch);
    if (mode == Mode::kNanLoss) {
      result.loss = std::numeric_limits<double>::quiet_NaN();
    }
    if (mode == Mode::kNanGrad) {
      inner_.grads().dw_out.at(0, 0) =
          std::numeric_limits<float>::quiet_NaN();
    }
    return result;
  }

  using exec::Executor::infer;
  exec::InferResult infer(const BatchData& batch,
                          const exec::InferOptions& options) override {
    return inner_.infer(batch, options);
  }

  rnn::NetworkGrads& grads() override { return inner_.grads(); }
  [[nodiscard]] const char* name() const override { return "faulty"; }

 private:
  exec::SequentialExecutor inner_;
};

// Fault-free reference trajectory: per-epoch losses and final weights.
struct Trajectory {
  std::vector<double> losses;
  std::string weights;
};

Trajectory reference_trajectory(const std::vector<BatchData>& batches,
                                int epochs) {
  const NetworkConfig cfg = small_config();
  rnn::Network net(cfg);
  exec::SequentialExecutor executor(net);
  train::Sgd optimizer({.learning_rate = 0.08F, .momentum = 0.9F});
  train::Trainer trainer(net, executor, optimizer);
  Trajectory traj;
  for (int e = 0; e < epochs; ++e) {
    traj.losses.push_back(trainer.train_epoch(batches).mean_loss);
  }
  traj.weights = weights_of(net);
  return traj;
}

// One retry with an untouched learning rate must reproduce the fault-free
// trajectory bit-exactly, whatever the fault flavor.
void expect_bit_exact_recovery(FaultyExecutor::Mode fault_mode) {
  const NetworkConfig cfg = small_config();
  const auto batches = make_batches(cfg, 4, 11);
  constexpr int kEpochs = 3;
  const Trajectory reference = reference_trajectory(batches, kEpochs);

  rnn::Network net(cfg);
  FaultyExecutor executor(net);
  train::Sgd optimizer({.learning_rate = 0.08F, .momentum = 0.9F});
  train::TrainerOptions topts;
  topts.max_retries = 2;
  train::Trainer trainer(net, executor, optimizer, topts);

  // Fault every 4th call; the immediate retry is clean.
  int calls = 0;
  int faults = 0;
  executor.plan = [&] {
    ++calls;
    if (calls % 4 == 2) {
      ++faults;
      return fault_mode;
    }
    return FaultyExecutor::Mode::kNone;
  };

  for (int e = 0; e < kEpochs; ++e) {
    const auto stats = trainer.train_epoch(batches);
    EXPECT_EQ(stats.mean_loss, reference.losses[static_cast<std::size_t>(e)])
        << "epoch " << e;
    EXPECT_GT(stats.retries, 0) << "epoch " << e;
  }
  EXPECT_GT(faults, 0);
  EXPECT_EQ(weights_of(net), reference.weights);
  EXPECT_FALSE(trainer.degraded());
}

TEST(Resilience, RetryAfterThrowIsBitExact) {
  expect_bit_exact_recovery(FaultyExecutor::Mode::kThrow);
}

TEST(Resilience, RetryAfterNanLossIsBitExact) {
  expect_bit_exact_recovery(FaultyExecutor::Mode::kNanLoss);
}

TEST(Resilience, RetryAfterNanGradIsBitExact) {
  expect_bit_exact_recovery(FaultyExecutor::Mode::kNanGrad);
}

TEST(Resilience, DegradesToFallbackExecutor) {
  const NetworkConfig cfg = small_config();
  const auto batches = make_batches(cfg, 3, 12);

  rnn::Network net(cfg);
  FaultyExecutor executor(net);
  executor.plan = [] { return FaultyExecutor::Mode::kThrow; };  // always
  exec::SequentialExecutor fallback(net);
  train::Sgd optimizer({.learning_rate = 0.05F});
  train::TrainerOptions topts;
  topts.max_retries = 1;
  topts.fallback = &fallback;
  train::Trainer trainer(net, executor, optimizer, topts);

  const auto stats = trainer.train_epoch(batches);
  EXPECT_TRUE(trainer.degraded());
  EXPECT_TRUE(std::isfinite(stats.mean_loss));
  EXPECT_GT(stats.mean_loss, 0.0);
  EXPECT_EQ(trainer.global_step(), 3U);
}

TEST(Resilience, ThrowsWhenRetriesExhaustedWithoutFallback) {
  const NetworkConfig cfg = small_config();
  const auto batches = make_batches(cfg, 2, 13);

  rnn::Network net(cfg);
  FaultyExecutor executor(net);
  executor.plan = [] { return FaultyExecutor::Mode::kThrow; };
  train::Sgd optimizer({.learning_rate = 0.05F});
  train::TrainerOptions topts;
  topts.max_retries = 2;
  train::Trainer trainer(net, executor, optimizer, topts);
  EXPECT_THROW(trainer.train_epoch(batches), util::Error);
}

TEST(Resilience, RepeatedFailureBacksOffLearningRate) {
  const NetworkConfig cfg = small_config();
  const auto batches = make_batches(cfg, 1, 14);

  rnn::Network net(cfg);
  FaultyExecutor executor(net);
  // Two consecutive failures of the same batch, then clean.
  int calls = 0;
  executor.plan = [&] {
    ++calls;
    return calls <= 2 ? FaultyExecutor::Mode::kThrow
                      : FaultyExecutor::Mode::kNone;
  };
  train::Sgd optimizer({.learning_rate = 0.08F});
  train::TrainerOptions topts;
  topts.max_retries = 3;
  topts.lr_backoff = 0.5F;
  train::Trainer trainer(net, executor, optimizer, topts);
  trainer.train_epoch(batches);
  // First retry keeps the rate; the second failure halves it once.
  EXPECT_FLOAT_EQ(optimizer.learning_rate(), 0.04F);
}

TEST(Resilience, TrainerClipsGlobalGradientNorm) {
  const NetworkConfig cfg = small_config();
  const auto batches = make_batches(cfg, 1, 15);

  rnn::Network net(cfg);
  exec::SequentialExecutor executor(net);
  train::Sgd optimizer({.learning_rate = 0.0F});  // isolate the clip
  train::TrainerOptions topts;
  topts.clip_norm = 1e-3F;
  train::Trainer trainer(net, executor, optimizer, topts);
  trainer.train_epoch(batches);
  EXPECT_LE(executor.grads().l2_norm(), 1e-3 * 1.001);
}

// The acceptance soak: >= 50 randomized faults — executor throws, NaN
// losses/gradients, torn checkpoint files — across a multi-epoch run. The
// final loss trajectory and weights must match the fault-free run
// bit-exactly, and checkpoint recovery must still find a good file.
TEST(Resilience, SoakRandomFaultsMatchFaultFreeTrajectory) {
  const NetworkConfig cfg = small_config();
  const auto batches = make_batches(cfg, 8, 16);
  constexpr int kEpochs = 50;
  const Trajectory reference = reference_trajectory(batches, kEpochs);

  const std::string prefix = ::testing::TempDir() + "/soak/run";
  std::filesystem::remove_all(::testing::TempDir() + "/soak");
  CheckpointManager manager(prefix, /*keep=*/4);

  // A Model owns the (net, optimizer) pair so checkpoints capture both;
  // the trainer drives the same objects through the faulty executor.
  Model model(cfg);
  model.set_optimizer(std::make_unique<train::Sgd>(
      train::Sgd::Config{.learning_rate = 0.08F, .momentum = 0.9F}));
  rnn::Network& net = model.network();
  FaultyExecutor executor(net);
  train::Optimizer& optimizer = model.optimizer();

  util::Rng rng(99);
  int faults = 0;
  bool last_was_fault = false;  // a retried call always runs clean, so the
                                // learning rate never backs off
  executor.plan = [&] {
    if (!last_was_fault && rng.uniform(0.0, 1.0) < 0.3) {
      last_was_fault = true;
      ++faults;
      switch (rng.uniform_index(3)) {
        case 0: return FaultyExecutor::Mode::kThrow;
        case 1: return FaultyExecutor::Mode::kNanLoss;
        default: return FaultyExecutor::Mode::kNanGrad;
      }
    }
    last_was_fault = false;
    return FaultyExecutor::Mode::kNone;
  };

  // Save a checkpoint every 7 committed batches and tear ~30% of them in
  // half — simulated crash mid-write.
  int torn = 0;
  util::Rng tear_rng(7);
  train::TrainerOptions topts;
  topts.max_retries = 2;
  topts.checkpoint_every = 7;
  topts.on_checkpoint = [&](std::uint64_t step) {
    const std::string path = manager.save(model, step);
    if (tear_rng.uniform(0.0, 1.0) < 0.3) {
      std::filesystem::resize_file(path,
                                   std::filesystem::file_size(path) / 2);
      ++torn;
    }
  };
  train::Trainer trainer(net, executor, optimizer, topts);

  double total_retries = 0;
  for (int e = 0; e < kEpochs; ++e) {
    const auto stats = trainer.train_epoch(batches);
    total_retries += stats.retries;
    ASSERT_EQ(stats.mean_loss,
              reference.losses[static_cast<std::size_t>(e)])
        << "epoch " << e;
  }

  EXPECT_GE(faults, 50) << "soak injected too few faults to be meaningful";
  EXPECT_GE(total_retries, 50.0);
  EXPECT_GE(torn, 5);
  EXPECT_EQ(weights_of(net), reference.weights);
  EXPECT_FALSE(trainer.degraded());

  // Checkpoint recovery survives the torn files: a final good save must be
  // what load_latest_good picks, reproducing the weights bit-exactly.
  manager.save(model, 999999);
  NetworkConfig other = cfg;
  other.seed = 1234;  // different init — must be overwritten by the load
  Model restored(other);
  const auto step = manager.load_latest_good(restored);
  ASSERT_TRUE(step.has_value());
  EXPECT_EQ(*step, 999999U);
  EXPECT_EQ(weights_of(restored.network()), weights_of(net));
}

}  // namespace
}  // namespace bpar
