// Live-observability exposition tests (DESIGN.md §5i): the Prometheus
// text renderer (golden output), the embedded StatsServer + http_get
// client (status codes, query strings, non-GET, handler exceptions), and
// the SLO tracker's burn-rate math against hand-computed fixtures.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/expo.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/stats_server.hpp"

namespace bpar::obs {
namespace {

TEST(PrometheusName, SanitizesAndPrefixes) {
  EXPECT_EQ(prometheus_name("serve.queue_us"), "bpar_serve_queue_us");
  EXPECT_EQ(prometheus_name("a-b c/d"), "bpar_a_b_c_d");
  EXPECT_EQ(prometheus_name("taskrt.steals"), "bpar_taskrt_steals");
}

// Golden rendering of one hand-built snapshot: counters first (with the
// "_total" convention), then gauges, then histograms with cumulative `le`
// buckets, _sum recovered from the tracked mean, and _count.
TEST(PrometheusText, GoldenSnapshotRendersExactly) {
  Registry::Snapshot snap;
  snap.counters["serve.requests"] = 42;
  snap.gauges["serve.queue_depth"] = 3.5;
  Registry::HistoSnapshot histo;
  histo.edges = {10.0, 20.0};
  histo.weights = {1.0, 2.0, 3.0};  // bins: (-inf,10) [10,20) [20,inf)
  histo.mean = 25.0;
  histo.total = 6.0;
  snap.histograms["serve.request_us"] = histo;

  const std::string expected =
      "# TYPE bpar_serve_requests_total counter\n"
      "bpar_serve_requests_total 42\n"
      "# TYPE bpar_serve_queue_depth gauge\n"
      "bpar_serve_queue_depth 3.5\n"
      "# TYPE bpar_serve_request_us histogram\n"
      "bpar_serve_request_us_bucket{le=\"10\"} 1\n"
      "bpar_serve_request_us_bucket{le=\"20\"} 3\n"
      "bpar_serve_request_us_bucket{le=\"+Inf\"} 6\n"
      "bpar_serve_request_us_sum 150\n"
      "bpar_serve_request_us_count 6\n";
  EXPECT_EQ(prometheus_text(snap), expected);
}

TEST(PrometheusText, SkipsMalformedHistogramAndSeries) {
  Registry::Snapshot snap;
  Registry::HistoSnapshot bad;
  bad.edges = {10.0, 20.0};
  bad.weights = {1.0};  // wrong arity: edges changed mid-snapshot
  snap.histograms["serve.bad"] = bad;
  snap.series["serve.some_series"] = {1.0, 2.0, 3.0};
  EXPECT_EQ(prometheus_text(snap), "");
}

// Ring-mode series are windows, not scalars, so the full series never
// exports — but the newest value is a perfectly good gauge (a sampled
// .rate series' latest rate IS the live rate).
TEST(PrometheusText, RingSeriesExportLatestValueAsGauge) {
  Registry::Snapshot snap;
  snap.ring_last["serve.requests.rate"] = 12.5;
  const std::string expected =
      "# TYPE bpar_serve_requests_rate gauge\n"
      "bpar_serve_requests_rate 12.5\n";
  EXPECT_EQ(prometheus_text(snap), expected);
}

TEST(Registry, SnapshotCapturesRingLastWithoutFullSeries) {
  auto& registry = Registry::instance();
  auto& series = registry.ring_series("test_expo.ring_last", /*capacity=*/4);
  series.append(1.0);
  series.append(7.25);
  const auto snap = registry.snapshot(/*include_series=*/false);
  ASSERT_TRUE(snap.series.empty());
  const auto it = snap.ring_last.find("test_expo.ring_last");
  ASSERT_NE(it, snap.ring_last.end());
  EXPECT_DOUBLE_EQ(it->second, 7.25);
}

/// Raw one-shot HTTP exchange so the suite can send non-GET methods the
/// http_get() client deliberately cannot produce. Returns the status code
/// (0 on transport failure).
int raw_request_status(int port, const std::string& head) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return 0;
  }
  (void)!::send(fd, head.data(), head.size(), 0);
  std::string reply;
  char buf[512];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
    if (reply.find("\r\n") != std::string::npos) break;
  }
  ::close(fd);
  if (reply.rfind("HTTP/1.1 ", 0) != 0) return 0;
  return std::atoi(reply.c_str() + 9);
}

TEST(StatsServer, RoutesStatusCodesAndSurvivesThrowingHandler) {
  StatsServer server;
  server.handle("/ping", [](std::string_view) {
    HttpResponse r;
    r.body = "pong\n";
    return r;
  });
  server.handle("/boom", [](std::string_view) -> HttpResponse {
    throw std::runtime_error("handler exploded");
  });
  ASSERT_TRUE(server.start(0));  // ephemeral port
  const int port = server.port();
  ASSERT_GT(port, 0);
  EXPECT_TRUE(server.running());

  const auto ping =
      http_get("127.0.0.1", static_cast<std::uint16_t>(port), "/ping");
  ASSERT_TRUE(ping.ok) << ping.error;
  EXPECT_EQ(ping.status, 200);
  EXPECT_EQ(ping.body, "pong\n");

  // Query strings are stripped before path matching.
  const auto query = http_get("127.0.0.1", static_cast<std::uint16_t>(port),
                              "/ping?verbose=1");
  ASSERT_TRUE(query.ok) << query.error;
  EXPECT_EQ(query.status, 200);

  const auto missing =
      http_get("127.0.0.1", static_cast<std::uint16_t>(port), "/nope");
  ASSERT_TRUE(missing.ok) << missing.error;
  EXPECT_EQ(missing.status, 404);

  // A throwing handler maps to 500; the accept loop must survive it.
  const auto boom =
      http_get("127.0.0.1", static_cast<std::uint16_t>(port), "/boom");
  ASSERT_TRUE(boom.ok) << boom.error;
  EXPECT_EQ(boom.status, 500);

  EXPECT_EQ(raw_request_status(
                port, "POST /ping HTTP/1.1\r\nHost: t\r\n\r\n"),
            405);

  // Still serving after the error paths.
  const auto again =
      http_get("127.0.0.1", static_cast<std::uint16_t>(port), "/ping");
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.status, 200);

  server.stop();
  EXPECT_FALSE(server.running());
  const auto after =
      http_get("127.0.0.1", static_cast<std::uint16_t>(port), "/ping");
  EXPECT_FALSE(after.ok && after.status == 200);
}

// Handlers receive the query string (path-only matching still applies),
// which is what /profilez?seconds=N and /debug/dump?reason=x are built on.
TEST(StatsServer, HandlerReceivesQueryString) {
  StatsServer server;
  server.handle("/echo", [](std::string_view query) {
    HttpResponse r;
    r.body = std::string(query);
    return r;
  });
  ASSERT_TRUE(server.start(0));
  const int port = server.port();

  const auto bare =
      http_get("127.0.0.1", static_cast<std::uint16_t>(port), "/echo");
  ASSERT_TRUE(bare.ok) << bare.error;
  EXPECT_EQ(bare.body, "");

  const auto with_query = http_get(
      "127.0.0.1", static_cast<std::uint16_t>(port), "/echo?a=1&b=two");
  ASSERT_TRUE(with_query.ok) << with_query.error;
  EXPECT_EQ(with_query.status, 200);
  EXPECT_EQ(with_query.body, "a=1&b=two");
  server.stop();
}

// http_get resolves hostnames through getaddrinfo, not just dotted quads —
// `bpar_top --host somebox` must work with DNS names. "localhost" is the
// one name every test environment can resolve.
TEST(StatsServer, HttpGetResolvesHostnames) {
  StatsServer server;
  server.handle("/ping", [](std::string_view) {
    HttpResponse r;
    r.body = "pong\n";
    return r;
  });
  ASSERT_TRUE(server.start(0));
  const auto reply = http_get("localhost",
                              static_cast<std::uint16_t>(server.port()),
                              "/ping");
  ASSERT_TRUE(reply.ok) << reply.error;
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.body, "pong\n");

  const auto bogus = http_get("no-such-host.invalid", 1, "/");
  EXPECT_FALSE(bogus.ok);
  EXPECT_NE(bogus.error.find("resolve"), std::string::npos) << bogus.error;
  server.stop();
}

// Hand-computed fixture: objective 0.99 leaves a 1% budget. 90 ok + 10
// errors inside both windows is a 10% error ratio = burn 10x, and the 10
// lifetime errors consume 10x the lifetime budget of 1 request.
TEST(SloTracker, BurnRateMatchesHandComputedFixture) {
  SloOptions opts;
  opts.availability_objective = 0.99;
  opts.short_window_s = 10;
  opts.long_window_s = 60;
  opts.alert_burn_threshold = 5.0;
  SloTracker slo(opts);

  const std::uint64_t kSecond = 1'000'000'000ULL;
  const std::uint64_t base = 1000 * kSecond;
  for (int i = 0; i < 90; ++i) slo.record_at(base, true, 1000.0);
  for (int i = 0; i < 10; ++i) slo.record_at(base, false, 0.0);

  const auto snap = slo.snapshot_at(base);
  EXPECT_EQ(snap.eligible, 100U);
  EXPECT_EQ(snap.errors, 10U);
  EXPECT_DOUBLE_EQ(snap.availability, 0.9);
  EXPECT_NEAR(snap.budget_consumed, 10.0, 1e-9);
  EXPECT_NEAR(snap.burn_short, 10.0, 1e-9);
  EXPECT_NEAR(snap.burn_long, 10.0, 1e-9);
  EXPECT_TRUE(snap.alerting);  // both windows over the 5x threshold
}

// Multi-window guard: an incident that ended 55 seconds ago still burns
// the long window but not the short one — that must NOT alert (that is
// the entire point of requiring both windows).
TEST(SloTracker, StaleIncidentDoesNotAlertOnLongWindowAlone) {
  SloOptions opts;
  opts.availability_objective = 0.99;
  opts.short_window_s = 10;
  opts.long_window_s = 60;
  opts.alert_burn_threshold = 4.0;
  SloTracker slo(opts);

  const std::uint64_t kSecond = 1'000'000'000ULL;
  for (int i = 0; i < 90; ++i) slo.record_at(1000 * kSecond, true, 1000.0);
  for (int i = 0; i < 10; ++i) slo.record_at(1000 * kSecond, false, 0.0);
  for (int i = 0; i < 100; ++i) slo.record_at(1055 * kSecond, true, 1000.0);

  const auto snap = slo.snapshot_at(1055 * kSecond);
  // Short window [1046..1055]: 100 ok, 0 errors. Long window [996..1055]:
  // 10 errors over 200 eligible = 5% ratio = burn 5x.
  EXPECT_DOUBLE_EQ(snap.burn_short, 0.0);
  EXPECT_NEAR(snap.burn_long, 5.0, 1e-9);
  EXPECT_FALSE(snap.alerting);
}

TEST(SloTracker, LatencyAttainmentCountsOnlyOkOverTarget) {
  SloOptions opts;
  opts.latency_target_us = 50'000.0;
  SloTracker slo(opts);

  const std::uint64_t base = 1'000'000'000ULL;
  for (int i = 0; i < 89; ++i) slo.record_at(base, true, 1'000.0);
  slo.record_at(base, true, 60'000.0);   // ok but over the target
  slo.record_at(base, false, 999'999.0); // error latency never counted

  const auto snap = slo.snapshot_at(base);
  EXPECT_EQ(snap.latency_misses, 1U);
  EXPECT_DOUBLE_EQ(snap.latency_attainment, 89.0 / 90.0);
}

TEST(SloTracker, NoTrafficReportsHealthy) {
  SloTracker slo;
  const auto snap = slo.snapshot_at(5'000'000'000ULL);
  EXPECT_EQ(snap.eligible, 0U);
  EXPECT_DOUBLE_EQ(snap.availability, 1.0);
  EXPECT_DOUBLE_EQ(snap.latency_attainment, 1.0);
  EXPECT_DOUBLE_EQ(snap.budget_consumed, 0.0);
  EXPECT_DOUBLE_EQ(snap.burn_short, 0.0);
  EXPECT_DOUBLE_EQ(snap.burn_long, 0.0);
  EXPECT_FALSE(snap.alerting);
}

// Ring-bucket recycling: a second that maps onto the same slot
// long_window_s later must evict the stale contents, not add to them.
TEST(SloTracker, BucketRingRecyclesSlotsAcrossTheLongWindow) {
  SloOptions opts;
  opts.availability_objective = 0.99;
  opts.short_window_s = 5;
  opts.long_window_s = 10;
  SloTracker slo(opts);

  const std::uint64_t kSecond = 1'000'000'000ULL;
  // Second 100 -> slot 0 with errors; second 110 -> the SAME slot.
  for (int i = 0; i < 10; ++i) slo.record_at(100 * kSecond, false, 0.0);
  for (int i = 0; i < 10; ++i) slo.record_at(110 * kSecond, true, 1000.0);

  const auto snap = slo.snapshot_at(110 * kSecond);
  // Window [101..110] holds only the 10 ok observations: the stale errors
  // were recycled out even though lifetime errors_ still counts them.
  EXPECT_DOUBLE_EQ(snap.burn_short, 0.0);
  EXPECT_DOUBLE_EQ(snap.burn_long, 0.0);
  EXPECT_EQ(snap.errors, 10U);
}

}  // namespace
}  // namespace bpar::obs
