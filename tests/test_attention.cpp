// Attention-extension tests: forward invariants, finite-difference
// gradients through the full attention backward, task-graph execution
// equivalence (parallel == sequential creation order), and end-to-end
// training convergence of the attention classifier on the task runtime.
#include <gtest/gtest.h>

#include <cmath>

#include "attn/attention.hpp"
#include "attn/attention_graph.hpp"
#include "taskrt/runtime.hpp"
#include "util/rng.hpp"

namespace bpar::attn {
namespace {

using tensor::Matrix;

Matrix random_sequence(int seq, int dim, util::Rng& rng) {
  Matrix m(seq, dim);
  tensor::fill_uniform(m.view(), rng, -1.0F, 1.0F);
  return m;
}

TEST(AttentionForward, ScoresAreRowStochastic) {
  util::Rng rng(1);
  AttentionParams params;
  params.init(6, rng);
  const Matrix x = random_sequence(5, 6, rng);
  AttentionTape tape;
  tape.init(5, 6);
  attention_forward(params, x.cview(), tape);
  for (int i = 0; i < 5; ++i) {
    double sum = 0.0;
    for (int j = 0; j < 5; ++j) {
      EXPECT_GE(tape.scores.at(i, j), 0.0F);
      sum += static_cast<double>(tape.scores.at(i, j));
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(AttentionForward, ResidualPreservesInputWithZeroWeights) {
  util::Rng rng(2);
  AttentionParams params;
  params.init(4, rng);
  params.wv.zero();  // V = 0 → S V = 0 → Y = X exactly
  const Matrix x = random_sequence(3, 4, rng);
  AttentionTape tape;
  tape.init(3, 4);
  attention_forward(params, x.cview(), tape);
  EXPECT_TRUE(tensor::allclose(tape.y.cview(), x.cview(), 1e-6F, 0.0F));
}

TEST(AttentionForward, UniformScoresWhenQueryKeysZero) {
  util::Rng rng(3);
  AttentionParams params;
  params.init(4, rng);
  params.wq.zero();  // Q = 0 → all logits 0 → uniform attention
  const Matrix x = random_sequence(6, 4, rng);
  AttentionTape tape;
  tape.init(6, 4);
  attention_forward(params, x.cview(), tape);
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      EXPECT_NEAR(tape.scores.at(i, j), 1.0F / 6.0F, 1e-5F);
    }
  }
}

class MultiHead : public ::testing::TestWithParam<int> {};

TEST_P(MultiHead, BackwardMatchesFiniteDifferences) {
  const int heads = GetParam();
  util::Rng rng(4);
  constexpr int kSeq = 4;
  const int kDim = 6;  // divisible by 1, 2, 3, 6
  AttentionParams params;
  params.init(kDim, rng, heads);
  Matrix x = random_sequence(kSeq, kDim, rng);

  // Objective: L = sum(Y) → dY = 1.
  auto loss_of = [&]() {
    AttentionTape t;
    t.init(kSeq, kDim, heads);
    attention_forward(params, x.cview(), t);
    return tensor::sum(t.y.cview());
  };

  AttentionTape tape;
  tape.init(kSeq, kDim, heads);
  attention_forward(params, x.cview(), tape);
  Matrix dy(kSeq, kDim);
  tensor::fill_constant(dy.view(), 1.0F);
  Matrix dx(kSeq, kDim);
  AttentionGrads grads;
  grads.init_like(params);
  attention_backward(params, x.cview(), tape, dy.cview(), dx.view(), grads);

  const float eps = 1e-2F;
  auto check = [&](float& slot, float analytic, const char* what) {
    const float saved = slot;
    slot = saved + eps;
    const double plus = loss_of();
    slot = saved - eps;
    const double minus = loss_of();
    slot = saved;
    const double numeric = (plus - minus) / (2.0 * static_cast<double>(eps));
    const double denom = std::max(
        {std::abs(numeric), std::abs(static_cast<double>(analytic)), 1e-3});
    EXPECT_LT(std::abs(numeric - static_cast<double>(analytic)) / denom,
              0.05)
        << what << ": analytic " << analytic << " numeric " << numeric;
  };

  for (int i = 0; i < 10; ++i) {
    const int r = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(kDim)));
    const int c = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(kDim)));
    check(params.wq.at(r, c), grads.dwq.at(r, c), "wq");
    check(params.wk.at(r, c), grads.dwk.at(r, c), "wk");
    check(params.wv.at(r, c), grads.dwv.at(r, c), "wv");
  }
  for (int i = 0; i < 6; ++i) {
    const int r = static_cast<int>(rng.uniform_index(kSeq));
    const int c = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(kDim)));
    check(x.at(r, c), dx.at(r, c), "x");
  }
}

INSTANTIATE_TEST_SUITE_P(Heads, MultiHead, ::testing::Values(1, 2, 3, 6),
                         [](const auto& info) {
                           return "h" + std::to_string(info.param);
                         });

TEST(MultiHeadForward, EachHeadRowStochastic) {
  util::Rng rng(12);
  AttentionParams params;
  params.init(8, rng, 4);
  Matrix x = random_sequence(5, 8, rng);
  AttentionTape tape;
  tape.init(5, 8, 4);
  attention_forward(params, x.cview(), tape);
  ASSERT_EQ(tape.scores.rows(), 4 * 5);
  for (int r = 0; r < tape.scores.rows(); ++r) {
    double sum = 0.0;
    for (int c = 0; c < 5; ++c) sum += static_cast<double>(tape.scores.at(r, c));
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(MultiHeadForward, HeadCountMustDivideDim) {
  util::Rng rng(13);
  AttentionParams params;
  EXPECT_DEATH(params.init(10, rng, 4), "heads");
}

std::vector<Matrix> toy_sequences(const AttentionModelConfig& cfg, int count,
                                  std::vector<int>& labels,
                                  std::uint64_t seed) {
  // Learnable task: the label is the channel block with the largest mean.
  util::Rng rng(seed);
  std::vector<Matrix> sequences;
  labels.clear();
  for (int s = 0; s < count; ++s) {
    const int label = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(cfg.num_classes)));
    labels.push_back(label);
    Matrix x(cfg.seq_length, cfg.dim);
    for (int t = 0; t < cfg.seq_length; ++t) {
      for (int d = 0; d < cfg.dim; ++d) {
        const double boost = d % cfg.num_classes == label ? 0.9 : 0.0;
        x.at(t, d) = static_cast<float>(boost + rng.normal(0.0, 0.3));
      }
    }
    sequences.push_back(std::move(x));
  }
  return sequences;
}

TEST(AttentionProgram, ParallelExecutionMatchesSequentialOrder) {
  AttentionModelConfig cfg;
  cfg.dim = 8;
  cfg.seq_length = 5;
  cfg.num_classes = 3;
  std::vector<int> labels;
  const auto sequences = toy_sequences(cfg, 12, labels, 9);

  auto run = [&](int workers) {
    AttentionModel model(cfg);
    AttentionProgram program(model, 12, /*training=*/true);
    program.load(sequences, labels);
    program.prepare();
    taskrt::Runtime rt({.num_workers = workers});
    rt.run(program.graph());
    return std::pair<double, double>{program.loss(),
                                     program.grads().attention.l2_norm()};
  };
  const auto [loss1, norm1] = run(1);
  const auto [loss4, norm4] = run(4);
  EXPECT_EQ(loss1, loss4);
  EXPECT_EQ(norm1, norm4);
  EXPECT_GT(loss1, 0.0);
  EXPECT_GT(norm1, 0.0);
}

TEST(AttentionProgram, TrainingConvergesOnToyTask) {
  AttentionModelConfig cfg;
  cfg.dim = 12;
  cfg.seq_length = 6;
  cfg.num_classes = 3;
  AttentionModel model(cfg);
  std::vector<int> labels;
  const auto sequences = toy_sequences(cfg, 24, labels, 10);

  AttentionProgram program(model, 24, /*training=*/true);
  program.load(sequences, labels);
  taskrt::Runtime rt(
      {.num_workers = 4, .policy = taskrt::SchedulerPolicy::kLocalityAware});
  double first = 0.0;
  double last = 0.0;
  for (int step = 0; step < 40; ++step) {
    program.prepare();
    rt.run(program.graph());
    apply_sgd(model, program.grads(), 0.5F);
    if (step == 0) first = program.loss();
    last = program.loss();
  }
  EXPECT_LT(last, first * 0.6);

  // Post-training accuracy well above chance.
  int correct = 0;
  for (int s = 0; s < 24; ++s) {
    if (program.prediction(s) == labels[static_cast<std::size_t>(s)]) {
      ++correct;
    }
  }
  EXPECT_GT(correct, 12);
}

TEST(AttentionProgram, InferenceGraphHasNoBackwardTasks) {
  AttentionModelConfig cfg;
  AttentionModel model(cfg);
  AttentionProgram train(model, 4, /*training=*/true);
  AttentionProgram infer(model, 4, /*training=*/false);
  EXPECT_GT(train.graph().size(), infer.graph().size());
  // 4 fwd + 4 head + 1 reduce.
  EXPECT_EQ(infer.graph().size(), 9U);
  EXPECT_EQ(train.graph().size(), 13U);
}

TEST(AttentionFlops, GrowsQuadraticallyWithSequence) {
  const double short_seq = attention_forward_flops(8, 32);
  const double long_seq = attention_forward_flops(16, 32);
  // Projections are linear in T, score/context quadratic.
  EXPECT_GT(long_seq, short_seq * 2.0);
  EXPECT_LT(long_seq, short_seq * 4.0);
}

}  // namespace
}  // namespace bpar::attn
