// int8 quantization tests: round-trip error bounds, quantized GEMM vs fp32,
// and end-to-end int8-vs-fp32 inference parity on synthetic TIDIGITS
// (DESIGN.md §5g).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "data/tidigits.hpp"
#include "exec/bpar_executor.hpp"
#include "kernels/gemm.hpp"
#include "kernels/quant.hpp"
#include "rnn/quantized.hpp"
#include "serve/engine.hpp"
#include "train/optimizer.hpp"
#include "util/rng.hpp"

namespace bpar {
namespace {

using kernels::QuantizedMatrix;
using tensor::Matrix;

Matrix random_matrix(int rows, int cols, util::Rng& rng, float lo = -1.0F,
                     float hi = 1.0F) {
  Matrix m(rows, cols);
  tensor::fill_uniform(m.view(), rng, lo, hi);
  return m;
}

TEST(Quantize, RoundTripErrorBoundedByHalfStep) {
  util::Rng rng(1);
  const Matrix w = random_matrix(13, 37, rng, -2.5F, 2.5F);
  for (const bool per_channel : {true, false}) {
    QuantizedMatrix q;
    q.quantize_from(w.cview(), per_channel);
    const kernels::QuantView v = q.view();
    for (int r = 0; r < w.rows(); ++r) {
      const float scale = v.scales[r];
      ASSERT_GT(scale, 0.0F);
      for (int c = 0; c < w.cols(); ++c) {
        const float deq = static_cast<float>(v.row(r)[c]) * scale;
        EXPECT_LE(std::abs(deq - w.at(r, c)), 0.5F * scale + 1e-6F)
            << (per_channel ? "per-channel" : "per-tensor") << " (" << r
            << "," << c << ")";
      }
    }
  }
}

TEST(Quantize, ZeroRowsQuantizeToExactZeros) {
  Matrix w(3, 8);  // all zeros
  w.at(1, 2) = 0.75F;
  QuantizedMatrix q;
  q.quantize_from(w.cview());
  const kernels::QuantView v = q.view();
  EXPECT_EQ(v.scales[0], 0.0F);
  EXPECT_EQ(v.scales[2], 0.0F);
  for (int c = 0; c < 8; ++c) {
    EXPECT_EQ(v.row(0)[c], 0);
    EXPECT_EQ(v.row(2)[c], 0);
  }
  EXPECT_GT(v.scales[1], 0.0F);
}

TEST(Quantize, QgemmMatchesFp32WithinQuantizationError) {
  util::Rng rng(2);
  const int m = 9, n = 21, k = 64;
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(n, k, rng);
  QuantizedMatrix qb;
  qb.quantize_from(b.cview());

  Matrix want(m, n);
  kernels::gemm_nt(a.cview(), b.cview(), want.view());
  Matrix got(m, n);
  kernels::qgemm_nt(a.cview(), qb.view(), got.view());

  // Analytic worst case: k * (sa*|b|max + sb*|a|max) / 2 with values in
  // [-1, 1] and scales ~ 1/127 → ~k/127. Random signs keep the observed
  // error far below it; pin both a hard bound and a mean bound.
  const float hard = static_cast<float>(k) / 64.0F;
  double total = 0.0;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      const float diff = std::abs(got.at(i, j) - want.at(i, j));
      EXPECT_LE(diff, hard) << "(" << i << "," << j << ")";
      total += static_cast<double>(diff);
    }
  }
  EXPECT_LE(total / (m * n), 0.05);
}

TEST(Quantize, QgemmBetaOneAccumulatesAndBlocksSlice) {
  util::Rng rng(3);
  const int m = 6, k1 = 10, k2 = 14, n = 12;
  // Fused weight layout [B1 | B2] like an RNN's [x | h_prev] columns.
  const Matrix b = random_matrix(n, k1 + k2, rng);
  const Matrix a1 = random_matrix(m, k1, rng);
  const Matrix a2 = random_matrix(m, k2, rng);
  QuantizedMatrix qb;
  qb.quantize_from(b.cview());

  Matrix want(m, n);
  kernels::gemm_nt(a1.cview(), b.cview().block(0, 0, n, k1), want.view());
  kernels::gemm_nt(a2.cview(), b.cview().block(0, k1, n, k2), want.view(),
                   1.0F, 1.0F);

  Matrix got(m, n);
  kernels::qgemm_nt(a1.cview(), qb.view().block(0, 0, n, k1), got.view());
  kernels::qgemm_nt(a2.cview(), qb.view().block(0, k1, n, k2), got.view(),
                    1.0F);

  EXPECT_LT(tensor::max_abs_diff(got.cview(), want.cview()), 0.5F);
  double total = 0.0;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      total += static_cast<double>(std::abs(got.at(i, j) - want.at(i, j)));
    }
  }
  EXPECT_LE(total / (m * n), 0.05);
}

// --------------------------------------------------------------------------
// End-to-end: int8 inference must agree with fp32 on a trained model.
// --------------------------------------------------------------------------

rnn::NetworkConfig tidigits_config(rnn::CellType cell) {
  rnn::NetworkConfig cfg;
  cfg.cell = cell;
  cfg.input_size = 16;
  cfg.hidden_size = 16;
  cfg.num_layers = 2;
  cfg.seq_length = 12;
  cfg.batch_size = 16;
  cfg.num_classes = data::kTidigitsClasses;
  cfg.seed = 7;
  return cfg;
}

std::vector<rnn::BatchData> tidigits_batches(const rnn::NetworkConfig& cfg) {
  data::TidigitsConfig dc;
  dc.feature_dim = cfg.input_size;
  dc.seq_length = cfg.seq_length;
  dc.num_utterances = 64;
  dc.seed = 99;
  data::TidigitsCorpus corpus(dc);
  return corpus.make_batches(cfg.batch_size);
}

void train_briefly(rnn::Network& net, const std::vector<rnn::BatchData>& data,
                   int epochs) {
  exec::BParExecutor trainer(net, {.common = {.num_workers = 2}});
  train::Sgd sgd({.learning_rate = 0.2F});
  for (int e = 0; e < epochs; ++e) {
    for (const auto& batch : data) {
      (void)trainer.train_batch(batch);
      sgd.step(net, trainer.grads());
    }
  }
}

struct ParityStats {
  double argmax_agreement = 1.0;
  float max_logit_diff = 0.0F;
  float max_logit_mag = 0.0F;
};

ParityStats infer_parity(rnn::Network& net,
                         const std::vector<rnn::BatchData>& data) {
  exec::BParExecutor fp32(net, {.common = {.num_workers = 2}});
  exec::BParExecutor int8(net, {.common = {.num_workers = 2},
                                .quantized_inference = true});
  int agree = 0, total = 0;
  ParityStats stats;
  for (const auto& batch : data) {
    const auto a = fp32.infer(batch, {.want_logits = true});
    const auto b = int8.infer(batch, {.want_logits = true});
    EXPECT_EQ(a.predictions.size(), b.predictions.size());
    for (std::size_t i = 0; i < a.predictions.size(); ++i) {
      agree += a.predictions[i] == b.predictions[i] ? 1 : 0;
      ++total;
    }
    EXPECT_EQ(a.logits.size(), b.logits.size());
    for (std::size_t i = 0; i < a.logits.size(); ++i) {
      stats.max_logit_diff =
          std::max(stats.max_logit_diff, std::abs(a.logits[i] - b.logits[i]));
      stats.max_logit_mag = std::max(stats.max_logit_mag,
                                     std::abs(a.logits[i]));
    }
  }
  stats.argmax_agreement =
      total == 0 ? 1.0 : static_cast<double>(agree) / total;
  return stats;
}

class QuantizedInference
    : public ::testing::TestWithParam<rnn::CellType> {};

TEST_P(QuantizedInference, MatchesFp32OnTrainedTidigits) {
  const rnn::NetworkConfig cfg = tidigits_config(GetParam());
  rnn::Network net(cfg);
  const auto data = tidigits_batches(cfg);
  ASSERT_FALSE(data.empty());
  train_briefly(net, data, 3);

  const ParityStats stats = infer_parity(net, data);
  // Per-channel int8 weights keep argmax agreement high and logit drift a
  // small fraction of the logit range on this task.
  EXPECT_GE(stats.argmax_agreement, 0.9);
  EXPECT_GT(stats.max_logit_mag, 0.0F);
  EXPECT_LE(stats.max_logit_diff,
            std::max(0.25F, 0.15F * stats.max_logit_mag));
}

INSTANTIATE_TEST_SUITE_P(Cells, QuantizedInference,
                         ::testing::Values(rnn::CellType::kLstm,
                                           rnn::CellType::kGru));

TEST(QuantizedInference, RefreshTracksWeightUpdates) {
  const rnn::NetworkConfig cfg = tidigits_config(rnn::CellType::kGru);
  rnn::Network net(cfg);
  const auto data = tidigits_batches(cfg);
  exec::BParExecutor int8(net, {.common = {.num_workers = 2},
                                .quantized_inference = true});
  const auto before = int8.infer(data.front(), {.want_logits = true});

  // Mutate the classifier: without refresh the sidecar would still serve
  // the stale int8 copy.
  for (int r = 0; r < net.w_out.rows(); ++r) {
    for (int c = 0; c < net.w_out.cols(); ++c) {
      net.w_out.at(r, c) = -net.w_out.at(r, c);
    }
  }
  int8.refresh_quantized_weights();
  const auto after = int8.infer(data.front(), {.want_logits = true});
  ASSERT_EQ(before.logits.size(), after.logits.size());
  float max_diff = 0.0F;
  for (std::size_t i = 0; i < before.logits.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(before.logits[i] - after.logits[i]));
  }
  EXPECT_GT(max_diff, 1e-3F);  // negated weights must change the logits
}

TEST(QuantizedInference, ServingEngineServesInt8) {
  const rnn::NetworkConfig cfg = tidigits_config(rnn::CellType::kLstm);
  rnn::Network trained(cfg);
  const auto data = tidigits_batches(cfg);
  train_briefly(trained, data, 1);

  serve::EngineOptions options;
  options.executor.num_workers = 2;
  options.quantized = true;
  serve::InferenceEngine engine(cfg, options);
  // Install the trained weights through the save/load path (as a serving
  // deployment would) before any request builds the int8 sidecar.
  std::stringstream weights;
  trained.save(weights);
  engine.network().load(weights);

  serve::Request request;
  request.steps = cfg.seq_length;
  request.features.resize(static_cast<std::size_t>(cfg.seq_length) *
                          cfg.input_size);
  const auto& x0 = data.front().x;
  for (int t = 0; t < cfg.seq_length; ++t) {
    for (int f = 0; f < cfg.input_size; ++f) {
      request.features[static_cast<std::size_t>(t) * cfg.input_size + f] =
          x0[static_cast<std::size_t>(t)].at(0, f);
    }
  }
  request.want_logits = true;
  const serve::Response response = engine.infer(std::move(request));
  EXPECT_EQ(response.status, serve::Status::kOk);
  ASSERT_EQ(response.predictions.size(), 1U);

  // Must match the plain quantized executor on the same single row.
  exec::BParExecutor int8(trained, {.quantized_inference = true});
  rnn::BatchData one;
  one.x.resize(static_cast<std::size_t>(cfg.seq_length));
  for (int t = 0; t < cfg.seq_length; ++t) {
    auto& m = one.x[static_cast<std::size_t>(t)];
    m.resize(1, cfg.input_size);
    for (int f = 0; f < cfg.input_size; ++f) {
      m.at(0, f) = x0[static_cast<std::size_t>(t)].at(0, f);
    }
  }
  one.labels = {data.front().labels.front()};
  const auto direct = int8.infer(one, {.want_logits = true});
  EXPECT_EQ(response.predictions[0], direct.predictions[0]);
  engine.shutdown();
}

}  // namespace
}  // namespace bpar
