// Property-based (randomized) tests over the task runtime and simulator:
// for fuzzed dependency graphs,
//  * the threaded runtime must never execute a task before a predecessor
//    (checked with logical completion clocks),
//  * the simulator's makespan must respect lower bounds (critical-path
//    cost, total-work/cores) and the serial upper bound,
//  * both scheduler policies and the simulator must execute exactly the
//    same task set.
#include <gtest/gtest.h>

#include <atomic>

#include "sim/simulator.hpp"
#include "taskrt/runtime.hpp"
#include "util/rng.hpp"

namespace bpar::taskrt {
namespace {

struct FuzzGraph {
  TaskGraph graph;
  // Addresses: a pool of integer cells tasks read/write.
  std::vector<int> cells;
};

// Builds a random graph of `n` tasks over `n_cells` addresses with random
// access modes. Each task records a logical timestamp when it runs;
// the validation lambda checks every predecessor finished first.
struct FuzzRun {
  std::unique_ptr<FuzzGraph> fg = std::make_unique<FuzzGraph>();
  std::vector<std::atomic<int>> done;  // logical clock per task
  std::atomic<int> clock{0};
  std::atomic<bool> violation{false};

  explicit FuzzRun(int n, int n_cells, std::uint64_t seed)
      : done(static_cast<std::size_t>(n)) {
    fg->cells.assign(static_cast<std::size_t>(n_cells), 0);
    util::Rng rng(seed);
    for (int i = 0; i < n; ++i) {
      std::vector<Access> acc;
      const int n_access = 1 + static_cast<int>(rng.uniform_index(3));
      for (int a = 0; a < n_access; ++a) {
        const auto cell = rng.uniform_index(
            static_cast<std::uint64_t>(n_cells));
        const auto mode = rng.uniform_index(3);
        const void* addr = &fg->cells[cell];
        if (mode == 0) {
          acc.push_back(in(addr));
        } else if (mode == 1) {
          acc.push_back(out(addr));
        } else {
          acc.push_back(inout(addr));
        }
      }
      // Capture the graph pointer (stable) and this run's state.
      FuzzGraph* fgp = fg.get();
      auto* self = this;
      const TaskId id = static_cast<TaskId>(fg->graph.size());
      fg->graph.add(
          [self, fgp, id] {
            // Every predecessor must have completed (non-zero clock).
            for (TaskId pred = 0; pred < fgp->graph.size(); ++pred) {
              for (const TaskId succ : fgp->graph.task(pred).successors) {
                if (succ == id &&
                    self->done[pred].load(std::memory_order_acquire) == 0) {
                  self->violation = true;
                }
              }
            }
            self->done[id].store(
                1 + self->clock.fetch_add(1, std::memory_order_acq_rel),
                std::memory_order_release);
          },
          std::span<const Access>(acc.data(), acc.size()));
    }
  }
};

class FuzzedGraphs
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(FuzzedGraphs, RuntimeNeverViolatesDependencies) {
  const auto [seed, workers] = GetParam();
  for (const auto policy :
       {SchedulerPolicy::kFifo, SchedulerPolicy::kLocalityAware}) {
    FuzzRun fuzz(120, 10, seed);
    Runtime rt({.num_workers = workers, .policy = policy});
    const RunStats stats = rt.run(fuzz.fg->graph);
    EXPECT_EQ(stats.tasks_executed, 120U);
    EXPECT_FALSE(fuzz.violation.load())
        << "policy " << scheduler_policy_name(policy);
    for (const auto& d : fuzz.done) EXPECT_GT(d.load(), 0);
  }
}

TEST_P(FuzzedGraphs, SimulatorMakespanRespectsBounds) {
  const auto [seed, cores] = GetParam();
  FuzzRun fuzz(150, 8, seed);
  const TaskGraph& g = fuzz.fg->graph;
  util::Rng rng(seed ^ 0xabcdULL);
  std::vector<std::uint64_t> costs;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    costs.push_back(1000 + rng.uniform_index(100000));
    total += costs.back();
  }
  const std::uint64_t critical = g.critical_path_cost(costs);

  for (const auto policy :
       {SchedulerPolicy::kFifo, SchedulerPolicy::kLocalityAware}) {
    sim::MachineModel ideal;
    ideal.dispatch_overhead_ns = 0.0;
    ideal.numa_remote_penalty = 1.0;
    ideal.cache_hot_discount = 1.0;
    sim::Simulator simulator(
        {.machine = ideal, .policy = policy, .cores = cores});
    const auto result = simulator.run(g, costs);
    const double makespan_ns = result.makespan_ms * 1e6;
    EXPECT_GE(makespan_ns, static_cast<double>(critical) * 0.999);
    EXPECT_GE(makespan_ns,
              static_cast<double>(total) / cores * 0.999);
    EXPECT_LE(makespan_ns, static_cast<double>(total) * 1.001);
    EXPECT_EQ(result.tasks, g.size());
    EXPECT_LE(result.max_concurrency, cores);
    EXPECT_GE(result.parallel_efficiency, 0.0);
    EXPECT_LE(result.parallel_efficiency, 1.0 + 1e-9);
  }
}

TEST_P(FuzzedGraphs, DynamicSubmissionMatchesStaticRun) {
  const auto [seed, workers] = GetParam();
  // Execute the same logical graph twice: once pre-built, once submitted
  // dynamically task by task. Final cell values must agree because every
  // graph execution respecting the dependencies is value-deterministic
  // (all conflicting accesses are ordered).
  auto build_and_run = [&](bool dynamic) {
    std::vector<std::int64_t> cells(6, 0);
    util::Rng rng(seed);
    Runtime rt({.num_workers = workers});
    TaskGraph graph;
    if (dynamic) rt.begin(graph);
    for (int i = 0; i < 80; ++i) {
      const auto dst = rng.uniform_index(cells.size());
      const auto src = rng.uniform_index(cells.size());
      const std::int64_t k = static_cast<std::int64_t>(rng.uniform_index(7));
      std::vector<Access> acc{inout(&cells[dst]), in(&cells[src])};
      auto fn = [&cells, dst, src, k] {
        cells[dst] = cells[dst] * 3 + cells[src] + k;
      };
      if (dynamic) {
        rt.submit(std::move(fn),
                  std::span<const Access>(acc.data(), acc.size()));
      } else {
        graph.add(std::move(fn),
                  std::span<const Access>(acc.data(), acc.size()));
      }
    }
    if (dynamic) {
      rt.end();
    } else {
      rt.run(graph);
    }
    return cells;
  };
  EXPECT_EQ(build_and_run(false), build_and_run(true));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FuzzedGraphs,
    ::testing::Combine(::testing::Values(1ULL, 17ULL, 255ULL, 4096ULL,
                                         99999ULL),
                       ::testing::Values(1, 3, 4)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

TEST(SimulatorProperty, MoreCoresNeverHurtIdealMachines) {
  FuzzRun fuzz(200, 12, 42);
  std::vector<std::uint64_t> costs(fuzz.fg->graph.size(), 50000);
  sim::MachineModel ideal;
  ideal.dispatch_overhead_ns = 0.0;
  ideal.numa_remote_penalty = 1.0;
  ideal.cache_hot_discount = 1.0;
  double prev = 1e300;
  for (const int cores : {1, 2, 4, 8, 16, 32}) {
    sim::Simulator simulator({.machine = ideal,
                              .policy = SchedulerPolicy::kFifo,
                              .cores = cores});
    const double ms = simulator.run(fuzz.fg->graph, costs).makespan_ms;
    EXPECT_LE(ms, prev * 1.0001) << cores << " cores";
    prev = ms;
  }
}

}  // namespace
}  // namespace bpar::taskrt
