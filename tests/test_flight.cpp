// Flight recorder suite (DESIGN.md §5j): bundle round-trip through the
// report schema, trigger debouncing, rotation by count and by bytes, the
// async-signal-safe fatal record, and the engine integrations — a
// breaker trip writing a dump automatically, /debug/dump and /profilez
// over HTTP, and a dump whose trace feeds bpar_prof's analysis model.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/stats_server.hpp"
#include "rnn/network.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"

namespace bpar {
namespace {

namespace fs = std::filesystem;

using obs::FlightRecorder;
using obs::FlightRecorderOptions;
using serve::EngineOptions;
using serve::InferenceEngine;
using serve::Request;
using serve::Response;
using serve::Status;

std::string fresh_dir(const std::string& leaf) {
  const fs::path dir = fs::path(::testing::TempDir()) / "bpar_flight" / leaf;
  fs::remove_all(dir);
  return dir.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

FlightRecorderOptions fast_options(const std::string& dir) {
  FlightRecorderOptions options;
  options.dir = dir;
  options.stem = "t";
  options.debounce_ms = 0;
  return options;
}

TEST(FlightRecorder, TriggerWritesParseableBundle) {
  FlightRecorder rec(fast_options(fresh_dir("roundtrip")));
  rec.set_trace_writer([](std::ostream& os) {
    os << "{\"traceEvents\": []}";
    return true;
  });
  rec.set_state_json([] { return std::string("{\"type\": \"statz\"}"); });
  rec.set_profile_text([] { return std::string("a;b 3\n"); });

  const auto result = rec.trigger("Unit Test!");
  ASSERT_TRUE(result.written) << result.skipped;
  EXPECT_EQ(result.reason, "unit-test");  // sanitized
  ASSERT_TRUE(fs::exists(result.trace_path));
  ASSERT_TRUE(fs::exists(result.report_path));
  EXPECT_EQ(rec.dumps(), 1U);

  const obs::JsonValue report = obs::json_parse(slurp(result.report_path));
  EXPECT_EQ(report.at("type").str, "flight_dump");
  EXPECT_EQ(report.at("schema_version").number, 1.0);
  EXPECT_EQ(report.at("reason").str, "unit-test");
  EXPECT_GE(report.at("seq").number, 0.0);
  EXPECT_TRUE(report.at("seq").is_number());
  ASSERT_TRUE(report.at("trace_file").is_string());
  EXPECT_EQ(report.at("trace_file").str,
            fs::path(result.trace_path).filename().string());
  EXPECT_EQ(report.at("state").at("type").str, "statz");
  EXPECT_EQ(report.at("profile_folded").str, "a;b 3\n");
  ASSERT_NE(report.find("metrics"), nullptr);

  const obs::JsonValue trace = obs::json_parse(slurp(result.trace_path));
  EXPECT_TRUE(trace.at("traceEvents").is_array());
}

TEST(FlightRecorder, BundleRecordsNullTraceWhenWriterDeclines) {
  FlightRecorder rec(fast_options(fresh_dir("notrace")));
  rec.set_trace_writer([](std::ostream&) { return false; });
  const auto result = rec.trigger("manual");
  ASSERT_TRUE(result.written) << result.skipped;
  EXPECT_TRUE(result.trace_path.empty());
  const obs::JsonValue report = obs::json_parse(slurp(result.report_path));
  EXPECT_TRUE(report.at("trace_file").is_null());
}

TEST(FlightRecorder, DebounceSuppressesRapidTriggers) {
  FlightRecorderOptions options = fast_options(fresh_dir("debounce"));
  options.debounce_ms = 60'000;
  FlightRecorder rec(options);

  ASSERT_TRUE(rec.trigger("first").written);
  const auto second = rec.trigger("second");
  EXPECT_FALSE(second.written);
  EXPECT_EQ(second.skipped, "debounced");
  EXPECT_EQ(rec.dumps(), 1U);
  EXPECT_EQ(rec.suppressed(), 1U);
  EXPECT_EQ(rec.bundle_reports().size(), 1U);
}

TEST(FlightRecorder, RotationKeepsNewestBundlesByCount) {
  FlightRecorderOptions options = fast_options(fresh_dir("rotate_count"));
  options.max_bundles = 3;
  FlightRecorder rec(options);

  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(rec.trigger("r" + std::to_string(i)).written);
  }
  EXPECT_EQ(rec.dumps(), 6U);
  const auto reports = rec.bundle_reports();
  ASSERT_EQ(reports.size(), 3U);
  // Oldest first; the survivors are the three newest triggers.
  EXPECT_NE(reports[0].find("-r3."), std::string::npos) << reports[0];
  EXPECT_NE(reports[1].find("-r4."), std::string::npos) << reports[1];
  EXPECT_NE(reports[2].find("-r5."), std::string::npos) << reports[2];
}

TEST(FlightRecorder, RotationByBytesNeverPrunesTheNewBundle) {
  FlightRecorderOptions options = fast_options(fresh_dir("rotate_bytes"));
  options.max_bundles = 100;
  options.max_total_bytes = 1;  // any two bundles exceed this
  FlightRecorder rec(options);

  ASSERT_TRUE(rec.trigger("first").written);
  const auto second = rec.trigger("second");
  ASSERT_TRUE(second.written);
  const auto reports = rec.bundle_reports();
  ASSERT_EQ(reports.size(), 1U);
  EXPECT_EQ(reports[0], second.report_path);
  ASSERT_TRUE(fs::exists(second.trace_path) || second.trace_path.empty());
}

TEST(FlightRecorder, FatalRecordWritesPreSerializedMarker) {
  FlightRecorder rec(fast_options(fresh_dir("fatal")));
  ASSERT_TRUE(rec.install_fatal_handler());
  ASSERT_FALSE(rec.fatal_path().empty());
  // A second recorder cannot steal the process-wide handlers.
  FlightRecorder other(fast_options(fresh_dir("fatal_other")));
  EXPECT_FALSE(other.install_fatal_handler());

  // Exactly what the signal handler write()s, minus the re-raise.
  rec.write_fatal_record(11);
  const std::string marker = slurp(rec.fatal_path());
  EXPECT_NE(marker.find("\"type\": \"flight_fatal\""), std::string::npos)
      << marker;
  EXPECT_NE(marker.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(marker.find("signal 11"), std::string::npos);
}

// ---- engine integration ----

rnn::NetworkConfig small_config() {
  rnn::NetworkConfig cfg;
  cfg.cell = rnn::CellType::kLstm;
  cfg.input_size = 5;
  cfg.hidden_size = 8;
  cfg.num_layers = 2;
  cfg.seq_length = 6;
  cfg.batch_size = 4;
  cfg.num_classes = 4;
  return cfg;
}

EngineOptions dump_options(const std::string& dir) {
  EngineOptions options;
  options.executor.num_workers = 2;
  options.executor.num_replicas = 2;
  options.max_batch = 4;
  options.shed_wait_us = 10'000'000;  // keep the shed valve out of play
  options.dump_dir = dir;
  options.dump_debounce_ms = 0;
  return options;
}

// The headline acceptance path: a fault-induced breaker trip must leave a
// dump bundle behind without anyone asking for one.
TEST(FlightEngine, BreakerTripWritesDumpBundleAutomatically) {
  const auto cfg = small_config();
  EngineOptions options = dump_options(fresh_dir("breaker"));
  options.max_batch_retries = 0;
  options.breaker_threshold = 1;  // first failed batch trips
  InferenceEngine engine(cfg, options);
  ASSERT_NE(engine.flight_recorder(), nullptr);

  Request poison = serve::make_request(cfg, cfg.seq_length, 1, true);
  poison.features[0] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(engine.infer(poison).status, Status::kInternalError);
  EXPECT_GE(engine.degrade_level(), 1);

  ASSERT_GE(engine.flight_recorder()->dumps(), 1U);
  // With the debounce at 0 the 100%-error SLO alert may add a second
  // bundle right behind the trip; find the breaker's.
  const auto reports = engine.flight_recorder()->bundle_reports();
  ASSERT_FALSE(reports.empty());
  std::string trip_report;
  for (const auto& path : reports) {
    if (path.find("breaker-trip") != std::string::npos) trip_report = path;
  }
  ASSERT_FALSE(trip_report.empty()) << reports.front();
  const obs::JsonValue report = obs::json_parse(slurp(trip_report));
  EXPECT_EQ(report.at("type").str, "flight_dump");
  EXPECT_EQ(report.at("reason").str, "breaker-trip");
  // The engine wires statz_json in as the state provider; the dump fires
  // right after the breaker steps down, so the captured state shows it.
  EXPECT_EQ(report.at("state").at("type").str, "statz");
  EXPECT_GE(report.at("state").at("engine").at("degrade_level").number, 1.0);
}

TEST(FlightEngine, DebugDumpEndpointAndProfilezServeOverHttp) {
  const auto cfg = small_config();
  EngineOptions options = dump_options(fresh_dir("http"));
  options.stats_port = 0;
  InferenceEngine engine(cfg, options);
  const int port = engine.stats_port();
  ASSERT_GT(port, 0);

  const auto dump = obs::http_get("127.0.0.1",
                                  static_cast<std::uint16_t>(port),
                                  "/debug/dump?reason=itest");
  ASSERT_TRUE(dump.ok) << dump.error;
  ASSERT_EQ(dump.status, 200) << dump.body;
  const obs::JsonValue body = obs::json_parse(dump.body);
  EXPECT_TRUE(body.at("written").boolean);
  EXPECT_EQ(body.at("reason").str, "itest");
  EXPECT_EQ(engine.flight_recorder()->dumps(), 1U);
  ASSERT_TRUE(fs::exists(body.at("report").str));

  // /profilez spins an ephemeral profiler over the window; keep the engine
  // busy meanwhile so the folded stacks name real span paths.
  std::thread load([&] {
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(900);
    std::uint64_t seed = 1;
    while (std::chrono::steady_clock::now() < until) {
      (void)engine.infer(serve::make_request(cfg, cfg.seq_length, ++seed,
                                             /*with_labels=*/true));
    }
  });
  const auto prof = obs::http_get("127.0.0.1",
                                  static_cast<std::uint16_t>(port),
                                  "/profilez?seconds=0.5");
  load.join();
  ASSERT_TRUE(prof.ok) << prof.error;
  ASSERT_EQ(prof.status, 200);
  EXPECT_FALSE(prof.body.empty());
  // Collapsed-flamegraph shape: every line is "stack count".
  std::istringstream lines(prof.body);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_NE(line.rfind(' '), std::string::npos) << line;
  }
}

// A dump taken from a record_trace engine after real traffic must feed the
// same analysis model bpar_prof analyze builds from a trace file.
TEST(FlightEngine, DumpTraceFeedsAnalysisModel) {
  const auto cfg = small_config();
  EngineOptions options = dump_options(fresh_dir("analyze"));
  options.record_trace = true;
  InferenceEngine engine(cfg, options);

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ASSERT_EQ(engine.infer(serve::make_request(cfg, cfg.seq_length, seed,
                                               /*with_labels=*/true))
                  .status,
              Status::kOk);
  }
  const auto result = engine.trigger_dump("manual");
  ASSERT_TRUE(result.written) << result.skipped;
  ASSERT_FALSE(result.trace_path.empty());

  const obs::JsonValue trace = obs::json_parse(slurp(result.trace_path));
  const auto model = obs::analysis::model_from_trace_json(trace);
  EXPECT_FALSE(model.tasks.empty());
  EXPECT_GT(model.num_workers, 0);
}

TEST(FlightEngine, TriggerDumpWithoutDumpDirSaysWhy) {
  const auto cfg = small_config();
  EngineOptions options = dump_options("");
  options.dump_dir.clear();
  InferenceEngine engine(cfg, options);
  EXPECT_EQ(engine.flight_recorder(), nullptr);
  const auto result = engine.trigger_dump("manual");
  EXPECT_FALSE(result.written);
  EXPECT_NE(result.skipped.find("dump_dir"), std::string::npos);
}

}  // namespace
}  // namespace bpar
