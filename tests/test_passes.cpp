// Graph-optimizer pass pipeline suite (DESIGN.md §5k).
//
// Three layers of coverage: the registry/spec-string contract (parse,
// env override, unknown-name fallback), structural effects of each pass on
// the task graph (fused kinds, hoisted precompute GEMMs, coarsened chains,
// deprecated-boolean shims), and — the load-bearing part — bit-exactness:
// the default pipeline must produce the same losses, gradients, logits,
// and predictions as the unoptimized graph for LSTM and GRU, training and
// inference, fp32 and int8, including the serving engine's cached replays.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "exec/bpar_executor.hpp"
#include "graph/brnn_graph.hpp"
#include "graph/passes/registry.hpp"
#include "rnn/network.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"
#include "util/rng.hpp"

namespace bpar {
namespace {

using exec::BParExecutor;
using graph::BuildOptions;
using graph::TrainingProgram;
using rnn::BatchData;
using rnn::CellType;
using rnn::NetworkConfig;
using taskrt::TaskKind;

NetworkConfig odd_config(CellType cell, int layers = 2, int seq = 7,
                         int batch = 5, bool m2m = false) {
  NetworkConfig cfg;
  cfg.cell = cell;
  cfg.input_size = 5;
  cfg.hidden_size = 7;
  cfg.num_layers = layers;
  cfg.seq_length = seq;
  cfg.batch_size = batch;
  cfg.num_classes = 6;
  cfg.many_to_many = m2m;
  cfg.seed = 4242;
  return cfg;
}

BatchData make_batch(const NetworkConfig& cfg, std::uint64_t seed) {
  util::Rng rng(seed);
  BatchData batch;
  batch.x.resize(static_cast<std::size_t>(cfg.seq_length));
  for (auto& m : batch.x) {
    m.resize(cfg.batch_size, cfg.input_size);
    tensor::fill_uniform(m.view(), rng, -1.0F, 1.0F);
  }
  const int labels = cfg.many_to_many ? cfg.seq_length * cfg.batch_size
                                      : cfg.batch_size;
  batch.labels.resize(static_cast<std::size_t>(labels));
  for (auto& l : batch.labels) {
    l = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(cfg.num_classes)));
  }
  return batch;
}

std::size_t count_kind(const taskrt::TaskGraph& g, TaskKind kind) {
  std::size_t n = 0;
  for (taskrt::TaskId id = 0; id < g.size(); ++id) {
    if (g.task(id).spec.kind == kind) ++n;
  }
  return n;
}

// ---------------------------------------------------------------- registry

TEST(PassRegistry, ParseSpec) {
  namespace gp = graph::passes;
  EXPECT_TRUE(gp::parse_pass_spec("").empty());
  EXPECT_TRUE(gp::parse_pass_spec("none").empty());
  EXPECT_TRUE(gp::parse_pass_spec("off").empty());

  const auto def = gp::parse_pass_spec("default");
  ASSERT_EQ(def.size(), 3U);
  EXPECT_EQ(def[0].name, "gate_fusion");
  EXPECT_EQ(def[1].name, "input_precompute");
  EXPECT_EQ(def[2].name, "coarsen");

  const auto with_param = gp::parse_pass_spec("coarsen:1500,gate_fusion");
  ASSERT_EQ(with_param.size(), 2U);
  EXPECT_EQ(with_param[0].name, "coarsen");
  EXPECT_EQ(with_param[0].param, "1500");
  EXPECT_EQ(with_param[1].name, "gate_fusion");
  EXPECT_TRUE(with_param[1].param.empty());
}

TEST(PassRegistry, KnownPassesCoverBuiltins) {
  const auto names = graph::passes::known_passes();
  auto has = [&](const char* name) {
    for (const auto& n : names) {
      if (n == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("gate_fusion"));
  EXPECT_TRUE(has("input_precompute"));
  EXPECT_TRUE(has("coarsen"));
  EXPECT_EQ(graph::passes::make_pass({"no_such_pass", ""}), nullptr);
}

TEST(PassRegistry, EffectiveSpecResolution) {
  namespace gp = graph::passes;
  ::unsetenv("BPAR_GRAPH_PASSES");
  EXPECT_EQ(gp::effective_pass_spec("none"), "");
  EXPECT_EQ(gp::effective_pass_spec("off"), "");
  EXPECT_EQ(gp::effective_pass_spec("default"),
            std::string(gp::kDefaultPassSpec));
  EXPECT_EQ(gp::effective_pass_spec("gate_fusion"), "gate_fusion");
  // Unknown names warn (once, stderr) and fall back to the default.
  EXPECT_EQ(gp::effective_pass_spec("gate_confusion"),
            std::string(gp::kDefaultPassSpec));
}

TEST(PassRegistry, EnvOverridesDefaultOnly) {
  namespace gp = graph::passes;
  ::setenv("BPAR_GRAPH_PASSES", "gate_fusion", 1);
  EXPECT_EQ(gp::effective_pass_spec("default"), "gate_fusion");
  EXPECT_EQ(gp::effective_pass_spec(""), "gate_fusion");
  // An explicit request beats the env var.
  EXPECT_EQ(gp::effective_pass_spec("coarsen"), "coarsen");
  ::setenv("BPAR_GRAPH_PASSES", "none", 1);
  EXPECT_EQ(gp::effective_pass_spec("default"), "");
  ::unsetenv("BPAR_GRAPH_PASSES");
}

// --------------------------------------------------------------- structure

TEST(PassStructure, GateFusionRewritesGruCells) {
  const NetworkConfig cfg = odd_config(CellType::kGru);
  rnn::Network net(cfg);
  BuildOptions off;
  TrainingProgram base(net, cfg.batch_size, off);
  BuildOptions on;
  on.passes = "gate_fusion";
  TrainingProgram fused(net, cfg.batch_size, on);

  const std::size_t cells = count_kind(base.graph(), TaskKind::kCellForward);
  ASSERT_GT(cells, 0U);
  // Every forward cell is rewritten wide; the graph shape is untouched.
  EXPECT_EQ(count_kind(fused.graph(), TaskKind::kCellForwardFused), cells);
  EXPECT_EQ(count_kind(fused.graph(), TaskKind::kCellForward), 0U);
  EXPECT_EQ(fused.graph().size(), base.graph().size());
  EXPECT_EQ(fused.graph().edge_count(), base.graph().edge_count());
  // GRU: the z,r and h̄ input GEMMs collapse into one 3H-wide launch.
  EXPECT_EQ(fused.gemm_launches(), base.gemm_launches() - cells);
}

TEST(PassStructure, GateFusionKeepsLstmLaunchCount) {
  const NetworkConfig cfg = odd_config(CellType::kLstm);
  rnn::Network net(cfg);
  TrainingProgram base(net, cfg.batch_size, {});
  BuildOptions on;
  on.passes = "gate_fusion";
  TrainingProgram fused(net, cfg.batch_size, on);
  // LSTM input GEMMs are already 4H-wide; the pass only marks the kind.
  EXPECT_EQ(fused.gemm_launches(), base.gemm_launches());
  EXPECT_GT(count_kind(fused.graph(), TaskKind::kCellForwardFused), 0U);
}

TEST(PassStructure, InputPrecomputeHoistsLayerZeroGemms) {
  const NetworkConfig cfg = odd_config(CellType::kLstm, 3, 9, 4);
  rnn::Network net(cfg);
  TrainingProgram base(net, cfg.batch_size, {});
  BuildOptions on;
  on.passes = "input_precompute";
  TrainingProgram hoisted(net, cfg.batch_size, on);

  EXPECT_GT(count_kind(hoisted.graph(), TaskKind::kInputPrecompute), 0U);
  EXPECT_GT(hoisted.graph().size(), base.graph().size());
  // Layer 0's per-timestep input GEMMs leave the cells; the chunked
  // sequence-wide GEMMs add back fewer launches than they remove.
  EXPECT_LT(hoisted.gemm_launches(), base.gemm_launches());
  EXPECT_EQ(hoisted.pass_signature(), "input_precompute");
  ASSERT_EQ(hoisted.pass_report().entries.size(), 1U);
  EXPECT_GT(hoisted.pass_report().entries[0].rewrites, 0U);
}

TEST(PassStructure, CoarseningMergesTinyAdjacentOps) {
  const NetworkConfig cfg = odd_config(CellType::kLstm, 2, 3, 4);
  rnn::Network net(cfg);
  TrainingProgram base(net, cfg.batch_size, {});
  BuildOptions on;
  on.passes = "coarsen:1000000000";  // everything counts as tiny
  TrainingProgram coarse(net, cfg.batch_size, on);
  EXPECT_LT(coarse.graph().size(), base.graph().size());
  EXPECT_GT(count_kind(coarse.graph(), TaskKind::kCoarsened), 0U);
}

TEST(PassStructure, DeprecatedBooleansMapToScheduleProfiles) {
  const NetworkConfig cfg = odd_config(CellType::kLstm, 2, 4, 4);
  rnn::Network net(cfg);

  BuildOptions old_fused;
  old_fused.fuse_merge = true;
  BuildOptions new_fused;
  new_fused.schedule_profile = "fused_merge";
  TrainingProgram a(net, cfg.batch_size, old_fused);
  TrainingProgram b(net, cfg.batch_size, new_fused);
  EXPECT_EQ(a.graph().size(), b.graph().size());
  EXPECT_EQ(a.graph().edge_count(), b.graph().edge_count());

  BuildOptions old_framework;
  old_framework.per_layer_barriers = true;
  old_framework.sequential_directions = true;
  BuildOptions new_framework;
  new_framework.schedule_profile = "framework";
  TrainingProgram c(net, cfg.batch_size, old_framework);
  TrainingProgram d(net, cfg.batch_size, new_framework);
  EXPECT_EQ(c.graph().size(), d.graph().size());
  EXPECT_EQ(c.graph().edge_count(), d.graph().edge_count());
  EXPECT_EQ(c.graph().critical_path_length(),
            d.graph().critical_path_length());
}

TEST(PassStructure, ExecutorEnvVarSelectsPipeline) {
  const NetworkConfig cfg = odd_config(CellType::kLstm, 2, 4, 4);
  const BatchData batch = make_batch(cfg, 31);
  ::setenv("BPAR_GRAPH_PASSES", "gate_fusion", 1);
  rnn::Network net(cfg);
  BParExecutor bpar(net, {.common = {.num_workers = 2}});
  bpar.train_batch(batch);
  // train_program() re-resolves the spec (it is part of the cache key), so
  // read the signature before clearing the env var.
  EXPECT_EQ(bpar.train_program().pass_signature(), "gate_fusion");
  ::unsetenv("BPAR_GRAPH_PASSES");
}

// -------------------------------------------------------------- bit-exact

void expect_grads_equal(rnn::NetworkGrads& a, rnn::NetworkGrads& b,
                        const NetworkConfig& cfg) {
  for (int dir = 0; dir < 2; ++dir) {
    for (int l = 0; l < cfg.num_layers; ++l) {
      const auto& ga = a.layers[dir][static_cast<std::size_t>(l)];
      const auto& gb = b.layers[dir][static_cast<std::size_t>(l)];
      EXPECT_EQ(tensor::max_abs_diff(ga.dw.cview(), gb.dw.cview()), 0.0F)
          << "dW dir " << dir << " layer " << l;
      EXPECT_EQ(tensor::max_abs_diff(ga.db.cview(), gb.db.cview()), 0.0F)
          << "db dir " << dir << " layer " << l;
    }
  }
  EXPECT_EQ(tensor::max_abs_diff(a.dw_out.cview(), b.dw_out.cview()), 0.0F);
  EXPECT_EQ(tensor::max_abs_diff(a.db_out.cview(), b.db_out.cview()), 0.0F);
}

struct ParityCase {
  std::string tag;
  NetworkConfig cfg;
};

class PassParity : public ::testing::TestWithParam<ParityCase> {};

TEST_P(PassParity, TrainingIsBitExact) {
  const NetworkConfig& cfg = GetParam().cfg;
  const BatchData batch = make_batch(cfg, 555);

  rnn::Network ref_net(cfg);
  BParExecutor ref(ref_net,
                   {.common = {.num_workers = 4, .num_replicas = 2},
                    .passes = "none"});
  const double ref_loss = ref.train_batch(batch).loss;
  EXPECT_EQ(ref.train_program().pass_signature(), "none");

  rnn::Network net(cfg);
  BParExecutor opt(net, {.common = {.num_workers = 4, .num_replicas = 2},
                         .passes = "default"});
  const double opt_loss = opt.train_batch(batch).loss;
  EXPECT_EQ(opt_loss, ref_loss);
  expect_grads_equal(opt.grads(), ref.grads(), cfg);
}

TEST_P(PassParity, InferenceFp32IsBitExact) {
  const NetworkConfig& cfg = GetParam().cfg;
  const BatchData batch = make_batch(cfg, 666);

  rnn::Network ref_net(cfg);
  BParExecutor ref(ref_net,
                   {.common = {.num_workers = 4, .num_replicas = 2},
                    .passes = "none"});
  const auto ref_result = ref.infer(batch, {.want_logits = true});

  rnn::Network net(cfg);
  BParExecutor opt(net, {.common = {.num_workers = 4, .num_replicas = 2},
                         .passes = "default"});
  const auto result = opt.infer(batch, {.want_logits = true});
  EXPECT_EQ(result.loss, ref_result.loss);
  EXPECT_EQ(result.predictions, ref_result.predictions);
  EXPECT_EQ(result.logits, ref_result.logits);
}

TEST_P(PassParity, InferenceInt8IsBitExact) {
  const NetworkConfig& cfg = GetParam().cfg;
  const BatchData batch = make_batch(cfg, 777);

  rnn::Network ref_net(cfg);
  BParExecutor ref(ref_net,
                   {.common = {.num_workers = 4, .num_replicas = 2},
                    .quantized_inference = true,
                    .passes = "none"});
  const auto ref_result = ref.infer(batch, {.want_logits = true});

  rnn::Network net(cfg);
  BParExecutor opt(net, {.common = {.num_workers = 4, .num_replicas = 2},
                         .quantized_inference = true,
                         .passes = "default"});
  const auto result = opt.infer(batch, {.want_logits = true});
  EXPECT_EQ(result.loss, ref_result.loss);
  EXPECT_EQ(result.predictions, ref_result.predictions);
  EXPECT_EQ(result.logits, ref_result.logits);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PassParity,
    ::testing::Values(
        ParityCase{"lstm_L2_T7_B5", odd_config(CellType::kLstm, 2, 7, 5)},
        ParityCase{"gru_L2_T7_B5", odd_config(CellType::kGru, 2, 7, 5)},
        ParityCase{"lstm_m2m_L3_T5_B3",
                   odd_config(CellType::kLstm, 3, 5, 3, true)},
        ParityCase{"gru_m2m_L3_T5_B3",
                   odd_config(CellType::kGru, 3, 5, 3, true)},
        ParityCase{"lstm_T1_B1", odd_config(CellType::kLstm, 1, 1, 1)},
        ParityCase{"gru_L4_T3_B7", odd_config(CellType::kGru, 4, 3, 7)}),
    [](const auto& param_info) { return param_info.param.tag; });

TEST(PassServeParity, CachedReplaysMatchUnoptimizedEngine) {
  rnn::NetworkConfig cfg;
  cfg.cell = rnn::CellType::kGru;
  cfg.input_size = 5;
  cfg.hidden_size = 8;
  cfg.num_layers = 2;
  cfg.seq_length = 6;
  cfg.batch_size = 4;
  cfg.num_classes = 4;

  serve::EngineOptions ref_options;
  ref_options.executor.num_workers = 2;
  ref_options.executor.num_replicas = 2;
  ref_options.max_batch = 4;
  ref_options.shed_wait_us = 10'000'000;
  ref_options.passes = "none";
  serve::EngineOptions opt_options = ref_options;
  opt_options.passes = "default";

  // Same config seed → identical weights in both engines.
  serve::InferenceEngine ref(cfg, ref_options);
  serve::InferenceEngine opt(cfg, opt_options);

  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    serve::Request request =
        serve::make_request(cfg, cfg.seq_length, seed, /*with_labels=*/true);
    request.want_logits = true;
    const serve::Response a = ref.infer(request);
    // Replay twice so the second optimized call runs the cached program.
    serve::Response b = opt.infer(request);
    b = opt.infer(request);
    ASSERT_EQ(a.status, serve::Status::kOk);
    ASSERT_EQ(b.status, serve::Status::kOk);
    EXPECT_EQ(b.predictions, a.predictions) << "seed " << seed;
    EXPECT_EQ(b.logits, a.logits) << "seed " << seed;
    EXPECT_EQ(b.loss, a.loss) << "seed " << seed;
  }
}

}  // namespace
}  // namespace bpar
