// Variable sequence lengths between batches (paper §III-B: "For variable
// sequence length in between batches, B-Par adjusts the computation graph
// dynamically on run-time"). One BParExecutor must handle batches of
// different lengths, caching one graph per length, with results matching a
// dedicated fixed-length reference.
#include <gtest/gtest.h>

#include <sstream>

#include "exec/bpar_executor.hpp"
#include "exec/sequential.hpp"
#include "util/rng.hpp"

namespace bpar {
namespace {

using rnn::BatchData;
using rnn::NetworkConfig;

NetworkConfig base_config() {
  NetworkConfig cfg;
  cfg.cell = rnn::CellType::kLstm;
  cfg.input_size = 5;
  cfg.hidden_size = 7;
  cfg.num_layers = 2;
  cfg.seq_length = 4;  // default length; batches may deviate
  cfg.batch_size = 6;
  cfg.num_classes = 4;
  cfg.seed = 77;
  return cfg;
}

BatchData make_batch(const NetworkConfig& cfg, int steps,
                     std::uint64_t seed) {
  util::Rng rng(seed);
  BatchData batch;
  batch.x.resize(static_cast<std::size_t>(steps));
  for (auto& m : batch.x) {
    m.resize(cfg.batch_size, cfg.input_size);
    tensor::fill_uniform(m.view(), rng, -1.0F, 1.0F);
  }
  const int labels =
      cfg.many_to_many ? steps * cfg.batch_size : cfg.batch_size;
  batch.labels.resize(static_cast<std::size_t>(labels));
  for (auto& l : batch.labels) {
    l = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(cfg.num_classes)));
  }
  return batch;
}

// Reference executor for an arbitrary length: a fresh network with the
// length baked into the config, loaded with the same weights.
double reference_loss(const rnn::Network& net, const BatchData& batch,
                      rnn::NetworkGrads* grads_out) {
  NetworkConfig cfg = net.config();
  cfg.seq_length = batch.steps();
  rnn::Network ref_net(cfg);
  std::stringstream weights;
  net.save(weights);
  ref_net.load(weights);
  exec::SequentialExecutor ref(ref_net);
  const double loss = ref.train_batch(batch).loss;
  if (grads_out != nullptr) {
    grads_out->init_like(ref_net);
    grads_out->zero();
    grads_out->accumulate(ref.grads());
  }
  return loss;
}

TEST(VariableLength, TrainAcceptsMultipleLengths) {
  const NetworkConfig cfg = base_config();
  rnn::Network net(cfg);
  exec::BParExecutor bpar(net, {.common = {.num_workers = 4,
                                           .num_replicas = 2}});

  for (const int steps : {4, 7, 2, 4, 9}) {
    const BatchData batch = make_batch(cfg, steps, 100 + steps);
    rnn::NetworkGrads ref_grads;
    const double ref_loss = reference_loss(net, batch, &ref_grads);
    const double loss = bpar.train_batch(batch).loss;
    EXPECT_NEAR(loss, ref_loss, 1e-5 + 1e-4 * std::abs(ref_loss))
        << "steps=" << steps;
    EXPECT_NEAR(bpar.grads().l2_norm(), ref_grads.l2_norm(),
                1e-4 * ref_grads.l2_norm() + 1e-6)
        << "steps=" << steps;
  }
  // 4 distinct lengths → 4 cached training graphs (length 4 reused).
  EXPECT_EQ(bpar.cached_programs(/*training=*/true), 4U);
}

TEST(VariableLength, InferCachesPerLengthToo) {
  const NetworkConfig cfg = base_config();
  rnn::Network net(cfg);
  exec::BParExecutor bpar(net, {.common = {.num_workers = 2}});
  for (const int steps : {3, 5, 3}) {
    const BatchData batch = make_batch(cfg, steps, 200 + steps);
    const double loss = bpar.infer(batch).loss;
    EXPECT_GT(loss, 0.0);
  }
  EXPECT_EQ(bpar.cached_programs(/*training=*/false), 2U);
  EXPECT_EQ(bpar.cached_programs(/*training=*/true), 0U);
}

TEST(VariableLength, ManyToManyLabelsScaleWithLength) {
  NetworkConfig cfg = base_config();
  cfg.many_to_many = true;
  rnn::Network net(cfg);
  exec::BParExecutor bpar(net, {.common = {.num_workers = 3,
                                           .num_replicas = 3}});
  for (const int steps : {2, 6}) {
    const BatchData batch = make_batch(cfg, steps, 300 + steps);
    const double ref_loss = reference_loss(net, batch, nullptr);
    EXPECT_NEAR(bpar.train_batch(batch).loss, ref_loss,
                1e-5 + 1e-4 * std::abs(ref_loss))
        << "steps=" << steps;
  }
}

TEST(VariableLength, GraphSizesScaleWithLength) {
  const NetworkConfig cfg = base_config();
  rnn::Network net(cfg);
  exec::BParExecutor bpar(net, {.common = {.num_workers = 1}});
  const std::size_t small = bpar.train_program(2).graph().size();
  const std::size_t large = bpar.train_program(8).graph().size();
  EXPECT_GT(large, 3 * small / 2);
  EXPECT_EQ(bpar.train_program(2).config().seq_length, 2);
  EXPECT_EQ(bpar.train_program(8).config().seq_length, 8);
}

TEST(VariableLength, SequenceLengthOneWorks) {
  const NetworkConfig cfg = base_config();
  rnn::Network net(cfg);
  exec::BParExecutor bpar(net, {.common = {.num_workers = 2,
                                           .num_replicas = 2}});
  const BatchData batch = make_batch(cfg, 1, 999);
  const double ref_loss = reference_loss(net, batch, nullptr);
  EXPECT_NEAR(bpar.train_batch(batch).loss, ref_loss,
              1e-5 + 1e-4 * std::abs(ref_loss));
}

}  // namespace
}  // namespace bpar
