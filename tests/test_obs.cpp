// Telemetry layer tests: trace rings (wrap/drop-oldest, concurrent
// recording), the metrics registry (atomicity, stable handles), JSON
// escaping/parsing, and RunReport / MetricsLogger round-trips.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace bpar::obs {
namespace {

// Restores the tracing flag and drops all recorded events around each test
// so the suite's tests cannot contaminate each other.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_tracing_enabled(false);
    clear();
  }
  void TearDown() override {
    set_tracing_enabled(false);
    clear();
  }
};

TEST_F(TraceTest, DisabledTracingRecordsNothing) {
  const std::size_t before = events_held();
  const std::uint16_t id = intern_name("test.disabled");
  record_span(id, 10, 20);
  record_counter(id, 30, 7);
  record_instant(id, 40);
  {
    BPAR_SPAN("test.disabled_macro");
  }
  EXPECT_EQ(events_held(), before);
}

TEST_F(TraceTest, InternReturnsStableIds) {
  const std::uint16_t a = intern_name("test.intern_a");
  const std::uint16_t b = intern_name("test.intern_b");
  EXPECT_NE(a, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(intern_name("test.intern_a"), a);
  EXPECT_EQ(interned_name(a), "test.intern_a");
  EXPECT_EQ(interned_name(0), "<overflow>");
}

TEST_F(TraceTest, DurationRoundTripsThroughFloatPayload) {
  TraceEvent ev;
  ev.payload = 0;
  EXPECT_EQ(ev.duration_ns(), 0.0);
#if !defined(BPAR_NO_TRACING)
  set_tracing_enabled(true);
  const std::uint16_t id = intern_name("test.duration");
  record_span(id, 1000, 251000);  // 250 us
  set_tracing_enabled(false);
  bool found = false;
  for (const auto& t : collect()) {
    for (const auto& e : t.events) {
      if (e.name != id) continue;
      found = true;
      EXPECT_EQ(e.kind, EventKind::kSpan);
      EXPECT_EQ(e.ts_ns, 1000U);
      EXPECT_NEAR(e.duration_ns(), 250000.0, 16.0);  // float granularity
    }
  }
  EXPECT_TRUE(found);
#endif
}

#if !defined(BPAR_NO_TRACING)

// Finds the collected trace for the thread labeled `name`.
const ThreadTrace* find_thread(const std::vector<ThreadTrace>& threads,
                               const std::string& name) {
  for (const auto& t : threads) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

TEST_F(TraceTest, RingWrapDropsOldestEvents) {
  const std::size_t saved_capacity = ring_capacity();
  set_ring_capacity(16);
  set_tracing_enabled(true);
  const std::uint16_t id = intern_name("test.wrap");
  std::thread recorder([&] {
    set_thread_name("wrap-thread");
    for (std::uint64_t i = 0; i < 40; ++i) record_instant(id, i + 1);
  });
  recorder.join();
  set_tracing_enabled(false);
  set_ring_capacity(saved_capacity);

  const auto threads = collect();
  const ThreadTrace* t = find_thread(threads, "wrap-thread");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->events.size(), 16U);
  EXPECT_EQ(t->dropped, 24U);
  // Oldest-to-newest order, holding the most recent window.
  for (std::size_t i = 0; i < t->events.size(); ++i) {
    EXPECT_EQ(t->events[i].ts_ns, 25U + i);
  }
}

TEST_F(TraceTest, EightThreadsRecordConcurrently) {
  constexpr int kThreads = 8;
  constexpr int kEventsPerThread = 1000;
  set_tracing_enabled(true);
  std::vector<std::uint16_t> ids;
  ids.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    ids.push_back(intern_name("test.mt" + std::to_string(i)));
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      set_thread_name("mt-" + std::to_string(i));
      for (int j = 0; j < kEventsPerThread; ++j) {
        const std::uint64_t start = now_ns();
        record_span(ids[static_cast<std::size_t>(i)], start, start + 10);
      }
    });
  }
  for (auto& t : threads) t.join();
  set_tracing_enabled(false);

  const auto collected = collect();
  for (int i = 0; i < kThreads; ++i) {
    const ThreadTrace* t =
        find_thread(collected, "mt-" + std::to_string(i));
    ASSERT_NE(t, nullptr) << "thread " << i;
    EXPECT_EQ(t->dropped, 0U);
    std::size_t mine = 0;
    for (const auto& ev : t->events) {
      if (ev.name == ids[static_cast<std::size_t>(i)]) ++mine;
    }
    // The ring may also hold stale events from a previous test's reuse of
    // this OS thread id; count only this test's name id.
    EXPECT_EQ(mine, static_cast<std::size_t>(kEventsPerThread));
  }
}

TEST_F(TraceTest, ExportedTraceJsonParsesAndNamesThreads) {
  set_tracing_enabled(true);
  std::thread recorder([&] {
    set_thread_name("export \"thread\"\n1");
    const std::uint16_t span = intern_name("test.export span\nnewline");
    const std::uint16_t counter = intern_name("test.export_counter");
    const std::uint64_t start = now_ns();
    record_span(span, start, start + 500);
    record_counter(counter, start + 600, 42);
    record_instant(intern_name("test.export_instant"), start + 700);
  });
  recorder.join();
  set_tracing_enabled(false);

  std::ostringstream os;
  write_trace_json(os);
  const JsonValue doc = json_parse(os.str());  // must be valid JSON
  ASSERT_TRUE(doc.is_array());
  bool saw_thread = false;
  bool saw_span = false;
  bool saw_counter = false;
  for (const auto& ev : doc.array) {
    const JsonValue* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "M" &&
        ev.at("args").at("name").str == "export \"thread\"\n1") {
      saw_thread = true;
    }
    if (ph->str == "X" && ev.at("name").str == "test.export span\nnewline") {
      saw_span = true;
      EXPECT_NEAR(ev.at("dur").number, 0.5, 0.01);  // us
    }
    if (ph->str == "C" && ev.at("name").str == "test.export_counter") {
      saw_counter = true;
      EXPECT_EQ(ev.at("args").at("value").number, 42.0);
    }
  }
  EXPECT_TRUE(saw_thread);
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_counter);
}

#endif  // !BPAR_NO_TRACING

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("a\x01z", 3)), "a\\u0001z");
  EXPECT_EQ(json_quote("x\"y"), "\"x\\\"y\"");
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  // Shortest-round-trip: the parsed value must equal the original.
  const double v = 0.1234567890123456;
  EXPECT_EQ(json_parse(json_number(v)).number, v);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW((void)json_parse("{"), util::Error);
  EXPECT_THROW((void)json_parse("[1,]"), util::Error);
  EXPECT_THROW((void)json_parse("{} trailing"), util::Error);
  const JsonValue v = json_parse(R"({"a": [1, true, "s\n"], "b": null})");
  EXPECT_TRUE(v.at("a").is_array());
  EXPECT_EQ(v.at("a").array[2].str, "s\n");
  EXPECT_TRUE(v.at("b").is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(MetricsRegistry, HandlesAreStableAcrossInsertions) {
  Counter& first = Registry::instance().counter("test.stable");
  for (int i = 0; i < 100; ++i) {
    (void)Registry::instance().counter("test.filler" + std::to_string(i));
  }
  EXPECT_EQ(&Registry::instance().counter("test.stable"), &first);
}

TEST(MetricsRegistry, ConcurrentCountsAreExact) {
  Counter& c = Registry::instance().counter("test.concurrent");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      // Mix of resolve-by-name and cached-handle updates.
      for (int j = 0; j < kAdds; ++j) {
        Registry::instance().counter("test.concurrent").add();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(MetricsRegistry, SnapshotCarriesAllKinds) {
  Registry& reg = Registry::instance();
  reg.counter("test.snap_counter").add(3);
  reg.gauge("test.snap_gauge").set(2.5);
  reg.series("test.snap_series").append(1.0);
  reg.series("test.snap_series").append(2.0);
  reg.histogram("test.snap_histo", {1.0, 10.0}).add(5.0);
  const Registry::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("test.snap_counter"), 3U);
  EXPECT_EQ(snap.gauges.at("test.snap_gauge"), 2.5);
  EXPECT_EQ(snap.series.at("test.snap_series"),
            (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(snap.histograms.at("test.snap_histo").total, 1.0);
  const std::string compact = reg.format_compact("test.snap_");
  EXPECT_NE(compact.find("test.snap_counter=3"), std::string::npos);
  EXPECT_EQ(compact.find("taskrt."), std::string::npos);
}

TEST(MetricsRegistry, SeriesCapsAtMaxValues) {
  Series s;
  for (std::size_t i = 0; i < Series::kMaxValues + 10; ++i) {
    s.append(static_cast<double>(i));
  }
  EXPECT_EQ(s.values().size(), Series::kMaxValues);
  EXPECT_EQ(s.total_appends(), Series::kMaxValues + 10);
}

TEST(MetricsRegistry, RingSeriesDropsOldestAndKeepsRecording) {
  Series& s = Registry::instance().ring_series("test.ring_series", 128);
  EXPECT_EQ(s.ring_capacity(), 128U);
  for (std::size_t i = 0; i < 20'000; ++i) {
    s.append(static_cast<double>(i));
  }
  // Unlike the append-only mode, a ring never stops recording: the window
  // always holds the most RECENT values.
  EXPECT_EQ(s.total_appends(), 20'000U);
  const std::vector<double> values = s.values();
  ASSERT_EQ(values.size(), 128U);
  EXPECT_EQ(values.front(), 20'000.0 - 128.0);
  EXPECT_EQ(values.back(), 19'999.0);
  // ring_series() is lookup-or-create: a second call resolves to the same
  // cell and can resize the window.
  Series& again = Registry::instance().ring_series("test.ring_series", 64);
  EXPECT_EQ(&again, &s);
  EXPECT_EQ(again.ring_capacity(), 64U);
  EXPECT_EQ(again.values().size(), 64U);
}

TEST(MetricsSampler, WindowRollupsFromDeterministicTicks) {
  Counter& reqs = Registry::instance().counter("test.sampler_reqs");
  SamplerOptions opts;
  opts.rate_series = {"test.sampler_reqs"};
  MetricsSampler sampler(opts);  // never started: driven via sample_at()

  sampler.sample_at(1'000'000'000ULL);
  reqs.add(100);
  sampler.sample_at(2'000'000'000ULL);
  reqs.add(200);
  // Born AFTER the sampler's first tick: the missing-metric baseline must
  // be zero, not "no window".
  Registry::instance().counter("test.sampler_born_late").add(50);
  HistogramCell& lat =
      Registry::instance().histogram("test.sampler_lat", {10.0, 20.0, 50.0});
  for (int i = 0; i < 4; ++i) lat.add(15.0);
  sampler.sample_at(3'000'000'000ULL);
  EXPECT_EQ(sampler.samples(), 3U);
  EXPECT_EQ(sampler.ticks(), 3U);

  const auto two = sampler.counter_window("test.sampler_reqs", 2.0);
  ASSERT_TRUE(two.valid);
  EXPECT_DOUBLE_EQ(two.seconds, 2.0);
  EXPECT_DOUBLE_EQ(two.delta, 300.0);
  EXPECT_DOUBLE_EQ(two.rate_per_s, 150.0);
  const auto one = sampler.counter_window("test.sampler_reqs", 1.0);
  ASSERT_TRUE(one.valid);
  EXPECT_DOUBLE_EQ(one.seconds, 1.0);
  EXPECT_DOUBLE_EQ(one.rate_per_s, 200.0);

  const auto late = sampler.counter_window("test.sampler_born_late", 2.0);
  ASSERT_TRUE(late.valid);
  EXPECT_DOUBLE_EQ(late.delta, 50.0);

  // 4 adds of 15 between ticks 2 and 3 land in bin [10, 20): the delta
  // quantile interpolates to exactly 15 and the delta mean is exact.
  const auto h = sampler.histogram_window("test.sampler_lat", 1.0);
  ASSERT_TRUE(h.valid);
  EXPECT_DOUBLE_EQ(h.count, 4.0);
  EXPECT_DOUBLE_EQ(h.mean, 15.0);
  EXPECT_DOUBLE_EQ(h.p50, 15.0);

  // Per-tick rates were published into the "<name>.rate" ring series.
  const std::vector<double> rates =
      Registry::instance().series("test.sampler_reqs.rate").values();
  ASSERT_EQ(rates.size(), 2U);
  EXPECT_DOUBLE_EQ(rates[0], 100.0);
  EXPECT_DOUBLE_EQ(rates[1], 200.0);
}

// TSan target: 8 writer threads hammer every metric kind while the sampler
// thread snapshots at its fastest cadence. The invariant is exactness —
// no mutation may be lost or torn by a concurrent snapshot.
TEST(MetricsSampler, ConcurrentSnapshotVsWriters) {
  SamplerOptions opts;
  opts.period_ms = 1;
  opts.capacity = 64;
  opts.rate_series = {"test.race_count"};
  MetricsSampler sampler(opts);
  sampler.start();

  constexpr int kThreads = 8;
  constexpr int kOps = 20'000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([] {
      Registry& reg = Registry::instance();
      Counter& c = reg.counter("test.race_count");
      Gauge& g = reg.gauge("test.race_gauge");
      HistogramCell& h = reg.histogram("test.race_lat", {1.0, 10.0, 100.0});
      Series& s = reg.ring_series("test.race_series", 256);
      for (int i = 0; i < kOps; ++i) {
        c.add();
        g.set(static_cast<double>(i));
        h.add(static_cast<double>(i % 128));
        s.append(static_cast<double>(i));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  sampler.stop();

  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kOps;
  const auto snap = Registry::instance().snapshot();
  EXPECT_EQ(snap.counters.at("test.race_count"), kTotal);
  EXPECT_EQ(snap.histograms.at("test.race_lat").total,
            static_cast<double>(kTotal));
  EXPECT_EQ(Registry::instance().series("test.race_series").total_appends(),
            kTotal);
  EXPECT_GE(sampler.ticks(), 1U);
  EXPECT_LE(sampler.samples(), 64U);
}

TEST(RunReportJson, RoundTripsThroughParser) {
  RunReport report;
  report.binary = "test_bin";
  report.params = {{"hidden", "128"}, {"note", "has \"quotes\"\nand line"}};
  report.add_table("scaling", {"cores", "ms"},
                   {{"1", "10.5"}, {"16", "1.2"}});
  Registry::instance().counter("test.report_counter").add(7);

  std::ostringstream os;
  report.write_json(os, Registry::instance().snapshot());
  const JsonValue doc = json_parse(os.str());
  EXPECT_EQ(doc.at("schema_version").number, kReportSchemaVersion);
  EXPECT_EQ(doc.at("type").str, "run_report");
  EXPECT_EQ(doc.at("binary").str, "test_bin");
  EXPECT_EQ(doc.at("params").at("note").str, "has \"quotes\"\nand line");
  const JsonValue& table = doc.at("tables").at("scaling");
  EXPECT_EQ(table.at("header").array[0].str, "cores");
  EXPECT_EQ(table.at("rows").array[1].array[1].str, "1.2");
  EXPECT_EQ(doc.at("metrics").at("counters").at("test.report_counter").number,
            7.0);
}

TEST(MetricsLoggerJsonl, EveryLineParsesWithSchemaVersion) {
  const std::string path = ::testing::TempDir() + "/bpar_test_metrics.jsonl";
  {
    MetricsLogger logger(path, "test_bin", {{"epochs", "2"}});
    logger.log("epoch", {{"epoch", 0.0}, {"loss", 1.25}});
    logger.log("epoch", {{"epoch", 1.0}, {"loss", 0.75}});
  }  // destructor writes the final metrics line
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<JsonValue> lines;
  for (std::string line; std::getline(in, line);) {
    lines.push_back(json_parse(line));
  }
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), 4U);
  for (const auto& v : lines) {
    EXPECT_EQ(v.at("schema_version").number, kReportSchemaVersion);
  }
  EXPECT_EQ(lines[0].at("type").str, "run_meta");
  EXPECT_EQ(lines[0].at("params").at("epochs").str, "2");
  EXPECT_EQ(lines[1].at("type").str, "epoch");
  EXPECT_EQ(lines[2].at("loss").number, 0.75);
  EXPECT_EQ(lines[3].at("type").str, "metrics");
  EXPECT_TRUE(lines[3].at("metrics").at("counters").is_object());
}

TEST(LogLevelParse, AcceptsSpellingsAndRejectsGarbage) {
  using util::LogLevel;
  using util::parse_log_level;
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level(" Info "), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("Warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("ERR"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("0"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("3"), LogLevel::kError);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level("4"), std::nullopt);
}

TEST(Memory, TrackerAccountsAllocsFreesAndPeak) {
  MemTracker t;
  t.on_alloc(100);
  t.on_alloc(50);
  EXPECT_EQ(t.current_bytes(), 150U);
  EXPECT_EQ(t.peak_bytes(), 150U);
  t.on_free(100);
  EXPECT_EQ(t.current_bytes(), 50U);
  EXPECT_EQ(t.peak_bytes(), 150U);  // high-water sticks
  t.on_alloc(25);
  EXPECT_EQ(t.current_bytes(), 75U);
  EXPECT_EQ(t.peak_bytes(), 150U);
  EXPECT_EQ(t.total_bytes(), 175U);
  EXPECT_EQ(t.allocs(), 3U);
  EXPECT_EQ(t.frees(), 1U);
  t.reset();
  EXPECT_EQ(t.current_bytes(), 0U);
  EXPECT_EQ(t.peak_bytes(), 0U);
}

TEST(Memory, ProcSelfStatsReadsThisProcess) {
  const ProcSelfStats proc = read_proc_self();
#if defined(__linux__)
  ASSERT_TRUE(proc.valid);
  EXPECT_GT(proc.rss_bytes, 0.0);
  EXPECT_GE(proc.vm_bytes, proc.rss_bytes);
  // num_threads comes from /proc/self/stat field 20; a skip-count bug
  // there reads `nice` (0) instead — this process always has >= 1.
  EXPECT_GE(proc.threads, 1.0);
  EXPECT_GT(proc.minor_faults, 0.0);
#else
  EXPECT_FALSE(proc.valid);
#endif
}

}  // namespace
}  // namespace bpar::obs
