// Dynamic (OmpSs-style) submission sessions: tasks submitted while workers
// execute, taskwait semantics, dependency correctness against already-
// completed predecessors, and interleaved build/execute behavior — the
// mechanism behind B-Par's run-time graph adjustment (paper §III-B).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "taskrt/runtime.hpp"

namespace bpar::taskrt {
namespace {

TEST(Sessions, SubmitAndWaitExecutesEverything) {
  Runtime rt({.num_workers = 4});
  TaskGraph graph;
  rt.begin(graph);
  std::atomic<int> count{0};
  std::vector<int> slots(50);
  for (auto& s : slots) {
    rt.submit([&count] { count.fetch_add(1); }, {out(&s)});
  }
  rt.taskwait();
  EXPECT_EQ(count.load(), 50);
  const RunStats stats = rt.end();
  EXPECT_EQ(stats.tasks_executed, 50U);
}

TEST(Sessions, ChainSubmittedIncrementallyStaysOrdered) {
  Runtime rt({.num_workers = 4});
  TaskGraph graph;
  rt.begin(graph);
  std::vector<int> order;
  int x = 0;
  for (int i = 0; i < 100; ++i) {
    rt.submit([&order, i] { order.push_back(i); }, {inout(&x)});
    if (i % 10 == 0) {
      // Give workers a chance to drain — dependencies on completed
      // predecessors must be counted as already satisfied.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  rt.end();
  std::vector<int> expected(100);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(Sessions, TaskwaitIsABarrierBetweenPhases) {
  Runtime rt({.num_workers = 4});
  TaskGraph graph;
  rt.begin(graph);
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  std::vector<int> slots(8);
  for (auto& s : slots) {
    rt.submit([&phase1] { phase1.fetch_add(1); }, {out(&s)});
  }
  rt.taskwait();
  EXPECT_EQ(phase1.load(), 8);
  // Phase 2 tasks observe phase 1 complete even without data deps.
  for (auto& s : slots) {
    rt.submit(
        [&phase1, &violated] {
          if (phase1.load() != 8) violated = true;
        },
        {inout(&s)});
  }
  rt.end();
  EXPECT_FALSE(violated.load());
}

TEST(Sessions, DependencyOnLongRunningPredecessor) {
  Runtime rt({.num_workers = 2});
  TaskGraph graph;
  rt.begin(graph);
  std::atomic<bool> producer_done{false};
  std::atomic<bool> ok{false};
  int x = 0;
  rt.submit(
      [&producer_done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        producer_done = true;
      },
      {out(&x)});
  // Submitted while the producer is (very likely) still running.
  rt.submit([&producer_done, &ok] { ok = producer_done.load(); }, {in(&x)});
  rt.end();
  EXPECT_TRUE(ok.load());
}

TEST(Sessions, BeginWithPrebuiltGraphThenExtend) {
  Runtime rt({.num_workers = 2});
  TaskGraph graph;
  int value = 0;
  graph.add([&value] { value = 1; }, {out(&value)});
  graph.add([&value] { value += 10; }, {inout(&value)});
  rt.begin(graph);
  rt.submit([&value] { value *= 3; }, {inout(&value)});
  const RunStats stats = rt.end();
  EXPECT_EQ(value, 33);
  EXPECT_EQ(stats.tasks_executed, 3U);
}

TEST(Sessions, StatsCoverDynamicTasks) {
  Runtime rt({.num_workers = 2, .record_trace = true});
  TaskGraph graph;
  rt.begin(graph);
  int x = 0;
  for (int i = 0; i < 5; ++i) {
    rt.submit(
        [] {
          volatile int spin = 0;
          for (int j = 0; j < 10000; ++j) spin += j;
        },
        {inout(&x)});
  }
  const RunStats stats = rt.end();
  EXPECT_EQ(stats.task_duration_ns.size(), 5U);
  EXPECT_EQ(stats.trace.size(), 5U);
  for (const auto d : stats.task_duration_ns) EXPECT_GT(d, 0U);
}

TEST(Sessions, ExceptionSurfacesAtEnd) {
  Runtime rt({.num_workers = 2});
  TaskGraph graph;
  rt.begin(graph);
  int x = 0;
  rt.submit([] { throw std::runtime_error("boom"); }, {out(&x)});
  rt.submit([] {}, {in(&x)});
  EXPECT_THROW(rt.end(), std::runtime_error);
  // Runtime is reusable after a failed session.
  TaskGraph graph2;
  int count = 0;
  graph2.add([&count] { ++count; }, {out(&count)});
  rt.run(graph2);
  EXPECT_EQ(count, 1);
}

TEST(Sessions, MultipleSessionsSequentially) {
  Runtime rt({.num_workers = 3});
  for (int round = 0; round < 5; ++round) {
    TaskGraph graph;
    rt.begin(graph);
    std::atomic<int> n{0};
    std::vector<int> slots(10);
    for (auto& s : slots) rt.submit([&n] { n.fetch_add(1); }, {out(&s)});
    rt.end();
    EXPECT_EQ(n.load(), 10) << "round " << round;
  }
}

TEST(Sessions, HeavyInterleavedFanOutFanIn) {
  Runtime rt({.num_workers = 4, .policy = SchedulerPolicy::kLocalityAware});
  TaskGraph graph;
  rt.begin(graph);
  constexpr int kWaves = 20;
  constexpr int kWidth = 10;
  std::vector<std::int64_t> lanes(kWidth, 0);
  std::int64_t join_total = 0;
  for (int wave = 0; wave < kWaves; ++wave) {
    for (int lane = 0; lane < kWidth; ++lane) {
      rt.submit(
          [&lanes, lane, wave] {
            lanes[static_cast<std::size_t>(lane)] += wave;
          },
          {inout(&lanes[static_cast<std::size_t>(lane)])});
    }
    // Fan-in task reading every lane.
    std::vector<Access> acc;
    for (auto& lane : lanes) acc.push_back(in(&lane));
    acc.push_back(inout(&join_total));
    rt.submit(
        [&lanes, &join_total] {
          for (const auto v : lanes) join_total += v;
        },
        std::span<const Access>(acc.data(), acc.size()));
  }
  rt.end();
  // After wave w, each lane holds sum(0..w); join accumulates those.
  std::int64_t expected = 0;
  std::int64_t lane_value = 0;
  for (int wave = 0; wave < kWaves; ++wave) {
    lane_value += wave;
    expected += kWidth * lane_value;
  }
  EXPECT_EQ(join_total, expected);
}

}  // namespace
}  // namespace bpar::taskrt
