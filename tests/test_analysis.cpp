// bpar_prof analysis engine tests (DESIGN.md §5e).
//
// The synthetic-DAG fixtures are exact: a four-task trace on two workers
// whose critical path, idle classification, and scorecard are computed by
// hand, so any drift in the sweep/attribution algorithms fails loudly.
// The real-runtime test is the ISSUE acceptance check: the scorecard's
// utilization must agree with the runtime's own busy/idle accounting to
// within 5%.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "exec/bpar_executor.hpp"
#include "obs/analysis.hpp"
#include "obs/diff.hpp"
#include "obs/json.hpp"
#include "obs/trace_export.hpp"
#include "perf/perf_events.hpp"
#include "taskrt/export.hpp"
#include "tensor/tensor.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bpar {
namespace {

namespace analysis = obs::analysis;

// Four tasks on two workers, hand-schedulable on paper:
//
//   worker 0: [f0.0: 0-100][f0.1: 100-250]         (idle 250-300)
//   worker 1: [r0.0: 0-80]  (idle 80-260)  [merge: 260-300]
//
// Dependencies: f0.0 -> f0.1 -> merge, r0.0 -> merge. Worker 1 carries a
// park span [100,150) and an injected-fault span [200,220).
analysis::TraceModel synthetic_model() {
  analysis::TraceModel model;
  model.num_workers = 2;
  const auto task = [](std::uint32_t id, const char* name, const char* klass,
                       int layer, int worker, std::uint64_t s,
                       std::uint64_t e, std::vector<std::uint32_t> preds) {
    analysis::TaskRecord t;
    t.id = id;
    t.name = name;
    t.klass = klass;
    t.layer = layer;
    t.step = 0;
    t.worker = worker;
    t.start_ns = s;
    t.end_ns = e;
    t.preds = std::move(preds);
    return t;
  };
  model.tasks.push_back(task(0, "f0.0", "cell_fwd", 0, 0, 0, 100, {}));
  model.tasks.push_back(task(1, "f0.1", "cell_fwd", 0, 0, 100, 250, {0}));
  model.tasks.push_back(task(2, "r0.0", "cell_fwd", 0, 1, 0, 80, {}));
  model.tasks.push_back(
      task(3, "merge_out", "merge", 1, 1, 260, 300, {1, 2}));
  model.worker_spans.push_back({/*worker=*/1, /*fault=*/false, 100, 150});
  model.worker_spans.push_back({/*worker=*/1, /*fault=*/true, 200, 220});
  model.counters["steals"] = 3.0;
  model.counters["steal_failures"] = 1.0;
  model.counters["busy_ns"] = 370.0;
  model.counters["idle_ns"] = 230.0;
  return model;
}

TEST(Analysis, SyntheticCriticalPathExact) {
  const analysis::CriticalPath cp =
      analysis::critical_path(synthetic_model());
  EXPECT_EQ(cp.measured_ns, 290U);  // f0.0 (100) + f0.1 (150) + merge (40)
  EXPECT_EQ(cp.makespan_ns, 300U);
  EXPECT_EQ(cp.length, 3U);
  ASSERT_EQ(cp.chain.size(), 3U);
  EXPECT_EQ(cp.chain[0], 0U);
  EXPECT_EQ(cp.chain[1], 1U);
  EXPECT_EQ(cp.chain[2], 3U);
  EXPECT_NEAR(cp.stretch(), 300.0 / 290.0, 1e-12);

  // Chain time per (class, layer, direction), largest first.
  ASSERT_EQ(cp.by_class.size(), 2U);
  EXPECT_EQ(cp.by_class[0].klass, "cell_fwd");
  EXPECT_EQ(cp.by_class[0].layer, 0);
  EXPECT_EQ(cp.by_class[0].direction, 'f');
  EXPECT_EQ(cp.by_class[0].total_ns, 250U);
  EXPECT_EQ(cp.by_class[0].tasks, 2U);
  EXPECT_EQ(cp.by_class[1].klass, "merge");
  EXPECT_EQ(cp.by_class[1].total_ns, 40U);
}

TEST(Analysis, SyntheticIdleAttributionExact) {
  const analysis::IdleAttribution idle =
      analysis::attribute_idle(synthetic_model());
  ASSERT_EQ(idle.per_worker.size(), 2U);

  // Worker 0 gap [250,300): merge is ready-but-not-running during
  // [250,260) (steal-failure), running elsewhere during [260,300)
  // (dependency stall).
  const analysis::IdleBreakdown& w0 = idle.per_worker[0];
  EXPECT_EQ(w0.busy_ns, 250U);
  EXPECT_EQ(w0.steal_fail_ns, 10U);
  EXPECT_EQ(w0.dep_stall_ns, 40U);
  EXPECT_EQ(w0.parked_ns, 0U);
  EXPECT_EQ(w0.fault_ns, 0U);

  // Worker 1 gap [80,260): park [100,150) and fault [200,220) take
  // precedence; of the rest, only [250,260) had ready work.
  const analysis::IdleBreakdown& w1 = idle.per_worker[1];
  EXPECT_EQ(w1.busy_ns, 120U);
  EXPECT_EQ(w1.parked_ns, 50U);
  EXPECT_EQ(w1.fault_ns, 20U);
  EXPECT_EQ(w1.steal_fail_ns, 10U);
  EXPECT_EQ(w1.dep_stall_ns, 100U);

  // Busy + idle must tile the window exactly: 2 workers x 300 ns.
  EXPECT_EQ(idle.total.busy_ns + idle.total.idle_ns(), 600U);
  EXPECT_EQ(idle.total.busy_ns, 370U);
  EXPECT_EQ(idle.total.dep_stall_ns, 140U);
  EXPECT_EQ(idle.total.steal_fail_ns, 20U);
}

TEST(Analysis, SyntheticScorecardExact) {
  const analysis::Analysis a = analysis::analyze(synthetic_model(), 280);
  const analysis::Scorecard& card = a.card;
  EXPECT_EQ(card.workers, 2);
  EXPECT_EQ(card.tasks, 4U);
  EXPECT_EQ(card.total_work_ns, 370U);
  EXPECT_EQ(card.critical_path_ns, 290U);
  EXPECT_EQ(card.model_critical_path_ns, 280U);
  EXPECT_NEAR(card.achieved_parallelism, 370.0 / 300.0, 1e-12);
  EXPECT_NEAR(card.max_parallelism, 370.0 / 290.0, 1e-12);
  EXPECT_NEAR(card.utilization, 370.0 / 600.0, 1e-12);
  EXPECT_NEAR(card.load_imbalance, 250.0 / 185.0, 1e-12);
  EXPECT_NEAR(card.steal_hit_rate, 0.75, 1e-12);
  EXPECT_NEAR(card.dep_stall_frac, 140.0 / 600.0, 1e-12);
  EXPECT_NEAR(card.steal_fail_frac, 20.0 / 600.0, 1e-12);
  EXPECT_NEAR(card.parked_frac, 50.0 / 600.0, 1e-12);
  EXPECT_NEAR(card.fault_frac, 20.0 / 600.0, 1e-12);
  // counters said busy 370 / idle 230 -> same 600-ns capacity.
  EXPECT_NEAR(card.runtime_efficiency, 370.0 / 600.0, 1e-12);
}

TEST(Analysis, DirectionNameConvention) {
  const auto dir = [](const char* name) {
    analysis::TaskRecord t;
    t.name = name;
    return t.direction();
  };
  EXPECT_EQ(dir("f0.3"), 'f');
  EXPECT_EQ(dir("bf1.2"), 'f');
  EXPECT_EQ(dir("r0.5"), 'r');
  EXPECT_EQ(dir("br2.9"), 'r');
  EXPECT_EQ(dir("m2.17"), '-');
  EXPECT_EQ(dir("final_merge"), '-');  // 'f' not followed by a digit
  EXPECT_EQ(dir("reduce"), '-');
  EXPECT_EQ(dir(""), '-');
}

TEST(Analysis, CriticalPathRejectsDanglingPredAndCycle) {
  analysis::TraceModel dangling = synthetic_model();
  dangling.tasks[3].preds = {1, 99};
  EXPECT_THROW(analysis::critical_path(dangling), util::Error);

  analysis::TraceModel cyclic = synthetic_model();
  cyclic.tasks[0].preds = {3};  // 0 -> 1 -> 3 -> 0
  EXPECT_THROW(analysis::critical_path(cyclic), util::Error);
}

TEST(Analysis, TraceJsonRoundTrip) {
  const analysis::TraceModel model = synthetic_model();
  std::ostringstream os;
  {
    obs::ChromeTraceWriter writer(os);
    analysis::write_model_events(writer, model, /*pid=*/1);
  }
  const analysis::TraceModel parsed =
      analysis::model_from_trace_json(obs::json_parse(os.str()));

  EXPECT_EQ(parsed.num_workers, model.num_workers);
  ASSERT_EQ(parsed.tasks.size(), model.tasks.size());
  ASSERT_EQ(parsed.worker_spans.size(), model.worker_spans.size());

  // The parsed model must reproduce the analysis exactly (the writer's
  // ns -> us conversion must be lossless at ns granularity).
  const analysis::Analysis a = analysis::analyze(model);
  const analysis::Analysis b = analysis::analyze(parsed);
  EXPECT_EQ(b.cp.measured_ns, a.cp.measured_ns);
  EXPECT_EQ(b.cp.chain, a.cp.chain);
  EXPECT_EQ(b.idle.total.dep_stall_ns, a.idle.total.dep_stall_ns);
  EXPECT_EQ(b.idle.total.steal_fail_ns, a.idle.total.steal_fail_ns);
  EXPECT_EQ(b.idle.total.parked_ns, a.idle.total.parked_ns);
  EXPECT_EQ(b.idle.total.fault_ns, a.idle.total.fault_ns);
  EXPECT_EQ(b.card.total_work_ns, a.card.total_work_ns);
}

TEST(Analysis, AnalysisJsonFlattens) {
  const analysis::Analysis a = analysis::analyze(synthetic_model(), 280);
  const obs::diff::MetricMap metrics =
      obs::diff::flatten(obs::json_parse(analysis::to_json(a)));
  ASSERT_TRUE(metrics.count("analysis/achieved_parallelism"));
  EXPECT_NEAR(metrics.at("analysis/achieved_parallelism"), 370.0 / 300.0,
              1e-9);
  ASSERT_TRUE(metrics.count("analysis/utilization"));
  ASSERT_TRUE(metrics.count("analysis/critical_path_ns"));
}

rnn::BatchData tiny_batch(const rnn::NetworkConfig& cfg,
                          std::uint64_t seed) {
  util::Rng rng(seed);
  rnn::BatchData batch;
  batch.x.resize(static_cast<std::size_t>(cfg.seq_length));
  for (auto& m : batch.x) {
    m.resize(cfg.batch_size, cfg.input_size);
    tensor::fill_uniform(m.view(), rng, -1.0F, 1.0F);
  }
  batch.labels.resize(static_cast<std::size_t>(cfg.batch_size));
  for (auto& l : batch.labels) {
    l = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(cfg.num_classes)));
  }
  return batch;
}

rnn::NetworkConfig small_config() {
  rnn::NetworkConfig cfg;
  cfg.cell = rnn::CellType::kLstm;
  cfg.input_size = 16;
  cfg.hidden_size = 48;
  cfg.num_layers = 2;
  cfg.seq_length = 24;
  cfg.batch_size = 16;
  cfg.num_classes = 5;
  cfg.seed = 7;
  return cfg;
}

// ISSUE acceptance check: on a real execution, the scorecard's
// trace-derived utilization must agree with the runtime's own busy/idle
// accounting (runtime_efficiency) to within 5%.
TEST(Analysis, RealRuntimeScorecardMatchesRuntimeAccounting) {
  const rnn::NetworkConfig cfg = small_config();
  rnn::Network net(cfg);
  exec::BParOptions options;
  options.common.num_workers = 4;
  options.record_trace = true;
  exec::BParExecutor executor(net, options);
  const rnn::BatchData batch = tiny_batch(cfg, 42);
  exec::StepResult step;
  for (int i = 0; i < 2; ++i) step = executor.train_batch(batch);

  const analysis::TraceModel model =
      taskrt::make_trace_model(executor.train_program().graph(), step.stats);
  EXPECT_EQ(model.tasks.size(), step.stats.tasks_executed);
  const analysis::Analysis a = analysis::analyze(model);

  EXPECT_GT(a.card.utilization, 0.0);
  EXPECT_LE(a.card.utilization, 1.0 + 1e-9);
  ASSERT_GT(a.card.runtime_efficiency, 0.0);
  EXPECT_NEAR(a.card.utilization, a.card.runtime_efficiency,
              0.05 * a.card.runtime_efficiency);

  // The measured critical path bounds the window from below, the total
  // work from above.
  EXPECT_GE(a.cp.measured_ns, 1U);
  EXPECT_LE(a.cp.measured_ns, a.cp.makespan_ns);
  EXPECT_LE(a.cp.measured_ns, a.card.total_work_ns);

  // Busy + classified idle tiles workers x makespan exactly.
  EXPECT_EQ(a.idle.total.busy_ns + a.idle.total.idle_ns(),
            a.cp.makespan_ns * 4);
}

// The same real run must survive the full disk round trip: unified trace
// JSON -> model_from_trace_json -> identical work/task accounting.
TEST(Analysis, RealRuntimeUnifiedTraceRoundTrip) {
  const rnn::NetworkConfig cfg = small_config();
  rnn::Network net(cfg);
  exec::BParOptions options;
  options.common.num_workers = 2;
  options.record_trace = true;
  exec::BParExecutor executor(net, options);
  const exec::StepResult step = executor.train_batch(tiny_batch(cfg, 9));

  const taskrt::TaskGraph& graph = executor.train_program().graph();
  std::ostringstream os;
  taskrt::write_unified_trace(graph, step.stats, os);
  const analysis::TraceModel parsed =
      analysis::model_from_trace_json(obs::json_parse(os.str()));
  const analysis::TraceModel direct =
      taskrt::make_trace_model(graph, step.stats);

  ASSERT_EQ(parsed.tasks.size(), direct.tasks.size());
  EXPECT_EQ(parsed.num_workers, direct.num_workers);
  const analysis::Analysis a = analysis::analyze(parsed);
  const analysis::Analysis b = analysis::analyze(direct);
  EXPECT_EQ(a.card.tasks, b.card.tasks);
  // us-granularity rounding on the disk path: within 1 us per task.
  const auto tol = static_cast<double>(parsed.tasks.size()) * 1000.0;
  EXPECT_NEAR(static_cast<double>(a.card.total_work_ns),
              static_cast<double>(b.card.total_work_ns), tol);
  EXPECT_EQ(a.cp.length, b.cp.length);
}

// ---- diff / baseline ----

obs::JsonValue gbench_doc(double real_ns, double cpu_ns) {
  std::ostringstream os;
  os << "{\"benchmarks\": [{\"name\": \"micro/steal\", \"real_time\": "
     << real_ns << ", \"cpu_time\": " << cpu_ns
     << ", \"time_unit\": \"ns\"}]}";
  return obs::json_parse(os.str());
}

TEST(Diff, FlagsInjectedSlowdown) {
  // 2x slowdown on real_time: must exit 1 with exactly that regression.
  const obs::diff::DiffResult result = obs::diff::diff_docs(
      gbench_doc(100.0, 90.0), gbench_doc(200.0, 91.0));
  EXPECT_EQ(result.exit_code(), 1);
  EXPECT_EQ(result.regressions(), 1U);
  ASSERT_FALSE(result.deltas.empty());
  const auto& d = result.deltas.front();  // gbench/.../cpu_time first
  EXPECT_FALSE(d.regression);             // +1.1% cpu_time is noise
}

TEST(Diff, UnchangedRerunWithNoiseIsClean) {
  // +-3% jitter: below the 15% relative threshold -> exit 0.
  const obs::diff::DiffResult result = obs::diff::diff_docs(
      gbench_doc(100.0, 90.0), gbench_doc(103.0, 87.5));
  EXPECT_EQ(result.exit_code(), 0);
  EXPECT_EQ(result.regressions(), 0U);
}

TEST(Diff, AbsoluteFloorSuppressesTinyMetrics) {
  // 50% relative jump, but the absolute change (0.1) is under the 0.5
  // floor: noise on a micro-scale metric, not a regression.
  const obs::diff::DiffResult result =
      obs::diff::diff_docs(gbench_doc(0.2, 0.2), gbench_doc(0.3, 0.2));
  EXPECT_EQ(result.exit_code(), 0);
}

TEST(Diff, HigherIsBetterDirection) {
  obs::diff::MetricMap old_map{{"analysis/utilization", 0.8}};
  obs::diff::MetricMap new_map{{"analysis/utilization", 0.4}};
  const obs::diff::DiffResult drop =
      obs::diff::diff_maps(old_map, new_map);
  EXPECT_EQ(drop.regressions(), 1U);  // utilization fell -> regression
  const obs::diff::DiffResult rise =
      obs::diff::diff_maps(new_map, old_map);
  EXPECT_EQ(rise.regressions(), 0U);
  EXPECT_EQ(rise.improvements(), 1U);
}

TEST(Diff, StructuralMismatchExitsTwo) {
  const obs::diff::DiffResult bad_doc = obs::diff::diff_docs(
      obs::json_parse("{\"foo\": 1}"), gbench_doc(1.0, 1.0));
  EXPECT_TRUE(bad_doc.structural);
  EXPECT_EQ(bad_doc.exit_code(), 2);

  // Zero overlapping metrics is also structural, not "no regressions".
  const obs::diff::DiffResult disjoint = obs::diff::diff_maps(
      {{"gbench/a/real_time", 1.0}}, {{"gbench/b/real_time", 1.0}});
  EXPECT_EQ(disjoint.exit_code(), 2);
}

TEST(Diff, BaselineMinOfNMerge) {
  obs::diff::Baseline baseline;
  obs::diff::merge_baseline(baseline, {{"gbench/x/real_time", 100.0},
                                       {"analysis/utilization", 0.5}});
  obs::diff::merge_baseline(baseline, {{"gbench/x/real_time", 90.0},
                                       {"analysis/utilization", 0.6}});
  obs::diff::merge_baseline(baseline, {{"gbench/x/real_time", 95.0},
                                       {"analysis/utilization", 0.55}});
  // min for lower-is-better, max for higher-is-better, 3 runs each.
  EXPECT_DOUBLE_EQ(baseline.at("gbench/x/real_time").value, 90.0);
  EXPECT_DOUBLE_EQ(baseline.at("analysis/utilization").value, 0.6);
  EXPECT_EQ(baseline.at("gbench/x/real_time").runs, 3);

  // Serialized baseline round trip and flatten() as a diffable document.
  const obs::JsonValue doc =
      obs::json_parse(obs::diff::baseline_json(baseline));
  const obs::diff::Baseline reloaded = obs::diff::load_baseline(doc);
  EXPECT_EQ(reloaded.size(), baseline.size());
  EXPECT_DOUBLE_EQ(reloaded.at("gbench/x/real_time").value, 90.0);
  EXPECT_EQ(reloaded.at("analysis/utilization").runs, 3);
  const obs::diff::MetricMap metrics = obs::diff::flatten(doc);
  EXPECT_DOUBLE_EQ(metrics.at("gbench/x/real_time"), 90.0);
}

// ---- hardware-counter plumbing ----

TEST(Counters, DeltaAppliesMultiplexScaling) {
  perf::CounterReading begin;
  perf::CounterReading end;
  begin.valid = end.valid = true;
  // cycles: on the PMC half the time -> values double, scale 2.
  begin.events[perf::kCycles] = {1000, 1000, 1000, true};
  end.events[perf::kCycles] = {1100, 3000, 2000, true};
  // instructions: fully counted -> exact, scale 1.
  begin.events[perf::kInstructions] = {500, 1000, 1000, true};
  end.events[perf::kInstructions] = {550, 3000, 3000, true};

  const perf::CounterSample d = perf::counter_delta(begin, end);
  EXPECT_EQ(d.cycles, 200U);
  EXPECT_EQ(d.instructions, 50U);
  EXPECT_DOUBLE_EQ(d.scale, 2.0);
  EXPECT_TRUE(d.multiplexed());
  EXPECT_NEAR(d.ipc(), 50.0 / 200.0, 1e-12);
}

TEST(Counters, NeverScheduledEventFlagsInfinity) {
  perf::CounterReading begin;
  perf::CounterReading end;
  begin.valid = end.valid = true;
  begin.events[perf::kLlcMisses] = {10, 100, 0, true};
  end.events[perf::kLlcMisses] = {10, 500, 0, true};  // enabled, never ran
  const perf::CounterSample d = perf::counter_delta(begin, end);
  EXPECT_EQ(d.llc_misses, 0U);
  EXPECT_TRUE(std::isinf(d.scale));
}

TEST(Counters, InvalidReadingYieldsEmptySample) {
  const perf::CounterSample d =
      perf::counter_delta(perf::CounterReading{}, perf::CounterReading{});
  EXPECT_EQ(d.cycles, 0U);
  EXPECT_DOUBLE_EQ(d.scale, 1.0);
}

TEST(Counters, HwClassRowsFromRunStats) {
  taskrt::RunStats stats;
  stats.kind_counters.resize(
      static_cast<std::size_t>(taskrt::kNumTaskKinds));
  auto& kc = stats.kind_counters[static_cast<std::size_t>(
      taskrt::TaskKind::kCellForward)];
  kc.tasks = 12;
  kc.busy_ns = 3'000'000;
  kc.counters.cycles = 6'000'000;
  kc.counters.instructions = 9'000'000;
  kc.counters.llc_misses = 9'000;
  kc.counters.cache_references = 90'000;
  kc.counters.branch_misses = 4'500;
  kc.counters.scale = 1.25;

  const auto rows = taskrt::hw_class_rows(stats);
  ASSERT_EQ(rows.size(), 1U);
  EXPECT_EQ(rows[0].tasks, 12U);
  EXPECT_EQ(rows[0].busy_ns, 3'000'000U);
  EXPECT_NEAR(rows[0].ipc, 1.5, 1e-12);
  EXPECT_NEAR(rows[0].mpki, 1.0, 1e-12);
  EXPECT_NEAR(rows[0].branch_mpki, 0.5, 1e-12);
  EXPECT_NEAR(rows[0].llc_miss_rate, 0.1, 1e-12);
  EXPECT_NEAR(rows[0].scale, 1.25, 1e-12);
}

// When perf_event_open works in this environment, a sampled run must
// attribute counters to the task classes that actually executed; when it
// does not, kind_counters must stay empty (the clean fallback).
TEST(Counters, SampledRunPopulatesKindCountersWhenAvailable) {
  const rnn::NetworkConfig cfg = small_config();
  rnn::Network net(cfg);
  exec::BParOptions options;
  options.common.num_workers = 2;
  options.sample_counters = true;
  exec::BParExecutor executor(net, options);
  const exec::StepResult step = executor.train_batch(tiny_batch(cfg, 3));

  const perf::PerfCounters probe(perf::CounterScope::kThread);
  if (!probe.available()) {
    EXPECT_TRUE(step.stats.kind_counters.empty());
    return;
  }
  const auto rows = taskrt::hw_class_rows(step.stats);
  ASSERT_FALSE(rows.empty());
  std::size_t sampled_tasks = 0;
  for (const auto& row : rows) sampled_tasks += row.tasks;
  EXPECT_EQ(sampled_tasks, step.stats.tasks_executed);
}

}  // namespace
}  // namespace bpar
