// DOT / Chrome-trace export tests.
#include <gtest/gtest.h>

#include <sstream>
#include <fstream>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "taskrt/export.hpp"
#include "taskrt/runtime.hpp"

namespace bpar::taskrt {
namespace {

TaskGraph diamond(int& a, int& b, int& c) {
  TaskGraph g;
  TaskSpec root;
  root.name = "root";
  root.kind = TaskKind::kCellForward;
  g.add([] {}, {out(&a)}, root);
  TaskSpec left;
  left.name = "left \"quoted\"";
  left.kind = TaskKind::kMerge;
  g.add([] {}, {in(&a), out(&b)}, left);
  TaskSpec right;
  right.kind = TaskKind::kCellBackward;  // unnamed → kind label
  g.add([] {}, {in(&a), out(&c)}, right);
  TaskSpec join;
  join.name = "join";
  g.add([] {}, {in(&b), in(&c)}, join);
  return g;
}

TEST(DotExport, ContainsNodesEdgesAndEscapes) {
  int a = 0;
  int b = 0;
  int c = 0;
  const TaskGraph g = diamond(a, b, c);
  std::ostringstream os;
  write_dot(g, os);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph bpar"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t2"), std::string::npos);
  EXPECT_NE(dot.find("t1 -> t3"), std::string::npos);
  EXPECT_NE(dot.find("t2 -> t3"), std::string::npos);
  EXPECT_NE(dot.find("root"), std::string::npos);
  EXPECT_NE(dot.find("left \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(dot.find("cell_bwd 2"), std::string::npos);  // unnamed fallback
  EXPECT_EQ(dot.find("truncated"), std::string::npos);
}

TEST(DotExport, EscapesBackslashesAndNewlines) {
  TaskGraph g;
  int a = 0;
  TaskSpec spec;
  spec.name = "path\\to\nthing";
  g.add([] {}, {out(&a)}, spec);
  std::ostringstream os;
  write_dot(g, os);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("path\\\\to\\nthing"), std::string::npos);
  // No raw newline may survive inside a label: every line with a label
  // attribute must also close it.
  std::istringstream lines(dot);
  for (std::string line; std::getline(lines, line);) {
    if (line.find("label=\"") != std::string::npos) {
      EXPECT_NE(line.rfind('"'), line.find("label=\"") + 6) << line;
    }
  }
}

TEST(ChromeTrace, EscapedNamesProduceValidJson) {
  TaskGraph g;
  int a = 0;
  TaskSpec spec;
  spec.name = "bad \"name\"\nwith\\stuff";
  g.add([] {}, {out(&a)}, spec);
  Runtime rt({.num_workers = 1, .record_trace = true});
  const RunStats stats = rt.run(g);
  std::ostringstream os;
  write_chrome_trace(g, stats, os);
  const bpar::obs::JsonValue doc = bpar::obs::json_parse(os.str());
  ASSERT_TRUE(doc.is_array());
  bool found = false;
  for (const auto& ev : doc.array) {
    const auto* name = ev.find("name");
    if (name != nullptr && name->str == "bad \"name\"\nwith\\stuff") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

#if !defined(BPAR_NO_TRACING)
TEST(UnifiedTrace, MergesTaskRowsAndSpanRows) {
  bpar::obs::clear();
  bpar::obs::set_tracing_enabled(true);
  int a = 0;
  int b = 0;
  int c = 0;
  TaskGraph g = diamond(a, b, c);
  Runtime rt({.num_workers = 2, .record_trace = true});
  const RunStats stats = rt.run(g);
  bpar::obs::set_tracing_enabled(false);

  std::ostringstream os;
  write_unified_trace(g, stats, os);
  const bpar::obs::JsonValue doc = bpar::obs::json_parse(os.str());
  ASSERT_TRUE(doc.is_array());
  bool saw_task_row = false;
  bool saw_span_row = false;
  bool saw_named_task = false;
  bool saw_counter = false;
  std::size_t ring_task_slices = 0;
  for (const auto& ev : doc.array) {
    const std::string& ph = ev.at("ph").str;
    if (ph == "M") {
      const std::string& name = ev.at("args").at("name").str;
      if (name.rfind("tasks w", 0) == 0) saw_task_row = true;
      if (name.find("(spans)") != std::string::npos) saw_span_row = true;
    }
    if (ph == "C" && ev.at("name").str == "ready_fifo_depth") {
      saw_counter = true;
    }
    if (ph == "X") {
      if (ev.at("name").str == "root") saw_named_task = true;
      // Ring rows (tid >= 100) must not duplicate the fully-named task
      // slices already emitted on the worker rows.
      if (ev.at("tid").number >= 100.0 && ev.at("cat").str == "task") {
        ++ring_task_slices;
      }
      EXPECT_GE(ev.at("ts").number, 0.0);
    }
  }
  EXPECT_TRUE(saw_task_row);
  EXPECT_TRUE(saw_span_row);
  EXPECT_TRUE(saw_named_task);
  EXPECT_TRUE(saw_counter);
  EXPECT_EQ(ring_task_slices, 0U);
  bpar::obs::clear();
}
#endif  // !BPAR_NO_TRACING

TEST(DotExport, TruncatesLargeGraphs) {
  TaskGraph g;
  std::vector<int> slots(50);
  for (auto& s : slots) g.add([] {}, {out(&s)});
  std::ostringstream os;
  write_dot(g, os, {.max_tasks = 10});
  const std::string dot = os.str();
  EXPECT_NE(dot.find("t9 "), std::string::npos);
  EXPECT_EQ(dot.find("t10 "), std::string::npos);
  EXPECT_NE(dot.find("40 more tasks"), std::string::npos);
}

TEST(ChromeTrace, EmitsOneEventPerTask) {
  int a = 0;
  int b = 0;
  int c = 0;
  TaskGraph g = diamond(a, b, c);
  Runtime rt({.num_workers = 2, .record_trace = true});
  const RunStats stats = rt.run(g);
  std::ostringstream os;
  write_chrome_trace(g, stats, os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  std::size_t events = 0;
  for (std::size_t pos = json.find("\"ph\": \"X\"");
       pos != std::string::npos; pos = json.find("\"ph\": \"X\"", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, 4U);
  EXPECT_NE(json.find("\"name\": \"root\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"merge\""), std::string::npos);
}

TEST(ChromeTrace, RequiresRecordedTrace) {
  int a = 0;
  int b = 0;
  int c = 0;
  TaskGraph g = diamond(a, b, c);
  Runtime rt({.num_workers = 1});  // no trace
  const RunStats stats = rt.run(g);
  std::ostringstream os;
  EXPECT_DEATH(write_chrome_trace(g, stats, os), "record_trace");
}

TEST(FileExports, WriteToDisk) {
  int a = 0;
  int b = 0;
  int c = 0;
  TaskGraph g = diamond(a, b, c);
  const std::string dot_path = ::testing::TempDir() + "/bpar_test.dot";
  write_dot_file(g, dot_path);
  std::ifstream in(dot_path);
  EXPECT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "digraph bpar {");
}

}  // namespace
}  // namespace bpar::taskrt
