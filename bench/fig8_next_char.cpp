// Fig. 8 — next-character prediction (Wikipedia-style, many-to-many) batch
// training time of B-Par vs Keras-CPU for BLSTM and BGRU, varying layer
// count, batch size, and hidden size.
//
// Paper shape: B-Par wins every configuration, with max speed-ups of
// 1.54x / 2.17x / 2.38x / 2.44x at 2 / 4 / 8 / 12 layers.
#include <algorithm>
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  bpar::util::ArgParser args("fig8_next_char",
                             "many-to-many next-char prediction vs Keras");
  bench::add_common_flags(args);
  args.add_int("cores", 48, "simulated cores");
  args.add_int("seq", 100, "sequence length");
  args.add_int("replicas", 8, "B-Par mini-batches");
  if (!args.parse(argc, argv)) return 1;

  bench::SimSetup setup;
  setup.calibration = bench::resolve_calibration(args);
  setup.cores = static_cast<int>(args.get_int("cores"));
  const int replicas = static_cast<int>(args.get_int("replicas"));

  std::vector<double> max_speedup_per_layers;
  const std::vector<int> layer_list = {2, 4, 8, 12};
  for (const auto cell :
       {bpar::rnn::CellType::kLstm, bpar::rnn::CellType::kGru}) {
    bpar::util::Table table(
        {"layers", "batch", "hidden", "Keras(ms)", "B-Par(ms)", "S(K)"});
    for (std::size_t li = 0; li < layer_list.size(); ++li) {
      const int layers = layer_list[li];
      for (const int batch : {64, 128}) {
        for (const int hidden : {128, 256}) {
          auto cfg = bench::table_network(cell, 64, hidden, batch,
                                          static_cast<int>(args.get_int("seq")),
                                          layers, /*many_to_many=*/true);
          cfg.num_classes = 64;  // character vocabulary
          bpar::rnn::Network net(cfg, /*allocate_weights=*/false);
          const double keras = bench::simulate_framework(
              net, setup, bpar::exec::keras_cpu_profile());
          const double bpar_ms =
              bench::simulate_bpar(net, setup, replicas);
          const double speedup = keras / bpar_ms;
          if (max_speedup_per_layers.size() <= li) {
            max_speedup_per_layers.resize(li + 1, 0.0);
          }
          max_speedup_per_layers[li] =
              std::max(max_speedup_per_layers[li], speedup);
          table.add_row({std::to_string(layers), std::to_string(batch),
                         std::to_string(hidden), bpar::util::fmt_ms(keras),
                         bpar::util::fmt_ms(bpar_ms),
                         bpar::util::fmt_speedup(speedup)});
        }
      }
    }
    table.print(std::string("Fig. 8 (") + bpar::rnn::cell_name(cell) +
                "): many-to-many next-char prediction, B-Par vs Keras");
    bench::emit_csv(args, table,
                    std::string("fig8_next_char_") +
                        (cell == bpar::rnn::CellType::kLstm ? "blstm"
                                                            : "bgru"));
  }

  std::printf("\nmax B-Par speed-up per layer count (both cell types):\n");
  const double paper[] = {1.54, 2.17, 2.38, 2.44};
  for (std::size_t li = 0; li < layer_list.size(); ++li) {
    std::printf("  %2d layers: measured %s (paper %s)\n", layer_list[li],
                bpar::util::fmt_speedup(max_speedup_per_layers[li]).c_str(),
                bpar::util::fmt_speedup(paper[li]).c_str());
  }
  return 0;
}
