// google-benchmark microbenchmarks of the numeric substrate: GEMM
// variants, cell forward/backward kernels, merges, softmax, plus
// per-backend (scalar / AVX2 / AVX-512 / NEON) and int8 kernel benches for
// the BPAR_KERNEL_BACKEND A/B comparisons in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include <string>

#include "kernels/backend.hpp"
#include "kernels/elementwise.hpp"
#include "kernels/gemm.hpp"
#include "kernels/quant.hpp"
#include "rnn/cell_kernels.hpp"
#include "rnn/flops.hpp"
#include "rnn/merge.hpp"
#include "util/rng.hpp"

namespace {

using bpar::tensor::Matrix;

void BM_GemmNt(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const int k = static_cast<int>(state.range(2));
  bpar::util::Rng rng(1);
  Matrix a(m, k);
  Matrix b(n, k);
  Matrix c(m, n);
  bpar::tensor::fill_uniform(a.view(), rng, -1.0F, 1.0F);
  bpar::tensor::fill_uniform(b.view(), rng, -1.0F, 1.0F);
  for (auto _ : state) {
    bpar::kernels::gemm_nt(a.cview(), b.cview(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      bpar::kernels::gemm_flops(m, n, k) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_GemmNt)
    ->Args({32, 256, 128})
    ->Args({128, 1024, 512})
    ->Args({1, 1024, 512});

void BM_GemmTn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  bpar::util::Rng rng(2);
  Matrix a(64, n);
  Matrix b(64, n);
  Matrix c(n, n);
  bpar::tensor::fill_uniform(a.view(), rng, -1.0F, 1.0F);
  bpar::tensor::fill_uniform(b.view(), rng, -1.0F, 1.0F);
  for (auto _ : state) {
    bpar::kernels::gemm_tn(a.cview(), b.cview(), c.view(), 1.0F, 1.0F);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmTn)->Arg(128)->Arg(384);

template <bpar::rnn::CellType kCell>
void BM_CellForward(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const int hidden = static_cast<int>(state.range(1));
  const int input = 64;
  bpar::util::Rng rng(3);
  bpar::rnn::LayerParams params;
  params.init(kCell, input, hidden, rng);
  Matrix x(batch, input);
  Matrix h_prev(batch, hidden);
  Matrix c_prev(batch, hidden);
  bpar::tensor::fill_uniform(x.view(), rng, -1.0F, 1.0F);
  bpar::rnn::CellTape tape;
  tape.init(kCell, batch, hidden);
  for (auto _ : state) {
    bpar::rnn::cell_forward(params, x.cview(), h_prev.cview(),
                            c_prev.cview(), tape);
    benchmark::DoNotOptimize(tape.h.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      bpar::rnn::cell_forward_flops(kCell, batch, input, hidden) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_CellForward<bpar::rnn::CellType::kLstm>)
    ->Args({16, 256})
    ->Args({128, 256});
BENCHMARK(BM_CellForward<bpar::rnn::CellType::kGru>)
    ->Args({16, 256})
    ->Args({128, 256});

template <bpar::rnn::CellType kCell>
void BM_CellBackward(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const int hidden = static_cast<int>(state.range(1));
  const int input = 64;
  bpar::util::Rng rng(4);
  bpar::rnn::LayerParams params;
  params.init(kCell, input, hidden, rng);
  Matrix x(batch, input);
  Matrix h_prev(batch, hidden);
  Matrix c_prev(batch, hidden);
  bpar::tensor::fill_uniform(x.view(), rng, -1.0F, 1.0F);
  bpar::rnn::CellTape tape;
  tape.init(kCell, batch, hidden);
  bpar::rnn::cell_forward(params, x.cview(), h_prev.cview(), c_prev.cview(),
                          tape);
  Matrix dh(batch, hidden);
  bpar::tensor::fill_constant(dh.view(), 1.0F);
  Matrix dx(batch, input);
  Matrix dh_prev(batch, hidden);
  Matrix dc_prev(batch, hidden);
  bpar::rnn::LayerGrads grads;
  grads.init_like(params);
  const bool lstm = kCell == bpar::rnn::CellType::kLstm;
  for (auto _ : state) {
    bpar::rnn::cell_backward(
        params, x.cview(), h_prev.cview(), c_prev.cview(), tape, dh.cview(),
        {}, dx.view(), dh_prev.view(),
        lstm ? dc_prev.view() : bpar::tensor::MatrixView{}, grads);
    benchmark::DoNotOptimize(grads.dw.data());
  }
}
BENCHMARK(BM_CellBackward<bpar::rnn::CellType::kLstm>)->Args({16, 256});
BENCHMARK(BM_CellBackward<bpar::rnn::CellType::kGru>)->Args({16, 256});

void BM_MergeForward(benchmark::State& state) {
  const auto op = static_cast<bpar::rnn::MergeOp>(state.range(0));
  bpar::util::Rng rng(5);
  Matrix hf(128, 256);
  Matrix hr(128, 256);
  bpar::tensor::fill_uniform(hf.view(), rng, -1.0F, 1.0F);
  bpar::tensor::fill_uniform(hr.view(), rng, -1.0F, 1.0F);
  Matrix y(128, bpar::rnn::merge_output_size(op, 256));
  for (auto _ : state) {
    bpar::rnn::merge_forward(op, hf.cview(), hr.cview(), y.view());
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MergeForward)->Arg(0)->Arg(1)->Arg(3);

// Per-backend benches: one registration per runtime-dispatchable backend,
// named BM_<Kernel>Backend/<name>, so `bpar_prof diff` can compare e.g.
// gbench/BM_GemmNtBackend/avx512 against .../scalar across runs.
void gemm_nt_backend(benchmark::State& state,
                     const bpar::kernels::Backend* backend, int m, int n,
                     int k) {
  bpar::util::Rng rng(7);
  Matrix a(m, k);
  Matrix b(n, k);
  Matrix c(m, n);
  bpar::tensor::fill_uniform(a.view(), rng, -1.0F, 1.0F);
  bpar::tensor::fill_uniform(b.view(), rng, -1.0F, 1.0F);
  for (auto _ : state) {
    backend->gemm_nt(a.cview(), b.cview(), c.view(), 1.0F, 0.0F);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      bpar::kernels::gemm_flops(m, n, k) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

void gemm_nn_backend(benchmark::State& state,
                     const bpar::kernels::Backend* backend, int m, int n,
                     int k) {
  bpar::util::Rng rng(8);
  Matrix a(m, k);
  Matrix b(k, n);
  Matrix c(m, n);
  bpar::tensor::fill_uniform(a.view(), rng, -1.0F, 1.0F);
  bpar::tensor::fill_uniform(b.view(), rng, -1.0F, 1.0F);
  for (auto _ : state) {
    backend->gemm_nn(a.cview(), b.cview(), c.view(), 1.0F, 0.0F);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      bpar::kernels::gemm_flops(m, n, k) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

void sigmoid_backend(benchmark::State& state,
                     const bpar::kernels::Backend* backend) {
  bpar::util::Rng rng(9);
  Matrix base(64, 1024);
  bpar::tensor::fill_uniform(base.view(), rng, -8.0F, 8.0F);
  Matrix work = base;
  for (auto _ : state) {
    state.PauseTiming();
    work = base;
    state.ResumeTiming();
    for (int r = 0; r < work.rows(); ++r) {
      backend->sigmoid_inplace(work.view().row(r));
    }
    benchmark::DoNotOptimize(work.data());
  }
}

void BM_QgemmNtInt8(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const int k = static_cast<int>(state.range(2));
  bpar::util::Rng rng(10);
  Matrix a(m, k);
  Matrix b(n, k);
  Matrix c(m, n);
  bpar::tensor::fill_uniform(a.view(), rng, -1.0F, 1.0F);
  bpar::tensor::fill_uniform(b.view(), rng, -1.0F, 1.0F);
  bpar::kernels::QuantizedMatrix qb;
  qb.quantize_from(b.cview());
  for (auto _ : state) {
    bpar::kernels::qgemm_nt(a.cview(), qb.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      bpar::kernels::gemm_flops(m, n, k) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_QgemmNtInt8)->Args({32, 256, 128})->Args({128, 1024, 512});

const int kBackendBenchesRegistered = [] {
  int count = 0;
  for (const auto* backend : bpar::kernels::available_backends()) {
    const std::string name = backend->name;
    benchmark::RegisterBenchmark(
        ("BM_GemmNtBackend/" + name).c_str(),
        [backend](benchmark::State& s) {
          gemm_nt_backend(s, backend, 128, 1024, 512);
        });
    benchmark::RegisterBenchmark(
        ("BM_GemmNnBackend/" + name).c_str(),
        [backend](benchmark::State& s) {
          gemm_nn_backend(s, backend, 128, 512, 1024);
        });
    benchmark::RegisterBenchmark(
        ("BM_SigmoidBackend/" + name).c_str(),
        [backend](benchmark::State& s) { sigmoid_backend(s, backend); });
    ++count;
  }
  return count;
}();

void BM_SoftmaxCe(benchmark::State& state) {
  bpar::util::Rng rng(6);
  Matrix logits(128, 64);
  Matrix probs(128, 64);
  bpar::tensor::fill_uniform(logits.view(), rng, -2.0F, 2.0F);
  std::vector<int> labels(128, 3);
  for (auto _ : state) {
    bpar::kernels::softmax_rows(logits.cview(), probs.view());
    benchmark::DoNotOptimize(
        bpar::kernels::cross_entropy(probs.cview(), labels));
  }
}
BENCHMARK(BM_SoftmaxCe);

}  // namespace
