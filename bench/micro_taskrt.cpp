// google-benchmark microbenchmarks of the task runtime: graph construction
// (dependency resolution) throughput, per-task execution overhead, and
// parallel_for fork-join cost — the quantities behind the paper's claim
// that B-Par's runtime overhead is 10x smaller than useful task time.
#include <benchmark/benchmark.h>

#include <vector>

#include "obs/trace.hpp"
#include "taskrt/runtime.hpp"
#include "taskrt/task_graph.hpp"

namespace {

using bpar::taskrt::inout;
using bpar::taskrt::out;
using bpar::taskrt::Runtime;
using bpar::taskrt::SchedulerPolicy;
using bpar::taskrt::TaskGraph;

void BM_GraphBuildIndependent(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<int> slots(n);
  for (auto _ : state) {
    TaskGraph g;
    for (auto& s : slots) g.add([] {}, {out(&s)});
    benchmark::DoNotOptimize(g.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_GraphBuildIndependent)->Arg(1000)->Arg(10000);

void BM_GraphBuildChained(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  int x = 0;
  for (auto _ : state) {
    TaskGraph g;
    for (std::size_t i = 0; i < n; ++i) g.add([] {}, {inout(&x)});
    benchmark::DoNotOptimize(g.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_GraphBuildChained)->Arg(1000)->Arg(10000);

void BM_RuntimeEmptyTasks(benchmark::State& state) {
  const auto workers = static_cast<int>(state.range(0));
  Runtime rt({.num_workers = workers});
  std::vector<int> slots(1000);
  for (auto _ : state) {
    state.PauseTiming();
    TaskGraph g;
    for (auto& s : slots) g.add([] {}, {out(&s)});
    state.ResumeTiming();
    rt.run(g);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_RuntimeEmptyTasks)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

// Per-task dispatch overhead with every worker contending for the
// scheduler: tiny independent tasks submitted dynamically. This is the
// quantity the Fig. 4 core-scaling claim rests on.
void BM_DispatchOverheadDynamic(benchmark::State& state) {
  const auto workers = static_cast<int>(state.range(0));
  Runtime rt({.num_workers = workers,
              .policy = SchedulerPolicy::kLocalityAware});
  constexpr int kTasks = 2000;
  for (auto _ : state) {
    bpar::taskrt::TaskGraph g;
    rt.begin(g);
    for (int i = 0; i < kTasks; ++i) {
      rt.submit([] {
        volatile int spin = 0;
        for (int j = 0; j < 64; ++j) spin = spin + j;
      });
    }
    rt.end();
  }
  state.SetItemsProcessed(state.iterations() * kTasks);
}
BENCHMARK(BM_DispatchOverheadDynamic)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

// Same workload with span tracing armed: the delta against the benchmark
// above is the telemetry layer's dispatch-path cost (budget: <5% with
// tracing on, 0% when compiled out via BPAR_NO_TRACING).
void BM_DispatchOverheadDynamicTraced(benchmark::State& state) {
  const auto workers = static_cast<int>(state.range(0));
  bpar::obs::set_tracing_enabled(true);
  Runtime rt({.num_workers = workers,
              .policy = SchedulerPolicy::kLocalityAware});
  constexpr int kTasks = 2000;
  for (auto _ : state) {
    bpar::taskrt::TaskGraph g;
    rt.begin(g);
    for (int i = 0; i < kTasks; ++i) {
      rt.submit([] {
        volatile int spin = 0;
        for (int j = 0; j < 64; ++j) spin = spin + j;
      });
    }
    rt.end();
  }
  bpar::obs::set_tracing_enabled(false);
  state.SetItemsProcessed(state.iterations() * kTasks);
}
BENCHMARK(BM_DispatchOverheadDynamicTraced)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

void BM_RuntimeChainLatency(benchmark::State& state) {
  Runtime rt({.num_workers = 2,
              .policy = static_cast<SchedulerPolicy>(state.range(0))});
  int x = 0;
  for (auto _ : state) {
    state.PauseTiming();
    TaskGraph g;
    for (int i = 0; i < 500; ++i) g.add([] {}, {inout(&x)});
    state.ResumeTiming();
    rt.run(g);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_RuntimeChainLatency)->Arg(0)->Arg(1);

void BM_ParallelFor(benchmark::State& state) {
  Runtime rt({.num_workers = static_cast<int>(state.range(0))});
  std::vector<double> data(1 << 14);
  for (auto _ : state) {
    rt.parallel_for(0, static_cast<std::int64_t>(data.size()), 1024,
                    [&](std::int64_t lo, std::int64_t hi) {
                      for (std::int64_t i = lo; i < hi; ++i) {
                        data[static_cast<std::size_t>(i)] += 1.0;
                      }
                    });
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_ParallelFor)->Arg(1)->Arg(4);

}  // namespace
