// Fig. 3 — B-Par speed-up against B-Par-mbs:1 on 1 core, sweeping
// mini-batch counts (mbs:1..12) and core counts (1..48), for 8- and
// 12-layer BLSTM models (seq 100, input 256).
//
// Paper shape to reproduce: best speed-up at mbs:8 on 48 cores; mbs:10/12
// slightly worse (task-creation overhead); mbs:1/2/4 degrade at 32/48
// cores (NUMA); mbs:8+ keep improving from 24 to 32 cores.
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  bpar::util::ArgParser args("fig3_minibatch_scaling",
                             "B-Par mini-batch x core-count scaling");
  bench::add_common_flags(args);
  args.add_int("batch", 120, "total batch size (divisible by all mbs)");
  args.add_int("seq", 100, "sequence length");
  args.add_int("hidden", 256, "hidden size");
  if (!args.parse(argc, argv)) return 1;

  bench::SimSetup setup;
  setup.calibration = bench::resolve_calibration(args);
  const int batch = static_cast<int>(args.get_int("batch"));
  const std::vector<int> mbs_list = {1, 2, 4, 6, 8, 10, 12};
  const std::vector<int> core_list = {1, 2, 4, 8, 16, 24, 32, 48};

  for (const int layers : {8, 12}) {
    const auto cfg = bench::table_network(
        bpar::rnn::CellType::kLstm, /*input=*/256,
        static_cast<int>(args.get_int("hidden")), batch,
        static_cast<int>(args.get_int("seq")), layers);
    bpar::rnn::Network net(cfg, /*allocate_weights=*/false);

    // Baseline: mbs:1 on one core.
    bench::SimSetup base_setup = setup;
    base_setup.cores = 1;
    const double base_ms = bench::simulate_bpar(net, base_setup, 1);

    std::vector<std::string> header = {"cores"};
    for (const int mbs : mbs_list) header.push_back("mbs:" + std::to_string(mbs));
    bpar::util::Table table(std::move(header));
    for (const int cores : core_list) {
      std::vector<std::string> row = {std::to_string(cores)};
      for (const int mbs : mbs_list) {
        bench::SimSetup s = setup;
        s.cores = cores;
        const double ms = bench::simulate_bpar(net, s, mbs);
        row.push_back(bpar::util::fmt_speedup(base_ms / ms));
      }
      table.add_row(std::move(row));
    }
    table.print("Fig. 3 (" + std::to_string(layers) +
                "-layer BLSTM): B-Par speed-up vs B-Par-mbs:1 on 1 core");
    bench::emit_csv(args, table,
                    "fig3_minibatch_scaling_L" + std::to_string(layers));
  }
  std::printf(
      "\nExpected shape: peak at mbs:8-12 on 48 cores; small mbs flatten\n"
      "once the per-replica critical path dominates.\n");
  return 0;
}
