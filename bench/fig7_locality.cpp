// Fig. 7 — impact of locality-aware scheduling on an 8-layer BLSTM whose
// working set (~31.7M parameters: input 64, hidden 512) exceeds the CPU's
// cache hierarchy.
//
// Reproduced with the simulator's cache model (DESIGN.md §4: hardware IPC /
// L3-MPKI counters are unavailable in this container — when
// perf_event_open works, a real-counter comparison is appended). Paper
// shape: locality-aware scheduling moves ~24% of execution time into the
// 1.5-2.0 IPC bin (5% → 29%), drops the 20-30 MPKI share from 28% to 10%,
// and cuts average batch time by ~20%.
#include <algorithm>
#include <cstdio>
#include <thread>

#include "common.hpp"
#include "exec/bpar_executor.hpp"
#include "perf/perf_events.hpp"
#include "taskrt/export.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  bpar::util::ArgParser args("fig7_locality",
                             "locality-aware vs FIFO scheduling");
  bench::add_common_flags(args);
  args.add_int("cores", 48, "simulated cores");
  args.add_int("replicas", 6, "B-Par mini-batches");
  if (!args.parse(argc, argv)) return 1;

  bench::SimSetup setup;
  setup.calibration = bench::resolve_calibration(args);
  setup.cores = static_cast<int>(args.get_int("cores"));
  const int replicas = static_cast<int>(args.get_int("replicas"));

  // 8-layer BLSTM, input 64, hidden 512 → ~31.7M parameters (paper §IV-B).
  const auto cfg = bench::table_network(bpar::rnn::CellType::kLstm, 64, 512,
                                        128, 100, 8);
  bpar::rnn::Network net(cfg, /*allocate_weights=*/false);
  std::printf("model: %.1fM parameters\n",
              static_cast<double>(net.param_count()) / 1e6);

  bpar::sim::SimResult fifo;
  bpar::sim::SimResult locality;
  setup.policy = bpar::taskrt::SchedulerPolicy::kFifo;
  const double fifo_ms = bench::simulate_bpar(net, setup, replicas, &fifo);
  setup.policy = bpar::taskrt::SchedulerPolicy::kLocalityAware;
  const double locality_ms =
      bench::simulate_bpar(net, setup, replicas, &locality);

  bpar::util::Table ipc({"IPC bin", "FIFO %time", "locality %time"});
  for (std::size_t bin = 0; bin < fifo.ipc_hist.bins(); ++bin) {
    ipc.add_row({fifo.ipc_hist.bin_label(bin),
                 bpar::util::fmt(100.0 * fifo.ipc_hist.bin_fraction(bin), 1),
                 bpar::util::fmt(
                     100.0 * locality.ipc_hist.bin_fraction(bin), 1)});
  }
  ipc.print("Fig. 7 (left): fraction of execution time per IPC bin");

  bpar::util::Table mpki({"L3 MPKI bin", "FIFO %time", "locality %time"});
  for (std::size_t bin = 0; bin < fifo.mpki_hist.bins(); ++bin) {
    mpki.add_row(
        {fifo.mpki_hist.bin_label(bin, 0),
         bpar::util::fmt(100.0 * fifo.mpki_hist.bin_fraction(bin), 1),
         bpar::util::fmt(100.0 * locality.mpki_hist.bin_fraction(bin), 1)});
  }
  mpki.print("Fig. 7 (right): fraction of execution time per L3-MPKI bin");

  bpar::util::Table summary({"metric", "FIFO", "locality"});
  summary.add_row({"batch time (ms)", bpar::util::fmt_ms(fifo_ms),
                   bpar::util::fmt_ms(locality_ms)});
  summary.add_row({"avg IPC", bpar::util::fmt(fifo.avg_ipc, 2),
                   bpar::util::fmt(locality.avg_ipc, 2)});
  summary.add_row({"avg L3 MPKI", bpar::util::fmt(fifo.avg_mpki, 1),
                   bpar::util::fmt(locality.avg_mpki, 1)});
  summary.add_row(
      {"locality hit rate",
       bpar::util::fmt(100.0 * fifo.locality_hit_rate(), 1) + "%",
       bpar::util::fmt(100.0 * locality.locality_hit_rate(), 1) + "%"});
  summary.print("Fig. 7 summary");
  std::printf(
      "\nlocality-aware batch-time reduction: %.1f%% (paper: ~20%%)\n",
      100.0 * (1.0 - locality_ms / fifo_ms));

  bench::emit_csv(args, ipc, "fig7_locality_ipc");
  bench::emit_csv(args, mpki, "fig7_locality_mpki");
  bench::emit_csv(args, summary, "fig7_locality_summary");

  // Real-counter comparison: when perf_event_open works, run a scaled-down
  // version of the same model for real and attribute IPC / L3 MPKI to each
  // task class (RuntimeOptions::sample_counters). The container the paper
  // repro usually runs in denies the syscall, so fall back cleanly.
  bpar::perf::PerfCounters probe;
  if (!probe.available()) {
    std::printf(
        "\nhardware counters (perf_event_open): unavailable in this "
        "environment — per-class IPC/MPKI table skipped, simulated cache "
        "model above stands alone\n");
    return 0;
  }
  std::printf("\nhardware counters (perf_event_open): available — running "
              "a reduced 2-layer BLSTM for per-class attribution\n");
  auto hw_cfg = bench::table_network(bpar::rnn::CellType::kLstm, 64, 128,
                                     32, 20, 2);
  bpar::rnn::Network hw_net(hw_cfg);
  bpar::exec::BParOptions options;
  options.common.num_workers = static_cast<int>(
      std::min(8U, std::max(1U, std::thread::hardware_concurrency())));
  options.sample_counters = true;
  bpar::exec::BParExecutor executor(hw_net, options);
  bpar::rnn::BatchData batch;
  {
    bpar::util::Rng rng(2026);
    batch.x.resize(static_cast<std::size_t>(hw_cfg.seq_length));
    for (auto& m : batch.x) {
      m.resize(hw_cfg.batch_size, hw_cfg.input_size);
      bpar::tensor::fill_uniform(m.view(), rng, -1.0F, 1.0F);
    }
    batch.labels.resize(static_cast<std::size_t>(hw_cfg.batch_size));
    for (auto& l : batch.labels) {
      l = static_cast<int>(rng.uniform_index(
          static_cast<std::uint64_t>(hw_cfg.num_classes)));
    }
  }
  bpar::exec::StepResult step;
  for (int i = 0; i < 3; ++i) step = executor.train_batch(batch);
  const auto rows = bpar::taskrt::hw_class_rows(step.stats);
  if (rows.empty()) {
    std::printf("counter sampling produced no per-class data (perf events "
                "opened but read nothing)\n");
    return 0;
  }
  bpar::util::Table hw({"task class", "tasks", "busy (ms)", "IPC",
                        "L3 MPKI", "branch MPKI", "mux scale"});
  for (const auto& row : rows) {
    hw.add_row({row.klass, std::to_string(row.tasks),
                bpar::util::fmt_ms(static_cast<double>(row.busy_ns) / 1e6),
                bpar::util::fmt(row.ipc, 2), bpar::util::fmt(row.mpki, 1),
                bpar::util::fmt(row.branch_mpki, 1),
                bpar::util::fmt(row.scale, 2)});
  }
  hw.print("Fig. 7 (real execution): per-task-class hardware counters");
  bench::emit_csv(args, hw, "fig7_locality_hw");
  return 0;
}
