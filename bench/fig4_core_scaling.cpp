// Fig. 4 — Keras, B-Seq (mbs:8), PyTorch, and B-Par (mbs:8) batch training
// time across core counts {1, 2, 4, 8, 16, 24, 32, 48}.
//
// Paper shape to reproduce: B-Seq flattens at 8 cores (only 8 coarse
// tasks); Keras ≈ B-Seq on 8-16 cores and suffers beyond one socket;
// B-Par keeps improving and is clearly fastest above 16 cores.
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  bpar::util::ArgParser args("fig4_core_scaling",
                             "executor comparison across core counts");
  bench::add_common_flags(args);
  args.add_int("layers", 8, "BLSTM layers");
  args.add_int("batch", 128, "batch size");
  args.add_int("seq", 100, "sequence length");
  args.add_int("hidden", 256, "hidden size");
  args.add_int("replicas", 8, "B-Par / B-Seq mini-batches");
  if (!args.parse(argc, argv)) return 1;

  bench::SimSetup setup;
  setup.calibration = bench::resolve_calibration(args);
  const std::string passes = bench::resolve_passes(args);
  const int replicas = static_cast<int>(args.get_int("replicas"));
  const auto cfg = bench::table_network(
      bpar::rnn::CellType::kLstm, 256,
      static_cast<int>(args.get_int("hidden")),
      static_cast<int>(args.get_int("batch")),
      static_cast<int>(args.get_int("seq")),
      static_cast<int>(args.get_int("layers")));
  bpar::rnn::Network net(cfg, /*allocate_weights=*/false);

  bpar::util::Table table(
      {"cores", "Keras(ms)", "B-Seq(ms)", "PyTorch(ms)", "B-Par(ms)"});
  for (const int cores : {1, 2, 4, 8, 16, 24, 32, 48}) {
    bench::SimSetup s = setup;
    s.cores = cores;
    const double keras =
        bench::simulate_framework(net, s, bpar::exec::keras_cpu_profile());
    const double pytorch =
        bench::simulate_framework(net, s, bpar::exec::pytorch_cpu_profile());
    const double bseq = bench::simulate_bseq(cfg, s, replicas);
    const double bpar_ms =
        bench::simulate_bpar(net, s, replicas, nullptr, "", passes);
    table.add_row({std::to_string(cores), bpar::util::fmt_ms(keras),
                   bpar::util::fmt_ms(bseq), bpar::util::fmt_ms(pytorch),
                   bpar::util::fmt_ms(bpar_ms)});
  }
  table.print("Fig. 4: batch training time vs core count (8-layer BLSTM)");
  std::printf(
      "\nExpected shape: B-Seq flat beyond %d cores; B-Par fastest at high\n"
      "core counts (paper: best B-Par 0.44 s at 48 cores vs B-Seq 0.89 s\n"
      "at 8 cores).\n",
      replicas);
  bench::emit_csv(args, table, "fig4_core_scaling");
  return 0;
}
