#include "common.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "graph/passes/registry.hpp"

#include "obs/analysis.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "rnn/flops.hpp"
#include "taskrt/export.hpp"
#include "taskrt/task_graph.hpp"

namespace bench {
namespace {

// Last simulated B-Par schedule, kept when analysis capture is armed so
// emit_csv can write an analyzable trace and report section for it.
bool g_capture_analysis = false;
std::optional<bpar::obs::analysis::TraceModel> g_last_model;
std::uint64_t g_last_model_cp_ns = 0;
std::string g_last_pass_signature;

}  // namespace

bool analysis_capture_enabled() { return g_capture_analysis; }

using bpar::exec::FrameworkProfile;
using bpar::graph::BuildOptions;
using bpar::graph::TrainingProgram;
using bpar::rnn::NetworkConfig;
using bpar::sim::Calibration;
using bpar::sim::SimOptions;
using bpar::sim::SimResult;
using bpar::sim::Simulator;

Calibration paper_core_calibration() {
  // One Xeon 8160 core at 2.1 GHz with AVX-512 MKL sustains ~40 Gflop/s on
  // the gate-GEMM sizes involved; per-core stream bandwidth ~12 GB/s.
  return {.gflops = 40.0, .mem_gbps = 12.0, .fixed_ns = 300.0};
}

void add_common_flags(bpar::util::ArgParser& args) {
  args.add_flag("host-calibration",
                "use this machine's measured kernel rates instead of the "
                "Xeon-8160 paper calibration");
  args.add_flag("full", "run the full (slow) configuration sweep");
  args.add_string("csv-dir", "bench_results", "directory for CSV output");
  args.add_string("passes", "",
                  "graph-optimizer pass spec for B-Par graphs (\"default\", "
                  "\"none\", \"list\", or e.g. \"gate_fusion,coarsen:1200\"; "
                  "empty = off)");
  bpar::obs::add_cli_flags(args);  // --trace / --metrics
}

Calibration resolve_calibration(const bpar::util::ArgParser& args) {
  // Every bench resolves its calibration before running the workload, so
  // this is the one shared hook where --trace can arm span recording.
  if (!args.get_string("trace").empty()) {
    bpar::obs::set_tracing_enabled(true);
    bpar::obs::set_thread_name("main");
  }
  g_capture_analysis = !args.get_string("trace").empty() ||
                       !args.get_string("metrics").empty();
  return args.flag("host-calibration") ? bpar::sim::calibrate()
                                       : paper_core_calibration();
}

std::string resolve_passes(const bpar::util::ArgParser& args) {
  const std::string spec = args.get_string("passes");
  if (spec == "list") {
    std::printf("registered graph passes:\n");
    for (const std::string& name : bpar::graph::passes::known_passes()) {
      std::printf("  %s\n", name.c_str());
    }
    std::printf("default pipeline: %s\n",
                std::string(bpar::graph::passes::kDefaultPassSpec).c_str());
    std::exit(0);
  }
  if (spec.empty()) return "";
  return bpar::graph::passes::effective_pass_spec(spec);
}

double simulate_bpar(bpar::rnn::Network& net, const SimSetup& setup,
                     int replicas, SimResult* result,
                     const std::string& schedule_profile,
                     const std::string& passes) {
  BuildOptions bo;
  bo.num_replicas = std::min(replicas, net.config().batch_size);
  bo.training = setup.training;
  bo.executable = false;
  bo.schedule_profile = schedule_profile;
  bo.passes = passes;
  TrainingProgram program(net, net.config().batch_size, bo);
  const auto costs =
      bpar::sim::modeled_costs(program.graph(), setup.calibration);
  Simulator simulator(SimOptions{.policy = setup.policy,
                                 .cores = setup.cores,
                                 .record_trace = g_capture_analysis});
  SimResult r = simulator.run(program.graph(), costs);
  if (g_capture_analysis && !r.trace.empty()) {
    g_last_model = bpar::taskrt::make_trace_model(
        program.graph(), std::span<const bpar::taskrt::TaskTrace>(r.trace),
        setup.cores);
    g_last_model_cp_ns = program.graph().critical_path_cost(costs);
    g_last_pass_signature = program.pass_signature();
  }
  if (result != nullptr) *result = r;
  return r.makespan_ms;
}

double simulate_bseq(const NetworkConfig& cfg, const SimSetup& setup,
                     int replicas) {
  // B-Seq: R coarse, independent tasks (one full sequential pass per
  // mini-batch) plus a reduction — data parallelism only. Each coarse
  // task's cost is the *sum* of the same per-cell costs B-Par's graph
  // uses for one replica's slice, so the two systems' total work agrees.
  const int reps = std::min(replicas, cfg.batch_size);
  double per_replica_ns = 0.0;
  {
    NetworkConfig replica_cfg = cfg;
    replica_cfg.batch_size = std::max(1, cfg.batch_size / reps);
    bpar::rnn::Network replica_net(replica_cfg, /*allocate_weights=*/false);
    BuildOptions bo;
    bo.training = setup.training;
    bo.executable = false;
    TrainingProgram replica_prog(replica_net, replica_cfg.batch_size, bo);
    for (const auto cost :
         bpar::sim::modeled_costs(replica_prog.graph(), setup.calibration)) {
      per_replica_ns += static_cast<double>(cost);
    }
  }
  bpar::taskrt::TaskGraph graph;
  std::vector<char> slots(static_cast<std::size_t>(reps) + 1);
  std::vector<bpar::taskrt::Access> reduce_ins;
  for (int r = 0; r < reps; ++r) {
    bpar::taskrt::TaskSpec spec;
    spec.kind = bpar::taskrt::TaskKind::kGeneric;
    spec.cost_hint_ns = static_cast<std::uint64_t>(per_replica_ns);
    spec.replica = r;
    graph.add([] {}, {bpar::taskrt::out(&slots[static_cast<std::size_t>(r)])},
              std::move(spec));
    reduce_ins.push_back(
        bpar::taskrt::in(&slots[static_cast<std::size_t>(r)]));
  }
  bpar::taskrt::TaskSpec reduce_spec;
  reduce_spec.kind = bpar::taskrt::TaskKind::kGradReduce;
  reduce_spec.flops = 2.0 * reps * 1e6;
  reduce_ins.push_back(bpar::taskrt::out(&slots.back()));
  graph.add([] {},
            std::span<const bpar::taskrt::Access>(reduce_ins.data(),
                                                  reduce_ins.size()),
            std::move(reduce_spec));
  const auto costs = bpar::sim::modeled_costs(graph, setup.calibration);
  Simulator simulator(
      SimOptions{.policy = bpar::taskrt::SchedulerPolicy::kFifo,
                 .cores = setup.cores});
  return simulator.run(graph, costs).makespan_ms;
}

double simulate_framework(bpar::rnn::Network& net, const SimSetup& setup,
                          const FrameworkProfile& profile) {
  const BuildOptions bo = bpar::exec::baseline_build_options(
      profile, setup.cores, net.config().batch_size, setup.training);
  TrainingProgram program(net, net.config().batch_size, bo);
  const auto costs =
      bpar::exec::profile_costs(program.graph(), setup.calibration, profile);
  Simulator simulator(
      SimOptions{.policy = bpar::taskrt::SchedulerPolicy::kFifo,
                 .cores = setup.cores});
  return simulator.run(program.graph(), costs).makespan_ms;
}

double best_over_cores(const std::vector<int>& cores_list,
                       const std::function<double(int)>& run) {
  double best = 1e300;
  for (const int cores : cores_list) best = std::min(best, run(cores));
  return best;
}

NetworkConfig table_network(bpar::rnn::CellType cell, int input, int hidden,
                            int batch, int seq, int layers,
                            bool many_to_many) {
  NetworkConfig cfg;
  cfg.cell = cell;
  cfg.merge = bpar::rnn::MergeOp::kSum;  // H-wide: matches paper params
  cfg.input_size = input;
  cfg.hidden_size = hidden;
  cfg.num_layers = layers;
  cfg.seq_length = seq;
  cfg.batch_size = batch;
  cfg.num_classes = 11;
  cfg.many_to_many = many_to_many;
  return cfg;
}

std::string gpu_cell(const bpar::perf::GpuModelParams& params,
                     const NetworkConfig& cfg) {
  const bpar::perf::GpuWorkload w{
      .gates = bpar::rnn::gate_count(cfg.cell),
      .input_size = cfg.input_size,
      .hidden_size = cfg.hidden_size,
      .batch_size = cfg.batch_size,
      .seq_length = cfg.seq_length,
      .layers = cfg.num_layers,
      .training = true};
  const auto t = bpar::perf::gpu_batch_time_ms(params, w);
  return t.has_value() ? bpar::util::fmt_ms(*t) : "-";
}

void emit_csv(const bpar::util::ArgParser& args, const bpar::util::Table& t,
              const std::string& name) {
  t.write_csv(args.get_string("csv-dir") + "/" + name + ".csv");

  // Telemetry side channel: each emitted table also lands in the bench's
  // RunReport. The report (and the trace, when armed) is rewritten after
  // every table so a bench that emits several stays complete even if a
  // later stage dies.
  static bpar::obs::RunReport report;
  if (report.binary.empty()) {
    report.binary = args.program();
    report.params = args.values();
  }
  report.add_table(name, t.header(), t.data());
  if (g_last_model.has_value()) {
    bpar::obs::analysis::Analysis analysis =
        bpar::obs::analysis::analyze(*g_last_model, g_last_model_cp_ns);
    analysis.pass_signature = g_last_pass_signature;
    report.analysis_json = bpar::obs::analysis::to_json(analysis);
  }
  if (const std::string& metrics_path = args.get_string("metrics");
      !metrics_path.empty()) {
    report.write_json_file(metrics_path,
                           bpar::obs::Registry::instance().snapshot());
  }
  if (const std::string& trace_path = args.get_string("trace");
      !trace_path.empty()) {
    if (g_last_model.has_value()) {
      // Analyzable trace: the last simulated B-Par schedule (task slices
      // with {task, deps, worker} args on pid 1) plus the live obs spans
      // (pid 2; the two timebases are unrelated, so separate rows).
      std::ofstream os = bpar::obs::open_output_file(trace_path);
      bpar::obs::ChromeTraceWriter writer(os);
      bpar::obs::analysis::write_model_events(writer, *g_last_model,
                                              /*pid=*/1);
      const std::vector<bpar::obs::ThreadTrace> threads =
          bpar::obs::collect();
      const std::uint64_t base = bpar::obs::earliest_ts(threads);
      for (const bpar::obs::ThreadTrace& thread : threads) {
        const int tid = 200 + thread.ring_id;
        std::string label = thread.name.empty()
                                ? "thread " + std::to_string(thread.ring_id)
                                : thread.name;
        // "(obs)", not "(spans)": these rows are wall-clock spans from this
        // process, not the simulated workers — the trace parser must not
        // mistake them for the model's park/fault rows.
        writer.thread_name(2, tid, label + " (obs)");
        bpar::obs::write_thread_events(writer, thread, 2, tid, base);
      }
    } else {
      bpar::obs::write_trace_json_file(trace_path);
    }
  }
}

}  // namespace bench
