// Shared driver for Table III (BLSTM) and Table IV (BGRU): simulated
// single-batch training times of Keras-CPU, PyTorch-CPU, B-Seq, and B-Par
// at 48 cores, plus the analytic GPU-model columns, next to the paper's
// reported speedups.
#pragma once

#include <cstdio>
#include <vector>

#include "common.hpp"

namespace bench {

struct TableRow {
  int input;
  int hidden;
  int batch;
  int seq;
  double paper_speedup_keras;    // paper's B-Par speedup vs Keras-CPU
  double paper_speedup_pytorch;  // ... vs PyTorch-CPU
};

inline int run_training_table(int argc, char** argv, bpar::rnn::CellType cell,
                              const std::vector<TableRow>& rows,
                              const char* title, const char* csv_name) {
  bpar::util::ArgParser args(csv_name,
                             "simulated single-batch training times (ms)");
  add_common_flags(args);
  args.add_int("cores", 48, "simulated CPU cores");
  args.add_int("replicas", 8, "B-Par / B-Seq mini-batches (mbs:N)");
  if (!args.parse(argc, argv)) return 1;

  SimSetup setup;
  setup.calibration = resolve_calibration(args);
  setup.cores = static_cast<int>(args.get_int("cores"));
  const int replicas = static_cast<int>(args.get_int("replicas"));

  bpar::util::Table table({"In", "Hid", "B", "T", "Params", "K-CPU", "P-CPU",
                           "BSeq", "BPar", "K-GPU*", "P-GPU*", "S(K)",
                           "S(P)", "paperS(K)", "paperS(P)"});
  for (const TableRow& row : rows) {
    const auto cfg =
        table_network(cell, row.input, row.hidden, row.batch, row.seq);
    bpar::rnn::Network net(cfg, /*allocate_weights=*/false);
    const double keras =
        simulate_framework(net, setup, bpar::exec::keras_cpu_profile());
    const double pytorch =
        simulate_framework(net, setup, bpar::exec::pytorch_cpu_profile());
    const double bseq = simulate_bseq(cfg, setup, replicas);
    const double bpar_ms = simulate_bpar(net, setup, replicas);
    table.add_row(
        {std::to_string(row.input), std::to_string(row.hidden),
         std::to_string(row.batch), std::to_string(row.seq),
         bpar::util::fmt_params(static_cast<double>(net.param_count())),
         bpar::util::fmt_ms(keras), bpar::util::fmt_ms(pytorch),
         bpar::util::fmt_ms(bseq), bpar::util::fmt_ms(bpar_ms),
         gpu_cell(bpar::perf::keras_v100(), cfg),
         gpu_cell(bpar::perf::pytorch_v100(), cfg),
         bpar::util::fmt_speedup(keras / bpar_ms),
         bpar::util::fmt_speedup(pytorch / bpar_ms),
         bpar::util::fmt_speedup(row.paper_speedup_keras),
         bpar::util::fmt_speedup(row.paper_speedup_pytorch)});
  }
  table.print(title);
  std::printf(
      "\n* GPU columns are analytic-model estimates (DESIGN.md §4); CPU\n"
      "  columns are discrete-event simulations of the real task graphs\n"
      "  with roofline costs. S(K)/S(P) = B-Par speedup vs Keras/PyTorch;\n"
      "  compare against the paper's reported speedups in the last columns.\n");
  emit_csv(args, table, csv_name);
  return 0;
}

}  // namespace bench
