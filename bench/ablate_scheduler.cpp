// Ablation — FIFO vs locality-aware scheduling across core counts
// (complements Fig. 7, which fixes the core count and looks at cache
// metrics; here we sweep cores and look at makespan and hit rate).
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  bpar::util::ArgParser args("ablate_scheduler",
                             "FIFO vs locality-aware across core counts");
  bench::add_common_flags(args);
  args.add_int("replicas", 6, "B-Par mini-batches");
  if (!args.parse(argc, argv)) return 1;

  bench::SimSetup setup;
  setup.calibration = bench::resolve_calibration(args);
  const int replicas = static_cast<int>(args.get_int("replicas"));

  const auto cfg = bench::table_network(bpar::rnn::CellType::kLstm, 64, 512,
                                        126, 100, 8);
  bpar::rnn::Network net(cfg, /*allocate_weights=*/false);

  bpar::util::Table table({"cores", "FIFO(ms)", "locality(ms)", "gain",
                           "FIFO hit%", "locality hit%"});
  for (const int cores : {4, 8, 16, 24, 32, 48}) {
    bpar::sim::SimResult fifo;
    bpar::sim::SimResult locality;
    bench::SimSetup s = setup;
    s.cores = cores;
    s.policy = bpar::taskrt::SchedulerPolicy::kFifo;
    const double fifo_ms = bench::simulate_bpar(net, s, replicas, &fifo);
    s.policy = bpar::taskrt::SchedulerPolicy::kLocalityAware;
    const double loc_ms = bench::simulate_bpar(net, s, replicas, &locality);
    table.add_row(
        {std::to_string(cores), bpar::util::fmt_ms(fifo_ms),
         bpar::util::fmt_ms(loc_ms),
         bpar::util::fmt(100.0 * (1.0 - loc_ms / fifo_ms), 1) + "%",
         bpar::util::fmt(100.0 * fifo.locality_hit_rate(), 1),
         bpar::util::fmt(100.0 * locality.locality_hit_rate(), 1)});
  }
  table.print("Scheduler ablation: FIFO vs locality-aware (8-layer BLSTM)");
  std::printf(
      "\nExpected shape: locality-aware wins on few cores (cache reuse) and\n"
      "on two sockets (no NUMA bouncing; paper: ~20%% at 48 cores); in the\n"
      "middle, strict affinity can idle cores and FIFO's load balance can\n"
      "edge ahead — the classic locality/balance trade-off.\n");
  bench::emit_csv(args, table, "ablate_scheduler");
  return 0;
}
