// fig_serving — throughput vs latency for the inference serving engine
// (DESIGN.md §5f). Unlike the paper-figure benches this one executes for
// real: each configuration spins up an InferenceEngine and drives it with a
// closed-loop client fleet, sweeping the client count with dynamic
// micro-batching on and off. More clients raise offered load; with batching
// on the dispatcher coalesces them into larger micro-batches, trading a
// bounded queueing delay (max_delay_us) for throughput, while the batch-1
// column shows the latency floor.
//
//   ./fig_serving [--requests N] [--workers N] [--max-batch N]
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"

int main(int argc, char** argv) {
  bpar::util::ArgParser args("fig_serving",
                             "serving throughput vs latency sweep");
  bench::add_common_flags(args);
  args.add_int("requests", 40, "requests per client");
  args.add_int("workers", 4, "executor worker threads");
  args.add_int("max-batch", 8, "largest coalesced micro-batch");
  args.add_int("max-delay-us", 500, "micro-batch flush deadline");
  args.add_int("hidden", 64, "hidden size");
  args.add_int("layers", 2, "BLSTM layers");
  args.add_int("seq", 20, "request sequence length");
  if (!args.parse(argc, argv)) return 1;

  bpar::rnn::NetworkConfig cfg;
  cfg.cell = bpar::rnn::CellType::kLstm;
  cfg.input_size = 16;
  cfg.hidden_size = static_cast<int>(args.get_int("hidden"));
  cfg.num_layers = static_cast<int>(args.get_int("layers"));
  cfg.seq_length = static_cast<int>(args.get_int("seq"));
  cfg.batch_size = static_cast<int>(args.get_int("max-batch"));
  cfg.num_classes = 10;

  bpar::serve::EngineOptions base;
  base.executor.num_workers = static_cast<int>(args.get_int("workers"));
  base.executor.num_replicas = static_cast<int>(args.get_int("workers"));
  base.max_batch = static_cast<int>(args.get_int("max-batch"));
  base.max_delay_us =
      static_cast<std::uint32_t>(args.get_int("max-delay-us"));

  bpar::serve::LoadgenOptions load;
  load.requests_per_client = static_cast<int>(args.get_int("requests"));
  load.seq_lengths = {cfg.seq_length};

  const std::vector<int> seq_lengths = {cfg.seq_length};
  bpar::util::Table table({"config", "throughput(rps)", "p50(ms)", "p99(ms)",
                           "mean batch rows"});
  for (const bool batching : {false, true}) {
    for (const int clients : {1, 2, 4, 8}) {
      bpar::serve::EngineOptions options = base;
      options.enable_batching = batching;
      bpar::serve::InferenceEngine engine(cfg, options);
      engine.warmup(seq_lengths);
      load.clients = clients;
      const auto result = bpar::serve::run_load(engine, load);
      engine.shutdown();
      const auto stats = engine.stats();
      const double mean_rows =
          stats.batches > 0
              ? static_cast<double>(stats.completed + stats.padded_rows) /
                    static_cast<double>(stats.batches)
              : 0.0;
      const std::string key = std::to_string(clients) +
                              (batching ? "c-batched" : "c-single");
      table.add_row({key, bpar::util::fmt(result.throughput_rps, 1),
                     bpar::util::fmt(result.latency_ms.p50, 3),
                     bpar::util::fmt(result.latency_ms.p99, 3),
                     bpar::util::fmt(mean_rows, 2)});
    }
  }
  table.print("serving throughput vs latency");
  std::printf(
      "\nwith batching on, added clients coalesce into larger micro-batches\n"
      "(mean rows ↑): throughput scales while p99 stays bounded by the\n"
      "flush deadline; batching off serves every request alone.\n");
  bench::emit_csv(args, table, "fig_serving");
  return 0;
}
