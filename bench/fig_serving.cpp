// fig_serving — throughput vs latency for the inference serving engine
// (DESIGN.md §5f). Unlike the paper-figure benches this one executes for
// real: each configuration spins up an InferenceEngine and drives it with a
// closed-loop client fleet, sweeping the client count with dynamic
// micro-batching on and off. More clients raise offered load; with batching
// on the dispatcher coalesces them into larger micro-batches, trading a
// bounded queueing delay (max_delay_us) for throughput, while the batch-1
// column shows the latency floor.
//
//   ./fig_serving [--requests N] [--workers N] [--max-batch N]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"

int main(int argc, char** argv) {
  bpar::util::ArgParser args("fig_serving",
                             "serving throughput vs latency sweep");
  bench::add_common_flags(args);
  args.add_int("requests", 40, "requests per client");
  args.add_int("workers", 4, "executor worker threads");
  args.add_int("max-batch", 8, "largest coalesced micro-batch");
  args.add_int("max-delay-us", 500, "micro-batch flush deadline");
  args.add_int("hidden", 64, "hidden size");
  args.add_int("layers", 2, "BLSTM layers");
  args.add_int("seq", 20, "request sequence length");
  if (!args.parse(argc, argv)) return 1;

  bpar::rnn::NetworkConfig cfg;
  cfg.cell = bpar::rnn::CellType::kLstm;
  cfg.input_size = 16;
  cfg.hidden_size = static_cast<int>(args.get_int("hidden"));
  cfg.num_layers = static_cast<int>(args.get_int("layers"));
  cfg.seq_length = static_cast<int>(args.get_int("seq"));
  cfg.batch_size = static_cast<int>(args.get_int("max-batch"));
  cfg.num_classes = 10;

  bpar::serve::EngineOptions base;
  base.executor.num_workers = static_cast<int>(args.get_int("workers"));
  base.executor.num_replicas = static_cast<int>(args.get_int("workers"));
  base.max_batch = static_cast<int>(args.get_int("max-batch"));
  base.max_delay_us =
      static_cast<std::uint32_t>(args.get_int("max-delay-us"));

  bpar::serve::LoadgenOptions load;
  load.requests_per_client = static_cast<int>(args.get_int("requests"));
  load.seq_lengths = {cfg.seq_length};

  const std::vector<int> seq_lengths = {cfg.seq_length};
  double peak_rps = 0.0;  // best closed-loop batched throughput
  bpar::util::Table table({"config", "throughput(rps)", "p50(ms)", "p99(ms)",
                           "mean batch rows"});
  for (const bool batching : {false, true}) {
    for (const int clients : {1, 2, 4, 8}) {
      bpar::serve::EngineOptions options = base;
      options.enable_batching = batching;
      bpar::serve::InferenceEngine engine(cfg, options);
      engine.warmup(seq_lengths);
      load.clients = clients;
      const auto result = bpar::serve::run_load(engine, load);
      engine.shutdown();
      const auto stats = engine.stats();
      const double mean_rows =
          stats.batches > 0
              ? static_cast<double>(stats.completed + stats.padded_rows) /
                    static_cast<double>(stats.batches)
              : 0.0;
      if (batching) peak_rps = std::max(peak_rps, result.throughput_rps);
      const std::string key = std::to_string(clients) +
                              (batching ? "c-batched" : "c-single");
      table.add_row({key, bpar::util::fmt(result.throughput_rps, 1),
                     bpar::util::fmt(result.latency_ms.p50, 3),
                     bpar::util::fmt(result.latency_ms.p99, 3),
                     bpar::util::fmt(mean_rows, 2)});
    }
  }
  table.print("serving throughput vs latency");
  std::printf(
      "\nwith batching on, added clients coalesce into larger micro-batches\n"
      "(mean rows ↑): throughput scales while p99 stays bounded by the\n"
      "flush deadline; batching off serves every request alone.\n");
  bench::emit_csv(args, table, "fig_serving");

  // Open-loop sweep (DESIGN.md §5h): offered load is fixed by a Poisson
  // arrival process — it does not politely back off when the engine slows
  // down, so this is the curve that shows admission control honestly.
  // Rates are multiples of the closed-loop peak measured above: below the
  // knee latency stays near the flush deadline; past saturation the
  // backlog grows until load shedding answers the overflow as kShed and
  // the served (kOk) tail stays bounded instead of diverging.
  bpar::util::Table open_table({"offered x peak", "offered(rps)",
                                "served(rps)", "ok", "shed", "rejected",
                                "p50(ms)", "p95(ms)", "p99(ms)"});
  for (const double fraction : {0.5, 0.9, 1.5, 2.0}) {
    const double rate = std::max(1.0, peak_rps * fraction);
    bpar::serve::EngineOptions options = base;
    options.enable_batching = true;
    bpar::serve::InferenceEngine engine(cfg, options);
    engine.warmup(seq_lengths);
    bpar::serve::LoadgenOptions open = load;
    open.clients = 8;
    open.rate_rps = rate;
    // Size the run to a ~2s window at the offered rate so every sweep
    // point measures a comparable interval.
    open.requests_per_client = std::max(
        10, static_cast<int>(rate * 2.0 / open.clients));
    const auto result = bpar::serve::run_load(engine, open);
    engine.shutdown();
    open_table.add_row({bpar::util::fmt(fraction, 2),
                        bpar::util::fmt(result.offered_rps, 1),
                        bpar::util::fmt(result.throughput_rps, 1),
                        std::to_string(result.ok),
                        std::to_string(result.shed),
                        std::to_string(result.rejected),
                        bpar::util::fmt(result.latency_ms.p50, 3),
                        bpar::util::fmt(result.latency_ms.p95, 3),
                        bpar::util::fmt(result.latency_ms.p99, 3)});
  }
  open_table.print("open-loop offered load vs latency");
  std::printf(
      "\npast the closed-loop peak (~%.0f rps) the open-loop backlog grows\n"
      "until queue-delay shedding engages: served rps plateaus, the kOk\n"
      "tail stays bounded, and the overflow is answered kShed.\n",
      peak_rps);
  bench::emit_csv(args, open_table, "fig_serving_openloop");

  // Observability overhead (DESIGN.md §5i/§5j): the same closed-loop
  // 8-client batched configuration with the observability plane off, on
  // (request-stage tracing + 1 s sampler + live stats listener), and on
  // plus the continuous span-stack profiler. The budget is <= ~2% on p50
  // for either enabled row — the plane is sampling + bounded rings (and
  // the profiler a few relaxed stores per span), not per-request heavy
  // lifting, and these rows keep it honest.
  bpar::util::Table obs_table({"config", "throughput(rps)", "p50(ms)",
                               "p99(ms)"});
  struct ObsConfig {
    const char* name;
    bool obs_on;
    bool profiler_on;
  };
  for (const auto& mode : {ObsConfig{"obs-off", false, false},
                           ObsConfig{"obs-on", true, false},
                           ObsConfig{"prof-on", true, true}}) {
    bpar::serve::EngineOptions options = base;
    options.enable_batching = true;
    options.trace_requests = mode.obs_on;
    options.enable_sampler = mode.obs_on;
    options.sampler_period_ms = 1000;
    options.stats_port = mode.obs_on ? 0 : -1;  // ephemeral listener when on
    options.enable_profiler = mode.profiler_on;
    bpar::serve::InferenceEngine engine(cfg, options);
    engine.warmup(seq_lengths);
    load.clients = 8;
    const auto result = bpar::serve::run_load(engine, load);
    engine.shutdown();
    obs_table.add_row({mode.name,
                       bpar::util::fmt(result.throughput_rps, 1),
                       bpar::util::fmt(result.latency_ms.p50, 3),
                       bpar::util::fmt(result.latency_ms.p99, 3)});
  }
  obs_table.print("observability overhead (off vs on vs on+profiler)");
  bench::emit_csv(args, obs_table, "fig_serving_obs");
  return 0;
}
