// Fig. 6 — training AND inference single-batch time while varying the
// number of layers (2, 4, 8, 12) for B-Par, B-Seq, Keras-CPU, PyTorch-CPU.
//
// Paper shape: B-Par scales best with depth — at 12 layers it reaches
// 6.40x (training) and 5.89x (inference) because barrier-free execution
// overlaps cells of many layers; the frameworks serialize layer by layer.
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  bpar::util::ArgParser args("fig6_layers",
                             "layer-count sweep, training and inference");
  bench::add_common_flags(args);
  args.add_int("batch", 128, "batch size");
  args.add_int("hidden", 256, "hidden size");
  args.add_int("seq", 100, "sequence length");
  args.add_int("cores", 48, "simulated cores");
  args.add_int("replicas", 8, "B-Par / B-Seq mini-batches");
  if (!args.parse(argc, argv)) return 1;

  bench::SimSetup base;
  base.calibration = bench::resolve_calibration(args);
  base.cores = static_cast<int>(args.get_int("cores"));
  const int replicas = static_cast<int>(args.get_int("replicas"));

  for (const bool training : {true, false}) {
    bpar::util::Table table({"layers", "Keras", "PyTorch", "B-Seq", "B-Par",
                             "S(K)", "S(P)"});
    for (const int layers : {2, 4, 8, 12}) {
      const auto cfg = bench::table_network(
          bpar::rnn::CellType::kLstm, 256,
          static_cast<int>(args.get_int("hidden")),
          static_cast<int>(args.get_int("batch")),
          static_cast<int>(args.get_int("seq")), layers);
      bpar::rnn::Network net(cfg, /*allocate_weights=*/false);
      bench::SimSetup s = base;
      s.training = training;
      const double keras =
          bench::simulate_framework(net, s, bpar::exec::keras_cpu_profile());
      const double pytorch = bench::simulate_framework(
          net, s, bpar::exec::pytorch_cpu_profile());
      const double bseq = bench::simulate_bseq(cfg, s, replicas);
      const double bpar_ms = bench::simulate_bpar(net, s, replicas);
      table.add_row({std::to_string(layers), bpar::util::fmt_ms(keras),
                     bpar::util::fmt_ms(pytorch), bpar::util::fmt_ms(bseq),
                     bpar::util::fmt_ms(bpar_ms),
                     bpar::util::fmt_speedup(keras / bpar_ms),
                     bpar::util::fmt_speedup(pytorch / bpar_ms)});
    }
    const std::string title = std::string("Fig. 6 (") +
                              (training ? "training" : "inference") +
                              "): time vs layer count, ms per batch";
    table.print(title);
    bench::emit_csv(args, table,
                    training ? "fig6_layers_training"
                             : "fig6_layers_inference");
  }
  std::printf(
      "\nExpected shape: B-Par's advantage grows with depth (paper: 6.40x\n"
      "training / 5.89x inference at 12 layers).\n");
  return 0;
}
