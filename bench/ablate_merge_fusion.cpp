// Ablation (DESIGN.md §5.1) — why B-Par keeps merge cells as *separate*
// tasks. Fusing the merge into the forward-order cell makes every forward
// cell depend on its reverse counterpart, serializing the two directions
// (paper §III-A: "This separation permits B-Par to execute forward and
// reverse order cells in parallel").
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  bpar::util::ArgParser args("ablate_merge_fusion",
                             "separate merge tasks vs fused merges");
  bench::add_common_flags(args);
  args.add_int("batch", 128, "batch size");
  args.add_int("replicas", 8, "B-Par mini-batches");
  if (!args.parse(argc, argv)) return 1;

  bench::SimSetup setup;
  setup.calibration = bench::resolve_calibration(args);
  const int replicas = static_cast<int>(args.get_int("replicas"));

  bpar::util::Table table({"layers", "cores", "separate(ms)", "fused(ms)",
                           "fusion slowdown"});
  for (const int layers : {4, 8}) {
    const auto cfg = bench::table_network(
        bpar::rnn::CellType::kLstm, 256, 256,
        static_cast<int>(args.get_int("batch")), 100, layers);
    bpar::rnn::Network net(cfg, /*allocate_weights=*/false);
    for (const int cores : {8, 24, 48}) {
      bench::SimSetup s = setup;
      s.cores = cores;
      const double separate = bench::simulate_bpar(net, s, replicas);
      const double fused =
          bench::simulate_bpar(net, s, replicas, nullptr, "fused_merge");
      table.add_row({std::to_string(layers), std::to_string(cores),
                     bpar::util::fmt_ms(separate), bpar::util::fmt_ms(fused),
                     bpar::util::fmt_speedup(fused / separate)});
    }
  }
  table.print("Ablation: separate merge tasks vs merge fused into fwd cells");
  std::printf(
      "\nExpected shape: fusion hurts most at high core counts, where the\n"
      "lost fwd/rev overlap can no longer be hidden.\n");
  bench::emit_csv(args, table, "ablate_merge_fusion");
  return 0;
}
