// §IV-B "Memory Consumption" study — working-set size of B-Par with and
// without per-layer synchronization on an 8-layer BLSTM at mbs:6.
//
// Paper numbers: 75.36 MB live working set without per-layer barriers vs
// 28.26 MB with them, explained by the average number of concurrently
// running tasks (16 vs 6). More parallelism costs memory but buys large
// performance gains — with no accuracy difference.
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  bpar::util::ArgParser args("stats_memory",
                             "working set with vs without per-layer sync");
  bench::add_common_flags(args);
  args.add_int("cores", 48, "simulated cores");
  if (!args.parse(argc, argv)) return 1;

  bench::SimSetup setup;
  setup.calibration = bench::resolve_calibration(args);
  setup.cores = static_cast<int>(args.get_int("cores"));

  const auto cfg = bench::table_network(bpar::rnn::CellType::kLstm, 64, 512,
                                        126, 100, 8);
  bpar::rnn::Network net(cfg, /*allocate_weights=*/false);

  bpar::sim::SimResult barrier_free;
  bpar::sim::SimResult barriered;
  const double free_ms = bench::simulate_bpar(net, setup, 6, &barrier_free);
  const double barrier_ms =
      bench::simulate_bpar(net, setup, 6, &barriered, "framework");

  const double mb = 1024.0 * 1024.0;
  bpar::util::Table table(
      {"metric", "no per-layer sync", "with per-layer sync", "paper"});
  table.add_row({"avg working set (MB)",
                 bpar::util::fmt(barrier_free.avg_working_set_bytes / mb, 2),
                 bpar::util::fmt(barriered.avg_working_set_bytes / mb, 2),
                 "75.36 / 28.26"});
  table.add_row({"peak working set (MB)",
                 bpar::util::fmt(barrier_free.peak_working_set_bytes / mb, 2),
                 bpar::util::fmt(barriered.peak_working_set_bytes / mb, 2),
                 "-"});
  table.add_row({"avg concurrent tasks",
                 bpar::util::fmt(barrier_free.avg_concurrency, 1),
                 bpar::util::fmt(barriered.avg_concurrency, 1), "16 / 6"});
  table.add_row({"batch time (ms)", bpar::util::fmt_ms(free_ms),
                 bpar::util::fmt_ms(barrier_ms), "-"});
  table.print("Memory consumption: barrier-free vs per-layer-synchronized");
  std::printf(
      "\nExpected shape: removing per-layer sync raises concurrency and the\n"
      "live working set while cutting batch time — the trade B-Par makes.\n");
  bench::emit_csv(args, table, "stats_memory");
  return 0;
}
