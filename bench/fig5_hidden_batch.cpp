// Fig. 5 — single-batch training time of B-Par, Keras-CPU, PyTorch-CPU and
// B-Seq while varying batch size (128..1024) and hidden size (128, 256) on
// 8- and 12-layer BLSTMs. Each entry is the best time over core counts
// {1, 2, 4, 8, 16, 24, 32, 48}, as in the paper.
//
// Paper shape: B-Par wins every configuration (1.58-6.40x); PyTorch is the
// slowest throughout.
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  bpar::util::ArgParser args("fig5_hidden_batch",
                             "batch/hidden sweep, best-over-cores times");
  bench::add_common_flags(args);
  args.add_int("replicas", 8, "B-Par / B-Seq mini-batches");
  if (!args.parse(argc, argv)) return 1;

  bench::SimSetup setup;
  setup.calibration = bench::resolve_calibration(args);
  const int replicas = static_cast<int>(args.get_int("replicas"));
  // The full sweep is 2x2x4 configs x 4 systems x 8 core counts; trim the
  // core sweep in quick mode.
  const std::vector<int> cores = args.flag("full")
                                     ? std::vector<int>{1, 2, 4, 8, 16, 24,
                                                        32, 48}
                                     : std::vector<int>{8, 24, 48};

  bpar::util::Table table({"layers", "hidden", "batch", "Keras", "PyTorch",
                           "B-Seq", "B-Par", "S(K)", "S(P)"});
  for (const int layers : {8, 12}) {
    for (const int hidden : {128, 256}) {
      for (const int batch : {128, 256, 512, 1024}) {
        const auto cfg = bench::table_network(bpar::rnn::CellType::kLstm,
                                              256, hidden, batch, 100,
                                              layers);
        bpar::rnn::Network net(cfg, /*allocate_weights=*/false);
        auto best = [&](auto&& run) {
          return bench::best_over_cores(cores, [&](int c) {
            bench::SimSetup s = setup;
            s.cores = c;
            return run(s);
          });
        };
        const double keras = best([&](const bench::SimSetup& s) {
          return bench::simulate_framework(net, s,
                                           bpar::exec::keras_cpu_profile());
        });
        const double pytorch = best([&](const bench::SimSetup& s) {
          return bench::simulate_framework(
              net, s, bpar::exec::pytorch_cpu_profile());
        });
        const double bseq = best([&](const bench::SimSetup& s) {
          return bench::simulate_bseq(cfg, s, replicas);
        });
        const double bpar_ms = best([&](const bench::SimSetup& s) {
          return bench::simulate_bpar(net, s, replicas);
        });
        table.add_row({std::to_string(layers), std::to_string(hidden),
                       std::to_string(batch), bpar::util::fmt_ms(keras),
                       bpar::util::fmt_ms(pytorch), bpar::util::fmt_ms(bseq),
                       bpar::util::fmt_ms(bpar_ms),
                       bpar::util::fmt_speedup(keras / bpar_ms),
                       bpar::util::fmt_speedup(pytorch / bpar_ms)});
      }
    }
  }
  table.print(
      "Fig. 5: best-over-cores batch training time, batch x hidden sweep");
  std::printf(
      "\nExpected shape: B-Par fastest everywhere (paper: 1.58-6.40x vs the\n"
      "frameworks); PyTorch slowest; gaps grow with layer count.\n");
  bench::emit_csv(args, table, "fig5_hidden_batch");
  return 0;
}
