// Table IV — BGRU single-batch training times and B-Par speedups across
// the paper's 12 model configurations.
#include "table_common.hpp"

int main(int argc, char** argv) {
  const std::vector<bench::TableRow> rows = {
      {64, 256, 128, 100, 1.81, 3.95},   {256, 256, 128, 100, 1.72, 3.16},
      {1024, 256, 128, 100, 1.56, 7.49}, {256, 256, 1, 2, 1.70, 2.34},
      {256, 256, 1, 10, 1.86, 3.25},     {256, 256, 1, 100, 2.34, 4.80},
      {64, 256, 256, 100, 1.93, 2.62},   {64, 1024, 256, 100, 1.74, 2.15},
      {256, 256, 256, 100, 1.77, 2.51},  {256, 1024, 256, 100, 1.98, 3.86},
      {1024, 256, 256, 100, 1.66, 4.32}, {1024, 1024, 256, 100, 1.91, 3.02}};
  return bench::run_training_table(
      argc, argv, bpar::rnn::CellType::kGru, rows,
      "Table IV: BGRU training times, B-Par vs Keras/PyTorch/B-Seq",
      "table4_bgru");
}
