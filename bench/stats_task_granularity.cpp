// §IV-B "Task-granularity" study — BLSTM with Seq=100, Batch=128,
// Input=64, Hidden=512.
//
// Paper numbers to compare against: 368,240 tasks triggered in the
// scenario; LSTM-cell working set 4.71 MB; task granularity from 272.8 us
// to 315,178 us with a 13,052 us average; task creation/scheduling/
// synchronization overhead 10x smaller than useful task time.
#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "rnn/flops.hpp"

int main(int argc, char** argv) {
  bpar::util::ArgParser args("stats_task_granularity",
                             "task counts, sizes and overhead of B-Par");
  bench::add_common_flags(args);
  args.add_int("replicas", 8, "B-Par mini-batches");
  if (!args.parse(argc, argv)) return 1;

  bench::SimSetup setup;
  setup.calibration = bench::resolve_calibration(args);
  const int replicas = static_cast<int>(args.get_int("replicas"));

  const auto cfg = bench::table_network(bpar::rnn::CellType::kLstm, 64, 512,
                                        128, 100, 8);
  bpar::rnn::Network net(cfg, /*allocate_weights=*/false);
  bpar::graph::BuildOptions bo;
  bo.num_replicas = replicas;
  bo.executable = false;
  bpar::graph::TrainingProgram program(net, cfg.batch_size, bo);
  const auto& graph = program.graph();
  const auto costs = bpar::sim::modeled_costs(graph, setup.calibration);

  double total_us = 0.0;
  double min_us = 1e300;
  double max_us = 0.0;
  double cell_us = 0.0;
  std::size_t cells = 0;
  for (const auto cost : costs) {
    const double us = static_cast<double>(cost) / 1e3;
    total_us += us;
    min_us = std::min(min_us, us);
    max_us = std::max(max_us, us);
  }
  for (bpar::taskrt::TaskId id = 0; id < graph.size(); ++id) {
    const auto kind = graph.task(id).spec.kind;
    if (kind == bpar::taskrt::TaskKind::kCellForward ||
        kind == bpar::taskrt::TaskKind::kCellBackward) {
      cell_us += static_cast<double>(costs[id]) / 1e3;
      ++cells;
    }
  }

  const std::size_t rb = static_cast<std::size_t>(cfg.batch_size) /
                         static_cast<std::size_t>(replicas);
  const double cell_ws_mb =
      static_cast<double>(bpar::rnn::cell_working_set_bytes(
          cfg.cell, static_cast<int>(rb), cfg.input_size, cfg.hidden_size)) /
      (1024.0 * 1024.0);
  const double dispatch_us =
      static_cast<double>(graph.size()) *
      bpar::sim::MachineModel{}.dispatch_overhead_ns / 1e3;

  bpar::util::Table table({"metric", "measured", "paper"});
  table.add_row({"tasks per training batch", std::to_string(graph.size()),
                 "-"});
  table.add_row(
      {"tasks per ~" +
           std::to_string(368240 / static_cast<int>(graph.size())) +
           "-batch epoch",
       std::to_string(graph.size() *
                      (368240 / static_cast<std::size_t>(graph.size()))),
       "368,240"});
  table.add_row({"LSTM-cell working set (MB)",
                 bpar::util::fmt(cell_ws_mb, 2), "4.71"});
  table.add_row({"min task granularity (us)", bpar::util::fmt(min_us, 1),
                 "272.8"});
  table.add_row({"max task granularity (us)", bpar::util::fmt(max_us, 1),
                 "315,178.3"});
  table.add_row({"avg cell-task granularity (us)",
                 bpar::util::fmt(cell_us / static_cast<double>(cells), 1),
                 "13,052.2"});
  table.add_row(
      {"useful-time / overhead ratio",
       bpar::util::fmt(total_us / std::max(dispatch_us, 1e-9), 1) + "x",
       ">= 10x"});
  table.print("Task granularity (BLSTM seq=100 batch=128 in=64 hid=512)");
  std::printf(
      "\nNote: the paper's 368,240 tasks cover a full multi-batch run; we\n"
      "report one batch graph and its epoch extrapolation.\n");
  bench::emit_csv(args, table, "stats_task_granularity");
  return 0;
}
