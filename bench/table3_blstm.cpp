// Table III — BLSTM single-batch training times and B-Par speedups across
// the paper's 12 model configurations.
#include "table_common.hpp"

int main(int argc, char** argv) {
  const std::vector<bench::TableRow> rows = {
      {64, 256, 128, 100, 1.79, 3.25},   {256, 256, 128, 100, 1.90, 4.24},
      {1024, 256, 128, 100, 1.58, 3.19}, {256, 256, 1, 2, 1.17, 1.37},
      {256, 256, 1, 10, 1.50, 2.21},     {256, 256, 1, 100, 1.93, 3.22},
      {64, 256, 256, 100, 1.76, 3.35},   {64, 1024, 256, 100, 1.64, 8.51},
      {256, 256, 256, 100, 1.75, 3.42},  {256, 1024, 256, 100, 1.83, 9.16},
      {1024, 256, 256, 100, 1.58, 3.12}, {1024, 1024, 256, 100, 1.78, 7.31}};
  return bench::run_training_table(
      argc, argv, bpar::rnn::CellType::kLstm, rows,
      "Table III: BLSTM training times, B-Par vs Keras/PyTorch/B-Seq",
      "table3_blstm");
}
