// Graph-optimizer pass pipeline: structural and simulated effect of the
// passes (DESIGN.md §5k) on the paper's shapes.
//
// For each configuration, builds the shape-only B-Par graph with the pass
// pipeline off and on and reports task count, GEMM launches per execution,
// modeled critical path, and simulated makespan at the given core count.
// Expected shape: gate fusion cuts GRU GEMM launches ~25%; input precompute
// shortens the critical path (layer 0's input GEMMs leave the serial
// recurrent chain); coarsening cuts task count most at small serving
// shapes, where per-task dispatch is the dominant cost.
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "graph/passes/registry.hpp"

namespace {

struct Config {
  std::string name;
  bpar::rnn::NetworkConfig cfg;
  int replicas;
  bool training;
};

}  // namespace

int main(int argc, char** argv) {
  bpar::util::ArgParser args("graph_passes",
                             "task count / GEMM launches / critical path "
                             "with the pass pipeline off vs on");
  bench::add_common_flags(args);
  args.add_int("cores", 48, "simulated cores");
  if (!args.parse(argc, argv)) return 1;

  bench::SimSetup setup;
  setup.calibration = bench::resolve_calibration(args);
  setup.cores = static_cast<int>(args.get_int("cores"));
  std::string on_spec = bench::resolve_passes(args);
  if (on_spec.empty()) {
    on_spec = bpar::graph::passes::effective_pass_spec("default");
  }

  std::vector<Config> configs;
  configs.push_back({"blstm-train-b128",
                     bench::table_network(bpar::rnn::CellType::kLstm, 256,
                                          256, 128, 100, 8),
                     8, true});
  configs.push_back({"bgru-train-b128",
                     bench::table_network(bpar::rnn::CellType::kGru, 256, 256,
                                          128, 100, 8),
                     8, true});
  configs.push_back({"bgru-serve-b8",
                     bench::table_network(bpar::rnn::CellType::kGru, 128, 128,
                                          8, 50, 4),
                     1, false});

  bpar::util::Table table({"config", "passes", "tasks", "gemm_launches",
                           "critical_path(ms)", "makespan(ms)"});
  for (const Config& c : configs) {
    bpar::rnn::Network net(c.cfg, /*allocate_weights=*/false);
    for (const std::string& spec : {std::string(), on_spec}) {
      bpar::graph::BuildOptions bo;
      bo.num_replicas = c.replicas;
      bo.training = c.training;
      bo.executable = false;
      bo.passes = spec;
      bpar::graph::TrainingProgram program(net, c.cfg.batch_size, bo);
      const auto costs =
          bpar::sim::modeled_costs(program.graph(), setup.calibration);
      bpar::sim::Simulator simulator(
          bpar::sim::SimOptions{.policy = setup.policy,
                                .cores = setup.cores});
      const bpar::sim::SimResult r = simulator.run(program.graph(), costs);
      const double cp_ms =
          static_cast<double>(program.graph().critical_path_cost(costs)) /
          1e6;
      // First column doubles as the baseline.json row key — keep it
      // unique across the off/on pair.
      table.add_row({c.name + (spec.empty() ? ":off" : ":on"),
                     program.pass_signature(),
                     std::to_string(program.graph().size()),
                     std::to_string(program.gemm_launches()),
                     bpar::util::fmt_ms(cp_ms),
                     bpar::util::fmt_ms(r.makespan_ms)});
    }
  }
  table.print("Graph-optimizer passes: off vs on");
  std::printf(
      "\nExpected shape: input precompute shortens the critical path (layer\n"
      "0's input GEMMs leave the recurrent chain); gate fusion removes one\n"
      "GEMM launch per GRU forward cell; coarsening trims task count at\n"
      "dispatch-bound shapes.\n");
  bench::emit_csv(args, table, "graph_passes");
  return 0;
}
