// Shared helpers for the paper-reproduction benches.
//
// Every table/figure bench follows the same recipe (DESIGN.md §4):
//  1. build the *shape-only* task graph of each system (B-Par, B-Seq,
//     Keras-like, PyTorch-like) at the paper's full problem sizes;
//  2. assign per-task costs from the roofline model under a calibration
//     representing one Xeon 8160 core running MKL (so absolute numbers land
//     near the paper's scale) or, with --host-calibration, this machine's
//     measured kernel rates;
//  3. replay each graph in the discrete-event simulator at the requested
//     core count and scheduler policy.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "exec/baseline_profiles.hpp"
#include "graph/brnn_graph.hpp"
#include "perf/gpu_model.hpp"
#include "rnn/network.hpp"
#include "sim/cost_model.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace bench {

/// One Xeon Platinum 8160 core with MKL-sequential kernels.
[[nodiscard]] bpar::sim::Calibration paper_core_calibration();

/// Adds the flags shared by all benches (--full, --host-calibration,
/// --csv-dir) to `args`.
void add_common_flags(bpar::util::ArgParser& args);

/// Resolves the calibration from parsed common flags.
[[nodiscard]] bpar::sim::Calibration resolve_calibration(
    const bpar::util::ArgParser& args);

struct SimSetup {
  bpar::sim::Calibration calibration;
  int cores = 48;
  bpar::taskrt::SchedulerPolicy policy =
      bpar::taskrt::SchedulerPolicy::kLocalityAware;
  bool training = true;
};

/// Simulated per-batch time (ms) of B-Par with `replicas` mini-batches.
/// Optionally returns the full simulator result. `schedule_profile` picks
/// an ablation schedule ("fused_merge", "layer_barriers", "sequential",
/// "framework"); `passes` runs the graph-optimizer pipeline ("" = off, the
/// faithful paper graph).
[[nodiscard]] double simulate_bpar(bpar::rnn::Network& net,
                                   const SimSetup& setup, int replicas,
                                   bpar::sim::SimResult* result = nullptr,
                                   const std::string& schedule_profile = "",
                                   const std::string& passes = "");

/// Resolves the --passes flag: "" → off (bench default), "list" prints the
/// registry and exits, anything else resolves through
/// graph::passes::effective_pass_spec (so "default" and BPAR_GRAPH_PASSES
/// work like they do in the executors).
[[nodiscard]] std::string resolve_passes(const bpar::util::ArgParser& args);

/// Simulated per-batch time (ms) of B-Seq (data parallelism only).
[[nodiscard]] double simulate_bseq(const bpar::rnn::NetworkConfig& cfg,
                                   const SimSetup& setup, int replicas);

/// Simulated per-batch time (ms) of a framework baseline (per-layer
/// barriers + intra-op chunking under `profile`).
[[nodiscard]] double simulate_framework(
    bpar::rnn::Network& net, const SimSetup& setup,
    const bpar::exec::FrameworkProfile& profile);

/// min over `cores_list` of run(cores).
[[nodiscard]] double best_over_cores(
    const std::vector<int>& cores_list,
    const std::function<double(int)>& run);

/// The paper's Table III/IV network shape (6-layer BRNN, H-wide merge).
[[nodiscard]] bpar::rnn::NetworkConfig table_network(
    bpar::rnn::CellType cell, int input, int hidden, int batch, int seq,
    int layers = 6, bool many_to_many = false);

/// GPU-model columns for a table row ("-" when the profile hangs).
[[nodiscard]] std::string gpu_cell(const bpar::perf::GpuModelParams& params,
                                   const bpar::rnn::NetworkConfig& cfg);

/// Writes the table as CSV under the --csv-dir location.
void emit_csv(const bpar::util::ArgParser& args, const bpar::util::Table& t,
              const std::string& name);

/// True when --trace or --metrics armed schedule capture (set by
/// resolve_calibration): simulate_bpar records the simulated schedule and
/// emit_csv turns it into an analyzable trace + a RunReport "analysis"
/// section (bpar_prof analyze consumes both).
[[nodiscard]] bool analysis_capture_enabled();

}  // namespace bench
