// Single-head scaled-dot-product self-attention with a residual connection
// — the paper's future-work claim (§VI: "The B-Par task-graph execution
// model could be easily applied to ... transformers and attention
// mechanisms"), realized on the same task runtime (attention_graph.hpp).
//
// Layout: one *sequence* is a T x M matrix (sequence-major — unlike the
// BRNN stack's timestep-major batches — because attention mixes all
// timesteps of one sequence). For a batch, kernels run per sequence; the
// task graph parallelizes across sequences and serializes only the shared
// weight-gradient accumulation, exactly like BRNN cells share layer
// weights.
//
//   Q = X Wq;  K = X Wk;  V = X Wv               (all T x M)
//   per head h (column slice of width M/H):
//     S_h = softmax_rows(Q_h K_h^T / sqrt(M/H))   (T x T)
//     Y_h = S_h V_h
//   Y = X + concat_h(Y_h)                         (residual)
#pragma once

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace bpar::attn {

struct AttentionParams {
  int dim = 0;    // model width M
  int heads = 1;  // H; M % H == 0
  tensor::Matrix wq;  // M x M
  tensor::Matrix wk;
  tensor::Matrix wv;

  void init(int model_dim, util::Rng& rng, int num_heads = 1);
  [[nodiscard]] int head_dim() const { return dim / heads; }
  [[nodiscard]] std::size_t param_count() const {
    return wq.count() + wk.count() + wv.count();
  }
};

struct AttentionGrads {
  tensor::Matrix dwq;
  tensor::Matrix dwk;
  tensor::Matrix dwv;

  void init_like(const AttentionParams& params);
  void zero();
  void accumulate(const AttentionGrads& other);
  [[nodiscard]] double l2_norm() const;
};

/// Forward state of one sequence, retained for backward.
struct AttentionTape {
  tensor::Matrix q;       // T x M
  tensor::Matrix k;       // T x M
  tensor::Matrix v;       // T x M
  tensor::Matrix scores;  // (H*T) x T — per-head softmaxed scores, stacked
  tensor::Matrix y;       // T x M output

  void init(int seq, int dim, int heads = 1);
  [[nodiscard]] std::size_t bytes() const;
};

/// Forward over one sequence x (T x M); fills the tape (y included).
void attention_forward(const AttentionParams& params,
                       tensor::ConstMatrixView x, AttentionTape& tape);

/// Backward over one sequence: given dY, accumulates dX (+=) and the
/// weight gradients (+=; callers serialize shared grads like BRNN cells).
void attention_backward(const AttentionParams& params,
                        tensor::ConstMatrixView x, const AttentionTape& tape,
                        tensor::ConstMatrixView dy, tensor::MatrixView dx_acc,
                        AttentionGrads& grads);

[[nodiscard]] double attention_forward_flops(int seq, int dim);


}  // namespace bpar::attn
