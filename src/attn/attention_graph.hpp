// Barrier-free task-graph execution of an attention classifier — the
// paper's future-work extension demonstrated end to end: per-sequence
// attention forward, fused head (mean-pool → dense → softmax-CE, seeding
// the upstream gradient), and attention backward all run as dependency-
// scheduled tasks on the same runtime as the BRNN graphs. Shared weight
// gradients serialize through an inout chain exactly like BRNN layer
// weights.
//
// Model: logits(s) = mean_t(AttentionLayer(X_s)_t) * W_out^T + b_out.
#pragma once

#include <memory>
#include <vector>

#include "attn/attention.hpp"
#include "taskrt/task_graph.hpp"

namespace bpar::attn {

struct AttentionModelConfig {
  int dim = 16;         // model width M (input width == M)
  int heads = 1;        // attention heads (dim % heads == 0)
  int seq_length = 8;   // timesteps per sequence
  int num_classes = 4;
  std::uint64_t seed = 7;
};

class AttentionModel {
 public:
  explicit AttentionModel(const AttentionModelConfig& config);

  [[nodiscard]] const AttentionModelConfig& config() const { return config_; }
  AttentionParams attention;
  tensor::Matrix w_out;  // C x M
  tensor::Matrix b_out;  // 1 x C

  [[nodiscard]] std::size_t param_count() const;

 private:
  AttentionModelConfig config_;
};

struct AttentionModelGrads {
  AttentionGrads attention;
  tensor::Matrix dw_out;
  tensor::Matrix db_out;

  void init_like(const AttentionModel& model);
  void zero();
};

/// Simple SGD update for the attention classifier.
void apply_sgd(AttentionModel& model, const AttentionModelGrads& grads,
               float learning_rate);

class AttentionProgram {
 public:
  /// Builds the task graph for `num_sequences` sequences. `model` must
  /// outlive the program.
  AttentionProgram(AttentionModel& model, int num_sequences, bool training);

  /// Copies one batch: `sequences[s]` is T x M, labels one per sequence.
  void load(const std::vector<tensor::Matrix>& sequences,
            std::span<const int> labels);
  void prepare();

  [[nodiscard]] taskrt::TaskGraph& graph() { return graph_; }
  [[nodiscard]] double loss() const { return total_loss_; }
  [[nodiscard]] AttentionModelGrads& grads() { return grads_; }
  [[nodiscard]] int num_sequences() const { return num_sequences_; }
  /// Argmax prediction of sequence `s`; valid after a run.
  [[nodiscard]] int prediction(int s) const;

 private:
  void build();

  AttentionModel& model_;
  int num_sequences_;
  bool training_;
  taskrt::TaskGraph graph_;

  std::vector<tensor::Matrix> x_;      // [s] T x M
  std::vector<int> labels_;
  std::vector<AttentionTape> tapes_;   // [s]
  std::vector<tensor::Matrix> dy_;     // [s] T x M (training)
  std::vector<tensor::Matrix> dx_;     // [s] T x M sink (training)
  std::vector<tensor::Matrix> probs_;  // [s] 1 x C
  std::vector<double> losses_;         // [s]
  double total_loss_ = 0.0;
  AttentionModelGrads grads_;
};

}  // namespace bpar::attn
