#include "attn/attention.hpp"

#include <cmath>

#include "kernels/elementwise.hpp"
#include "kernels/gemm.hpp"
#include "util/check.hpp"

namespace bpar::attn {

using kernels::gemm_nn;
using kernels::gemm_nt;
using kernels::gemm_tn;
using tensor::ConstMatrixView;
using tensor::Matrix;
using tensor::MatrixView;

void AttentionParams::init(int model_dim, util::Rng& rng, int num_heads) {
  BPAR_CHECK(model_dim > 0, "bad attention dim");
  BPAR_CHECK(num_heads > 0 && model_dim % num_heads == 0,
             "dim must divide evenly into heads");
  dim = model_dim;
  heads = num_heads;
  const float scale = 1.0F / std::sqrt(static_cast<float>(model_dim));
  for (auto* w : {&wq, &wk, &wv}) {
    w->resize(model_dim, model_dim);
    tensor::fill_weights(w->view(), rng, scale);
  }
}

void AttentionGrads::init_like(const AttentionParams& params) {
  dwq.resize(params.wq.rows(), params.wq.cols());
  dwk.resize(params.wk.rows(), params.wk.cols());
  dwv.resize(params.wv.rows(), params.wv.cols());
}

void AttentionGrads::zero() {
  dwq.zero();
  dwk.zero();
  dwv.zero();
}

void AttentionGrads::accumulate(const AttentionGrads& other) {
  kernels::accumulate(dwq.view(), other.dwq.cview());
  kernels::accumulate(dwk.view(), other.dwk.cview());
  kernels::accumulate(dwv.view(), other.dwv.cview());
}

double AttentionGrads::l2_norm() const {
  double acc = 0.0;
  for (const auto* m : {&dwq, &dwk, &dwv}) {
    const double n = tensor::l2_norm(m->cview());
    acc += n * n;
  }
  return std::sqrt(acc);
}

void AttentionTape::init(int seq, int dim, int heads) {
  q.resize(seq, dim);
  k.resize(seq, dim);
  v.resize(seq, dim);
  scores.resize(heads * seq, seq);
  y.resize(seq, dim);
}

std::size_t AttentionTape::bytes() const {
  return (q.count() + k.count() + v.count() + scores.count() + y.count()) *
         sizeof(float);
}

void attention_forward(const AttentionParams& params, ConstMatrixView x,
                       AttentionTape& tape) {
  BPAR_CHECK(x.cols == params.dim, "attention input width mismatch");
  const int seq = x.rows;
  BPAR_CHECK(tape.q.rows() == seq, "tape shape mismatch");
  BPAR_CHECK(tape.scores.rows() == params.heads * seq,
             "tape built for a different head count");
  const int hd = params.head_dim();
  const float inv_sqrt_d = 1.0F / std::sqrt(static_cast<float>(hd));

  gemm_nn(x, params.wq.cview(), tape.q.view());
  gemm_nn(x, params.wk.cview(), tape.k.view());
  gemm_nn(x, params.wv.cview(), tape.v.view());

  Matrix logits(seq, seq);
  for (int h = 0; h < params.heads; ++h) {
    const auto qh = tape.q.cview().block(0, h * hd, seq, hd);
    const auto kh = tape.k.cview().block(0, h * hd, seq, hd);
    const auto vh = tape.v.cview().block(0, h * hd, seq, hd);
    auto sh = tape.scores.view().block(h * seq, 0, seq, seq);
    gemm_nt(qh, kh, logits.view(), inv_sqrt_d);
    kernels::softmax_rows(logits.cview(), sh);
    gemm_nn(tensor::ConstMatrixView(sh), vh,
            tape.y.view().block(0, h * hd, seq, hd));
  }
  kernels::accumulate(tape.y.view(), x);  // residual: Y = X + concat(S_h V_h)
}

void attention_backward(const AttentionParams& params, ConstMatrixView x,
                        const AttentionTape& tape, ConstMatrixView dy,
                        MatrixView dx_acc, AttentionGrads& grads) {
  const int seq = x.rows;
  const int dim = params.dim;
  const int hd = params.head_dim();
  const float inv_sqrt_d = 1.0F / std::sqrt(static_cast<float>(hd));

  // Residual path.
  kernels::accumulate(dx_acc, dy);

  Matrix dv(seq, dim);
  Matrix dq(seq, dim);
  Matrix dk(seq, dim);
  Matrix ds(seq, seq);
  Matrix dz(seq, seq);
  for (int h = 0; h < params.heads; ++h) {
    const auto sh = tape.scores.cview().block(h * seq, 0, seq, seq);
    const auto qh = tape.q.cview().block(0, h * hd, seq, hd);
    const auto kh = tape.k.cview().block(0, h * hd, seq, hd);
    const auto vh = tape.v.cview().block(0, h * hd, seq, hd);
    const auto dyh = dy.block(0, h * hd, seq, hd);

    // dV_h = S_h^T dY_h;  dS_h = dY_h V_h^T.
    gemm_tn(sh, dyh, dv.view().block(0, h * hd, seq, hd));
    gemm_nt(dyh, vh, ds.view());

    // Softmax backward per row: dZ_i = (dS_i - <dS_i, S_i>) ⊙ S_i.
    for (int i = 0; i < seq; ++i) {
      const auto s_row = sh.row(i);
      const auto ds_row = ds.cview().row(i);
      float dot = 0.0F;
      for (int j = 0; j < seq; ++j) {
        dot += ds_row[static_cast<std::size_t>(j)] *
               s_row[static_cast<std::size_t>(j)];
      }
      auto dz_row = dz.view().row(i);
      for (int j = 0; j < seq; ++j) {
        dz_row[static_cast<std::size_t>(j)] =
            (ds_row[static_cast<std::size_t>(j)] - dot) *
            s_row[static_cast<std::size_t>(j)];
      }
    }

    // dQ_h = dZ K_h / sqrt(d);  dK_h = dZ^T Q_h / sqrt(d).
    gemm_nn(dz.cview(), kh, dq.view().block(0, h * hd, seq, hd),
            inv_sqrt_d);
    gemm_tn(dz.cview(), qh, dk.view().block(0, h * hd, seq, hd),
            inv_sqrt_d);
  }

  // Weight gradients: dW* += X^T d*.
  gemm_tn(x, dq.cview(), grads.dwq.view(), 1.0F, 1.0F);
  gemm_tn(x, dk.cview(), grads.dwk.view(), 1.0F, 1.0F);
  gemm_tn(x, dv.cview(), grads.dwv.view(), 1.0F, 1.0F);

  // Input gradients through the projections: dX += d* W*^T.
  gemm_nt(dq.cview(), params.wq.cview(), dx_acc, 1.0F, 1.0F);
  gemm_nt(dk.cview(), params.wk.cview(), dx_acc, 1.0F, 1.0F);
  gemm_nt(dv.cview(), params.wv.cview(), dx_acc, 1.0F, 1.0F);
}

double attention_forward_flops(int seq, int dim) {
  const double proj = 3.0 * 2.0 * seq * static_cast<double>(dim) * dim;
  const double scores = 2.0 * seq * static_cast<double>(seq) * dim;
  const double context = 2.0 * seq * static_cast<double>(seq) * dim;
  return proj + scores + context;
}

}  // namespace bpar::attn
