#include "attn/attention_graph.hpp"

#include <cmath>

#include "kernels/elementwise.hpp"
#include "kernels/gemm.hpp"
#include "util/check.hpp"

namespace bpar::attn {

using taskrt::in;
using taskrt::inout;
using taskrt::out;
using taskrt::TaskKind;
using taskrt::TaskSpec;
using tensor::Matrix;

AttentionModel::AttentionModel(const AttentionModelConfig& config)
    : config_(config) {
  BPAR_CHECK(config_.dim > 0 && config_.seq_length > 0 &&
                 config_.num_classes > 0,
             "bad attention model config");
  util::Rng rng(config_.seed);
  attention.init(config_.dim, rng, config_.heads);
  w_out.resize(config_.num_classes, config_.dim);
  b_out.resize(1, config_.num_classes);
  tensor::fill_weights(w_out.view(), rng,
                       1.0F / std::sqrt(static_cast<float>(config_.dim)));
}

std::size_t AttentionModel::param_count() const {
  return attention.param_count() + w_out.count() + b_out.count();
}

void AttentionModelGrads::init_like(const AttentionModel& model) {
  attention.init_like(model.attention);
  dw_out.resize(model.w_out.rows(), model.w_out.cols());
  db_out.resize(model.b_out.rows(), model.b_out.cols());
}

void AttentionModelGrads::zero() {
  attention.zero();
  dw_out.zero();
  db_out.zero();
}

void apply_sgd(AttentionModel& model, const AttentionModelGrads& grads,
               float learning_rate) {
  auto update = [learning_rate](Matrix& param, const Matrix& grad) {
    for (int r = 0; r < param.rows(); ++r) {
      kernels::axpy(-learning_rate, grad.cview().row(r),
                    param.view().row(r));
    }
  };
  update(model.attention.wq, grads.attention.dwq);
  update(model.attention.wk, grads.attention.dwk);
  update(model.attention.wv, grads.attention.dwv);
  update(model.w_out, grads.dw_out);
  update(model.b_out, grads.db_out);
}

AttentionProgram::AttentionProgram(AttentionModel& model, int num_sequences,
                                   bool training)
    : model_(model), num_sequences_(num_sequences), training_(training) {
  BPAR_CHECK(num_sequences_ > 0, "need at least one sequence");
  const auto& cfg = model_.config();
  x_.resize(static_cast<std::size_t>(num_sequences_));
  tapes_.resize(static_cast<std::size_t>(num_sequences_));
  probs_.resize(static_cast<std::size_t>(num_sequences_));
  losses_.assign(static_cast<std::size_t>(num_sequences_), 0.0);
  labels_.assign(static_cast<std::size_t>(num_sequences_), 0);
  if (training_) {
    dy_.resize(static_cast<std::size_t>(num_sequences_));
    dx_.resize(static_cast<std::size_t>(num_sequences_));
    grads_.init_like(model_);
  }
  for (int s = 0; s < num_sequences_; ++s) {
    x_[static_cast<std::size_t>(s)].resize(cfg.seq_length, cfg.dim);
    tapes_[static_cast<std::size_t>(s)].init(cfg.seq_length, cfg.dim,
                                             cfg.heads);
    probs_[static_cast<std::size_t>(s)].resize(1, cfg.num_classes);
    if (training_) {
      dy_[static_cast<std::size_t>(s)].resize(cfg.seq_length, cfg.dim);
      dx_[static_cast<std::size_t>(s)].resize(cfg.seq_length, cfg.dim);
    }
  }
  build();
  graph_.seal();
}

void AttentionProgram::load(const std::vector<Matrix>& sequences,
                            std::span<const int> labels) {
  BPAR_CHECK(static_cast<int>(sequences.size()) == num_sequences_,
             "sequence count mismatch");
  BPAR_CHECK(labels.size() == sequences.size(), "label count mismatch");
  const auto& cfg = model_.config();
  for (int s = 0; s < num_sequences_; ++s) {
    const auto& src = sequences[static_cast<std::size_t>(s)];
    BPAR_CHECK(src.rows() == cfg.seq_length && src.cols() == cfg.dim,
               "sequence shape mismatch");
    tensor::copy(src.cview(), x_[static_cast<std::size_t>(s)].view());
    BPAR_CHECK(labels[static_cast<std::size_t>(s)] >= 0 &&
                   labels[static_cast<std::size_t>(s)] < cfg.num_classes,
               "bad label");
    labels_[static_cast<std::size_t>(s)] =
        labels[static_cast<std::size_t>(s)];
  }
}

void AttentionProgram::prepare() {
  total_loss_ = 0.0;
  std::fill(losses_.begin(), losses_.end(), 0.0);
  if (training_) {
    grads_.zero();
    for (auto& m : dy_) m.zero();
    for (auto& m : dx_) m.zero();
  }
}

int AttentionProgram::prediction(int s) const {
  const auto& p = probs_[static_cast<std::size_t>(s)];
  int best = 0;
  for (int c = 1; c < p.cols(); ++c) {
    if (p.at(0, c) > p.at(0, best)) best = c;
  }
  return best;
}

void AttentionProgram::build() {
  const auto& cfg = model_.config();
  const double weight = 1.0 / num_sequences_;
  const double fwd_flops = attention_forward_flops(cfg.seq_length, cfg.dim);

  for (int s = 0; s < num_sequences_; ++s) {
    const auto idx = static_cast<std::size_t>(s);
    Matrix* x = &x_[idx];
    AttentionTape* tape = &tapes_[idx];

    // 1. Attention forward.
    TaskSpec fwd_spec;
    fwd_spec.kind = TaskKind::kCellForward;
    fwd_spec.flops = fwd_flops;
    fwd_spec.working_set_bytes = tape->bytes();
    fwd_spec.replica = s;
    fwd_spec.name = "attn_fwd." + std::to_string(s);
    graph_.add(
        [this, x, tape] { attention_forward(model_.attention, x->cview(), *tape); },
        {in(x->data()), out(tape->y.data())}, std::move(fwd_spec));

    // 2. Head: mean-pool → dense → softmax-CE; in training mode also seed
    //    the upstream gradient dY and accumulate head gradients.
    TaskSpec head_spec;
    head_spec.kind = TaskKind::kLoss;
    head_spec.replica = s;
    head_spec.name = "attn_head." + std::to_string(s);
    std::vector<taskrt::Access> head_acc{in(tape->y.data()),
                                         out(&losses_[idx]),
                                         out(probs_[idx].data())};
    if (training_) {
      head_acc.push_back(out(dy_[idx].data()));
      head_acc.push_back(inout(grads_.dw_out.data()));
    }
    graph_.add(
        [this, s, tape, weight] {
          const auto idx2 = static_cast<std::size_t>(s);
          const auto& c = model_.config();
          const float inv_t = 1.0F / static_cast<float>(c.seq_length);
          Matrix pooled(1, c.dim);
          for (int t = 0; t < c.seq_length; ++t) {
            kernels::axpy(inv_t, tape->y.cview().row(t),
                          pooled.view().row(0));
          }
          Matrix logits(1, c.num_classes);
          kernels::gemm_nt(pooled.cview(), model_.w_out.cview(),
                           logits.view());
          kernels::add_bias_rows(logits.view(), model_.b_out.cview().row(0));
          kernels::softmax_rows(logits.cview(), probs_[idx2].view());
          const int label = labels_[idx2];
          losses_[idx2] =
              kernels::cross_entropy(probs_[idx2].cview(), {&label, 1}) *
              weight;
          if (training_) {
            // dlogits = (p - onehot) * weight.
            Matrix dlogits(1, c.num_classes);
            kernels::softmax_ce_grad(probs_[idx2].cview(), {&label, 1},
                                     dlogits.view());
            kernels::scale_inplace(dlogits.view().row(0),
                                   static_cast<float>(weight));
            // Head gradients (shared; serialized by the inout chain).
            kernels::gemm_tn(dlogits.cview(), pooled.cview(),
                             grads_.dw_out.view(), 1.0F, 1.0F);
            kernels::sum_rows_acc(dlogits.cview(),
                                  grads_.db_out.view().row(0));
            // dpooled = dlogits W_out; dY rows share it (mean pool).
            Matrix dpooled(1, c.dim);
            kernels::gemm_nn(dlogits.cview(), model_.w_out.cview(),
                             dpooled.view());
            for (int t = 0; t < c.seq_length; ++t) {
              kernels::axpy(inv_t, dpooled.cview().row(0),
                            dy_[idx2].view().row(t));
            }
          }
        },
        std::span<const taskrt::Access>(head_acc.data(), head_acc.size()),
        std::move(head_spec));

    // 3. Attention backward.
    if (training_) {
      TaskSpec bwd_spec;
      bwd_spec.kind = TaskKind::kCellBackward;
      bwd_spec.flops = 2.0 * fwd_flops;
      bwd_spec.working_set_bytes = tape->bytes();
      bwd_spec.replica = s;
      bwd_spec.name = "attn_bwd." + std::to_string(s);
      graph_.add(
          [this, s, x, tape] {
            const auto idx2 = static_cast<std::size_t>(s);
            attention_backward(model_.attention, x->cview(), *tape,
                               dy_[idx2].cview(), dx_[idx2].view(),
                               grads_.attention);
          },
          {in(dy_[idx].data()), in(tape->y.data()),
           inout(grads_.attention.dwq.data()), out(dx_[idx].data())},
          std::move(bwd_spec));
    }
  }

  // Loss reduction.
  std::vector<taskrt::Access> acc;
  for (const double& slot : losses_) acc.push_back(in(&slot));
  acc.push_back(out(&total_loss_));
  TaskSpec reduce_spec;
  reduce_spec.kind = TaskKind::kGradReduce;
  reduce_spec.name = "attn_reduce.loss";
  graph_.add(
      [this] {
        total_loss_ = 0.0;
        for (const double v : losses_) total_loss_ += v;
      },
      std::span<const taskrt::Access>(acc.data(), acc.size()),
      std::move(reduce_spec));
}

}  // namespace bpar::attn
