// Synthetic TIDIGITS-like connected-digit speech corpus.
//
// The real TIDIGITS corpus (LDC93S10) is licensed, so we generate a
// statistically similar substitute that exercises the same code path
// (DESIGN.md §4): utterances are sequences of acoustic frames produced by
// per-digit spectral templates — each of the 11 words ("oh", "zero" ...
// "nine") has a fixed random spectral projection driven by low-frequency
// latent trajectories — plus per-speaker variation and additive noise.
// Utterances are padded/trimmed to a fixed frame count, labeled with the
// spoken digit (many-to-one classification), and batched.
// When TidigitsConfig::data_dir is set, real utterances are loaded from a
// directory of .utt files instead (one utterance per file):
//
//   magic   8 bytes  "BPARUTT1"
//   i32     label (0..10)
//   i32     frame count
//   i32     feature dim (must equal config.feature_dim)
//   then    frames x feature_dim float32 features, row-major
//
// Malformed files raise util::DataError naming the path and the expected
// layout; set fallback_to_synthetic to degrade to synthesis with a warning
// instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rnn/batch.hpp"

namespace bpar::data {

inline constexpr int kTidigitsClasses = 11;  // oh, zero, one ... nine

[[nodiscard]] const char* tidigits_class_name(int label);

struct TidigitsConfig {
  int feature_dim = 64;    // acoustic feature width (model input size)
  int seq_length = 100;    // frames per utterance (pad/trim)
  int num_utterances = 256;
  double noise = 0.15;       // additive observation noise
  double speaker_var = 0.2;  // per-utterance speaker offset magnitude
  /// When > 0, utterances get a random frame count in
  /// [min_seq_length, seq_length] instead of fixed padding — real TIDIGITS
  /// utterances vary in duration. Use make_bucketed_batches() then.
  int min_seq_length = 0;
  std::uint64_t seed = 2022;
  /// When non-empty, load .utt files from this directory (see file header)
  /// instead of synthesizing; num_utterances then reflects what was found.
  std::string data_dir;
  /// With data_dir set: fall back to the synthetic corpus (with a warning)
  /// when loading fails, instead of propagating util::DataError.
  bool fallback_to_synthetic = false;
};

class TidigitsCorpus {
 public:
  explicit TidigitsCorpus(TidigitsConfig config);

  [[nodiscard]] const TidigitsConfig& config() const { return config_; }
  [[nodiscard]] int size() const { return config_.num_utterances; }
  [[nodiscard]] int label(int utterance) const;
  /// Frame `t` features of one utterance.
  [[nodiscard]] tensor::ConstMatrixView frames(int utterance) const;

  /// Frame count of one utterance (== config.seq_length unless variable
  /// lengths were requested).
  [[nodiscard]] int length(int utterance) const;

  /// Groups utterances into many-to-one batches of `batch_size` (drops the
  /// ragged tail). Requires fixed-length utterances.
  [[nodiscard]] std::vector<rnn::BatchData> make_batches(
      int batch_size) const;

  /// Variable-length batching: utterances are bucketed by frame count
  /// (same-length utterances share a batch), producing batches whose
  /// sequence lengths differ — the workload B-Par's dynamic graph
  /// adjustment handles (paper §III-B). Buckets with fewer than
  /// `batch_size` utterances are dropped.
  [[nodiscard]] std::vector<rnn::BatchData> make_bucketed_batches(
      int batch_size) const;

 private:
  void synthesize();
  void load_directory();
  [[nodiscard]] rnn::BatchData assemble(const std::vector<int>& utterances,
                                        int steps) const;

  TidigitsConfig config_;
  std::vector<tensor::Matrix> frames_;  // [utterance] T_u x feature_dim
  std::vector<int> labels_;
};

}  // namespace bpar::data
