#include "data/tidigits.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <numbers>

#include "util/check.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace bpar::data {
namespace {

constexpr int kLatents = 4;  // latent trajectories per digit template

// Per-class latent dynamics: distinct base frequencies and phases make the
// classes separable while overlapping enough to require sequence modeling.
struct DigitTemplate {
  tensor::Matrix projection;  // feature_dim x kLatents
  double omega[kLatents];
  double phase[kLatents];
};

DigitTemplate make_template(int digit, int feature_dim, util::Rng& rng) {
  DigitTemplate tpl;
  tpl.projection.resize(feature_dim, kLatents);
  tensor::fill_normal(tpl.projection.view(), rng, 0.0F, 1.0F);
  for (int k = 0; k < kLatents; ++k) {
    tpl.omega[k] = 0.05 + 0.015 * digit + 0.04 * k + rng.uniform(0.0, 0.01);
    tpl.phase[k] = rng.uniform(0.0, 2.0 * std::numbers::pi);
  }
  return tpl;
}

}  // namespace

const char* tidigits_class_name(int label) {
  static constexpr const char* kNames[kTidigitsClasses] = {
      "oh",  "zero", "one", "two", "three", "four",
      "five", "six",  "seven", "eight", "nine"};
  BPAR_CHECK(label >= 0 && label < kTidigitsClasses, "bad digit label ",
             label);
  return kNames[label];
}

TidigitsCorpus::TidigitsCorpus(TidigitsConfig config)
    : config_(config) {
  BPAR_CHECK(config_.feature_dim > 0 && config_.seq_length > 0 &&
                 config_.num_utterances > 0,
             "bad TIDIGITS config");
  BPAR_CHECK(config_.min_seq_length <= config_.seq_length,
             "min_seq_length exceeds seq_length");
  if (!config_.data_dir.empty()) {
    try {
      load_directory();
      return;
    } catch (const util::DataError& e) {
      if (!config_.fallback_to_synthetic) throw;
      BPAR_LOG_WARN << e.what() << "; falling back to the synthetic corpus";
      frames_.clear();
      labels_.clear();
    }
  }
  synthesize();
}

void TidigitsCorpus::load_directory() {
  namespace fs = std::filesystem;
  static constexpr const char* kLayout =
      "expected a directory of .utt files: 8-byte magic \"BPARUTT1\", "
      "i32 label, i32 frames, i32 feature_dim, then frames*feature_dim "
      "float32 features";
  const fs::path dir(config_.data_dir);
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    BPAR_RAISE(util::DataError, "TIDIGITS data_dir '", config_.data_dir,
               "' is not a readable directory (", kLayout, ")");
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".utt") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    BPAR_RAISE(util::DataError, "no .utt files in TIDIGITS data_dir '",
               config_.data_dir, "' (", kLayout, ")");
  }

  for (const auto& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
      BPAR_RAISE(util::DataError, "cannot open TIDIGITS utterance '",
                 path.string(), "'");
    }
    char magic[8] = {};
    std::int32_t header[3] = {};  // label, frames, feature_dim
    in.read(magic, sizeof magic);
    in.read(reinterpret_cast<char*>(header), sizeof header);
    if (!in.good() || std::memcmp(magic, "BPARUTT1", 8) != 0) {
      BPAR_RAISE(util::DataError, "'", path.string(),
                 "' is not a TIDIGITS utterance file (", kLayout, ")");
    }
    const std::int32_t label = header[0];
    const std::int32_t native_frames = header[1];
    const std::int32_t dim = header[2];
    if (label < 0 || label >= kTidigitsClasses || native_frames <= 0) {
      BPAR_RAISE(util::DataError, "'", path.string(), "': bad label ", label,
                 " or frame count ", native_frames, " (", kLayout, ")");
    }
    if (dim != config_.feature_dim) {
      BPAR_RAISE(util::DataError, "'", path.string(), "': feature_dim is ",
                 dim, " in the file but ", config_.feature_dim,
                 " in the config");
    }
    // Pad/trim to the configured window, like the synthetic path. With
    // variable lengths enabled, keep the native duration within bounds.
    int frames = config_.seq_length;
    if (config_.min_seq_length > 0) {
      frames = std::clamp(native_frames, config_.min_seq_length,
                          config_.seq_length);
    }
    tensor::Matrix utterance(frames, config_.feature_dim);
    const int rows = std::min(frames, native_frames);
    const auto bytes = static_cast<std::streamsize>(
        static_cast<std::size_t>(rows) *
        static_cast<std::size_t>(config_.feature_dim) * sizeof(float));
    in.read(reinterpret_cast<char*>(utterance.data()), bytes);
    if (in.gcount() != bytes) {
      BPAR_RAISE(util::DataError, "'", path.string(), "' is truncated: got ",
                 in.gcount(), " of ", bytes, " feature bytes (", kLayout,
                 ")");
    }
    labels_.push_back(label);
    frames_.push_back(std::move(utterance));
  }
  config_.num_utterances = static_cast<int>(frames_.size());
}

void TidigitsCorpus::synthesize() {
  util::Rng rng(config_.seed);

  std::vector<DigitTemplate> templates;
  templates.reserve(kTidigitsClasses);
  for (int d = 0; d < kTidigitsClasses; ++d) {
    templates.push_back(make_template(d, config_.feature_dim, rng));
  }

  frames_.reserve(static_cast<std::size_t>(config_.num_utterances));
  labels_.reserve(static_cast<std::size_t>(config_.num_utterances));
  for (int u = 0; u < config_.num_utterances; ++u) {
    const int digit =
        static_cast<int>(rng.uniform_index(kTidigitsClasses));
    labels_.push_back(digit);
    const DigitTemplate& tpl = templates[static_cast<std::size_t>(digit)];

    // Variable utterance duration when requested.
    int frames = config_.seq_length;
    if (config_.min_seq_length > 0) {
      frames = config_.min_seq_length +
               static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(
                   config_.seq_length - config_.min_seq_length + 1)));
    }
    tensor::Matrix utterance(frames, config_.feature_dim);
    // Spoken length varies per utterance; the rest is near-silence.
    const int spoken =
        frames / 2 + static_cast<int>(rng.uniform_index(
                         static_cast<std::uint64_t>(std::max(1, frames / 2))));
    // Speaker offset: a fixed random bias for the whole utterance.
    std::vector<float> speaker(static_cast<std::size_t>(config_.feature_dim));
    for (auto& v : speaker) {
      v = static_cast<float>(rng.normal(0.0, config_.speaker_var));
    }
    const double rate = rng.uniform(0.85, 1.15);  // speaking-rate jitter

    for (int t = 0; t < frames; ++t) {
      auto row = utterance.view().row(t);
      if (t < spoken) {
        // Envelope rises and decays over the spoken region.
        const double pos = static_cast<double>(t) / spoken;
        const double envelope = std::sin(std::numbers::pi * pos);
        double latent[kLatents];
        for (int k = 0; k < kLatents; ++k) {
          latent[k] = envelope *
                      std::sin(tpl.omega[k] * rate * t + tpl.phase[k]);
        }
        for (int f = 0; f < config_.feature_dim; ++f) {
          double v = 0.0;
          for (int k = 0; k < kLatents; ++k) {
            v += static_cast<double>(tpl.projection.at(f, k)) * latent[k];
          }
          row[static_cast<std::size_t>(f)] =
              static_cast<float>(v) + speaker[static_cast<std::size_t>(f)] +
              static_cast<float>(rng.normal(0.0, config_.noise));
        }
      } else {
        for (int f = 0; f < config_.feature_dim; ++f) {
          row[static_cast<std::size_t>(f)] =
              static_cast<float>(rng.normal(0.0, config_.noise * 0.3));
        }
      }
    }
    frames_.push_back(std::move(utterance));
  }
}

int TidigitsCorpus::label(int utterance) const {
  BPAR_CHECK(utterance >= 0 && utterance < size(), "bad utterance index");
  return labels_[static_cast<std::size_t>(utterance)];
}

tensor::ConstMatrixView TidigitsCorpus::frames(int utterance) const {
  BPAR_CHECK(utterance >= 0 && utterance < size(), "bad utterance index");
  return frames_[static_cast<std::size_t>(utterance)].cview();
}

int TidigitsCorpus::length(int utterance) const {
  return frames(utterance).rows;
}

rnn::BatchData TidigitsCorpus::assemble(const std::vector<int>& utterances,
                                        int steps) const {
  rnn::BatchData batch;
  batch.x.resize(static_cast<std::size_t>(steps));
  for (auto& m : batch.x) {
    m.resize(static_cast<int>(utterances.size()), config_.feature_dim);
  }
  batch.labels.reserve(utterances.size());
  for (std::size_t i = 0; i < utterances.size(); ++i) {
    const int u = utterances[i];
    BPAR_CHECK(length(u) == steps, "utterance length mismatch in bucket");
    batch.labels.push_back(label(u));
    const auto f = frames(u);
    for (int t = 0; t < steps; ++t) {
      auto dst = batch.x[static_cast<std::size_t>(t)].view().row(
          static_cast<int>(i));
      const auto src = f.row(t);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
  return batch;
}

std::vector<rnn::BatchData> TidigitsCorpus::make_bucketed_batches(
    int batch_size) const {
  BPAR_CHECK(batch_size > 0, "bad batch size");
  std::map<int, std::vector<int>> buckets;  // frame count -> utterances
  for (int u = 0; u < size(); ++u) buckets[length(u)].push_back(u);
  std::vector<rnn::BatchData> batches;
  for (const auto& [steps, utterances] : buckets) {
    for (std::size_t base = 0; base + batch_size <= utterances.size();
         base += static_cast<std::size_t>(batch_size)) {
      batches.push_back(assemble(
          {utterances.begin() + static_cast<long>(base),
           utterances.begin() + static_cast<long>(base) + batch_size},
          steps));
    }
  }
  return batches;
}

std::vector<rnn::BatchData> TidigitsCorpus::make_batches(
    int batch_size) const {
  BPAR_CHECK(batch_size > 0, "bad batch size");
  BPAR_CHECK(config_.min_seq_length == 0,
             "variable-length corpus: use make_bucketed_batches()");
  std::vector<rnn::BatchData> batches;
  const int count = size() / batch_size;
  for (int b = 0; b < count; ++b) {
    rnn::BatchData batch;
    batch.x.resize(static_cast<std::size_t>(config_.seq_length));
    for (auto& m : batch.x) m.resize(batch_size, config_.feature_dim);
    batch.labels.resize(static_cast<std::size_t>(batch_size));
    for (int i = 0; i < batch_size; ++i) {
      const int u = b * batch_size + i;
      batch.labels[static_cast<std::size_t>(i)] = label(u);
      const auto f = frames(u);
      for (int t = 0; t < config_.seq_length; ++t) {
        auto dst = batch.x[static_cast<std::size_t>(t)].view().row(i);
        const auto src = f.row(t);
        std::copy(src.begin(), src.end(), dst.begin());
      }
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

}  // namespace bpar::data
