#include "data/wikipedia.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <map>
#include <sstream>

#include "util/check.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace bpar::data {
namespace {

// Embedded seed text in an encyclopedic register. The Markov sampler only
// needs representative character statistics, not meaning.
constexpr const char* kSeedText =
    "the recurrent neural network is a class of artificial neural network "
    "where connections between nodes can create a cycle allowing output "
    "from some nodes to affect subsequent input to the same nodes. derived "
    "from feedforward neural networks recurrent networks can use their "
    "internal state to process variable length sequences of inputs. this "
    "makes them applicable to tasks such as unsegmented connected "
    "handwriting recognition or speech recognition. the term recurrent "
    "neural network is used to refer to the class of networks with an "
    "infinite impulse response whereas convolutional networks belong to "
    "the class of finite impulse response. both classes of networks "
    "exhibit temporal dynamic behavior. a finite impulse recurrent network "
    "is a directed acyclic graph that can be unrolled and replaced with a "
    "strictly feedforward network while an infinite impulse network is a "
    "directed cyclic graph that cannot be unrolled. additional stored "
    "states and the storage under direct control by the network can be "
    "added to both infinite and finite impulse networks. the storage can "
    "also be replaced by another network or graph if that incorporates "
    "time delays or has feedback loops. such controlled states are "
    "referred to as gated state or gated memory and are part of long "
    "short term memory networks and gated recurrent units. this is also "
    "called the feedback neural network. long short term memory is an "
    "artificial recurrent neural network architecture used in the field "
    "of deep learning. unlike standard feedforward neural networks it has "
    "feedback connections. it can process not only single data points "
    "such as images but also entire sequences of data such as speech or "
    "video. a common architecture is composed of a cell and three "
    "regulators usually called gates of the flow of information inside "
    "the unit an input gate an output gate and a forget gate. the cell "
    "remembers values over arbitrary time intervals and the three gates "
    "regulate the flow of information into and out of the cell. the "
    "relative insensitivity to gap length is an advantage of this model "
    "over alternatives on numerous applications. a bidirectional network "
    "connects two hidden layers of opposite directions to the same "
    "output. with this form of generative deep learning the output layer "
    "can get information from past and future states simultaneously. "
    "the principle is to split the neurons of a regular network into two "
    "directions one for positive time direction and another for negative "
    "time direction. the output of those two states are not connected to "
    "inputs of the opposite direction states. by using two time "
    "directions input information from the past and future of the "
    "current time frame can be used unlike standard networks which "
    "require delays for including future information. bidirectional "
    "networks are especially useful when the context of the input is "
    "needed. for example in handwriting recognition the performance can "
    "be enhanced by knowledge of the letters located before and after "
    "the current letter. speech recognition systems convert spoken "
    "language into text using models trained on large corpora of "
    "recorded utterances. the texas instruments digits corpus contains "
    "speech which was originally designed and collected to evaluate "
    "algorithms for speaker independent recognition of connected digit "
    "sequences. there are speakers from twenty two dialectical regions "
    "each pronouncing digit sequences of varying length. automatic "
    "parallelization of computation graphs assigns units of work to "
    "processor cores as soon as their data dependencies are satisfied "
    "avoiding global synchronization barriers that leave cores idle. a "
    "run time system maintains a queue of ready tasks and schedules them "
    "dynamically which improves cache locality when consumer tasks "
    "execute on the core that produced their input data. ";

// Reads a plain-text corpus file; raises util::DataError naming the path
// and the requirement when it is unreadable or too small to seed the
// Markov sampler.
std::string read_corpus_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    BPAR_RAISE(bpar::util::DataError, "cannot open corpus file '", path,
               "'; expected a plain-text file of at least 16 characters");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = std::move(buffer).str();
  if (text.size() < 16) {
    BPAR_RAISE(bpar::util::DataError, "corpus file '", path, "' holds only ",
               text.size(),
               " characters; need at least 16 to seed the sampler");
  }
  return text;
}

}  // namespace

WikipediaCorpus::WikipediaCorpus(WikipediaConfig config) : config_(config) {
  BPAR_CHECK(config_.input_size > 0 && config_.seq_length > 0 &&
                 config_.corpus_chars > 4,
             "bad Wikipedia config");
  std::string seed_text = kSeedText;
  bool from_file = false;
  if (!config_.corpus_path.empty()) {
    try {
      seed_text = read_corpus_file(config_.corpus_path);
      from_file = true;
    } catch (const util::DataError& e) {
      if (!config_.fallback_to_synthetic) throw;
      BPAR_LOG_WARN << e.what() << "; falling back to the built-in seed text";
    }
  }

  util::Rng rng(config_.seed);
  if (from_file && seed_text.size() >= config_.corpus_chars) {
    // A real corpus large enough to use verbatim.
    text_ = seed_text.substr(0, config_.corpus_chars);
  } else {
    // Extend with an order-2 Markov chain fit on the seed text.
    std::map<std::pair<char, char>, std::string> followers;
    for (std::size_t i = 0; i + 2 < seed_text.size(); ++i) {
      followers[{seed_text[i], seed_text[i + 1]}].push_back(seed_text[i + 2]);
    }
    text_.reserve(config_.corpus_chars);
    char a = seed_text[0];
    char b = seed_text[1];
    text_.push_back(a);
    text_.push_back(b);
    while (text_.size() < config_.corpus_chars) {
      const auto it = followers.find({a, b});
      char next;
      if (it == followers.end() || it->second.empty()) {
        next = ' ';
      } else {
        next = it->second[rng.uniform_index(it->second.size())];
      }
      text_.push_back(next);
      a = b;
      b = next;
    }
  }

  // Vocabulary and embeddings.
  char_to_id_.fill(-1);
  for (const char c : text_) {
    auto& slot = char_to_id_[static_cast<unsigned char>(c)];
    if (slot < 0) {
      slot = static_cast<int>(vocab_.size());
      vocab_.push_back(c);
    }
  }
  embeddings_.resize(vocab_size(), config_.input_size);
  tensor::fill_normal(embeddings_.view(), rng, 0.0F, 0.5F);
}

int WikipediaCorpus::char_id(char c) const {
  const int id = char_to_id_[static_cast<unsigned char>(c)];
  BPAR_CHECK(id >= 0, "character not in vocabulary");
  return id;
}

char WikipediaCorpus::id_char(int id) const {
  BPAR_CHECK(id >= 0 && id < vocab_size(), "bad char id");
  return vocab_[static_cast<std::size_t>(id)];
}

std::span<const float> WikipediaCorpus::embedding(int id) const {
  BPAR_CHECK(id >= 0 && id < vocab_size(), "bad char id");
  return embeddings_.cview().row(id);
}

std::vector<rnn::BatchData> WikipediaCorpus::make_batches(
    int batch_size, int max_batches) const {
  BPAR_CHECK(batch_size > 0 && max_batches > 0, "bad batch shape");
  const int steps = config_.seq_length;
  const std::size_t window = static_cast<std::size_t>(steps) + 1;
  const std::size_t available = (text_.size() - 1) / window;
  const int total_sequences = static_cast<int>(available);
  const int batches_possible = total_sequences / batch_size;
  const int count = std::min(max_batches, batches_possible);
  BPAR_CHECK(count > 0, "corpus too small for requested batches");

  std::vector<rnn::BatchData> batches;
  std::size_t cursor = 0;
  for (int bi = 0; bi < count; ++bi) {
    rnn::BatchData batch;
    batch.x.resize(static_cast<std::size_t>(steps));
    for (auto& m : batch.x) m.resize(batch_size, config_.input_size);
    batch.labels.resize(static_cast<std::size_t>(steps) * batch_size);
    for (int b = 0; b < batch_size; ++b) {
      for (int t = 0; t < steps; ++t) {
        const char cur = text_[cursor + static_cast<std::size_t>(t)];
        const char nxt = text_[cursor + static_cast<std::size_t>(t) + 1];
        const auto emb = embedding(char_id(cur));
        auto dst = batch.x[static_cast<std::size_t>(t)].view().row(b);
        std::copy(emb.begin(), emb.end(), dst.begin());
        batch.labels[static_cast<std::size_t>(t) * batch_size + b] =
            char_id(nxt);
      }
      cursor += window;
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

}  // namespace bpar::data
