// Synthetic Wikipedia-like character corpus for next-character prediction.
//
// The paper uses a 1.4-billion-character Wikipedia dump; as a license- and
// size-friendly substitute (DESIGN.md §4) we fit an order-2 character
// Markov chain on an embedded encyclopedic seed text and sample an
// arbitrarily long corpus from it. The generated text has realistic
// character n-gram statistics — exactly what a character-level
// many-to-many BRNN consumes.
#pragma once

#include <cstdint>
#include <array>
#include <string>
#include <vector>

#include "rnn/batch.hpp"

namespace bpar::data {

struct WikipediaConfig {
  int input_size = 64;     // model input width (char embedding dimension)
  int seq_length = 50;     // characters per training sequence
  std::size_t corpus_chars = 100000;
  std::uint64_t seed = 1414;
  /// When non-empty, read the corpus from this plain-text file: used
  /// verbatim when it holds >= corpus_chars characters, otherwise as the
  /// Markov seed text (needs >= 16 characters). Unreadable or too-small
  /// files raise util::DataError naming the path.
  std::string corpus_path;
  /// With corpus_path set: fall back to the built-in seed text (with a
  /// warning) when reading fails, instead of propagating util::DataError.
  bool fallback_to_synthetic = false;
};

class WikipediaCorpus {
 public:
  explicit WikipediaCorpus(WikipediaConfig config);

  [[nodiscard]] const WikipediaConfig& config() const { return config_; }
  [[nodiscard]] int vocab_size() const {
    return static_cast<int>(vocab_.size());
  }
  [[nodiscard]] const std::string& text() const { return text_; }

  [[nodiscard]] int char_id(char c) const;
  [[nodiscard]] char id_char(int id) const;

  /// Fixed random embedding of character `id` (length input_size).
  [[nodiscard]] std::span<const float> embedding(int id) const;

  /// Many-to-many batches: inputs are embedded characters, labels the next
  /// character id at every position. Sequences are consecutive,
  /// non-overlapping windows of the corpus.
  [[nodiscard]] std::vector<rnn::BatchData> make_batches(
      int batch_size, int max_batches) const;

 private:
  WikipediaConfig config_;
  std::string text_;
  std::vector<char> vocab_;
  std::array<int, 256> char_to_id_{};
  tensor::Matrix embeddings_;  // vocab x input_size
};

}  // namespace bpar::data
