// Console table rendering and CSV emission for the benchmark harnesses.
//
// Every bench binary prints the paper's rows with aligned columns and also
// writes a machine-readable CSV next to it (bench_results/<name>.csv).
#pragma once

#include <string>
#include <vector>

namespace bpar::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with aligned columns to stdout.
  void print(const std::string& title = "") const;

  /// Writes header+rows as CSV. Creates parent directories as needed.
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& data() const {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string fmt(double value, int digits = 2);
/// Formats milliseconds with adaptive precision (e.g. "1,770.76").
std::string fmt_ms(double ms);
/// Formats a ratio as e.g. "2.34x".
std::string fmt_speedup(double ratio);
/// Formats a parameter count as e.g. "6.3M".
std::string fmt_params(double count);

}  // namespace bpar::util
