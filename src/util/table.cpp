#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/check.hpp"

namespace bpar::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  BPAR_CHECK(row.size() == header_.size(), "row width ", row.size(),
             " != header width ", header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  if (!title.empty()) std::printf("\n== %s ==\n", title.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%s%-*s", c == 0 ? "" : "  ", static_cast<int>(widths[c]),
                  row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header_);
  std::size_t total = header_.size() - 1;
  for (const auto w : widths) total += w + 1;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);
}

void Table::write_csv(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path);
  BPAR_CHECK(out.good(), "cannot open ", path);
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      const bool quote = row[c].find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        out << '"';
        for (const char ch : row[c]) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << row[c];
      }
    }
    out << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string fmt_ms(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", ms);
  // Insert thousands separators for readability, matching the paper's style.
  std::string s(buf);
  const auto dot = s.find('.');
  std::string head = s.substr(0, dot);
  const std::string tail = s.substr(dot);
  std::string out;
  const bool neg = !head.empty() && head[0] == '-';
  if (neg) head.erase(head.begin());
  int count = 0;
  for (auto it = head.rbegin(); it != head.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return (neg ? "-" : "") + out + tail;
}

std::string fmt_speedup(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fx", ratio);
  return buf;
}

std::string fmt_params(double count) {
  char buf[32];
  if (count >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fM", count / 1e6);
  } else if (count >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fK", count / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", count);
  }
  return buf;
}

}  // namespace bpar::util
