// Deterministic random number generation.
//
// All stochastic components of the library (weight init, synthetic datasets,
// noise injection in tests) draw from Xoshiro256** seeded via SplitMix64, so
// every run is reproducible from a single integer seed and independent of
// the standard library's distribution implementations.
#pragma once

#include <cstdint>

namespace bpar::util {

/// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL);

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);
  /// Standard normal via Box-Muller (cached second value).
  double normal();
  double normal(double mean, double stddev);
  /// Uniform float in [-scale, scale] — the classic RNN weight init.
  float weight(float scale);

  /// Deterministically derives an independent stream, e.g. per worker.
  Rng split(std::uint64_t stream) const;

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace bpar::util
