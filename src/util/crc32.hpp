// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
// guarding checkpoint sections against torn writes and bit rot.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bpar::util {

/// Incremental CRC-32: pass the previous return value as `seed` to extend a
/// running checksum over multiple buffers. Seed 0 starts a fresh checksum.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0);

}  // namespace bpar::util
