#include "util/percentiles.hpp"

#include <algorithm>

namespace bpar::util {

Percentiles percentiles(std::vector<double> samples) {
  Percentiles p;
  if (samples.empty()) return p;
  std::sort(samples.begin(), samples.end());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1));
    return samples[idx];
  };
  double sum = 0.0;
  for (const double s : samples) sum += s;
  p.p50 = at(0.50);
  p.p95 = at(0.95);
  p.p99 = at(0.99);
  p.mean = sum / static_cast<double>(samples.size());
  p.min = samples.front();
  p.max = samples.back();
  p.count = samples.size();
  return p;
}

}  // namespace bpar::util
