// Lightweight runtime invariant checks, active in all build types.
//
// BPAR_CHECK(cond, msg...)  — aborts with a diagnostic when `cond` is false.
// BPAR_DCHECK(cond, msg...) — same, but compiled out in NDEBUG builds; use
//                             on hot paths where the check itself costs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace bpar::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::fprintf(stderr, "FATAL %s:%d: check `%s` failed%s%s\n", file, line,
               expr, msg.empty() ? "" : ": ", msg.c_str());
  std::abort();
}

namespace detail {
inline std::string stringize() { return {}; }
template <typename... Ts>
std::string stringize(const Ts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}
}  // namespace detail

}  // namespace bpar::util

#define BPAR_CHECK(cond, ...)                                       \
  do {                                                              \
    if (!(cond)) [[unlikely]] {                                     \
      ::bpar::util::check_failed(                                   \
          #cond, __FILE__, __LINE__,                                \
          ::bpar::util::detail::stringize(__VA_ARGS__));            \
    }                                                               \
  } while (0)

#ifdef NDEBUG
#define BPAR_DCHECK(cond, ...) \
  do {                         \
  } while (0)
#else
#define BPAR_DCHECK(cond, ...) BPAR_CHECK(cond, __VA_ARGS__)
#endif
