#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace bpar::util {
namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

LogLevel initial_threshold() {
  const char* env = std::getenv("BPAR_LOG");
  if (env == nullptr) return LogLevel::kInfo;
  if (const auto level = parse_log_level(env)) return *level;
  std::fprintf(stderr, "[logging] ignoring unrecognized BPAR_LOG=%s\n", env);
  return LogLevel::kInfo;
}

std::atomic<int>& threshold_storage() {
  static std::atomic<int> threshold{static_cast<int>(initial_threshold())};
  return threshold;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DBG";
    case LogLevel::kInfo:
      return "INF";
    case LogLevel::kWarn:
      return "WRN";
    case LogLevel::kError:
      return "ERR";
  }
  return "???";
}

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front())) != 0) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back())) != 0) {
    text.remove_suffix(1);
  }
  if (iequals(text, "debug") || text == "0") return LogLevel::kDebug;
  if (iequals(text, "info") || text == "1") return LogLevel::kInfo;
  if (iequals(text, "warn") || iequals(text, "warning") || text == "2") {
    return LogLevel::kWarn;
  }
  if (iequals(text, "error") || iequals(text, "err") || text == "3") {
    return LogLevel::kError;
  }
  return std::nullopt;
}

LogLevel log_threshold() {
  return static_cast<LogLevel>(threshold_storage().load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) {
  threshold_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_line(LogLevel level, std::string_view msg) {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%9.3f %s] %.*s\n", elapsed_s, level_tag(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace bpar::util
