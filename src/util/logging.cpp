#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

namespace bpar::util {
namespace {

LogLevel initial_threshold() {
  const char* env = std::getenv("BPAR_LOG");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

std::atomic<int>& threshold_storage() {
  static std::atomic<int> threshold{static_cast<int>(initial_threshold())};
  return threshold;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DBG";
    case LogLevel::kInfo:
      return "INF";
    case LogLevel::kWarn:
      return "WRN";
    case LogLevel::kError:
      return "ERR";
  }
  return "???";
}

}  // namespace

LogLevel log_threshold() {
  return static_cast<LogLevel>(threshold_storage().load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) {
  threshold_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_line(LogLevel level, std::string_view msg) {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%9.3f %s] %.*s\n", elapsed_s, level_tag(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace bpar::util
