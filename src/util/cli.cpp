#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/check.hpp"

namespace bpar::util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  BPAR_CHECK(options_.find(name) == options_.end(), "duplicate option ", name);
  Option opt;
  opt.kind = Kind::kFlag;
  opt.help = help;
  opt.default_text = "false";
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
}

void ArgParser::add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help) {
  BPAR_CHECK(options_.find(name) == options_.end(), "duplicate option ", name);
  Option opt;
  opt.kind = Kind::kInt;
  opt.help = help;
  opt.int_value = default_value;
  opt.default_text = std::to_string(default_value);
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
}

void ArgParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  BPAR_CHECK(options_.find(name) == options_.end(), "duplicate option ", name);
  Option opt;
  opt.kind = Kind::kDouble;
  opt.help = help;
  opt.double_value = default_value;
  opt.default_text = std::to_string(default_value);
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
}

void ArgParser::add_string(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  BPAR_CHECK(options_.find(name) == options_.end(), "duplicate option ", name);
  Option opt;
  opt.kind = Kind::kString;
  opt.help = help;
  opt.string_value = default_value;
  opt.default_text = default_value.empty() ? "\"\"" : default_value;
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
}

ArgParser::Option* ArgParser::find(const std::string& name) {
  auto it = options_.find(name);
  return it == options_.end() ? nullptr : &it->second;
}

const ArgParser::Option& ArgParser::require(const std::string& name,
                                            Kind kind) const {
  auto it = options_.find(name);
  BPAR_CHECK(it != options_.end(), "unknown option ", name);
  BPAR_CHECK(it->second.kind == kind, "option ", name,
             " accessed with wrong type");
  return it->second;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name.resize(eq);
    }
    Option* opt = find(name);
    if (opt == nullptr) {
      std::fprintf(stderr, "%s: unknown option --%s\n", program_.c_str(),
                   name.c_str());
      print_help();
      return false;
    }
    opt->provided = true;
    if (opt->kind == Kind::kFlag) {
      opt->flag_value =
          !inline_value.has_value() || *inline_value == "true" || *inline_value == "1";
      continue;
    }
    std::string value;
    if (inline_value.has_value()) {
      value = *inline_value;
    } else if (i + 1 < argc) {
      value = argv[++i];
    } else {
      std::fprintf(stderr, "%s: option --%s requires a value\n",
                   program_.c_str(), name.c_str());
      return false;
    }
    try {
      switch (opt->kind) {
        case Kind::kInt:
          opt->int_value = std::stoll(value);
          break;
        case Kind::kDouble:
          opt->double_value = std::stod(value);
          break;
        case Kind::kString:
          opt->string_value = value;
          break;
        case Kind::kFlag:
          break;
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "%s: bad value '%s' for option --%s\n",
                   program_.c_str(), value.c_str(), name.c_str());
      return false;
    }
  }
  return true;
}

bool ArgParser::flag(const std::string& name) const {
  return require(name, Kind::kFlag).flag_value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return require(name, Kind::kInt).int_value;
}

double ArgParser::get_double(const std::string& name) const {
  return require(name, Kind::kDouble).double_value;
}

const std::string& ArgParser::get_string(const std::string& name) const {
  return require(name, Kind::kString).string_value;
}

bool ArgParser::provided(const std::string& name) const {
  auto it = options_.find(name);
  BPAR_CHECK(it != options_.end(), "unknown option ", name);
  return it->second.provided;
}

std::map<std::string, std::string> ArgParser::values() const {
  std::map<std::string, std::string> out;
  for (const auto& [name, opt] : options_) {
    switch (opt.kind) {
      case Kind::kFlag:
        out[name] = opt.flag_value ? "true" : "false";
        break;
      case Kind::kInt:
        out[name] = std::to_string(opt.int_value);
        break;
      case Kind::kDouble:
        out[name] = std::to_string(opt.double_value);
        break;
      case Kind::kString:
        out[name] = opt.string_value;
        break;
    }
  }
  return out;
}

void ArgParser::print_help() const {
  std::fprintf(stderr, "%s — %s\n\nOptions:\n", program_.c_str(),
               description_.c_str());
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    std::fprintf(stderr, "  --%-22s %s (default: %s)\n", name.c_str(),
                 opt.help.c_str(), opt.default_text.c_str());
  }
}

}  // namespace bpar::util
