#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace bpar::util {
namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits → uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

float Rng::weight(float scale) {
  return static_cast<float>(uniform(-static_cast<double>(scale),
                                    static_cast<double>(scale)));
}

Rng Rng::split(std::uint64_t stream) const {
  // Mix the current state with the stream id; the copy advances nothing in
  // the parent generator, so splits are order-independent.
  SplitMix64 sm(s_[0] ^ rotl(stream + 0x9e3779b97f4a7c15ULL, 23));
  return Rng(sm.next());
}

}  // namespace bpar::util
