// Recoverable-error hierarchy.
//
// BPAR_CHECK (util/check.hpp) aborts: it guards programming errors that no
// caller can meaningfully handle. The exceptions here are the opposite —
// *environmental* failures (a torn checkpoint, a missing corpus file, a
// stalled task graph) that a resilient caller is expected to catch and
// recover from: fall back to an older checkpoint, synthesize a corpus, roll
// back and retry a batch. Throw these, never BPAR_CHECK, when the condition
// can be caused by the outside world rather than by a bug.
//
// BPAR_RAISE(ErrorType, parts...) builds the message with the same
// stream-style stringization BPAR_CHECK uses.
#pragma once

#include <stdexcept>
#include <string>

#include "util/check.hpp"

namespace bpar::util {

/// Root of all recoverable B-Par errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Checkpoint file invalid: truncated, checksum mismatch, wrong version,
/// or incompatible with the model it is being loaded into.
class CheckpointError : public Error {
 public:
  using Error::Error;
};

/// Dataset unavailable or malformed (missing file, bad layout).
class DataError : public Error {
 public:
  using Error::Error;
};

}  // namespace bpar::util

#define BPAR_RAISE(ErrorType, ...) \
  throw ErrorType(::bpar::util::detail::stringize(__VA_ARGS__))
