// Exact sample percentiles — hoisted out of examples/latency_inference.cpp
// so the latency example, the serving load generator (tools/bpar_serve), and
// bench/fig_serving report tail latency the same way. For streaming /
// pre-binned data use obs::Histogram::quantile instead; this helper sorts
// the raw samples and is exact.
#pragma once

#include <vector>

namespace bpar::util {

struct Percentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Sorts `samples` (by value — callers keep their copy) and returns exact
/// nearest-rank percentiles. An empty input returns all zeros.
[[nodiscard]] Percentiles percentiles(std::vector<double> samples);

}  // namespace bpar::util
