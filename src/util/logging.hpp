// Minimal leveled logger. Thread-safe line emission; no allocation on the
// disabled-level fast path.
#pragma once

#include <optional>
#include <sstream>
#include <string_view>

namespace bpar::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Parses a log-level spelling: the level names (debug|info|warn|error,
/// case-insensitive, "warning"/"err" accepted), or the numeric values 0-3.
/// Surrounding whitespace is ignored. Returns nullopt for anything else.
std::optional<LogLevel> parse_log_level(std::string_view text);

/// Global threshold; messages below it are dropped. Defaults to kInfo,
/// overridable with the BPAR_LOG environment variable (any spelling
/// parse_log_level accepts; unrecognized values keep the default and
/// emit one warning).
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

/// Emits one formatted line (timestamped, level-tagged) to stderr.
void log_line(LogLevel level, std::string_view msg);

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace bpar::util

#define BPAR_LOG(level)                                              \
  if (::bpar::util::LogLevel::level < ::bpar::util::log_threshold()) \
    ;                                                                \
  else                                                               \
    ::bpar::util::detail::LogMessage(::bpar::util::LogLevel::level)

#define BPAR_LOG_DEBUG BPAR_LOG(kDebug)
#define BPAR_LOG_INFO BPAR_LOG(kInfo)
#define BPAR_LOG_WARN BPAR_LOG(kWarn)
#define BPAR_LOG_ERROR BPAR_LOG(kError)
