// Tiny command-line parser used by the examples and benchmark harnesses.
//
// Supports `--name value`, `--name=value`, and boolean `--flag` options with
// typed accessors, default values, and an auto-generated --help text.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bpar::util {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Registers an option before parse(). `help` appears in --help output.
  void add_flag(const std::string& name, const std::string& help);
  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Parses argv. Returns false (after printing usage) on error or --help.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool flag(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;

  /// True when the user passed `--name` explicitly (vs. the default).
  [[nodiscard]] bool provided(const std::string& name) const;

  [[nodiscard]] const std::string& program() const { return program_; }

  /// Every registered option's current value rendered as a string, in
  /// registration order — the run-report "params" map.
  [[nodiscard]] std::map<std::string, std::string> values() const;

  /// Positional arguments left over after option parsing.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  void print_help() const;

 private:
  enum class Kind { kFlag, kInt, kDouble, kString };
  struct Option {
    Kind kind;
    std::string help;
    std::string default_text;
    bool flag_value = false;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool provided = false;
  };

  Option* find(const std::string& name);
  const Option& require(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace bpar::util
