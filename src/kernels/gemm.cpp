#include "kernels/gemm.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace bpar::kernels {
namespace {

// Block sizes sized for a 32K L1 / 1M L2: a kc x nc panel of B plus an
// mc x kc panel of A stay resident while the micro-loops stream C.
constexpr int kBlockM = 64;
constexpr int kBlockN = 256;
constexpr int kBlockK = 256;

inline void scale_c(MatrixView c, float beta) {
  if (beta == 1.0F) return;
  for (int i = 0; i < c.rows; ++i) {
    float* crow = c.row(i).data();
    if (beta == 0.0F) {
      std::fill_n(crow, c.cols, 0.0F);
    } else {
      for (int j = 0; j < c.cols; ++j) crow[j] *= beta;
    }
  }
}

}  // namespace

void gemm_nn(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
             float beta) {
  BPAR_SPAN("kernels.gemm_nn");
  BPAR_CHECK(a.rows == c.rows && b.cols == c.cols && a.cols == b.rows,
             "gemm_nn shape mismatch: A ", a.rows, "x", a.cols, " B ", b.rows,
             "x", b.cols, " C ", c.rows, "x", c.cols);
  scale_c(c, beta);
  const int m = c.rows;
  const int n = c.cols;
  const int k = a.cols;
  for (int k0 = 0; k0 < k; k0 += kBlockK) {
    const int k1 = std::min(k, k0 + kBlockK);
    for (int i0 = 0; i0 < m; i0 += kBlockM) {
      const int i1 = std::min(m, i0 + kBlockM);
      for (int j0 = 0; j0 < n; j0 += kBlockN) {
        const int j1 = std::min(n, j0 + kBlockN);
        for (int i = i0; i < i1; ++i) {
          const float* arow = a.row(i).data();
          float* crow = c.row(i).data();
          for (int p = k0; p < k1; ++p) {
            const float av = alpha * arow[p];
            const float* brow = b.row(p).data();
            for (int j = j0; j < j1; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

void gemm_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
             float beta) {
  BPAR_SPAN("kernels.gemm_nt");
  BPAR_CHECK(a.rows == c.rows && b.rows == c.cols && a.cols == b.cols,
             "gemm_nt shape mismatch: A ", a.rows, "x", a.cols, " B ", b.rows,
             "x", b.cols, " C ", c.rows, "x", c.cols);
  const int m = c.rows;
  const int n = c.cols;
  const int k = a.cols;
  for (int i0 = 0; i0 < m; i0 += kBlockM) {
    const int i1 = std::min(m, i0 + kBlockM);
    for (int j0 = 0; j0 < n; j0 += kBlockN) {
      const int j1 = std::min(n, j0 + kBlockN);
      for (int i = i0; i < i1; ++i) {
        const float* arow = a.row(i).data();
        float* crow = c.row(i).data();
        for (int j = j0; j < j1; ++j) {
          // Dot product of two contiguous rows — vectorizes cleanly.
          const float* brow = b.row(j).data();
          float acc = 0.0F;
          for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
          crow[j] = alpha * acc + (beta == 0.0F ? 0.0F : beta * crow[j]);
        }
      }
    }
  }
}

void gemm_tn(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
             float beta) {
  BPAR_SPAN("kernels.gemm_tn");
  BPAR_CHECK(a.cols == c.rows && b.cols == c.cols && a.rows == b.rows,
             "gemm_tn shape mismatch: A ", a.rows, "x", a.cols, " B ", b.rows,
             "x", b.cols, " C ", c.rows, "x", c.cols);
  scale_c(c, beta);
  const int m = c.rows;  // = a.cols
  const int n = c.cols;  // = b.cols
  const int k = a.rows;  // = b.rows
  for (int p = 0; p < k; ++p) {
    const float* arow = a.row(p).data();
    const float* brow = b.row(p).data();
    for (int i = 0; i < m; ++i) {
      const float av = alpha * arow[i];
      if (av == 0.0F) continue;
      float* crow = c.row(i).data();
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemv_t(ConstMatrixView a, std::span<const float> x, std::span<float> y,
            float alpha, float beta) {
  BPAR_SPAN("kernels.gemv_t");
  BPAR_CHECK(static_cast<int>(x.size()) == a.rows &&
                 static_cast<int>(y.size()) == a.cols,
             "gemv_t shape mismatch");
  for (auto& v : y) v *= beta;
  for (int i = 0; i < a.rows; ++i) {
    const float av = alpha * x[static_cast<std::size_t>(i)];
    const float* arow = a.row(i).data();
    for (int j = 0; j < a.cols; ++j) y[static_cast<std::size_t>(j)] += av * arow[j];
  }
}

}  // namespace bpar::kernels
