// Public GEMM entry points: shape checks + tracing here, the numeric body
// in the runtime-selected kernel backend (backend.hpp). The scalar
// implementations these dispatch to by default live in backend_scalar.cpp.
#include "kernels/gemm.hpp"

#include "kernels/backend.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace bpar::kernels {

void gemm_nn(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
             float beta) {
  BPAR_SPAN("kernels.gemm_nn");
  BPAR_CHECK(a.rows == c.rows && b.cols == c.cols && a.cols == b.rows,
             "gemm_nn shape mismatch: A ", a.rows, "x", a.cols, " B ", b.rows,
             "x", b.cols, " C ", c.rows, "x", c.cols);
  active_backend().gemm_nn(a, b, c, alpha, beta);
}

void gemm_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
             float beta) {
  BPAR_SPAN("kernels.gemm_nt");
  BPAR_CHECK(a.rows == c.rows && b.rows == c.cols && a.cols == b.cols,
             "gemm_nt shape mismatch: A ", a.rows, "x", a.cols, " B ", b.rows,
             "x", b.cols, " C ", c.rows, "x", c.cols);
  active_backend().gemm_nt(a, b, c, alpha, beta);
}

void gemm_tn(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
             float beta) {
  BPAR_SPAN("kernels.gemm_tn");
  BPAR_CHECK(a.cols == c.rows && b.cols == c.cols && a.rows == b.rows,
             "gemm_tn shape mismatch: A ", a.rows, "x", a.cols, " B ", b.rows,
             "x", b.cols, " C ", c.rows, "x", c.cols);
  active_backend().gemm_tn(a, b, c, alpha, beta);
}

void gemv_t(ConstMatrixView a, std::span<const float> x, std::span<float> y,
            float alpha, float beta) {
  BPAR_SPAN("kernels.gemv_t");
  BPAR_CHECK(static_cast<int>(x.size()) == a.rows &&
                 static_cast<int>(y.size()) == a.cols,
             "gemv_t shape mismatch");
  active_backend().gemv_t(a, x, y, alpha, beta);
}

}  // namespace bpar::kernels
