#include "kernels/elementwise.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "kernels/backend.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace bpar::kernels {

float sigmoid(float x) { return 1.0F / (1.0F + std::exp(-x)); }

// The four fused pointwise kernels on the LSTM/GRU cell hot path dispatch
// through the runtime-selected backend; everything else below is cheap or
// already memory-bound and stays scalar.

void sigmoid_inplace(std::span<float> v) {
  active_backend().sigmoid_inplace(v);
}

void tanh_inplace(std::span<float> v) { active_backend().tanh_inplace(v); }

void add_inplace(std::span<float> dst, std::span<const float> src) {
  BPAR_DCHECK(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
}

void add(std::span<const float> a, std::span<const float> b,
         std::span<float> dst) {
  BPAR_DCHECK(a.size() == b.size() && a.size() == dst.size());
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = a[i] + b[i];
}

void hadamard(std::span<const float> a, std::span<const float> b,
              std::span<float> dst) {
  BPAR_DCHECK(a.size() == b.size() && a.size() == dst.size());
  active_backend().hadamard(a, b, dst);
}

void hadamard_acc(std::span<const float> a, std::span<const float> b,
                  std::span<float> dst) {
  BPAR_DCHECK(a.size() == b.size() && a.size() == dst.size());
  active_backend().hadamard_acc(a, b, dst);
}

void scale_inplace(std::span<float> dst, float s) {
  for (float& x : dst) x *= s;
}

void axpy(float s, std::span<const float> src, std::span<float> dst) {
  BPAR_DCHECK(src.size() == dst.size());
  active_backend().axpy(s, src, dst);
}

void add_bias_rows(MatrixView m, std::span<const float> bias) {
  BPAR_CHECK(static_cast<int>(bias.size()) == m.cols, "bias length mismatch");
  for (int r = 0; r < m.rows; ++r) add_inplace(m.row(r), bias);
}

void sum_rows_acc(ConstMatrixView m, std::span<float> bias) {
  BPAR_CHECK(static_cast<int>(bias.size()) == m.cols, "bias length mismatch");
  for (int r = 0; r < m.rows; ++r) add_inplace(bias, m.row(r));
}

void add(ConstMatrixView a, ConstMatrixView b, MatrixView dst) {
  BPAR_CHECK(a.rows == b.rows && a.cols == b.cols && a.rows == dst.rows &&
                 a.cols == dst.cols,
             "add shape mismatch");
  for (int r = 0; r < a.rows; ++r) add(a.row(r), b.row(r), dst.row(r));
}

void average(ConstMatrixView a, ConstMatrixView b, MatrixView dst) {
  add(a, b, dst);
  for (int r = 0; r < dst.rows; ++r) scale_inplace(dst.row(r), 0.5F);
}

void multiply(ConstMatrixView a, ConstMatrixView b, MatrixView dst) {
  BPAR_CHECK(a.rows == b.rows && a.cols == b.cols && a.rows == dst.rows &&
                 a.cols == dst.cols,
             "multiply shape mismatch");
  for (int r = 0; r < a.rows; ++r) hadamard(a.row(r), b.row(r), dst.row(r));
}

void accumulate(MatrixView dst, ConstMatrixView src) {
  BPAR_CHECK(src.rows == dst.rows && src.cols == dst.cols,
             "accumulate shape mismatch");
  for (int r = 0; r < src.rows; ++r) add_inplace(dst.row(r), src.row(r));
}

void softmax_rows(ConstMatrixView src, MatrixView dst) {
  BPAR_SPAN("kernels.softmax_rows");
  BPAR_CHECK(src.rows == dst.rows && src.cols == dst.cols,
             "softmax shape mismatch");
  for (int r = 0; r < src.rows; ++r) {
    const auto in = src.row(r);
    const auto out = dst.row(r);
    const float mx = *std::ranges::max_element(in);
    float denom = 0.0F;
    for (std::size_t j = 0; j < in.size(); ++j) {
      out[j] = std::exp(in[j] - mx);
      denom += out[j];
    }
    const float inv = 1.0F / denom;
    for (float& v : out) v *= inv;
  }
}

double cross_entropy(ConstMatrixView probs, std::span<const int> labels) {
  BPAR_CHECK(static_cast<int>(labels.size()) == probs.rows,
             "labels/rows mismatch");
  double loss = 0.0;
  constexpr float kEps = 1e-12F;
  for (int r = 0; r < probs.rows; ++r) {
    const int label = labels[static_cast<std::size_t>(r)];
    BPAR_DCHECK(label >= 0 && label < probs.cols);
    loss -= std::log(static_cast<double>(probs.at(r, label) + kEps));
  }
  return loss / probs.rows;
}

void softmax_ce_grad(ConstMatrixView probs, std::span<const int> labels,
                     MatrixView dlogits) {
  BPAR_SPAN("kernels.softmax_ce_grad");
  BPAR_CHECK(probs.rows == dlogits.rows && probs.cols == dlogits.cols,
             "grad shape mismatch");
  BPAR_CHECK(static_cast<int>(labels.size()) == probs.rows,
             "labels/rows mismatch");
  const float inv_rows = 1.0F / static_cast<float>(probs.rows);
  for (int r = 0; r < probs.rows; ++r) {
    const auto p = probs.row(r);
    const auto g = dlogits.row(r);
    for (std::size_t j = 0; j < p.size(); ++j) g[j] = p[j] * inv_rows;
    g[static_cast<std::size_t>(labels[static_cast<std::size_t>(r)])] -=
        inv_rows;
  }
}

bool all_finite(std::span<const float> v) {
  // A float is non-finite iff its exponent field is all ones. OR the
  // exponent bits of the whole span together and test once at the end —
  // no per-element branch, so the loop auto-vectorizes.
  constexpr std::uint32_t kExpMask = 0x7F800000U;
  std::uint32_t seen = 0;
  for (const float x : v) {
    std::uint32_t bits;
    std::memcpy(&bits, &x, sizeof bits);
    seen |= static_cast<std::uint32_t>((bits & kExpMask) == kExpMask);
  }
  return seen == 0;
}

bool all_finite(ConstMatrixView m) {
  for (int r = 0; r < m.rows; ++r) {
    if (!all_finite(m.row(r))) return false;
  }
  return true;
}

void argmax_rows(ConstMatrixView m, std::span<int> out) {
  BPAR_CHECK(static_cast<int>(out.size()) == m.rows, "argmax size mismatch");
  for (int r = 0; r < m.rows; ++r) {
    const auto row = m.row(r);
    out[static_cast<std::size_t>(r)] = static_cast<int>(
        std::ranges::max_element(row) - row.begin());
  }
}

}  // namespace bpar::kernels
