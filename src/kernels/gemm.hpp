// Single-precision GEMM kernels (the library's MKL-Sequential substitute).
//
// Three transpose variants cover everything the RNN cells need:
//   gemm_nn:  C = alpha * A   * B   + beta * C      (dX = dG * W)
//   gemm_nt:  C = alpha * A   * B^T + beta * C      (G  = X * W^T)
//   gemm_tn:  C = alpha * A^T * B   + beta * C      (dW = dG^T * X)
//
// These entry points validate shapes and dispatch to the runtime-selected
// kernel backend (kernels/backend.hpp): cache-blocked scalar reference by
// default, register-tiled AVX2 / AVX-512 / NEON when the CPU supports
// them. All implementations are sequential by design: task-level
// parallelism comes from the runtime (B-Par) or from explicit
// row-splitting (the intra-op parallel baselines), matching the paper's
// "B-Par is mapped to MKL-Sequential" setup.
#pragma once

#include "tensor/tensor.hpp"

namespace bpar::kernels {

using tensor::ConstMatrixView;
using tensor::MatrixView;

/// C(m,n) = alpha * A(m,k) * B(k,n) + beta * C.
void gemm_nn(ConstMatrixView a, ConstMatrixView b, MatrixView c,
             float alpha = 1.0F, float beta = 0.0F);

/// C(m,n) = alpha * A(m,k) * B(n,k)^T + beta * C.
void gemm_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c,
             float alpha = 1.0F, float beta = 0.0F);

/// C(m,n) = alpha * A(k,m)^T * B(k,n) + beta * C.
void gemm_tn(ConstMatrixView a, ConstMatrixView b, MatrixView c,
             float alpha = 1.0F, float beta = 0.0F);

/// y(n) = alpha * A(m,n)^T x(m) + beta * y — convenience for vector paths.
void gemv_t(ConstMatrixView a, std::span<const float> x, std::span<float> y,
            float alpha = 1.0F, float beta = 0.0F);

/// Flop count of a GEMM with the given shape (2*m*n*k).
[[nodiscard]] constexpr double gemm_flops(int m, int n, int k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

}  // namespace bpar::kernels
