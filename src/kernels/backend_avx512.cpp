// AVX-512 kernel backend (F + BW + DQ + VL). Compiled with the matching
// -mavx512* flags; nothing here may run before the cpuid check in
// avx512_backend().
#include "kernels/backend.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define BPAR_HAVE_AVX512_BACKEND 1
#include <immintrin.h>

#include "kernels/simd_kernels.hpp"
#endif

namespace bpar::kernels {

#if BPAR_HAVE_AVX512_BACKEND
namespace {

struct Avx512Vec {
  using reg = __m512;
  static constexpr int kWidth = 16;

  static reg loadu(const float* p) { return _mm512_loadu_ps(p); }
  static void storeu(float* p, reg v) { _mm512_storeu_ps(p, v); }
  static reg set1(float v) { return _mm512_set1_ps(v); }
  static reg zero() { return _mm512_setzero_ps(); }
  static reg add(reg a, reg b) { return _mm512_add_ps(a, b); }
  static reg sub(reg a, reg b) { return _mm512_sub_ps(a, b); }
  static reg mul(reg a, reg b) { return _mm512_mul_ps(a, b); }
  static reg div(reg a, reg b) { return _mm512_div_ps(a, b); }
  static reg fma(reg a, reg b, reg c) { return _mm512_fmadd_ps(a, b, c); }
  static reg min(reg a, reg b) { return _mm512_min_ps(a, b); }
  static reg max(reg a, reg b) { return _mm512_max_ps(a, b); }
  static reg round_nearest(reg v) {
    return _mm512_roundscale_ps(v, _MM_FROUND_TO_NEAREST_INT |
                                       _MM_FROUND_NO_EXC);
  }
  static reg scale_by_pow2(reg x, reg n) {
    const __m512i ni = _mm512_cvtps_epi32(n);
    const __m512i pow2 =
        _mm512_slli_epi32(_mm512_add_epi32(ni, _mm512_set1_epi32(127)), 23);
    return _mm512_mul_ps(x, _mm512_castsi512_ps(pow2));
  }
  // Explicit extract/add chains instead of _mm512_reduce_add_*: GCC's
  // implementations go through _mm256_undefined_pd and trip
  // -Wmaybe-uninitialized.
  static float hsum(reg v) {
    const __m256 lo = _mm512_castps512_ps256(v);
    const __m256 hi = _mm512_extractf32x8_ps(v, 1);
    const __m256 s8 = _mm256_add_ps(lo, hi);
    __m128 s = _mm_add_ps(_mm256_castps256_ps128(s8),
                          _mm256_extractf128_ps(s8, 1));
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    return _mm_cvtss_f32(s);
  }

  /// 32 int8 lanes widened to int16, madd into 16 int32 partials.
  static std::int32_t dot_i8(const std::int8_t* a, const std::int8_t* b,
                             int k) {
    __m512i acc = _mm512_setzero_si512();
    int p = 0;
    for (; p + 32 <= k; p += 32) {
      const __m256i av =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + p));
      const __m256i bv =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + p));
      const __m512i a16 = _mm512_cvtepi8_epi16(av);
      const __m512i b16 = _mm512_cvtepi8_epi16(bv);
      acc = _mm512_add_epi32(acc, _mm512_madd_epi16(a16, b16));
    }
    const __m256i lo8 = _mm512_castsi512_si256(acc);
    const __m256i hi8 = _mm512_extracti64x4_epi64(acc, 1);
    const __m256i s8 = _mm256_add_epi32(lo8, hi8);
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(s8),
                              _mm256_extracti128_si256(s8, 1));
    s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 1));
    std::int32_t sum = _mm_cvtsi128_si32(s);
    for (; p < k; ++p) {
      sum += static_cast<std::int32_t>(a[p]) * static_cast<std::int32_t>(b[p]);
    }
    return sum;
  }
};

}  // namespace
#endif  // BPAR_HAVE_AVX512_BACKEND

const Backend* avx512_backend() {
#if BPAR_HAVE_AVX512_BACKEND
  static const Backend* backend = []() -> const Backend* {
    if (!__builtin_cpu_supports("avx512f") ||
        !__builtin_cpu_supports("avx512bw") ||
        !__builtin_cpu_supports("avx512dq") ||
        !__builtin_cpu_supports("avx512vl")) {
      return nullptr;
    }
    static const Backend table =
        simd::SimdKernels<Avx512Vec>::make_backend("avx512");
    return &table;
  }();
  return backend;
#else
  return nullptr;
#endif
}

}  // namespace bpar::kernels
