// Shared pieces of every GEMM backend: cache-block sizes and the single
// beta-handling implementation (internal header — backends only).
#pragma once

#include <algorithm>

#include "tensor/tensor.hpp"

namespace bpar::kernels::detail {

// Block sizes sized for a 32K L1 / 1M L2: a kc x nc panel of B plus an
// mc x kc panel of A stay resident while the micro-loops stream C.
inline constexpr int kBlockM = 64;
inline constexpr int kBlockN = 256;
inline constexpr int kBlockK = 256;

/// The one shared beta implementation with BLAS semantics: beta == 0
/// OVERWRITES C (any NaN/Inf already in C is discarded — std::fill, never
/// 0 * c), beta == 1 leaves C untouched, anything else scales in place.
/// Every backend's gemm_nn/nt/tn pre-scales C through this and then pure
/// accumulates, so the three variants can never diverge on beta again
/// (tests/test_kernels.cpp BetaSemantics pins this down).
inline void scale_c(tensor::MatrixView c, float beta) {
  if (beta == 1.0F) return;
  for (int i = 0; i < c.rows; ++i) {
    float* crow = c.row(i).data();
    if (beta == 0.0F) {
      std::fill_n(crow, c.cols, 0.0F);
    } else {
      for (int j = 0; j < c.cols; ++j) crow[j] *= beta;
    }
  }
}

}  // namespace bpar::kernels::detail
