// Scalar kernel backend — the library's bit-reference implementation.
//
// Cache-blocked, written so GCC auto-vectorizes the inner loops, and kept
// deliberately simple: every SIMD backend is validated against these
// functions by the parity suite, and CI runs the whole test battery with
// BPAR_KERNEL_BACKEND=scalar forced.
#include <cmath>

#include "kernels/backend.hpp"
#include "kernels/gemm_common.hpp"

namespace bpar::kernels {
namespace scalar {
namespace {

using detail::kBlockK;
using detail::kBlockM;
using detail::kBlockN;
using tensor::ConstMatrixView;
using tensor::MatrixView;

void gemm_nn(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
             float beta) {
  detail::scale_c(c, beta);
  const int m = c.rows;
  const int n = c.cols;
  const int k = a.cols;
  for (int k0 = 0; k0 < k; k0 += kBlockK) {
    const int k1 = std::min(k, k0 + kBlockK);
    for (int i0 = 0; i0 < m; i0 += kBlockM) {
      const int i1 = std::min(m, i0 + kBlockM);
      for (int j0 = 0; j0 < n; j0 += kBlockN) {
        const int j1 = std::min(n, j0 + kBlockN);
        for (int i = i0; i < i1; ++i) {
          const float* arow = a.row(i).data();
          float* crow = c.row(i).data();
          for (int p = k0; p < k1; ++p) {
            const float av = alpha * arow[p];
            const float* brow = b.row(p).data();
            for (int j = j0; j < j1; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

void gemm_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
             float beta) {
  detail::scale_c(c, beta);
  const int m = c.rows;
  const int n = c.cols;
  const int k = a.cols;
  // Blocked over k as well: for long-k shapes (wide hidden layers) a full-k
  // inner dot product streams both operand rows through L1 once per (i, j)
  // pair; with k-blocking the kc-slice of A's row and the kc x nc panel of
  // B stay resident across the j-loop (bench/micro_kernels BM_GemmNt shows
  // the win at k >= 512).
  for (int k0 = 0; k0 < k; k0 += kBlockK) {
    const int k1 = std::min(k, k0 + kBlockK);
    for (int i0 = 0; i0 < m; i0 += kBlockM) {
      const int i1 = std::min(m, i0 + kBlockM);
      for (int j0 = 0; j0 < n; j0 += kBlockN) {
        const int j1 = std::min(n, j0 + kBlockN);
        for (int i = i0; i < i1; ++i) {
          const float* arow = a.row(i).data();
          float* crow = c.row(i).data();
          for (int j = j0; j < j1; ++j) {
            // Dot product of two contiguous row slices — vectorizes cleanly.
            const float* brow = b.row(j).data();
            float acc = 0.0F;
            for (int p = k0; p < k1; ++p) acc += arow[p] * brow[p];
            crow[j] += alpha * acc;
          }
        }
      }
    }
  }
}

void gemm_tn(ConstMatrixView a, ConstMatrixView b, MatrixView c, float alpha,
             float beta) {
  detail::scale_c(c, beta);
  const int m = c.rows;  // = a.cols
  const int n = c.cols;  // = b.cols
  const int k = a.rows;  // = b.rows
  for (int p = 0; p < k; ++p) {
    const float* arow = a.row(p).data();
    const float* brow = b.row(p).data();
    for (int i = 0; i < m; ++i) {
      const float av = alpha * arow[i];
      // No `av == 0` fast-path here: skipping the row would also skip
      // 0 * NaN = NaN from B, letting non-finite values sneak past the
      // trainer's all_finite guards (NanPropagation regression test).
      float* crow = c.row(i).data();
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemv_t(ConstMatrixView a, std::span<const float> x, std::span<float> y,
            float alpha, float beta) {
  if (beta == 0.0F) {
    std::fill(y.begin(), y.end(), 0.0F);
  } else if (beta != 1.0F) {
    for (auto& v : y) v *= beta;
  }
  for (int i = 0; i < a.rows; ++i) {
    const float av = alpha * x[static_cast<std::size_t>(i)];
    const float* arow = a.row(i).data();
    for (int j = 0; j < a.cols; ++j) {
      y[static_cast<std::size_t>(j)] += av * arow[j];
    }
  }
}

void sigmoid_inplace(std::span<float> v) {
  for (float& x : v) x = 1.0F / (1.0F + std::exp(-x));
}

void tanh_inplace(std::span<float> v) {
  for (float& x : v) x = std::tanh(x);
}

void hadamard(std::span<const float> a, std::span<const float> b,
              std::span<float> dst) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = a[i] * b[i];
}

void hadamard_acc(std::span<const float> a, std::span<const float> b,
                  std::span<float> dst) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += a[i] * b[i];
}

void axpy(float s, std::span<const float> src, std::span<float> dst) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += s * src[i];
}

std::int32_t dot_i8(const std::int8_t* a, const std::int8_t* b, int k) {
  std::int32_t acc = 0;
  for (int p = 0; p < k; ++p) {
    acc += static_cast<std::int32_t>(a[p]) * static_cast<std::int32_t>(b[p]);
  }
  return acc;
}

}  // namespace
}  // namespace scalar

const Backend& scalar_backend() {
  static const Backend backend = {
      .name = "scalar",
      .simd_width = 1,
      .gemm_nn = scalar::gemm_nn,
      .gemm_nt = scalar::gemm_nt,
      .gemm_tn = scalar::gemm_tn,
      .gemv_t = scalar::gemv_t,
      .sigmoid_inplace = scalar::sigmoid_inplace,
      .tanh_inplace = scalar::tanh_inplace,
      .hadamard = scalar::hadamard,
      .hadamard_acc = scalar::hadamard_acc,
      .axpy = scalar::axpy,
      .dot_i8 = scalar::dot_i8,
  };
  return backend;
}

}  // namespace bpar::kernels
