// NEON (aarch64) kernel backend. NEON is architecturally guaranteed on
// AArch64, so no runtime feature check is needed — the whole TU is simply
// empty on other architectures.
#include "kernels/backend.hpp"

#if defined(__aarch64__)
#define BPAR_HAVE_NEON_BACKEND 1
#include <arm_neon.h>

#include "kernels/simd_kernels.hpp"
#endif

namespace bpar::kernels {

#if BPAR_HAVE_NEON_BACKEND
namespace {

struct NeonVec {
  using reg = float32x4_t;
  static constexpr int kWidth = 4;

  static reg loadu(const float* p) { return vld1q_f32(p); }
  static void storeu(float* p, reg v) { vst1q_f32(p, v); }
  static reg set1(float v) { return vdupq_n_f32(v); }
  static reg zero() { return vdupq_n_f32(0.0F); }
  static reg add(reg a, reg b) { return vaddq_f32(a, b); }
  static reg sub(reg a, reg b) { return vsubq_f32(a, b); }
  static reg mul(reg a, reg b) { return vmulq_f32(a, b); }
  static reg div(reg a, reg b) { return vdivq_f32(a, b); }
  static reg fma(reg a, reg b, reg c) { return vfmaq_f32(c, a, b); }
  static reg min(reg a, reg b) { return vminq_f32(a, b); }
  static reg max(reg a, reg b) { return vmaxq_f32(a, b); }
  static reg round_nearest(reg v) { return vrndnq_f32(v); }
  static reg scale_by_pow2(reg x, reg n) {
    const int32x4_t ni = vcvtq_s32_f32(n);
    const int32x4_t pow2 = vshlq_n_s32(vaddq_s32(ni, vdupq_n_s32(127)), 23);
    return vmulq_f32(x, vreinterpretq_f32_s32(pow2));
  }
  static float hsum(reg v) { return vaddvq_f32(v); }

  /// int8 dot: vmull_s8 widens to int16 products, vpadalq_s16 pair-adds
  /// into the int32 accumulator.
  static std::int32_t dot_i8(const std::int8_t* a, const std::int8_t* b,
                             int k) {
    int32x4_t acc = vdupq_n_s32(0);
    int p = 0;
    for (; p + 16 <= k; p += 16) {
      const int8x16_t av = vld1q_s8(a + p);
      const int8x16_t bv = vld1q_s8(b + p);
      const int16x8_t lo = vmull_s8(vget_low_s8(av), vget_low_s8(bv));
      const int16x8_t hi = vmull_s8(vget_high_s8(av), vget_high_s8(bv));
      acc = vpadalq_s16(acc, lo);
      acc = vpadalq_s16(acc, hi);
    }
    std::int32_t sum = vaddvq_s32(acc);
    for (; p < k; ++p) {
      sum += static_cast<std::int32_t>(a[p]) * static_cast<std::int32_t>(b[p]);
    }
    return sum;
  }
};

}  // namespace
#endif  // BPAR_HAVE_NEON_BACKEND

const Backend* neon_backend() {
#if BPAR_HAVE_NEON_BACKEND
  static const Backend table = simd::SimdKernels<NeonVec>::make_backend("neon");
  return &table;
#else
  return nullptr;
#endif
}

}  // namespace bpar::kernels
