#include "kernels/quant.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/gemm_common.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace bpar::kernels {
namespace {

/// Symmetric scale for values of magnitude <= max_abs. An all-zero (or
/// non-finite-free, empty) row gets scale 0: it quantizes to zeros and
/// dequantizes to exact zeros.
inline float scale_for(float max_abs) { return max_abs / 127.0F; }

inline std::int8_t quantize_one(float v, float inv_scale) {
  const float q = std::nearbyint(v * inv_scale);
  return static_cast<std::int8_t>(std::clamp(q, -127.0F, 127.0F));
}

void quantize_row(const float* src, int n, std::int8_t* dst, float scale) {
  if (scale == 0.0F) {
    std::fill_n(dst, n, std::int8_t{0});
    return;
  }
  const float inv = 1.0F / scale;
  for (int j = 0; j < n; ++j) dst[j] = quantize_one(src[j], inv);
}

float row_max_abs(const float* src, int n) {
  float mx = 0.0F;
  for (int j = 0; j < n; ++j) mx = std::max(mx, std::abs(src[j]));
  return mx;
}

}  // namespace

void QuantizedMatrix::quantize_from(tensor::ConstMatrixView w,
                                    bool per_channel) {
  rows_ = w.rows;
  cols_ = w.cols;
  data_.resize(static_cast<std::size_t>(rows_) * cols_);
  scales_.assign(static_cast<std::size_t>(rows_), 0.0F);
  if (per_channel) {
    for (int r = 0; r < rows_; ++r) {
      const float* src = w.row(r).data();
      scales_[static_cast<std::size_t>(r)] = scale_for(row_max_abs(src, cols_));
    }
  } else {
    float mx = 0.0F;
    for (int r = 0; r < rows_; ++r) {
      mx = std::max(mx, row_max_abs(w.row(r).data(), cols_));
    }
    std::fill(scales_.begin(), scales_.end(), scale_for(mx));
  }
  for (int r = 0; r < rows_; ++r) {
    quantize_row(w.row(r).data(), cols_,
                 data_.data() + static_cast<std::size_t>(r) * cols_,
                 scales_[static_cast<std::size_t>(r)]);
  }
}

void quantize_rows(tensor::ConstMatrixView a, std::int8_t* out,
                   float* scales) {
  const int n = a.cols;
  for (int r = 0; r < a.rows; ++r) {
    const float* src = a.row(r).data();
    const float scale = scale_for(row_max_abs(src, n));
    scales[r] = scale;
    quantize_row(src, n, out + static_cast<std::size_t>(r) * n, scale);
  }
}

void qgemm_nt(tensor::ConstMatrixView a, const QuantView& b,
              tensor::MatrixView c, float beta) {
  BPAR_SPAN("kernels.qgemm_nt");
  BPAR_CHECK(a.rows == c.rows && b.rows == c.cols && a.cols == b.cols,
             "qgemm_nt shape mismatch: A ", a.rows, "x", a.cols, " B ", b.rows,
             "x", b.cols, " C ", c.rows, "x", c.cols);
  detail::scale_c(c, beta);

  // Dynamic per-row activation quantization into thread-local scratch
  // (tasks run concurrently; each worker keeps its own buffers).
  thread_local std::vector<std::int8_t> aq;
  thread_local std::vector<float> ascale;
  const int m = a.rows;
  const int n = c.cols;
  const int k = a.cols;
  aq.resize(static_cast<std::size_t>(m) * k);
  ascale.resize(static_cast<std::size_t>(std::max(m, 1)));
  quantize_rows(a, aq.data(), ascale.data());

  const auto dot = active_backend().dot_i8;
  for (int i = 0; i < m; ++i) {
    const std::int8_t* arow = aq.data() + static_cast<std::size_t>(i) * k;
    const float sa = ascale[static_cast<std::size_t>(i)];
    float* crow = c.row(i).data();
    if (sa == 0.0F) continue;  // exact zero row contributes nothing
    for (int j = 0; j < n; ++j) {
      const float sb = b.scales[j];
      if (sb == 0.0F) continue;
      crow[j] += sa * sb * static_cast<float>(dot(arow, b.row(j), k));
    }
  }
}

}  // namespace bpar::kernels
