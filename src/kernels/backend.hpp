// Runtime-dispatched kernel backends (DESIGN.md §5g).
//
// Every hot numeric kernel — the three GEMM variants, gemv_t, the fused
// pointwise/activation chains, and the int8 dot product under the quantized
// inference path — is reached through a `Backend` function-pointer table.
// The table is selected exactly once, at first use, by cpuid feature
// detection (AVX-512 > AVX2 > NEON > scalar), and can be overridden with
// the BPAR_KERNEL_BACKEND environment variable or set_backend() (the
// `--backend` flag of the tools) for A/B runs and CI determinism.
//
// The scalar backend is the bit-reference: every SIMD backend is pinned
// against it by the parity suite in tests/test_kernels.cpp. SIMD GEMMs
// reassociate additions and the vectorized activations use a polynomial
// exp, so parity is tolerance-pinned, not bit-exact — but each backend is
// deterministic run-to-run, which is what the executor/serving bit-exact
// replay tests rely on.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "tensor/tensor.hpp"

namespace bpar::kernels {

struct Backend {
  const char* name = "";
  /// Floats per SIMD register (1 for scalar) — informational only.
  int simd_width = 1;

  // GEMM family; semantics identical to the public kernels in gemm.hpp.
  // Shapes are validated by the public dispatchers, never here.
  void (*gemm_nn)(tensor::ConstMatrixView a, tensor::ConstMatrixView b,
                  tensor::MatrixView c, float alpha, float beta) = nullptr;
  void (*gemm_nt)(tensor::ConstMatrixView a, tensor::ConstMatrixView b,
                  tensor::MatrixView c, float alpha, float beta) = nullptr;
  void (*gemm_tn)(tensor::ConstMatrixView a, tensor::ConstMatrixView b,
                  tensor::MatrixView c, float alpha, float beta) = nullptr;
  void (*gemv_t)(tensor::ConstMatrixView a, std::span<const float> x,
                 std::span<float> y, float alpha, float beta) = nullptr;

  // Fused pointwise/activation kernels (the LSTM/GRU cell chains).
  void (*sigmoid_inplace)(std::span<float> v) = nullptr;
  void (*tanh_inplace)(std::span<float> v) = nullptr;
  void (*hadamard)(std::span<const float> a, std::span<const float> b,
                   std::span<float> dst) = nullptr;
  void (*hadamard_acc)(std::span<const float> a, std::span<const float> b,
                       std::span<float> dst) = nullptr;
  void (*axpy)(float s, std::span<const float> src,
               std::span<float> dst) = nullptr;

  /// int8 x int8 -> int32 dot product of length k — the inner kernel of the
  /// quantized GEMM (kernels/quant.hpp). Accumulation is exact (int32), so
  /// this IS bit-consistent across backends.
  std::int32_t (*dot_i8)(const std::int8_t* a, const std::int8_t* b,
                         int k) = nullptr;
};

/// The scalar reference backend — always available, golden for parity.
[[nodiscard]] const Backend& scalar_backend();

/// ISA backends; nullptr when not compiled in or not supported by the
/// running CPU (checked via cpuid at first call).
[[nodiscard]] const Backend* avx2_backend();
[[nodiscard]] const Backend* avx512_backend();
[[nodiscard]] const Backend* neon_backend();

/// Best backend the running CPU supports (never null; scalar fallback).
[[nodiscard]] const Backend& native_backend();

/// Every backend usable on this machine, scalar first.
[[nodiscard]] std::vector<const Backend*> available_backends();

/// `name` in {"scalar", "avx2", "avx512", "neon", "native"} → the matching
/// backend, or nullptr when unknown/unsupported here.
[[nodiscard]] const Backend* backend_by_name(std::string_view name);

/// The table the public kernels dispatch through. First call resolves
/// BPAR_KERNEL_BACKEND (unknown/unsupported values warn and fall back to
/// native); later calls are a single relaxed atomic load.
[[nodiscard]] const Backend& active_backend();
[[nodiscard]] const char* active_backend_name();

/// Switches the active backend. Returns false (and changes nothing) when
/// the name is unknown or unsupported on this CPU. Not meant to race with
/// in-flight kernels — call it at startup or between runs (tools, tests).
bool set_backend(std::string_view name);

}  // namespace bpar::kernels
