// Backend registry and startup selection (see backend.hpp).
#include "kernels/backend.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace bpar::kernels {
namespace {

/// The dispatch pointer. Null until the first active_backend() call
/// resolves BPAR_KERNEL_BACKEND; a plain pointer store afterwards.
std::atomic<const Backend*> g_active{nullptr};

const Backend* resolve_from_env() {
  const char* env = std::getenv("BPAR_KERNEL_BACKEND");
  if (env == nullptr || env[0] == '\0') return &native_backend();
  const Backend* named = backend_by_name(env);
  if (named == nullptr) {
    std::fprintf(stderr,
                 "bpar: BPAR_KERNEL_BACKEND=%s is unknown or unsupported on "
                 "this CPU; using '%s'\n",
                 env, native_backend().name);
    return &native_backend();
  }
  return named;
}

}  // namespace

const Backend& native_backend() {
  if (const Backend* b = avx512_backend()) return *b;
  if (const Backend* b = avx2_backend()) return *b;
  if (const Backend* b = neon_backend()) return *b;
  return scalar_backend();
}

std::vector<const Backend*> available_backends() {
  std::vector<const Backend*> out{&scalar_backend()};
  if (const Backend* b = avx2_backend()) out.push_back(b);
  if (const Backend* b = avx512_backend()) out.push_back(b);
  if (const Backend* b = neon_backend()) out.push_back(b);
  return out;
}

const Backend* backend_by_name(std::string_view name) {
  if (name == "scalar") return &scalar_backend();
  if (name == "avx2") return avx2_backend();
  if (name == "avx512") return avx512_backend();
  if (name == "neon") return neon_backend();
  if (name == "native") return &native_backend();
  return nullptr;
}

const Backend& active_backend() {
  const Backend* current = g_active.load(std::memory_order_relaxed);
  if (current != nullptr) return *current;
  // First use (or a benign race: both threads resolve the same table).
  const Backend* resolved = resolve_from_env();
  g_active.store(resolved, std::memory_order_relaxed);
  return *resolved;
}

const char* active_backend_name() { return active_backend().name; }

bool set_backend(std::string_view name) {
  const Backend* backend = backend_by_name(name);
  if (backend == nullptr) return false;
  g_active.store(backend, std::memory_order_relaxed);
  return true;
}

}  // namespace bpar::kernels
