// Elementwise kernels: activations, their derivatives, fused vector ops,
// softmax and cross-entropy. All operate on spans or matrix views.
#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace bpar::kernels {

using tensor::ConstMatrixView;
using tensor::MatrixView;

// ---- activations ----

[[nodiscard]] float sigmoid(float x);
void sigmoid_inplace(std::span<float> v);
void tanh_inplace(std::span<float> v);

/// d/dx sigmoid given y = sigmoid(x): y * (1 - y).
[[nodiscard]] inline float dsigmoid_from_y(float y) { return y * (1.0F - y); }
/// d/dx tanh given y = tanh(x): 1 - y^2.
[[nodiscard]] inline float dtanh_from_y(float y) { return 1.0F - y * y; }

// ---- vector ops ----

/// dst += src (same length).
void add_inplace(std::span<float> dst, std::span<const float> src);
/// dst = a + b.
void add(std::span<const float> a, std::span<const float> b,
         std::span<float> dst);
/// dst = a * b (Hadamard).
void hadamard(std::span<const float> a, std::span<const float> b,
              std::span<float> dst);
/// dst += a * b (fused multiply-accumulate).
void hadamard_acc(std::span<const float> a, std::span<const float> b,
                  std::span<float> dst);
/// dst *= s.
void scale_inplace(std::span<float> dst, float s);
/// dst += s * src.
void axpy(float s, std::span<const float> src, std::span<float> dst);

/// Adds `bias` (length = m.cols) to every row of `m`.
void add_bias_rows(MatrixView m, std::span<const float> bias);
/// bias(j) += sum over rows of m(:, j) — bias gradient accumulation.
void sum_rows_acc(ConstMatrixView m, std::span<float> bias);

// ---- matrix elementwise (row-wise loops over possibly strided views) ----

/// dst = a + b, all same shape.
void add(ConstMatrixView a, ConstMatrixView b, MatrixView dst);
/// dst = (a + b) / 2.
void average(ConstMatrixView a, ConstMatrixView b, MatrixView dst);
/// dst = a * b.
void multiply(ConstMatrixView a, ConstMatrixView b, MatrixView dst);
/// dst += src.
void accumulate(MatrixView dst, ConstMatrixView src);

// ---- softmax / cross-entropy ----

/// Row-wise softmax: dst(r, :) = softmax(src(r, :)). Numerically stable.
void softmax_rows(ConstMatrixView src, MatrixView dst);

/// Mean cross-entropy of softmax probabilities `probs` against integer
/// labels (one per row). Returns the loss; labels.size() == probs.rows.
[[nodiscard]] double cross_entropy(ConstMatrixView probs,
                                   std::span<const int> labels);

/// Gradient of (mean CE ∘ softmax) wrt logits: (probs - onehot) / rows.
void softmax_ce_grad(ConstMatrixView probs, std::span<const int> labels,
                     MatrixView dlogits);

/// Row-wise argmax.
void argmax_rows(ConstMatrixView m, std::span<int> out);

// ---- numeric health ----

/// True iff every element is finite (no NaN/Inf). Branch-free exponent-bit
/// reduction — cheap enough to scan whole gradient sets per batch.
[[nodiscard]] bool all_finite(std::span<const float> v);
[[nodiscard]] bool all_finite(ConstMatrixView m);

}  // namespace bpar::kernels
