// ISA-generic SIMD kernel bodies (internal header — backend TUs only).
//
// Each SIMD backend TU (backend_avx2.cpp / backend_avx512.cpp /
// backend_neon.cpp) is compiled with its ISA's flags, defines a small
// vector-traits struct V, and instantiates SimdKernels<V>. The kernel
// logic — register-tiled GEMM micro-loops, the polynomial exp used by the
// fused activations — is written once here against the traits interface:
//
//   using reg = ...;              native float vector
//   static constexpr int kWidth;  floats per reg
//   load/loadu, store, set1, zero, add, sub, mul, div, min, max
//   fma(a, b, c) = a*b + c
//   hsum(reg) -> float
//   round_nearest(reg)
//   scale_by_pow2(x, n) = x * 2^(int)n   (n integral-valued float reg)
//   dot_i8(a, b, k) -> int32             (per-ISA widening int kernel)
//
// Tails (sizes not a multiple of kWidth) take scalar loops; the scalar
// code matches what detail::scale_c + the vector body compute, so a
// backend is self-consistent across sizes. Scalar tails of the activation
// kernels intentionally reuse the SAME polynomial exp (exp_scalar) rather
// than libm, so a row's numerics do not depend on where the vector loop
// stopped.
#pragma once

#include <cmath>

#include "kernels/backend.hpp"
#include "kernels/gemm_common.hpp"

namespace bpar::kernels::simd {

// Cephes-style expf constants (same polynomial the classic avx_mathfun /
// SLEEF-u10 fast paths use; ~2 ulp over the reduced range).
inline constexpr float kLog2e = 1.44269504088896341F;
inline constexpr float kLn2Hi = 0.693359375F;
inline constexpr float kLn2Lo = -2.12194440e-4F;
inline constexpr float kExpHi = 88.02F;   // just below log(FLT_MAX)
inline constexpr float kExpLo = -87.0F;   // exp() of this is still normal
inline constexpr float kExpC0 = 1.9875691500e-4F;
inline constexpr float kExpC1 = 1.3981999507e-3F;
inline constexpr float kExpC2 = 8.3334519073e-3F;
inline constexpr float kExpC3 = 4.1665795894e-2F;
inline constexpr float kExpC4 = 1.6666665459e-1F;
inline constexpr float kExpC5 = 5.0000001201e-1F;

/// Scalar twin of exp_ps below — used for activation tails so the whole
/// span sees one set of numerics.
inline float exp_scalar(float x) {
  x = x > kExpHi ? kExpHi : (x < kExpLo ? kExpLo : x);
  const float n = std::nearbyint(x * kLog2e);
  float r = x - n * kLn2Hi;
  r -= n * kLn2Lo;
  float p = kExpC0;
  p = p * r + kExpC1;
  p = p * r + kExpC2;
  p = p * r + kExpC3;
  p = p * r + kExpC4;
  p = p * r + kExpC5;
  p = p * r * r + r + 1.0F;
  return std::ldexp(p, static_cast<int>(n));
}

inline float sigmoid_scalar(float x) {
  return 1.0F / (1.0F + exp_scalar(-x));
}

inline float tanh_scalar(float x) {
  const float e = exp_scalar(-2.0F * x);
  return (1.0F - e) / (1.0F + e);
}

template <class V>
struct SimdKernels {
  using reg = typename V::reg;
  static constexpr int kW = V::kWidth;

  // ---- vectorized exp / sigmoid / tanh ----

  static reg exp_ps(reg x) {
    x = V::min(x, V::set1(kExpHi));
    x = V::max(x, V::set1(kExpLo));
    const reg n = V::round_nearest(V::mul(x, V::set1(kLog2e)));
    reg r = V::fma(n, V::set1(-kLn2Hi), x);
    r = V::fma(n, V::set1(-kLn2Lo), r);
    reg p = V::set1(kExpC0);
    p = V::fma(p, r, V::set1(kExpC1));
    p = V::fma(p, r, V::set1(kExpC2));
    p = V::fma(p, r, V::set1(kExpC3));
    p = V::fma(p, r, V::set1(kExpC4));
    p = V::fma(p, r, V::set1(kExpC5));
    p = V::fma(V::mul(p, r), r, V::add(r, V::set1(1.0F)));
    return V::scale_by_pow2(p, n);
  }

  static void sigmoid_inplace(std::span<float> v) {
    const reg one = V::set1(1.0F);
    std::size_t i = 0;
    for (; i + kW <= v.size(); i += kW) {
      const reg x = V::loadu(v.data() + i);
      const reg e = exp_ps(V::sub(V::zero(), x));
      V::storeu(v.data() + i, V::div(one, V::add(one, e)));
    }
    for (; i < v.size(); ++i) v[i] = sigmoid_scalar(v[i]);
  }

  static void tanh_inplace(std::span<float> v) {
    const reg one = V::set1(1.0F);
    const reg m2 = V::set1(-2.0F);
    std::size_t i = 0;
    for (; i + kW <= v.size(); i += kW) {
      const reg x = V::loadu(v.data() + i);
      const reg e = exp_ps(V::mul(m2, x));
      V::storeu(v.data() + i, V::div(V::sub(one, e), V::add(one, e)));
    }
    for (; i < v.size(); ++i) v[i] = tanh_scalar(v[i]);
  }

  // ---- pointwise vector ops ----

  static void hadamard(std::span<const float> a, std::span<const float> b,
                       std::span<float> dst) {
    std::size_t i = 0;
    for (; i + kW <= dst.size(); i += kW) {
      V::storeu(dst.data() + i,
                V::mul(V::loadu(a.data() + i), V::loadu(b.data() + i)));
    }
    for (; i < dst.size(); ++i) dst[i] = a[i] * b[i];
  }

  static void hadamard_acc(std::span<const float> a, std::span<const float> b,
                           std::span<float> dst) {
    std::size_t i = 0;
    for (; i + kW <= dst.size(); i += kW) {
      V::storeu(dst.data() + i,
                V::fma(V::loadu(a.data() + i), V::loadu(b.data() + i),
                       V::loadu(dst.data() + i)));
    }
    for (; i < dst.size(); ++i) dst[i] += a[i] * b[i];
  }

  static void axpy(float s, std::span<const float> src, std::span<float> dst) {
    const reg sv = V::set1(s);
    std::size_t i = 0;
    for (; i + kW <= dst.size(); i += kW) {
      V::storeu(dst.data() + i,
                V::fma(sv, V::loadu(src.data() + i), V::loadu(dst.data() + i)));
    }
    for (; i < dst.size(); ++i) dst[i] += s * src[i];
  }

  // ---- GEMM family ----
  // All three pre-scale C through the shared detail::scale_c and then pure
  // accumulate, exactly like the scalar reference.

  /// C += alpha * A * B, register-tiled: 4 C vectors (one row, 4*kW
  /// columns) stay in registers across a whole k-block.
  static void gemm_nn(tensor::ConstMatrixView a, tensor::ConstMatrixView b,
                      tensor::MatrixView c, float alpha, float beta) {
    detail::scale_c(c, beta);
    const int m = c.rows;
    const int n = c.cols;
    const int k = a.cols;
    for (int k0 = 0; k0 < k; k0 += detail::kBlockK) {
      const int k1 = std::min(k, k0 + detail::kBlockK);
      for (int i = 0; i < m; ++i) {
        const float* arow = a.row(i).data();
        float* crow = c.row(i).data();
        int j = 0;
        for (; j + 4 * kW <= n; j += 4 * kW) {
          reg c0 = V::loadu(crow + j);
          reg c1 = V::loadu(crow + j + kW);
          reg c2 = V::loadu(crow + j + 2 * kW);
          reg c3 = V::loadu(crow + j + 3 * kW);
          for (int p = k0; p < k1; ++p) {
            const reg av = V::set1(alpha * arow[p]);
            const float* brow = b.row(p).data() + j;
            c0 = V::fma(av, V::loadu(brow), c0);
            c1 = V::fma(av, V::loadu(brow + kW), c1);
            c2 = V::fma(av, V::loadu(brow + 2 * kW), c2);
            c3 = V::fma(av, V::loadu(brow + 3 * kW), c3);
          }
          V::storeu(crow + j, c0);
          V::storeu(crow + j + kW, c1);
          V::storeu(crow + j + 2 * kW, c2);
          V::storeu(crow + j + 3 * kW, c3);
        }
        for (; j + kW <= n; j += kW) {
          reg c0 = V::loadu(crow + j);
          for (int p = k0; p < k1; ++p) {
            c0 = V::fma(V::set1(alpha * arow[p]), V::loadu(b.row(p).data() + j),
                        c0);
          }
          V::storeu(crow + j, c0);
        }
        for (; j < n; ++j) {
          float acc = crow[j];
          for (int p = k0; p < k1; ++p) {
            acc += alpha * arow[p] * b.row(p).data()[j];
          }
          crow[j] = acc;
        }
      }
    }
  }

  /// C += alpha * A * B^T: k-blocked row-dot-products, 4 accumulator
  /// vectors per (i, j) pair to hide FMA latency.
  static void gemm_nt(tensor::ConstMatrixView a, tensor::ConstMatrixView b,
                      tensor::MatrixView c, float alpha, float beta) {
    detail::scale_c(c, beta);
    const int m = c.rows;
    const int n = c.cols;
    const int k = a.cols;
    for (int k0 = 0; k0 < k; k0 += detail::kBlockK) {
      const int k1 = std::min(k, k0 + detail::kBlockK);
      const int kb = k1 - k0;
      for (int i0 = 0; i0 < m; i0 += detail::kBlockM) {
        const int i1 = std::min(m, i0 + detail::kBlockM);
        for (int j0 = 0; j0 < n; j0 += detail::kBlockN) {
          const int j1 = std::min(n, j0 + detail::kBlockN);
          for (int i = i0; i < i1; ++i) {
            const float* arow = a.row(i).data() + k0;
            float* crow = c.row(i).data();
            for (int j = j0; j < j1; ++j) {
              const float* brow = b.row(j).data() + k0;
              reg s0 = V::zero();
              reg s1 = V::zero();
              reg s2 = V::zero();
              reg s3 = V::zero();
              int p = 0;
              for (; p + 4 * kW <= kb; p += 4 * kW) {
                s0 = V::fma(V::loadu(arow + p), V::loadu(brow + p), s0);
                s1 = V::fma(V::loadu(arow + p + kW), V::loadu(brow + p + kW),
                            s1);
                s2 = V::fma(V::loadu(arow + p + 2 * kW),
                            V::loadu(brow + p + 2 * kW), s2);
                s3 = V::fma(V::loadu(arow + p + 3 * kW),
                            V::loadu(brow + p + 3 * kW), s3);
              }
              for (; p + kW <= kb; p += kW) {
                s0 = V::fma(V::loadu(arow + p), V::loadu(brow + p), s0);
              }
              float acc =
                  V::hsum(V::add(V::add(s0, s1), V::add(s2, s3)));
              for (; p < kb; ++p) acc += arow[p] * brow[p];
              crow[j] += alpha * acc;
            }
          }
        }
      }
    }
  }

  /// C += alpha * A^T * B: rank-1 updates vectorized along C's rows. No
  /// zero fast-path — 0 * NaN must stay NaN (see scalar gemm_tn).
  static void gemm_tn(tensor::ConstMatrixView a, tensor::ConstMatrixView b,
                      tensor::MatrixView c, float alpha, float beta) {
    detail::scale_c(c, beta);
    const int m = c.rows;  // = a.cols
    const int n = c.cols;  // = b.cols
    const int k = a.rows;  // = b.rows
    for (int p = 0; p < k; ++p) {
      const float* arow = a.row(p).data();
      const float* brow = b.row(p).data();
      for (int i = 0; i < m; ++i) {
        const float avs = alpha * arow[i];
        const reg av = V::set1(avs);
        float* crow = c.row(i).data();
        int j = 0;
        for (; j + kW <= n; j += kW) {
          V::storeu(crow + j, V::fma(av, V::loadu(brow + j),
                                     V::loadu(crow + j)));
        }
        for (; j < n; ++j) crow[j] += avs * brow[j];
      }
    }
  }

  /// y = alpha * A^T x + beta * y — same rank-1 shape as gemm_tn.
  static void gemv_t(tensor::ConstMatrixView a, std::span<const float> x,
                     std::span<float> y, float alpha, float beta) {
    if (beta == 0.0F) {
      std::fill(y.begin(), y.end(), 0.0F);
    } else if (beta != 1.0F) {
      for (auto& v : y) v *= beta;
    }
    const int n = a.cols;
    for (int i = 0; i < a.rows; ++i) {
      const float avs = alpha * x[static_cast<std::size_t>(i)];
      const reg av = V::set1(avs);
      const float* arow = a.row(i).data();
      float* yd = y.data();
      int j = 0;
      for (; j + kW <= n; j += kW) {
        V::storeu(yd + j, V::fma(av, V::loadu(arow + j), V::loadu(yd + j)));
      }
      for (; j < n; ++j) yd[j] += avs * arow[j];
    }
  }

  /// Assembles the Backend table for this ISA.
  static Backend make_backend(const char* name) {
    return Backend{
        .name = name,
        .simd_width = kW,
        .gemm_nn = gemm_nn,
        .gemm_nt = gemm_nt,
        .gemm_tn = gemm_tn,
        .gemv_t = gemv_t,
        .sigmoid_inplace = sigmoid_inplace,
        .tanh_inplace = tanh_inplace,
        .hadamard = hadamard,
        .hadamard_acc = hadamard_acc,
        .axpy = axpy,
        .dot_i8 = V::dot_i8,
    };
  }
};

}  // namespace bpar::kernels::simd
