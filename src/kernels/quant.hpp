// int8 symmetric quantization + quantized GEMM (DESIGN.md §5g).
//
// The opt-in int8 inference path quantizes trained fp32 weights once at
// load time (per-tensor or per-channel scales — a channel is an output row
// of the fused gate matrix, i.e. one unit of one gate) and activations
// dynamically per call with one scale per batch row. The GEMM accumulates
// int8 x int8 products exactly in int32 through Backend::dot_i8 and
// dequantizes to fp32 at the activation boundary:
//
//   C(i, j) (+)= a_scale(i) * b_scale(j) * sum_k Aq(i, k) * Bq(j, k)
//
// Quantization is symmetric (zero-point 0, scale = max|x| / 127), so
// column sub-blocks of a quantized matrix (the x vs h_prev halves of a
// fused RNN weight matrix) share their row's scale and can be sliced with
// QuantView::block exactly like fp32 MatrixViews.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/backend.hpp"
#include "tensor/tensor.hpp"

namespace bpar::kernels {

/// Non-owning view over int8 data with per-row dequantization scales.
/// `scales` has one entry per row (per-tensor quantization just repeats
/// the same value), indexed relative to the view's first row.
struct QuantView {
  const std::int8_t* data = nullptr;
  int rows = 0;
  int cols = 0;
  int ld = 0;
  const float* scales = nullptr;

  [[nodiscard]] QuantView block(int r0, int c0, int nr, int nc) const {
    return {data + static_cast<std::size_t>(r0) * ld + c0, nr, nc, ld,
            scales + r0};
  }
  [[nodiscard]] const std::int8_t* row(int r) const {
    return data + static_cast<std::size_t>(r) * ld;
  }
};

/// Owning int8 matrix produced by quantizing an fp32 weight matrix.
class QuantizedMatrix {
 public:
  QuantizedMatrix() = default;

  /// (Re)quantizes `w` in place; per_channel → one scale per row,
  /// otherwise one scale for the whole tensor (stored per-row anyway so
  /// QuantView never branches).
  void quantize_from(tensor::ConstMatrixView w, bool per_channel = true);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] QuantView view() const {
    return {data_.data(), rows_, cols_, cols_, scales_.data()};
  }

  /// fp32 reconstruction error bound of row r: half a quantization step.
  [[nodiscard]] float step(int r) const {
    return scales_[static_cast<std::size_t>(r)];
  }

 private:
  std::vector<std::int8_t> data_;
  std::vector<float> scales_;  // one per row, always
  int rows_ = 0;
  int cols_ = 0;
};

/// Quantizes each row of `a` symmetrically into `out` (size rows*cols,
/// leading dimension = a.cols) with one scale per row written to `scales`.
void quantize_rows(tensor::ConstMatrixView a, std::int8_t* out, float* scales);

/// C = dequant(Aq · Bq^T) + beta * C with A (fp32 activations) quantized
/// dynamically per row inside the call. Shapes as gemm_nt: A(m,k), B(n,k),
/// C(m,n). beta follows the shared BLAS semantics (0 overwrites).
void qgemm_nt(tensor::ConstMatrixView a, const QuantView& b,
              tensor::MatrixView c, float beta = 0.0F);

}  // namespace bpar::kernels
