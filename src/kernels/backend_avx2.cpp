// AVX2 + FMA kernel backend. This translation unit is compiled with
// -mavx2 -mfma (see src/kernels/CMakeLists.txt); nothing here may run
// before the cpuid check in avx2_backend().
#include "kernels/backend.hpp"

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)
#define BPAR_HAVE_AVX2_BACKEND 1
#include <immintrin.h>

#include "kernels/simd_kernels.hpp"
#endif

namespace bpar::kernels {

#if BPAR_HAVE_AVX2_BACKEND
namespace {

struct Avx2Vec {
  using reg = __m256;
  static constexpr int kWidth = 8;

  static reg loadu(const float* p) { return _mm256_loadu_ps(p); }
  static void storeu(float* p, reg v) { _mm256_storeu_ps(p, v); }
  static reg set1(float v) { return _mm256_set1_ps(v); }
  static reg zero() { return _mm256_setzero_ps(); }
  static reg add(reg a, reg b) { return _mm256_add_ps(a, b); }
  static reg sub(reg a, reg b) { return _mm256_sub_ps(a, b); }
  static reg mul(reg a, reg b) { return _mm256_mul_ps(a, b); }
  static reg div(reg a, reg b) { return _mm256_div_ps(a, b); }
  static reg fma(reg a, reg b, reg c) { return _mm256_fmadd_ps(a, b, c); }
  static reg min(reg a, reg b) { return _mm256_min_ps(a, b); }
  static reg max(reg a, reg b) { return _mm256_max_ps(a, b); }
  static reg round_nearest(reg v) {
    return _mm256_round_ps(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  }
  /// x * 2^(int)n via exponent-bit arithmetic (n integral, |n| <= 127).
  static reg scale_by_pow2(reg x, reg n) {
    const __m256i ni = _mm256_cvtps_epi32(n);
    const __m256i pow2 =
        _mm256_slli_epi32(_mm256_add_epi32(ni, _mm256_set1_epi32(127)), 23);
    return _mm256_mul_ps(x, _mm256_castsi256_ps(pow2));
  }
  static float hsum(reg v) {
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    return _mm_cvtss_f32(s);
  }

  /// int8 dot product: 16 lanes widened to int16, _mm256_madd_epi16 pairs
  /// into int32 (products <= 127*127 never overflow int16 pair sums' int32
  /// accumulator for any realistic k).
  static std::int32_t dot_i8(const std::int8_t* a, const std::int8_t* b,
                             int k) {
    __m256i acc = _mm256_setzero_si256();
    int p = 0;
    for (; p + 16 <= k; p += 16) {
      const __m128i av =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + p));
      const __m128i bv =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + p));
      const __m256i a16 = _mm256_cvtepi8_epi16(av);
      const __m256i b16 = _mm256_cvtepi8_epi16(bv);
      acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a16, b16));
    }
    const __m128i lo = _mm256_castsi256_si128(acc);
    const __m128i hi = _mm256_extracti128_si256(acc, 1);
    __m128i s = _mm_add_epi32(lo, hi);
    s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 1));
    std::int32_t sum = _mm_cvtsi128_si32(s);
    for (; p < k; ++p) {
      sum += static_cast<std::int32_t>(a[p]) * static_cast<std::int32_t>(b[p]);
    }
    return sum;
  }
};

}  // namespace
#endif  // BPAR_HAVE_AVX2_BACKEND

const Backend* avx2_backend() {
#if BPAR_HAVE_AVX2_BACKEND
  static const Backend* backend = []() -> const Backend* {
    if (!__builtin_cpu_supports("avx2") || !__builtin_cpu_supports("fma")) {
      return nullptr;
    }
    static const Backend table =
        simd::SimdKernels<Avx2Vec>::make_backend("avx2");
    return &table;
  }();
  return backend;
#else
  return nullptr;
#endif
}

}  // namespace bpar::kernels
