// Finite-difference gradient verification.
//
// Perturbs individual weights, re-runs the forward pass, and compares the
// numeric derivative against the analytic gradient an executor produced.
// Used by the test suite to validate the BPTT kernels and the task-graph
// construction end to end.
#pragma once

#include "exec/executor.hpp"
#include "rnn/batch.hpp"
#include "rnn/network.hpp"

namespace bpar::train {

struct GradCheckResult {
  double max_rel_error = 0.0;
  double mean_rel_error = 0.0;
  int checked = 0;

  [[nodiscard]] bool ok(double tolerance = 5e-2) const {
    return checked > 0 && max_rel_error < tolerance;
  }
};

/// Checks `samples` randomly chosen parameters of every weight matrix.
/// `epsilon` is the central-difference step (float32 → keep ~1e-2 relative
/// tolerance in mind). The executor's gradients must already be computed
/// for `batch` before calling — the function calls train_batch itself.
GradCheckResult check_gradients(rnn::Network& net, exec::Executor& executor,
                                const rnn::BatchData& batch, int samples,
                                float epsilon = 1e-2F,
                                std::uint64_t seed = 99);

}  // namespace bpar::train
