#include "train/trainer.hpp"

#include <cmath>
#include <numeric>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perf/timer.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace bpar::train {

double accuracy(std::span<const int> predictions,
                std::span<const int> labels) {
  BPAR_CHECK(predictions.size() == labels.size(), "accuracy size mismatch");
  if (predictions.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / predictions.size();
}

void Trainer::take_snapshot() {
  BPAR_SPAN("train.snapshot");
  perf::WallTimer timer;
  std::ostringstream net_os;
  net_.save(net_os);
  snapshot_net_ = std::move(net_os).str();
  std::ostringstream opt_os;
  optimizer_.save_state(opt_os);
  snapshot_opt_ = std::move(opt_os).str();
  snapshot_valid_ = true;
  static obs::HistogramCell& snapshot_ms = obs::Registry::instance().histogram(
      "train.snapshot_ms", {0.1, 1.0, 10.0, 100.0, 1000.0});
  snapshot_ms.add(timer.elapsed_ms());
}

void Trainer::restore_snapshot() {
  BPAR_SPAN("train.restore");
  BPAR_CHECK(snapshot_valid_, "no snapshot to restore");
  std::istringstream net_is(snapshot_net_);
  net_.load(net_is);
  std::istringstream opt_is(snapshot_opt_);
  optimizer_.load_state(opt_is, net_);
}

EpochStats Trainer::train_epoch(const std::vector<rnn::BatchData>& batches) {
  BPAR_SPAN("train.epoch");
  perf::WallTimer timer;
  EpochStats stats;
  const bool recover = options_.max_retries > 0;
  if (recover && !snapshot_valid_) take_snapshot();
  // Visit order: identity, or a deterministic Fisher-Yates shuffle keyed by
  // (seed, epoch index) so runs are reproducible.
  std::vector<std::size_t> order(batches.size());
  std::iota(order.begin(), order.end(), 0U);
  if (shuffle_) {
    util::Rng rng(shuffle_seed_ + 0x9e37ULL * (history_.size() + 1));
    for (std::size_t i = order.size(); i > 1; --i) {
      const auto j = rng.uniform_index(i);
      std::swap(order[i - 1], order[j]);
    }
  }
  for (const std::size_t idx : order) {
    int failures = 0;  // consecutive failed attempts of this batch
    for (;;) {
      exec::Executor& exec = active_executor();
      try {
        const auto result = exec.train_batch(batches[idx]);
        if (options_.check_numerics) {
          if (!std::isfinite(result.loss)) {
            BPAR_RAISE(util::Error, "non-finite loss ", result.loss,
                       " on batch ", idx);
          }
          if (!exec.grads().all_finite()) {
            BPAR_RAISE(util::Error, "non-finite gradient on batch ", idx);
          }
        }
        if (options_.clip_norm > 0.0F) {
          const double norm = exec.grads().l2_norm();
          obs::Registry::instance().gauge("train.grad_norm").set(norm);
          obs::Registry::instance().series("train.grad_norm").append(norm);
          if (norm > static_cast<double>(options_.clip_norm)) {
            exec.grads().scale(options_.clip_norm /
                               static_cast<float>(norm));
          }
        }
        // Weights mutate only here, after validation — a failed attempt
        // leaves them untouched unless a previous step already diverged.
        {
          BPAR_SPAN("train.optimizer_step");
          optimizer_.step(net_, exec.grads());
        }
        stats.mean_loss += result.loss;
        ++global_step_;
        if (recover) take_snapshot();
        if (options_.checkpoint_every > 0 && options_.on_checkpoint &&
            global_step_ % options_.checkpoint_every == 0) {
          BPAR_SPAN("train.checkpoint");
          perf::WallTimer ckpt_timer;
          options_.on_checkpoint(global_step_);
          auto& reg = obs::Registry::instance();
          reg.counter("train.checkpoints").add(1);
          static obs::HistogramCell& ckpt_ms = reg.histogram(
              "train.checkpoint_ms", {0.1, 1.0, 10.0, 100.0, 1000.0});
          ckpt_ms.add(ckpt_timer.elapsed_ms());
        }
        break;
      } catch (const util::Error& e) {
        if (!recover) throw;
        ++failures;
        BPAR_LOG_WARN << "batch " << idx << " attempt " << failures
                      << " failed (" << exec.name() << "): " << e.what();
        if (snapshot_valid_) {
          restore_snapshot();
          ++stats.rollbacks;
        }
        if (failures > 1 && options_.lr_backoff > 0.0F &&
            options_.lr_backoff < 1.0F) {
          optimizer_.scale_learning_rate(options_.lr_backoff);
          BPAR_LOG_WARN << "learning rate backed off to "
                        << optimizer_.learning_rate();
        }
        if (failures > options_.max_retries) {
          if (!degraded_ && options_.fallback != nullptr) {
            degraded_ = true;
            failures = 0;
            BPAR_LOG_ERROR << "executor " << executor_.name()
                           << " exhausted retries on batch " << idx
                           << "; degrading to " << options_.fallback->name();
          } else {
            throw;
          }
        }
        ++stats.retries;
      }
    }
  }
  if (!batches.empty()) stats.mean_loss /= static_cast<double>(batches.size());
  stats.wall_ms = timer.elapsed_ms();
  history_.push_back(stats);
  auto& reg = obs::Registry::instance();
  reg.series("train.loss").append(stats.mean_loss);
  reg.gauge("train.loss").set(stats.mean_loss);
  reg.counter("train.retries").add(static_cast<std::uint64_t>(stats.retries));
  reg.counter("train.rollbacks")
      .add(static_cast<std::uint64_t>(stats.rollbacks));
  reg.counter("train.epochs").add(1);
  return stats;
}

EpochStats Trainer::evaluate(const std::vector<rnn::BatchData>& batches) {
  BPAR_SPAN("train.evaluate");
  perf::WallTimer timer;
  EpochStats stats;
  std::size_t total = 0;
  double correct = 0.0;
  for (const auto& batch : batches) {
    const auto result = active_executor().infer(batch);
    stats.mean_loss += result.loss;
    correct += accuracy(result.predictions, batch.labels) *
               static_cast<double>(batch.labels.size());
    total += batch.labels.size();
  }
  if (!batches.empty()) stats.mean_loss /= static_cast<double>(batches.size());
  if (total > 0) stats.accuracy = correct / static_cast<double>(total);
  stats.wall_ms = timer.elapsed_ms();
  return stats;
}

}  // namespace bpar::train
