#include "train/trainer.hpp"

#include <numeric>

#include "perf/timer.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace bpar::train {

double accuracy(std::span<const int> predictions,
                std::span<const int> labels) {
  BPAR_CHECK(predictions.size() == labels.size(), "accuracy size mismatch");
  if (predictions.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / predictions.size();
}

EpochStats Trainer::train_epoch(const std::vector<rnn::BatchData>& batches) {
  perf::WallTimer timer;
  EpochStats stats;
  // Visit order: identity, or a deterministic Fisher-Yates shuffle keyed by
  // (seed, epoch index) so runs are reproducible.
  std::vector<std::size_t> order(batches.size());
  std::iota(order.begin(), order.end(), 0U);
  if (shuffle_) {
    util::Rng rng(shuffle_seed_ + 0x9e37ULL * (history_.size() + 1));
    for (std::size_t i = order.size(); i > 1; --i) {
      const auto j = rng.uniform_index(i);
      std::swap(order[i - 1], order[j]);
    }
  }
  for (const std::size_t idx : order) {
    const auto result = executor_.train_batch(batches[idx]);
    optimizer_.step(net_, executor_.grads());
    stats.mean_loss += result.loss;
  }
  if (!batches.empty()) stats.mean_loss /= static_cast<double>(batches.size());
  stats.wall_ms = timer.elapsed_ms();
  history_.push_back(stats);
  return stats;
}

EpochStats Trainer::evaluate(const std::vector<rnn::BatchData>& batches) {
  perf::WallTimer timer;
  EpochStats stats;
  std::size_t total = 0;
  double correct = 0.0;
  for (const auto& batch : batches) {
    std::vector<int> predictions(batch.labels.size());
    const auto result = executor_.infer_batch(batch, predictions);
    stats.mean_loss += result.loss;
    correct += accuracy(predictions, batch.labels) *
               static_cast<double>(batch.labels.size());
    total += batch.labels.size();
  }
  if (!batches.empty()) stats.mean_loss /= static_cast<double>(batches.size());
  if (total > 0) stats.accuracy = correct / static_cast<double>(total);
  stats.wall_ms = timer.elapsed_ms();
  return stats;
}

}  // namespace bpar::train
