#include "train/gradient_check.hpp"

#include <cmath>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace bpar::train {
namespace {

struct ParamRef {
  tensor::Matrix* param;
  const tensor::Matrix* grad;
};

std::vector<ParamRef> collect(rnn::Network& net, rnn::NetworkGrads& grads) {
  std::vector<ParamRef> refs;
  const auto& cfg = net.config();
  for (int dir = 0; dir < 2; ++dir) {
    for (int l = 0; l < cfg.num_layers; ++l) {
      auto& p = net.layer(dir, l);
      auto& g = grads.layers[dir][static_cast<std::size_t>(l)];
      refs.push_back({&p.w, &g.dw});
      refs.push_back({&p.b, &g.db});
    }
  }
  refs.push_back({&net.w_out, &grads.dw_out});
  refs.push_back({&net.b_out, &grads.db_out});
  return refs;
}

}  // namespace

GradCheckResult check_gradients(rnn::Network& net, exec::Executor& executor,
                                const rnn::BatchData& batch, int samples,
                                float epsilon, std::uint64_t seed) {
  // Analytic gradients at the current weights.
  executor.train_batch(batch);
  auto refs = collect(net, executor.grads());

  util::Rng rng(seed);
  GradCheckResult result;
  double sum_rel = 0.0;
  for (int s = 0; s < samples; ++s) {
    auto& ref = refs[rng.uniform_index(refs.size())];
    const int r = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(ref.param->rows())));
    const int c = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(ref.param->cols())));
    const float analytic = ref.grad->at(r, c);

    float& w = ref.param->at(r, c);
    const float saved = w;
    w = saved + epsilon;
    const double loss_plus = executor.infer(batch).loss;
    w = saved - epsilon;
    const double loss_minus = executor.infer(batch).loss;
    w = saved;

    const double numeric =
        (loss_plus - loss_minus) / (2.0 * static_cast<double>(epsilon));
    const double denom =
        std::max({std::abs(numeric), std::abs(static_cast<double>(analytic)),
                  1e-4});
    const double rel =
        std::abs(numeric - static_cast<double>(analytic)) / denom;
    result.max_rel_error = std::max(result.max_rel_error, rel);
    sum_rel += rel;
    ++result.checked;
  }
  if (result.checked > 0) {
    result.mean_rel_error = sum_rel / result.checked;
  }
  return result;
}

}  // namespace bpar::train
