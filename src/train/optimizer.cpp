#include "train/optimizer.hpp"

#include <cmath>
#include <functional>
#include <istream>
#include <ostream>

#include "util/check.hpp"

namespace bpar::train {
namespace {

// Visits every (param, grad, state...) matrix triple of the model in a
// fixed order. States may be null.
void for_each_param(
    rnn::Network& net, const rnn::NetworkGrads& grads, rnn::NetworkGrads* s1,
    rnn::NetworkGrads* s2,
    const std::function<void(tensor::MatrixView, tensor::ConstMatrixView,
                             tensor::MatrixView, tensor::MatrixView)>& fn) {
  const auto& cfg = net.config();
  auto view_or_null = [](rnn::NetworkGrads* g, auto&& pick) {
    return g == nullptr ? tensor::MatrixView{} : pick(*g).view();
  };
  for (int dir = 0; dir < 2; ++dir) {
    for (int l = 0; l < cfg.num_layers; ++l) {
      auto& p = net.layer(dir, l);
      const auto& g = grads.layers[dir][static_cast<std::size_t>(l)];
      fn(p.w.view(), g.dw.cview(),
         view_or_null(s1, [&](rnn::NetworkGrads& x) -> tensor::Matrix& {
           return x.layers[dir][static_cast<std::size_t>(l)].dw;
         }),
         view_or_null(s2, [&](rnn::NetworkGrads& x) -> tensor::Matrix& {
           return x.layers[dir][static_cast<std::size_t>(l)].dw;
         }));
      fn(p.b.view(), g.db.cview(),
         view_or_null(s1, [&](rnn::NetworkGrads& x) -> tensor::Matrix& {
           return x.layers[dir][static_cast<std::size_t>(l)].db;
         }),
         view_or_null(s2, [&](rnn::NetworkGrads& x) -> tensor::Matrix& {
           return x.layers[dir][static_cast<std::size_t>(l)].db;
         }));
    }
  }
  fn(net.w_out.view(), grads.dw_out.cview(),
     view_or_null(s1,
                  [](rnn::NetworkGrads& x) -> tensor::Matrix& { return x.dw_out; }),
     view_or_null(s2, [](rnn::NetworkGrads& x) -> tensor::Matrix& {
       return x.dw_out;
     }));
  fn(net.b_out.view(), grads.db_out.cview(),
     view_or_null(s1,
                  [](rnn::NetworkGrads& x) -> tensor::Matrix& { return x.db_out; }),
     view_or_null(s2, [](rnn::NetworkGrads& x) -> tensor::Matrix& {
       return x.db_out;
     }));
}

void write_grads_state(std::ostream& os, const rnn::NetworkGrads& g) {
  for (const auto& dir : g.layers) {
    for (const auto& lg : dir) {
      tensor::write_matrix(os, lg.dw);
      tensor::write_matrix(os, lg.db);
    }
  }
  tensor::write_matrix(os, g.dw_out);
  tensor::write_matrix(os, g.db_out);
}

void read_grads_state(std::istream& is, rnn::NetworkGrads& g) {
  for (auto& dir : g.layers) {
    for (auto& lg : dir) {
      tensor::read_matrix(is, lg.dw);
      tensor::read_matrix(is, lg.db);
    }
  }
  tensor::read_matrix(is, g.dw_out);
  tensor::read_matrix(is, g.db_out);
}

}  // namespace

void Optimizer::save_state(std::ostream&) const {}
void Optimizer::load_state(std::istream&, const rnn::Network&) {}
void Optimizer::scale_learning_rate(float) {}

void Sgd::save_state(std::ostream& os) const {
  const char has_velocity = velocity_ ? 1 : 0;
  os.write(&has_velocity, 1);
  if (velocity_) write_grads_state(os, *velocity_);
}

void Sgd::load_state(std::istream& is, const rnn::Network& net) {
  char has_velocity = 0;
  is.read(&has_velocity, 1);
  BPAR_CHECK(is.good(), "truncated optimizer state");
  if (has_velocity != 0) {
    velocity_ = std::make_unique<rnn::NetworkGrads>();
    velocity_->init_like(net);
    read_grads_state(is, *velocity_);
  } else {
    velocity_.reset();
  }
}

void Adam::save_state(std::ostream& os) const {
  const char has_state = m_ ? 1 : 0;
  os.write(&has_state, 1);
  os.write(reinterpret_cast<const char*>(&step_count_), sizeof step_count_);
  if (m_) {
    write_grads_state(os, *m_);
    write_grads_state(os, *v_);
  }
}

void Adam::load_state(std::istream& is, const rnn::Network& net) {
  char has_state = 0;
  is.read(&has_state, 1);
  is.read(reinterpret_cast<char*>(&step_count_), sizeof step_count_);
  BPAR_CHECK(is.good(), "truncated optimizer state");
  if (has_state != 0) {
    m_ = std::make_unique<rnn::NetworkGrads>();
    v_ = std::make_unique<rnn::NetworkGrads>();
    m_->init_like(net);
    v_->init_like(net);
    read_grads_state(is, *m_);
    read_grads_state(is, *v_);
  } else {
    m_.reset();
    v_.reset();
  }
}

void Sgd::step(rnn::Network& net, const rnn::NetworkGrads& grads) {
  float scale = 1.0F;
  if (config_.clip_norm > 0.0F) {
    const double norm = grads.l2_norm();
    if (norm > config_.clip_norm) {
      scale = config_.clip_norm / static_cast<float>(norm);
    }
  }
  if (config_.momentum != 0.0F && !velocity_) {
    velocity_ = std::make_unique<rnn::NetworkGrads>();
    velocity_->init_like(net);
  }
  const float lr = config_.learning_rate;
  const float mu = config_.momentum;
  for_each_param(
      net, grads, velocity_.get(), nullptr,
      [lr, mu, scale](tensor::MatrixView p, tensor::ConstMatrixView g,
                      tensor::MatrixView v, tensor::MatrixView) {
        for (int r = 0; r < p.rows; ++r) {
          float* pr = p.row(r).data();
          const float* gr = g.row(r).data();
          if (mu != 0.0F) {
            float* vr = v.row(r).data();
            for (int c = 0; c < p.cols; ++c) {
              vr[c] = mu * vr[c] + scale * gr[c];
              pr[c] -= lr * vr[c];
            }
          } else {
            for (int c = 0; c < p.cols; ++c) pr[c] -= lr * scale * gr[c];
          }
        }
      });
}

void Adam::step(rnn::Network& net, const rnn::NetworkGrads& grads) {
  if (!m_) {
    m_ = std::make_unique<rnn::NetworkGrads>();
    v_ = std::make_unique<rnn::NetworkGrads>();
    m_->init_like(net);
    v_->init_like(net);
  }
  ++step_count_;
  const float b1 = config_.beta1;
  const float b2 = config_.beta2;
  const float bias1 =
      1.0F - std::pow(b1, static_cast<float>(step_count_));
  const float bias2 =
      1.0F - std::pow(b2, static_cast<float>(step_count_));
  const float lr = config_.learning_rate;
  const float eps = config_.epsilon;
  const float decay = config_.weight_decay;
  for_each_param(
      net, grads, m_.get(), v_.get(),
      [=](tensor::MatrixView p, tensor::ConstMatrixView g,
          tensor::MatrixView m, tensor::MatrixView v) {
        for (int r = 0; r < p.rows; ++r) {
          float* pr = p.row(r).data();
          const float* gr = g.row(r).data();
          float* mr = m.row(r).data();
          float* vr = v.row(r).data();
          for (int c = 0; c < p.cols; ++c) {
            mr[c] = b1 * mr[c] + (1.0F - b1) * gr[c];
            vr[c] = b2 * vr[c] + (1.0F - b2) * gr[c] * gr[c];
            const float mhat = mr[c] / bias1;
            const float vhat = vr[c] / bias2;
            // AdamW: decay applied to the weight directly, not the grad.
            pr[c] -= lr * (mhat / (std::sqrt(vhat) + eps) + decay * pr[c]);
          }
        }
      });
}

}  // namespace bpar::train
