// Epoch-level training loop over a dataset of batches.
#pragma once

#include <functional>
#include <vector>

#include "exec/executor.hpp"
#include "rnn/batch.hpp"
#include "train/optimizer.hpp"

namespace bpar::train {

struct EpochStats {
  double mean_loss = 0.0;
  double accuracy = 0.0;  // fraction of correct argmax predictions
  double wall_ms = 0.0;
};

/// Fraction of predictions matching labels (both in batch layout).
[[nodiscard]] double accuracy(std::span<const int> predictions,
                              std::span<const int> labels);

class Trainer {
 public:
  Trainer(rnn::Network& net, exec::Executor& executor, Optimizer& optimizer)
      : net_(net), executor_(executor), optimizer_(optimizer) {}

  /// Shuffle the batch order each epoch (deterministic per seed + epoch).
  void set_shuffle(bool shuffle, std::uint64_t seed = 1) {
    shuffle_ = shuffle;
    shuffle_seed_ = seed;
  }

  /// Trains one epoch over `batches`, applying the optimizer per batch.
  EpochStats train_epoch(const std::vector<rnn::BatchData>& batches);

  /// Evaluates loss/accuracy without weight updates.
  EpochStats evaluate(const std::vector<rnn::BatchData>& batches);

  [[nodiscard]] const std::vector<EpochStats>& history() const {
    return history_;
  }

 private:
  rnn::Network& net_;
  exec::Executor& executor_;
  Optimizer& optimizer_;
  std::vector<EpochStats> history_;
  bool shuffle_ = false;
  std::uint64_t shuffle_seed_ = 1;
};

}  // namespace bpar::train
