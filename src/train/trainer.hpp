// Epoch-level training loop over a dataset of batches, with numeric-health
// guards and bounded fault recovery.
//
// Recovery model: a batch "commits" only when its loss and gradients pass
// the finiteness checks — the optimizer step (the only weight mutation)
// runs strictly after validation. After every committed batch the trainer
// snapshots weights + optimizer state in memory; when a later batch fails
// (executor throws, or the numeric guards trip) it rolls back to that
// snapshot and retries. The first retry reuses the same learning rate, so a
// transient fault (e.g. an injected task throw) reproduces the fault-free
// trajectory bit-exactly; only repeated failures of the same batch back the
// learning rate off. When retries are exhausted the trainer optionally
// degrades to a fallback (typically sequential) executor before giving up.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exec/executor.hpp"
#include "rnn/batch.hpp"
#include "train/optimizer.hpp"

namespace bpar::train {

struct EpochStats {
  double mean_loss = 0.0;
  double accuracy = 0.0;  // fraction of correct argmax predictions
  double wall_ms = 0.0;
  int retries = 0;        // failed batch attempts that were retried
  int rollbacks = 0;      // snapshot restores performed
};

/// Fraction of predictions matching labels (both in batch layout).
[[nodiscard]] double accuracy(std::span<const int> predictions,
                              std::span<const int> labels);

struct TrainerOptions {
  /// Extra attempts per batch after the first failure. 0 disables recovery
  /// (and snapshotting): any failure propagates to the caller.
  int max_retries = 2;
  /// Learning-rate multiplier applied from the second consecutive failure
  /// of the same batch (the first retry stays bit-exact).
  float lr_backoff = 0.5F;
  /// Scan loss and gradients for NaN/Inf before the optimizer step.
  bool check_numerics = true;
  /// Global-norm gradient clip applied before the optimizer step (0 → off).
  /// Complements Sgd's built-in clip; Adam has none of its own.
  float clip_norm = 0.0F;
  /// Executor to degrade to once retries on the primary are exhausted
  /// (not owned; typically a SequentialExecutor). Null → no degradation.
  exec::Executor* fallback = nullptr;
  /// Invoke on_checkpoint every this many committed batches (0 → never).
  std::uint64_t checkpoint_every = 0;
  std::function<void(std::uint64_t step)> on_checkpoint;
};

class Trainer {
 public:
  Trainer(rnn::Network& net, exec::Executor& executor, Optimizer& optimizer,
          TrainerOptions options = {})
      : net_(net), executor_(executor), optimizer_(optimizer),
        options_(std::move(options)) {}

  /// Shuffle the batch order each epoch (deterministic per seed + epoch).
  void set_shuffle(bool shuffle, std::uint64_t seed = 1) {
    shuffle_ = shuffle;
    shuffle_seed_ = seed;
  }

  /// Trains one epoch over `batches`, applying the optimizer per batch.
  /// Throws util::Error when a batch keeps failing after all retries and
  /// (if configured) the fallback executor also fails.
  EpochStats train_epoch(const std::vector<rnn::BatchData>& batches);

  /// Evaluates loss/accuracy without weight updates.
  EpochStats evaluate(const std::vector<rnn::BatchData>& batches);

  [[nodiscard]] const std::vector<EpochStats>& history() const {
    return history_;
  }

  /// Committed (successful) batch count across all epochs.
  [[nodiscard]] std::uint64_t global_step() const { return global_step_; }
  /// True once the trainer has switched to the fallback executor.
  [[nodiscard]] bool degraded() const { return degraded_; }

 private:
  [[nodiscard]] exec::Executor& active_executor() {
    return degraded_ ? *options_.fallback : executor_;
  }
  void take_snapshot();
  void restore_snapshot();

  rnn::Network& net_;
  exec::Executor& executor_;
  Optimizer& optimizer_;
  TrainerOptions options_;
  std::vector<EpochStats> history_;
  bool shuffle_ = false;
  std::uint64_t shuffle_seed_ = 1;
  std::uint64_t global_step_ = 0;
  bool degraded_ = false;
  // In-memory rollback point: weights + optimizer state after the last
  // committed batch (empty until the first commit or when recovery is off).
  std::string snapshot_net_;
  std::string snapshot_opt_;
  bool snapshot_valid_ = false;
};

}  // namespace bpar::train
