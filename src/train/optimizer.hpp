// Optimizers applying reduced gradients to a Network's weights.
//
// The weight update runs after the batch graph drains (its time is part of
// the paper's per-batch training time). Updates are deterministic and
// identical regardless of which executor produced the gradients.
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "rnn/network.hpp"

namespace bpar::train {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// net -= update(grads). Gradients are whole-batch means.
  virtual void step(rnn::Network& net, const rnn::NetworkGrads& grads) = 0;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Serialize internal state (momentum/moment buffers, step count) so a
  /// checkpointed training run resumes bit-exactly. Default: stateless.
  virtual void save_state(std::ostream& os) const;
  virtual void load_state(std::istream& is, const rnn::Network& net);

  /// Learning-rate backoff hook for the trainer's divergence recovery:
  /// multiplies the current learning rate by `s`. Default: no-op (an
  /// optimizer without a rate ignores backoff).
  virtual void scale_learning_rate(float s);
  /// Current learning rate, 0 when the optimizer has none.
  [[nodiscard]] virtual float learning_rate() const { return 0.0F; }
};

/// Plain SGD with optional momentum and gradient clipping.
class Sgd final : public Optimizer {
 public:
  struct Config {
    float learning_rate = 0.05F;
    float momentum = 0.0F;      // 0 → vanilla SGD
    float clip_norm = 0.0F;     // 0 → no clipping
  };
  explicit Sgd(Config config) : config_(config) {}

  void step(rnn::Network& net, const rnn::NetworkGrads& grads) override;
  [[nodiscard]] const char* name() const override { return "sgd"; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is, const rnn::Network& net) override;
  void scale_learning_rate(float s) override { config_.learning_rate *= s; }
  [[nodiscard]] float learning_rate() const override {
    return config_.learning_rate;
  }

 private:
  Config config_;
  std::unique_ptr<rnn::NetworkGrads> velocity_;  // lazily initialized
};

/// Adam (Kingma & Ba) with bias correction; weight_decay > 0 turns it into
/// AdamW (decoupled weight decay, Loshchilov & Hutter).
class Adam final : public Optimizer {
 public:
  struct Config {
    float learning_rate = 1e-3F;
    float beta1 = 0.9F;
    float beta2 = 0.999F;
    float epsilon = 1e-8F;
    float weight_decay = 0.0F;  // decoupled (AdamW) when non-zero
  };
  explicit Adam(Config config) : config_(config) {}

  void step(rnn::Network& net, const rnn::NetworkGrads& grads) override;
  [[nodiscard]] const char* name() const override {
    return config_.weight_decay > 0.0F ? "adamw" : "adam";
  }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is, const rnn::Network& net) override;
  void scale_learning_rate(float s) override { config_.learning_rate *= s; }
  [[nodiscard]] float learning_rate() const override {
    return config_.learning_rate;
  }

 private:
  Config config_;
  std::unique_ptr<rnn::NetworkGrads> m_;
  std::unique_ptr<rnn::NetworkGrads> v_;
  long step_count_ = 0;
};

}  // namespace bpar::train
