// LSTM and GRU cell kernels — forward update and BPTT backward.
//
// Each call updates one cell (one layer, one direction, one timestep) for a
// whole (mini-)batch: exactly the unit of work B-Par encapsulates in one
// task (paper §III-A, "B-Par maps all computations corresponding to an RNN
// cell into a single sequential task"). The kernels are purely sequential;
// all parallelism lives in the executor layer.
//
// Shapes (B = batch, H = hidden, N = layer input width, G = gate count):
//   x       B x N      layer input at this timestep
//   h_prev  B x H      recurrent state from the previous timestep
//   c_prev  B x H      LSTM cell state from the previous timestep
//   gates   B x G*H    fused gate buffer (activated in place)
//
// Gate block order matches LayerParams: LSTM [f, i, g, o], GRU [z, r, h̄].
#pragma once

#include "rnn/layer_params.hpp"
#include "tensor/tensor.hpp"

namespace bpar::kernels {
class QuantizedMatrix;
}

namespace bpar::rnn {

/// Mutable views over a cell's forward-state buffers. Row-sliceable, so the
/// intra-op-parallel baseline executors can split one cell's batch rows
/// across workers (the per-row computations are independent).
struct CellTapeViews {
  tensor::MatrixView gates;
  tensor::MatrixView h;
  tensor::MatrixView c;
  tensor::MatrixView tanh_c;
  tensor::MatrixView rh;
};

struct ConstCellTapeViews {
  tensor::ConstMatrixView gates;
  tensor::ConstMatrixView h;
  tensor::ConstMatrixView c;
  tensor::ConstMatrixView tanh_c;
  tensor::ConstMatrixView rh;
};

/// Per-cell forward state retained for the backward pass.
struct CellTape {
  tensor::Matrix gates;   // B x G*H, activated gate values
  tensor::Matrix h;       // B x H, cell output
  tensor::Matrix c;       // B x H, LSTM cell state
  tensor::Matrix tanh_c;  // B x H, tanh(c) (LSTM)
  tensor::Matrix rh;      // B x H, r ⊙ h_prev (GRU)

  void init(CellType cell, int batch, int hidden);
  [[nodiscard]] std::size_t bytes() const;
  [[nodiscard]] CellTapeViews views();
  /// Views restricted to batch rows [row0, row0 + nrows).
  [[nodiscard]] CellTapeViews views_rows(int row0, int nrows);
  [[nodiscard]] ConstCellTapeViews cviews() const;
};

/// Optimizer-pass rewrites of the forward path (graph/passes, DESIGN §5k).
struct CellForwardOpts {
  /// GRU: one 3H-wide input-side GEMM across z, r and h̄ instead of two
  /// (the LSTM input GEMM is already a single 4H-wide launch).
  bool fuse_gates = false;
  /// Non-empty → x·Wx^T was precomputed sequence-wide; this view holds this
  /// timestep's B x G*H rows and `x` may be {}. The recurrent GEMMs then
  /// accumulate on top with beta=1 — the same order as the unfused path,
  /// so results stay bit-exact.
  tensor::ConstMatrixView precomp;
};

/// Forward update of one cell. For GRU, `c_prev` is ignored (pass {}).
void cell_forward(const LayerParams& p, tensor::ConstMatrixView x,
                  tensor::ConstMatrixView h_prev,
                  tensor::ConstMatrixView c_prev, const CellTapeViews& tape);

/// Forward update with pass options; a non-null `qw` routes every gate GEMM
/// through the int8 path (inference only — see rnn/quantized.hpp).
void cell_forward_ex(const LayerParams& p, const kernels::QuantizedMatrix* qw,
                     tensor::ConstMatrixView x,
                     tensor::ConstMatrixView h_prev,
                     tensor::ConstMatrixView c_prev, const CellTapeViews& tape,
                     const CellForwardOpts& opts);

/// Convenience overload writing a whole owned tape.
inline void cell_forward(const LayerParams& p, tensor::ConstMatrixView x,
                         tensor::ConstMatrixView h_prev,
                         tensor::ConstMatrixView c_prev, CellTape& tape) {
  cell_forward(p, x, h_prev, c_prev, tape.views());
}

/// BPTT backward of one cell.
///
///   dh_total     B x H  — ∂L/∂h_t accumulated from all consumers
///   dc_in        B x H  — ∂L/∂c_t from timestep t+1 (LSTM; {} at the last
///                         timestep or for GRU)
///   dx_acc       B x N  — += ∂L/∂x_t ({} to skip — layer 0 needs no input
///                         gradient)
///   dh_prev_acc  B x H  — += ∂L/∂h_{t-1}
///   dc_prev_out  B x H  — =  ∂L/∂c_{t-1} (LSTM only; {} for GRU)
///   grads               — += weight/bias gradients (shared per layer, so
///                         calls for the same layer must be serialized —
///                         B-Par does this with an inout dependency)
void cell_backward(const LayerParams& p, tensor::ConstMatrixView x,
                   tensor::ConstMatrixView h_prev,
                   tensor::ConstMatrixView c_prev,
                   const ConstCellTapeViews& tape,
                   tensor::ConstMatrixView dh_total,
                   tensor::ConstMatrixView dc_in, tensor::MatrixView dx_acc,
                   tensor::MatrixView dh_prev_acc,
                   tensor::MatrixView dc_prev_out, LayerGrads& grads);

inline void cell_backward(const LayerParams& p, tensor::ConstMatrixView x,
                          tensor::ConstMatrixView h_prev,
                          tensor::ConstMatrixView c_prev, const CellTape& tape,
                          tensor::ConstMatrixView dh_total,
                          tensor::ConstMatrixView dc_in,
                          tensor::MatrixView dx_acc,
                          tensor::MatrixView dh_prev_acc,
                          tensor::MatrixView dc_prev_out, LayerGrads& grads) {
  cell_backward(p, x, h_prev, c_prev, tape.cviews(), dh_total, dc_in, dx_acc,
                dh_prev_acc, dc_prev_out, grads);
}

}  // namespace bpar::rnn
