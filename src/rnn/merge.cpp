#include "rnn/merge.hpp"

#include "kernels/elementwise.hpp"
#include "util/check.hpp"

namespace bpar::rnn {

using tensor::ConstMatrixView;
using tensor::MatrixView;

void merge_forward(MergeOp op, ConstMatrixView h_fwd, ConstMatrixView h_rev,
                   MatrixView y) {
  BPAR_CHECK(h_fwd.rows == h_rev.rows && h_fwd.cols == h_rev.cols,
             "merge input shape mismatch");
  BPAR_CHECK(y.rows == h_fwd.rows &&
                 y.cols == merge_output_size(op, h_fwd.cols),
             "merge output shape mismatch");
  switch (op) {
    case MergeOp::kConcat:
      tensor::copy(h_fwd, y.block(0, 0, y.rows, h_fwd.cols));
      tensor::copy(h_rev, y.block(0, h_fwd.cols, y.rows, h_rev.cols));
      break;
    case MergeOp::kSum:
      kernels::add(h_fwd, h_rev, y);
      break;
    case MergeOp::kAverage:
      kernels::average(h_fwd, h_rev, y);
      break;
    case MergeOp::kMul:
      kernels::multiply(h_fwd, h_rev, y);
      break;
  }
}

void merge_backward(MergeOp op, ConstMatrixView h_fwd, ConstMatrixView h_rev,
                    ConstMatrixView dy, MatrixView dh_fwd_acc,
                    MatrixView dh_rev_acc) {
  BPAR_CHECK(dy.cols == merge_output_size(op, h_fwd.cols),
             "merge grad shape mismatch");
  const int h = h_fwd.cols;
  switch (op) {
    case MergeOp::kConcat:
      kernels::accumulate(dh_fwd_acc, dy.block(0, 0, dy.rows, h));
      kernels::accumulate(dh_rev_acc, dy.block(0, h, dy.rows, h));
      break;
    case MergeOp::kSum:
      kernels::accumulate(dh_fwd_acc, dy);
      kernels::accumulate(dh_rev_acc, dy);
      break;
    case MergeOp::kAverage:
      for (int r = 0; r < dy.rows; ++r) {
        kernels::axpy(0.5F, dy.row(r), dh_fwd_acc.row(r));
        kernels::axpy(0.5F, dy.row(r), dh_rev_acc.row(r));
      }
      break;
    case MergeOp::kMul:
      for (int r = 0; r < dy.rows; ++r) {
        kernels::hadamard_acc(dy.row(r), h_rev.row(r), dh_fwd_acc.row(r));
        kernels::hadamard_acc(dy.row(r), h_fwd.row(r), dh_rev_acc.row(r));
      }
      break;
  }
}

}  // namespace bpar::rnn
