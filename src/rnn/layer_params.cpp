#include "rnn/layer_params.hpp"

#include <cmath>

#include "kernels/elementwise.hpp"

namespace bpar::rnn {

void LayerParams::init_shape(CellType cell_type, int input, int hidden) {
  BPAR_CHECK(input > 0 && hidden > 0, "bad layer shape ", input, "/", hidden);
  cell = cell_type;
  input_size = input;
  hidden_size = hidden;
}

void LayerParams::init(CellType cell_type, int input, int hidden,
                       util::Rng& rng) {
  init_shape(cell_type, input, hidden);
  const int rows = gates() * hidden;
  w.resize(rows, input + hidden);
  b.resize(1, rows);
  // Xavier-style uniform init over fan-in.
  const float scale =
      1.0F / std::sqrt(static_cast<float>(input + hidden));
  tensor::fill_weights(w.view(), rng, scale);
  b.zero();
  if (cell == CellType::kLstm) {
    // Forget-gate bias of 1.0 — the standard trick for stable training.
    auto bias = b.view();
    for (int j = 0; j < hidden; ++j) bias.at(0, j) = 1.0F;
  }
}

void LayerGrads::init_like(const LayerParams& params) {
  dw.resize(params.w.rows(), params.w.cols());
  db.resize(params.b.rows(), params.b.cols());
}

void LayerGrads::zero() {
  dw.zero();
  db.zero();
}

void LayerGrads::accumulate(const LayerGrads& other) {
  kernels::accumulate(dw.view(), other.dw.cview());
  kernels::accumulate(db.view(), other.db.cview());
}

}  // namespace bpar::rnn
