#include "rnn/network.hpp"

#include <cmath>
#include <istream>
#include <ostream>

#include "kernels/elementwise.hpp"
#include "util/check.hpp"

namespace bpar::rnn {

void NetworkConfig::validate() const {
  BPAR_CHECK(input_size > 0, "input_size must be positive");
  BPAR_CHECK(hidden_size > 0, "hidden_size must be positive");
  BPAR_CHECK(num_layers > 0, "num_layers must be positive");
  BPAR_CHECK(seq_length > 0, "seq_length must be positive");
  BPAR_CHECK(batch_size > 0, "batch_size must be positive");
  BPAR_CHECK(num_classes > 0, "num_classes must be positive");
}

Network::Network(const NetworkConfig& config, bool allocate_weights)
    : config_(config) {
  config_.validate();
  util::Rng rng(config_.seed);
  for (int dir = 0; dir < 2; ++dir) {
    params_[dir].resize(static_cast<std::size_t>(config_.num_layers));
    for (int l = 0; l < config_.num_layers; ++l) {
      auto& p = params_[dir][static_cast<std::size_t>(l)];
      if (allocate_weights) {
        p.init(config_.cell, config_.layer_input_size(l), config_.hidden_size,
               rng);
      } else {
        p.init_shape(config_.cell, config_.layer_input_size(l),
                     config_.hidden_size);
      }
    }
  }
  if (!allocate_weights) return;
  w_out.resize(config_.num_classes, config_.merged_size());
  b_out.resize(1, config_.num_classes);
  const float scale =
      1.0F / std::sqrt(static_cast<float>(config_.merged_size()));
  tensor::fill_weights(w_out.view(), rng, scale);
}

LayerParams& Network::layer(int dir, int l) {
  BPAR_CHECK(dir == 0 || dir == 1, "bad direction ", dir);
  BPAR_CHECK(l >= 0 && l < config_.num_layers, "bad layer ", l);
  return params_[dir][static_cast<std::size_t>(l)];
}

const LayerParams& Network::layer(int dir, int l) const {
  return const_cast<Network*>(this)->layer(dir, l);
}

std::size_t Network::param_count() const {
  // Computed from shapes so it also works for shape-only networks.
  std::size_t count =
      static_cast<std::size_t>(config_.num_classes) *
      (static_cast<std::size_t>(config_.merged_size()) + 1U);
  for (int dir = 0; dir < 2; ++dir) {
    for (const auto& p : params_[dir]) count += p.param_count();
  }
  return count;
}

using tensor::read_matrix;
using tensor::write_matrix;

void Network::save(std::ostream& os) const {
  static constexpr char kMagic[8] = {'B', 'P', 'A', 'R', 'N', 'E', 'T', '1'};
  os.write(kMagic, sizeof kMagic);
  for (int dir = 0; dir < 2; ++dir) {
    for (const auto& p : params_[dir]) {
      write_matrix(os, p.w);
      write_matrix(os, p.b);
    }
  }
  write_matrix(os, w_out);
  write_matrix(os, b_out);
}

void Network::load(std::istream& is) {
  char magic[8] = {};
  is.read(magic, sizeof magic);
  BPAR_CHECK(is.good() && std::string_view(magic, 8) == "BPARNET1",
             "not a B-Par weight file");
  for (int dir = 0; dir < 2; ++dir) {
    for (auto& p : params_[dir]) {
      read_matrix(is, p.w);
      read_matrix(is, p.b);
    }
  }
  read_matrix(is, w_out);
  read_matrix(is, b_out);
}

void NetworkGrads::init_like(const Network& net) {
  const auto& cfg = net.config();
  for (int dir = 0; dir < 2; ++dir) {
    layers[dir].resize(static_cast<std::size_t>(cfg.num_layers));
    for (int l = 0; l < cfg.num_layers; ++l) {
      layers[dir][static_cast<std::size_t>(l)].init_like(net.layer(dir, l));
    }
  }
  dw_out.resize(net.w_out.rows(), net.w_out.cols());
  db_out.resize(net.b_out.rows(), net.b_out.cols());
}

void NetworkGrads::zero() {
  for (auto& dir : layers) {
    for (auto& g : dir) g.zero();
  }
  dw_out.zero();
  db_out.zero();
}

void NetworkGrads::accumulate(const NetworkGrads& other) {
  for (int dir = 0; dir < 2; ++dir) {
    BPAR_CHECK(layers[dir].size() == other.layers[dir].size(),
               "grad layer count mismatch");
    for (std::size_t l = 0; l < layers[dir].size(); ++l) {
      layers[dir][l].accumulate(other.layers[dir][l]);
    }
  }
  kernels::accumulate(dw_out.view(), other.dw_out.cview());
  kernels::accumulate(db_out.view(), other.db_out.cview());
}

void NetworkGrads::scale(float s) {
  for (auto& dir : layers) {
    for (auto& g : dir) {
      for (int r = 0; r < g.dw.rows(); ++r) {
        kernels::scale_inplace(g.dw.view().row(r), s);
      }
      kernels::scale_inplace(g.db.view().row(0), s);
    }
  }
  for (int r = 0; r < dw_out.rows(); ++r) {
    kernels::scale_inplace(dw_out.view().row(r), s);
  }
  kernels::scale_inplace(db_out.view().row(0), s);
}

bool NetworkGrads::all_finite() const {
  for (const auto& dir : layers) {
    for (const auto& g : dir) {
      if (!kernels::all_finite(g.dw.cview()) ||
          !kernels::all_finite(g.db.cview())) {
        return false;
      }
    }
  }
  return kernels::all_finite(dw_out.cview()) &&
         kernels::all_finite(db_out.cview());
}

double NetworkGrads::l2_norm() const {
  double acc = 0.0;
  auto add_sq = [&acc](const tensor::Matrix& m) {
    const double n = tensor::l2_norm(m.cview());
    acc += n * n;
  };
  for (const auto& dir : layers) {
    for (const auto& g : dir) {
      add_sq(g.dw);
      add_sq(g.db);
    }
  }
  add_sq(dw_out);
  add_sq(db_out);
  return std::sqrt(acc);
}

Workspace::Workspace(const NetworkConfig& config, int batch,
                     bool alloc_input_grads)
    : config_(config), batch_(batch) {
  BPAR_CHECK(batch > 0, "batch must be positive");
  const int layers = config_.num_layers;
  const int steps = config_.seq_length;
  const int hidden = config_.hidden_size;
  const int merged_width = config_.merged_size();
  const bool lstm = config_.cell == CellType::kLstm;

  for (int dir = 0; dir < 2; ++dir) {
    tapes_[dir].resize(static_cast<std::size_t>(layers * steps));
    dh_[dir].resize(static_cast<std::size_t>(layers * steps));
    if (lstm) dc_[dir].resize(static_cast<std::size_t>(layers * steps));
    for (int l = 0; l < layers; ++l) {
      for (int s = 0; s < steps; ++s) {
        const auto idx = static_cast<std::size_t>(l * steps + s);
        tapes_[dir][idx].init(config_.cell, batch, hidden);
        dh_[dir][idx].resize(batch, hidden);
        if (lstm) dc_[dir][idx].resize(batch, hidden);
      }
    }
  }

  const int n_merged_layers = merged_layers();
  merged_.resize(static_cast<std::size_t>(n_merged_layers * steps));
  for (auto& m : merged_) m.resize(batch, merged_width);
  for (auto& dir : dmerged_) {
    dir.resize(merged_.size());
    for (auto& m : dir) m.resize(batch, merged_width);
  }

  if (!config_.many_to_many) {
    final_merged.resize(batch, merged_width);
    dfinal.resize(batch, merged_width);
  }

  const int outputs = num_outputs();
  logits_.resize(static_cast<std::size_t>(outputs));
  probs_.resize(static_cast<std::size_t>(outputs));
  dlogits_.resize(static_cast<std::size_t>(outputs));
  for (int t = 0; t < outputs; ++t) {
    logits_[static_cast<std::size_t>(t)].resize(batch, config_.num_classes);
    probs_[static_cast<std::size_t>(t)].resize(batch, config_.num_classes);
    dlogits_[static_cast<std::size_t>(t)].resize(batch, config_.num_classes);
  }

  zero_state.resize(batch, hidden);
  for (int dir = 0; dir < 2; ++dir) {
    sinks_[dir].resize(static_cast<std::size_t>(layers));
    for (auto& m : sinks_[dir]) m.resize(batch, hidden);
  }

  if (alloc_input_grads) {
    for (auto& dir : dx_) {
      dir.resize(static_cast<std::size_t>(steps));
      for (auto& m : dir) m.resize(batch, config_.input_size);
    }
  }
}

tensor::Matrix& Workspace::dx(int src_dir, int t) {
  BPAR_DCHECK(src_dir == 0 || src_dir == 1);
  BPAR_CHECK(has_input_grads(), "workspace built without input grads");
  BPAR_DCHECK(t >= 0 && t < config_.seq_length);
  return dx_[src_dir][static_cast<std::size_t>(t)];
}

void Workspace::input_grad(int t, tensor::MatrixView out) const {
  auto& self = const_cast<Workspace&>(*this);
  kernels::add(self.dx(0, t).cview(), self.dx(1, t).cview(), out);
}

tensor::Matrix& Workspace::sink(int dir, int l) {
  BPAR_DCHECK(dir == 0 || dir == 1);
  BPAR_DCHECK(l >= 0 && l < config_.num_layers);
  return sinks_[dir][static_cast<std::size_t>(l)];
}

CellTape& Workspace::tape(int dir, int l, int step) {
  BPAR_DCHECK(dir == 0 || dir == 1);
  BPAR_DCHECK(l >= 0 && l < config_.num_layers);
  BPAR_DCHECK(step >= 0 && step < config_.seq_length);
  return tapes_[dir][static_cast<std::size_t>(l * config_.seq_length + step)];
}

const CellTape& Workspace::tape(int dir, int l, int step) const {
  return const_cast<Workspace*>(this)->tape(dir, l, step);
}

tensor::Matrix& Workspace::merged(int l, int t) {
  BPAR_DCHECK(l >= 0 && l < merged_layers());
  BPAR_DCHECK(t >= 0 && t < config_.seq_length);
  return merged_[static_cast<std::size_t>(l * config_.seq_length + t)];
}

tensor::Matrix& Workspace::logits(int t) {
  return logits_[static_cast<std::size_t>(t)];
}
tensor::Matrix& Workspace::probs(int t) {
  return probs_[static_cast<std::size_t>(t)];
}
tensor::Matrix& Workspace::dlogits(int t) {
  return dlogits_[static_cast<std::size_t>(t)];
}

tensor::Matrix& Workspace::dh(int dir, int l, int step) {
  return dh_[dir][static_cast<std::size_t>(l * config_.seq_length + step)];
}

tensor::Matrix& Workspace::dc(int dir, int l, int step) {
  BPAR_DCHECK(config_.cell == CellType::kLstm);
  return dc_[dir][static_cast<std::size_t>(l * config_.seq_length + step)];
}

tensor::Matrix& Workspace::dmerged(int src_dir, int l, int t) {
  BPAR_DCHECK(src_dir == 0 || src_dir == 1);
  BPAR_DCHECK(l >= 0 && l < merged_layers());
  return dmerged_[src_dir]
                 [static_cast<std::size_t>(l * config_.seq_length + t)];
}

void Workspace::zero_backward() {
  for (int dir = 0; dir < 2; ++dir) {
    for (auto& m : dh_[dir]) m.zero();
    for (auto& m : dc_[dir]) m.zero();
    for (auto& m : dmerged_[dir]) m.zero();
    for (auto& m : dx_[dir]) m.zero();
  }
  if (dfinal.count() != 0) dfinal.zero();
  for (auto& m : dlogits_) m.zero();
}

std::size_t Workspace::tape_bytes(int dir, int l, int step) const {
  return tape(dir, l, step).bytes();
}

}  // namespace bpar::rnn
