// A batch of sequence data plus labels.
//
// Layout: x[t] is the (B x input_size) slice of all sequences at timestep
// t. Labels are one per sequence for many-to-one models (size B) and one
// per (timestep, sequence) for many-to-many (size T*B, index t*B + b).
#pragma once

#include <span>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/check.hpp"

namespace bpar::rnn {

struct BatchData {
  std::vector<tensor::Matrix> x;  // [T] matrices of shape B x input_size
  std::vector<int> labels;

  [[nodiscard]] int steps() const { return static_cast<int>(x.size()); }
  [[nodiscard]] int batch() const { return x.empty() ? 0 : x[0].rows(); }
  [[nodiscard]] int input_size() const { return x.empty() ? 0 : x[0].cols(); }

  [[nodiscard]] bool many_to_many() const {
    return static_cast<int>(labels.size()) == steps() * batch();
  }

  /// Labels for output timestep `t` (t = 0 for many-to-one).
  [[nodiscard]] std::span<const int> labels_at(int t) const {
    if (!many_to_many()) {
      BPAR_DCHECK(t == 0);
      return labels;
    }
    return std::span<const int>(labels).subspan(
        static_cast<std::size_t>(t) * batch(), static_cast<std::size_t>(batch()));
  }

  void validate(int expected_input, int expected_steps) const {
    BPAR_CHECK(steps() == expected_steps, "batch has ", steps(),
               " steps, model expects ", expected_steps);
    BPAR_CHECK(input_size() == expected_input, "batch input width ",
               input_size(), ", model expects ", expected_input);
    for (const auto& m : x) {
      BPAR_CHECK(m.rows() == batch() && m.cols() == input_size(),
                 "ragged batch");
    }
    BPAR_CHECK(static_cast<int>(labels.size()) == batch() ||
                   static_cast<int>(labels.size()) == steps() * batch(),
               "label count ", labels.size(), " matches neither B nor T*B");
  }
};

}  // namespace bpar::rnn
