#include "rnn/cell_kernels.hpp"

#include <cmath>

#include "kernels/elementwise.hpp"
#include "kernels/quant.hpp"
#include "obs/trace.hpp"
#include "kernels/gemm.hpp"
#include "rnn/quantized.hpp"
#include "util/check.hpp"

namespace bpar::rnn {

using kernels::gemm_nn;
using kernels::gemm_nt;
using kernels::gemm_tn;
using tensor::ConstMatrixView;
using tensor::Matrix;
using tensor::MatrixView;

void CellTape::init(CellType cell, int batch, int hidden) {
  gates.resize(batch, gate_count(cell) * hidden);
  h.resize(batch, hidden);
  if (cell == CellType::kLstm) {
    c.resize(batch, hidden);
    tanh_c.resize(batch, hidden);
  } else {
    rh.resize(batch, hidden);
  }
}

std::size_t CellTape::bytes() const {
  return (gates.count() + h.count() + c.count() + tanh_c.count() +
          rh.count()) *
         sizeof(float);
}

CellTapeViews CellTape::views() {
  return {gates.view(), h.view(), c.view(), tanh_c.view(), rh.view()};
}

CellTapeViews CellTape::views_rows(int row0, int nrows) {
  auto slice = [&](Matrix& m) -> MatrixView {
    if (m.count() == 0) return {};
    return m.view().block(row0, 0, nrows, m.cols());
  };
  return {slice(gates), slice(h), slice(c), slice(tanh_c), slice(rh)};
}

ConstCellTapeViews CellTape::cviews() const {
  return {gates.cview(), h.cview(), c.cview(), tanh_c.cview(), rh.cview()};
}

namespace {

/// Everything after the gate GEMMs: bias add, activations, state update.
/// Shared by the fp32 and int8 forward paths — `tape.gates` must already
/// hold x * Wx^T + h_prev * Wh^T (pre-bias, pre-activation).
void lstm_pointwise(const LayerParams& p, ConstMatrixView c_prev,
                    const CellTapeViews& tape) {
  const int batch = tape.gates.rows;
  const int hidden = p.hidden_size;
  MatrixView gates = tape.gates;
  kernels::add_bias_rows(gates, p.b.cview().row(0));

  BPAR_SPAN("rnn.lstm_pointwise");
  for (int r = 0; r < batch; ++r) {
    float* g = gates.row(r).data();
    // f, i: sigmoid; g: tanh; o: sigmoid.
    kernels::sigmoid_inplace({g, static_cast<std::size_t>(2 * hidden)});
    kernels::tanh_inplace({g + 2 * hidden, static_cast<std::size_t>(hidden)});
    kernels::sigmoid_inplace(
        {g + 3 * hidden, static_cast<std::size_t>(hidden)});

    const float* f = g;
    const float* i = g + hidden;
    const float* gbar = g + 2 * hidden;
    const float* o = g + 3 * hidden;
    const float* cp = c_prev.row(r).data();
    float* c = tape.c.row(r).data();
    float* tc = tape.tanh_c.row(r).data();
    float* h = tape.h.row(r).data();
    for (int j = 0; j < hidden; ++j) {
      c[j] = f[j] * cp[j] + i[j] * gbar[j];
      tc[j] = std::tanh(c[j]);
      h[j] = o[j] * tc[j];
    }
  }
}

void lstm_forward(const LayerParams& p, const kernels::QuantizedMatrix* qw,
                  ConstMatrixView x, ConstMatrixView h_prev,
                  ConstMatrixView c_prev, const CellTapeViews& tape,
                  const CellForwardOpts& o) {
  // gates = x * Wx^T + h_prev * Wh^T (+ b inside the pointwise stage).
  // The input half may come precomputed sequence-wide; the recurrent GEMM
  // then accumulates on top (beta=1) in the same order as the plain path.
  if (o.precomp.data != nullptr) {
    tensor::copy(o.precomp, tape.gates);
  } else if (qw != nullptr) {
    kernels::qgemm_nt(x, qw->view().block(0, 0, qw->rows(), p.input_size),
                      tape.gates);
  } else {
    gemm_nt(x, p.w_input(), tape.gates);
  }
  if (qw != nullptr) {
    kernels::qgemm_nt(
        h_prev, qw->view().block(0, p.input_size, qw->rows(), p.hidden_size),
        tape.gates, 1.0F);
  } else {
    gemm_nt(h_prev, p.w_recurrent(), tape.gates, 1.0F, 1.0F);
  }
  lstm_pointwise(p, c_prev, tape);
}

/// Bias + sigmoid over the fused z,r block, then rh = r ⊙ h_prev. Shared by
/// the fp32 and int8 paths; the z,r GEMMs must have run already.
void gru_zr_pointwise(const LayerParams& p, ConstMatrixView h_prev,
                      const CellTapeViews& tape) {
  const int batch = tape.gates.rows;
  const int hidden = p.hidden_size;
  MatrixView gates = tape.gates;
  MatrixView zr = gates.block(0, 0, batch, 2 * hidden);
  for (int r = 0; r < batch; ++r) {
    kernels::add_inplace(zr.row(r),
                         p.b.cview().row(0).subspan(0, 2 * hidden));
    kernels::sigmoid_inplace(zr.row(r));
  }

  // rh = r ⊙ h_prev, then the candidate block uses rh as recurrent input.
  for (int r = 0; r < batch; ++r) {
    const float* rr = gates.row(r).data() + hidden;
    kernels::hadamard({rr, static_cast<std::size_t>(hidden)}, h_prev.row(r),
                      tape.rh.row(r));
  }
}

/// Bias + tanh over the candidate block, then h = z⊙h̄ + (1-z)⊙h_prev
/// (Eq. 10). Shared by the fp32 and int8 paths.
void gru_hbar_pointwise(const LayerParams& p, ConstMatrixView h_prev,
                        const CellTapeViews& tape) {
  const int batch = tape.gates.rows;
  const int hidden = p.hidden_size;
  MatrixView gates = tape.gates;
  MatrixView hbar = gates.block(0, 2 * hidden, batch, hidden);
  for (int r = 0; r < batch; ++r) {
    kernels::add_inplace(hbar.row(r),
                         p.b.cview().row(0).subspan(2 * hidden));
    kernels::tanh_inplace(hbar.row(r));
  }

  BPAR_SPAN("rnn.gru_pointwise");
  for (int r = 0; r < batch; ++r) {
    const float* g = gates.row(r).data();
    const float* z = g;
    const float* hb = g + 2 * hidden;
    const float* hp = h_prev.row(r).data();
    float* h = tape.h.row(r).data();
    for (int j = 0; j < hidden; ++j) {
      h[j] = z[j] * hb[j] + (1.0F - z[j]) * hp[j];
    }
  }
}

void gru_forward(const LayerParams& p, const kernels::QuantizedMatrix* qw,
                 ConstMatrixView x, ConstMatrixView h_prev,
                 const CellTapeViews& tape, const CellForwardOpts& o) {
  const int batch = tape.gates.rows;
  const int hidden = p.hidden_size;
  MatrixView gates = tape.gates;
  MatrixView zr = gates.block(0, 0, batch, 2 * hidden);
  MatrixView hbar = gates.block(0, 2 * hidden, batch, hidden);

  // Input-side contribution. The gate-fusion pass computes all three gate
  // blocks with one 3H-wide GEMM; writing the candidate block before the
  // z,r pointwise stage is value-identical — the blocks are disjoint and
  // each output element's dot product is unchanged.
  const bool input_done =
      o.precomp.data != nullptr || o.fuse_gates;
  if (o.precomp.data != nullptr) {
    tensor::copy(o.precomp, gates);
  } else if (o.fuse_gates) {
    if (qw != nullptr) {
      kernels::qgemm_nt(x, qw->view().block(0, 0, 3 * hidden, p.input_size),
                        gates);
    } else {
      gemm_nt(x, p.w_input(), gates);
    }
  } else if (qw != nullptr) {
    kernels::qgemm_nt(x, qw->view().block(0, 0, 2 * hidden, p.input_size),
                      zr);
  } else {
    gemm_nt(x, p.w.cview().block(0, 0, 2 * hidden, p.input_size), zr);
  }

  // z, r recurrent half, then their pointwise stage (also builds rh).
  if (qw != nullptr) {
    kernels::qgemm_nt(h_prev,
                      qw->view().block(0, p.input_size, 2 * hidden, hidden),
                      zr, 1.0F);
  } else {
    gemm_nt(h_prev, p.w.cview().block(0, p.input_size, 2 * hidden, hidden),
            zr, 1.0F, 1.0F);
  }
  gru_zr_pointwise(p, h_prev, tape);

  // Candidate block: input half (unless already written above), then the
  // recurrent half against rh = r ⊙ h_prev.
  if (!input_done) {
    if (qw != nullptr) {
      kernels::qgemm_nt(
          x, qw->view().block(2 * hidden, 0, hidden, p.input_size), hbar);
    } else {
      gemm_nt(x, p.w.cview().block(2 * hidden, 0, hidden, p.input_size),
              hbar);
    }
  }
  if (qw != nullptr) {
    kernels::qgemm_nt(
        tape.rh, qw->view().block(2 * hidden, p.input_size, hidden, hidden),
        hbar, 1.0F);
  } else {
    gemm_nt(tape.rh,
            p.w.cview().block(2 * hidden, p.input_size, hidden, hidden), hbar,
            1.0F, 1.0F);
  }
  gru_hbar_pointwise(p, h_prev, tape);
}

void lstm_backward(const LayerParams& p, ConstMatrixView x,
                   ConstMatrixView h_prev, ConstMatrixView c_prev,
                   const ConstCellTapeViews& tape, ConstMatrixView dh_total,
                   ConstMatrixView dc_in, MatrixView dx_acc,
                   MatrixView dh_prev_acc, MatrixView dc_prev_out,
                   LayerGrads& grads) {
  const int batch = x.rows;
  const int hidden = p.hidden_size;
  Matrix dgates(batch, 4 * hidden);  // pre-activation gate gradients
  MatrixView dg_view = dgates.view();

  const ConstMatrixView gates = tape.gates;
  const bool has_dc_in = dc_in.data != nullptr;
  for (int r = 0; r < batch; ++r) {
    const float* g = gates.row(r).data();
    const float* f = g;
    const float* i = g + hidden;
    const float* gbar = g + 2 * hidden;
    const float* o = g + 3 * hidden;
    const float* tc = tape.tanh_c.row(r).data();
    const float* cp = c_prev.row(r).data();
    const float* dh = dh_total.row(r).data();
    const float* dci = has_dc_in ? dc_in.row(r).data() : nullptr;
    float* dg = dg_view.row(r).data();
    float* dcp = dc_prev_out.row(r).data();
    for (int j = 0; j < hidden; ++j) {
      const float dc = (dci != nullptr ? dci[j] : 0.0F) +
                       dh[j] * o[j] * kernels::dtanh_from_y(tc[j]);
      const float df = dc * cp[j];
      const float di = dc * gbar[j];
      const float dgb = dc * i[j];
      const float dout = dh[j] * tc[j];
      dg[j] = df * kernels::dsigmoid_from_y(f[j]);
      dg[j + hidden] = di * kernels::dsigmoid_from_y(i[j]);
      dg[j + 2 * hidden] = dgb * kernels::dtanh_from_y(gbar[j]);
      dg[j + 3 * hidden] = dout * kernels::dsigmoid_from_y(o[j]);
      dcp[j] = dc * f[j];
    }
  }

  // Weight/bias gradients (shared per layer; caller serializes).
  gemm_tn(dg_view, x, grads.dw_input(p.input_size), 1.0F, 1.0F);
  gemm_tn(dg_view, h_prev, grads.dw_recurrent(p.input_size, hidden), 1.0F,
          1.0F);
  kernels::sum_rows_acc(dg_view, grads.db.view().row(0));

  // Input and recurrent-state gradients.
  if (dx_acc.data != nullptr) {
    gemm_nn(dg_view, p.w_input(), dx_acc, 1.0F, 1.0F);
  }
  gemm_nn(dg_view, p.w_recurrent(), dh_prev_acc, 1.0F, 1.0F);
}

void gru_backward(const LayerParams& p, ConstMatrixView x,
                  ConstMatrixView h_prev, const ConstCellTapeViews& tape,
                  ConstMatrixView dh_total, MatrixView dx_acc,
                  MatrixView dh_prev_acc, LayerGrads& grads) {
  const int batch = x.rows;
  const int hidden = p.hidden_size;
  const ConstMatrixView gates = tape.gates;

  // Candidate branch first: dG_h̄ = dh ⊙ z ⊙ (1 - h̄²).
  Matrix dg_hbar(batch, hidden);
  for (int r = 0; r < batch; ++r) {
    const float* g = gates.row(r).data();
    const float* z = g;
    const float* hb = g + 2 * hidden;
    const float* dh = dh_total.row(r).data();
    float* dghb = dg_hbar.view().row(r).data();
    float* dhp = dh_prev_acc.row(r).data();
    for (int j = 0; j < hidden; ++j) {
      dghb[j] = dh[j] * z[j] * kernels::dtanh_from_y(hb[j]);
      dhp[j] += dh[j] * (1.0F - z[j]);  // direct h_prev path of Eq. 10
    }
  }

  const ConstMatrixView w_h_x =
      p.w.cview().block(2 * hidden, 0, hidden, p.input_size);
  const ConstMatrixView w_h_h =
      p.w.cview().block(2 * hidden, p.input_size, hidden, hidden);
  // dW for the candidate block: inputs were [x, rh].
  gemm_tn(dg_hbar.cview(), x,
          grads.dw.view().block(2 * hidden, 0, hidden, p.input_size), 1.0F,
          1.0F);
  gemm_tn(dg_hbar.cview(), tape.rh,
          grads.dw.view().block(2 * hidden, p.input_size, hidden, hidden),
          1.0F, 1.0F);
  kernels::sum_rows_acc(dg_hbar.cview(),
                        grads.db.view().row(0).subspan(2 * hidden));
  if (dx_acc.data != nullptr) {
    gemm_nn(dg_hbar.cview(), w_h_x, dx_acc, 1.0F, 1.0F);
  }

  // drh = dG_h̄ * W_h̄h, then split into dr and the gated h_prev path.
  Matrix drh(batch, hidden);
  gemm_nn(dg_hbar.cview(), w_h_h, drh.view());

  // z and r pre-activation gradients.
  Matrix dg_zr(batch, 2 * hidden);
  for (int r = 0; r < batch; ++r) {
    const float* g = gates.row(r).data();
    const float* z = g;
    const float* rr = g + hidden;
    const float* hb = g + 2 * hidden;
    const float* hp = h_prev.row(r).data();
    const float* dh = dh_total.row(r).data();
    const float* drh_r = drh.cview().row(r).data();
    float* dhp = dh_prev_acc.row(r).data();
    float* dzr = dg_zr.view().row(r).data();
    for (int j = 0; j < hidden; ++j) {
      const float dz = dh[j] * (hb[j] - hp[j]);
      const float dr = drh_r[j] * hp[j];
      dhp[j] += drh_r[j] * rr[j];  // h_prev path through rh
      dzr[j] = dz * kernels::dsigmoid_from_y(z[j]);
      dzr[j + hidden] = dr * kernels::dsigmoid_from_y(rr[j]);
    }
  }

  const ConstMatrixView w_zr_x =
      p.w.cview().block(0, 0, 2 * hidden, p.input_size);
  const ConstMatrixView w_zr_h =
      p.w.cview().block(0, p.input_size, 2 * hidden, hidden);
  gemm_tn(dg_zr.cview(), x,
          grads.dw.view().block(0, 0, 2 * hidden, p.input_size), 1.0F, 1.0F);
  gemm_tn(dg_zr.cview(), h_prev,
          grads.dw.view().block(0, p.input_size, 2 * hidden, hidden), 1.0F,
          1.0F);
  kernels::sum_rows_acc(dg_zr.cview(),
                        grads.db.view().row(0).subspan(0, 2 * hidden));
  if (dx_acc.data != nullptr) {
    gemm_nn(dg_zr.cview(), w_zr_x, dx_acc, 1.0F, 1.0F);
  }
  gemm_nn(dg_zr.cview(), w_zr_h, dh_prev_acc, 1.0F, 1.0F);
}

}  // namespace

void cell_forward(const LayerParams& p, ConstMatrixView x,
                  ConstMatrixView h_prev, ConstMatrixView c_prev,
                  const CellTapeViews& tape) {
  cell_forward_ex(p, nullptr, x, h_prev, c_prev, tape, {});
}

void cell_forward_quantized(const LayerParams& p,
                            const kernels::QuantizedMatrix& qw,
                            ConstMatrixView x, ConstMatrixView h_prev,
                            ConstMatrixView c_prev,
                            const CellTapeViews& tape) {
  cell_forward_ex(p, &qw, x, h_prev, c_prev, tape, {});
}

void cell_forward_ex(const LayerParams& p, const kernels::QuantizedMatrix* qw,
                     ConstMatrixView x, ConstMatrixView h_prev,
                     ConstMatrixView c_prev, const CellTapeViews& tape,
                     const CellForwardOpts& opts) {
  BPAR_SPAN("rnn.cell_forward");
  if (opts.precomp.data != nullptr) {
    BPAR_CHECK(opts.precomp.rows == h_prev.rows &&
                   opts.precomp.cols == tape.gates.cols,
               "precomputed projection shape mismatch");
  } else {
    BPAR_CHECK(x.cols == p.input_size, "cell input width ", x.cols,
               " != layer input size ", p.input_size);
    BPAR_CHECK(h_prev.rows == x.rows, "h_prev shape mismatch");
  }
  BPAR_CHECK(h_prev.cols == p.hidden_size, "h_prev shape mismatch");
  if (qw != nullptr) {
    BPAR_CHECK(qw->rows() == p.w.rows() && qw->cols() == p.w.cols(),
               "quantized weight shape mismatch");
  }
  if (p.cell == CellType::kLstm) {
    BPAR_CHECK(c_prev.data != nullptr, "LSTM needs c_prev");
    lstm_forward(p, qw, x, h_prev, c_prev, tape, opts);
  } else {
    gru_forward(p, qw, x, h_prev, tape, opts);
  }
}

void cell_backward(const LayerParams& p, ConstMatrixView x,
                   ConstMatrixView h_prev, ConstMatrixView c_prev,
                   const ConstCellTapeViews& tape, ConstMatrixView dh_total,
                   ConstMatrixView dc_in, MatrixView dx_acc,
                   MatrixView dh_prev_acc, MatrixView dc_prev_out,
                   LayerGrads& grads) {
  BPAR_SPAN("rnn.cell_backward");
  BPAR_CHECK(dh_total.rows == x.rows && dh_total.cols == p.hidden_size,
             "dh shape mismatch");
  if (p.cell == CellType::kLstm) {
    lstm_backward(p, x, h_prev, c_prev, tape, dh_total, dc_in, dx_acc,
                  dh_prev_acc, dc_prev_out, grads);
  } else {
    gru_backward(p, x, h_prev, tape, dh_total, dx_acc, dh_prev_acc, grads);
  }
}

}  // namespace bpar::rnn
