#include "rnn/flops.hpp"

namespace bpar::rnn {

double cell_forward_flops(CellType cell, int batch, int input, int hidden) {
  const double gemm = 2.0 * batch * gate_count(cell) * hidden *
                      (static_cast<double>(input) + hidden);
  const double elementwise = 10.0 * batch * static_cast<double>(hidden);
  return gemm + elementwise;
}

double cell_backward_flops(CellType cell, int batch, int input, int hidden) {
  // dW (gemm_tn) + dx/dh (gemm_nn) are each the size of the forward GEMM.
  return 2.0 * cell_forward_flops(cell, batch, input, hidden);
}

std::size_t cell_working_set_bytes(CellType cell, int batch, int input,
                                   int hidden) {
  const std::size_t gates = static_cast<std::size_t>(gate_count(cell));
  const std::size_t weights =
      gates * hidden * (static_cast<std::size_t>(input) + hidden) +
      gates * hidden;
  const std::size_t states =
      static_cast<std::size_t>(batch) *
      (static_cast<std::size_t>(input) + 2U * hidden);  // x, h_prev, (c_prev|rh)
  const std::size_t tape =
      static_cast<std::size_t>(batch) *
      (gates * hidden + (cell == CellType::kLstm ? 3U : 2U) * hidden);
  return (weights + states + tape) * sizeof(float);
}

double merge_flops(MergeOp op, int batch, int hidden) {
  const double n = static_cast<double>(batch) * hidden;
  return op == MergeOp::kConcat ? n : 2.0 * n;
}

std::size_t merge_working_set_bytes(MergeOp op, int batch, int hidden) {
  const std::size_t io =
      static_cast<std::size_t>(batch) *
      (2U * static_cast<std::size_t>(hidden) +
       static_cast<std::size_t>(merge_output_size(op, hidden)));
  return io * sizeof(float);
}

double dense_forward_flops(int batch, int in, int classes) {
  return 2.0 * batch * static_cast<double>(in) * classes;
}

double dense_backward_flops(int batch, int in, int classes) {
  return 4.0 * batch * static_cast<double>(in) * classes;
}

double network_training_flops(const NetworkConfig& cfg) {
  return network_inference_flops(cfg) * 3.0;  // bwd ≈ 2x fwd
}

double network_inference_flops(const NetworkConfig& cfg) {
  double total = 0.0;
  for (int l = 0; l < cfg.num_layers; ++l) {
    total += 2.0 * cfg.seq_length *
             cell_forward_flops(cfg.cell, cfg.batch_size,
                                cfg.layer_input_size(l), cfg.hidden_size);
  }
  const int outputs = cfg.many_to_many ? cfg.seq_length : 1;
  total += outputs * dense_forward_flops(cfg.batch_size, cfg.merged_size(),
                                         cfg.num_classes);
  return total;
}

}  // namespace bpar::rnn
