// Weights and biases of one direction of one BRNN layer.
//
// As in the paper (§II), the unrolled timesteps of a layer share a single
// copy of the weights; only outputs and internal states are per-timestep.
// The fused weight matrix W has shape (gates*H) x (in + H): the left `in`
// columns multiply the layer input x_t, the right `H` columns multiply the
// recurrent state h_{t-1}. Gate row-block order is:
//   LSTM: f, i, g (=c̄), o     (Eqs. 1-4)
//   GRU:  z, r, h̄             (Eqs. 7-9)
#pragma once

#include "rnn/types.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace bpar::rnn {

struct LayerParams {
  CellType cell = CellType::kLstm;
  int input_size = 0;
  int hidden_size = 0;
  tensor::Matrix w;  // (gates*H) x (input + H)
  tensor::Matrix b;  // 1 x (gates*H)

  void init(CellType cell_type, int input, int hidden, util::Rng& rng);
  /// Records only the shape — no weight buffers (shape-only simulations).
  void init_shape(CellType cell_type, int input, int hidden);

  [[nodiscard]] int gates() const { return gate_count(cell); }
  /// Weight + bias element count, computed from the shape (valid with or
  /// without allocated buffers).
  [[nodiscard]] std::size_t param_count() const {
    const auto rows = static_cast<std::size_t>(gates()) * hidden_size;
    return rows * (static_cast<std::size_t>(input_size) + hidden_size) + rows;
  }
  /// Columns [0, input) of W — the input projection.
  [[nodiscard]] tensor::ConstMatrixView w_input() const {
    return w.cview().block(0, 0, w.rows(), input_size);
  }
  /// Columns [input, input+H) of W — the recurrent projection.
  [[nodiscard]] tensor::ConstMatrixView w_recurrent() const {
    return w.cview().block(0, input_size, w.rows(), hidden_size);
  }
};

struct LayerGrads {
  tensor::Matrix dw;  // same shape as LayerParams::w
  tensor::Matrix db;  // same shape as LayerParams::b

  void init_like(const LayerParams& params);
  void zero();
  void accumulate(const LayerGrads& other);

  [[nodiscard]] tensor::MatrixView dw_input(int input_size) {
    return dw.view().block(0, 0, dw.rows(), input_size);
  }
  [[nodiscard]] tensor::MatrixView dw_recurrent(int input_size,
                                                int hidden_size) {
    return dw.view().block(0, input_size, dw.rows(), hidden_size);
  }
};

}  // namespace bpar::rnn
