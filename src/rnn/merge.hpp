// Eq. 11 merge of forward and reverse hidden states, plus its backward.
//
// B-Par keeps merges as separate tasks so forward- and reverse-order cells
// of the same layer never depend on each other directly (paper §III-A).
#pragma once

#include "rnn/types.hpp"
#include "tensor/tensor.hpp"

namespace bpar::rnn {

/// y = merge(h_fwd, h_rev). y is B x merge_output_size(op, H).
void merge_forward(MergeOp op, tensor::ConstMatrixView h_fwd,
                   tensor::ConstMatrixView h_rev, tensor::MatrixView y);

/// Backward of the merge: accumulates ∂L/∂h_fwd and ∂L/∂h_rev from ∂L/∂y.
/// For kMul the forward inputs are needed again.
void merge_backward(MergeOp op, tensor::ConstMatrixView h_fwd,
                    tensor::ConstMatrixView h_rev, tensor::ConstMatrixView dy,
                    tensor::MatrixView dh_fwd_acc,
                    tensor::MatrixView dh_rev_acc);

}  // namespace bpar::rnn
