// int8 quantized inference weights (DESIGN.md §5g).
//
// A QuantizedNetwork is a read-only sidecar of a trained fp32 Network: every
// per-(direction, layer) fused weight matrix plus the dense classifier
// weights, quantized symmetrically per output channel (one scale per row of
// the fused gate matrix). Biases and activations stay fp32 — activations are
// quantized dynamically per batch row inside qgemm_nt and dequantized at the
// activation boundary, so the cell pointwise math is shared verbatim with
// the fp32 path.
//
// The sidecar is built (or refreshed) from the Network whenever weights
// change; inference graphs built with BuildOptions::quantized != nullptr
// route their cell and dense GEMMs through it.
#pragma once

#include "kernels/quant.hpp"
#include "rnn/network.hpp"

namespace bpar::rnn {

class QuantizedNetwork {
 public:
  /// Quantizes every weight matrix of `net`. per_channel → one scale per
  /// output row; otherwise one scale per tensor.
  explicit QuantizedNetwork(const Network& net, bool per_channel = true);

  /// Re-quantizes in place from (possibly updated) fp32 weights. Shapes
  /// must match the Network this was built from.
  void requantize(const Network& net);

  [[nodiscard]] const kernels::QuantizedMatrix& layer(int dir, int l) const {
    return layers_[dir][static_cast<std::size_t>(l)];
  }
  [[nodiscard]] const kernels::QuantizedMatrix& w_out() const {
    return w_out_;
  }

 private:
  std::vector<kernels::QuantizedMatrix> layers_[2];  // [dir][layer]
  kernels::QuantizedMatrix w_out_;
  bool per_channel_;
};

/// Forward pass of one cell using int8 weights: the gate GEMMs run through
/// kernels::qgemm_nt against `qw` (the quantized fused weight matrix of this
/// direction/layer); bias add and activations are the shared fp32 pointwise
/// code. Writes the same tape as cell_forward.
void cell_forward_quantized(const LayerParams& p,
                            const kernels::QuantizedMatrix& qw,
                            tensor::ConstMatrixView x,
                            tensor::ConstMatrixView h_prev,
                            tensor::ConstMatrixView c_prev,
                            const CellTapeViews& tape);

inline void cell_forward_quantized(const LayerParams& p,
                                   const kernels::QuantizedMatrix& qw,
                                   tensor::ConstMatrixView x,
                                   tensor::ConstMatrixView h_prev,
                                   tensor::ConstMatrixView c_prev,
                                   CellTape& tape) {
  cell_forward_quantized(p, qw, x, h_prev, c_prev, tape.views());
}

}  // namespace bpar::rnn
