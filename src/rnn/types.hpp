// Cell and merge-operation enums shared across the RNN subsystem.
#pragma once

#include "util/check.hpp"

namespace bpar::rnn {

enum class CellType { kLstm, kGru };

/// Eq. 11 merge of forward/reverse hidden states.
enum class MergeOp { kConcat, kSum, kAverage, kMul };

[[nodiscard]] constexpr int gate_count(CellType cell) {
  return cell == CellType::kLstm ? 4 : 3;
}

[[nodiscard]] constexpr const char* cell_name(CellType cell) {
  return cell == CellType::kLstm ? "LSTM" : "GRU";
}

[[nodiscard]] constexpr const char* merge_name(MergeOp op) {
  switch (op) {
    case MergeOp::kConcat:
      return "concat";
    case MergeOp::kSum:
      return "sum";
    case MergeOp::kAverage:
      return "average";
    case MergeOp::kMul:
      return "mul";
  }
  return "unknown";
}

/// Width of the merged bidirectional output for hidden size `h`.
[[nodiscard]] constexpr int merge_output_size(MergeOp op, int h) {
  return op == MergeOp::kConcat ? 2 * h : h;
}

}  // namespace bpar::rnn
