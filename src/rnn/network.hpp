// Deep BRNN model container: per-layer, per-direction weights plus a dense
// output (classifier) layer, and the per-replica workspace holding every
// per-timestep buffer the forward and backward passes touch.
//
// Indexing conventions used across the whole library:
//   * direction 0 = forward order; direction 1 = reverse order.
//   * reverse tapes are indexed by *processing step* k: tape(1, l, k)
//     processes input index (T-1-k). So tape(1, l, T-1) handles input 0 and
//     is the last reverse cell to run — the paper's 3r/6r/9r cells.
//   * merged(l, t) = merge(h_fwd(l, t), h_rev(l, T-1-t)) aligns by *input
//     index* t and feeds layer l+1 in both directions.
//   * many-to-one models merge only the final cells of the last layer
//     (paper Fig. 1: 9f with 9r); many-to-many models merge every t.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "rnn/cell_kernels.hpp"
#include "rnn/layer_params.hpp"
#include "rnn/types.hpp"

namespace bpar::rnn {

struct NetworkConfig {
  CellType cell = CellType::kLstm;
  MergeOp merge = MergeOp::kConcat;
  int input_size = 8;
  int hidden_size = 16;
  int num_layers = 2;
  int seq_length = 4;
  int batch_size = 2;
  int num_classes = 4;
  bool many_to_many = false;
  std::uint64_t seed = 1234;

  /// Width of the input consumed by layer `l` in either direction.
  [[nodiscard]] int layer_input_size(int layer) const {
    return layer == 0 ? input_size : merged_size();
  }
  /// Width of a merged bidirectional output.
  [[nodiscard]] int merged_size() const {
    return merge_output_size(merge, hidden_size);
  }
  void validate() const;
};

class Network {
 public:
  /// With allocate_weights == false, only the layer shapes are recorded
  /// (param_count() still works) — used by the shape-only simulation
  /// benches where full-size weight buffers would waste gigabytes.
  explicit Network(const NetworkConfig& config, bool allocate_weights = true);

  [[nodiscard]] const NetworkConfig& config() const { return config_; }
  [[nodiscard]] LayerParams& layer(int dir, int l);
  [[nodiscard]] const LayerParams& layer(int dir, int l) const;

  /// Dense classifier: logits = y * w_out^T + b_out.
  tensor::Matrix w_out;  // C x merged_size
  tensor::Matrix b_out;  // 1 x C

  [[nodiscard]] std::size_t param_count() const;

  void save(std::ostream& os) const;
  /// Loads weights saved by save(); shapes must match this config.
  void load(std::istream& is);

 private:
  NetworkConfig config_;
  std::vector<LayerParams> params_[2];  // [dir][layer]
};

struct NetworkGrads {
  std::vector<LayerGrads> layers[2];  // [dir][layer]
  tensor::Matrix dw_out;
  tensor::Matrix db_out;

  void init_like(const Network& net);
  void zero();
  void accumulate(const NetworkGrads& other);
  void scale(float s);
  [[nodiscard]] double l2_norm() const;
  /// True iff every gradient element is finite — the trainer's cheap
  /// post-batch divergence probe.
  [[nodiscard]] bool all_finite() const;
};

/// Per-replica forward tape + backward accumulation buffers.
class Workspace {
 public:
  /// `batch` overrides config.batch_size (mini-batch replicas are smaller).
  /// `alloc_input_grads` additionally allocates ∂L/∂x buffers (needed only
  /// when the caller wants input gradients, e.g. for encoder stacking or
  /// saliency analysis).
  Workspace(const NetworkConfig& config, int batch,
            bool alloc_input_grads = false);

  [[nodiscard]] int batch() const { return batch_; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }

  [[nodiscard]] CellTape& tape(int dir, int l, int step);
  [[nodiscard]] const CellTape& tape(int dir, int l, int step) const;

  /// Merged output feeding layer l+1 at input index t. For many-to-many
  /// models, l ranges over all layers; otherwise over [0, L-1).
  [[nodiscard]] tensor::Matrix& merged(int l, int t);
  /// Final merged output of a many-to-one model.
  tensor::Matrix final_merged;

  /// Per-output logits/probs/dlogits: index 0 for many-to-one, else t.
  [[nodiscard]] tensor::Matrix& logits(int t);
  [[nodiscard]] tensor::Matrix& probs(int t);
  [[nodiscard]] tensor::Matrix& dlogits(int t);
  [[nodiscard]] int num_outputs() const {
    return config_.many_to_many ? config_.seq_length : 1;
  }

  // Backward accumulators (zeroed by zero_backward()).
  [[nodiscard]] tensor::Matrix& dh(int dir, int l, int step);
  [[nodiscard]] tensor::Matrix& dc(int dir, int l, int step);
  /// Gradient of merged(l, t) contributed by the backward pass of the
  /// layer above. Split per contributing direction (`src_dir`) so the two
  /// directions' backward chains never serialize on a shared accumulator —
  /// the merge-backward task sums both halves.
  [[nodiscard]] tensor::Matrix& dmerged(int src_dir, int l, int t);

  /// ∂L/∂x at timestep t, contributed by direction `src_dir` of layer 0
  /// (allocated only with alloc_input_grads; split per direction like
  /// dmerged). Use input_grad() to obtain the combined gradient.
  [[nodiscard]] tensor::Matrix& dx(int src_dir, int t);
  [[nodiscard]] bool has_input_grads() const { return !dx_[0].empty(); }
  /// Combined ∂L/∂x at timestep t, written into `out` (B x input_size).
  void input_grad(int t, tensor::MatrixView out) const;
  tensor::Matrix dfinal;  // many-to-one: grad of final_merged

  /// Shared all-zero initial state (read-only by convention).
  tensor::Matrix zero_state;

  /// Write-only target for the t==0 backward outputs (dh_prev / dc_prev of
  /// the first timestep have no consumer). One per (dir, layer) so
  /// unrelated tasks never serialize on it.
  [[nodiscard]] tensor::Matrix& sink(int dir, int l);

  /// Zeroes every backward accumulator (call before each backward pass).
  void zero_backward();

  /// Total bytes of forward tape per cell (cache-model working sets).
  [[nodiscard]] std::size_t tape_bytes(int dir, int l, int step) const;

 private:
  [[nodiscard]] int merged_layers() const {
    return config_.many_to_many ? config_.num_layers : config_.num_layers - 1;
  }

  NetworkConfig config_;
  int batch_;
  std::vector<CellTape> tapes_[2];         // [l * T + step]
  std::vector<tensor::Matrix> merged_;     // [l * T + t]
  std::vector<tensor::Matrix> logits_;
  std::vector<tensor::Matrix> probs_;
  std::vector<tensor::Matrix> dlogits_;
  std::vector<tensor::Matrix> dh_[2];
  std::vector<tensor::Matrix> dc_[2];
  std::vector<tensor::Matrix> dmerged_[2];  // [src_dir][l * T + t]
  std::vector<tensor::Matrix> dx_[2];       // [src_dir][t] (optional)
  std::vector<tensor::Matrix> sinks_[2];    // [layer]
};

}  // namespace bpar::rnn
