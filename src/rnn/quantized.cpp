#include "rnn/quantized.hpp"

namespace bpar::rnn {

QuantizedNetwork::QuantizedNetwork(const Network& net, bool per_channel)
    : per_channel_(per_channel) {
  const NetworkConfig& cfg = net.config();
  for (int dir = 0; dir < 2; ++dir) {
    layers_[dir].resize(static_cast<std::size_t>(cfg.num_layers));
  }
  requantize(net);
}

void QuantizedNetwork::requantize(const Network& net) {
  const NetworkConfig& cfg = net.config();
  for (int dir = 0; dir < 2; ++dir) {
    for (int l = 0; l < cfg.num_layers; ++l) {
      layers_[dir][static_cast<std::size_t>(l)].quantize_from(
          net.layer(dir, l).w.cview(), per_channel_);
    }
  }
  w_out_.quantize_from(net.w_out.cview(), per_channel_);
}

}  // namespace bpar::rnn
