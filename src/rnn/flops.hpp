// Arithmetic-work and working-set accounting per task type. These feed the
// simulator's roofline cost model and the Fig. 7 cache model.
#pragma once

#include <cstddef>

#include "rnn/network.hpp"
#include "rnn/types.hpp"

namespace bpar::rnn {

/// Flops of one cell forward update (GEMM-dominated).
[[nodiscard]] double cell_forward_flops(CellType cell, int batch, int input,
                                        int hidden);

/// Flops of one cell backward update (≈ 2x forward: dW GEMMs + dx GEMMs).
[[nodiscard]] double cell_backward_flops(CellType cell, int batch, int input,
                                         int hidden);

/// Bytes a cell task touches: shared weights + states + tape.
[[nodiscard]] std::size_t cell_working_set_bytes(CellType cell, int batch,
                                                 int input, int hidden);

[[nodiscard]] double merge_flops(MergeOp op, int batch, int hidden);
[[nodiscard]] std::size_t merge_working_set_bytes(MergeOp op, int batch,
                                                  int hidden);

[[nodiscard]] double dense_forward_flops(int batch, int in, int classes);
[[nodiscard]] double dense_backward_flops(int batch, int in, int classes);

/// Total training flops (forward + backward) of one batch of the model.
[[nodiscard]] double network_training_flops(const NetworkConfig& cfg);
/// Total inference (forward-only) flops of one batch.
[[nodiscard]] double network_inference_flops(const NetworkConfig& cfg);

}  // namespace bpar::rnn
