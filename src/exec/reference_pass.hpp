// Plain sequential forward/backward pass over one batch slice.
//
// This is the ground-truth implementation the executors are validated
// against, and the per-replica body of B-Seq (which exploits only data
// parallelism: each mini-batch runs this code sequentially). The loop
// structure and accumulation order mirror the task creation order of
// graph::TrainingProgram exactly, so a correct task execution is bitwise
// identical to this pass.
#pragma once

#include <span>

#include "exec/executor.hpp"
#include "rnn/batch.hpp"
#include "rnn/network.hpp"

namespace bpar::exec {

/// Forward pass over batch rows [r0, r0+ws.batch()): fills the workspace's
/// tapes, merges, logits and probs. Returns the loss contribution already
/// weighted for the whole batch: mean-CE(rows) * rows / (total_batch *
/// outputs) summed over outputs.
double forward_pass(const rnn::Network& net, rnn::Workspace& ws,
                    const rnn::BatchData& batch, int r0, int total_batch);

/// Backward pass matching forward_pass. Accumulates into `grads` (weighted
/// so that summing replica grads yields the whole-batch mean gradient).
/// Caller must ws.zero_backward() first.
void backward_pass(const rnn::Network& net, rnn::Workspace& ws,
                   const rnn::BatchData& batch, int r0, int total_batch,
                   rnn::NetworkGrads& grads);

/// Argmax predictions from the workspace's probs (after forward_pass).
/// `out` has ws.batch() entries for many-to-one, steps*batch otherwise.
void extract_predictions(const rnn::Workspace& ws, std::span<int> out);

/// Sizes `result`'s shape fields and output buffers for a `total_batch`-row
/// batch of `ws`'s configuration (logits allocated only when requested).
void init_infer_outputs(const rnn::Workspace& ws, int total_batch,
                        bool want_logits, InferResult& result);

/// Copies the workspace's argmax predictions — and logits, when `result`
/// was initialized with them — for batch rows [r0, r0 + ws.batch()) into
/// `result`'s batch-layout buffers. Used by every executor (replicated
/// executors call it once per replica with that replica's row offset).
void extract_infer_outputs(const rnn::Workspace& ws, int r0,
                           InferResult& result);

}  // namespace bpar::exec
