#include "exec/baseline_profiles.hpp"

#include <algorithm>

namespace bpar::exec {

FrameworkProfile keras_cpu_profile() {
  // MKL-parallel on gate-GEMM slices saturates around 12 useful lanes at
  // ~55% efficiency (≈6.6x intra-op speedup), which reproduces the paper's
  // Keras-CPU times within ~15% across the Table III batch sizes.
  return {.name = "keras",
          .gemm_cost_multiplier = 1.15,
          .per_task_dispatch_ns = 15000.0,
          .intra_op_efficiency = 0.55,
          .max_intra_op_chunks = 12};
}

FrameworkProfile pytorch_cpu_profile() {
  return {.name = "pytorch",
          .gemm_cost_multiplier = 1.8,
          .per_task_dispatch_ns = 60000.0,
          .intra_op_efficiency = 0.50,
          .max_intra_op_chunks = 12};
}

FrameworkProfile native_profile() {
  return {.name = "native",
          .gemm_cost_multiplier = 1.0,
          .per_task_dispatch_ns = 0.0,
          .intra_op_efficiency = 1.0,
          .max_intra_op_chunks = 1};
}

graph::BuildOptions baseline_build_options(const FrameworkProfile& profile,
                                           int cores, int batch_rows,
                                           bool training) {
  graph::BuildOptions bo;
  bo.num_replicas = 1;
  bo.training = training;
  bo.executable = false;
  bo.schedule_profile = "framework";  // per-layer barriers + sequential dirs
  // A cell's GEMM can be split at most once per few batch rows.
  const int by_rows = std::max(1, batch_rows / 4);
  bo.intra_op_chunks =
      std::clamp(std::min(cores, profile.max_intra_op_chunks), 1, by_rows);
  return bo;
}

std::vector<std::uint64_t> profile_costs(const taskrt::TaskGraph& graph,
                                         const sim::Calibration& cal,
                                         const FrameworkProfile& profile) {
  std::vector<std::uint64_t> costs(graph.size());
  for (taskrt::TaskId id = 0; id < graph.size(); ++id) {
    const auto& spec = graph.task(id).spec;
    double ns;
    if (spec.flops > 0.0 || spec.working_set_bytes > 0) {
      ns = static_cast<double>(sim::roofline_cost_ns(
          spec.flops * profile.gemm_cost_multiplier, spec.working_set_bytes,
          cal));
      // Intra-op chunks lose efficiency versus perfect splitting.
      if (spec.kind == taskrt::TaskKind::kGemmChunk) {
        ns /= profile.intra_op_efficiency;
      }
    } else {
      ns = static_cast<double>(
          std::max<std::uint64_t>(spec.cost_hint_ns, 300));
    }
    ns += profile.per_task_dispatch_ns;
    costs[id] = static_cast<std::uint64_t>(ns);
  }
  return costs;
}

}  // namespace bpar::exec
