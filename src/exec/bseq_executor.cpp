#include "exec/bseq_executor.hpp"

#include "exec/reference_pass.hpp"
#include "perf/timer.hpp"
#include "rnn/flops.hpp"
#include "util/check.hpp"
#include "obs/trace.hpp"

namespace bpar::exec {

BSeqExecutor::BSeqExecutor(rnn::Network& net, BSeqOptions options)
    : net_(net),
      options_(options),
      runtime_({.num_workers = options.num_workers,
                .policy = taskrt::SchedulerPolicy::kFifo,
                .record_trace = false,
                .pin_threads = options.pin_threads,
                .watchdog_ms = options.watchdog_ms,
                .faults = options.faults}) {
  const auto& cfg = net_.config();
  BPAR_CHECK(options_.num_replicas >= 1 &&
                 options_.num_replicas <= cfg.batch_size,
             "bad replica count");
  const int base = cfg.batch_size / options_.num_replicas;
  const int extra = cfg.batch_size % options_.num_replicas;
  int row = 0;
  for (int r = 0; r < options_.num_replicas; ++r) {
    row_begin_.push_back(row);
    const int rb = base + (r < extra ? 1 : 0);
    replicas_.push_back(std::make_unique<rnn::Workspace>(cfg, rb));
    row += rb;
  }
  replica_grads_.resize(static_cast<std::size_t>(options_.num_replicas));
  for (auto& g : replica_grads_) g.init_like(net_);
  master_grads_.init_like(net_);
}

StepResult BSeqExecutor::run(const rnn::BatchData& batch, bool training,
                             std::span<int> predictions) {
  const auto& cfg = net_.config();
  batch.validate(cfg.input_size, cfg.seq_length);
  BPAR_CHECK(batch.batch() == cfg.batch_size, "batch size mismatch");
  perf::WallTimer timer;

  std::vector<double> losses(static_cast<std::size_t>(options_.num_replicas),
                             0.0);
  taskrt::TaskGraph graph;
  for (int r = 0; r < options_.num_replicas; ++r) {
    rnn::Workspace* ws = replicas_[static_cast<std::size_t>(r)].get();
    rnn::NetworkGrads* grads = &replica_grads_[static_cast<std::size_t>(r)];
    double* loss_slot = &losses[static_cast<std::size_t>(r)];
    const int r0 = row_begin_[static_cast<std::size_t>(r)];
    taskrt::TaskSpec spec;
    spec.kind = taskrt::TaskKind::kGeneric;
    spec.replica = r;
    spec.flops = (training ? rnn::network_training_flops(cfg)
                           : rnn::network_inference_flops(cfg)) *
                 ws->batch() / cfg.batch_size;
    spec.name = "bseq." + std::to_string(r);
    graph.add(
        [this, ws, grads, loss_slot, r0, training, &batch] {
          if (training) {
            grads->zero();
            ws->zero_backward();
          }
          *loss_slot = forward_pass(net_, *ws, batch, r0, batch.batch());
          if (training) {
            backward_pass(net_, *ws, batch, r0, batch.batch(), *grads);
          }
        },
        {taskrt::out(loss_slot)}, std::move(spec));
  }
  StepResult result;
  result.stats = runtime_.run(graph);

  for (const double l : losses) result.loss += l;
  if (training) {
    master_grads_.zero();
    for (const auto& g : replica_grads_) master_grads_.accumulate(g);
  }
  if (!predictions.empty()) {
    const int outputs = replicas_[0]->num_outputs();
    BPAR_CHECK(static_cast<int>(predictions.size()) ==
                   outputs * cfg.batch_size,
               "prediction buffer size mismatch");
    for (int r = 0; r < options_.num_replicas; ++r) {
      auto& ws = *replicas_[static_cast<std::size_t>(r)];
      const int r0 = row_begin_[static_cast<std::size_t>(r)];
      std::vector<int> local(static_cast<std::size_t>(outputs) * ws.batch());
      extract_predictions(ws, local);
      for (int t = 0; t < outputs; ++t) {
        for (int b = 0; b < ws.batch(); ++b) {
          predictions[static_cast<std::size_t>(t) * cfg.batch_size + r0 + b] =
              local[static_cast<std::size_t>(t) * ws.batch() + b];
        }
      }
    }
  }
  result.wall_ms = timer.elapsed_ms();
  return result;
}

StepResult BSeqExecutor::train_batch(const rnn::BatchData& batch) {
  BPAR_SPAN("exec.bseq.train_batch");
  return run(batch, /*training=*/true, {});
}

StepResult BSeqExecutor::infer_batch(const rnn::BatchData& batch,
                                     std::span<int> predictions) {
  BPAR_SPAN("exec.bseq.infer_batch");
  return run(batch, /*training=*/false, predictions);
}

}  // namespace bpar::exec
