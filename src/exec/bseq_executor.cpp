#include "exec/bseq_executor.hpp"

#include "exec/reference_pass.hpp"
#include "perf/timer.hpp"
#include "rnn/flops.hpp"
#include "util/check.hpp"
#include "obs/trace.hpp"

namespace bpar::exec {

BSeqExecutor::BSeqExecutor(rnn::Network& net, BSeqOptions options)
    : net_(net),
      options_(options),
      runtime_({.num_workers = options.common.num_workers,
                .policy = taskrt::SchedulerPolicy::kFifo,
                .record_trace = false,
                .pin_threads = options.common.pin_threads,
                .watchdog_ms = options.common.watchdog_ms,
                .faults = options.common.faults}) {
  const auto& cfg = net_.config();
  const int replicas = options_.common.num_replicas;
  BPAR_CHECK(replicas >= 1 && replicas <= cfg.batch_size,
             "bad replica count");
  const int base = cfg.batch_size / replicas;
  const int extra = cfg.batch_size % replicas;
  int row = 0;
  for (int r = 0; r < replicas; ++r) {
    row_begin_.push_back(row);
    const int rb = base + (r < extra ? 1 : 0);
    replicas_.push_back(std::make_unique<rnn::Workspace>(cfg, rb));
    row += rb;
  }
  replica_grads_.resize(static_cast<std::size_t>(replicas));
  for (auto& g : replica_grads_) g.init_like(net_);
  master_grads_.init_like(net_);
}

StepResult BSeqExecutor::run(const rnn::BatchData& batch, bool training,
                             InferResult* infer_result,
                             const InferOptions& options) {
  const auto& cfg = net_.config();
  batch.validate(cfg.input_size, cfg.seq_length);
  BPAR_CHECK(batch.batch() == cfg.batch_size, "batch size mismatch");
  perf::WallTimer timer;

  const int num_replicas = options_.common.num_replicas;
  std::vector<double> losses(static_cast<std::size_t>(num_replicas), 0.0);
  taskrt::TaskGraph graph;
  for (int r = 0; r < num_replicas; ++r) {
    rnn::Workspace* ws = replicas_[static_cast<std::size_t>(r)].get();
    rnn::NetworkGrads* grads = &replica_grads_[static_cast<std::size_t>(r)];
    double* loss_slot = &losses[static_cast<std::size_t>(r)];
    const int r0 = row_begin_[static_cast<std::size_t>(r)];
    taskrt::TaskSpec spec;
    spec.kind = taskrt::TaskKind::kGeneric;
    spec.replica = r;
    spec.flops = (training ? rnn::network_training_flops(cfg)
                           : rnn::network_inference_flops(cfg)) *
                 ws->batch() / cfg.batch_size;
    spec.name = "bseq." + std::to_string(r);
    graph.add(
        [this, ws, grads, loss_slot, r0, training, &batch] {
          if (training) {
            grads->zero();
            ws->zero_backward();
          }
          *loss_slot = forward_pass(net_, *ws, batch, r0, batch.batch());
          if (training) {
            backward_pass(net_, *ws, batch, r0, batch.batch(), *grads);
          }
        },
        {taskrt::out(loss_slot)}, std::move(spec));
  }
  StepResult result;
  result.stats = runtime_.run(graph);

  for (const double l : losses) result.loss += l;
  if (training) {
    master_grads_.zero();
    for (const auto& g : replica_grads_) master_grads_.accumulate(g);
  }
  if (infer_result != nullptr) {
    init_infer_outputs(*replicas_[0], cfg.batch_size, options.want_logits,
                       *infer_result);
    for (int r = 0; r < num_replicas; ++r) {
      extract_infer_outputs(*replicas_[static_cast<std::size_t>(r)],
                            row_begin_[static_cast<std::size_t>(r)],
                            *infer_result);
    }
  }
  result.wall_ms = timer.elapsed_ms();
  return result;
}

StepResult BSeqExecutor::train_batch(const rnn::BatchData& batch) {
  BPAR_SPAN("exec.bseq.train_batch");
  return run(batch, /*training=*/true, nullptr, {});
}

InferResult BSeqExecutor::infer(const rnn::BatchData& batch,
                                const InferOptions& options) {
  BPAR_SPAN("exec.bseq.infer");
  InferResult result;
  StepResult step = run(batch, /*training=*/false, &result, options);
  result.loss = step.loss;
  result.wall_ms = step.wall_ms;
  result.stats = std::move(step.stats);
  return result;
}

}  // namespace bpar::exec
