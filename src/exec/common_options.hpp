// The executor knobs every execution strategy understands.
//
// Each executor's options struct embeds one CommonOptions as its first
// member, so the shared knobs are declared (and defaulted) exactly once:
// worker count, mini-batch replicas, scheduler policy, thread pinning, the
// runtime watchdog, and deterministic fault injection. bpar::ExecutorOptions
// — the facade-level options type of make_executor / Model — is an alias of
// this struct, so facade callers and direct executor construction can never
// disagree on a default (tests/test_serve.cpp pins that down).
//
// Executors ignore knobs that do not apply to them (BarrierExecutor has no
// replicas; only B-Par honours `policy`) but never reinterpret them.
#pragma once

#include <cstdint>

#include "taskrt/fault.hpp"
#include "taskrt/runtime.hpp"

namespace bpar::exec {

struct CommonOptions {
  int num_workers = 0;   // 0 → hardware concurrency
  int num_replicas = 1;  // mini-batches (B-Par / B-Seq; the paper's mbs:N)
  taskrt::SchedulerPolicy policy = taskrt::SchedulerPolicy::kLocalityAware;
  bool pin_threads = false;  // pin workers to the allowed cpuset (Linux)
  /// Runtime watchdog: fail with a scheduler-state dump instead of hanging
  /// when no task completes for this many ms (0 → off).
  std::uint32_t watchdog_ms = 0;
  /// Deterministic fault-injection plan (see taskrt/fault.hpp); the
  /// BPAR_FAULTS environment variable applies when this is empty.
  taskrt::FaultSpec faults{};

  friend bool operator==(const CommonOptions& a,
                         const CommonOptions& b) = default;
};

}  // namespace bpar::exec
