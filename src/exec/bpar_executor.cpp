#include "exec/bpar_executor.hpp"

#include <algorithm>

#include "exec/reference_pass.hpp"
#include "graph/passes/registry.hpp"
#include "obs/memory.hpp"
#include "obs/trace.hpp"
#include "perf/timer.hpp"
#include "util/check.hpp"

namespace bpar::exec {

namespace {

// Graph-structure estimate for the program-cache memory tracker. The
// tensors a program owns (weights views, activations, workspaces) are
// already accounted under mem.tensor by Matrix itself; this covers the
// task/edge skeleton that the cache keeps alive per shape bucket.
std::uint64_t program_graph_bytes(const graph::TrainingProgram& program) {
  return static_cast<std::uint64_t>(program.graph().size()) *
         sizeof(taskrt::Task);
}

taskrt::RuntimeOptions runtime_options(const BParOptions& options) {
  taskrt::RuntimeOptions ro;
  ro.num_workers = options.common.num_workers;
  ro.policy = options.common.policy;
  ro.record_trace = options.record_trace;
  ro.pin_threads = options.common.pin_threads;
  ro.watchdog_ms = options.common.watchdog_ms;
  ro.faults = options.common.faults;
  ro.sample_counters = options.sample_counters;
  return ro;
}
}  // namespace

BParExecutor::BParExecutor(rnn::Network& net, BParOptions options)
    : net_(net), options_(options), runtime_(runtime_options(options)) {}

BParExecutor::~BParExecutor() {
  for (const auto* cache : {&train_programs_, &infer_programs_}) {
    for (const auto& [key, program] : *cache) {
      obs::program_cache_memory().on_free(program_graph_bytes(*program));
    }
  }
}

graph::TrainingProgram& BParExecutor::program(bool training, int seq_length,
                                              int batch_rows) {
  const int steps =
      seq_length > 0 ? seq_length : net_.config().seq_length;
  const int rows =
      batch_rows > 0 ? batch_rows : net_.config().batch_size;
  const std::string spec = graph::passes::effective_pass_spec(options_.passes);
  auto& cache = training ? train_programs_ : infer_programs_;
  auto it = cache.find(ShapeKey{steps, rows, spec});
  if (it == cache.end()) {
    graph::BuildOptions bo;
    // Replicas cannot outnumber batch rows; small serving micro-batches
    // degrade gracefully to fewer (or one) replica.
    bo.num_replicas = std::min(options_.common.num_replicas, rows);
    bo.training = training;
    bo.schedule_profile =
        options_.fuse_merge ? "fused_merge" : options_.schedule_profile;
    bo.compute_input_grads = options_.compute_input_grads;
    bo.seq_length_override = steps;
    bo.passes = spec;
    bo.dispatch_ns = measured_dispatch_ns_;
    if (!training && options_.quantized_inference) {
      if (quantized_ == nullptr) {
        quantized_ = std::make_unique<rnn::QuantizedNetwork>(net_);
      }
      bo.quantized = quantized_.get();
    }
    it = cache
             .emplace(ShapeKey{steps, rows, spec},
                      std::make_unique<graph::TrainingProgram>(net_, rows, bo))
             .first;
    obs::program_cache_memory().on_alloc(program_graph_bytes(*it->second));
  }
  return *it->second;
}

graph::TrainingProgram& BParExecutor::train_program(int seq_length,
                                                    int batch_rows) {
  return program(/*training=*/true, seq_length, batch_rows);
}

graph::TrainingProgram& BParExecutor::infer_program(int seq_length,
                                                    int batch_rows) {
  return program(/*training=*/false, seq_length, batch_rows);
}

void BParExecutor::refresh_quantized_weights() {
  if (quantized_ != nullptr) quantized_->requantize(net_);
}

void BParExecutor::note_stats(const taskrt::RunStats& stats) {
  if (stats.tasks_executed == 0) return;
  std::uint64_t busy = 0;
  for (const std::uint64_t w : stats.worker_busy_ns) busy += w;
  const std::uint64_t pool =
      stats.wall_ns * stats.worker_busy_ns.size();
  if (pool <= busy) return;
  // Idle-time-per-task proxy for dispatch overhead: crude, but it tracks
  // the regime (tiny-task-dominated runs push it up) and only feeds the
  // coarsening threshold, where a factor of 2 barely moves the cut.
  const std::uint64_t per_task =
      std::clamp<std::uint64_t>((pool - busy) / stats.tasks_executed,
                                100, 2000);
  measured_dispatch_ns_ = (3 * measured_dispatch_ns_ + per_task) / 4;
}

StepResult BParExecutor::train_batch(const rnn::BatchData& batch) {
  BPAR_SPAN("exec.train_batch");
  auto& program = train_program(batch.steps(), batch.batch());
  last_train_ = &program;
  perf::WallTimer timer;
  program.load_batch(batch);
  program.prepare();
  StepResult result;
  result.stats = runtime_.run(program.graph());
  note_stats(result.stats);
  result.loss = program.loss();
  result.wall_ms = timer.elapsed_ms();
  return result;
}

InferResult BParExecutor::infer(const rnn::BatchData& batch,
                                const InferOptions& options) {
  BPAR_SPAN("exec.infer");
  auto& program = infer_program(batch.steps(), batch.batch());
  perf::WallTimer timer;
  program.load_batch(batch);
  program.prepare();
  InferResult result;
  result.stats = runtime_.run(program.graph());
  note_stats(result.stats);
  result.loss = program.loss();
  // Stitch replica outputs back into batch order.
  init_infer_outputs(program.replica(0), program.total_batch(),
                     options.want_logits, result);
  for (int rep = 0; rep < program.num_replicas(); ++rep) {
    extract_infer_outputs(program.replica(rep),
                          program.replica_row_begin(rep), result);
  }
  result.wall_ms = timer.elapsed_ms();
  return result;
}

}  // namespace bpar::exec
