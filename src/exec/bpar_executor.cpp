#include "exec/bpar_executor.hpp"

#include "exec/reference_pass.hpp"
#include "obs/trace.hpp"
#include "perf/timer.hpp"
#include "util/check.hpp"

namespace bpar::exec {

namespace {
taskrt::RuntimeOptions runtime_options(const BParOptions& options) {
  taskrt::RuntimeOptions ro;
  ro.num_workers = options.num_workers;
  ro.policy = options.policy;
  ro.record_trace = options.record_trace;
  ro.pin_threads = options.pin_threads;
  ro.watchdog_ms = options.watchdog_ms;
  ro.faults = options.faults;
  ro.sample_counters = options.sample_counters;
  return ro;
}
}  // namespace

BParExecutor::BParExecutor(rnn::Network& net, BParOptions options)
    : net_(net), options_(options), runtime_(runtime_options(options)) {}

graph::TrainingProgram& BParExecutor::program(bool training,
                                              int seq_length) {
  const int steps =
      seq_length > 0 ? seq_length : net_.config().seq_length;
  auto& cache = training ? train_programs_ : infer_programs_;
  auto it = cache.find(steps);
  if (it == cache.end()) {
    graph::BuildOptions bo;
    bo.num_replicas = options_.num_replicas;
    bo.training = training;
    bo.fuse_merge = options_.fuse_merge;
    bo.compute_input_grads = options_.compute_input_grads;
    bo.seq_length_override = steps;
    it = cache
             .emplace(steps, std::make_unique<graph::TrainingProgram>(
                                 net_, net_.config().batch_size, bo))
             .first;
  }
  return *it->second;
}

graph::TrainingProgram& BParExecutor::train_program(int seq_length) {
  return program(/*training=*/true, seq_length);
}

graph::TrainingProgram& BParExecutor::infer_program(int seq_length) {
  return program(/*training=*/false, seq_length);
}

StepResult BParExecutor::train_batch(const rnn::BatchData& batch) {
  BPAR_SPAN("exec.train_batch");
  auto& program = train_program(batch.steps());
  last_train_ = &program;
  perf::WallTimer timer;
  program.load_batch(batch);
  program.prepare();
  StepResult result;
  result.stats = runtime_.run(program.graph());
  result.loss = program.loss();
  result.wall_ms = timer.elapsed_ms();
  return result;
}

StepResult BParExecutor::infer_batch(const rnn::BatchData& batch,
                                     std::span<int> predictions) {
  BPAR_SPAN("exec.infer_batch");
  auto& program = infer_program(batch.steps());
  perf::WallTimer timer;
  program.load_batch(batch);
  program.prepare();
  StepResult result;
  result.stats = runtime_.run(program.graph());
  result.loss = program.loss();
  if (!predictions.empty()) {
    // Stitch replica predictions back into batch order.
    const int outputs = program.replica(0).num_outputs();
    BPAR_CHECK(static_cast<int>(predictions.size()) ==
                   outputs * program.total_batch(),
               "prediction buffer size mismatch");
    for (int rep = 0; rep < program.num_replicas(); ++rep) {
      auto& ws = program.replica(rep);
      const int r0 = program.replica_row_begin(rep);
      std::vector<int> local(
          static_cast<std::size_t>(outputs) * ws.batch());
      extract_predictions(ws, local);
      for (int t = 0; t < outputs; ++t) {
        for (int b = 0; b < ws.batch(); ++b) {
          predictions[static_cast<std::size_t>(t) * program.total_batch() +
                      r0 + b] =
              local[static_cast<std::size_t>(t) * ws.batch() + b];
        }
      }
    }
  }
  result.wall_ms = timer.elapsed_ms();
  return result;
}

}  // namespace bpar::exec
