#include "exec/bpar_executor.hpp"

#include <algorithm>

#include "exec/reference_pass.hpp"
#include "obs/memory.hpp"
#include "obs/trace.hpp"
#include "perf/timer.hpp"
#include "util/check.hpp"

namespace bpar::exec {

namespace {

// Graph-structure estimate for the program-cache memory tracker. The
// tensors a program owns (weights views, activations, workspaces) are
// already accounted under mem.tensor by Matrix itself; this covers the
// task/edge skeleton that the cache keeps alive per shape bucket.
std::uint64_t program_graph_bytes(const graph::TrainingProgram& program) {
  return static_cast<std::uint64_t>(program.graph().size()) *
         sizeof(taskrt::Task);
}

taskrt::RuntimeOptions runtime_options(const BParOptions& options) {
  taskrt::RuntimeOptions ro;
  ro.num_workers = options.common.num_workers;
  ro.policy = options.common.policy;
  ro.record_trace = options.record_trace;
  ro.pin_threads = options.common.pin_threads;
  ro.watchdog_ms = options.common.watchdog_ms;
  ro.faults = options.common.faults;
  ro.sample_counters = options.sample_counters;
  return ro;
}
}  // namespace

BParExecutor::BParExecutor(rnn::Network& net, BParOptions options)
    : net_(net), options_(options), runtime_(runtime_options(options)) {}

BParExecutor::~BParExecutor() {
  for (const auto* cache : {&train_programs_, &infer_programs_}) {
    for (const auto& [key, program] : *cache) {
      obs::program_cache_memory().on_free(program_graph_bytes(*program));
    }
  }
}

graph::TrainingProgram& BParExecutor::program(bool training, int seq_length,
                                              int batch_rows) {
  const int steps =
      seq_length > 0 ? seq_length : net_.config().seq_length;
  const int rows =
      batch_rows > 0 ? batch_rows : net_.config().batch_size;
  auto& cache = training ? train_programs_ : infer_programs_;
  auto it = cache.find(ShapeKey{steps, rows});
  if (it == cache.end()) {
    graph::BuildOptions bo;
    // Replicas cannot outnumber batch rows; small serving micro-batches
    // degrade gracefully to fewer (or one) replica.
    bo.num_replicas = std::min(options_.common.num_replicas, rows);
    bo.training = training;
    bo.fuse_merge = options_.fuse_merge;
    bo.compute_input_grads = options_.compute_input_grads;
    bo.seq_length_override = steps;
    if (!training && options_.quantized_inference) {
      if (quantized_ == nullptr) {
        quantized_ = std::make_unique<rnn::QuantizedNetwork>(net_);
      }
      bo.quantized = quantized_.get();
    }
    it = cache
             .emplace(ShapeKey{steps, rows},
                      std::make_unique<graph::TrainingProgram>(net_, rows, bo))
             .first;
    obs::program_cache_memory().on_alloc(program_graph_bytes(*it->second));
  }
  return *it->second;
}

graph::TrainingProgram& BParExecutor::train_program(int seq_length,
                                                    int batch_rows) {
  return program(/*training=*/true, seq_length, batch_rows);
}

graph::TrainingProgram& BParExecutor::infer_program(int seq_length,
                                                    int batch_rows) {
  return program(/*training=*/false, seq_length, batch_rows);
}

void BParExecutor::refresh_quantized_weights() {
  if (quantized_ != nullptr) quantized_->requantize(net_);
}

StepResult BParExecutor::train_batch(const rnn::BatchData& batch) {
  BPAR_SPAN("exec.train_batch");
  auto& program = train_program(batch.steps(), batch.batch());
  last_train_ = &program;
  perf::WallTimer timer;
  program.load_batch(batch);
  program.prepare();
  StepResult result;
  result.stats = runtime_.run(program.graph());
  result.loss = program.loss();
  result.wall_ms = timer.elapsed_ms();
  return result;
}

InferResult BParExecutor::infer(const rnn::BatchData& batch,
                                const InferOptions& options) {
  BPAR_SPAN("exec.infer");
  auto& program = infer_program(batch.steps(), batch.batch());
  perf::WallTimer timer;
  program.load_batch(batch);
  program.prepare();
  InferResult result;
  result.stats = runtime_.run(program.graph());
  result.loss = program.loss();
  // Stitch replica outputs back into batch order.
  init_infer_outputs(program.replica(0), program.total_batch(),
                     options.want_logits, result);
  for (int rep = 0; rep < program.num_replicas(); ++rep) {
    extract_infer_outputs(program.replica(rep),
                          program.replica_row_begin(rep), result);
  }
  result.wall_ms = timer.elapsed_ms();
  return result;
}

}  // namespace bpar::exec
