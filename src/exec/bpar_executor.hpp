// B-Par: the paper's barrier-free task-graph executor.
//
// Builds the training and inference task graphs once (paper Algorithms
// 1-3, via graph::TrainingProgram) and executes them on the OmpSs-like
// runtime for every batch. Mini-batch data parallelism composes with model
// parallelism through `num_replicas` (the paper's mbs:N).
// Batches may have any sequence length: weights are shared across
// timesteps, so the executor keeps one cached program per observed length
// and "adjusts the computation graph dynamically" (paper §III-B) by
// building a new graph the first time a length appears.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>

#include "exec/common_options.hpp"
#include "exec/executor.hpp"
#include "graph/brnn_graph.hpp"
#include "rnn/quantized.hpp"

namespace bpar::exec {

struct BParOptions {
  /// Workers, replicas (mbs:N), policy, pinning, watchdog, faults.
  CommonOptions common{};
  bool record_trace = false;
  bool fuse_merge = false;  // ablation knob (see DESIGN.md §5.1)
  bool compute_input_grads = false;  // also produce per-timestep dL/dx
  /// Per-task-class hardware counters (RunStats::kind_counters); no-op
  /// when perf_event_open is unavailable.
  bool sample_counters = false;
  /// int8 inference (DESIGN.md §5g): quantize the trained fp32 weights
  /// once (per output channel) and run inference-graph GEMMs in int8 with
  /// fp32 dequantization at the activation boundary. Training always stays
  /// fp32. Call refresh_quantized_weights() after mutating the Network.
  bool quantized_inference = false;
  /// Graph-optimizer pass spec (graph/passes/registry.hpp): "default"
  /// resolves through BPAR_GRAPH_PASSES, "none"/"off" disables the
  /// pipeline, otherwise a comma list like "gate_fusion,coarsen:1200".
  std::string passes = "default";
  /// Schedule shape forwarded to BuildOptions::schedule_profile ("" =
  /// free-running B-Par; baseline emulations use "framework" etc.).
  std::string schedule_profile;
};

class BParExecutor final : public Executor {
 public:
  BParExecutor(rnn::Network& net, BParOptions options);
  ~BParExecutor() override;  // releases program-cache memory accounting

  StepResult train_batch(const rnn::BatchData& batch) override;
  using Executor::infer;
  InferResult infer(const rnn::BatchData& batch,
                    const InferOptions& options) override;
  /// Gradients of the most recent train_batch (which may have used a
  /// non-default sequence length).
  rnn::NetworkGrads& grads() override {
    return (last_train_ != nullptr ? *last_train_ : train_program()).grads();
  }
  [[nodiscard]] const char* name() const override { return "b-par"; }

  /// Program for the config's default shape, or for the (`seq_length`,
  /// `batch_rows`) shape bucket when given (0 → the config's value); built
  /// on first use and cached forever, so repeated calls with the same shape
  /// replay the prebuilt graph instead of rebuilding it — the contract the
  /// serving engine (src/serve) relies on.
  [[nodiscard]] graph::TrainingProgram& train_program(int seq_length = 0,
                                                      int batch_rows = 0);
  [[nodiscard]] graph::TrainingProgram& infer_program(int seq_length = 0,
                                                      int batch_rows = 0);
  [[nodiscard]] taskrt::Runtime& runtime() { return runtime_; }
  /// Number of distinct (seq_length, batch) shapes with cached graphs.
  [[nodiscard]] std::size_t cached_programs(bool training) const {
    return training ? train_programs_.size() : infer_programs_.size();
  }

  /// Re-quantizes the int8 weight sidecar from the current fp32 weights.
  /// Required after in-place weight updates (training steps, load_weights)
  /// when quantized_inference is on; cheap no-op otherwise.
  void refresh_quantized_weights();
  [[nodiscard]] bool quantized_inference() const {
    return options_.quantized_inference;
  }

 private:
  // (seq_length, batch_rows, resolved pass spec) — the pass spec is part of
  // the cache key so e.g. an env-var change between runs cannot alias a
  // differently-optimized graph.
  using ShapeKey = std::tuple<int, int, std::string>;
  graph::TrainingProgram& program(bool training, int seq_length,
                                  int batch_rows);
  /// Folds a run's measured per-task dispatch cost into the EMA that seeds
  /// the coarsening pass's threshold for future program builds.
  void note_stats(const taskrt::RunStats& stats);

  rnn::Network& net_;
  BParOptions options_;
  taskrt::Runtime runtime_;
  /// int8 weight sidecar shared by every cached inference program; built
  /// lazily the first time an inference graph is requested.
  std::unique_ptr<rnn::QuantizedNetwork> quantized_;
  std::map<ShapeKey, std::unique_ptr<graph::TrainingProgram>> train_programs_;
  std::map<ShapeKey, std::unique_ptr<graph::TrainingProgram>> infer_programs_;
  graph::TrainingProgram* last_train_ = nullptr;
  /// EMA of measured per-task dispatch overhead (ns), fed to new builds.
  std::uint64_t measured_dispatch_ns_ = 300;
};

}  // namespace bpar::exec
