#include "exec/executor.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace bpar::exec {

StepResult Executor::infer_batch(const rnn::BatchData& batch,
                                 std::span<int> predictions) {
  InferResult result = infer(batch, InferOptions{});
  if (!predictions.empty()) {
    BPAR_CHECK(predictions.size() == result.predictions.size(),
               "prediction buffer size mismatch: span holds ",
               predictions.size(), ", model produces ",
               result.predictions.size());
    std::copy(result.predictions.begin(), result.predictions.end(),
              predictions.begin());
  }
  StepResult step;
  step.loss = result.loss;
  step.wall_ms = result.wall_ms;
  step.stats = std::move(result.stats);
  return step;
}

}  // namespace bpar::exec
