#include "exec/reference_pass.hpp"

#include <algorithm>

#include "kernels/elementwise.hpp"
#include "kernels/gemm.hpp"
#include "rnn/cell_kernels.hpp"
#include "rnn/merge.hpp"
#include "util/check.hpp"

namespace bpar::exec {

using rnn::CellType;
using rnn::NetworkConfig;
using tensor::ConstMatrixView;
using tensor::MatrixView;

namespace {

ConstMatrixView input_slice(const rnn::BatchData& batch, int t, int r0,
                            int rb) {
  return batch.x[static_cast<std::size_t>(t)].cview().block(
      r0, 0, rb, batch.input_size());
}

std::span<const int> label_slice(const rnn::BatchData& batch, int t, int r0,
                                 int rb) {
  const std::size_t offset =
      batch.many_to_many()
          ? static_cast<std::size_t>(t) * batch.batch() + r0
          : static_cast<std::size_t>(r0);
  return std::span<const int>(batch.labels)
      .subspan(offset, static_cast<std::size_t>(rb));
}

int merged_layers(const NetworkConfig& cfg) {
  return cfg.many_to_many ? cfg.num_layers : cfg.num_layers - 1;
}

}  // namespace

double forward_pass(const rnn::Network& net, rnn::Workspace& ws,
                    const rnn::BatchData& batch, int r0, int total_batch) {
  const NetworkConfig& cfg = net.config();
  const int rb = ws.batch();
  const int steps = cfg.seq_length;
  const bool lstm = cfg.cell == CellType::kLstm;
  BPAR_CHECK(r0 + rb <= batch.batch(), "slice out of range");

  for (int l = 0; l < cfg.num_layers; ++l) {
    for (int dir = 0; dir < 2; ++dir) {
      const rnn::LayerParams& p = net.layer(dir, l);
      for (int s = 0; s < steps; ++s) {
        const int ti = dir == 0 ? s : steps - 1 - s;
        const ConstMatrixView x = l == 0
                                      ? input_slice(batch, ti, r0, rb)
                                      : ws.merged(l - 1, ti).cview();
        const ConstMatrixView h_prev =
            s == 0 ? ws.zero_state.cview() : ws.tape(dir, l, s - 1).h.cview();
        ConstMatrixView c_prev;
        if (lstm) {
          c_prev = s == 0 ? ws.zero_state.cview()
                          : ws.tape(dir, l, s - 1).c.cview();
        }
        rnn::cell_forward(p, x, h_prev, c_prev, ws.tape(dir, l, s));
      }
    }
    if (l < merged_layers(cfg)) {
      for (int t = 0; t < steps; ++t) {
        rnn::merge_forward(cfg.merge, ws.tape(0, l, t).h.cview(),
                           ws.tape(1, l, steps - 1 - t).h.cview(),
                           ws.merged(l, t).view());
      }
    }
  }

  const int last = cfg.num_layers - 1;
  if (!cfg.many_to_many) {
    rnn::merge_forward(cfg.merge, ws.tape(0, last, steps - 1).h.cview(),
                       ws.tape(1, last, steps - 1).h.cview(),
                       ws.final_merged.view());
  }

  const int outputs = ws.num_outputs();
  const double weight =
      static_cast<double>(rb) / (static_cast<double>(total_batch) * outputs);
  double loss = 0.0;
  for (int t = 0; t < outputs; ++t) {
    const ConstMatrixView y = cfg.many_to_many ? ws.merged(last, t).cview()
                                               : ws.final_merged.cview();
    MatrixView logits = ws.logits(t).view();
    kernels::gemm_nt(y, net.w_out.cview(), logits);
    kernels::add_bias_rows(logits, net.b_out.cview().row(0));
    kernels::softmax_rows(logits, ws.probs(t).view());
    loss += kernels::cross_entropy(ws.probs(t).cview(),
                                   label_slice(batch, t, r0, rb)) *
            weight;
  }
  return loss;
}

void backward_pass(const rnn::Network& net, rnn::Workspace& ws,
                   const rnn::BatchData& batch, int r0, int total_batch,
                   rnn::NetworkGrads& grads) {
  const NetworkConfig& cfg = net.config();
  const int rb = ws.batch();
  const int steps = cfg.seq_length;
  const int last = cfg.num_layers - 1;
  const bool lstm = cfg.cell == CellType::kLstm;
  const int outputs = ws.num_outputs();
  const float scale = static_cast<float>(
      static_cast<double>(rb) / (static_cast<double>(total_batch) * outputs));

  // Loss gradient + dense backward per output.
  for (int t = 0; t < outputs; ++t) {
    MatrixView dl = ws.dlogits(t).view();
    kernels::softmax_ce_grad(ws.probs(t).cview(),
                             label_slice(batch, t, r0, rb), dl);
    for (int r = 0; r < dl.rows; ++r) kernels::scale_inplace(dl.row(r), scale);

    const ConstMatrixView y = cfg.many_to_many ? ws.merged(last, t).cview()
                                               : ws.final_merged.cview();
    MatrixView dy =
        cfg.many_to_many ? ws.dmerged(0, last, t).view() : ws.dfinal.view();
    kernels::gemm_tn(dl, y, grads.dw_out.view(), 1.0F, 1.0F);
    kernels::sum_rows_acc(dl, grads.db_out.view().row(0));
    kernels::gemm_nn(dl, net.w_out.cview(), dy, 1.0F, 1.0F);
  }

  if (!cfg.many_to_many) {
    rnn::merge_backward(cfg.merge, ws.tape(0, last, steps - 1).h.cview(),
                        ws.tape(1, last, steps - 1).h.cview(),
                        ws.dfinal.cview(), ws.dh(0, last, steps - 1).view(),
                        ws.dh(1, last, steps - 1).view());
  }

  for (int l = last; l >= 0; --l) {
    if (l < merged_layers(cfg)) {
      for (int t = steps - 1; t >= 0; --t) {
        for (int src = 0; src < 2; ++src) {
          rnn::merge_backward(cfg.merge, ws.tape(0, l, t).h.cview(),
                              ws.tape(1, l, steps - 1 - t).h.cview(),
                              ws.dmerged(src, l, t).cview(),
                              ws.dh(0, l, t).view(),
                              ws.dh(1, l, steps - 1 - t).view());
        }
      }
    }
    for (int dir = 0; dir < 2; ++dir) {
      const rnn::LayerParams& p = net.layer(dir, l);
      rnn::LayerGrads& lg = grads.layers[dir][static_cast<std::size_t>(l)];
      for (int s = steps - 1; s >= 0; --s) {
        const int ti = dir == 0 ? s : steps - 1 - s;
        const ConstMatrixView x = l == 0
                                      ? input_slice(batch, ti, r0, rb)
                                      : ws.merged(l - 1, ti).cview();
        const ConstMatrixView h_prev =
            s == 0 ? ws.zero_state.cview() : ws.tape(dir, l, s - 1).h.cview();
        ConstMatrixView c_prev;
        if (lstm) {
          c_prev = s == 0 ? ws.zero_state.cview()
                          : ws.tape(dir, l, s - 1).c.cview();
        }
        ConstMatrixView dc_in;
        if (lstm && s < steps - 1) dc_in = ws.dc(dir, l, s).cview();
        MatrixView dx_acc;
        if (l > 0) {
          dx_acc = ws.dmerged(dir, l - 1, ti).view();
        } else if (ws.has_input_grads()) {
          dx_acc = ws.dx(dir, ti).view();
        }
        MatrixView dh_prev =
            s > 0 ? ws.dh(dir, l, s - 1).view() : ws.sink(dir, l).view();
        MatrixView dc_prev;
        if (lstm) {
          dc_prev = s > 0 ? ws.dc(dir, l, s - 1).view()
                          : ws.sink(dir, l).view();
        }
        rnn::cell_backward(p, x, h_prev, c_prev, ws.tape(dir, l, s),
                           ws.dh(dir, l, s).cview(), dc_in, dx_acc, dh_prev,
                           dc_prev, lg);
      }
    }
  }
}

void extract_predictions(const rnn::Workspace& ws, std::span<int> out) {
  auto& mutable_ws = const_cast<rnn::Workspace&>(ws);
  const int outputs = ws.num_outputs();
  BPAR_CHECK(static_cast<int>(out.size()) == outputs * ws.batch(),
             "prediction buffer size mismatch");
  for (int t = 0; t < outputs; ++t) {
    kernels::argmax_rows(
        mutable_ws.probs(t).cview(),
        out.subspan(static_cast<std::size_t>(t) * ws.batch(),
                    static_cast<std::size_t>(ws.batch())));
  }
}

void init_infer_outputs(const rnn::Workspace& ws, int total_batch,
                        bool want_logits, InferResult& result) {
  result.outputs = ws.num_outputs();
  result.batch = total_batch;
  result.num_classes = ws.config().num_classes;
  result.predictions.assign(
      static_cast<std::size_t>(result.outputs) *
          static_cast<std::size_t>(total_batch),
      0);
  if (want_logits) {
    result.logits.assign(result.predictions.size() *
                             static_cast<std::size_t>(result.num_classes),
                         0.0F);
  } else {
    result.logits.clear();
  }
}

void extract_infer_outputs(const rnn::Workspace& ws, int r0,
                           InferResult& result) {
  auto& mutable_ws = const_cast<rnn::Workspace&>(ws);
  const int outputs = ws.num_outputs();
  const int rows = ws.batch();
  BPAR_CHECK(outputs == result.outputs && r0 >= 0 &&
                 r0 + rows <= result.batch,
             "infer output slice out of range");
  std::span<int> preds(result.predictions);
  for (int t = 0; t < outputs; ++t) {
    kernels::argmax_rows(
        mutable_ws.probs(t).cview(),
        preds.subspan(static_cast<std::size_t>(t) * result.batch + r0,
                      static_cast<std::size_t>(rows)));
    if (!result.logits.empty()) {
      const tensor::Matrix& logits = mutable_ws.logits(t);
      for (int b = 0; b < rows; ++b) {
        const std::size_t row =
            static_cast<std::size_t>(t) * result.batch + r0 + b;
        std::copy_n(logits.data() + static_cast<std::size_t>(b) *
                                        result.num_classes,
                    static_cast<std::size_t>(result.num_classes),
                    result.logits.data() +
                        row * static_cast<std::size_t>(result.num_classes));
      }
    }
  }
}

}  // namespace bpar::exec
