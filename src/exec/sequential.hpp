// Single-threaded reference executor.
#pragma once

#include <memory>

#include "exec/executor.hpp"

namespace bpar::exec {

class SequentialExecutor final : public Executor {
 public:
  /// `net` must outlive the executor. Batches must match
  /// net.config().batch_size rows.
  explicit SequentialExecutor(rnn::Network& net);

  StepResult train_batch(const rnn::BatchData& batch) override;
  using Executor::infer;
  InferResult infer(const rnn::BatchData& batch,
                    const InferOptions& options) override;
  rnn::NetworkGrads& grads() override { return grads_; }
  [[nodiscard]] const char* name() const override { return "sequential"; }

  /// The workspace of the last pass (probs, tapes) — handy in tests.
  [[nodiscard]] rnn::Workspace& workspace() { return *ws_; }

 private:
  rnn::Network& net_;
  std::unique_ptr<rnn::Workspace> ws_;
  rnn::NetworkGrads grads_;
};

}  // namespace bpar::exec
