// B-Seq: the paper's data-parallelism-only baseline.
//
// The batch splits into `num_replicas` mini-batches; each mini-batch is one
// coarse task running the full sequential forward+backward pass. With R
// replicas the exposed parallelism is exactly R — which is why B-Seq stops
// scaling beyond R cores in Fig. 4.
#pragma once

#include <memory>
#include <vector>

#include "exec/common_options.hpp"
#include "exec/executor.hpp"

namespace bpar::exec {

struct BSeqOptions {
  /// Workers, replicas, pinning, watchdog, faults (`policy` is ignored:
  /// the coarse replica tasks are independent, so scheduling is trivial).
  CommonOptions common{};
};

class BSeqExecutor final : public Executor {
 public:
  BSeqExecutor(rnn::Network& net, BSeqOptions options);

  StepResult train_batch(const rnn::BatchData& batch) override;
  using Executor::infer;
  InferResult infer(const rnn::BatchData& batch,
                    const InferOptions& options) override;
  rnn::NetworkGrads& grads() override { return master_grads_; }
  [[nodiscard]] const char* name() const override { return "b-seq"; }

 private:
  StepResult run(const rnn::BatchData& batch, bool training,
                 InferResult* infer_result, const InferOptions& options);

  rnn::Network& net_;
  BSeqOptions options_;
  taskrt::Runtime runtime_;
  std::vector<std::unique_ptr<rnn::Workspace>> replicas_;
  std::vector<rnn::NetworkGrads> replica_grads_;
  std::vector<int> row_begin_;
  rnn::NetworkGrads master_grads_;
};

}  // namespace bpar::exec
