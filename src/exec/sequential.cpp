#include "exec/sequential.hpp"

#include "exec/reference_pass.hpp"
#include "perf/timer.hpp"
#include "util/check.hpp"
#include "obs/trace.hpp"

namespace bpar::exec {

SequentialExecutor::SequentialExecutor(rnn::Network& net) : net_(net) {
  ws_ = std::make_unique<rnn::Workspace>(net_.config(),
                                         net_.config().batch_size);
  grads_.init_like(net_);
}

StepResult SequentialExecutor::train_batch(const rnn::BatchData& batch) {
  BPAR_SPAN("exec.sequential.train_batch");
  const auto& cfg = net_.config();
  batch.validate(cfg.input_size, cfg.seq_length);
  BPAR_CHECK(batch.batch() == cfg.batch_size, "batch size mismatch");
  perf::WallTimer timer;
  grads_.zero();
  ws_->zero_backward();
  StepResult result;
  result.loss = forward_pass(net_, *ws_, batch, 0, batch.batch());
  backward_pass(net_, *ws_, batch, 0, batch.batch(), grads_);
  result.wall_ms = timer.elapsed_ms();
  return result;
}

InferResult SequentialExecutor::infer(const rnn::BatchData& batch,
                                      const InferOptions& options) {
  BPAR_SPAN("exec.sequential.infer");
  const auto& cfg = net_.config();
  batch.validate(cfg.input_size, cfg.seq_length);
  BPAR_CHECK(batch.batch() == cfg.batch_size, "batch size mismatch");
  perf::WallTimer timer;
  InferResult result;
  result.loss = forward_pass(net_, *ws_, batch, 0, batch.batch());
  init_infer_outputs(*ws_, batch.batch(), options.want_logits, result);
  extract_infer_outputs(*ws_, 0, result);
  result.wall_ms = timer.elapsed_ms();
  return result;
}

}  // namespace bpar::exec
