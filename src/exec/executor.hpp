// Common interface of the four execution strategies the paper compares:
//
//   SequentialExecutor — single-threaded reference (ground truth)
//   BParExecutor       — the paper's contribution: barrier-free task graph,
//                        model + data parallelism
//   BSeqExecutor       — data parallelism only (paper's B-Seq)
//   BarrierExecutor    — per-layer barriers + intra-op parallelism, the
//                        Keras/TensorFlow & PyTorch CPU execution style
//
// All executors compute identical losses and gradients for the same batch
// (up to float addition reordering, and bitwise for most pairs) — the paper
// stresses that B-Par's scheduling causes no accuracy loss.
#pragma once

#include <span>

#include "rnn/batch.hpp"
#include "rnn/network.hpp"
#include "taskrt/runtime.hpp"

namespace bpar::exec {

struct StepResult {
  double loss = 0.0;
  double wall_ms = 0.0;
  taskrt::RunStats stats;  // populated by task-based executors
};

class Executor {
 public:
  virtual ~Executor() = default;

  /// Forward + backward + gradient reduction on one batch. Gradients are
  /// available via grads() afterwards; the caller applies the optimizer.
  virtual StepResult train_batch(const rnn::BatchData& batch) = 0;

  /// Forward + loss only. If `predictions` is non-empty it receives argmax
  /// class ids (batch entries for many-to-one, steps*batch otherwise).
  virtual StepResult infer_batch(const rnn::BatchData& batch,
                                 std::span<int> predictions) = 0;

  /// Whole-batch mean gradients from the last train_batch call.
  virtual rnn::NetworkGrads& grads() = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace bpar::exec
