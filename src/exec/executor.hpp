// Common interface of the four execution strategies the paper compares:
//
//   SequentialExecutor — single-threaded reference (ground truth)
//   BParExecutor       — the paper's contribution: barrier-free task graph,
//                        model + data parallelism
//   BSeqExecutor       — data parallelism only (paper's B-Seq)
//   BarrierExecutor    — per-layer barriers + intra-op parallelism, the
//                        Keras/TensorFlow & PyTorch CPU execution style
//
// All executors compute identical losses and gradients for the same batch
// (up to float addition reordering, and bitwise for most pairs) — the paper
// stresses that B-Par's scheduling causes no accuracy loss.
//
// Inference contract: `infer(batch)` returns an InferResult that owns the
// argmax predictions (and, on request, the full logits) in batch layout —
// no caller-sized output spans. The old `infer_batch(batch, span)` overload
// survives only as a deprecated non-virtual shim over infer().
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "rnn/batch.hpp"
#include "rnn/network.hpp"
#include "taskrt/runtime.hpp"

namespace bpar::exec {

struct StepResult {
  double loss = 0.0;
  double wall_ms = 0.0;
  taskrt::RunStats stats;  // populated by task-based executors
};

struct InferOptions {
  /// Also copy the raw (pre-softmax) logits of every output into
  /// InferResult::logits. Off by default — the extra outputs*batch*classes
  /// copy only matters to consumers that re-rank or re-normalize (the
  /// serving engine uses it to compute exact per-request losses under
  /// batch padding).
  bool want_logits = false;
};

/// Forward-only result. Predictions (and optional logits) are in batch
/// layout: output timestep t of sequence b lives at index t*batch + b,
/// matching BatchData's label layout. `outputs` is 1 for many-to-one
/// models and the sequence length for many-to-many.
struct InferResult {
  double loss = 0.0;     // mean cross-entropy over the whole batch
  double wall_ms = 0.0;
  taskrt::RunStats stats;  // populated by task-based executors

  int outputs = 0;
  int batch = 0;
  int num_classes = 0;
  std::vector<int> predictions;  // [outputs * batch] argmax class ids
  std::vector<float> logits;     // [outputs * batch * classes]; empty
                                 // unless InferOptions::want_logits

  [[nodiscard]] int prediction(int t, int b) const {
    return predictions[static_cast<std::size_t>(t) *
                           static_cast<std::size_t>(batch) +
                       static_cast<std::size_t>(b)];
  }
  /// NaN/Inf output guard: false when the batch loss or any returned logit
  /// is non-finite — poisoned inputs (or faulted kernels) surface here, and
  /// the serving engine treats it as an execution failure (retry/bisect).
  [[nodiscard]] bool finite() const {
    if (!std::isfinite(loss)) return false;
    for (const float v : logits) {
      if (!std::isfinite(v)) return false;
    }
    return true;
  }

  /// Logits of output t, sequence b (empty span unless requested).
  [[nodiscard]] std::span<const float> logits_row(int t, int b) const {
    if (logits.empty()) return {};
    const std::size_t row = static_cast<std::size_t>(t) *
                                static_cast<std::size_t>(batch) +
                            static_cast<std::size_t>(b);
    return std::span<const float>(logits).subspan(
        row * static_cast<std::size_t>(num_classes),
        static_cast<std::size_t>(num_classes));
  }
};

class Executor {
 public:
  virtual ~Executor() = default;

  /// Forward + backward + gradient reduction on one batch. Gradients are
  /// available via grads() afterwards; the caller applies the optimizer.
  virtual StepResult train_batch(const rnn::BatchData& batch) = 0;

  /// Forward + loss; always extracts argmax predictions (and logits when
  /// asked). This is the primary inference API.
  virtual InferResult infer(const rnn::BatchData& batch,
                            const InferOptions& options) = 0;
  InferResult infer(const rnn::BatchData& batch) {
    return infer(batch, InferOptions{});
  }

  /// Deprecated shim over infer(): if `predictions` is non-empty it must be
  /// pre-sized to outputs*batch and receives the argmax class ids.
  [[deprecated("use infer(batch) -> InferResult")]]
  StepResult infer_batch(const rnn::BatchData& batch,
                         std::span<int> predictions);

  /// Whole-batch mean gradients from the last train_batch call.
  virtual rnn::NetworkGrads& grads() = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace bpar::exec
