// Per-layer-barrier executor — the Keras/TensorFlow & PyTorch CPU style.
//
// Executes the BRNN layer by layer: the forward-direction sweep (cells
// sequential in time, each cell's batch rows split across workers with a
// fork-join parallel_for — "intra-op parallelism"), then the reverse sweep,
// then the merges, then an implicit barrier before the next layer. This is
// exactly the schedule the paper attributes to the frameworks (§II), and
// its parallelism is bounded by what one cell exposes.
#pragma once

#include <memory>

#include "exec/common_options.hpp"
#include "exec/executor.hpp"

namespace bpar::exec {

struct BarrierOptions {
  /// Workers, pinning, watchdog, faults (`num_replicas` and `policy` are
  /// ignored: intra-op fork-join has no replicas and uses FIFO dispatch).
  CommonOptions common{};
  /// Minimum batch rows per intra-op chunk.
  int row_grain = 8;
};

class BarrierExecutor final : public Executor {
 public:
  BarrierExecutor(rnn::Network& net, BarrierOptions options);

  StepResult train_batch(const rnn::BatchData& batch) override;
  using Executor::infer;
  InferResult infer(const rnn::BatchData& batch,
                    const InferOptions& options) override;
  rnn::NetworkGrads& grads() override { return grads_; }
  [[nodiscard]] const char* name() const override { return "layer-barrier"; }

 private:
  void forward(const rnn::BatchData& batch);
  double loss_head(const rnn::BatchData& batch);

  rnn::Network& net_;
  BarrierOptions options_;
  taskrt::Runtime runtime_;
  std::unique_ptr<rnn::Workspace> ws_;
  rnn::NetworkGrads grads_;
};

}  // namespace bpar::exec
