#include "exec/barrier_executor.hpp"

#include "exec/reference_pass.hpp"
#include "kernels/elementwise.hpp"
#include "kernels/gemm.hpp"
#include "perf/timer.hpp"
#include "rnn/cell_kernels.hpp"
#include "rnn/merge.hpp"
#include "util/check.hpp"
#include "obs/trace.hpp"

namespace bpar::exec {

using rnn::CellType;
using tensor::ConstMatrixView;

BarrierExecutor::BarrierExecutor(rnn::Network& net, BarrierOptions options)
    : net_(net),
      options_(options),
      runtime_({.num_workers = options.common.num_workers,
                .policy = taskrt::SchedulerPolicy::kFifo,
                .record_trace = false,
                .pin_threads = options.common.pin_threads,
                .watchdog_ms = options.common.watchdog_ms,
                .faults = options.common.faults}) {
  ws_ = std::make_unique<rnn::Workspace>(net_.config(),
                                         net_.config().batch_size);
  grads_.init_like(net_);
}

void BarrierExecutor::forward(const rnn::BatchData& batch) {
  const auto& cfg = net_.config();
  const int steps = cfg.seq_length;
  const int batch_rows = cfg.batch_size;
  const bool lstm = cfg.cell == CellType::kLstm;
  const int merged_layers =
      cfg.many_to_many ? cfg.num_layers : cfg.num_layers - 1;

  for (int l = 0; l < cfg.num_layers; ++l) {
    // Forward sweep, then reverse sweep — sequential in time, each cell's
    // rows split across workers (intra-op parallelism). parallel_for joins
    // at the end of every cell: the framework-style synchronization.
    for (int dir = 0; dir < 2; ++dir) {
      const rnn::LayerParams& p = net_.layer(dir, l);
      for (int s = 0; s < steps; ++s) {
        const int ti = dir == 0 ? s : steps - 1 - s;
        runtime_.parallel_for(
            0, batch_rows, options_.row_grain,
            [&, dir, l, s, ti](std::int64_t lo, std::int64_t hi) {
              const int r0 = static_cast<int>(lo);
              const int rows = static_cast<int>(hi - lo);
              const ConstMatrixView x =
                  l == 0 ? batch.x[static_cast<std::size_t>(ti)].cview().block(
                               r0, 0, rows, cfg.input_size)
                         : ws_->merged(l - 1, ti).cview().block(
                               r0, 0, rows, cfg.merged_size());
              const ConstMatrixView h_prev =
                  s == 0 ? ws_->zero_state.cview().block(r0, 0, rows,
                                                         cfg.hidden_size)
                         : ws_->tape(dir, l, s - 1).h.cview().block(
                               r0, 0, rows, cfg.hidden_size);
              ConstMatrixView c_prev;
              if (lstm) {
                c_prev = s == 0 ? ws_->zero_state.cview().block(
                                      r0, 0, rows, cfg.hidden_size)
                                : ws_->tape(dir, l, s - 1).c.cview().block(
                                      r0, 0, rows, cfg.hidden_size);
              }
              rnn::cell_forward(p, x, h_prev, c_prev,
                                ws_->tape(dir, l, s).views_rows(r0, rows));
            });
      }
    }
    if (l < merged_layers) {
      runtime_.parallel_for(0, steps, 1,
                            [&, l](std::int64_t lo, std::int64_t hi) {
                              for (std::int64_t t = lo; t < hi; ++t) {
                                rnn::merge_forward(
                                    cfg.merge,
                                    ws_->tape(0, l, static_cast<int>(t)).h.cview(),
                                    ws_->tape(1, l, steps - 1 - static_cast<int>(t))
                                        .h.cview(),
                                    ws_->merged(l, static_cast<int>(t)).view());
                              }
                            });
    }
  }
  if (!cfg.many_to_many) {
    rnn::merge_forward(cfg.merge,
                       ws_->tape(0, cfg.num_layers - 1, steps - 1).h.cview(),
                       ws_->tape(1, cfg.num_layers - 1, steps - 1).h.cview(),
                       ws_->final_merged.view());
  }
}

double BarrierExecutor::loss_head(const rnn::BatchData& batch) {
  const auto& cfg = net_.config();
  const int last = cfg.num_layers - 1;
  const int outputs = ws_->num_outputs();
  const double weight = 1.0 / outputs;
  double loss = 0.0;
  for (int t = 0; t < outputs; ++t) {
    const ConstMatrixView y = cfg.many_to_many ? ws_->merged(last, t).cview()
                                               : ws_->final_merged.cview();
    auto logits = ws_->logits(t).view();
    kernels::gemm_nt(y, net_.w_out.cview(), logits);
    kernels::add_bias_rows(logits, net_.b_out.cview().row(0));
    kernels::softmax_rows(logits, ws_->probs(t).view());
    loss += kernels::cross_entropy(ws_->probs(t).cview(), batch.labels_at(t)) *
            weight;
  }
  return loss;
}

StepResult BarrierExecutor::train_batch(const rnn::BatchData& batch) {
  BPAR_SPAN("exec.barrier.train_batch");
  const auto& cfg = net_.config();
  batch.validate(cfg.input_size, cfg.seq_length);
  BPAR_CHECK(batch.batch() == cfg.batch_size, "batch size mismatch");
  perf::WallTimer timer;
  grads_.zero();
  ws_->zero_backward();
  StepResult result;
  forward(batch);
  result.loss = loss_head(batch);
  // Backward runs the reference pass (dense backward onward); forward
  // buffers are already filled identically.
  backward_pass(net_, *ws_, batch, 0, batch.batch(), grads_);
  result.wall_ms = timer.elapsed_ms();
  return result;
}

InferResult BarrierExecutor::infer(const rnn::BatchData& batch,
                                   const InferOptions& options) {
  BPAR_SPAN("exec.barrier.infer");
  const auto& cfg = net_.config();
  batch.validate(cfg.input_size, cfg.seq_length);
  BPAR_CHECK(batch.batch() == cfg.batch_size, "batch size mismatch");
  perf::WallTimer timer;
  InferResult result;
  forward(batch);
  result.loss = loss_head(batch);
  init_infer_outputs(*ws_, batch.batch(), options.want_logits, result);
  extract_infer_outputs(*ws_, 0, result);
  result.wall_ms = timer.elapsed_ms();
  return result;
}

}  // namespace bpar::exec
