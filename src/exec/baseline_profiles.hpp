// Framework cost profiles for simulating the Keras/TensorFlow and PyTorch
// CPU baselines (DESIGN.md §4).
//
// The baselines' *schedule* (per-layer barriers, sequential directions,
// intra-op chunking) is encoded as a shape-only TaskGraph; these profiles
// supply the per-task cost adjustments that distinguish the frameworks:
//
//   * gemm_cost_multiplier — kernel quality relative to our mini-BLAS.
//     The paper measures PyTorch-CPU 2-5x slower than Keras-CPU at
//     identical math (Tables III/IV), dominated by op-by-op execution.
//   * per_task_dispatch_ns — per-op dispatch/framework overhead.
//   * intra_op_efficiency  — fraction of ideal speedup the fork-join
//     chunking achieves (MKL-parallel loses to task parallelism; ~0.7
//     is typical for the gate-GEMM sizes involved).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/brnn_graph.hpp"
#include "sim/cost_model.hpp"
#include "taskrt/task_graph.hpp"

namespace bpar::exec {

struct FrameworkProfile {
  std::string name;
  double gemm_cost_multiplier = 1.0;
  double per_task_dispatch_ns = 0.0;
  double intra_op_efficiency = 1.0;
  int max_intra_op_chunks = 48;
};

/// Keras/TensorFlow 2.3 with MKL + oneDNN: well-fused kernels, modest
/// dispatch cost.
[[nodiscard]] FrameworkProfile keras_cpu_profile();

/// PyTorch 1.7 CPU: op-by-op dispatch, weaker RNN-cell kernels.
[[nodiscard]] FrameworkProfile pytorch_cpu_profile();

/// B-Par / B-Seq run our own kernels with no framework overhead.
[[nodiscard]] FrameworkProfile native_profile();

/// Build options for a shape-only baseline graph at `cores` intra-op lanes.
[[nodiscard]] graph::BuildOptions baseline_build_options(
    const FrameworkProfile& profile, int cores, int batch_rows,
    bool training = true);

/// Per-task simulator costs for a graph under `profile`.
[[nodiscard]] std::vector<std::uint64_t> profile_costs(
    const taskrt::TaskGraph& graph, const sim::Calibration& cal,
    const FrameworkProfile& profile);

}  // namespace bpar::exec
