#include "obs/memory.hpp"

#include <cstdio>
#include <cstring>
#include <string>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "obs/metrics.hpp"

namespace bpar::obs {

namespace {

#if defined(__linux__)
// Reads a small /proc file into `buf`; returns bytes read (0 on failure).
std::size_t slurp(const char* path, char* buf, std::size_t cap) {
  std::FILE* f = std::fopen(path, "re");
  if (f == nullptr) return 0;
  const std::size_t n = std::fread(buf, 1, cap - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  return n;
}
#endif

}  // namespace

ProcSelfStats read_proc_self() {
  ProcSelfStats out;
#if defined(__linux__)
  char buf[4096];
  const double page = static_cast<double>(::sysconf(_SC_PAGESIZE));
  if (slurp("/proc/self/statm", buf, sizeof buf) > 0) {
    unsigned long long vm_pages = 0;
    unsigned long long rss_pages = 0;
    if (std::sscanf(buf, "%llu %llu", &vm_pages, &rss_pages) == 2) {
      out.vm_bytes = static_cast<double>(vm_pages) * page;
      out.rss_bytes = static_cast<double>(rss_pages) * page;
      out.valid = true;
    }
  }
  if (slurp("/proc/self/stat", buf, sizeof buf) > 0) {
    // Field 2 (comm) may contain spaces; everything after the closing ')'
    // is space-separated: state is field 3, minflt 10, majflt 12,
    // num_threads 20.
    const char* p = std::strrchr(buf, ')');
    if (p != nullptr) {
      unsigned long long minflt = 0;
      unsigned long long majflt = 0;
      long long threads = 0;
      // Skips: state(3) ppid pgrp session tty tpgid flags -> minflt(10),
      // cminflt -> majflt(12), then cmajflt utime stime cutime cstime
      // priority nice -> num_threads(20).
      if (std::sscanf(p + 1,
                      " %*c %*d %*d %*d %*d %*d %*u %llu %*u %llu %*u %*u "
                      "%*u %*d %*d %*d %*d %lld",
                      &minflt, &majflt, &threads) == 3) {
        out.minor_faults = static_cast<double>(minflt);
        out.major_faults = static_cast<double>(majflt);
        out.threads = static_cast<double>(threads);
      }
    }
  }
  if (slurp("/proc/self/status", buf, sizeof buf) > 0) {
    const auto field = [&](const char* key) -> double {
      const char* hit = std::strstr(buf, key);
      if (hit == nullptr) return 0.0;
      unsigned long long v = 0;
      if (std::sscanf(hit + std::strlen(key), " %llu", &v) != 1) return 0.0;
      return static_cast<double>(v);
    };
    out.ctx_voluntary = field("voluntary_ctxt_switches:");
    out.ctx_involuntary = field("nonvoluntary_ctxt_switches:");
  }
#endif
  return out;
}

void publish_memory_metrics() {
  Registry& reg = Registry::instance();
  const auto publish = [&](const char* sub, const MemTracker& t) {
    const std::string base = std::string("mem.") + sub;
    reg.gauge(base + ".bytes").set(static_cast<double>(t.current_bytes()));
    reg.gauge(base + ".peak_bytes").set(static_cast<double>(t.peak_bytes()));
    reg.gauge(base + ".allocs").set(static_cast<double>(t.allocs()));
  };
  publish("tensor", tensor_memory());
  publish("program_cache", program_cache_memory());
  publish("serve_queue", serve_queue_memory());

  const ProcSelfStats proc = read_proc_self();
  if (proc.valid) {
    reg.gauge("proc.rss_bytes").set(proc.rss_bytes);
    reg.gauge("proc.vm_bytes").set(proc.vm_bytes);
    reg.gauge("proc.minor_faults").set(proc.minor_faults);
    reg.gauge("proc.major_faults").set(proc.major_faults);
    reg.gauge("proc.threads").set(proc.threads);
    reg.gauge("proc.ctx_voluntary").set(proc.ctx_voluntary);
    reg.gauge("proc.ctx_involuntary").set(proc.ctx_involuntary);
  }
}

}  // namespace bpar::obs
