// Flight recorder (DESIGN.md §5j): after-the-fact incident capture.
//
// The tracing rings are drop-oldest, the request-event ring is bounded,
// and the sampler keeps a rolling snapshot window — so at any moment the
// process already holds "the last N seconds of everything". A
// FlightRecorder turns that into a self-contained dump bundle on demand:
//
//   <dir>/<stem>-<seq>-<reason>.trace.json    unified Chrome trace
//   <dir>/<stem>-<seq>-<reason>.report.json   schema-versioned report
//                                             (trigger, engine state,
//                                             metrics, folded profile)
//
// trigger() is thread-safe, debounced (a breaker flapping at 10 Hz writes
// one bundle, not six hundred), and rotates the directory to both a
// bundle-count and a total-byte bound so a long-lived server can never
// fill a disk. Content comes from pluggable providers so obs stays
// layered below taskrt/serve: the serving engine installs a trace writer,
// a /statz-style state JSON fn, and a folded-profile fn.
//
// Fatal signals (SIGSEGV/SIGBUS/SIGFPE/SIGABRT) get the async-signal-safe
// treatment: install_fatal_handler() pre-opens an fd and pre-serializes a
// header; the handler only write()s that header plus the signal number
// and re-raises — the full (allocating, locking) dump is deliberately
// deferred to the next process start, which finds the marker file.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace bpar::obs {

struct FlightRecorderOptions {
  std::string dir = "dumps";
  std::string stem = "dump";
  /// Rotation bounds: oldest bundles are pruned past either limit.
  std::size_t max_bundles = 8;
  std::uint64_t max_total_bytes = 64ULL << 20;
  /// Minimum spacing between written dumps; triggers inside the window
  /// are counted in suppressed() and return written=false.
  std::uint32_t debounce_ms = 5000;
};

struct DumpResult {
  bool written = false;
  std::string reason;       // sanitized trigger reason
  std::string skipped;      // why nothing was written ("debounced", ...)
  std::string trace_path;
  std::string report_path;
};

class FlightRecorder {
 public:
  /// Writes the unified trace; returns false when no trace is available
  /// (the bundle then records "trace": null).
  using TraceWriter = std::function<bool(std::ostream&)>;
  using TextFn = std::function<std::string()>;

  explicit FlightRecorder(FlightRecorderOptions options = {});
  ~FlightRecorder();  // uninstalls the fatal handler if this installed it

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void set_trace_writer(TraceWriter fn);
  /// Complete JSON object describing live engine state (statz_json). Runs
  /// with the recorder's lock held, so it may read dumps()/suppressed()
  /// (lock-free atomics) but must not call trigger() or bundle_reports().
  void set_state_json(TextFn fn);
  /// Folded span-stack profile captured at dump time (may be empty).
  void set_profile_text(TextFn fn);

  /// Snapshots everything into a new bundle. Thread-safe; debounced.
  DumpResult trigger(std::string_view reason);

  [[nodiscard]] std::uint64_t dumps() const;       // bundles written
  [[nodiscard]] std::uint64_t suppressed() const;  // debounced triggers
  [[nodiscard]] const FlightRecorderOptions& options() const {
    return options_;
  }

  /// Bundle report paths currently on disk, oldest first (rotation tests).
  [[nodiscard]] std::vector<std::string> bundle_reports() const;

  /// Installs process-wide handlers for SIGSEGV/SIGBUS/SIGFPE/SIGABRT.
  /// Only one recorder per process can hold them; returns false if
  /// another already does or the marker fd cannot be opened.
  bool install_fatal_handler();
  /// The pre-opened marker file the handler writes ("" until installed).
  [[nodiscard]] std::string fatal_path() const;
  /// Exactly what the signal handler does minus the re-raise: write() the
  /// pre-serialized header + "signal N" line to the pre-opened fd.
  /// Async-signal-safe. Exposed so tests can exercise it directly.
  void write_fatal_record(int sig);

 private:
  DumpResult write_bundle_locked(std::string_view reason);
  void rotate_locked(const std::string& keep_base);

  FlightRecorderOptions options_;
  mutable std::mutex mu_;
  TraceWriter trace_writer_;
  TextFn state_json_;
  TextFn profile_text_;
  std::uint64_t seq_ = 0;
  // Atomics, not mu_-guarded: the state-JSON provider runs inside
  // trigger() (mu_ held) and reads these for its "flight" section.
  std::atomic<std::uint64_t> dumps_{0};
  std::atomic<std::uint64_t> suppressed_{0};
  std::uint64_t last_dump_ns_ = 0;  // steady ns of the last written dump
  int fatal_fd_ = -1;
  bool handler_installed_ = false;
  std::string fatal_path_;
  std::string fatal_header_;  // pre-serialized: no allocation in handler
};

}  // namespace bpar::obs
