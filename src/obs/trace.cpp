#include "obs/trace.hpp"

#include <bit>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

namespace bpar::obs {
namespace {

// Packed second word of a ring slot:
//   bits [0,32)  payload
//   bits [32,48) name id
//   bits [48,56) kind
//   bits [56,64) extra
std::uint64_t pack_word(const TraceEvent& ev) {
  return static_cast<std::uint64_t>(ev.payload) |
         (static_cast<std::uint64_t>(ev.name) << 32) |
         (static_cast<std::uint64_t>(static_cast<std::uint8_t>(ev.kind))
          << 48) |
         (static_cast<std::uint64_t>(ev.extra) << 56);
}

TraceEvent unpack(std::uint64_t ts, std::uint64_t word) {
  TraceEvent ev;
  ev.ts_ns = ts;
  ev.payload = static_cast<std::uint32_t>(word);
  ev.name = static_cast<std::uint16_t>(word >> 32);
  ev.kind = static_cast<EventKind>(static_cast<std::uint8_t>(word >> 48));
  ev.extra = static_cast<std::uint8_t>(word >> 56);
  return ev;
}

std::uint32_t duration_payload(std::uint64_t start_ns, std::uint64_t end_ns) {
  // Durations are stored as float bits: ns precision for short spans, full
  // range (hours) for long ones, in 4 bytes.
  const float dur =
      end_ns > start_ns ? static_cast<float>(end_ns - start_ns) : 0.0F;
  return std::bit_cast<std::uint32_t>(dur);
}

class ThreadRing {
 public:
  explicit ThreadRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
  }

  // Single writer (the owning thread). Relaxed slot stores + release head
  // bump: a collector that acquires `head` sees every slot below it.
  void record(const TraceEvent& ev) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[h & mask_];
    s.ts.store(ev.ts_ns, std::memory_order_relaxed);
    s.word.store(pack_word(ev), std::memory_order_relaxed);
    head_.store(h + 1, std::memory_order_release);
  }

  void snapshot(ThreadTrace& out) const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::size_t cap = mask_ + 1;
    const std::uint64_t kept = h < cap ? h : cap;
    out.dropped = h - kept;
    out.events.reserve(static_cast<std::size_t>(kept));
    for (std::uint64_t i = h - kept; i < h; ++i) {
      const Slot& s = slots_[i & mask_];
      out.events.push_back(
          unpack(s.ts.load(std::memory_order_relaxed),
                 s.word.load(std::memory_order_relaxed)));
    }
  }

  [[nodiscard]] std::size_t held() const {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::size_t cap = mask_ + 1;
    return static_cast<std::size_t>(h < cap ? h : cap);
  }

  void reset() { head_.store(0, std::memory_order_relaxed); }

 private:
  struct Slot {
    std::atomic<std::uint64_t> ts{0};
    std::atomic<std::uint64_t> word{0};
  };
  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
};

struct RingEntry {
  std::unique_ptr<ThreadRing> ring;
  std::string name;
};

struct RingDirectory {
  std::mutex mu;
  std::vector<RingEntry> entries;
};

RingDirectory& directory() {
  static RingDirectory* dir = new RingDirectory();  // leaked: outlives threads
  return *dir;
}

std::size_t initial_ring_capacity() {
  if (const char* env = std::getenv("BPAR_TRACE_CAPACITY");
      env != nullptr && env[0] != '\0') {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 16) return static_cast<std::size_t>(v);
  }
  return std::size_t{1} << 16;
}

std::atomic<std::size_t>& capacity_storage() {
  static std::atomic<std::size_t> cap{initial_ring_capacity()};
  return cap;
}

struct LocalRing {
  ThreadRing* ring = nullptr;
  int id = -1;
  // Thread label set before the ring exists; applied at registration so
  // set_thread_name() never forces a ring allocation on untraced threads.
  std::string pending_name;
};

LocalRing& local_state() {
  thread_local LocalRing local;
  return local;
}

LocalRing& local_ring() {
  LocalRing& local = local_state();
  if (local.ring == nullptr) {
    RingDirectory& dir = directory();
    const std::lock_guard<std::mutex> lock(dir.mu);
    local.id = static_cast<int>(dir.entries.size());
    dir.entries.push_back({std::make_unique<ThreadRing>(ring_capacity()),
                           std::move(local.pending_name)});
    local.ring = dir.entries.back().ring.get();
  }
  return local;
}

struct NameTable {
  std::mutex mu;
  std::map<std::string, std::uint16_t, std::less<>> ids;
  std::vector<std::string> names{"<overflow>"};  // id 0 reserved
};

NameTable& name_table() {
  static NameTable* table = new NameTable();
  return *table;
}

}  // namespace

double TraceEvent::duration_ns() const {
  return static_cast<double>(std::bit_cast<float>(payload));
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if !defined(BPAR_NO_TRACING)
namespace detail {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace detail

void set_tracing_enabled(bool on) {
  detail::g_tracing_enabled.store(on, std::memory_order_relaxed);
}
#endif

std::uint16_t intern_name(std::string_view name) {
  NameTable& table = name_table();
  const std::lock_guard<std::mutex> lock(table.mu);
  if (const auto it = table.ids.find(name); it != table.ids.end()) {
    return it->second;
  }
  if (table.names.size() > 0xFFFF) return 0;
  const auto id = static_cast<std::uint16_t>(table.names.size());
  table.names.emplace_back(name);
  table.ids.emplace(std::string(name), id);
  return id;
}

std::string interned_name(std::uint16_t id) {
  NameTable& table = name_table();
  const std::lock_guard<std::mutex> lock(table.mu);
  if (id >= table.names.size()) return "<unknown>";
  return table.names[id];
}

void record_span(std::uint16_t name, std::uint64_t start_ns,
                 std::uint64_t end_ns) {
  if (!tracing_enabled()) return;
  local_ring().ring->record({start_ns, duration_payload(start_ns, end_ns),
                             name, EventKind::kSpan, 0});
}

void record_task(std::uint16_t name, std::uint8_t task_kind,
                 std::uint64_t start_ns, std::uint64_t end_ns) {
  if (!tracing_enabled()) return;
  local_ring().ring->record({start_ns, duration_payload(start_ns, end_ns),
                             name, EventKind::kTask, task_kind});
}

void record_counter(std::uint16_t name, std::uint64_t ts_ns,
                    std::uint64_t value) {
  if (!tracing_enabled()) return;
  const std::uint32_t clamped =
      value > 0xFFFFFFFFULL ? 0xFFFFFFFFU : static_cast<std::uint32_t>(value);
  local_ring().ring->record({ts_ns, clamped, name, EventKind::kCounter, 0});
}

void record_instant(std::uint16_t name, std::uint64_t ts_ns) {
  if (!tracing_enabled()) return;
  local_ring().ring->record({ts_ns, 0, name, EventKind::kInstant, 0});
}

void set_thread_name(std::string name) {
  LocalRing& local = local_state();
  if (local.ring == nullptr) {
    local.pending_name = std::move(name);
    return;
  }
  RingDirectory& dir = directory();
  const std::lock_guard<std::mutex> lock(dir.mu);
  dir.entries[static_cast<std::size_t>(local.id)].name = std::move(name);
}

std::vector<ThreadTrace> collect() {
  RingDirectory& dir = directory();
  const std::lock_guard<std::mutex> lock(dir.mu);
  std::vector<ThreadTrace> out;
  out.reserve(dir.entries.size());
  for (std::size_t i = 0; i < dir.entries.size(); ++i) {
    ThreadTrace t;
    t.ring_id = static_cast<int>(i);
    t.name = dir.entries[i].name;
    dir.entries[i].ring->snapshot(t);
    out.push_back(std::move(t));
  }
  return out;
}

std::size_t events_held() {
  RingDirectory& dir = directory();
  const std::lock_guard<std::mutex> lock(dir.mu);
  std::size_t total = 0;
  for (const auto& entry : dir.entries) total += entry.ring->held();
  return total;
}

void clear() {
  RingDirectory& dir = directory();
  const std::lock_guard<std::mutex> lock(dir.mu);
  for (auto& entry : dir.entries) entry.ring->reset();
}

std::size_t ring_capacity() {
  return capacity_storage().load(std::memory_order_relaxed);
}

void set_ring_capacity(std::size_t events) {
  capacity_storage().store(events < 16 ? 16 : events,
                           std::memory_order_relaxed);
}

}  // namespace bpar::obs
