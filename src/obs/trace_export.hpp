// Chrome-trace (Perfetto-loadable) JSON emission for span snapshots.
//
// write_trace_json() dumps every thread ring collected so far as one JSON
// document: an "X" slice per span/task event (nested slices render as
// stacks), a "C" counter sample per counter event (ready-FIFO depth,
// per-worker deque depths), an "i" instant per instant event, plus
// thread_name metadata rows. Open the file at https://ui.perfetto.dev or
// chrome://tracing.
//
// The lower-level chrome_* helpers are shared with taskrt/export.cpp,
// which merges per-task rows from a RunStats trace into the same document.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace bpar::obs {

/// Streams chrome-trace events and tracks the leading-comma state.
class ChromeTraceWriter {
 public:
  explicit ChromeTraceWriter(std::ostream& os);
  ~ChromeTraceWriter();  // closes the JSON array

  void thread_name(int pid, int tid, std::string_view name);
  /// Complete slice ("ph":"X"). Times in ns; written as microseconds.
  void slice(std::string_view name, std::string_view cat, std::uint64_t ts_ns,
             double dur_ns, int pid, int tid);
  /// Slice carrying a pre-rendered JSON args object (must be a complete
  /// `{...}` literal) — how task slices publish {task, deps, worker, ...}
  /// for bpar_prof to re-parse.
  void slice_args(std::string_view name, std::string_view cat,
                  std::uint64_t ts_ns, double dur_ns, int pid, int tid,
                  std::string_view args_json);
  void counter(std::string_view name, std::uint64_t ts_ns, int pid,
               std::uint64_t value);
  void instant(std::string_view name, std::uint64_t ts_ns, int pid, int tid);
  /// Instant carrying a pre-rendered JSON args object (complete `{...}`
  /// literal) — how per-request stage markers publish {req, arg, ...} for
  /// `bpar_prof request` to re-parse.
  void instant_args(std::string_view name, std::uint64_t ts_ns, int pid,
                    int tid, std::string_view args_json);

  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

 private:
  void begin_event();
  std::ostream& os_;
  bool first_ = true;
};

/// Emits one ThreadTrace's events through `writer` with row id `tid`,
/// shifting timestamps down by `base_ns`. `skip_tasks` drops kTask events
/// (used when task rows come from a richer source).
void write_thread_events(ChromeTraceWriter& writer, const ThreadTrace& thread,
                         int pid, int tid, std::uint64_t base_ns,
                         bool skip_tasks = false);

/// Extra events appended to a span-ring export: called with the open
/// writer and the timestamp base so callers (e.g. the serving engine's
/// request-stage markers in a flight-recorder dump) land on the same
/// timeline. Same signature as taskrt::ExtraTraceEmitter, defined here so
/// obs-level consumers need no taskrt dependency.
using ExtraEventEmitter =
    std::function<void(ChromeTraceWriter&, std::uint64_t base_ns)>;

/// The whole-process timeline: collect() rendered as one chrome-trace JSON.
void write_trace_json(std::ostream& os);
void write_trace_json(std::ostream& os, const ExtraEventEmitter& extra);
void write_trace_json_file(const std::string& path);

/// Smallest timestamp across `threads` (0 when empty) — the export base so
/// Perfetto shows times from ~0 instead of hours of steady-clock uptime.
[[nodiscard]] std::uint64_t earliest_ts(const std::vector<ThreadTrace>& threads);

}  // namespace bpar::obs
