// Weighted fixed-bin histogram — the one binning implementation shared by
// the Fig. 7 IPC / MPKI distributions (via the perf::Histogram alias) and
// the obs metrics registry's HistogramCells.
#pragma once

#include <string>
#include <vector>

namespace bpar::obs {

/// Estimated q-quantile from binned weights over `edges` (the Histogram
/// binning convention: bin 0 is (-inf, edges[0]), bin i is
/// [edges[i-1], edges[i]), the last bin is [edges.back(), inf)), linearly
/// interpolated within the containing bin with the open-ended outer bins
/// clamped to their finite edge. Shared by Histogram::quantile and the
/// MetricsSampler's windowed (delta-weight) rollups.
[[nodiscard]] double quantile_from_bins(const std::vector<double>& edges,
                                        const std::vector<double>& weights,
                                        double q);

class Histogram {
 public:
  /// `edges` are ascending inner bin boundaries; values below edges.front()
  /// land in bin 0, values >= edges.back() land in the last bin. With E
  /// edges there are E+1 bins.
  explicit Histogram(std::vector<double> edges);

  void add(double value, double weight = 1.0);

  [[nodiscard]] std::size_t bins() const { return weights_.size(); }
  [[nodiscard]] double bin_weight(std::size_t bin) const;
  /// Fraction of total weight in `bin` (0 if empty histogram).
  [[nodiscard]] double bin_fraction(std::size_t bin) const;
  [[nodiscard]] double total_weight() const { return total_; }
  /// Weighted mean of added values.
  [[nodiscard]] double mean() const;
  /// Estimated q-quantile (q in [0, 1]) from the binned weights, linearly
  /// interpolated within the containing bin. The open-ended outer bins
  /// clamp to their finite edge, so tail quantiles are conservative lower
  /// bounds there; use util::percentiles on raw samples for exact values.
  [[nodiscard]] double quantile(double q) const;
  /// Human-readable bin label, e.g. "1.5-2.0" or ">=30".
  [[nodiscard]] std::string bin_label(std::size_t bin, int digits = 1) const;
  /// The inner bin boundaries this histogram was built with.
  [[nodiscard]] const std::vector<double>& edges() const { return edges_; }

 private:
  std::vector<double> edges_;
  std::vector<double> weights_;
  double total_ = 0.0;
  double weighted_sum_ = 0.0;
};

}  // namespace bpar::obs
