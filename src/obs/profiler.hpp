// Sampling span-stack profiler (DESIGN.md §5j).
//
// Answers "where do cycles go *inside* a task body" without per-event
// cost: while a SpanProfiler runs, every BPAR_SPAN also pushes its
// interned name onto a per-thread stack of plain atomics guarded by a
// seqlock version word, and a background thread sweeps all stacks at a
// fixed period, folding each consistent sample into
// `parent;child;leaf -> count` aggregates — the collapsed-flamegraph
// format flamegraph.pl and speedscope consume.
//
// Cost model:
//  * profiler off: one relaxed load + branch per span (same as the
//    tracing gate); zero with BPAR_NO_TRACING;
//  * profiler on: ~4 relaxed atomic stores per span push/pop — no locks,
//    no allocation on the instrumented thread;
//  * the sampler never blocks writers: a torn read (seqlock version moved
//    or odd) is simply discarded and retried next sweep.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace bpar::obs {

struct ProfilerOptions {
  /// Sampling period. 0 = no background thread: start() only enables
  /// span-stack maintenance and the caller drives sample_now() by hand
  /// (deterministic tests).
  std::uint32_t period_us = 2000;
};

class SpanProfiler {
 public:
  /// Frames kept per thread stack; deeper nesting is counted in
  /// truncations() and folded into the deepest retained frame.
  static constexpr std::size_t kMaxDepth = 48;

  struct Fold {
    std::string stack;  // "parent;child;leaf" resolved span names
    std::uint64_t count = 0;
  };

  explicit SpanProfiler(ProfilerOptions options = {});
  ~SpanProfiler();  // stop()

  SpanProfiler(const SpanProfiler&) = delete;
  SpanProfiler& operator=(const SpanProfiler&) = delete;

  /// Enables span-stack maintenance process-wide (refcounted, so nested
  /// profilers compose) and spawns the sampling thread when period_us > 0.
  /// Idempotent.
  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  /// One sweep over every registered thread's span stack — what the
  /// background thread does each period. Empty stacks contribute nothing.
  void sample_now();

  /// Aggregated folded stacks, heaviest first (ties by name). Names are
  /// resolved from the intern table at call time.
  [[nodiscard]] std::vector<Fold> folded() const;
  /// Collapsed-flamegraph text: one "a;b;c count" line per unique stack.
  [[nodiscard]] std::string folded_text() const;

  [[nodiscard]] std::uint64_t samples() const;  // non-empty stacks kept
  [[nodiscard]] std::uint64_t sweeps() const;   // sampling passes run
  [[nodiscard]] std::uint64_t torn() const;     // samples discarded as torn
  /// Drops aggregated counts (keeps sampling if running).
  void clear();

 private:
  void loop();

  ProfilerOptions options_;
  mutable std::mutex mu_;  // guards counts_
  // Key: the stack as packed little-endian u16 interned ids (2 bytes per
  // frame) — name resolution is deferred to folded().
  std::map<std::string, std::uint64_t> counts_;
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> sweeps_{0};
  std::atomic<std::uint64_t> torn_{0};

  std::mutex thread_mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
  bool running_ = false;
};

/// `after` minus `before` per stack, dropping non-positive rows; heaviest
/// first. How /profilez renders a bounded window of a continuously
/// running profiler.
[[nodiscard]] std::vector<SpanProfiler::Fold> fold_delta(
    const std::vector<SpanProfiler::Fold>& before,
    const std::vector<SpanProfiler::Fold>& after);
[[nodiscard]] std::string folded_to_text(
    const std::vector<SpanProfiler::Fold>& folds);

/// Total pushes dropped because a thread nested deeper than kMaxDepth.
[[nodiscard]] std::uint64_t span_stack_truncations();
/// Registered per-thread stack slots (live + reusable); tests.
[[nodiscard]] std::size_t span_stack_slots();

}  // namespace bpar::obs
