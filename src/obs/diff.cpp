#include "obs/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace bpar::obs::diff {
namespace {

/// Parses a table cell like "1,770.76", "2.34x", "87.5%", "12 ms". Returns
/// false for non-numeric cells (labels, "n/a").
bool parse_cell(const std::string& cell, double* out) {
  std::string cleaned;
  cleaned.reserve(cell.size());
  for (const char c : cell) {
    if (c != ',') cleaned.push_back(c);
  }
  const char* begin = cleaned.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin || !std::isfinite(v)) return false;
  // Accept only unit-ish suffixes; reject "3rd column" style text.
  for (const char* p = end; *p != '\0'; ++p) {
    if (*p != ' ' && *p != 'x' && *p != '%' && *p != 'm' && *p != 's' &&
        *p != 'n' && *p != 'u' && *p != 'M' && *p != 'G' && *p != 'K') {
      return false;
    }
  }
  *out = v;
  return true;
}

double gbench_to_ns(double value, const std::string& unit) {
  if (unit == "s") return value * 1e9;
  if (unit == "ms") return value * 1e6;
  if (unit == "us") return value * 1e3;
  return value;  // "ns" and the gbench default
}

void flatten_tables(const JsonValue& tables, MetricMap& out) {
  for (const auto& [tname, table] : tables.object) {
    const JsonValue* header = table.find("header");
    const JsonValue* rows = table.find("rows");
    if (header == nullptr || !header->is_array() || rows == nullptr ||
        !rows->is_array()) {
      continue;
    }
    std::map<std::string, int> seen_keys;
    for (const JsonValue& row : rows->array) {
      if (!row.is_array() || row.array.empty() ||
          !row.array[0].is_string()) {
        continue;
      }
      std::string row_key = row.array[0].str;
      const int dup = seen_keys[row_key]++;
      if (dup > 0) row_key += "#" + std::to_string(dup);
      for (std::size_t c = 1;
           c < row.array.size() && c < header->array.size(); ++c) {
        if (!row.array[c].is_string()) continue;
        double value = 0.0;
        if (!parse_cell(row.array[c].str, &value)) continue;
        out["table/" + tname + "/" + row_key + "/" + header->array[c].str] =
            value;
      }
    }
  }
}

void flatten_scorecard(const JsonValue& scorecard, MetricMap& out) {
  for (const auto& [key, value] : scorecard.object) {
    if (!value.is_number()) continue;
    // Skip n/a sentinels and shape-style fields that are not performance.
    if (key == "workers" || key == "tasks") continue;
    if (value.number < 0) continue;
    out["analysis/" + key] = value.number;
  }
}

}  // namespace

bool is_higher_better(std::string_view key) {
  static constexpr std::string_view kHigherBetter[] = {
      "speedup",     "parallelism", "utilization", "hit_rate",
      "efficiency",  "gflops",      "throughput",  "ipc",
  };
  for (const std::string_view marker : kHigherBetter) {
    if (key.find(marker) != std::string_view::npos) return true;
  }
  return false;
}

MetricMap flatten(const JsonValue& doc) {
  MetricMap out;
  if (!doc.is_object()) {
    BPAR_RAISE(util::Error, "document is not a JSON object");
  }
  const JsonValue* type = doc.find("type");
  const std::string type_str =
      type != nullptr && type->is_string() ? type->str : "";
  if (type_str == "run_report") {
    if (const JsonValue* tables = doc.find("tables");
        tables != nullptr && tables->is_object()) {
      flatten_tables(*tables, out);
    }
    if (const JsonValue* analysis = doc.find("analysis");
        analysis != nullptr && analysis->is_object()) {
      if (const JsonValue* card = analysis->find("scorecard");
          card != nullptr && card->is_object()) {
        flatten_scorecard(*card, out);
      }
    }
    return out;
  }
  if (type_str == "bpar_prof_analysis") {
    if (const JsonValue* card = doc.find("scorecard");
        card != nullptr && card->is_object()) {
      flatten_scorecard(*card, out);
    }
    return out;
  }
  if (type_str == "bpar_prof_baseline") {
    return baseline_metrics(load_baseline(doc));
  }
  if (const JsonValue* benchmarks = doc.find("benchmarks");
      benchmarks != nullptr && benchmarks->is_array()) {
    for (const JsonValue& b : benchmarks->array) {
      const JsonValue* name = b.find("name");
      if (name == nullptr || !name->is_string()) continue;
      const JsonValue* unit = b.find("time_unit");
      const std::string u =
          unit != nullptr && unit->is_string() ? unit->str : "ns";
      for (const char* field : {"real_time", "cpu_time"}) {
        if (const JsonValue* v = b.find(field);
            v != nullptr && v->is_number()) {
          out["gbench/" + name->str + "/" + field] =
              gbench_to_ns(v->number, u);
        }
      }
    }
    return out;
  }
  BPAR_RAISE(util::Error, "unsupported document (type=",
             type_str.empty() ? "<missing>" : type_str,
             "); expected run_report, bpar_prof_analysis, "
             "bpar_prof_baseline, or google-benchmark JSON");
}

std::size_t DiffResult::regressions() const {
  std::size_t n = 0;
  for (const Delta& d : deltas) n += d.regression ? 1 : 0;
  return n;
}

std::size_t DiffResult::improvements() const {
  std::size_t n = 0;
  for (const Delta& d : deltas) n += d.improvement ? 1 : 0;
  return n;
}

int DiffResult::exit_code() const {
  if (structural) return 2;
  return regressions() > 0 ? 1 : 0;
}

DiffResult diff_maps(const MetricMap& old_map, const MetricMap& new_map,
                     const DiffOptions& options) {
  DiffResult result;
  for (const auto& [key, old_value] : old_map) {
    const auto it = new_map.find(key);
    if (it == new_map.end()) {
      result.only_old.push_back(key);
      continue;
    }
    Delta d;
    d.key = key;
    d.old_value = old_value;
    d.new_value = it->second;
    d.rel_change =
        old_value == 0.0 ? 0.0 : (d.new_value - old_value) / old_value;
    const bool higher_better = is_higher_better(key);
    const double abs_change = std::abs(d.new_value - old_value);
    const double abs_floor =
        higher_better ? options.abs_threshold_hb : options.abs_threshold;
    const bool significant =
        std::abs(d.rel_change) > options.rel_threshold &&
        abs_change > abs_floor;
    if (significant) {
      const bool got_worse = higher_better ? d.rel_change < 0
                                           : d.rel_change > 0;
      d.regression = got_worse;
      d.improvement = !got_worse;
    }
    result.deltas.push_back(d);
  }
  for (const auto& [key, value] : new_map) {
    if (old_map.find(key) == old_map.end()) result.only_new.push_back(key);
  }
  if (result.deltas.empty()) {
    result.structural = true;
    result.structural_reason =
        "no overlapping metrics between the two documents";
  }
  return result;
}

DiffResult diff_docs(const JsonValue& old_doc, const JsonValue& new_doc,
                     const DiffOptions& options) {
  MetricMap old_map;
  MetricMap new_map;
  try {
    old_map = flatten(old_doc);
    new_map = flatten(new_doc);
  } catch (const util::Error& e) {
    DiffResult result;
    result.structural = true;
    result.structural_reason = e.what();
    return result;
  }
  return diff_maps(old_map, new_map, options);
}

void print_diff(const DiffResult& result, std::ostream& os) {
  if (result.structural) {
    os << "STRUCTURAL MISMATCH: " << result.structural_reason << "\n";
    return;
  }
  const auto print_delta = [&os](const Delta& d, const char* tag) {
    os << "  " << tag << " " << d.key << ": " << d.old_value << " -> "
       << d.new_value << " (" << std::showpos << std::fixed
       << std::setprecision(1) << d.rel_change * 100.0 << "%"
       << std::noshowpos << std::defaultfloat << ")\n";
  };
  const std::size_t regressions = result.regressions();
  if (regressions > 0) {
    os << regressions << " regression(s):\n";
    for (const Delta& d : result.deltas) {
      if (d.regression) print_delta(d, "REGRESSION");
    }
  }
  if (result.improvements() > 0) {
    os << result.improvements() << " improvement(s):\n";
    for (const Delta& d : result.deltas) {
      if (d.improvement) print_delta(d, "improved  ");
    }
  }
  if (!result.only_old.empty()) {
    os << result.only_old.size() << " metric(s) only in old:\n";
    for (const std::string& k : result.only_old) os << "  - " << k << "\n";
  }
  if (!result.only_new.empty()) {
    os << result.only_new.size() << " metric(s) only in new:\n";
    for (const std::string& k : result.only_new) os << "  + " << k << "\n";
  }
  if (regressions == 0) {
    os << "OK: " << result.deltas.size() << " metric(s) compared, "
       << "no regressions\n";
  }
}

Baseline load_baseline(const JsonValue& doc) {
  const JsonValue* type = doc.find("type");
  if (type == nullptr || !type->is_string() ||
      type->str != "bpar_prof_baseline") {
    BPAR_RAISE(util::Error, "not a bpar_prof_baseline document");
  }
  Baseline baseline;
  if (const JsonValue* entries = doc.find("entries");
      entries != nullptr && entries->is_object()) {
    for (const auto& [key, entry] : entries->object) {
      if (!entry.is_object()) continue;
      const JsonValue* value = entry.find("value");
      if (value == nullptr || !value->is_number()) continue;
      BaselineEntry e;
      e.value = value->number;
      const JsonValue* runs = entry.find("runs");
      e.runs = runs != nullptr && runs->is_number()
                   ? static_cast<int>(runs->number)
                   : 1;
      baseline[key] = e;
    }
  }
  return baseline;
}

void merge_baseline(Baseline& baseline, const MetricMap& run) {
  for (const auto& [key, value] : run) {
    const auto it = baseline.find(key);
    if (it == baseline.end()) {
      baseline[key] = {value, 1};
      continue;
    }
    it->second.value = is_higher_better(key)
                           ? std::max(it->second.value, value)
                           : std::min(it->second.value, value);
    ++it->second.runs;
  }
}

MetricMap baseline_metrics(const Baseline& baseline) {
  MetricMap out;
  for (const auto& [key, entry] : baseline) out[key] = entry.value;
  return out;
}

std::string baseline_json(const Baseline& baseline) {
  std::string out =
      "{\"schema_version\": 1, \"type\": \"bpar_prof_baseline\",\n "
      "\"entries\": {";
  bool first = true;
  for (const auto& [key, entry] : baseline) {
    if (!first) out += ",";
    first = false;
    out += "\n  " + json_quote(key) + ": {\"value\": " +
           json_number(entry.value) +
           ", \"runs\": " + std::to_string(entry.runs) + "}";
  }
  out += baseline.empty() ? "}}\n" : "\n }}\n";
  return out;
}

}  // namespace bpar::obs::diff
