// Minimal JSON support for the telemetry layer: correct string escaping
// (shared with the chrome-trace/DOT exporters), a tiny value tree, and a
// recursive-descent parser used to round-trip the reports we emit.
//
// Deliberately small: objects are ordered key/value vectors, numbers are
// doubles. This is a telemetry format, not a general JSON library.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bpar::obs {

/// Escapes `s` for inclusion inside a JSON string literal: quote,
/// backslash, and every control character (newlines, tabs, ...) become
/// escape sequences, so user-supplied task names can never produce
/// malformed output.
[[nodiscard]] std::string json_escape(std::string_view s);

/// json_escape + surrounding quotes.
[[nodiscard]] std::string json_quote(std::string_view s);

/// Formats a double as JSON: shortest round-trip form, never "nan"/"inf"
/// (non-finite values become null, which JSON requires).
[[nodiscard]] std::string json_number(double value);

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_null() const { return type == Type::kNull; }
  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// find() that dies with a named error when the key is missing.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
};

/// Parses a complete JSON document. Throws util::Error (with position
/// information) on malformed input or trailing garbage.
[[nodiscard]] JsonValue json_parse(std::string_view text);

}  // namespace bpar::obs
