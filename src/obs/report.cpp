#include "obs/report.hpp"

#include <filesystem>
#include <sstream>
#include <system_error>
#include <utility>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace bpar::obs {
namespace {

void write_string_map(std::ostream& os,
                      const std::map<std::string, std::string>& m) {
  os << "{";
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) os << ", ";
    first = false;
    os << json_quote(k) << ": " << json_quote(v);
  }
  os << "}";
}

void write_number_array(std::ostream& os, const std::vector<double>& values) {
  os << "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ", ";
    os << json_number(values[i]);
  }
  os << "]";
}

void write_string_array(std::ostream& os,
                        const std::vector<std::string>& values) {
  os << "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ", ";
    os << json_quote(values[i]);
  }
  os << "]";
}

void write_metrics(std::ostream& os, const Registry::Snapshot& snap) {
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) os << ", ";
    first = false;
    os << json_quote(name) << ": " << v;
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) os << ", ";
    first = false;
    os << json_quote(name) << ": " << json_number(v);
  }
  os << "}, \"series\": {";
  first = true;
  for (const auto& [name, values] : snap.series) {
    if (!first) os << ", ";
    first = false;
    os << json_quote(name) << ": ";
    write_number_array(os, values);
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) os << ", ";
    first = false;
    os << json_quote(name) << ": {\"mean\": " << json_number(h.mean)
       << ", \"total\": " << json_number(h.total) << ", \"labels\": ";
    write_string_array(os, h.labels);
    os << ", \"weights\": ";
    write_number_array(os, h.weights);
    os << "}";
  }
  os << "}}";
}

}  // namespace

std::ofstream open_output_file(const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;  // best effort; the open below reports failure
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream os(path);
  BPAR_CHECK(os.good(), "cannot open ", path);
  return os;
}

std::string metrics_json(const Registry::Snapshot& snapshot) {
  std::ostringstream os;
  write_metrics(os, snapshot);
  return os.str();
}

void RunReport::add_table(const std::string& name,
                          std::vector<std::string> header,
                          std::vector<std::vector<std::string>> rows) {
  Table& t = tables[name];
  t.header = std::move(header);
  t.rows = std::move(rows);
}

void RunReport::write_json(std::ostream& os,
                           const Registry::Snapshot& metrics) const {
  os << "{\n  \"schema_version\": " << kReportSchemaVersion
     << ",\n  \"type\": \"run_report\",\n  \"binary\": " << json_quote(binary)
     << ",\n  \"params\": ";
  write_string_map(os, params);
  os << ",\n  \"tables\": {";
  bool first_table = true;
  for (const auto& [name, table] : tables) {
    if (!first_table) os << ",";
    first_table = false;
    os << "\n    " << json_quote(name) << ": {\"header\": ";
    write_string_array(os, table.header);
    os << ", \"rows\": [";
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      if (r > 0) os << ", ";
      write_string_array(os, table.rows[r]);
    }
    os << "]}";
  }
  os << (tables.empty() ? "" : "\n  ") << "},\n";
  if (!analysis_json.empty()) {
    std::string trimmed = analysis_json;
    while (!trimmed.empty() && trimmed.back() == '\n') trimmed.pop_back();
    os << "  \"analysis\": " << trimmed << ",\n";
  }
  os << "  \"metrics\": ";
  write_metrics(os, metrics);
  os << "\n}\n";
}

void RunReport::write_json_file(const std::string& path,
                                const Registry::Snapshot& metrics) const {
  std::ofstream os = open_output_file(path);
  write_json(os, metrics);
}

MetricsLogger::MetricsLogger(const std::string& path, std::string binary,
                             std::map<std::string, std::string> params)
    : os_(open_output_file(path)) {
  os_ << "{\"schema_version\": " << kReportSchemaVersion
      << ", \"type\": \"run_meta\", \"binary\": " << json_quote(binary)
      << ", \"params\": ";
  write_string_map(os_, params);
  os_ << "}\n";
}

MetricsLogger::~MetricsLogger() { finish(); }

void MetricsLogger::log(std::string_view type,
                        const std::map<std::string, double>& fields) {
  BPAR_CHECK(!finished_, "MetricsLogger already finished");
  os_ << "{\"schema_version\": " << kReportSchemaVersion
      << ", \"type\": " << json_quote(type);
  for (const auto& [k, v] : fields) {
    os_ << ", " << json_quote(k) << ": " << json_number(v);
  }
  os_ << "}\n";
}

void MetricsLogger::finish() {
  if (finished_) return;
  finished_ = true;
  os_ << "{\"schema_version\": " << kReportSchemaVersion
      << ", \"type\": \"metrics\", \"metrics\": "
      << metrics_json(Registry::instance().snapshot()) << "}\n";
  os_.flush();
}

}  // namespace bpar::obs
