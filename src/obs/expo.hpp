// Prometheus text exposition of a Registry snapshot (DESIGN.md §5i).
//
// Renders counters, gauges, and histograms in the Prometheus text format
// (version 0.0.4) so a running bpar_serve can be scraped by any standard
// collector. Series are skipped — they are a pull-the-whole-window shape
// that Prometheus models poorly; /statz carries them instead.
//
// Naming: metric names are sanitized to [a-zA-Z0-9_:] and prefixed with
// "bpar_" ("serve.queue_us" -> "bpar_serve_queue_us"); counters get the
// conventional "_total" suffix. Histograms emit cumulative `le` buckets
// over the cell's inner edges plus "+Inf", with _sum recovered from the
// tracked mean (mean * count) and _count = total weight.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace bpar::obs {

/// Sanitized exposition name: invalid chars -> '_', "bpar_" prefix, a
/// leading digit guarded with '_'. Does NOT add the counter "_total"
/// suffix — prometheus_text() appends that per metric kind.
[[nodiscard]] std::string prometheus_name(std::string_view name);

/// The full scrape payload for one snapshot (text/plain; version=0.0.4).
[[nodiscard]] std::string prometheus_text(const Registry::Snapshot& snap);

}  // namespace bpar::obs
