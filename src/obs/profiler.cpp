#include "obs/profiler.hpp"

#include <algorithm>
#include <array>
#include <chrono>

#include "obs/trace.hpp"

namespace bpar::obs {

namespace {

// One thread's live span stack. All fields are plain atomics so the
// sampling thread can read them while the owner mutates (TSan-clean); the
// `version` word is a seqlock: odd while a push/pop is in flight, bumped
// to the next even value when it lands, so the sampler can detect and
// discard torn reads. `depth` counts *all* pushes (including ones beyond
// kMaxDepth) so pops stay balanced; readers clamp to kMaxDepth frames.
struct StackSlot {
  std::atomic<std::uint32_t> version{0};
  std::atomic<std::uint32_t> depth{0};
  std::array<std::atomic<std::uint16_t>, SpanProfiler::kMaxDepth> frames{};
  std::atomic<bool> active{false};
  std::atomic<std::uint64_t> truncated{0};
};

struct StackDirectory {
  std::mutex mu;
  std::vector<StackSlot*> slots;  // leaked slots: outlive their threads
};

StackDirectory& stack_directory() {
  static StackDirectory* dir = new StackDirectory();
  return *dir;
}

#if !defined(BPAR_NO_TRACING)
struct LocalStack {
  StackSlot* slot = nullptr;
  ~LocalStack() {
    if (slot != nullptr) {
      // Release the slot for reuse by a future thread; depth reset keeps a
      // reused slot from inheriting a stale stack.
      slot->depth.store(0, std::memory_order_relaxed);
      slot->active.store(false, std::memory_order_release);
    }
  }
};

StackSlot& my_slot() {
  thread_local LocalStack local;
  if (local.slot == nullptr) {
    StackDirectory& dir = stack_directory();
    const std::lock_guard<std::mutex> lock(dir.mu);
    for (StackSlot* s : dir.slots) {
      if (!s->active.load(std::memory_order_relaxed)) {
        local.slot = s;
        break;
      }
    }
    if (local.slot == nullptr) {
      local.slot = new StackSlot();
      dir.slots.push_back(local.slot);
    }
    local.slot->depth.store(0, std::memory_order_relaxed);
    local.slot->active.store(true, std::memory_order_release);
  }
  return *local.slot;
}
#endif  // !BPAR_NO_TRACING

}  // namespace

#if !defined(BPAR_NO_TRACING)

namespace detail {
std::atomic<int> g_profiling_active{0};
}  // namespace detail

void span_stack_push(std::uint16_t name) {
  StackSlot& s = my_slot();
  // acq_rel RMWs fence the frame/depth stores inside the odd..even window.
  s.version.fetch_add(1, std::memory_order_acq_rel);
  const std::uint32_t d = s.depth.load(std::memory_order_relaxed);
  if (d < SpanProfiler::kMaxDepth) {
    s.frames[d].store(name, std::memory_order_relaxed);
  } else {
    s.truncated.fetch_add(1, std::memory_order_relaxed);
  }
  s.depth.store(d + 1, std::memory_order_relaxed);
  s.version.fetch_add(1, std::memory_order_acq_rel);
}

void span_stack_pop() {
  StackSlot& s = my_slot();
  s.version.fetch_add(1, std::memory_order_acq_rel);
  const std::uint32_t d = s.depth.load(std::memory_order_relaxed);
  if (d > 0) s.depth.store(d - 1, std::memory_order_relaxed);
  s.version.fetch_add(1, std::memory_order_acq_rel);
}

#endif  // !BPAR_NO_TRACING

SpanProfiler::SpanProfiler(ProfilerOptions options) : options_(options) {}

SpanProfiler::~SpanProfiler() { stop(); }

void SpanProfiler::start() {
  if (running_) return;
  running_ = true;
#if !defined(BPAR_NO_TRACING)
  detail::g_profiling_active.fetch_add(1, std::memory_order_relaxed);
#endif
  if (options_.period_us > 0) {
    {
      const std::lock_guard<std::mutex> lock(thread_mu_);
      stopping_ = false;
    }
    thread_ = std::thread([this] { loop(); });
  }
}

void SpanProfiler::stop() {
  if (!running_) return;
  if (thread_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(thread_mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }
#if !defined(BPAR_NO_TRACING)
  detail::g_profiling_active.fetch_sub(1, std::memory_order_relaxed);
#endif
  running_ = false;
}

void SpanProfiler::loop() {
  std::unique_lock<std::mutex> lock(thread_mu_);
  while (!stopping_) {
    lock.unlock();
    sample_now();
    lock.lock();
    cv_.wait_for(lock, std::chrono::microseconds(options_.period_us),
                 [&] { return stopping_; });
  }
}

void SpanProfiler::sample_now() {
  std::vector<StackSlot*> slots;
  {
    StackDirectory& dir = stack_directory();
    const std::lock_guard<std::mutex> lock(dir.mu);
    slots = dir.slots;
  }
  std::string key;
  for (StackSlot* s : slots) {
    if (!s->active.load(std::memory_order_acquire)) continue;
    bool torn = true;
    for (int attempt = 0; attempt < 4 && torn; ++attempt) {
      const std::uint32_t v1 = s->version.load(std::memory_order_acquire);
      if ((v1 & 1U) != 0U) continue;  // push/pop in flight
      const std::uint32_t depth = s->depth.load(std::memory_order_relaxed);
      if (depth == 0) {
        torn = false;  // consistently idle: nothing to record
        break;
      }
      const std::uint32_t n = std::min<std::uint32_t>(
          depth, static_cast<std::uint32_t>(kMaxDepth));
      key.clear();
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint16_t id = s->frames[i].load(std::memory_order_relaxed);
        key.push_back(static_cast<char>(id & 0xFF));
        key.push_back(static_cast<char>(id >> 8));
      }
      // The acquire fence orders the frame loads before the re-check: an
      // unchanged even version means no writer touched the slot meanwhile.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s->version.load(std::memory_order_relaxed) != v1) continue;
      torn = false;
      {
        const std::lock_guard<std::mutex> lock(mu_);
        ++counts_[key];
      }
      samples_.fetch_add(1, std::memory_order_relaxed);
    }
    if (torn) torn_.fetch_add(1, std::memory_order_relaxed);
  }
  sweeps_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanProfiler::Fold> SpanProfiler::folded() const {
  std::map<std::string, std::uint64_t> counts;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    counts = counts_;
  }
  std::vector<Fold> out;
  out.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    Fold fold;
    fold.count = count;
    for (std::size_t i = 0; i + 1 < key.size(); i += 2) {
      const auto id = static_cast<std::uint16_t>(
          static_cast<std::uint8_t>(key[i]) |
          (static_cast<std::uint8_t>(key[i + 1]) << 8));
      if (!fold.stack.empty()) fold.stack += ';';
      fold.stack += interned_name(id);
    }
    out.push_back(std::move(fold));
  }
  std::sort(out.begin(), out.end(), [](const Fold& a, const Fold& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.stack < b.stack;
  });
  return out;
}

std::string SpanProfiler::folded_text() const { return folded_to_text(folded()); }

std::uint64_t SpanProfiler::samples() const {
  return samples_.load(std::memory_order_relaxed);
}

std::uint64_t SpanProfiler::sweeps() const {
  return sweeps_.load(std::memory_order_relaxed);
}

std::uint64_t SpanProfiler::torn() const {
  return torn_.load(std::memory_order_relaxed);
}

void SpanProfiler::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  counts_.clear();
}

std::vector<SpanProfiler::Fold> fold_delta(
    const std::vector<SpanProfiler::Fold>& before,
    const std::vector<SpanProfiler::Fold>& after) {
  std::map<std::string, std::uint64_t> base;
  for (const auto& f : before) base[f.stack] = f.count;
  std::vector<SpanProfiler::Fold> out;
  for (const auto& f : after) {
    const auto it = base.find(f.stack);
    const std::uint64_t prev = it == base.end() ? 0 : it->second;
    if (f.count > prev) out.push_back({f.stack, f.count - prev});
  }
  std::sort(out.begin(), out.end(),
            [](const SpanProfiler::Fold& a, const SpanProfiler::Fold& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.stack < b.stack;
            });
  return out;
}

std::string folded_to_text(const std::vector<SpanProfiler::Fold>& folds) {
  std::string out;
  for (const auto& f : folds) {
    out += f.stack;
    out += ' ';
    out += std::to_string(f.count);
    out += '\n';
  }
  return out;
}

std::uint64_t span_stack_truncations() {
  StackDirectory& dir = stack_directory();
  const std::lock_guard<std::mutex> lock(dir.mu);
  std::uint64_t total = 0;
  for (const StackSlot* s : dir.slots) {
    total += s->truncated.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t span_stack_slots() {
  StackDirectory& dir = stack_directory();
  const std::lock_guard<std::mutex> lock(dir.mu);
  return dir.slots.size();
}

}  // namespace bpar::obs
