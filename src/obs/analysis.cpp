#include "obs/analysis.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"
#include "util/error.hpp"

namespace bpar::obs::analysis {

namespace {

using Seg = std::pair<std::uint64_t, std::uint64_t>;  // [start, end)

std::uint64_t seg_total(const std::vector<Seg>& segs) {
  std::uint64_t total = 0;
  for (const auto& [a, b] : segs) total += b - a;
  return total;
}

/// Sorts + merges overlapping/touching intervals.
std::vector<Seg> normalize(std::vector<Seg> segs) {
  std::sort(segs.begin(), segs.end());
  std::vector<Seg> out;
  for (const auto& [a, b] : segs) {
    if (a >= b) continue;
    if (!out.empty() && a <= out.back().second) {
      out.back().second = std::max(out.back().second, b);
    } else {
      out.emplace_back(a, b);
    }
  }
  return out;
}

/// `segs` minus `cuts` (both normalized); the removed overlap total is
/// added to *removed_ns.
std::vector<Seg> subtract(const std::vector<Seg>& segs,
                          const std::vector<Seg>& cuts,
                          std::uint64_t* removed_ns) {
  std::vector<Seg> out;
  std::size_t ci = 0;
  for (auto [a, b] : segs) {
    while (ci < cuts.size() && cuts[ci].second <= a) ++ci;
    std::size_t c = ci;
    while (a < b && c < cuts.size() && cuts[c].first < b) {
      const auto [ca, cb] = cuts[c];
      if (ca > a) out.emplace_back(a, ca);
      const std::uint64_t cut_lo = std::max(a, ca);
      const std::uint64_t cut_hi = std::min(b, cb);
      if (cut_hi > cut_lo) *removed_ns += cut_hi - cut_lo;
      a = cut_hi;
      ++c;
    }
    if (a < b) out.emplace_back(a, b);
  }
  return out;
}

/// Piecewise-constant "how many tasks are ready but not yet running"
/// function over time, built from (ready_time, start_time) per task.
class ReadyFn {
 public:
  explicit ReadyFn(std::vector<std::pair<std::uint64_t, int>> deltas) {
    std::sort(deltas.begin(), deltas.end());
    int count = 0;
    for (const auto& [t, d] : deltas) {
      count += d;
      if (!times_.empty() && times_.back() == t) {
        counts_.back() = count;
      } else {
        times_.push_back(t);
        counts_.push_back(count);
      }
    }
  }

  /// Splits [a, b) into time where the count is zero (dep-stall) vs.
  /// positive (work existed elsewhere → steal-failure).
  void split(std::uint64_t a, std::uint64_t b, std::uint64_t* zero_ns,
             std::uint64_t* positive_ns) const {
    if (a >= b) return;
    // Index of the region containing `a`: last breakpoint <= a (or "before
    // the first breakpoint", where the count is 0).
    auto it = std::upper_bound(times_.begin(), times_.end(), a);
    std::size_t i = static_cast<std::size_t>(it - times_.begin());
    std::uint64_t t = a;
    while (t < b) {
      const int count = i == 0 ? 0 : counts_[i - 1];
      const std::uint64_t next =
          i < times_.size() ? std::min<std::uint64_t>(times_[i], b) : b;
      (count == 0 ? *zero_ns : *positive_ns) += next - t;
      t = next;
      ++i;
    }
  }

 private:
  std::vector<std::uint64_t> times_;
  std::vector<int> counts_;
};

}  // namespace

char TaskRecord::direction() const {
  std::size_t i = 0;
  if (name.size() >= 2 && name[0] == 'x') i = 1;  // precompute: xf0.c0 / xr0.c1
  if (i + 1 < name.size() && name[i] == 'b') ++i;  // backward pass: bf / br
  if (i + 1 < name.size() && (name[i] == 'f' || name[i] == 'r') &&
      name[i + 1] >= '0' && name[i + 1] <= '9') {
    return name[i];
  }
  return '-';
}

std::pair<std::uint64_t, std::uint64_t> TraceModel::window() const {
  std::uint64_t lo = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t hi = 0;
  for (const TaskRecord& t : tasks) {
    lo = std::min(lo, t.start_ns);
    hi = std::max(hi, t.end_ns);
  }
  if (tasks.empty()) lo = 0;
  return {lo, hi};
}

IdleBreakdown& IdleBreakdown::operator+=(const IdleBreakdown& other) {
  busy_ns += other.busy_ns;
  dep_stall_ns += other.dep_stall_ns;
  steal_fail_ns += other.steal_fail_ns;
  parked_ns += other.parked_ns;
  fault_ns += other.fault_ns;
  return *this;
}

CriticalPath critical_path(const TraceModel& model) {
  CriticalPath cp;
  const auto [w0, w1] = model.window();
  cp.makespan_ns = w1 > w0 ? w1 - w0 : 0;
  const std::size_t n = model.tasks.size();
  if (n == 0) return cp;

  std::map<std::uint32_t, std::size_t> index;
  for (std::size_t i = 0; i < n; ++i) index[model.tasks[i].id] = i;

  // Kahn topological sweep over pred edges (trace task ids are arbitrary).
  std::vector<std::vector<std::size_t>> succs(n);
  std::vector<std::size_t> pending(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::uint32_t pred : model.tasks[i].preds) {
      const auto it = index.find(pred);
      if (it == index.end()) {
        BPAR_RAISE(util::Error, "trace task ", model.tasks[i].id,
                   " depends on unknown task ", pred);
      }
      succs[it->second].push_back(i);
      ++pending[i];
    }
  }
  std::vector<std::size_t> queue;
  for (std::size_t i = 0; i < n; ++i) {
    if (pending[i] == 0) queue.push_back(i);
  }
  std::vector<std::uint64_t> dist(n, 0);
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> best_pred(n, kNone);
  std::size_t processed = 0;
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const std::size_t i = queue[qi];
    ++processed;
    dist[i] += model.tasks[i].duration_ns();
    for (const std::size_t s : succs[i]) {
      if (dist[i] > dist[s]) {
        dist[s] = dist[i];
        best_pred[s] = i;
      }
      if (--pending[s] == 0) queue.push_back(s);
    }
  }
  if (processed != n) {
    BPAR_RAISE(util::Error, "trace dependency graph has a cycle (",
               n - processed, " tasks unreachable)");
  }

  std::size_t sink = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (dist[i] > dist[sink]) sink = i;
  }
  cp.measured_ns = dist[sink];
  for (std::size_t i = sink; i != kNone; i = best_pred[i]) {
    cp.chain.push_back(model.tasks[i].id);
  }
  std::reverse(cp.chain.begin(), cp.chain.end());
  cp.length = cp.chain.size();

  // Per-(class, layer, direction) share of chain time.
  std::map<std::tuple<std::string, int, char>, ClassBreakdownRow> rows;
  for (std::size_t i = sink; i != kNone; i = best_pred[i]) {
    const TaskRecord& t = model.tasks[i];
    ClassBreakdownRow& row =
        rows[std::make_tuple(t.klass, t.layer, t.direction())];
    row.klass = t.klass;
    row.layer = t.layer;
    row.direction = t.direction();
    row.total_ns += t.duration_ns();
    ++row.tasks;
  }
  for (auto& [key, row] : rows) cp.by_class.push_back(std::move(row));
  std::sort(cp.by_class.begin(), cp.by_class.end(),
            [](const ClassBreakdownRow& a, const ClassBreakdownRow& b) {
              return a.total_ns > b.total_ns;
            });
  return cp;
}

IdleAttribution attribute_idle(const TraceModel& model) {
  IdleAttribution attr;
  const int workers = std::max(model.num_workers, 1);
  attr.per_worker.resize(static_cast<std::size_t>(workers));
  if (model.tasks.empty()) return attr;
  const auto [w0, w1] = model.window();

  std::map<std::uint32_t, const TaskRecord*> by_id;
  for (const TaskRecord& t : model.tasks) by_id[t.id] = &t;

  // Ready-count step function: a task is "ready" from the finish of its
  // last predecessor (window start for roots — submit times are not
  // recorded) until the moment it starts executing.
  std::vector<std::pair<std::uint64_t, int>> deltas;
  deltas.reserve(model.tasks.size() * 2);
  for (const TaskRecord& t : model.tasks) {
    std::uint64_t ready = w0;
    for (const std::uint32_t pred : t.preds) {
      const auto it = by_id.find(pred);
      if (it != by_id.end()) ready = std::max(ready, it->second->end_ns);
    }
    // Clamp: scheduling jitter can stamp a successor's start one sample
    // before its predecessor's recorded end.
    ready = std::min(ready, t.start_ns);
    deltas.emplace_back(ready, +1);
    deltas.emplace_back(t.start_ns, -1);
  }
  const ReadyFn ready_fn(std::move(deltas));

  // Per-worker busy segments and park/fault cut lists.
  std::vector<std::vector<Seg>> busy(static_cast<std::size_t>(workers));
  for (const TaskRecord& t : model.tasks) {
    if (t.worker >= 0 && t.worker < workers && t.end_ns > t.start_ns) {
      busy[static_cast<std::size_t>(t.worker)].emplace_back(t.start_ns,
                                                            t.end_ns);
    }
  }
  std::vector<std::vector<Seg>> parks(static_cast<std::size_t>(workers));
  std::vector<std::vector<Seg>> faults(static_cast<std::size_t>(workers));
  for (const WorkerSpan& s : model.worker_spans) {
    if (s.worker < 0 || s.worker >= workers || s.end_ns <= s.start_ns) {
      continue;
    }
    (s.fault ? faults : parks)[static_cast<std::size_t>(s.worker)]
        .emplace_back(std::max(s.start_ns, w0), std::min(s.end_ns, w1));
  }

  for (int w = 0; w < workers; ++w) {
    const auto wi = static_cast<std::size_t>(w);
    IdleBreakdown& b = attr.per_worker[wi];
    const std::vector<Seg> busy_segs = normalize(std::move(busy[wi]));
    b.busy_ns = seg_total(busy_segs);
    // Gaps = window minus busy.
    std::uint64_t ignored = 0;
    std::vector<Seg> gaps = subtract({{w0, w1}}, busy_segs, &ignored);
    // Precedence: parked, then fault, then ready-based classification.
    gaps = subtract(gaps, normalize(std::move(parks[wi])), &b.parked_ns);
    gaps = subtract(gaps, normalize(std::move(faults[wi])), &b.fault_ns);
    for (const auto& [a, bb] : gaps) {
      ready_fn.split(a, bb, &b.dep_stall_ns, &b.steal_fail_ns);
    }
    attr.total += b;
  }
  return attr;
}

Scorecard make_scorecard(const TraceModel& model, const CriticalPath& cp,
                         const IdleAttribution& idle) {
  Scorecard card;
  card.workers = model.num_workers;
  card.tasks = model.tasks.size();
  card.makespan_ns = cp.makespan_ns;
  for (const TaskRecord& t : model.tasks) card.total_work_ns += t.duration_ns();
  card.critical_path_ns = cp.measured_ns;
  const auto work = static_cast<double>(card.total_work_ns);
  if (card.makespan_ns > 0) {
    card.achieved_parallelism = work / static_cast<double>(card.makespan_ns);
  }
  if (cp.measured_ns > 0) {
    card.max_parallelism = work / static_cast<double>(cp.measured_ns);
  }
  const double capacity =
      static_cast<double>(card.makespan_ns) * std::max(card.workers, 1);
  if (capacity > 0) {
    card.utilization = work / capacity;
    card.dep_stall_frac =
        static_cast<double>(idle.total.dep_stall_ns) / capacity;
    card.steal_fail_frac =
        static_cast<double>(idle.total.steal_fail_ns) / capacity;
    card.parked_frac = static_cast<double>(idle.total.parked_ns) / capacity;
    card.fault_frac = static_cast<double>(idle.total.fault_ns) / capacity;
  }
  std::uint64_t max_busy = 0;
  std::uint64_t sum_busy = 0;
  for (const IdleBreakdown& b : idle.per_worker) {
    max_busy = std::max(max_busy, b.busy_ns);
    sum_busy += b.busy_ns;
  }
  if (sum_busy > 0 && !idle.per_worker.empty()) {
    const double mean = static_cast<double>(sum_busy) /
                        static_cast<double>(idle.per_worker.size());
    card.load_imbalance = static_cast<double>(max_busy) / mean;
  }
  const auto counter = [&](const char* name) -> double {
    const auto it = model.counters.find(name);
    return it == model.counters.end() ? -1.0 : it->second;
  };
  const double steals = counter("steals");
  const double steal_failures = counter("steal_failures");
  if (steals >= 0 && steal_failures >= 0 && steals + steal_failures > 0) {
    card.steal_hit_rate = steals / (steals + steal_failures);
  }
  const double busy_ns = counter("busy_ns");
  const double idle_ns = counter("idle_ns");
  if (busy_ns > 0 && idle_ns >= 0) {
    card.runtime_efficiency = busy_ns / (busy_ns + idle_ns);
  }
  return card;
}

Analysis analyze(const TraceModel& model,
                 std::uint64_t model_critical_path_ns) {
  Analysis analysis;
  analysis.cp = critical_path(model);
  analysis.idle = attribute_idle(model);
  analysis.card = make_scorecard(model, analysis.cp, analysis.idle);
  analysis.card.model_critical_path_ns = model_critical_path_ns;
  return analysis;
}

}  // namespace bpar::obs::analysis
