// Machine-readable run reports (schema-versioned JSON/JSONL).
//
// Two consumers, two shapes:
//
//  * RunReport — one JSON document per run: binary + parameters + named
//    tables (the bench harnesses' paper tables) + a full metrics-registry
//    snapshot. Written by every bench/* target under --metrics=<path>, so
//    perf trajectories diff as files instead of stdout scrapes.
//
//  * MetricsLogger — append-only JSONL stream: a run_meta header line,
//    caller-logged rows (per-epoch loss, retries, ...), and a final
//    metrics line with the registry snapshot. Written by the examples.
//
// Every line/document carries {"schema_version": 1, "type": ...} so
// downstream tooling can reject formats it does not understand.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace bpar::obs {

inline constexpr int kReportSchemaVersion = 1;

/// Opens `path` for writing (truncating), creating parent directories as
/// needed; dies with a named error when the file cannot be opened. All
/// telemetry file outputs (--trace/--metrics) funnel through this.
[[nodiscard]] std::ofstream open_output_file(const std::string& path);

struct RunReport {
  std::string binary;
  std::map<std::string, std::string> params;

  struct Table {
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
  };
  std::map<std::string, Table> tables;

  /// Optional analysis section (obs::analysis::to_json output). Emitted
  /// under the "analysis" key when non-empty; schema stays version 1 —
  /// consumers that predate the section simply ignore the extra key.
  std::string analysis_json;

  void add_table(const std::string& name, std::vector<std::string> header,
                 std::vector<std::vector<std::string>> rows);

  /// Serializes the report plus `metrics` as one JSON object.
  void write_json(std::ostream& os, const Registry::Snapshot& metrics) const;
  void write_json_file(const std::string& path,
                       const Registry::Snapshot& metrics) const;
};

/// Renders a registry snapshot as a JSON object string (no trailing
/// newline): {"counters": {...}, "gauges": {...}, "series": {...},
/// "histograms": {...}}.
[[nodiscard]] std::string metrics_json(const Registry::Snapshot& snapshot);

class MetricsLogger {
 public:
  /// Opens `path` (truncating) and writes the run_meta header line.
  MetricsLogger(const std::string& path, std::string binary,
                std::map<std::string, std::string> params);
  /// Writes the final metrics line if finish() has not run.
  ~MetricsLogger();

  /// Appends one row: {"schema_version":1,"type":<type>,<fields...>}.
  void log(std::string_view type,
           const std::map<std::string, double>& fields);

  /// Writes {"type":"metrics", "metrics": <registry snapshot>} and closes.
  void finish();

  MetricsLogger(const MetricsLogger&) = delete;
  MetricsLogger& operator=(const MetricsLogger&) = delete;

 private:
  std::ofstream os_;
  bool finished_ = false;
};

}  // namespace bpar::obs
