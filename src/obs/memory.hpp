// Memory observability (DESIGN.md §5j): subsystem-tagged allocation
// accounting plus /proc/self process-level sampling.
//
// MemTracker is a handful of relaxed atomics — cheap enough to sit on the
// tensor allocation path. Each subsystem that owns significant memory
// funnels its alloc/free sizes through a process-wide tracker:
//
//   tensor_memory()         every Matrix backing store (src/tensor)
//   program_cache_memory()  cached task-graph programs (src/exec)
//   serve_queue_memory()    queued request payloads (src/serve)
//
// publish_memory_metrics() mirrors every tracker plus a /proc/self sample
// into the Registry as `mem.*` / `proc.*` gauges; the MetricsSampler calls
// it each tick so the values land in windowed rollups, /statz, /metrics,
// and the flight-recorder dump for free.
#pragma once

#include <atomic>
#include <cstdint>

namespace bpar::obs {

/// Lock-free current/peak/total byte accounting for one subsystem.
class MemTracker {
 public:
  void on_alloc(std::uint64_t bytes) noexcept {
    allocs_.fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(bytes, std::memory_order_relaxed);
    const std::uint64_t cur =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (peak < cur && !peak_.compare_exchange_weak(
                             peak, cur, std::memory_order_relaxed)) {
    }
  }
  void on_free(std::uint64_t bytes) noexcept {
    frees_.fetch_add(1, std::memory_order_relaxed);
    current_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t current_bytes() const noexcept {
    return current_.load(std::memory_order_relaxed);
  }
  /// High-water mark of current_bytes() since process start (or reset()).
  [[nodiscard]] std::uint64_t peak_bytes() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }
  /// Cumulative bytes ever allocated (never decremented).
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t allocs() const noexcept {
    return allocs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t frees() const noexcept {
    return frees_.load(std::memory_order_relaxed);
  }

  /// Tests only: production trackers are process-lifetime monotonic.
  void reset() noexcept {
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
    total_.store(0, std::memory_order_relaxed);
    allocs_.store(0, std::memory_order_relaxed);
    frees_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> current_{0};
  std::atomic<std::uint64_t> peak_{0};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> frees_{0};
};

// Process-wide subsystem trackers. Inline function-local statics: usable
// from any layer (header-only — src/tensor does not link obs), one
// instance per process.
[[nodiscard]] inline MemTracker& tensor_memory() {
  static MemTracker tracker;
  return tracker;
}
[[nodiscard]] inline MemTracker& program_cache_memory() {
  static MemTracker tracker;
  return tracker;
}
[[nodiscard]] inline MemTracker& serve_queue_memory() {
  static MemTracker tracker;
  return tracker;
}

/// One /proc/self sample (Linux; `valid` false elsewhere or on parse
/// failure — all fields 0 then).
struct ProcSelfStats {
  bool valid = false;
  double rss_bytes = 0.0;       // statm resident pages * page size
  double vm_bytes = 0.0;        // statm total program size
  double minor_faults = 0.0;    // stat minflt (cumulative)
  double major_faults = 0.0;    // stat majflt (cumulative)
  double threads = 0.0;         // stat num_threads
  double ctx_voluntary = 0.0;   // status voluntary_ctxt_switches
  double ctx_involuntary = 0.0; // status nonvoluntary_ctxt_switches
};
[[nodiscard]] ProcSelfStats read_proc_self();

/// Mirrors every subsystem tracker (`mem.<sub>.bytes/.peak_bytes/.allocs`)
/// and a fresh /proc sample (`proc.*`) into Registry gauges.
void publish_memory_metrics();

}  // namespace bpar::obs
