// TraceModel <-> JSON and human-readable rendering for the analysis
// engine. The trace side round-trips the unified chrome-trace documents
// emitted by taskrt::write_unified_trace / write_model_events: task slices
// carry {task, deps, worker, layer, step} args, park/fault spans live on
// "worker N (spans)" rows.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "obs/analysis.hpp"
#include "obs/json.hpp"
#include "obs/trace_export.hpp"
#include "util/error.hpp"

namespace bpar::obs::analysis {
namespace {

std::uint64_t us_to_ns(double us) {
  return us <= 0 ? 0 : static_cast<std::uint64_t>(std::llround(us * 1e3));
}

/// "tasks w3" -> 3, "worker 2 (spans)" -> 2; -1 when `label` does not
/// start with `prefix` followed by a digit.
int parse_indexed_label(const std::string& label, std::string_view prefix) {
  if (label.size() <= prefix.size() || label.compare(0, prefix.size(), prefix) != 0) {
    return -1;
  }
  const char* digits = label.c_str() + prefix.size();
  if (*digits < '0' || *digits > '9') return -1;
  return std::atoi(digits);
}

int int_field(const JsonValue& obj, std::string_view key, int fallback) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number() ? static_cast<int>(v->number)
                                        : fallback;
}

std::string direction_str(char d) { return std::string(1, d); }

void append_idle(std::string& out, const IdleBreakdown& b) {
  out += "{\"busy_ns\": " + std::to_string(b.busy_ns);
  out += ", \"dep_stall_ns\": " + std::to_string(b.dep_stall_ns);
  out += ", \"steal_fail_ns\": " + std::to_string(b.steal_fail_ns);
  out += ", \"parked_ns\": " + std::to_string(b.parked_ns);
  out += ", \"fault_ns\": " + std::to_string(b.fault_ns) + "}";
}

std::string fmt_ms(std::uint64_t ns) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << static_cast<double>(ns) / 1e6;
  return os.str();
}

std::string fmt2(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << v;
  return os.str();
}

std::string fmt_pct(double frac) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << frac * 100.0 << "%";
  return os.str();
}

}  // namespace

TraceModel model_from_trace_json(const JsonValue& doc) {
  if (!doc.is_array()) {
    BPAR_RAISE(util::Error,
               "not a chrome-trace document (expected a JSON array)");
  }
  TraceModel model;
  std::map<int, int> span_row_worker;  // tid of a "worker N (spans)" row

  for (const JsonValue& ev : doc.array) {
    if (!ev.is_object()) continue;
    const JsonValue* ph = ev.find("ph");
    const JsonValue* name = ev.find("name");
    if (ph == nullptr || !ph->is_string() || name == nullptr) continue;
    if (ph->str == "M" && name->str == "thread_name") {
      const JsonValue* args = ev.find("args");
      if (args == nullptr) continue;
      const JsonValue* label = args->find("name");
      if (label == nullptr || !label->is_string()) continue;
      const int tid = int_field(ev, "tid", -1);
      const int task_row = parse_indexed_label(label->str, "tasks w");
      if (task_row >= 0) {
        model.num_workers = std::max(model.num_workers, task_row + 1);
        continue;
      }
      const int span_row = parse_indexed_label(label->str, "worker ");
      if (span_row >= 0 &&
          label->str.find("(spans)") != std::string::npos && tid >= 0) {
        span_row_worker[tid] = span_row;
      }
    }
  }

  for (const JsonValue& ev : doc.array) {
    if (!ev.is_object()) continue;
    const JsonValue* ph = ev.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->str != "X") continue;
    const JsonValue* ts = ev.find("ts");
    const JsonValue* dur = ev.find("dur");
    if (ts == nullptr || !ts->is_number() || dur == nullptr ||
        !dur->is_number()) {
      continue;
    }
    const JsonValue* args = ev.find("args");
    const JsonValue* task = args != nullptr ? args->find("task") : nullptr;
    if (task != nullptr && task->is_number()) {
      TaskRecord rec;
      rec.id = static_cast<std::uint32_t>(task->number);
      const JsonValue* name = ev.find("name");
      if (name != nullptr && name->is_string()) rec.name = name->str;
      const JsonValue* cat = ev.find("cat");
      if (cat != nullptr && cat->is_string()) rec.klass = cat->str;
      rec.layer = int_field(*args, "layer", -1);
      rec.step = int_field(*args, "step", -1);
      rec.worker = int_field(*args, "worker", int_field(ev, "tid", -1));
      rec.start_ns = us_to_ns(ts->number);
      rec.end_ns = us_to_ns(ts->number + dur->number);
      if (const JsonValue* deps = args->find("deps");
          deps != nullptr && deps->is_array()) {
        for (const JsonValue& d : deps->array) {
          if (d.is_number()) {
            rec.preds.push_back(static_cast<std::uint32_t>(d.number));
          }
        }
      }
      if (rec.worker >= 0) {
        model.num_workers = std::max(model.num_workers, rec.worker + 1);
      }
      model.tasks.push_back(std::move(rec));
      continue;
    }
    const JsonValue* name = ev.find("name");
    if (name == nullptr || !name->is_string()) continue;
    if (name->str != "park" && name->str != "fault") continue;
    const auto row = span_row_worker.find(int_field(ev, "tid", -1));
    if (row == span_row_worker.end()) continue;
    WorkerSpan span;
    span.worker = row->second;
    span.fault = name->str == "fault";
    span.start_ns = us_to_ns(ts->number);
    span.end_ns = us_to_ns(ts->number + dur->number);
    model.worker_spans.push_back(span);
    model.num_workers = std::max(model.num_workers, span.worker + 1);
  }

  if (model.tasks.empty()) {
    BPAR_RAISE(util::Error,
               "trace contains no analyzable task slices (need \"args\" "
               "with a task id — re-capture with --trace)");
  }
  return model;
}

std::string to_json(const Analysis& analysis) {
  const Scorecard& c = analysis.card;
  std::string out = "{\"schema_version\": 1, \"type\": \"bpar_prof_analysis\"";
  if (!analysis.pass_signature.empty()) {
    out += ", \"pass_signature\": " + json_quote(analysis.pass_signature);
  }
  out += ",\n \"scorecard\": {";
  out += "\"workers\": " + std::to_string(c.workers);
  out += ", \"tasks\": " + std::to_string(c.tasks);
  out += ", \"makespan_ns\": " + std::to_string(c.makespan_ns);
  out += ", \"total_work_ns\": " + std::to_string(c.total_work_ns);
  out += ", \"critical_path_ns\": " + std::to_string(c.critical_path_ns);
  out += ", \"model_critical_path_ns\": " +
         std::to_string(c.model_critical_path_ns);
  out += ", \"achieved_parallelism\": " + json_number(c.achieved_parallelism);
  out += ", \"max_parallelism\": " + json_number(c.max_parallelism);
  out += ", \"utilization\": " + json_number(c.utilization);
  out += ", \"load_imbalance\": " + json_number(c.load_imbalance);
  out += ", \"steal_hit_rate\": " + json_number(c.steal_hit_rate);
  out += ", \"dep_stall_frac\": " + json_number(c.dep_stall_frac);
  out += ", \"steal_fail_frac\": " + json_number(c.steal_fail_frac);
  out += ", \"parked_frac\": " + json_number(c.parked_frac);
  out += ", \"fault_frac\": " + json_number(c.fault_frac);
  out += ", \"runtime_efficiency\": " + json_number(c.runtime_efficiency);
  out += "},\n \"critical_path\": {";
  out += "\"measured_ns\": " + std::to_string(analysis.cp.measured_ns);
  out += ", \"makespan_ns\": " + std::to_string(analysis.cp.makespan_ns);
  out += ", \"length\": " + std::to_string(analysis.cp.length);
  out += ", \"stretch\": " + json_number(analysis.cp.stretch());
  out += ", \"chain\": [";
  for (std::size_t i = 0; i < analysis.cp.chain.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(analysis.cp.chain[i]);
  }
  out += "], \"by_class\": [";
  for (std::size_t i = 0; i < analysis.cp.by_class.size(); ++i) {
    const ClassBreakdownRow& row = analysis.cp.by_class[i];
    if (i > 0) out += ", ";
    out += "{\"class\": " + json_quote(row.klass);
    out += ", \"layer\": " + std::to_string(row.layer);
    out += ", \"direction\": " + json_quote(direction_str(row.direction));
    out += ", \"total_ns\": " + std::to_string(row.total_ns);
    out += ", \"tasks\": " + std::to_string(row.tasks) + "}";
  }
  out += "]},\n \"idle\": {\"total\": ";
  append_idle(out, analysis.idle.total);
  out += ", \"per_worker\": [";
  for (std::size_t i = 0; i < analysis.idle.per_worker.size(); ++i) {
    if (i > 0) out += ", ";
    append_idle(out, analysis.idle.per_worker[i]);
  }
  out += "]},\n \"hw_classes\": [";
  for (std::size_t i = 0; i < analysis.hw.size(); ++i) {
    const ClassHwRow& row = analysis.hw[i];
    if (i > 0) out += ", ";
    out += "{\"class\": " + json_quote(row.klass);
    out += ", \"tasks\": " + std::to_string(row.tasks);
    out += ", \"busy_ns\": " + std::to_string(row.busy_ns);
    out += ", \"ipc\": " + json_number(row.ipc);
    out += ", \"mpki\": " + json_number(row.mpki);
    out += ", \"branch_mpki\": " + json_number(row.branch_mpki);
    out += ", \"llc_miss_rate\": " + json_number(row.llc_miss_rate);
    out += ", \"scale\": " + json_number(row.scale) + "}";
  }
  out += "]}\n";
  return out;
}

void print_human(const Analysis& analysis, std::ostream& os) {
  const Scorecard& c = analysis.card;
  os << "scheduler scorecard\n";
  if (!analysis.pass_signature.empty()) {
    os << "  graph passes          " << analysis.pass_signature << "\n";
  }
  os << "  workers               " << c.workers << "\n";
  os << "  tasks                 " << c.tasks << "\n";
  os << "  makespan              " << fmt_ms(c.makespan_ns) << " ms\n";
  os << "  total work            " << fmt_ms(c.total_work_ns) << " ms\n";
  os << "  critical path (meas)  " << fmt_ms(c.critical_path_ns) << " ms\n";
  if (c.model_critical_path_ns > 0) {
    os << "  critical path (model) " << fmt_ms(c.model_critical_path_ns)
       << " ms\n";
  }
  os << "  achieved parallelism  " << fmt2(c.achieved_parallelism) << "\n";
  os << "  max parallelism (DAG) " << fmt2(c.max_parallelism) << "\n";
  os << "  utilization           " << fmt_pct(c.utilization) << "\n";
  os << "  load imbalance        " << fmt2(c.load_imbalance) << "\n";
  if (c.steal_hit_rate >= 0) {
    os << "  steal hit rate        " << fmt_pct(c.steal_hit_rate) << "\n";
  }
  if (c.runtime_efficiency >= 0) {
    os << "  runtime busy frac     " << fmt_pct(c.runtime_efficiency)
       << "  (runtime's own accounting)\n";
  }
  os << "  stretch               " << fmt2(analysis.cp.stretch())
     << "  (makespan / critical path)\n";
  os << "\nidle attribution (share of workers x makespan)\n";
  os << "  dependency stall      " << fmt_pct(c.dep_stall_frac) << "\n";
  os << "  steal failure         " << fmt_pct(c.steal_fail_frac) << "\n";
  os << "  parked                " << fmt_pct(c.parked_frac) << "\n";
  os << "  fault                 " << fmt_pct(c.fault_frac) << "\n";

  os << "\nper-worker idle breakdown (ms)\n";
  os << "  worker       busy  dep-stall steal-fail     parked      fault\n";
  for (std::size_t w = 0; w < analysis.idle.per_worker.size(); ++w) {
    const IdleBreakdown& b = analysis.idle.per_worker[w];
    os << "  " << std::left << std::setw(6) << w << std::right
       << std::setw(11) << fmt_ms(b.busy_ns) << std::setw(11)
       << fmt_ms(b.dep_stall_ns) << std::setw(11) << fmt_ms(b.steal_fail_ns)
       << std::setw(11) << fmt_ms(b.parked_ns) << std::setw(11)
       << fmt_ms(b.fault_ns) << "\n";
  }

  os << "\ncritical path: " << analysis.cp.length << " tasks, "
     << fmt_ms(analysis.cp.measured_ns) << " ms\n";
  os << "  class          layer dir   chain-ms  tasks\n";
  for (const ClassBreakdownRow& row : analysis.cp.by_class) {
    os << "  " << std::left << std::setw(15) << row.klass << std::right
       << std::setw(5) << row.layer << std::setw(4) << row.direction
       << std::setw(11) << fmt_ms(row.total_ns) << std::setw(7) << row.tasks
       << "\n";
  }

  if (!analysis.hw.empty()) {
    os << "\nper-class hardware counters\n";
    os << "  class          tasks    busy-ms    ipc   mpki  br-mpki  "
          "llc-miss%  mux\n";
    for (const ClassHwRow& row : analysis.hw) {
      os << "  " << std::left << std::setw(15) << row.klass << std::right
         << std::setw(5) << row.tasks << std::setw(11) << fmt_ms(row.busy_ns)
         << std::setw(7) << fmt2(row.ipc) << std::setw(7) << fmt2(row.mpki)
         << std::setw(9) << fmt2(row.branch_mpki) << std::setw(10)
         << fmt_pct(row.llc_miss_rate) << std::setw(6) << fmt2(row.scale)
         << "\n";
    }
  }
}

void write_model_events(ChromeTraceWriter& writer, const TraceModel& model,
                        int pid) {
  for (int w = 0; w < model.num_workers; ++w) {
    writer.thread_name(pid, w, "tasks w" + std::to_string(w));
  }
  constexpr int kSpanTidBase = 100;
  if (!model.worker_spans.empty()) {
    for (int w = 0; w < model.num_workers; ++w) {
      writer.thread_name(pid, kSpanTidBase + w,
                         "worker " + std::to_string(w) + " (spans)");
    }
  }
  for (const TaskRecord& t : model.tasks) {
    std::string args = "{\"task\": " + std::to_string(t.id) + ", \"deps\": [";
    for (std::size_t i = 0; i < t.preds.size(); ++i) {
      if (i > 0) args += ", ";
      args += std::to_string(t.preds[i]);
    }
    args += "], \"worker\": " + std::to_string(t.worker);
    if (t.layer >= 0) args += ", \"layer\": " + std::to_string(t.layer);
    if (t.step >= 0) args += ", \"step\": " + std::to_string(t.step);
    args += "}";
    writer.slice_args(t.name.empty() ? t.klass : t.name, t.klass, t.start_ns,
                      static_cast<double>(t.duration_ns()), pid,
                      std::max(t.worker, 0), args);
  }
  for (const WorkerSpan& s : model.worker_spans) {
    if (s.worker < 0) continue;
    writer.slice(s.fault ? "fault" : "park", "span", s.start_ns,
                 static_cast<double>(s.end_ns - s.start_ns), pid,
                 kSpanTidBase + s.worker);
  }
}

}  // namespace bpar::obs::analysis
