// SLO tracking for the serving plane (DESIGN.md §5i): latency-target
// attainment and multi-window error-budget burn rate.
//
// Model (the standard SRE formulation):
//  * every terminal response that is SLO-eligible (served, shed, expired,
//    or internally failed — admission rejects are the client's backpressure
//    signal, not an SLO event) records one observation: ok or error;
//  * availability SLO: good = ok. With objective O, the error budget over
//    any window is (1 - O) of the eligible traffic; the burn rate is
//    error_ratio / (1 - O) — burn 1.0 consumes the budget exactly at the
//    sustainable rate, burn N exhausts an N-times-shorter period's budget;
//  * latency SLO: among ok responses, the fraction answered within
//    latency_target_us, tracked as its own attainment number;
//  * multi-window alerting: the tracker reports the burn rate over a short
//    and a long trailing window; `alerting` is set when BOTH exceed
//    alert_burn_threshold, the classic guard against paging on blips
//    (short window only) or stale incidents (long window only).
//
// Implementation: one-second buckets in a fixed ring covering the long
// window, mutex-guarded (recording happens once per response, not per
// task). record_at()/snapshot_at() take explicit timestamps so burn-rate
// math is testable against hand-computed fixtures.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace bpar::obs {

struct SloOptions {
  /// Availability objective: target fraction of eligible responses that
  /// are served ok. 0.999 = "three nines".
  double availability_objective = 0.999;
  /// Latency SLO: ok responses should complete within this (microseconds,
  /// measured submit -> response).
  double latency_target_us = 50'000.0;
  /// Target fraction of ok responses inside latency_target_us.
  double latency_objective = 0.99;
  std::uint32_t short_window_s = 10;
  std::uint32_t long_window_s = 300;
  /// Both windows burning faster than this sets Snapshot::alerting.
  double alert_burn_threshold = 10.0;
};

class SloTracker {
 public:
  explicit SloTracker(SloOptions options = {});

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Records one eligible response. `ok` = answered kOk; `latency_us` is
  /// only read when ok (submit -> response delivery).
  void record(bool ok, double latency_us);
  /// Deterministic-time variant for tests.
  void record_at(std::uint64_t ts_ns, bool ok, double latency_us);

  struct Snapshot {
    std::uint64_t eligible = 0;  // lifetime observations
    std::uint64_t errors = 0;
    std::uint64_t latency_misses = 0;  // ok but over the latency target
    double availability = 1.0;         // lifetime good fraction
    double latency_attainment = 1.0;   // lifetime ok-within-target fraction
    /// Lifetime errors over the lifetime budget (eligible * (1 - O));
    /// > 1.0 means the budget is spent.
    double budget_consumed = 0.0;
    double burn_short = 0.0;  // burn rate over the short window
    double burn_long = 0.0;   // burn rate over the long window
    bool alerting = false;    // both windows over alert_burn_threshold
  };
  [[nodiscard]] Snapshot snapshot() const;
  [[nodiscard]] Snapshot snapshot_at(std::uint64_t ts_ns) const;

  [[nodiscard]] const SloOptions& options() const { return options_; }

 private:
  struct Bucket {
    std::uint64_t second = 0;  // absolute second this bucket covers
    std::uint64_t eligible = 0;
    std::uint64_t errors = 0;
  };

  /// Error ratio over the trailing `window_s` ending at `now_s`; 0 when no
  /// eligible traffic fell inside the window. Caller holds mu_.
  [[nodiscard]] double window_error_ratio_locked(std::uint64_t now_s,
                                                 std::uint32_t window_s) const;

  SloOptions options_;
  mutable std::mutex mu_;
  std::vector<Bucket> buckets_;  // ring indexed by second % size
  std::uint64_t eligible_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t ok_ = 0;
  std::uint64_t latency_misses_ = 0;
};

}  // namespace bpar::obs
