// Low-overhead span tracing: per-thread lock-free ring buffers of compact
// 16-byte events, drained into one Perfetto/chrome-trace timeline.
//
// Recording model (DESIGN.md §5d):
//  * every thread that records gets its own fixed-capacity ring; a write is
//    two relaxed atomic stores plus a release bump of the head cursor — no
//    locks, no allocation, no cross-thread traffic on the hot path;
//  * rings drop the *oldest* events on wrap, so a trace always holds the
//    most recent window of activity (the per-ring `dropped` count says how
//    much history was lost);
//  * names are interned once per call site (`BPAR_SPAN("x")` hides a
//    function-local static), so events carry a 2-byte id, not a string;
//  * recording is gated on a single relaxed atomic flag. When the flag is
//    off the cost of an instrumented scope is one load + branch; when the
//    build defines BPAR_NO_TRACING the macros compile to nothing at all.
//
// Timestamps are absolute steady_clock nanoseconds, the same clock the task
// runtime stamps task traces with, so kernel spans, trainer phases, and
// task rows land on one shared timeline.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bpar::obs {

enum class EventKind : std::uint8_t {
  kSpan = 0,     // payload = duration ns (float bits)
  kTask = 1,     // runtime task execution; extra = TaskKind, payload as kSpan
  kCounter = 2,  // payload = sampled value (saturating u32)
  kInstant = 3,  // point event, payload unused
};

/// One decoded trace event. The in-ring representation packs this into
/// 16 bytes (8-byte timestamp + 8-byte payload word).
struct TraceEvent {
  std::uint64_t ts_ns = 0;   // absolute steady-clock ns
  std::uint32_t payload = 0; // see EventKind
  std::uint16_t name = 0;    // interned name id
  EventKind kind = EventKind::kSpan;
  std::uint8_t extra = 0;    // kTask: the TaskKind byte

  [[nodiscard]] double duration_ns() const;  // decodes the float payload
};

/// Steady-clock ns since the clock's epoch — the tracing timebase.
[[nodiscard]] std::uint64_t now_ns();

// ---- enable/disable ----

#if defined(BPAR_NO_TRACING)
constexpr bool tracing_enabled() { return false; }
inline void set_tracing_enabled(bool) {}
#else
namespace detail {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace detail
[[nodiscard]] inline bool tracing_enabled() {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}
void set_tracing_enabled(bool on);
#endif

// ---- span-stack maintenance (profiler support) ----
//
// When a SpanProfiler (obs/profiler.hpp) is running, every live Span also
// pushes its interned name onto a per-thread seqlock-guarded stack so the
// profiler's sampling thread can read "what is this thread doing right
// now" without stopping it. The gate is one relaxed load, the same cost
// model as tracing_enabled(); with BPAR_NO_TRACING both compile away.

#if defined(BPAR_NO_TRACING)
constexpr bool profiling_active() { return false; }
inline void span_stack_push(std::uint16_t) {}
inline void span_stack_pop() {}
#else
namespace detail {
extern std::atomic<int> g_profiling_active;  // live SpanProfiler count
}  // namespace detail
[[nodiscard]] inline bool profiling_active() {
  return detail::g_profiling_active.load(std::memory_order_relaxed) > 0;
}
/// Pushes/pops `name` on the calling thread's span stack (profiler.cpp).
/// Span calls these; push only while profiling_active(), pop always pairs
/// with a successful push so enable/disable mid-span stays balanced.
void span_stack_push(std::uint16_t name);
void span_stack_pop();
#endif

// ---- name interning ----

/// Returns a stable 16-bit id for `name`; repeated calls with the same
/// string return the same id. Id 0 is reserved for "<overflow>" (returned
/// once the 65k-name table fills — it never does in practice).
[[nodiscard]] std::uint16_t intern_name(std::string_view name);
[[nodiscard]] std::string interned_name(std::uint16_t id);

// ---- recording (no-ops while tracing is disabled) ----

void record_span(std::uint16_t name, std::uint64_t start_ns,
                 std::uint64_t end_ns);
void record_task(std::uint16_t name, std::uint8_t task_kind,
                 std::uint64_t start_ns, std::uint64_t end_ns);
void record_counter(std::uint16_t name, std::uint64_t ts_ns,
                    std::uint64_t value);
void record_instant(std::uint16_t name, std::uint64_t ts_ns);

/// Labels the calling thread's row in the exported trace ("main",
/// "worker 3", ...). Callable before or after the first event.
void set_thread_name(std::string name);

// ---- collection ----

struct ThreadTrace {
  int ring_id = 0;             // registration order, stable per thread
  std::string name;            // thread label (may be empty)
  std::uint64_t dropped = 0;   // events lost to ring wrap
  std::vector<TraceEvent> events;  // oldest → newest
};

/// Snapshot of every thread's ring. Slots are atomics, so concurrent
/// recording is safe (TSan-clean); a thread actively wrapping its ring can
/// contribute one mixed event at the snapshot boundary, which diagnostics
/// tolerate. Intended at quiescent points (end of run).
[[nodiscard]] std::vector<ThreadTrace> collect();

/// Total events currently held across all rings (post-drop).
[[nodiscard]] std::size_t events_held();

/// Drops all recorded events and per-ring drop counts (tests).
void clear();

/// Ring capacity (events per thread) used for rings created from now on.
/// Default 65536 (1 MiB/thread), overridable with BPAR_TRACE_CAPACITY.
[[nodiscard]] std::size_t ring_capacity();
void set_ring_capacity(std::size_t events);

/// RAII span: stamps start at construction, records on destruction. While
/// a profiler is sampling it also maintains the thread's live span stack
/// (the `pushed_` flag keeps push/pop balanced across enable/disable).
class Span {
 public:
  explicit Span(std::uint16_t name)
      : name_(name), start_(tracing_enabled() ? now_ns() : 0) {
    if (profiling_active()) {
      span_stack_push(name);
      pushed_ = true;
    }
  }
  ~Span() {
    if (pushed_) span_stack_pop();
    if (start_ != 0) record_span(name_, start_, now_ns());
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::uint16_t name_;
  std::uint64_t start_;
  bool pushed_ = false;
};

}  // namespace bpar::obs

#if defined(BPAR_NO_TRACING)

#define BPAR_SPAN(name_literal) \
  do {                          \
  } while (false)
#define BPAR_COUNTER(name_literal, value) \
  do {                                    \
  } while (false)

#else

#define BPAR_OBS_CAT2(a, b) a##b
#define BPAR_OBS_CAT(a, b) BPAR_OBS_CAT2(a, b)

/// Traces the enclosing scope as a span named `name_literal` (a string
/// literal; interned once per call site).
#define BPAR_SPAN(name_literal)                                             \
  static const std::uint16_t BPAR_OBS_CAT(bpar_span_id_, __LINE__) =        \
      ::bpar::obs::intern_name(name_literal);                               \
  const ::bpar::obs::Span BPAR_OBS_CAT(bpar_span_, __LINE__)(               \
      BPAR_OBS_CAT(bpar_span_id_, __LINE__))

/// Samples `value` onto the counter track `name_literal` at the current time.
#define BPAR_COUNTER(name_literal, value)                                   \
  do {                                                                      \
    if (::bpar::obs::tracing_enabled()) {                                   \
      static const std::uint16_t bpar_counter_id_ =                         \
          ::bpar::obs::intern_name(name_literal);                           \
      ::bpar::obs::record_counter(bpar_counter_id_, ::bpar::obs::now_ns(),  \
                                  static_cast<std::uint64_t>(value));       \
    }                                                                       \
  } while (false)

#endif  // BPAR_NO_TRACING
