// Minimal embedded HTTP endpoint for live observability (DESIGN.md §5i).
//
// A StatsServer is a deliberately tiny blocking HTTP/1.1 GET server: one
// accept-loop thread, one connection served at a time, Connection: close.
// That is the right shape for a metrics endpoint — scrapes are rare
// (seconds apart), payloads are small, and keeping the server off the
// serving engine's thread pool means a slow scraper can never steal an
// executor worker. Handlers are registered per path ("/metrics",
// "/statz", "/healthz"); anything else is 404, non-GET methods are 405,
// and a throwing handler maps to 500 instead of taking the process down.
//
// Port 0 binds an ephemeral port (port() reports the real one), which is
// what tests and same-host tooling use.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>

namespace bpar::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class StatsServer {
 public:
  /// Receives the raw query string (text after '?', "" when absent) —
  /// /profilez?seconds=N style parameters. Handlers that take none can
  /// ignore the argument.
  using Handler = std::function<HttpResponse(std::string_view query)>;

  StatsServer() = default;
  ~StatsServer();  // stop()

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Registers `handler` for exact-match GET `path` (the query string is
  /// stripped before matching and passed to the handler). Must be called
  /// before start().
  void handle(std::string path, Handler handler);

  /// Binds 0.0.0.0:`port` (0 = ephemeral) and spawns the accept loop.
  /// Returns false (with no thread running) when the bind/listen fails,
  /// e.g. the port is taken — callers degrade to serving without stats.
  [[nodiscard]] bool start(std::uint16_t port);
  /// Unblocks accept() and joins the thread (idempotent).
  void stop();

  /// The bound port after a successful start(), else -1.
  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] bool running() const { return listen_fd_ >= 0; }

 private:
  void accept_loop();
  void serve_connection(int fd);

  std::map<std::string, Handler, std::less<>> handlers_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::thread thread_;
};

struct HttpResult {
  bool ok = false;  // transport-level success (status may still be >= 400)
  int status = 0;
  std::string body;
  std::string error;
};

/// Tiny blocking HTTP/1.1 GET client for same-host polling (bpar_top, the
/// CI smoke test). `host` is a numeric IPv4 address or any DNS name
/// (resolved with getaddrinfo; IPv4 results are used).
[[nodiscard]] HttpResult http_get(std::string_view host, std::uint16_t port,
                                  std::string_view path,
                                  int timeout_ms = 2000);

}  // namespace bpar::obs
