#include "obs/flight_recorder.hpp"

#include <csignal>
#include <ctime>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <system_error>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace bpar::obs {

namespace fs = std::filesystem;

namespace {

std::string sanitize_reason(std::string_view reason) {
  std::string out;
  for (const char c : reason) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      out += c;
    } else if (c >= 'A' && c <= 'Z') {
      out += static_cast<char>(c - 'A' + 'a');
    } else if (!out.empty() && out.back() != '-') {
      out += '-';
    }
  }
  while (!out.empty() && out.back() == '-') out.pop_back();
  if (out.empty()) out = "manual";
  if (out.size() > 40) out.resize(40);
  return out;
}

std::string seq_string(std::uint64_t seq) {
  std::string s = std::to_string(seq);
  while (s.size() < 6) s.insert(s.begin(), '0');
  return s;
}

constexpr const char* kTraceSuffix = ".trace.json";
constexpr const char* kReportSuffix = ".report.json";

/// "<stem>-NNNNNN-<reason>" from a bundle file name, or "" if not one.
std::string bundle_base(const std::string& filename, const std::string& stem) {
  const std::string prefix = stem + "-";
  if (filename.rfind(prefix, 0) != 0) return {};
  for (const char* suffix : {kTraceSuffix, kReportSuffix}) {
    const std::size_t len = std::string(suffix).size();
    if (filename.size() > len &&
        filename.compare(filename.size() - len, len, suffix) == 0) {
      return filename.substr(0, filename.size() - len);
    }
  }
  return {};
}

// The one recorder allowed to own the fatal-signal handlers.
std::atomic<FlightRecorder*> g_fatal_recorder{nullptr};
constexpr int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGABRT};
struct sigaction g_prev_actions[4];

void fatal_signal_handler(int sig) {
  FlightRecorder* rec = g_fatal_recorder.load(std::memory_order_relaxed);
  if (rec != nullptr) rec->write_fatal_record(sig);
  // SA_RESETHAND already restored the default disposition; re-raising
  // terminates with the original signal (correct exit status + core).
  ::raise(sig);
}

// Async-signal-safe unsigned decimal append; returns chars written.
std::size_t format_u64(char* buf, std::uint64_t v) {
  char tmp[24];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(std::move(options)) {
  if (options_.max_bundles == 0) options_.max_bundles = 1;
  // Continue the sequence across restarts so rotation order stays
  // filename-sortable.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    const std::string base =
        bundle_base(entry.path().filename().string(), options_.stem);
    if (base.empty()) continue;
    const std::size_t at = options_.stem.size() + 1;
    const std::uint64_t seq = std::strtoull(base.c_str() + at, nullptr, 10);
    if (seq + 1 > seq_) seq_ = seq + 1;
  }
}

FlightRecorder::~FlightRecorder() {
  if (handler_installed_) {
    FlightRecorder* expected = this;
    if (g_fatal_recorder.compare_exchange_strong(expected, nullptr)) {
      for (std::size_t i = 0; i < std::size(kFatalSignals); ++i) {
        ::sigaction(kFatalSignals[i], &g_prev_actions[i], nullptr);
      }
    }
  }
  if (fatal_fd_ >= 0) ::close(fatal_fd_);
}

void FlightRecorder::set_trace_writer(TraceWriter fn) {
  const std::lock_guard<std::mutex> lock(mu_);
  trace_writer_ = std::move(fn);
}

void FlightRecorder::set_state_json(TextFn fn) {
  const std::lock_guard<std::mutex> lock(mu_);
  state_json_ = std::move(fn);
}

void FlightRecorder::set_profile_text(TextFn fn) {
  const std::lock_guard<std::mutex> lock(mu_);
  profile_text_ = std::move(fn);
}

DumpResult FlightRecorder::trigger(std::string_view reason) {
  const std::lock_guard<std::mutex> lock(mu_);
  DumpResult out;
  out.reason = sanitize_reason(reason);
  const std::uint64_t now = now_ns();
  if (last_dump_ns_ != 0 &&
      now - last_dump_ns_ <
          static_cast<std::uint64_t>(options_.debounce_ms) * 1'000'000ULL) {
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    out.skipped = "debounced";
    return out;
  }
  out = write_bundle_locked(out.reason);
  if (out.written) {
    last_dump_ns_ = now;
    dumps_.fetch_add(1, std::memory_order_relaxed);
    Registry::instance().counter("flight.dumps").add();
  }
  return out;
}

DumpResult FlightRecorder::write_bundle_locked(std::string_view reason) {
  DumpResult out;
  out.reason = std::string(reason);
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    out.skipped = "mkdir failed: " + ec.message();
    return out;
  }
  const std::string base =
      options_.stem + "-" + seq_string(seq_) + "-" + out.reason;
  ++seq_;
  const fs::path dir(options_.dir);
  const std::string trace_path = (dir / (base + kTraceSuffix)).string();
  const std::string report_path = (dir / (base + kReportSuffix)).string();

  // Trace first: it is the bulky part, and the report records whether it
  // landed. A throwing provider degrades to a report-only bundle instead
  // of losing the incident entirely.
  bool have_trace = false;
  std::string trace_error;
  if (trace_writer_) {
    try {
      std::ofstream os(trace_path, std::ios::binary | std::ios::trunc);
      have_trace = os.good() && trace_writer_(os);
    } catch (const std::exception& e) {
      trace_error = e.what();
    } catch (...) {
      trace_error = "unknown trace writer failure";
    }
    if (!have_trace) fs::remove(trace_path, ec);
  }

  std::string state;
  if (state_json_) {
    try {
      state = state_json_();
    } catch (...) {
      state.clear();
    }
  }
  std::string profile;
  if (profile_text_) {
    try {
      profile = profile_text_();
    } catch (...) {
      profile.clear();
    }
  }

  std::string report;
  report.reserve(4096);
  report += "{\n  \"type\": \"flight_dump\",\n  \"schema_version\": 1,\n";
  report += "  \"reason\": " + json_quote(out.reason) + ",\n";
  report += "  \"seq\": " + std::to_string(seq_ - 1) + ",\n";
  report += "  \"steady_ns\": " + std::to_string(now_ns()) + ",\n";
  report += "  \"wall_unix_s\": " +
            std::to_string(static_cast<long long>(std::time(nullptr))) +
            ",\n";
  report += "  \"trace_file\": ";
  report += have_trace ? json_quote(base + kTraceSuffix) : "null";
  report += ",\n";
  if (!trace_error.empty()) {
    report += "  \"trace_error\": " + json_quote(trace_error) + ",\n";
  }
  report += "  \"state\": ";
  report += state.empty() ? "null" : state;
  report += ",\n";
  report += "  \"profile_folded\": " + json_quote(profile) + ",\n";
  report += "  \"metrics\": " +
            metrics_json(Registry::instance().snapshot(
                /*include_series=*/false)) +
            "\n}\n";
  {
    std::ofstream os(report_path, std::ios::binary | std::ios::trunc);
    if (!os.good()) {
      out.skipped = "report open failed: " + report_path;
      fs::remove(trace_path, ec);
      return out;
    }
    os << report;
  }

  out.written = true;
  if (have_trace) out.trace_path = trace_path;
  out.report_path = report_path;
  rotate_locked(base);
  return out;
}

void FlightRecorder::rotate_locked(const std::string& keep_base) {
  std::error_code ec;
  std::map<std::string, std::uint64_t> bundle_bytes;  // base -> total bytes
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    const std::string base =
        bundle_base(entry.path().filename().string(), options_.stem);
    if (base.empty()) continue;
    const std::uint64_t size = fs::file_size(entry.path(), ec);
    bundle_bytes[base] += ec ? 0 : size;
  }
  std::uint64_t total = 0;
  for (const auto& [base, bytes] : bundle_bytes) total += bytes;
  // Map iteration is name order == sequence order: prune oldest first,
  // never the bundle just written.
  for (auto it = bundle_bytes.begin();
       it != bundle_bytes.end() &&
       (bundle_bytes.size() > options_.max_bundles ||
        total > options_.max_total_bytes);) {
    if (it->first == keep_base) {
      ++it;
      continue;
    }
    const fs::path dir(options_.dir);
    fs::remove(dir / (it->first + kTraceSuffix), ec);
    fs::remove(dir / (it->first + kReportSuffix), ec);
    total -= it->second;
    it = bundle_bytes.erase(it);
  }
}

// Lock-free: the engine's statz_json reads these both from arbitrary
// threads and from *inside* trigger() (as the state provider, mu_ held).
std::uint64_t FlightRecorder::dumps() const {
  return dumps_.load(std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::suppressed() const {
  return suppressed_.load(std::memory_order_relaxed);
}

std::vector<std::string> FlightRecorder::bundle_reports() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    const std::size_t len = std::string(kReportSuffix).size();
    if (!bundle_base(name, options_.stem).empty() && name.size() > len &&
        name.compare(name.size() - len, len, kReportSuffix) == 0) {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool FlightRecorder::install_fatal_handler() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (handler_installed_) return true;
  FlightRecorder* expected = nullptr;
  if (!g_fatal_recorder.compare_exchange_strong(expected, this)) {
    return false;  // another recorder owns the handlers
  }
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  fatal_path_ =
      (fs::path(options_.dir) / (options_.stem + "-fatal.txt")).string();
  fatal_fd_ = ::open(fatal_path_.c_str(),
                     O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fatal_fd_ < 0) {
    g_fatal_recorder.store(nullptr);
    fatal_path_.clear();
    return false;
  }
  // Everything the handler emits besides the signal number is serialized
  // now, while allocation is still legal.
  fatal_header_ = "{\"type\": \"flight_fatal\", \"schema_version\": 1, "
                  "\"pid\": " +
                  std::to_string(::getpid()) +
                  ", \"dumps_dir\": " + json_quote(options_.dir) + "}\n";
  struct sigaction sa {};
  sa.sa_handler = &fatal_signal_handler;
  ::sigemptyset(&sa.sa_mask);
  // SA_RESETHAND: the disposition is back to default before the handler
  // runs, so the re-raise cannot recurse.
  sa.sa_flags = SA_RESETHAND;
  for (std::size_t i = 0; i < std::size(kFatalSignals); ++i) {
    ::sigaction(kFatalSignals[i], &sa, &g_prev_actions[i]);
  }
  handler_installed_ = true;
  return true;
}

std::string FlightRecorder::fatal_path() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return fatal_path_;
}

void FlightRecorder::write_fatal_record(int sig) {
  // Async-signal-safe: write()/fsync() only, no locks, no allocation.
  if (fatal_fd_ < 0) return;
  ssize_t rc = ::write(fatal_fd_, fatal_header_.data(), fatal_header_.size());
  char line[48];
  std::size_t n = 0;
  const char prefix[] = "signal ";
  for (const char c : prefix) {
    if (c != '\0') line[n++] = c;
  }
  n += format_u64(line + n, static_cast<std::uint64_t>(sig));
  line[n++] = '\n';
  rc = ::write(fatal_fd_, line, n);
  (void)rc;
  ::fsync(fatal_fd_);
}

}  // namespace bpar::obs
