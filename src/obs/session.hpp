// One-object wiring of the telemetry layer into a binary's main():
//
//   util::ArgParser args("next_char", "...");
//   obs::add_cli_flags(args);               // registers --trace / --metrics
//   if (!args.parse(argc, argv)) return 1;
//   obs::ObsSession session("next_char", args, obs::ReportMode::kJsonl);
//   ...
//   session.log("epoch", {{"loss", 1.23}});  // JSONL mode only
//
// The session enables span tracing when --trace was given, names the main
// thread, and on destruction writes the chrome-trace JSON and the metrics
// report. Both flags default to empty = disabled, so instrumented binaries
// cost nothing when telemetry is not requested.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "obs/report.hpp"
#include "util/cli.hpp"

namespace bpar::obs {

enum class ReportMode {
  kJson,   // single RunReport document (benches)
  kJsonl,  // streaming run_meta/rows/metrics lines (examples)
};

/// Registers the shared --trace=<path> / --metrics=<path> options.
void add_cli_flags(util::ArgParser& args);

class ObsSession {
 public:
  ObsSession(std::string binary, const util::ArgParser& args, ReportMode mode);
  ~ObsSession();

  [[nodiscard]] bool trace_requested() const { return !trace_path_.empty(); }
  [[nodiscard]] bool metrics_requested() const {
    return !metrics_path_.empty();
  }

  /// JSONL mode: appends one typed row (no-op when --metrics is unset or the
  /// session is in kJson mode).
  void log(std::string_view type, const std::map<std::string, double>& fields);

  /// JSON mode: the report to fill with tables before destruction.
  [[nodiscard]] RunReport& report() { return report_; }

  /// Writes the outputs now instead of at destruction (idempotent).
  void finish();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

 private:
  std::string binary_;
  std::string trace_path_;
  std::string metrics_path_;
  ReportMode mode_;
  RunReport report_;
  std::unique_ptr<MetricsLogger> logger_;
  bool finished_ = false;
};

}  // namespace bpar::obs
