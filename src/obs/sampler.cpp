#include "obs/sampler.hpp"

#include <algorithm>
#include <chrono>

#include "obs/histogram.hpp"
#include "obs/memory.hpp"

namespace bpar::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

MetricsSampler::MetricsSampler(SamplerOptions options)
    : options_(std::move(options)) {
  if (options_.period_ms == 0) options_.period_ms = 1;
  if (options_.capacity == 0) options_.capacity = 1;
}

MetricsSampler::~MetricsSampler() { stop(); }

void MetricsSampler::start() {
  const std::lock_guard<std::mutex> lock(thread_mu_);
  if (thread_.joinable()) return;
  stopping_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { thread_loop(); });
}

void MetricsSampler::stop() {
  {
    const std::lock_guard<std::mutex> lock(thread_mu_);
    if (!thread_.joinable()) return;
    stopping_.store(true, std::memory_order_relaxed);
  }
  cv_.notify_all();
  thread_.join();
  {
    const std::lock_guard<std::mutex> lock(thread_mu_);
    thread_ = std::thread();
  }
}

void MetricsSampler::thread_loop() {
  std::unique_lock<std::mutex> lock(thread_mu_);
  while (!stopping_.load(std::memory_order_relaxed)) {
    // Sample while NOT holding thread_mu_ (registry + ring have their own
    // locks; stop() only needs thread_mu_ to flip the flag).
    lock.unlock();
    sample_now();
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(options_.period_ms), [&] {
      return stopping_.load(std::memory_order_relaxed);
    });
  }
}

void MetricsSampler::sample_now() { sample_at(steady_now_ns()); }

void MetricsSampler::sample_at(std::uint64_t ts_ns) {
  Registry::instance().counter("obs.sampler.ticks").add();
  // Refresh memory/proc gauges before snapshotting so they are part of
  // this tick, not one tick stale.
  if (options_.sample_proc) publish_memory_metrics();
  Sample sample;
  sample.ts_ns = ts_ns;
  sample.snap = Registry::instance().snapshot(/*include_series=*/false);

  const std::lock_guard<std::mutex> lock(mu_);
  // Per-tick counter rates into registry ring series: the sparkline feed.
  if (!ring_.empty() && !options_.rate_series.empty()) {
    const Sample& prev = ring_.back();
    const double dt =
        static_cast<double>(ts_ns - prev.ts_ns) / 1e9;
    if (dt > 0.0) {
      for (const std::string& name : options_.rate_series) {
        const auto now_it = sample.snap.counters.find(name);
        const auto prev_it = prev.snap.counters.find(name);
        if (now_it == sample.snap.counters.end() ||
            prev_it == prev.snap.counters.end()) {
          continue;
        }
        const double delta = static_cast<double>(now_it->second) -
                             static_cast<double>(prev_it->second);
        Registry::instance()
            .ring_series(name + ".rate", options_.capacity)
            .append(delta / dt);
      }
    }
  }
  while (ring_.size() >= options_.capacity) ring_.pop_front();
  ring_.push_back(std::move(sample));
  ++ticks_;
}

bool MetricsSampler::window_locked(double window_s, const Sample** oldest,
                                   const Sample** newest) const {
  if (ring_.size() < 2) return false;
  *newest = &ring_.back();
  const double lo_ts =
      static_cast<double>((*newest)->ts_ns) - window_s * 1e9;
  // Earliest sample still inside the window; fall back to the second-newest
  // so a too-large window degrades to "whatever coverage we have".
  const Sample* first_inside = nullptr;
  for (const Sample& s : ring_) {
    if (static_cast<double>(s.ts_ns) >= lo_ts) {
      first_inside = &s;
      break;
    }
  }
  if (first_inside == nullptr || first_inside == *newest) {
    first_inside = &ring_[ring_.size() - 2];
  }
  *oldest = first_inside;
  return (*newest)->ts_ns > (*oldest)->ts_ns;
}

MetricsSampler::CounterWindow MetricsSampler::counter_window(
    std::string_view name, double window_s) const {
  const std::lock_guard<std::mutex> lock(mu_);
  CounterWindow out;
  const Sample* oldest = nullptr;
  const Sample* newest = nullptr;
  if (!window_locked(window_s, &oldest, &newest)) return out;
  const auto now_it = newest->snap.counters.find(std::string(name));
  if (now_it == newest->snap.counters.end()) return out;
  // A counter absent from the older snapshot had not been created yet —
  // counters start at zero, so zero is the correct baseline (without this,
  // any metric born after the sampler's first tick would never roll up).
  const auto old_it = oldest->snap.counters.find(std::string(name));
  const double old_value =
      old_it != oldest->snap.counters.end()
          ? static_cast<double>(old_it->second)
          : 0.0;
  out.seconds = static_cast<double>(newest->ts_ns - oldest->ts_ns) / 1e9;
  out.delta = static_cast<double>(now_it->second) - old_value;
  out.rate_per_s = out.seconds > 0.0 ? out.delta / out.seconds : 0.0;
  out.valid = true;
  return out;
}

MetricsSampler::GaugeWindow MetricsSampler::gauge_window(
    std::string_view name, double window_s) const {
  const std::lock_guard<std::mutex> lock(mu_);
  GaugeWindow out;
  const Sample* oldest = nullptr;
  const Sample* newest = nullptr;
  if (!window_locked(window_s, &oldest, &newest)) return out;
  const std::string key(name);
  double sum = 0.0;
  std::size_t n = 0;
  for (const Sample& s : ring_) {
    if (s.ts_ns < oldest->ts_ns) continue;
    const auto it = s.snap.gauges.find(key);
    if (it == s.snap.gauges.end()) continue;
    if (n == 0) {
      out.min = out.max = it->second;
    } else {
      out.min = std::min(out.min, it->second);
      out.max = std::max(out.max, it->second);
    }
    out.last = it->second;
    sum += it->second;
    ++n;
  }
  if (n == 0) return out;
  out.mean = sum / static_cast<double>(n);
  out.valid = true;
  return out;
}

MetricsSampler::HistogramWindow MetricsSampler::histogram_window(
    std::string_view name, double window_s) const {
  const std::lock_guard<std::mutex> lock(mu_);
  HistogramWindow out;
  const Sample* oldest = nullptr;
  const Sample* newest = nullptr;
  if (!window_locked(window_s, &oldest, &newest)) return out;
  const std::string key(name);
  const auto now_it = newest->snap.histograms.find(key);
  if (now_it == newest->snap.histograms.end()) return out;
  const Registry::HistoSnapshot& now = now_it->second;
  if (now.edges.empty()) return out;
  // A histogram absent from the older snapshot had not been created yet:
  // its baseline is all-zero weights (same reasoning as counter_window).
  static const Registry::HistoSnapshot kEmpty{};
  const auto old_it = oldest->snap.histograms.find(key);
  const Registry::HistoSnapshot& old =
      old_it != oldest->snap.histograms.end() ? old_it->second : kEmpty;
  const bool old_empty = old.weights.empty();
  if (!old_empty && now.weights.size() != old.weights.size()) return out;
  std::vector<double> delta(now.weights.size(), 0.0);
  for (std::size_t b = 0; b < delta.size(); ++b) {
    delta[b] = std::max(0.0, now.weights[b] -
                                 (old_empty ? 0.0 : old.weights[b]));
  }
  out.seconds = static_cast<double>(newest->ts_ns - oldest->ts_ns) / 1e9;
  for (const double w : delta) out.count += w;
  // Delta-weighted mean from the running sums: mean_now*total_now -
  // mean_old*total_old over the delta weight.
  if (out.count > 0.0) {
    out.mean =
        (now.mean * now.total - old.mean * old.total) / out.count;
    out.p50 = quantile_from_bins(now.edges, delta, 0.50);
    out.p95 = quantile_from_bins(now.edges, delta, 0.95);
    out.p99 = quantile_from_bins(now.edges, delta, 0.99);
  }
  out.valid = true;
  return out;
}

std::vector<std::string> MetricsSampler::counter_names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  if (ring_.empty()) return out;
  for (const auto& [name, value] : ring_.back().snap.counters) {
    out.push_back(name);
  }
  return out;
}

std::vector<std::string> MetricsSampler::histogram_names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  if (ring_.empty()) return out;
  for (const auto& [name, value] : ring_.back().snap.histograms) {
    out.push_back(name);
  }
  return out;
}

std::size_t MetricsSampler::samples() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t MetricsSampler::ticks() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return ticks_;
}

}  // namespace bpar::obs
