#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace bpar::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  out += json_escape(s);
  out.push_back('"');
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  // %.17g round-trips any double; trim to the shortest form that does.
  char buf[32];
  for (const int precision : {6, 9, 12, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    BPAR_RAISE(util::Error, "JSON object has no member '",
               std::string(key), "'");
  }
  return *v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    BPAR_RAISE(util::Error, "JSON parse error at offset ", pos_, ": ", what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.str = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return {};
      }
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (we never emit surrogates).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = value;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace bpar::obs
