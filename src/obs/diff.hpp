// Noise-aware performance diffing for bpar_prof.
//
// Any supported JSON document (RunReport, google-benchmark output,
// bpar_prof analysis, or a saved baseline) flattens to a metric map
// (key -> number); two maps diff with direction-aware thresholds. A change
// only counts as a regression when it clears BOTH a relative threshold and
// an absolute floor — re-running an unchanged build on a noisy machine
// must come back clean (the ±noise acceptance test).
//
// Flattened key shapes:
//   table/<table>/<row-key>/<column>   RunReport table cells (numeric)
//   analysis/<field>                   scorecard fields
//   gbench/<benchmark>/<real|cpu>_time google-benchmark, normalized to ns
//
// Baselines (bench_results/baseline.json) store min-of-N per key: merging
// a fresh run keeps the best value seen (min for lower-is-better metrics,
// max for higher-is-better), so the baseline converges to the machine's
// noise floor instead of chasing one lucky or unlucky run.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace bpar::obs {
class JsonValue;
}

namespace bpar::obs::diff {

using MetricMap = std::map<std::string, double>;

/// True for metrics where larger is better (speedup, parallelism,
/// utilization, ...); false for times and counts, where smaller is better.
[[nodiscard]] bool is_higher_better(std::string_view key);

/// Flattens a supported document into a metric map. Throws util::Error on
/// an unrecognized document shape (the structural, exit-2 failure).
[[nodiscard]] MetricMap flatten(const JsonValue& doc);

struct DiffOptions {
  /// Fractional change that matters (0.15 = 15%).
  double rel_threshold = 0.15;
  /// Absolute floor for lower-is-better metrics (ms-scale numbers): a
  /// 20% jump on a 0.1 ms row is noise, not a regression.
  double abs_threshold = 0.5;
  /// Absolute floor for higher-is-better metrics (ratio-scale numbers).
  double abs_threshold_hb = 0.05;
};

struct Delta {
  std::string key;
  double old_value = 0.0;
  double new_value = 0.0;
  double rel_change = 0.0;  // (new-old)/old, sign as stored
  bool regression = false;
  bool improvement = false;
};

struct DiffResult {
  std::vector<Delta> deltas;          // keys present on both sides
  std::vector<std::string> only_old;  // dropped metrics
  std::vector<std::string> only_new;  // added metrics
  bool structural = false;  // documents not comparable at all
  std::string structural_reason;

  [[nodiscard]] std::size_t regressions() const;
  [[nodiscard]] std::size_t improvements() const;
  /// 0 = clean, 1 = performance regressions, 2 = structural mismatch.
  [[nodiscard]] int exit_code() const;
};

[[nodiscard]] DiffResult diff_maps(const MetricMap& old_map,
                                   const MetricMap& new_map,
                                   const DiffOptions& options = {});

/// flatten() both sides (structural errors become exit-2 results rather
/// than exceptions) and diff.
[[nodiscard]] DiffResult diff_docs(const JsonValue& old_doc,
                                   const JsonValue& new_doc,
                                   const DiffOptions& options = {});

/// Renders regressions/improvements/changed-key-set tables.
void print_diff(const DiffResult& result, std::ostream& os);

// ---- baselines ----

struct BaselineEntry {
  double value = 0.0;
  int runs = 0;  // how many runs were merged into this entry
};

using Baseline = std::map<std::string, BaselineEntry>;

/// Parses a {"type":"bpar_prof_baseline"} document. Throws util::Error on
/// anything else.
[[nodiscard]] Baseline load_baseline(const JsonValue& doc);

/// Min-of-N merge: keeps the best value per key (min for lower-is-better,
/// max for higher-is-better) and bumps the run count. New keys enter with
/// the run's value.
void merge_baseline(Baseline& baseline, const MetricMap& run);

/// Baseline as a MetricMap (for diffing a run against it).
[[nodiscard]] MetricMap baseline_metrics(const Baseline& baseline);

/// Serializes as a bpar_prof_baseline JSON document.
[[nodiscard]] std::string baseline_json(const Baseline& baseline);

}  // namespace bpar::obs::diff
