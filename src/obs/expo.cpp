#include "obs/expo.hpp"

#include <cctype>

#include "obs/json.hpp"

namespace bpar::obs {

namespace {

bool valid_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void append_line(std::string& out, const std::string& name,
                 std::string_view suffix, std::string_view labels,
                 double value) {
  out += name;
  out += suffix;
  out += labels;
  out += ' ';
  out += json_number(value);
  out += '\n';
}

void append_header(std::string& out, const std::string& name,
                   std::string_view suffix, std::string_view type) {
  out += "# TYPE ";
  out += name;
  out += suffix;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "bpar_";
  for (const char c : name) {
    out += valid_name_char(c) ? c : '_';
  }
  return out;
}

std::string prometheus_text(const Registry::Snapshot& snap) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, value] : snap.counters) {
    const std::string pname = prometheus_name(name);
    append_header(out, pname, "_total", "counter");
    append_line(out, pname, "_total", "", static_cast<double>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string pname = prometheus_name(name);
    append_header(out, pname, "", "gauge");
    append_line(out, pname, "", "", value);
  }
  // Ring-mode series (the sampler's ".rate" sparkline feeds) are windows,
  // not scalars, so they never fit the counter/gauge forms above — export
  // the newest value as a gauge so scrapes see the live rate.
  for (const auto& [name, value] : snap.ring_last) {
    const std::string pname = prometheus_name(name);
    append_header(out, pname, "", "gauge");
    append_line(out, pname, "", "", value);
  }
  for (const auto& [name, histo] : snap.histograms) {
    if (histo.weights.size() != histo.edges.size() + 1) continue;
    const std::string pname = prometheus_name(name);
    append_header(out, pname, "", "histogram");
    double cumulative = 0.0;
    // Registry bin i is [edges[i-1], edges[i]), so the cumulative weight
    // through bin i is exactly the `le = edges[i]` bucket.
    for (std::size_t i = 0; i < histo.edges.size(); ++i) {
      cumulative += histo.weights[i];
      append_line(out, pname, "_bucket",
                  "{le=\"" + json_number(histo.edges[i]) + "\"}", cumulative);
    }
    cumulative += histo.weights.back();
    append_line(out, pname, "_bucket", "{le=\"+Inf\"}", cumulative);
    append_line(out, pname, "_sum", "", histo.mean * histo.total);
    append_line(out, pname, "_count", "", histo.total);
  }
  return out;
}

}  // namespace bpar::obs
