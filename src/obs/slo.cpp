#include "obs/slo.hpp"

#include <algorithm>
#include <chrono>

namespace bpar::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

SloTracker::SloTracker(SloOptions options) : options_(options) {
  if (options_.short_window_s == 0) options_.short_window_s = 1;
  if (options_.long_window_s < options_.short_window_s) {
    options_.long_window_s = options_.short_window_s;
  }
  options_.availability_objective =
      std::clamp(options_.availability_objective, 0.0, 1.0 - 1e-9);
  options_.latency_objective =
      std::clamp(options_.latency_objective, 0.0, 1.0 - 1e-9);
  buckets_.assign(options_.long_window_s, Bucket{});
}

void SloTracker::record(bool ok, double latency_us) {
  record_at(steady_now_ns(), ok, latency_us);
}

void SloTracker::record_at(std::uint64_t ts_ns, bool ok, double latency_us) {
  const std::uint64_t second = ts_ns / 1'000'000'000ULL;
  const std::lock_guard<std::mutex> lock(mu_);
  Bucket& bucket = buckets_[second % buckets_.size()];
  if (bucket.second != second) {
    // The ring slot last covered a second at least long_window_s ago;
    // recycle it for the current second.
    bucket = Bucket{};
    bucket.second = second;
  }
  ++bucket.eligible;
  ++eligible_;
  if (ok) {
    ++ok_;
    if (latency_us > options_.latency_target_us) ++latency_misses_;
  } else {
    ++bucket.errors;
    ++errors_;
  }
}

double SloTracker::window_error_ratio_locked(std::uint64_t now_s,
                                             std::uint32_t window_s) const {
  std::uint64_t eligible = 0;
  std::uint64_t errors = 0;
  const std::uint64_t lo_s =
      now_s >= window_s - 1 ? now_s - (window_s - 1) : 0;
  for (const Bucket& bucket : buckets_) {
    if (bucket.eligible == 0) continue;
    if (bucket.second < lo_s || bucket.second > now_s) continue;
    eligible += bucket.eligible;
    errors += bucket.errors;
  }
  if (eligible == 0) return 0.0;
  return static_cast<double>(errors) / static_cast<double>(eligible);
}

SloTracker::Snapshot SloTracker::snapshot() const {
  return snapshot_at(steady_now_ns());
}

SloTracker::Snapshot SloTracker::snapshot_at(std::uint64_t ts_ns) const {
  const std::uint64_t now_s = ts_ns / 1'000'000'000ULL;
  const std::lock_guard<std::mutex> lock(mu_);
  Snapshot out;
  out.eligible = eligible_;
  out.errors = errors_;
  out.latency_misses = latency_misses_;
  if (eligible_ > 0) {
    out.availability = static_cast<double>(ok_) /
                       static_cast<double>(eligible_);
    const double budget = static_cast<double>(eligible_) *
                          (1.0 - options_.availability_objective);
    out.budget_consumed =
        budget > 0.0 ? static_cast<double>(errors_) / budget : 0.0;
  }
  if (ok_ > 0) {
    out.latency_attainment =
        static_cast<double>(ok_ - latency_misses_) /
        static_cast<double>(ok_);
  }
  const double budget_ratio = 1.0 - options_.availability_objective;
  out.burn_short =
      window_error_ratio_locked(now_s, options_.short_window_s) /
      budget_ratio;
  out.burn_long =
      window_error_ratio_locked(now_s, options_.long_window_s) /
      budget_ratio;
  out.alerting = out.burn_short >= options_.alert_burn_threshold &&
                 out.burn_long >= options_.alert_burn_threshold;
  return out;
}

}  // namespace bpar::obs
