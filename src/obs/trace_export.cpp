#include "obs/trace_export.hpp"

#include <fstream>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "util/check.hpp"

namespace bpar::obs {
namespace {

// Chrome-trace "ts" is microseconds; doubles keep ns precision.
double us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

const char* event_cat(EventKind kind) {
  switch (kind) {
    case EventKind::kSpan:
      return "span";
    case EventKind::kTask:
      return "task";
    case EventKind::kCounter:
      return "counter";
    case EventKind::kInstant:
      return "instant";
  }
  return "span";
}

}  // namespace

ChromeTraceWriter::ChromeTraceWriter(std::ostream& os) : os_(os) {
  os_ << "[";
}

ChromeTraceWriter::~ChromeTraceWriter() { os_ << "\n]\n"; }

void ChromeTraceWriter::begin_event() {
  if (!first_) os_ << ",";
  first_ = false;
  os_ << "\n  ";
}

void ChromeTraceWriter::thread_name(int pid, int tid, std::string_view name) {
  begin_event();
  os_ << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << pid
      << ", \"tid\": " << tid << ", \"args\": {\"name\": "
      << json_quote(name) << "}}";
}

void ChromeTraceWriter::slice(std::string_view name, std::string_view cat,
                              std::uint64_t ts_ns, double dur_ns, int pid,
                              int tid) {
  begin_event();
  os_ << "{\"name\": " << json_quote(name) << ", \"cat\": "
      << json_quote(cat) << ", \"ph\": \"X\", \"ts\": "
      << json_number(us(ts_ns)) << ", \"dur\": " << json_number(dur_ns / 1e3)
      << ", \"pid\": " << pid << ", \"tid\": " << tid << "}";
}

void ChromeTraceWriter::slice_args(std::string_view name, std::string_view cat,
                                   std::uint64_t ts_ns, double dur_ns, int pid,
                                   int tid, std::string_view args_json) {
  begin_event();
  os_ << "{\"name\": " << json_quote(name) << ", \"cat\": "
      << json_quote(cat) << ", \"ph\": \"X\", \"ts\": "
      << json_number(us(ts_ns)) << ", \"dur\": " << json_number(dur_ns / 1e3)
      << ", \"pid\": " << pid << ", \"tid\": " << tid << ", \"args\": "
      << args_json << "}";
}

void ChromeTraceWriter::counter(std::string_view name, std::uint64_t ts_ns,
                                int pid, std::uint64_t value) {
  begin_event();
  os_ << "{\"name\": " << json_quote(name)
      << ", \"ph\": \"C\", \"ts\": " << json_number(us(ts_ns))
      << ", \"pid\": " << pid << ", \"args\": {\"value\": " << value << "}}";
}

void ChromeTraceWriter::instant(std::string_view name, std::uint64_t ts_ns,
                                int pid, int tid) {
  begin_event();
  os_ << "{\"name\": " << json_quote(name)
      << ", \"ph\": \"i\", \"s\": \"t\", \"ts\": " << json_number(us(ts_ns))
      << ", \"pid\": " << pid << ", \"tid\": " << tid << "}";
}

void ChromeTraceWriter::instant_args(std::string_view name,
                                     std::uint64_t ts_ns, int pid, int tid,
                                     std::string_view args_json) {
  begin_event();
  os_ << "{\"name\": " << json_quote(name)
      << ", \"ph\": \"i\", \"s\": \"t\", \"ts\": " << json_number(us(ts_ns))
      << ", \"pid\": " << pid << ", \"tid\": " << tid << ", \"args\": "
      << args_json << "}";
}

void write_thread_events(ChromeTraceWriter& writer, const ThreadTrace& thread,
                         int pid, int tid, std::uint64_t base_ns,
                         bool skip_tasks) {
  for (const TraceEvent& ev : thread.events) {
    const std::uint64_t ts =
        ev.ts_ns > base_ns ? ev.ts_ns - base_ns : 0;
    const std::string name = interned_name(ev.name);
    switch (ev.kind) {
      case EventKind::kSpan:
        writer.slice(name, event_cat(ev.kind), ts, ev.duration_ns(), pid,
                     tid);
        break;
      case EventKind::kTask:
        if (!skip_tasks) {
          writer.slice(name, event_cat(ev.kind), ts, ev.duration_ns(), pid,
                       tid);
        }
        break;
      case EventKind::kCounter:
        writer.counter(name, ts, pid, ev.payload);
        break;
      case EventKind::kInstant:
        writer.instant(name, ts, pid, tid);
        break;
    }
  }
}

std::uint64_t earliest_ts(const std::vector<ThreadTrace>& threads) {
  std::uint64_t base = 0;
  bool seen = false;
  for (const ThreadTrace& t : threads) {
    for (const TraceEvent& ev : t.events) {
      if (!seen || ev.ts_ns < base) {
        base = ev.ts_ns;
        seen = true;
      }
    }
  }
  return base;
}

void write_trace_json(std::ostream& os) {
  write_trace_json(os, ExtraEventEmitter{});
}

void write_trace_json(std::ostream& os, const ExtraEventEmitter& extra) {
  const std::vector<ThreadTrace> threads = collect();
  const std::uint64_t base = earliest_ts(threads);
  constexpr int kPid = 1;
  ChromeTraceWriter writer(os);
  for (const ThreadTrace& t : threads) {
    std::string label = t.name.empty()
                            ? "thread " + std::to_string(t.ring_id)
                            : t.name;
    if (t.dropped > 0) {
      label += " (dropped " + std::to_string(t.dropped) + ")";
    }
    writer.thread_name(kPid, t.ring_id, label);
  }
  for (const ThreadTrace& t : threads) {
    write_thread_events(writer, t, kPid, t.ring_id, base);
  }
  if (extra) extra(writer, base);
}

void write_trace_json_file(const std::string& path) {
  std::ofstream os = open_output_file(path);
  write_trace_json(os);
}

}  // namespace bpar::obs
