#include "obs/metrics.hpp"

#include <sstream>

namespace bpar::obs {

void Series::append(double v) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++appends_;
  if (ring_capacity_ > 0) {
    // Ring mode: drop the oldest so the window always tracks "now".
    while (values_.size() >= ring_capacity_) values_.pop_front();
    values_.push_back(v);
  } else if (values_.size() < kMaxValues) {
    values_.push_back(v);
  }
}

std::vector<double> Series::values() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {values_.begin(), values_.end()};
}

void Series::set_ring_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = capacity == 0 ? 1 : capacity;
  while (values_.size() > ring_capacity_) values_.pop_front();
}

std::size_t Series::ring_capacity() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return ring_capacity_;
}

bool Series::last(double* out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (values_.empty()) return false;
  *out = values_.back();
  return true;
}

std::size_t Series::total_appends() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return appends_;
}

void Series::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  values_.clear();
  appends_ = 0;
}

HistogramCell::HistogramCell(std::vector<double> edges)
    : edges_(edges), histogram_(std::move(edges)) {}

void HistogramCell::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  histogram_ = Histogram(edges_);
}

void HistogramCell::add(double value, double weight) {
  const std::lock_guard<std::mutex> lock(mu_);
  histogram_.add(value, weight);
}

Histogram HistogramCell::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return histogram_;
}

Registry& Registry::instance() {
  static Registry* registry = new Registry();  // leaked: usable at exit
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return gauges_.try_emplace(std::string(name)).first->second;
}

Series& Registry::series(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return series_.try_emplace(std::string(name)).first->second;
}

Series& Registry::ring_series(std::string_view name, std::size_t capacity) {
  Series& s = series(name);
  s.set_ring_capacity(capacity);
  return s;
}

HistogramCell& Registry::histogram(std::string_view name,
                                   std::vector<double> edges) {
  const std::lock_guard<std::mutex> lock(mu_);
  return histograms_.try_emplace(std::string(name), std::move(edges))
      .first->second;
}

Registry::Snapshot Registry::snapshot(bool include_series) const {
  const std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g.value();
  if (include_series) {
    for (const auto& [name, s] : series_) snap.series[name] = s.values();
  }
  for (const auto& [name, s] : series_) {
    double v = 0.0;
    if (s.ring_capacity() > 0 && s.last(&v)) snap.ring_last[name] = v;
  }
  for (const auto& [name, h] : histograms_) {
    const Histogram histo = h.snapshot();
    HistoSnapshot hs;
    hs.mean = histo.mean();
    hs.total = histo.total_weight();
    hs.edges = histo.edges();
    for (std::size_t b = 0; b < histo.bins(); ++b) {
      hs.labels.push_back(histo.bin_label(b));
      hs.weights.push_back(histo.bin_weight(b));
    }
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

std::string Registry::format_compact(std::string_view prefix) const {
  const Snapshot snap = snapshot();
  std::ostringstream os;
  bool first = true;
  const auto emit = [&](const std::string& name, const auto& value) {
    if (!name.starts_with(prefix)) return;
    if (!first) os << ' ';
    first = false;
    os << name << '=' << value;
  };
  for (const auto& [name, v] : snap.counters) emit(name, v);
  for (const auto& [name, v] : snap.gauges) emit(name, v);
  return os.str();
}

void Registry::reset_for_test() {
  const std::lock_guard<std::mutex> lock(mu_);
  // Entries are cleared in place, never erased: handles cached by
  // instrumented code (function-local statics) must stay valid.
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.set(0.0);
  for (auto& [name, s] : series_) s.clear();
  for (auto& [name, h] : histograms_) h.clear();
}

}  // namespace bpar::obs
