// Live time-series sampling of the metrics registry (DESIGN.md §5i).
//
// A MetricsSampler is a background thread that snapshots the process-wide
// obs::Registry every `period_ms` into a bounded drop-oldest ring of
// timestamped snapshots, so "throughput over the last 10 seconds" is a
// first-class query on a *running* system instead of an end-of-run report:
//
//  * counter_window()   — delta and rate-per-second of a counter over the
//    trailing window (clamped to the coverage the ring actually holds);
//  * gauge_window()     — last / min / max / mean of a gauge's samples;
//  * histogram_window() — count, mean, and interpolated p50/p95/p99 of the
//    *delta* weights an obs::Histogram accumulated inside the window, so a
//    forever-growing latency histogram still yields rolling percentiles.
//
// Each tick also publishes the instantaneous rate of the counters named in
// SamplerOptions::rate_series into Registry ring series ("<name>.rate"),
// giving /statz and bpar_top a ready-made sparkline without a second
// collection path. Snapshots exclude Series values (they can be large and
// the sampler publishes into them).
//
// All query methods are thread-safe; sample_at() exists so tests can drive
// deterministic timestamps without a thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace bpar::obs {

struct SamplerOptions {
  std::uint32_t period_ms = 1000;
  /// Ring capacity in snapshots (drop-oldest): 600 ticks at the default
  /// 1 s period is a 10-minute window.
  std::size_t capacity = 600;
  /// Counters whose per-tick rate is published as a Registry ring series
  /// named "<counter>.rate" (same capacity as the snapshot ring).
  std::vector<std::string> rate_series;
  /// Publish subsystem memory trackers + a /proc/self sample (`mem.*` /
  /// `proc.*` gauges, obs/memory.hpp) ahead of each tick's snapshot, so
  /// RSS / fault / ctx-switch history rides the same rollup machinery.
  bool sample_proc = true;
};

class MetricsSampler {
 public:
  explicit MetricsSampler(SamplerOptions options = {});
  ~MetricsSampler();  // stop()

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Spawns the sampling thread (idempotent).
  void start();
  /// Stops and joins the sampling thread (idempotent).
  void stop();

  /// Takes one snapshot now (also what the thread calls each tick).
  void sample_now();
  /// Test hook: takes one snapshot stamped with the given timestamp, so
  /// window math is exact under deterministic clocks.
  void sample_at(std::uint64_t ts_ns);

  struct CounterWindow {
    bool valid = false;    // >= 2 samples and the counter was present
    double seconds = 0.0;  // actual covered span (<= requested window)
    double delta = 0.0;
    double rate_per_s = 0.0;
  };
  struct GaugeWindow {
    bool valid = false;
    double last = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
  };
  struct HistogramWindow {
    bool valid = false;
    double seconds = 0.0;
    double count = 0.0;  // delta total weight inside the window
    double mean = 0.0;   // delta-weighted mean
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  [[nodiscard]] CounterWindow counter_window(std::string_view name,
                                             double window_s) const;
  [[nodiscard]] GaugeWindow gauge_window(std::string_view name,
                                         double window_s) const;
  [[nodiscard]] HistogramWindow histogram_window(std::string_view name,
                                                 double window_s) const;

  /// Names present in the newest snapshot (for generic /statz emission).
  [[nodiscard]] std::vector<std::string> counter_names() const;
  [[nodiscard]] std::vector<std::string> histogram_names() const;

  [[nodiscard]] std::size_t samples() const;  // snapshots currently held
  [[nodiscard]] std::uint64_t ticks() const;  // snapshots ever taken
  [[nodiscard]] std::uint32_t period_ms() const {
    return options_.period_ms;
  }

 private:
  struct Sample {
    std::uint64_t ts_ns = 0;
    Registry::Snapshot snap;
  };

  void thread_loop();
  /// Newest sample + the earliest sample still inside [newest - window];
  /// false when fewer than two samples exist. Caller holds mu_.
  [[nodiscard]] bool window_locked(double window_s, const Sample** oldest,
                                   const Sample** newest) const;

  SamplerOptions options_;
  mutable std::mutex mu_;
  std::deque<Sample> ring_;
  std::uint64_t ticks_ = 0;

  std::mutex thread_mu_;  // guards start/stop + the cv
  std::condition_variable cv_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace bpar::obs
