#include "obs/stats_server.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <exception>

namespace bpar::obs {

namespace {

constexpr int kConnTimeoutSec = 5;

void set_socket_timeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

void send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;  // peer went away; nothing useful to do
    sent += static_cast<std::size_t>(n);
  }
}

void send_response(int fd, const HttpResponse& resp) {
  std::string head = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                     status_reason(resp.status) + "\r\n";
  head += "Content-Type: " + resp.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  send_all(fd, head);
  send_all(fd, resp.body);
}

/// Reads until the end of the request head ("\r\n\r\n") or the buffer cap.
/// GET requests have no body we care about.
std::string read_request_head(int fd) {
  std::string buf;
  char chunk[1024];
  while (buf.size() < 16384) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
    if (buf.find("\r\n\r\n") != std::string::npos) break;
  }
  return buf;
}

}  // namespace

StatsServer::~StatsServer() { stop(); }

void StatsServer::handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

bool StatsServer::start(std::uint16_t port) {
  if (listen_fd_ >= 0) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 16) < 0) {
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    ::close(fd);
    return false;
  }
  listen_fd_ = fd;
  port_ = static_cast<int>(ntohs(bound.sin_port));
  thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void StatsServer::stop() {
  if (listen_fd_ < 0) return;
  // shutdown() unblocks the accept() the loop thread is parked in; the
  // loop then sees the failure and exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = -1;
}

void StatsServer::accept_loop() {
  for (;;) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or unrecoverable): exit the loop
    }
    set_socket_timeout(conn, kConnTimeoutSec * 1000);
    serve_connection(conn);
    ::close(conn);
  }
}

void StatsServer::serve_connection(int fd) {
  const std::string head = read_request_head(fd);
  // Request line: METHOD SP PATH SP VERSION.
  const std::size_t sp1 = head.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : head.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) {
    send_response(fd, {405, "text/plain; charset=utf-8", "bad request\n"});
    return;
  }
  const std::string method = head.substr(0, sp1);
  std::string path = head.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string query;
  if (const std::size_t q = path.find('?'); q != std::string::npos) {
    query = path.substr(q + 1);
    path.resize(q);
  }
  if (method != "GET") {
    send_response(fd,
                  {405, "text/plain; charset=utf-8", "GET only\n"});
    return;
  }
  const auto it = handlers_.find(path);
  if (it == handlers_.end()) {
    send_response(fd, {404, "text/plain; charset=utf-8",
                       "not found: " + path + "\n"});
    return;
  }
  HttpResponse resp;
  try {
    resp = it->second(query);
  } catch (const std::exception& e) {
    resp = {500, "text/plain; charset=utf-8",
            std::string("handler error: ") + e.what() + "\n"};
  } catch (...) {
    resp = {500, "text/plain; charset=utf-8", "handler error\n"};
  }
  send_response(fd, resp);
}

HttpResult http_get(std::string_view host, std::uint16_t port,
                    std::string_view path, int timeout_ms) {
  HttpResult out;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string host_str(host);
  if (::inet_pton(AF_INET, host_str.c_str(), &addr.sin_addr) != 1) {
    // Not a numeric IPv4 literal: resolve the name (getaddrinfo also
    // covers "localhost" without /etc/hosts assumptions).
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const int rc = ::getaddrinfo(host_str.c_str(), nullptr, &hints, &res);
    if (rc != 0 || res == nullptr) {
      out.error = "resolve " + host_str + ": " + ::gai_strerror(rc);
      if (res != nullptr) ::freeaddrinfo(res);
      return out;
    }
    addr.sin_addr =
        reinterpret_cast<const sockaddr_in*>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    out.error = std::string("socket: ") + std::strerror(errno);
    return out;
  }
  set_socket_timeout(fd, timeout_ms);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    out.error = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    return out;
  }
  std::string req = "GET " + std::string(path) +
                    " HTTP/1.1\r\nHost: " + host_str +
                    "\r\nConnection: close\r\n\r\n";
  send_all(fd, req);
  std::string raw;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    raw.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    out.error = "malformed response (no header terminator)";
    return out;
  }
  // Status line: HTTP/1.1 SP CODE SP REASON.
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > head_end) {
    out.error = "malformed status line";
    return out;
  }
  out.status = std::atoi(raw.c_str() + sp + 1);
  out.body = raw.substr(head_end + 4);
  out.ok = out.status > 0;
  return out;
}

}  // namespace bpar::obs
