// Process-wide metrics registry: named atomic counters, gauges, bounded
// series, and mutex-guarded obs::Histograms.
//
// Usage pattern: resolve the handle once (the registry returns stable
// references), then update it lock-free on the hot path:
//
//   static obs::Counter& steals = obs::Registry::instance().counter("x");
//   steals.add();
//
// Handles live for the process lifetime; the registry never removes an
// entry. snapshot() is the single read point — the run-report emitter, the
// watchdog dump, and the JSONL metrics stream all consume it.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.hpp"

namespace bpar::obs {

/// Monotonic event count. Lock-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value. Lock-free.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Numeric series (per-epoch loss, grad norms, sampler time series). Two
/// retention modes:
///  * append-only (default): once kMaxValues entries exist further appends
///    are counted but dropped, so an unbounded training loop cannot grow
///    the registry without limit — the OLDEST values are what you keep;
///  * ring (set_ring_capacity): a bounded drop-oldest window, so a
///    long-running sampler always holds the most RECENT values and never
///    silently stops recording.
class Series {
 public:
  static constexpr std::size_t kMaxValues = 65536;

  void append(double v);
  [[nodiscard]] std::vector<double> values() const;
  [[nodiscard]] std::size_t total_appends() const;
  void clear();

  /// Switches the series to drop-oldest ring retention with the given
  /// capacity (>= 1). Existing values beyond the capacity are trimmed from
  /// the front. Idempotent; a later call may resize the window.
  void set_ring_capacity(std::size_t capacity);
  /// 0 = append-only mode.
  [[nodiscard]] std::size_t ring_capacity() const;
  /// Newest value, or false when the series is empty.
  [[nodiscard]] bool last(double* out) const;

 private:
  mutable std::mutex mu_;
  std::deque<double> values_;
  std::size_t appends_ = 0;
  std::size_t ring_capacity_ = 0;  // 0 = append-only (cap kMaxValues)
};

/// Thread-safe wrapper over the weighted obs::Histogram.
class HistogramCell {
 public:
  explicit HistogramCell(std::vector<double> edges);
  void add(double value, double weight = 1.0);
  [[nodiscard]] Histogram snapshot() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<double> edges_;
  Histogram histogram_;
};

class Registry {
 public:
  static Registry& instance();

  /// Lookup-or-create; the returned reference is stable forever.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Series& series(std::string_view name);
  /// series() + set_ring_capacity(capacity): a bounded drop-oldest time
  /// series (what the MetricsSampler publishes rollups into).
  Series& ring_series(std::string_view name, std::size_t capacity);
  /// `edges` applies on first creation only (later calls reuse the cell).
  HistogramCell& histogram(std::string_view name, std::vector<double> edges);

  struct HistoSnapshot {
    std::vector<std::string> labels;
    std::vector<double> edges;  // inner bin boundaries (bins = edges + 1)
    std::vector<double> weights;
    double mean = 0.0;
    double total = 0.0;
  };
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, std::vector<double>> series;
    /// Newest value of every non-empty ring-mode series — captured even
    /// when include_series is false, so cheap snapshots (the sampler, the
    /// /metrics endpoint) still expose the sparkline feeds' current value.
    std::map<std::string, double> ring_last;
    std::map<std::string, HistoSnapshot> histograms;
  };
  /// `include_series = false` skips the (potentially large) series values —
  /// the periodic MetricsSampler and the /metrics endpoint use that form.
  [[nodiscard]] Snapshot snapshot(bool include_series = true) const;

  /// One-line "name=value" rendering of counters and gauges whose names
  /// start with `prefix` — for human-readable state dumps (watchdog).
  [[nodiscard]] std::string format_compact(std::string_view prefix = {}) const;

  /// Zeroes every counter and drops all series/histogram content. Handles
  /// stay valid. Tests only — production code never resets.
  void reset_for_test();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry() = default;

  mutable std::mutex mu_;
  // node-based maps: references into them survive later insertions.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Series, std::less<>> series_;
  std::map<std::string, HistogramCell, std::less<>> histograms_;
};

}  // namespace bpar::obs
