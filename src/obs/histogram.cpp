#include "obs/histogram.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace bpar::obs {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  BPAR_CHECK(!edges_.empty(), "histogram needs at least one edge");
  BPAR_CHECK(std::is_sorted(edges_.begin(), edges_.end()),
             "histogram edges must ascend");
  weights_.assign(edges_.size() + 1, 0.0);
}

void Histogram::add(double value, double weight) {
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  const auto bin = static_cast<std::size_t>(it - edges_.begin());
  weights_[bin] += weight;
  total_ += weight;
  weighted_sum_ += value * weight;
}

double Histogram::bin_weight(std::size_t bin) const {
  BPAR_CHECK(bin < weights_.size(), "bin out of range");
  return weights_[bin];
}

double Histogram::bin_fraction(std::size_t bin) const {
  return total_ == 0.0 ? 0.0 : bin_weight(bin) / total_;
}

double Histogram::mean() const {
  return total_ == 0.0 ? 0.0 : weighted_sum_ / total_;
}

double quantile_from_bins(const std::vector<double>& edges,
                          const std::vector<double>& weights, double q) {
  BPAR_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  BPAR_CHECK(weights.size() == edges.size() + 1,
             "bin weights must be edges + 1");
  double total = 0.0;
  for (const double w : weights) total += w;
  if (total == 0.0) return 0.0;
  const double target = q * total;
  double cumulative = 0.0;
  for (std::size_t bin = 0; bin < weights.size(); ++bin) {
    if (cumulative + weights[bin] < target) {
      cumulative += weights[bin];
      continue;
    }
    // Bin bounds: the outer bins are open-ended, clamp to the finite edge.
    const double lo = bin == 0 ? edges.front() : edges[bin - 1];
    const double hi = bin == weights.size() - 1 ? edges.back() : edges[bin];
    if (weights[bin] == 0.0) return lo;
    const double frac =
        std::clamp((target - cumulative) / weights[bin], 0.0, 1.0);
    return lo + frac * (hi - lo);
  }
  return edges.back();
}

double Histogram::quantile(double q) const {
  return quantile_from_bins(edges_, weights_, q);
}

std::string Histogram::bin_label(std::size_t bin, int digits) const {
  BPAR_CHECK(bin < weights_.size(), "bin out of range");
  char buf[64];
  if (bin == 0) {
    std::snprintf(buf, sizeof buf, "<%.*f", digits, edges_.front());
  } else if (bin == weights_.size() - 1) {
    std::snprintf(buf, sizeof buf, ">=%.*f", digits, edges_.back());
  } else {
    std::snprintf(buf, sizeof buf, "%.*f-%.*f", digits, edges_[bin - 1],
                  digits, edges_[bin]);
  }
  return buf;
}

}  // namespace bpar::obs
