#include "obs/histogram.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace bpar::obs {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  BPAR_CHECK(!edges_.empty(), "histogram needs at least one edge");
  BPAR_CHECK(std::is_sorted(edges_.begin(), edges_.end()),
             "histogram edges must ascend");
  weights_.assign(edges_.size() + 1, 0.0);
}

void Histogram::add(double value, double weight) {
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  const auto bin = static_cast<std::size_t>(it - edges_.begin());
  weights_[bin] += weight;
  total_ += weight;
  weighted_sum_ += value * weight;
}

double Histogram::bin_weight(std::size_t bin) const {
  BPAR_CHECK(bin < weights_.size(), "bin out of range");
  return weights_[bin];
}

double Histogram::bin_fraction(std::size_t bin) const {
  return total_ == 0.0 ? 0.0 : bin_weight(bin) / total_;
}

double Histogram::mean() const {
  return total_ == 0.0 ? 0.0 : weighted_sum_ / total_;
}

std::string Histogram::bin_label(std::size_t bin, int digits) const {
  BPAR_CHECK(bin < weights_.size(), "bin out of range");
  char buf[64];
  if (bin == 0) {
    std::snprintf(buf, sizeof buf, "<%.*f", digits, edges_.front());
  } else if (bin == weights_.size() - 1) {
    std::snprintf(buf, sizeof buf, ">=%.*f", digits, edges_.back());
  } else {
    std::snprintf(buf, sizeof buf, "%.*f-%.*f", digits, edges_[bin - 1],
                  digits, edges_[bin]);
  }
  return buf;
}

}  // namespace bpar::obs
