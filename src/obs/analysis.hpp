// Trace/report analysis engine (`bpar_prof` backend).
//
// PR 3 produced raw telemetry — Perfetto traces, metrics, RunReports —
// but nothing that answers questions with it. This module consumes a
// TraceModel (executed tasks with their start/finish samples, declared
// dependencies, and worker placement, plus park/fault spans) and computes:
//
//  * measured critical path — the longest duration-weighted chain through
//    *actually executed* tasks, with a per-(class, layer, direction)
//    breakdown of time on the chain. Comparing this against
//    TaskGraph::critical_path_cost (model weights) and the makespan shows
//    where reality diverges from the DAG's theoretical span (Naumov's
//    achieved-vs-theoretical parallelism framing);
//
//  * per-worker idle attribution — every gap in a worker's timeline is
//    classified as parked, fault (injected delay/stall), dependency-stall
//    (nothing was ready anywhere), or steal-failure (work was ready but
//    this worker could not obtain it). Precedence: parked > fault >
//    dependency-stall/steal-failure;
//
//  * a scheduler scorecard — achieved parallelism (Σwork / makespan), the
//    DAG bound (Σwork / critical path), utilization, load imbalance, steal
//    hit rate, and idle-class fractions — emitted as the "analysis"
//    section of a RunReport and as `bpar_prof analyze` output.
//
// TraceModels come from three sources: in-process RunStats
// (taskrt::make_trace_model), a simulated schedule (same function, sim
// trace), or a unified trace JSON re-parsed from disk
// (model_from_trace_json — task slices carry {task, deps, worker} args).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace bpar::obs {
class JsonValue;
class ChromeTraceWriter;
}  // namespace bpar::obs

namespace bpar::obs::analysis {

/// One executed task: timing samples, placement, and declared deps.
struct TaskRecord {
  std::uint32_t id = 0;
  std::string name;   // diagnostic label ("f0.3", "m2.17", ...)
  std::string klass;  // task-kind label ("cell_fwd", "merge", ...)
  int layer = -1;
  int step = -1;
  int worker = -1;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::vector<std::uint32_t> preds;  // direct dependencies (task ids)

  [[nodiscard]] std::uint64_t duration_ns() const {
    return end_ns > start_ns ? end_ns - start_ns : 0;
  }
  /// 'f' / 'r' from the graph-builder name convention ("f0.3", "bf1.2",
  /// "r0.5", "br2.9"), '-' when the name does not encode a direction.
  [[nodiscard]] char direction() const;
};

/// A park or fault-injection interval on one worker's timeline.
struct WorkerSpan {
  int worker = -1;
  bool fault = false;  // false = parked, true = injected fault delay/stall
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
};

/// Everything the analyses consume. Timestamps share one timebase; only
/// differences matter, so session-relative and shifted-absolute both work.
struct TraceModel {
  int num_workers = 0;
  std::vector<TaskRecord> tasks;
  std::vector<WorkerSpan> worker_spans;
  /// Optional scheduler counters ("steals", "steal_failures", "parks",
  /// "busy_ns", "idle_ns") for cross-checking against the runtime's own
  /// accounting. Empty when the source is a bare trace file.
  std::map<std::string, double> counters;

  /// [min task start, max task end] — the analysis window.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> window() const;
};

// ---- measured critical path ----

struct ClassBreakdownRow {
  std::string klass;
  int layer = -1;
  char direction = '-';
  std::uint64_t total_ns = 0;
  std::size_t tasks = 0;
};

struct CriticalPath {
  std::uint64_t measured_ns = 0;  // Σ durations along the longest dep chain
  std::uint64_t makespan_ns = 0;  // analysis-window length
  std::size_t length = 0;         // tasks on the chain
  std::vector<std::uint32_t> chain;             // source → sink task ids
  std::vector<ClassBreakdownRow> by_class;      // chain time per class
  /// makespan / measured critical path: 1.0 = the schedule was span-bound;
  /// larger = time lost to resources, scheduling, or imbalance.
  [[nodiscard]] double stretch() const {
    return measured_ns == 0
               ? 0.0
               : static_cast<double>(makespan_ns) /
                     static_cast<double>(measured_ns);
  }
};

/// Longest duration-weighted dependency chain. Throws util::Error on a
/// dangling pred id or a dependency cycle.
[[nodiscard]] CriticalPath critical_path(const TraceModel& model);

// ---- idle attribution ----

struct IdleBreakdown {
  std::uint64_t busy_ns = 0;
  std::uint64_t dep_stall_ns = 0;   // nothing was ready anywhere
  std::uint64_t steal_fail_ns = 0;  // work was ready, not obtained
  std::uint64_t parked_ns = 0;      // inside a recorded park span
  std::uint64_t fault_ns = 0;       // inside an injected-fault span

  [[nodiscard]] std::uint64_t idle_ns() const {
    return dep_stall_ns + steal_fail_ns + parked_ns + fault_ns;
  }
  IdleBreakdown& operator+=(const IdleBreakdown& other);
};

struct IdleAttribution {
  IdleBreakdown total;
  std::vector<IdleBreakdown> per_worker;  // indexed by worker id
};

/// Reconstructs each worker's timeline over the analysis window and
/// classifies every gap (see file comment for the taxonomy).
[[nodiscard]] IdleAttribution attribute_idle(const TraceModel& model);

// ---- scheduler scorecard ----

struct Scorecard {
  int workers = 0;
  std::size_t tasks = 0;
  std::uint64_t makespan_ns = 0;
  std::uint64_t total_work_ns = 0;       // Σ task durations
  std::uint64_t critical_path_ns = 0;    // measured (this trace)
  std::uint64_t model_critical_path_ns = 0;  // TaskGraph cost model, 0 = n/a
  double achieved_parallelism = 0.0;  // Σwork / makespan
  double max_parallelism = 0.0;       // Σwork / critical path (DAG bound)
  double utilization = 0.0;           // Σwork / (workers × makespan)
  double load_imbalance = 0.0;        // max worker busy / mean worker busy
  double steal_hit_rate = -1.0;       // steals/(steals+failures); -1 = n/a
  // Idle-class share of total capacity (workers × makespan).
  double dep_stall_frac = 0.0;
  double steal_fail_frac = 0.0;
  double parked_frac = 0.0;
  double fault_frac = 0.0;
  /// Runtime's own busy/(busy+idle) from counters; -1 when absent. The
  /// acceptance check: |utilization - runtime_efficiency| small.
  double runtime_efficiency = -1.0;
};

/// Per-task-class hardware-counter attribution (RuntimeOptions::
/// sample_counters). Plain doubles so the obs layer stays perf-free.
struct ClassHwRow {
  std::string klass;
  std::size_t tasks = 0;
  std::uint64_t busy_ns = 0;
  double ipc = 0.0;
  double mpki = 0.0;
  double branch_mpki = 0.0;
  double llc_miss_rate = 0.0;
  double scale = 1.0;  // multiplexing factor (see perf::CounterSample)
};

struct Analysis {
  CriticalPath cp;
  IdleAttribution idle;
  Scorecard card;
  std::vector<ClassHwRow> hw;  // empty unless counters were sampled
  /// Graph-optimizer pipeline that produced the traced program ("none" or
  /// e.g. "gate_fusion+input_precompute+coarsen"); empty when unknown.
  std::string pass_signature;
};

[[nodiscard]] Scorecard make_scorecard(const TraceModel& model,
                                       const CriticalPath& cp,
                                       const IdleAttribution& idle);

/// critical_path + attribute_idle + make_scorecard in one call.
/// `model_critical_path_ns` (e.g. TaskGraph::critical_path_cost over the
/// measured durations or modeled costs) lands in the scorecard when given.
[[nodiscard]] Analysis analyze(const TraceModel& model,
                               std::uint64_t model_critical_path_ns = 0);

// ---- I/O (analysis_io.cpp) ----

/// Parses a unified/chrome trace JSON document (as emitted by
/// taskrt::write_unified_trace or write_model_trace) into a TraceModel.
/// Only task slices carrying an "args.task" id participate; park/fault
/// spans are matched from worker-labeled rows. Throws util::Error when the
/// document is not a chrome-trace array or contains no task slices.
[[nodiscard]] TraceModel model_from_trace_json(const JsonValue& doc);

/// Renders the analysis as one JSON object:
/// {"schema_version":1,"type":"bpar_prof_analysis","scorecard":{...},
///  "critical_path":{...},"idle":{...},"hw_classes":[...]}.
[[nodiscard]] std::string to_json(const Analysis& analysis);

/// Human-readable scorecard/critical-path/idle tables (the CLI output).
void print_human(const Analysis& analysis, std::ostream& os);

/// Emits the model's task slices (with {task, deps, worker, layer, step}
/// args) and park/fault spans through `writer` — the analysis-consumable
/// half of a unified trace document.
void write_model_events(ChromeTraceWriter& writer, const TraceModel& model,
                        int pid);

}  // namespace bpar::obs::analysis
