#include "obs/session.hpp"

#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "util/logging.hpp"

namespace bpar::obs {

void add_cli_flags(util::ArgParser& args) {
  args.add_string("trace", "",
                  "write a Perfetto/chrome-trace JSON timeline to this path");
  args.add_string("metrics", "",
                  "write machine-readable run metrics (JSON/JSONL) here");
}

ObsSession::ObsSession(std::string binary, const util::ArgParser& args,
                       ReportMode mode)
    : binary_(std::move(binary)),
      trace_path_(args.get_string("trace")),
      metrics_path_(args.get_string("metrics")),
      mode_(mode) {
  report_.binary = binary_;
  report_.params = args.values();
  if (!trace_path_.empty()) {
    set_tracing_enabled(true);
    set_thread_name("main");
  }
  if (!metrics_path_.empty() && mode_ == ReportMode::kJsonl) {
    logger_ = std::make_unique<MetricsLogger>(metrics_path_, binary_,
                                              report_.params);
  }
}

ObsSession::~ObsSession() { finish(); }

void ObsSession::log(std::string_view type,
                     const std::map<std::string, double>& fields) {
  if (logger_) logger_->log(type, fields);
}

void ObsSession::finish() {
  if (finished_) return;
  finished_ = true;
  if (!metrics_path_.empty()) {
    if (mode_ == ReportMode::kJsonl) {
      logger_->finish();
    } else {
      report_.write_json_file(metrics_path_,
                              Registry::instance().snapshot());
    }
    BPAR_LOG_INFO << "wrote metrics to " << metrics_path_;
  }
  if (!trace_path_.empty()) {
    set_tracing_enabled(false);
    write_trace_json_file(trace_path_);
    BPAR_LOG_INFO << "wrote trace (" << events_held() << " events) to "
                  << trace_path_;
  }
}

}  // namespace bpar::obs
