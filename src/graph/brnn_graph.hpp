// Task-graph construction for BRNN training and inference — the C++
// realization of the paper's Algorithms 1-3, plus the pass-pipeline
// optimizer layered on top (DESIGN.md §5k).
//
// A `TrainingProgram` owns every buffer a batch pass touches (input copies,
// per-replica workspaces and gradients, the master gradients) and a
// TaskGraph whose tasks reference those buffers. Dependencies are declared
// through buffer addresses exactly like OmpSs `in`/`out` clauses:
//
//   * forward-order cell (l, t):  in(h of (l, t-1), layer input)
//                                 out(h of (l, t))
//   * reverse-order cell (l, k):  mirrored over processing steps
//   * merge (l, t):               in(h_fwd, h_rev) out(merged(l, t))
//   * cell backward:              in(dh, dc, forward tape) inout(layer
//                                 grads, dh of predecessor, dmerged below)
//   * gradient reduction:         in(all replica grads) inout(master)
//
// Construction happens in three stages: build() emits an intermediate op
// list (closures + access lists + specs, forward cells as rewritable
// descriptors), the `BuildOptions::passes` pipeline rewrites that list, and
// lower() resolves the surviving ops into the TaskGraph. With an empty pass
// spec (the default here) the graph is the faithful per-cell-per-timestep
// form the paper describes; executors opt into the optimizer pipeline.
//
// Baseline schedules (per-layer barriers, sequential directions, fused
// merge) are selected with `BuildOptions::schedule_profile`; see
// exec/baseline_profiles.hpp.
//
// The same program can be re-run for many batches: `load_batch` copies new
// data into the stable input buffers and `prepare` clears accumulators, so
// the graph (built once) stays valid.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "graph/passes/pass.hpp"
#include "rnn/batch.hpp"
#include "rnn/network.hpp"
#include "taskrt/task_graph.hpp"

namespace bpar::rnn {
class QuantizedNetwork;
}

namespace bpar::graph {

struct BuildOptions {
  int num_replicas = 1;   // mini-batch count (the paper's mbs:N)
  /// Override the network config's sequence length (0 = use the config's).
  /// Weights are shared across timesteps, so the same Network serves any
  /// sequence length — this is how B-Par handles variable-length batches
  /// (paper §III-B: "B-Par adjusts the computation graph dynamically").
  int seq_length_override = 0;
  bool training = true;   // false → forward + loss only
  bool executable = true; // false → shape-only graph (for the simulator)

  /// DEPRECATED: use schedule_profile = "layer_barriers" / "framework".
  /// Mapped with a one-release warning; will be removed.
  bool per_layer_barriers = false;
  /// DEPRECATED: use schedule_profile = "sequential" / "framework".
  bool sequential_directions = false;
  int intra_op_chunks = 1;  // split each cell into N chunks (shape-only)

  /// DEPRECATED: use schedule_profile = "fused_merge".
  bool fuse_merge = false;

  /// Also compute ∂L/∂x (per-timestep input gradients) during backward —
  /// off by default because layer 0 then pays an extra GEMM per cell.
  bool compute_input_grads = false;

  /// Non-null → executable inference graphs (training == false) route
  /// their cell and dense GEMMs through this int8 weight sidecar
  /// (DESIGN.md §5g). Ignored for training graphs; must outlive the
  /// program and be refreshed whenever the Network's weights change.
  const rnn::QuantizedNetwork* quantized = nullptr;

  /// Optimizer pass spec (see graph/passes/registry.hpp). "" = no passes:
  /// the faithful paper graph. Executors resolve their user-facing
  /// default ("default" / BPAR_GRAPH_PASSES) through
  /// passes::effective_pass_spec before setting this.
  std::string passes;

  /// Named schedule shape: "" or "bpar" (default — free-running task
  /// schedule), "fused_merge" (merge folded into forward cells, the
  /// ablation), "layer_barriers", "sequential", "framework" (barriers +
  /// sequential directions — the Keras/PyTorch emulation).
  std::string schedule_profile;

  /// Measured per-task dispatch cost feeding the coarsening pass's
  /// threshold (4×). Executors update this from RunStats.
  std::uint64_t dispatch_ns = 300;
};

class TrainingProgram {
 public:
  /// Builds the graph for `net` with a total batch of `total_batch` rows
  /// split across opts.num_replicas mini-batches. `net` must outlive the
  /// program; its weights are read in place on every run.
  TrainingProgram(rnn::Network& net, int total_batch, BuildOptions opts);
  ~TrainingProgram();

  /// Copies batch data into the program's stable input buffers.
  void load_batch(const rnn::BatchData& batch);

  /// Zeroes all accumulators. Call before every graph execution.
  void prepare();

  /// Effective configuration (seq length possibly overridden).
  [[nodiscard]] const rnn::NetworkConfig& config() const { return cfg_; }

  [[nodiscard]] taskrt::TaskGraph& graph() { return graph_; }
  [[nodiscard]] const taskrt::TaskGraph& graph() const { return graph_; }
  [[nodiscard]] const BuildOptions& options() const { return opts_; }

  /// Mean loss over the whole batch; valid after an executable run.
  [[nodiscard]] double loss() const { return total_loss_; }
  /// Reduced gradients; valid after an executable training run.
  [[nodiscard]] rnn::NetworkGrads& grads() { return master_grads_; }

  [[nodiscard]] int num_replicas() const { return opts_.num_replicas; }
  [[nodiscard]] rnn::Workspace& replica(int r) { return *replicas_[static_cast<std::size_t>(r)]; }
  [[nodiscard]] int replica_row_begin(int r) const { return row_begin_[static_cast<std::size_t>(r)]; }
  [[nodiscard]] int total_batch() const { return total_batch_; }

  /// Softmax probabilities of replica `r`, output index `t`.
  [[nodiscard]] const tensor::Matrix& probs(int r, int t) {
    return replica(r).probs(t);
  }

  /// What the pass pipeline rewrote (signature "none" when no passes ran).
  [[nodiscard]] const passes::PassReport& pass_report() const {
    return pass_report_;
  }
  [[nodiscard]] const std::string& pass_signature() const {
    return pass_report_.signature;
  }
  /// GEMM launches one full graph execution performs (reporting).
  [[nodiscard]] std::size_t gemm_launches() const { return gemm_launches_; }

  // ---- pass-pipeline hooks (called from src/graph/passes, not users) ----
  /// Allocates the sequence-wide input-projection buffers of layer 0 for
  /// (rep, dir) and returns the chunked GEMM ops computing them. Returns
  /// an empty list when already built for that (rep, dir).
  passes::OpList make_precompute_ops(int rep, int dir, int chunks);
  /// Dependency address of the precompute chunk covering input step `ti`.
  [[nodiscard]] const void* precompute_chunk_addr(int rep, int dir,
                                                  int ti) const;
  /// First element of the projection rows for input step `ti` (executable
  /// mode; null for shape-only graphs).
  [[nodiscard]] const float* precompute_row(int rep, int dir, int ti) const;
  [[nodiscard]] int precompute_cols(int rep, int dir) const;

 private:
  struct ReplicaCtx;  // defined in the .cpp
  struct PrecompBuf;  // defined in the .cpp

  // Resolved schedule shape (profile + deprecated booleans folded in).
  struct Schedule {
    bool per_layer_barriers = false;
    bool sequential_directions = false;
    bool fuse_merge = false;
  };

  void resolve_schedule();
  void build();
  void build_replica(int rep);
  void build_forward_layer(ReplicaCtx& ctx, int l);
  void build_backward_layer(ReplicaCtx& ctx, int l);
  void build_loss_and_dense(ReplicaCtx& ctx);
  void build_dense_backward(ReplicaCtx& ctx);
  void build_reduction();
  void run_passes();
  void lower();

  /// Appends a closure op to the intermediate list.
  void add_op(std::function<void()> fn, std::vector<taskrt::Access> accesses,
              taskrt::TaskSpec spec, bool chunkable, int gemms = 0);
  /// Appends a forward-cell descriptor op (body generated at lowering).
  void add_cell_op(std::vector<taskrt::Access> accesses, taskrt::TaskSpec spec,
                   passes::CellInfo cell);
  /// Generates the executable body of a (possibly rewritten) forward cell.
  [[nodiscard]] std::function<void()> make_cell_fn(passes::CellInfo ci);
  /// Adds one op to the TaskGraph, splitting it into intra-op chunks when
  /// emulating intra-op-parallel frameworks (shape-only graphs).
  void lower_one(std::function<void()> fn,
                 std::vector<taskrt::Access>& accesses, taskrt::TaskSpec spec,
                 bool chunkable);

  const void* fresh_token() {
    tokens_.push_back(0);
    return &tokens_.back();
  }

  rnn::Network& net_;
  rnn::NetworkConfig cfg_;  // net_.config() with overrides applied
  BuildOptions opts_;
  Schedule sched_;
  int total_batch_;
  taskrt::TaskGraph graph_;

  std::vector<tensor::Matrix> x_;  // [T] stable input buffers, B x I
  std::vector<int> labels_;
  std::vector<std::unique_ptr<rnn::Workspace>> replicas_;
  std::vector<rnn::NetworkGrads> replica_grads_;
  std::vector<int> row_begin_;         // per replica
  std::vector<double> losses_;         // [rep * outputs + t]
  double total_loss_ = 0.0;
  rnn::NetworkGrads master_grads_;
  std::deque<char> tokens_;  // stable synthetic dependency addresses

  // Intermediate form: filled by build(), rewritten by run_passes(),
  // consumed (and cleared) by lower().
  passes::OpList ops_;
  passes::PassReport pass_report_;
  std::size_t gemm_launches_ = 0;
  // Sequence-wide input projections, indexed rep * 2 + dir (null until the
  // precompute pass asks for them).
  std::vector<std::unique_ptr<PrecompBuf>> precomp_;

  // Shape-only mode: one synthetic-address arena per replica (the inner
  // buffers never move; only their data pointers are handed out).
  std::vector<std::vector<char>> arenas_;
  std::vector<std::size_t> grads_bases_;  // per replica, into its arena
  std::vector<std::size_t> x_bases_;      // per replica, into its arena
  // Per-layer forward barrier tokens of the replica currently being built.
  std::vector<const void*> fwd_tokens_;
};

}  // namespace bpar::graph
